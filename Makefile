GO ?= go

.PHONY: build test race vet fmt bench bench-telemetry chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the full suite
# under -race works too, but takes much longer).
race:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/progress ./internal/cri ./internal/trace ./internal/rma

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

# Proves the disabled telemetry hooks cost ~1 ns and zero allocations.
bench-telemetry:
	$(GO) test -bench=. -benchmem ./internal/telemetry

# Fault-injection and teardown chaos: the reliability layer repairing a
# lossy, duplicating, reordering wire, communicator free with packets still
# in flight, and a seeded faulty benchmark run — all under the race detector.
chaos:
	$(GO) test -race -run 'Fault|Chaos|FreeComm|PeerUnreachable|Reliable|Duplicate' ./internal/fabric ./internal/core ./internal/match ./internal/simnet
	$(GO) run ./cmd/multirate -engine real -pairs 4 -window 32 -iters 4 \
		-fault-drop 0.01 -fault-dup 0.01 -fault-delay 0.02 -fault-seed 7 -spcs

check: build vet test race
