GO ?= go

.PHONY: build test race vet fmt bench bench-telemetry check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the full suite
# under -race works too, but takes much longer).
race:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/progress ./internal/cri ./internal/trace ./internal/rma

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

# Proves the disabled telemetry hooks cost ~1 ns and zero allocations.
bench-telemetry:
	$(GO) test -bench=. -benchmem ./internal/telemetry

check: build vet test race
