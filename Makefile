GO ?= go

.PHONY: build test race race-lockfree vet fmt bench bench-telemetry bench-json bench-gate chaos check conformance lint-layers tcp-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the full suite
# under -race works too, but takes much longer).
race:
	$(GO) test -race ./internal/prof ./internal/telemetry ./internal/core ./internal/progress ./internal/cri ./internal/trace ./internal/rma ./internal/flight ./internal/obs ./internal/transport/... ./internal/conformance ./internal/bench/... ./internal/ringbuf ./internal/match

# Dedicated stress pass over the lock-free structures (MPSC completion
# ring, CRI free-list, sharded matching) at high parallelism; these tests
# only bite with the race detector watching.
race-lockfree:
	$(GO) test -race -count=2 ./internal/ringbuf ./internal/match ./internal/cri

# Cross-backend conformance: the same message-passing semantics over the
# simulated fabric and real TCP, under the race detector.
conformance:
	$(GO) test -run Conformance -race ./internal/conformance

# Layering lint: the runtime depends only on the transport interface; a
# textual import of the simulated backend above it is a regression.
lint-layers:
	@if grep -rn '"repro/internal/fabric"' internal/core internal/cri internal/progress internal/rma internal/match; then \
		echo "FAIL: concrete backend import above the transport interface"; exit 1; \
	else echo "layering ok"; fi

# Two OS processes exchanging the pairwise benchmark over loopback TCP.
tcp-smoke:
	./scripts/tcp_smoke.sh

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -bench=. -benchmem ./...

# Proves the disabled telemetry hooks cost ~1 ns and zero allocations.
bench-telemetry:
	$(GO) test -bench=. -benchmem ./internal/telemetry

# Machine-readable benchmark trajectory: message rate per thread count per
# design, swept on the deterministic virtual-time model so the numbers are
# reproducible on any host. Override the sweep for a quick smoke run:
#   make bench-json BENCHJSON_FLAGS="-threads 1,2,4 -window 32 -iters 2"
BENCHJSON_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_4.json $(BENCHJSON_FLAGS)
	$(GO) run ./cmd/benchjson -validate BENCH_4.json
	$(GO) run ./cmd/benchjson -o BENCH_4_latency.json -latency $(BENCHJSON_FLAGS)
	$(GO) run ./cmd/benchjson -validate BENCH_4_latency.json

# Regression gate: regenerate the deterministic trajectory and compare it
# point by point against the committed BENCH_4.json with noise-aware
# per-(design, threads) tolerances; exits nonzero if any point regressed.
# The latency trajectory additionally gates per-stage critical-path p99s:
# a tail regression inside one stage trips CI even when rates are flat.
# Also emits the contention profiler's virtual-time phase breakdowns for the
# serial and concurrent progress engines as artifacts.
bench-gate:
	$(GO) run ./cmd/multirate -pairs 8 -progress serial -breakdown-out breakdown_serial.json > /dev/null
	$(GO) run ./cmd/multirate -pairs 8 -instances 8 -assignment dedicated -comm-per-pair \
		-progress concurrent -breakdown-out breakdown_concurrent.json > /dev/null
	$(GO) run ./cmd/benchjson -o BENCH_head.json
	$(GO) run ./cmd/benchcmp -json bench_deltas.json BENCH_4.json BENCH_head.json
	$(GO) run ./cmd/benchjson -o BENCH_head_latency.json -latency
	$(GO) run ./cmd/benchcmp -json bench_deltas_latency.json BENCH_4_latency.json BENCH_head_latency.json

# Fault-injection and teardown chaos: the reliability layer repairing a
# lossy, duplicating, reordering wire, communicator free with packets still
# in flight, and a seeded faulty benchmark run — all under the race detector.
# The faulty run flies with the recorder and watchdog armed and leaves its
# flight-record dump as a triage artifact; a deterministic virtual-time
# stall then proves the watchdog names the stalled site.
chaos:
	$(GO) test -race -run 'Fault|Chaos|FreeComm|PeerUnreachable|Reliable|Duplicate|Watchdog|Flight' ./internal/fabric ./internal/core ./internal/match ./internal/simnet
	$(GO) run ./cmd/multirate -engine real -pairs 4 -window 32 -iters 4 \
		-fault-drop 0.01 -fault-dup 0.01 -fault-delay 0.02 -fault-seed 7 -spcs \
		-watchdog -flight-out flight_chaos.json
	$(GO) run ./cmd/multirate -engine sim -pairs 1 -window 64 -iters 4 \
		-flight 2048 -watchdog -stall 2s -stall-at 2 -flight-out flight_sim_stall.json

check: build vet lint-layers test race conformance
