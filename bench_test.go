// Benchmarks regenerating each of the paper's tables and figures, one bench
// family per experiment. Two kinds coexist:
//
//   - Real-runtime benches (Fig3*, Fig4*, Fig5 real designs, Fig6/7 real):
//     live goroutines over internal/core with the hw.Fast cost model; they
//     measure the software path's wall-clock overhead on the host.
//   - Model benches (Sim*): the deterministic virtual-time model that
//     produces the paper's scaling shapes; the reported "virt_msg/s" metric
//     is the figure's Y value, independent of host core count.
//
// cmd/figures prints the full figure series; these benches integrate the
// same experiments with `go test -bench`.
package repro_test

import (
	"fmt"
	"testing"

	benchmr "repro/internal/bench/multirate"
	benchrma "repro/internal/bench/rmamt"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/designs"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
)

// runMultirateReal drives the real-runtime Multirate harness inside b.N.
func runMultirateReal(b *testing.B, cfg benchmr.Config) {
	b.Helper()
	b.ReportAllocs()
	var total int64
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := benchmr.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Messages
		rate = res.Rate
	}
	b.ReportMetric(rate, "msg/s")
	b.ReportMetric(float64(total)/float64(b.N), "msgs/op")
}

func multirateCfg(opts core.Options) benchmr.Config {
	return benchmr.Config{
		Machine: hw.Fast(),
		Opts:    opts,
		Pairs:   4,
		Window:  64,
		Iters:   2,
	}
}

// BenchmarkFig3SerialProgress: concurrent sends under the serial progress
// engine (Figure 3a's configurations).
func BenchmarkFig3SerialProgress(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"1instance", core.Stock()},
		{"4rr", core.CRIs(4, cri.RoundRobin)},
		{"4dedicated", core.CRIs(4, cri.Dedicated)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runMultirateReal(b, multirateCfg(c.opts)) })
	}
}

// BenchmarkFig3ConcurrentProgress: Algorithm 2 replaces the serial engine
// (Figure 3b's configurations).
func BenchmarkFig3ConcurrentProgress(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"4rr", core.CRIsConcurrent(4, cri.RoundRobin)},
		{"4dedicated", core.CRIsConcurrent(4, cri.Dedicated)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { runMultirateReal(b, multirateCfg(c.opts)) })
	}
}

// BenchmarkFig3ConcurrentMatching: communicator per pair unlocks matching
// (Figure 3c's configuration).
func BenchmarkFig3ConcurrentMatching(b *testing.B) {
	cfg := multirateCfg(core.CRIsConcurrent(4, cri.Dedicated))
	cfg.CommPerPair = true
	runMultirateReal(b, cfg)
}

// BenchmarkFig4Overtaking: ordering relaxed via the overtaking info key and
// wildcard-tag receives (Figure 4's configurations).
func BenchmarkFig4Overtaking(b *testing.B) {
	modes := []struct {
		name string
		prog progress.Mode
		cpp  bool
	}{
		{"serial", progress.Serial, false},
		{"concurrent", progress.Concurrent, false},
		{"concurrent_matching", progress.Concurrent, true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := multirateCfg(core.Options{
				NumInstances: 4, Assignment: cri.Dedicated,
				Progress: m.prog, ThreadLevel: core.ThreadMultiple,
			})
			cfg.AnyTag = true
			cfg.Overtaking = true
			cfg.CommPerPair = m.cpp
			runMultirateReal(b, cfg)
		})
	}
}

// BenchmarkFig5Designs: the state-of-the-art comparison on the real
// runtime — each named design, thread and process modes.
func BenchmarkFig5Designs(b *testing.B) {
	for _, d := range designs.All() {
		b.Run(sanitize(d.String()), func(b *testing.B) {
			cfg := multirateCfg(d.CoreOptions(4))
			cfg.ProcessMode = d.IsProcessMode()
			cfg.CommPerPair = d.UsesCommPerPair()
			runMultirateReal(b, cfg)
		})
	}
}

// BenchmarkFig6RMAHaswell: RMA-MT put+flush over the real runtime across
// the paper's message sizes (Figure 6's sweep; Haswell instance counts).
func BenchmarkFig6RMAHaswell(b *testing.B) {
	for _, size := range []int{1, 128, 1024, 4096, 16384} {
		for _, mode := range []struct {
			name string
			opts core.Options
		}{
			{"single", core.Stock()},
			{"dedicated", core.CRIsConcurrent(4, cri.Dedicated)},
			{"rr", core.CRIsConcurrent(4, cri.RoundRobin)},
		} {
			b.Run(fmt.Sprintf("%dB/%s", size, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				var rate float64
				for i := 0; i < b.N; i++ {
					res, err := benchrma.Run(benchrma.Config{
						Machine: hw.Fast(), Opts: mode.opts,
						Threads: 4, MsgSize: size, PutsPerThread: 100, Rounds: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					rate = res.Rate
				}
				b.ReportMetric(rate, "puts/s")
			})
		}
	}
}

// BenchmarkFig7RMAKNL: the KNL sweep differs by thread count and instance
// pool; on the real runtime we exercise the oversubscribed case (more
// threads than instances).
func BenchmarkFig7RMAKNL(b *testing.B) {
	for _, threads := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dthreads", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := benchrma.Run(benchrma.Config{
					Machine: hw.Fast(), Opts: core.CRIsConcurrent(4, cri.Dedicated),
					Threads: threads, MsgSize: 128, PutsPerThread: 100, Rounds: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- virtual-time model benches: the figures' actual Y values ---

func runSim(b *testing.B, cfg simnet.Config) {
	b.Helper()
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = simnet.RunMultirate(cfg).Rate
	}
	b.ReportMetric(rate, "virt_msg/s")
}

// BenchmarkSimFig3 reports the virtual-time message rate at the paper's
// 20-thread-pair operating point for the three Figure 3 panels.
func BenchmarkSimFig3(b *testing.B) {
	base := simnet.Config{
		Machine: hw.AlembertHaswell(), Pairs: 20, Window: 128, Iters: 2,
		NumInstances: 20, Assignment: cri.Dedicated,
	}
	b.Run("a_serial", func(b *testing.B) { runSim(b, base) })
	conc := base
	conc.Progress = progress.Concurrent
	b.Run("b_concurrent", func(b *testing.B) { runSim(b, conc) })
	matching := conc
	matching.CommPerPair = true
	b.Run("c_matching", func(b *testing.B) { runSim(b, matching) })
}

// BenchmarkSimFig5 reports each design's virtual-time rate at 20 pairs.
func BenchmarkSimFig5(b *testing.B) {
	base := simnet.Config{Machine: hw.AlembertHaswell(), Pairs: 20, Window: 128, Iters: 2}
	for _, d := range designs.All() {
		b.Run(sanitize(d.String()), func(b *testing.B) {
			runSim(b, d.SimConfig(base, 20))
		})
	}
}

// BenchmarkSimRMA reports virtual-time put rates for Figures 6/7 corners.
func BenchmarkSimRMA(b *testing.B) {
	cases := []struct {
		name string
		cfg  simnet.RMAMTConfig
	}{
		{"haswell_32t_1B_dedicated", simnet.RMAMTConfig{
			Machine: hw.TrinititeHaswell(), Threads: 32, MsgSize: 1,
			PutsPerThread: 200, Rounds: 1, Assignment: cri.Dedicated}},
		{"haswell_32t_1B_single", simnet.RMAMTConfig{
			Machine: hw.TrinititeHaswell(), Threads: 32, MsgSize: 1,
			PutsPerThread: 200, Rounds: 1, NumInstances: 1}},
		{"knl_64t_1B_dedicated", simnet.RMAMTConfig{
			Machine: hw.TrinititeKNL(), Threads: 64, MsgSize: 1,
			PutsPerThread: 200, Rounds: 1, Assignment: cri.Dedicated}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = simnet.RunRMAMT(c.cfg).Rate
			}
			b.ReportMetric(rate, "virt_puts/s")
		})
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '+', '*':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
