// Command benchcmp is the benchmark-trajectory regression gate: it compares
// two BENCH_*.json files point by point and exits nonzero if any
// (design, thread-count) message rate regressed past its noise-aware
// tolerance. CI runs it against the committed trajectory after regenerating
// the sweep on the deterministic virtual-time model.
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or
// incompatible/invalid artifacts.
//
// Examples:
//
//	benchcmp BENCH_4.json BENCH_new.json
//	benchcmp -reltol 0.03 -thread-noise 0.5 old.json new.json
//	benchcmp -json deltas.json BENCH_4.json BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	var (
		relTol      = flag.Float64("reltol", 0.05, "base relative tolerance at 1 thread")
		threadNoise = flag.Float64("thread-noise", 0.25, "tolerance widening per doubling of threads")
		jsonOut     = flag.String("json", "", "also write the per-point deltas as JSON to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [flags] <base.json> <new.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := os.ReadFile(flag.Arg(0))
	check(err)
	cur, err := os.ReadFile(flag.Arg(1))
	check(err)

	res, err := benchcmp.CompareBytes(base, cur, benchcmp.Options{
		RelTol: *relTol, ThreadNoise: *threadNoise,
	})
	check(err)
	check(res.WriteText(os.Stdout))

	if *jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, append(b, '\n'), 0o644))
	}
	if res.Regressed() {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL: %d point(s) regressed\n", res.Regressions)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
}
