// Command benchjson runs the Multirate sweep over the named runtime
// designs on the deterministic virtual-time model and writes the result as
// a machine-readable trajectory file — message rate per thread count per
// design — for the repo's BENCH_<n>.json series.
//
// Examples:
//
//	benchjson -o BENCH_4.json
//	benchjson -o BENCH_4.json -threads 1,2,4 -window 32 -iters 2   # smoke
//	benchjson -validate BENCH_4.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchjson"
	"repro/internal/designs"
	"repro/internal/hw"
)

func main() {
	var (
		out         = flag.String("o", "", "output file (default stdout)")
		validate    = flag.String("validate", "", "validate an existing trajectory file and exit")
		machineName = flag.String("machine", "alembert", "alembert | trinitite | knl | fast")
		threadList  = flag.String("threads", "1,2,4,8,12,16,20", "comma-separated thread counts to sweep")
		window      = flag.Int("window", 128, "outstanding-message window")
		iters       = flag.Int("iters", 8, "window iterations per pair")
		msgSize     = flag.Int("size", 0, "payload bytes (0 = envelope only)")
		instances   = flag.Int("instances", 20, "CRI count for the CRI designs")
		latency     = flag.Bool("latency", false, "carry per-stage critical-path p50/p99 on every thread-mode point")
		designList  = flag.String("designs", "ompi-process,ompi-thread,ompi-thread-cri,ompi-thread-cri-full,ompi-thread-cri-lf",
			"comma-separated design slugs to sweep")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		check(err)
		check(benchjson.Validate(data))
		fmt.Printf("%s: valid trajectory (schema v%d)\n", *validate, benchjson.SchemaVersion)
		return
	}

	machine, err := machineByName(*machineName)
	check(err)
	threads, err := parseInts(*threadList)
	check(err)
	var ds []designs.Design
	for _, slug := range strings.Split(*designList, ",") {
		d, ok := designs.FromSlug(strings.TrimSpace(slug))
		if !ok {
			check(fmt.Errorf("unknown design slug %q", slug))
		}
		ds = append(ds, d)
	}

	f := benchjson.Run(benchjson.SweepConfig{
		Machine: machine, MachineName: *machineName,
		Threads: threads, Window: *window, Iters: *iters,
		MsgSize: *msgSize, Instances: *instances, Designs: ds,
		Latency: *latency,
	})
	b, err := benchjson.Marshal(f)
	check(err)
	// Never ship a file the validator would reject.
	check(benchjson.Validate(b))
	if *out == "" {
		_, err = os.Stdout.Write(b)
		check(err)
		return
	}
	check(os.WriteFile(*out, b, 0o644))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d designs x %d thread counts)\n",
		*out, len(f.Designs), len(f.Sweep.Threads))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
