// Command figures regenerates the paper's tables and figures from the
// deterministic virtual-time model, printing the same series the paper
// plots.
//
// Usage:
//
//	figures -fig 3a            # one figure: 3a 3b 3c 4a 4b 4c 5 6 7
//	figures -table 2           # Table II (SPC counters)
//	figures -all               # everything
//	figures -all -scale paper  # paper-volume sweeps (slower)
//	figures -table 2 -full     # Table II at the paper's exact 2,585,600 messages
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3a 3b 3c 4a 4b 4c 5 6 7 offload matching breakdown waterfall")
	bdThreads := flag.Int("threads", 8, "thread pairs for -fig breakdown / -fig waterfall")
	table := flag.String("table", "", "table to regenerate: 2")
	all := flag.Bool("all", false, "regenerate every figure and table")
	ablation := flag.String("ablation", "", "ablation sweep: jitter credits convoy instances alloc all")
	scaleName := flag.String("scale", "quick", "sweep scale: quick | paper")
	full := flag.Bool("full", false, "Table II at the paper's exact message count")
	format := flag.String("format", "text", "output format: text | csv")
	flag.Parse()

	var sc figures.Scale
	switch *scaleName {
	case "quick":
		sc = figures.Quick()
	case "paper":
		sc = figures.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want quick or paper)\n", *scaleName)
		os.Exit(2)
	}

	single := map[string]func() []figures.Table{
		"3a":       func() []figures.Table { return []figures.Table{figures.Fig3a(sc)} },
		"3b":       func() []figures.Table { return []figures.Table{figures.Fig3b(sc)} },
		"3c":       func() []figures.Table { return []figures.Table{figures.Fig3c(sc)} },
		"4a":       func() []figures.Table { return []figures.Table{figures.Fig4a(sc)} },
		"4b":       func() []figures.Table { return []figures.Table{figures.Fig4b(sc)} },
		"4c":       func() []figures.Table { return []figures.Table{figures.Fig4c(sc)} },
		"5":        func() []figures.Table { return []figures.Table{figures.Fig5(sc)} },
		"6":        func() []figures.Table { return figures.Fig6(sc) },
		"7":        func() []figures.Table { return figures.Fig7(sc) },
		"offload":  func() []figures.Table { return []figures.Table{figures.ExtensionOffload(sc)} },
		"matching": func() []figures.Table { return []figures.Table{figures.ExtensionMatching(sc)} },
	}

	render := func(t figures.Table) string {
		if *format == "csv" {
			return t.CSV()
		}
		return t.Render()
	}
	run := func(name string) {
		if name == "breakdown" || name == "waterfall" {
			start := time.Now()
			var out string
			switch {
			case name == "breakdown" && *format == "csv":
				out = figures.TimeBreakdown(sc, *bdThreads).CSV()
			case name == "breakdown":
				out = figures.TimeBreakdown(sc, *bdThreads).Render()
			case *format == "csv":
				out = figures.Waterfall(sc, *bdThreads).CSV()
			default:
				out = figures.Waterfall(sc, *bdThreads).Render()
			}
			fmt.Println(out)
			fmt.Fprintf(os.Stderr, "[fig %s regenerated in %v]\n", name, time.Since(start).Round(time.Millisecond))
			return
		}
		gen, ok := single[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		for _, t := range gen() {
			fmt.Println(render(t))
		}
		fmt.Fprintf(os.Stderr, "[fig %s regenerated in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	runTable2 := func() {
		start := time.Now()
		fmt.Println(figures.TableII(sc, *full).Render())
		fmt.Fprintf(os.Stderr, "[table 2 regenerated in %v]\n", time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, name := range []string{"3a", "3b", "3c", "4a", "4b", "4c", "5", "6", "7", "breakdown", "waterfall"} {
			run(name)
		}
		runTable2()
	case *fig != "":
		run(*fig)
	case *table == "2":
		runTable2()
	case *ablation == "all":
		for _, t := range figures.Ablations(sc) {
			fmt.Println(render(t))
		}
	case *ablation != "":
		t, err := figures.AblationByName(*ablation, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(render(t))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
