// Command mpirun launches an N-rank job over the tcp transport on the
// local host. It allocates one loopback address per rank, then spawns N
// copies of the target command with the standard distributed flag set
// appended:
//
//	<command> <args...> -transport tcp -rank R -listen ADDR_R -peers ADDR_0,...,ADDR_N-1
//
// Each rank's stdout/stderr is teed to mpirun's with a "[rank R]" prefix,
// and mpirun exits with the first nonzero rank exit code (or 0 when every
// rank succeeds). SIGINT/SIGTERM are forwarded to all ranks.
//
// With -http (or -report-out) the launcher becomes the job's observability
// plane: it auto-allocates one loopback observability port per rank,
// appends `-http ADDR_R` to each rank's command line, and polls every
// rank's live endpoint into the cluster aggregator (internal/cluster). The
// merged view is served on the -http address at /cluster/metrics,
// /cluster/spc, /cluster/health, /cluster/imbalance, and /cluster/report
// (point cmd/mpitop at it), and -report-out writes the end-of-run cluster
// report JSON after the last rank exits.
//
// Examples:
//
//	mpirun -n 4 ./bin/multirate -pairs 4 -window 64 -iters 8
//	mpirun -n 4 -http :0 -report-out report.json ./bin/multirate -pairs 2
//	mpirun -n 8 -emit ./bin/multirate -pairs 2     # print the commands, run nothing
//
// With -emit the launcher prints one shell-quoted command line per rank
// instead of spawning anything, for running ranks by hand or on separate
// hosts (replace the loopback addresses with routable ones).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		n         = flag.Int("n", 2, "number of ranks to launch")
		emit      = flag.Bool("emit", false, "print per-rank command lines instead of spawning")
		httpAddr  = flag.String("http", "", "serve the cluster aggregation plane on this address (e.g. 127.0.0.1:9099, or :0 for an ephemeral port); per-rank observability ports are auto-allocated")
		poll      = flag.Duration("poll", 250*time.Millisecond, "cluster aggregator scrape interval")
		reportOut = flag.String("report-out", "", "write the end-of-run cluster report JSON to this file (implies per-rank observability ports)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpirun [-n N] [-emit] [-http ADDR] [-poll D] [-report-out FILE] <command> [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *n < 1 {
		fatal(fmt.Errorf("-n %d: need at least one rank", *n))
	}
	argv := flag.Args()
	if len(argv) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	addrs, err := allocateAddrs(*n)
	if err != nil {
		fatal(err)
	}
	peers := strings.Join(addrs, ",")

	// The observability plane is on when anything consumes it: each rank
	// then gets its own live endpoint address for the aggregator to poll.
	var obsAddrs []string
	if *httpAddr != "" || *reportOut != "" {
		obsAddrs, err = allocateAddrs(*n)
		if err != nil {
			fatal(err)
		}
	}

	if *emit {
		for r := 0; r < *n; r++ {
			fmt.Println(shellJoin(rankArgv(argv, r, addrs[r], peers, obsAddr(obsAddrs, r))))
		}
		return
	}
	os.Exit(run(*n, argv, addrs, peers, obsAddrs, *httpAddr, *poll, *reportOut))
}

// obsAddr returns rank r's observability address ("" when the plane is off).
func obsAddr(obsAddrs []string, r int) string {
	if len(obsAddrs) == 0 {
		return ""
	}
	return obsAddrs[r]
}

// rankArgv appends the distributed flag set for one rank to the user's
// command line. Appending keeps last-one-wins flag semantics: the launcher's
// values override any the user passed themselves.
func rankArgv(argv []string, rank int, listen, peers, obsAddr string) []string {
	out := append([]string(nil), argv...)
	out = append(out,
		"-transport", "tcp",
		"-rank", fmt.Sprint(rank),
		"-listen", listen,
		"-peers", peers,
	)
	if obsAddr != "" {
		out = append(out, "-http", obsAddr)
	}
	return out
}

// allocateAddrs reserves n distinct loopback ports by binding and
// immediately releasing ephemeral listeners. The window between release
// and the rank binding the port is unavoidable without passing open file
// descriptors through exec; in practice the kernel does not rehand the
// port out that fast on an otherwise idle loopback.
func allocateAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("mpirun: allocating rank %d address: %w", i, err)
		}
		addrs[i] = ln.Addr().String()
		if err := ln.Close(); err != nil {
			return nil, fmt.Errorf("mpirun: releasing rank %d address: %w", i, err)
		}
	}
	return addrs, nil
}

// run spawns all ranks, tees their output, forwards signals, and returns
// the job's exit code: the first nonzero rank exit code in rank order, or
// 0 when every rank succeeds. With obsAddrs set it also runs the cluster
// aggregation plane over the ranks' live endpoints.
func run(n int, argv []string, addrs []string, peers string, obsAddrs []string, httpAddr string, poll time.Duration, reportOut string) int {
	var agg *cluster.Aggregator
	if len(obsAddrs) > 0 {
		eps := make([]cluster.Endpoint, n)
		for r := range eps {
			eps[r] = cluster.Endpoint{Rank: r, URL: "http://" + obsAddrs[r]}
		}
		agg = cluster.NewAggregator(cluster.AggregatorConfig{Endpoints: eps, Poll: poll})
		agg.Start()
		if httpAddr != "" {
			srv, err := cluster.Serve(httpAddr, agg)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "mpirun: cluster aggregator on http://%s\n", srv.Addr())
		}
	}

	cmds := make([]*exec.Cmd, n)
	tees := make([]sync.WaitGroup, n)
	for r := 0; r < n; r++ {
		cmd := exec.Command(argv[0], rankArgv(argv[1:], r, addrs[r], peers, obsAddr(obsAddrs, r))...)
		cmd.Stdin = nil
		outPipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(fmt.Errorf("mpirun: rank %d stdout: %w", r, err))
		}
		errPipe, err := cmd.StderrPipe()
		if err != nil {
			fatal(fmt.Errorf("mpirun: rank %d stderr: %w", r, err))
		}
		if err := cmd.Start(); err != nil {
			// Ranks already launched must not outlive a failed launch.
			for _, prev := range cmds[:r] {
				_ = prev.Process.Kill()
			}
			fatal(fmt.Errorf("mpirun: starting rank %d: %w", r, err))
		}
		cmds[r] = cmd
		tees[r].Add(2)
		go teePrefixed(&tees[r], os.Stdout, outPipe, r)
		go teePrefixed(&tees[r], os.Stderr, errPipe, r)
	}

	// Forward interrupts to every rank so a ^C tears the whole job down;
	// keep forwarding until all ranks have exited.
	sigc := make(chan os.Signal, 4)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case sig := <-sigc:
				for _, cmd := range cmds {
					if cmd.Process != nil {
						_ = cmd.Process.Signal(sig)
					}
				}
			case <-done:
				return
			}
		}
	}()

	code := 0
	for r, cmd := range cmds {
		// Drain this rank's pipes before Wait: Wait closes them, and output
		// still buffered in the tee would be lost.
		tees[r].Wait()
		if err := cmd.Wait(); err != nil {
			rc := 1
			var xerr *exec.ExitError
			if errors.As(err, &xerr) && xerr.ExitCode() > 0 {
				rc = xerr.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "mpirun: rank %d: %v\n", r, err)
			if code == 0 {
				code = rc
			}
		}
	}
	close(done)
	signal.Stop(sigc)

	if agg != nil {
		// Stop polling before the report: the ranks are gone, and further
		// scrape failures would only overwrite the error notes on the last
		// good per-rank state the report is built from.
		agg.Stop()
		if reportOut != "" {
			rep := cluster.BuildReport(agg.State())
			b, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(reportOut, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpirun: writing cluster report: %v\n", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Fprintf(os.Stderr, "mpirun: cluster report written to %s\n", reportOut)
			}
		}
	}
	return code
}

// teePrefixed copies one rank's stream line by line, prefixing each line
// with its rank so interleaved output stays attributable.
func teePrefixed(wg *sync.WaitGroup, dst io.Writer, src io.Reader, rank int) {
	defer wg.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintf(dst, "[rank %d] %s\n", rank, sc.Text())
	}
}

// shellJoin renders an argv as a copy-pasteable shell command, quoting
// arguments that need it.
func shellJoin(argv []string) string {
	parts := make([]string, len(argv))
	for i, a := range argv {
		if a == "" || strings.ContainsAny(a, " \t'\"\\$&|;<>()*?[]#~") {
			parts[i] = "'" + strings.ReplaceAll(a, "'", `'\''`) + "'"
		} else {
			parts[i] = a
		}
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpirun:", err)
	os.Exit(1)
}
