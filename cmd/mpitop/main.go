// Command mpitop is a top-style terminal view of a running N-rank job's
// cluster observability plane. It renders one row per rank — message rate,
// p99 latency, end-to-end critical-path p99 with the dominant stage, queue
// depths, retransmits, connections, uptime, and the latest imbalance
// verdict — from the cluster report a running `mpirun
// -http` serves at /cluster/report, refreshing in place until the job goes
// away.
//
//	mpitop http://127.0.0.1:9099          # live: refresh every second
//	mpitop -interval 250ms http://...     # live: faster refresh
//	mpitop -once http://...               # one table, no refresh
//	mpitop -snapshot report.json          # render a saved cluster report
//
// -report-out FILE saves the last fetched report as JSON, so a live
// session can leave behind the same artifact `mpirun -report-out` writes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		interval  = flag.Duration("interval", time.Second, "refresh interval in live mode")
		once      = flag.Bool("once", false, "print one table and exit (no screen refresh)")
		snapshot  = flag.String("snapshot", "", "render a saved cluster report JSON file instead of polling a live aggregator")
		reportOut = flag.String("report-out", "", "save the last fetched report JSON to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpitop [-interval D] [-once] [-report-out FILE] <aggregator-url>\n"+
			"       mpitop -snapshot report.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *snapshot != "" {
		rep, err := readSnapshot(*snapshot)
		if err != nil {
			fatal(err)
		}
		render(os.Stdout, rep, false)
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	url := reportURL(flag.Arg(0))
	client := &http.Client{Timeout: 5 * time.Second}

	fetched := false
	for {
		rep, err := fetchReport(client, url)
		if err != nil {
			if !fetched {
				fatal(err)
			}
			// The aggregator went away: the job ended. The last table stays
			// on screen as the final state.
			fmt.Fprintf(os.Stderr, "mpitop: aggregator gone (%v), exiting\n", err)
			return
		}
		fetched = true
		render(os.Stdout, rep, !*once)
		if *reportOut != "" {
			if err := writeSnapshot(*reportOut, rep); err != nil {
				fatal(err)
			}
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// reportURL normalizes a user-supplied aggregator address into the report
// endpoint: scheme added when missing, /cluster/report appended unless the
// URL already names it.
func reportURL(arg string) string {
	u := arg
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	if !strings.HasSuffix(u, "/cluster/report") {
		u = strings.TrimRight(u, "/") + "/cluster/report"
	}
	return u
}

func fetchReport(c *http.Client, url string) (cluster.Report, error) {
	var rep cluster.Report
	resp, err := c.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", url, err)
	}
	return rep, nil
}

func readSnapshot(path string) (cluster.Report, error) {
	var rep cluster.Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

func writeSnapshot(path string, rep cluster.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// render prints the cluster table; refresh homes the cursor and clears the
// screen first so successive tables repaint in place.
func render(w io.Writer, rep cluster.Report, refresh bool) {
	var b strings.Builder
	if refresh {
		b.WriteString("\x1b[H\x1b[2J")
	}
	state := "clean"
	if !rep.Clean {
		state = fmt.Sprintf("%d verdict(s)", len(rep.Verdicts))
	}
	fmt.Fprintf(&b, "mpitop — %d ranks, %d polls, %s\n\n",
		len(rep.Ranks), rep.Polls, state)
	fmt.Fprintf(&b, "%5s %6s %10s %10s %10s %-16s %7s %7s %6s %6s %6s %9s  %s\n",
		"RANK", "STATE", "MSG/S", "P99", "E2E99", "HOTSTAGE", "POSTED", "UNEXP", "OOS", "RETX", "CONNS", "UPTIME", "VERDICT")
	for _, r := range rep.Ranks {
		state := "up"
		switch {
		case r.Err != "":
			state = "err"
		case !r.Ready:
			state = "wait"
		}
		fmt.Fprintf(&b, "%5d %6s %10s %10s %10s %-16s %7d %7d %6d %6d %6d %9s  %s\n",
			r.Rank, state,
			formatRate(r.MsgRate),
			formatNs(r.P99LatencyNs),
			formatNs(r.E2EP99Ns),
			formatHotStage(r),
			r.Posted, r.Unexpected, r.OOSBuffered,
			r.Retransmits, r.Conns,
			formatUptime(r.UptimeSeconds),
			r.Verdict)
	}
	if len(rep.Cluster) > 0 {
		keys := make([]string, 0, len(rep.Cluster))
		for k := range rep.Cluster {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\ncluster totals: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s=%d", k, rep.Cluster[k])
		}
		b.WriteString("\n")
	}
	if len(rep.Verdicts) > 0 {
		b.WriteString("\nverdicts:\n")
		for _, v := range rep.Verdicts {
			fmt.Fprintf(&b, "  [%s] rank %d: %s\n", v.Reason, v.Rank, v.Detail)
		}
	}
	io.WriteString(w, b.String())
}

func formatRate(r float64) string {
	switch {
	case r <= 0:
		return "-"
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// formatHotStage renders the rank's dominant critical-path stage with its
// p99, e.g. "deliver_wait 5.0ms" — "-" when the rank exports no
// attribution data.
func formatHotStage(r cluster.RankReport) string {
	stage, ns := r.HotStage()
	if stage == "" {
		return "-"
	}
	return fmt.Sprintf("%s %s", stage, formatNs(ns))
}

func formatNs(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func formatUptime(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Truncate(100 * time.Millisecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpitop:", err)
	os.Exit(1)
}
