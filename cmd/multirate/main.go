// Command multirate runs the Multirate pairwise benchmark.
//
// Two engines are available:
//
//	-engine sim   deterministic virtual-time model (default; regenerates
//	              the paper's scaling shapes on any host)
//	-engine real  live goroutines over the real runtime (wall-clock)
//
// Examples:
//
//	multirate -pairs 20 -instances 20 -assignment dedicated
//	multirate -pairs 20 -progress concurrent -comm-per-pair
//	multirate -engine real -pairs 4 -window 64 -iters 8
//	multirate -process-mode -pairs 20
//
// With -transport tcp the real engine runs distributed: launch one process
// per rank, each naming itself with -rank and every rank's address with
// -peers. Ranks pair up (0,1), (2,3), ...: even ranks send, odd ranks
// receive. The mpirun launcher wires the flags for you:
//
//	mpirun -n 4 multirate -pairs 4 -window 64 -iters 8
//
// or by hand:
//
//	multirate -transport tcp -rank 0 -peers 127.0.0.1:7100,127.0.0.1:7101 &
//	multirate -transport tcp -rank 1 -peers 127.0.0.1:7100,127.0.0.1:7101
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	bench "repro/internal/bench/multirate"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/simnet"
	"repro/internal/spc"
	"repro/internal/telemetry"
)

func main() {
	var (
		engine      = flag.String("engine", "sim", "sim (virtual time) or real (wall clock)")
		pairs       = flag.Int("pairs", 20, "communication pairs")
		window      = flag.Int("window", 128, "outstanding-message window")
		iters       = flag.Int("iters", 8, "window iterations per pair")
		msgSize     = flag.Int("size", 0, "payload bytes (0 = envelope only)")
		instances   = flag.Int("instances", 1, "communication resource instances per process")
		assignment  = flag.String("assignment", "round-robin", "round-robin | dedicated | freelist")
		prog        = flag.String("progress", "serial", "serial | concurrent")
		commPerPair = flag.Bool("comm-per-pair", false, "private communicator per pair (concurrent matching)")
		matchShards = flag.Int("match-shards", 0, "hash-sharded matching partitions per communicator (0 = single-lock engine)")
		overtaking  = flag.Bool("overtaking", false, "assert mpi_assert_allow_overtaking")
		anyTag      = flag.Bool("any-tag", false, "post wildcard-tag receives")
		processMode = flag.Bool("process-mode", false, "map pairs to process pairs")
		pattern     = flag.String("pattern", "pairwise", "pairwise | incast (real engine only)")
		machineName = flag.String("machine", "alembert", "alembert | trinitite | knl | fast")
		showSPCs    = flag.Bool("spcs", false, "dump software performance counters")
		traceN      = flag.Int("trace", 0, "attach an event tracer retaining N events (real engine) and dump them")

		transportName = flag.String("transport", "sim", "transport backend: sim | tcp (tcp runs distributed; see -rank/-peers)")
		rank          = flag.Int("rank", 0, "this process's world rank (tcp transport)")
		listen        = flag.String("listen", "", "accept address for this rank (tcp; default peers[rank])")
		peerList      = flag.String("peers", "", "comma-separated rank addresses, e.g. 127.0.0.1:7100,127.0.0.1:7101 (tcp)")

		faultDrop  = flag.Float64("fault-drop", 0, "per-packet drop probability (enables ack/retransmit reliability)")
		faultDup   = flag.Float64("fault-dup", 0, "per-packet duplication probability")
		faultDelay = flag.Float64("fault-delay", 0, "per-packet delayed-delivery (reorder) probability")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed")

		spcDump        = flag.Bool("spc-dump", false, "dump counters with per-CRI/per-communicator attribution (real engine)")
		metricsOut     = flag.String("metrics-out", "", "write a Prometheus text-format metrics snapshot to this file (real engine)")
		traceOut       = flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in chrome://tracing) (real engine)")
		samplesOut     = flag.String("samples-out", "", "write the sampler time series as CSV to this file (real engine)")
		sampleInterval = flag.Duration("sample-interval", 0, "background counter/histogram sampling interval, e.g. 10ms (real engine)")

		traceWire  = flag.Bool("trace-wire", false, "carry trace context on the wire and stitch cross-rank message lifecycles (real engine)")
		traceShard = flag.String("trace-shard", "", "write this process's raw trace shard JSON to this file (merge with tracemerge; real engine)")
		httpAddr   = flag.String("http", "", "serve live /metrics, /spc, /trace, /healthz and pprof on this address during the run (real engine)")

		profile      = flag.Bool("profile", false, "attach the contention profiler: per-lock wait attribution and per-thread phase accounting (real engine)")
		breakdownOut = flag.String("breakdown-out", "", "write the per-rank phase/lock-wait breakdown as JSON to this file (either engine; sim gives deterministic virtual-time numbers)")
		pprofCont    = flag.Bool("pprof-contention", false, "enable Go runtime mutex/block profiling so the -http pprof endpoints carry contention profiles (real engine)")

		flightCap = flag.Int("flight", 0, "flight recorder: per-ring event capacity (0 = off; either engine — sim records in virtual time)")
		flightOut = flag.String("flight-out", "", "write the flight-record exit dump (rings + final queue snapshot) as JSON to this file; implies -flight "+fmt.Sprint(flight.DefaultRingCapacity))
		watchdog  = flag.Bool("watchdog", false, "run the stall watchdog; a detected stall dumps the flight record and queue snapshot to stderr (either engine)")

		stallRecv = flag.Duration("stall", 0, "freeze pair 0's receiver for this long mid-run: virtual time on the sim engine (deterministic; pair with -watchdog), wall clock on the real engine (pair with mpirun -http to watch the cluster detector localize it)")
		stallAt   = flag.Int("stall-at", 0, "window iteration at which the -stall freeze fires")
		stallRank = flag.Int("stall-rank", 0, "world rank the -stall freeze applies to in a distributed run (0 = the last receiver rank)")
	)
	flag.Parse()
	if *flightOut != "" && *flightCap <= 0 {
		*flightCap = flight.DefaultRingCapacity
	}

	// The telemetry layer observes the real runtime; the virtual-time model
	// has no CRI locks or progress passes to instrument. Asking for any of
	// its outputs implies the real engine. -trace-wire alone does not: on
	// the sim engine it models the extension's wire-byte cost instead.
	wantTelemetry := *spcDump || *metricsOut != "" || *traceOut != "" || *samplesOut != "" ||
		*sampleInterval > 0 || *traceShard != "" || *httpAddr != ""
	if wantTelemetry && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: telemetry flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	// -profile and -pprof-contention instrument real locks and threads.
	// -breakdown-out alone does not switch: the virtual-time model produces
	// the same breakdown deterministically from its event clock.
	if (*profile || *pprofCont) && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: profiling flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	if *transportName == "tcp" && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: -transport tcp runs the real runtime; switching to -engine real")
		*engine = "real"
	}

	machine, err := machineByName(*machineName)
	check(err)
	asg, err := assignmentByName(*assignment)
	check(err)
	pm, err := progressByName(*prog)
	check(err)

	switch *engine {
	case "sim":
		scfg := simnet.Config{
			Machine: machine, Pairs: *pairs, Window: *window, Iters: *iters,
			MsgSize: *msgSize, NumInstances: *instances, Assignment: asg,
			Progress: pm, CommPerPair: *commPerPair, MatchShards: *matchShards,
			AllowOvertaking: *overtaking, AnyTagRecv: *anyTag,
			ProcessMode: *processMode, Traced: *traceWire,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: *flightCap,
			StallRecv:      *stallRecv, StallAfterIter: *stallAt,
		}
		if *watchdog {
			scfg.Watchdog = &flight.DetectorConfig{}
		}
		res := simnet.RunMultirate(scfg)
		for _, d := range res.Dumps {
			fmt.Fprintln(os.Stderr, "multirate: watchdog verdict:")
			check(flight.WriteDump(os.Stderr, d))
		}
		// The virtual-time model has no transport underneath; say so rather
		// than leaving the field out of the self-describing header.
		fmt.Printf("engine=sim transport=virtual caps=none pairs=%d messages=%d makespan=%v rate=%.0f msg/s oos=%.2f%% steal_losses=%d%s\n",
			*pairs, res.Messages, res.Makespan, res.Rate, res.SPCs.OutOfSequencePercent(),
			res.SPCs[spc.ProgressStealLosses], headerPath("flight_out", *flightOut))
		if *flightOut != "" {
			check(writeFlightDump(*flightOut, flight.ExitDump{Queues: res.Queues, Flight: res.Flight, Dumps: res.Dumps}))
		}
		if *showSPCs {
			fmt.Print(res.SPCs.String())
		}
		if *breakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "sim"}
			for _, b := range res.Breakdown {
				bf.Reports = append(bf.Reports, b.Report(designLabel(*prog, *assignment), *pairs))
			}
			check(writeBreakdown(*breakdownOut, bf))
		}
	case "real":
		if *pprofCont {
			restore := obs.EnableContentionProfiling(0, 0)
			defer restore()
		}
		cap := *traceN
		if (*traceOut != "" || *traceShard != "" || *traceWire || *httpAddr != "") && cap <= 0 {
			cap = 1 << 16
		}
		// A real-engine -breakdown-out needs the profiler's wall-clock data.
		wantProf := *profile || *breakdownOut != ""
		opts := core.Options{
			NumInstances: *instances, Assignment: asg, Progress: pm,
			MatchShards: *matchShards,
			ThreadLevel: core.ThreadMultiple, TraceCapacity: cap,
			Telemetry: wantTelemetry || *traceWire, TraceWire: *traceWire,
			Profile:   wantProf,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: *flightCap,
		}
		pat := bench.Pairwise
		if *pattern == "incast" {
			pat = bench.Incast
		}
		outputs := &obs.Outputs{
			MetricsPath: *metricsOut, TracePath: *traceOut,
			SamplesPath: *samplesOut, ShardPath: *traceShard,
			FlightPath: *flightOut,
			// The sampler observes the receiver; route the phase-breakdown
			// counter track to its pid group in the Chrome trace.
			ProfRank: 1,
			Info: map[string]string{
				"cmd": "multirate", "transport": *transportName,
				"progress": *prog, "assignment": *assignment,
				"pattern": *pattern, "rank": fmt.Sprint(*rank),
			},
		}
		defer outputs.DumpOnPanic()
		// The endpoint binds before the world exists so orchestration can
		// probe liveness during startup; /readyz serves 503 until the
		// OnWorld hook fires — in distributed mode that is after the rank
		// handshake and clock sync have completed.
		holder := obs.NewHolder(outputs.Info, "waiting for world construction")
		var srv *obs.Server
		if *httpAddr != "" {
			s, serr := obs.Serve(*httpAddr, holder.Source())
			check(serr)
			srv = s
			fmt.Fprintf(os.Stderr, "multirate: observability endpoint on http://%s\n", s.Addr())
		}
		var stopWatchdog func()
		bcfg := bench.Config{
			Machine: machine, Opts: opts, Pairs: *pairs, Window: *window,
			Iters: *iters, MsgSize: *msgSize, CommPerPair: *commPerPair,
			AnyTag: *anyTag, Overtaking: *overtaking, ProcessMode: *processMode,
			Pattern: pat, SampleInterval: *sampleInterval,
			StallRecv: *stallRecv, StallAfterIter: *stallAt, StallRank: *stallRank,
			OnSampler: outputs.BindSampler,
			OnWorld: func(w *core.World) {
				src := worldSource(w, outputs.Info)
				outputs.Bind(src)
				holder.Bind(src)
				holder.SetReady()
				if *watchdog {
					stopWatchdog = w.StartWatchdog(core.WatchdogConfig{})
				}
			},
		}
		stopSignals := outputs.FlushOnSignal()
		var res bench.Result
		var err error
		switch *transportName {
		case "sim", "":
			res, err = bench.Run(bcfg)
		case "tcp":
			peers, perr := backends.ParsePeers(*peerList)
			check(perr)
			if len(peers) < 2 {
				check(fmt.Errorf("-transport tcp needs -peers with one address per rank"))
			}
			if *rank < 0 || *rank >= len(peers) {
				check(fmt.Errorf("-rank %d outside the %d-address peer list", *rank, len(peers)))
			}
			addr := *listen
			if addr == "" {
				addr = peers[*rank]
			}
			tnet, terr := backends.TCP(*rank, len(peers), addr, peers)
			check(terr)
			bcfg.WorldSize = len(peers)
			res, err = bench.RunDistributed(bcfg, *rank, tnet)
		default:
			check(fmt.Errorf("unknown transport %q", *transportName))
		}
		check(err)
		stopSignals()
		if stopWatchdog != nil {
			stopWatchdog()
		}
		fmt.Printf("engine=real transport=%s caps=%s dial_retries=%d reconnects=%d short_writes=%d conns_opened=%d conns_reused=%d dial_races_lost=%d rank=%d pairs=%d messages=%d elapsed=%v rate=%.0f msg/s oos=%.2f%% steal_losses=%d%s\n",
			res.Transport.Name, res.Transport,
			res.SPCs[spc.DialRetries], res.SPCs[spc.Reconnects], res.SPCs[spc.ShortWrites],
			res.SPCs[spc.ConnsOpened], res.SPCs[spc.ConnsReused], res.SPCs[spc.DialRacesLost],
			*rank, *pairs, res.Messages, res.Elapsed, res.Rate, res.SPCs.OutOfSequencePercent(),
			res.SPCs[spc.ProgressStealLosses], headerPath("flight_out", *flightOut))
		if *showSPCs {
			fmt.Print(res.SPCs.String())
		}
		if *spcDump {
			for _, ps := range res.Stats {
				check(ps.WriteText(os.Stdout))
			}
		}
		if *traceN > 0 {
			fmt.Print(res.TraceDump)
		}
		if *profile {
			for _, ps := range res.Stats {
				if !ps.Prof.Empty() {
					check(prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *pairs, ps.Prof).WriteText(os.Stdout))
				}
			}
		}
		if *breakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "real"}
			for _, ps := range res.Stats {
				if ps.Prof.Empty() {
					continue
				}
				bf.Reports = append(bf.Reports, prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *pairs, ps.Prof))
			}
			check(writeBreakdown(*breakdownOut, bf))
		}
		check(outputs.Flush())
		if srv != nil {
			_ = srv.Close()
		}
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// worldSource adapts a live world to the observability Source: every
// request snapshots the current counters, histograms, and trace shards of
// all local ranks.
func worldSource(w *core.World, info map[string]string) obs.Source {
	return obs.Source{
		Stats: func() []telemetry.ProcStats {
			var out []telemetry.ProcStats
			for _, p := range w.LocalProcs() {
				out = append(out, p.TelemetryStats())
			}
			return out
		},
		Events: func() []telemetry.RankEvents {
			var out []telemetry.RankEvents
			for _, p := range w.LocalProcs() {
				if p.Tracer() != nil {
					out = append(out, p.TraceEvents())
				}
			}
			return out
		},
		Queues: func() []flight.QueueSnapshot {
			var out []flight.QueueSnapshot
			for _, p := range w.LocalProcs() {
				out = append(out, p.QueueSnapshot())
			}
			return out
		},
		Flight: func() []flight.RankRecord {
			var out []flight.RankRecord
			for _, p := range w.LocalProcs() {
				if p.FlightRecorder() != nil {
					out = append(out, p.FlightRecord())
				}
			}
			return out
		},
		Info: info,
	}
}

// headerPath renders an optional "key=path" field for the self-describing
// benchmark header line, empty when the path is unset.
func headerPath(key, path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf(" %s=%s", key, path)
}

func writeFlightDump(path string, dump flight.ExitDump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := flight.WriteExitDump(f, dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// designLabel names the configuration under test in breakdown reports, the
// same way the paper labels its design ladder rungs.
func designLabel(progress, assignment string) string {
	return fmt.Sprintf("progress=%s,assignment=%s", progress, assignment)
}

func writeBreakdown(path string, bf prof.BreakdownFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteBreakdown(f, bf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func assignmentByName(name string) (cri.Assignment, error) {
	switch name {
	case "round-robin", "rr":
		return cri.RoundRobin, nil
	case "dedicated":
		return cri.Dedicated, nil
	case "freelist", "free-list":
		return cri.FreeList, nil
	default:
		return 0, fmt.Errorf("unknown assignment %q", name)
	}
}

func progressByName(name string) (progress.Mode, error) {
	switch name {
	case "serial":
		return progress.Serial, nil
	case "concurrent":
		return progress.Concurrent, nil
	default:
		return 0, fmt.Errorf("unknown progress mode %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multirate:", err)
		os.Exit(1)
	}
}
