// Command multirate runs the Multirate pairwise benchmark.
//
// Two engines are available:
//
//	-engine sim   deterministic virtual-time model (default; regenerates
//	              the paper's scaling shapes on any host)
//	-engine real  live goroutines over the real runtime (wall-clock)
//
// Examples:
//
//	multirate -pairs 20 -instances 20 -assignment dedicated
//	multirate -pairs 20 -progress concurrent -comm-per-pair
//	multirate -engine real -pairs 4 -window 64 -iters 8
//	multirate -process-mode -pairs 20
//	multirate -pairs 4 -latency -latency-out latency.json
//
// With -transport tcp the real engine runs distributed: launch one process
// per rank, each naming itself with -rank and every rank's address with
// -peers. Ranks pair up (0,1), (2,3), ...: even ranks send, odd ranks
// receive. The mpirun launcher wires the flags for you:
//
//	mpirun -n 4 multirate -pairs 4 -window 64 -iters 8
//
// or by hand:
//
//	multirate -transport tcp -rank 0 -peers 127.0.0.1:7100,127.0.0.1:7101 &
//	multirate -transport tcp -rank 1 -peers 127.0.0.1:7100,127.0.0.1:7101
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench/cliobs"
	bench "repro/internal/bench/multirate"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/simnet"
	"repro/internal/spc"
)

func main() {
	var (
		engine      = flag.String("engine", "sim", "sim (virtual time) or real (wall clock)")
		pairs       = flag.Int("pairs", 20, "communication pairs")
		window      = flag.Int("window", 128, "outstanding-message window")
		iters       = flag.Int("iters", 8, "window iterations per pair")
		msgSize     = flag.Int("size", 0, "payload bytes (0 = envelope only)")
		instances   = flag.Int("instances", 1, "communication resource instances per process")
		assignment  = flag.String("assignment", "round-robin", "round-robin | dedicated | freelist")
		prog        = flag.String("progress", "serial", "serial | concurrent")
		commPerPair = flag.Bool("comm-per-pair", false, "private communicator per pair (concurrent matching)")
		matchShards = flag.Int("match-shards", 0, "hash-sharded matching partitions per communicator (0 = single-lock engine)")
		overtaking  = flag.Bool("overtaking", false, "assert mpi_assert_allow_overtaking")
		anyTag      = flag.Bool("any-tag", false, "post wildcard-tag receives")
		processMode = flag.Bool("process-mode", false, "map pairs to process pairs")
		pattern     = flag.String("pattern", "pairwise", "pairwise | incast (real engine only)")
		machineName = flag.String("machine", "alembert", "alembert | trinitite | knl | fast")
		showSPCs    = flag.Bool("spcs", false, "dump software performance counters")
		traceN      = flag.Int("trace", 0, "attach an event tracer retaining N events (real engine) and dump them")

		transportName = flag.String("transport", "sim", "transport backend: sim | tcp (tcp runs distributed; see -rank/-peers)")
		rank          = flag.Int("rank", 0, "this process's world rank (tcp transport)")
		listen        = flag.String("listen", "", "accept address for this rank (tcp; default peers[rank])")
		peerList      = flag.String("peers", "", "comma-separated rank addresses, e.g. 127.0.0.1:7100,127.0.0.1:7101 (tcp)")

		faultDrop  = flag.Float64("fault-drop", 0, "per-packet drop probability (enables ack/retransmit reliability)")
		faultDup   = flag.Float64("fault-dup", 0, "per-packet duplication probability")
		faultDelay = flag.Float64("fault-delay", 0, "per-packet delayed-delivery (reorder) probability")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed")

		stallRecv = flag.Duration("stall", 0, "freeze pair 0's receiver for this long mid-run: virtual time on the sim engine (deterministic; pair with -watchdog), wall clock on the real engine (pair with mpirun -http to watch the cluster detector localize it)")
		stallAt   = flag.Int("stall-at", 0, "window iteration at which the -stall freeze fires")
		stallRank = flag.Int("stall-rank", 0, "world rank the -stall freeze applies to in a distributed run (0 = the last receiver rank)")
	)
	// The sim engine mirrors the flight recorder, watchdog, and latency
	// attribution in virtual time, so those flags stay on either engine.
	ob := cliobs.Register(flag.CommandLine, "multirate", true)
	flag.Parse()
	ob.Normalize()

	// The telemetry layer observes the real runtime; the virtual-time model
	// has no CRI locks or progress passes to instrument. Asking for any of
	// its outputs implies the real engine. -trace-wire alone does not: on
	// the sim engine it models the extension's wire-byte cost instead.
	if ob.WantTelemetry() && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: telemetry flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	// -profile and -pprof-contention instrument real locks and threads.
	// -breakdown-out alone does not switch: the virtual-time model produces
	// the same breakdown deterministically from its event clock.
	if (ob.Profile || ob.PprofContention) && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: profiling flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	if *transportName == "tcp" && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "multirate: -transport tcp runs the real runtime; switching to -engine real")
		*engine = "real"
	}

	machine, err := machineByName(*machineName)
	check(err)
	asg, err := assignmentByName(*assignment)
	check(err)
	pm, err := progressByName(*prog)
	check(err)

	switch *engine {
	case "sim":
		scfg := simnet.Config{
			Machine: machine, Pairs: *pairs, Window: *window, Iters: *iters,
			MsgSize: *msgSize, NumInstances: *instances, Assignment: asg,
			Progress: pm, CommPerPair: *commPerPair, MatchShards: *matchShards,
			AllowOvertaking: *overtaking, AnyTagRecv: *anyTag,
			ProcessMode: *processMode, Traced: ob.TraceWire,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: ob.FlightCap, Latency: ob.Latency,
			StallRecv: *stallRecv, StallAfterIter: *stallAt,
		}
		if ob.Watchdog {
			scfg.Watchdog = &flight.DetectorConfig{}
		}
		res := simnet.RunMultirate(scfg)
		for _, d := range res.Dumps {
			fmt.Fprintln(os.Stderr, "multirate: watchdog verdict:")
			check(flight.WriteDump(os.Stderr, d))
		}
		// The virtual-time model has no transport underneath; say so rather
		// than leaving the field out of the self-describing header.
		fmt.Printf("engine=sim transport=virtual caps=none pairs=%d messages=%d makespan=%v rate=%.0f msg/s oos=%.2f%% steal_losses=%d%s%s\n",
			*pairs, res.Messages, res.Makespan, res.Rate, res.SPCs.OutOfSequencePercent(),
			res.SPCs[spc.ProgressStealLosses],
			cliobs.HeaderPath("flight_out", ob.FlightOut),
			cliobs.HeaderPath("latency_out", ob.LatencyOut))
		if ob.FlightOut != "" {
			check(cliobs.WriteFlightDump(ob.FlightOut, flight.ExitDump{Queues: res.Queues, Flight: res.Flight, Dumps: res.Dumps}))
		}
		if ob.LatencyOut != "" {
			check(cliobs.WriteLatencyDumps(ob.LatencyOut, res.Latency))
		}
		if *showSPCs {
			fmt.Print(res.SPCs.String())
		}
		if ob.BreakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "sim"}
			for _, b := range res.Breakdown {
				bf.Reports = append(bf.Reports, b.Report(designLabel(*prog, *assignment), *pairs))
			}
			check(cliobs.WriteBreakdown(ob.BreakdownOut, bf))
		}
	case "real":
		cap := *traceN
		if (ob.TraceOut != "" || ob.TraceShard != "" || ob.TraceWire || ob.HTTPAddr != "") && cap <= 0 {
			cap = 1 << 16
		}
		// A real-engine -breakdown-out needs the profiler's wall-clock data.
		wantProf := ob.Profile || ob.BreakdownOut != ""
		opts := core.Options{
			NumInstances: *instances, Assignment: asg, Progress: pm,
			MatchShards: *matchShards,
			ThreadLevel: core.ThreadMultiple, TraceCapacity: cap,
			Telemetry: ob.WantTelemetry() || ob.TraceWire, TraceWire: ob.TraceWire,
			Profile:   wantProf,
			Latency:   ob.Latency,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: ob.FlightCap,
		}
		pat := bench.Pairwise
		if *pattern == "incast" {
			pat = bench.Incast
		}
		sess, serr := ob.Start(map[string]string{
			"cmd": "multirate", "transport": *transportName,
			"progress": *prog, "assignment": *assignment,
			"pattern": *pattern, "rank": fmt.Sprint(*rank),
		})
		check(serr)
		// The sampler observes the receiver; route the phase-breakdown
		// counter track to its pid group in the Chrome trace.
		sess.Outputs.ProfRank = 1
		defer sess.Outputs.DumpOnPanic()
		if addr := sess.Addr(); addr != "" {
			fmt.Fprintf(os.Stderr, "multirate: observability endpoint on http://%s\n", addr)
		}
		bcfg := bench.Config{
			Machine: machine, Opts: opts, Pairs: *pairs, Window: *window,
			Iters: *iters, MsgSize: *msgSize, CommPerPair: *commPerPair,
			AnyTag: *anyTag, Overtaking: *overtaking, ProcessMode: *processMode,
			Pattern: pat, SampleInterval: ob.SampleInterval,
			StallRecv: *stallRecv, StallAfterIter: *stallAt, StallRank: *stallRank,
			OnSampler: sess.Outputs.BindSampler,
			OnWorld:   sess.BindWorld,
		}
		var res bench.Result
		var err error
		switch *transportName {
		case "sim", "":
			res, err = bench.Run(bcfg)
		case "tcp":
			peers, perr := backends.ParsePeers(*peerList)
			check(perr)
			if len(peers) < 2 {
				check(fmt.Errorf("-transport tcp needs -peers with one address per rank"))
			}
			if *rank < 0 || *rank >= len(peers) {
				check(fmt.Errorf("-rank %d outside the %d-address peer list", *rank, len(peers)))
			}
			addr := *listen
			if addr == "" {
				addr = peers[*rank]
			}
			tnet, terr := backends.TCP(*rank, len(peers), addr, peers)
			check(terr)
			bcfg.WorldSize = len(peers)
			res, err = bench.RunDistributed(bcfg, *rank, tnet)
		default:
			check(fmt.Errorf("unknown transport %q", *transportName))
		}
		check(err)
		fmt.Printf("engine=real transport=%s caps=%s dial_retries=%d reconnects=%d short_writes=%d conns_opened=%d conns_reused=%d dial_races_lost=%d rank=%d pairs=%d messages=%d elapsed=%v rate=%.0f msg/s oos=%.2f%% steal_losses=%d%s%s\n",
			res.Transport.Name, res.Transport,
			res.SPCs[spc.DialRetries], res.SPCs[spc.Reconnects], res.SPCs[spc.ShortWrites],
			res.SPCs[spc.ConnsOpened], res.SPCs[spc.ConnsReused], res.SPCs[spc.DialRacesLost],
			*rank, *pairs, res.Messages, res.Elapsed, res.Rate, res.SPCs.OutOfSequencePercent(),
			res.SPCs[spc.ProgressStealLosses],
			cliobs.HeaderPath("flight_out", ob.FlightOut),
			cliobs.HeaderPath("latency_out", ob.LatencyOut))
		if *showSPCs {
			fmt.Print(res.SPCs.String())
		}
		if ob.SPCDump {
			for _, ps := range res.Stats {
				check(ps.WriteText(os.Stdout))
			}
		}
		if *traceN > 0 {
			fmt.Print(res.TraceDump)
		}
		if ob.Profile {
			for _, ps := range res.Stats {
				if !ps.Prof.Empty() {
					check(prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *pairs, ps.Prof).WriteText(os.Stdout))
				}
			}
		}
		if ob.BreakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "real"}
			for _, ps := range res.Stats {
				if ps.Prof.Empty() {
					continue
				}
				bf.Reports = append(bf.Reports, prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *pairs, ps.Prof))
			}
			check(cliobs.WriteBreakdown(ob.BreakdownOut, bf))
		}
		check(sess.Finish())
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// designLabel names the configuration under test in breakdown reports, the
// same way the paper labels its design ladder rungs.
func designLabel(progress, assignment string) string {
	return fmt.Sprintf("progress=%s,assignment=%s", progress, assignment)
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func assignmentByName(name string) (cri.Assignment, error) {
	switch name {
	case "round-robin", "rr":
		return cri.RoundRobin, nil
	case "dedicated":
		return cri.Dedicated, nil
	case "freelist", "free-list":
		return cri.FreeList, nil
	default:
		return 0, fmt.Errorf("unknown assignment %q", name)
	}
}

func progressByName(name string) (progress.Mode, error) {
	switch name {
	case "serial":
		return progress.Serial, nil
	case "concurrent":
		return progress.Concurrent, nil
	default:
		return 0, fmt.Errorf("unknown progress mode %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multirate:", err)
		os.Exit(1)
	}
}
