// Command rmamt runs the RMA-MT multithreaded one-sided benchmark
// (MPI_Put + MPI_Win_flush) on either the virtual-time model or the real
// runtime.
//
// Examples:
//
//	rmamt -threads 32 -size 1024 -assignment dedicated
//	rmamt -threads 32 -instances 1              # the "single instance" curve
//	rmamt -machine knl -threads 64
//	rmamt -engine real -threads 4 -puts 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	bench "repro/internal/bench/rmamt"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

func main() {
	var (
		engine        = flag.String("engine", "sim", "sim (virtual time) or real (wall clock)")
		threads       = flag.Int("threads", 32, "origin-side threads")
		transportName = flag.String("transport", "sim", "transport backend: sim | tcp (tcp is parsed but rejected: it lacks one-sided support)")
		rank          = flag.Int("rank", 0, "this process's world rank (tcp transport)")
		listen        = flag.String("listen", "", "accept address for this rank (tcp; default peers[rank])")
		peerList      = flag.String("peers", "", "comma-separated rank addresses, e.g. 127.0.0.1:7100,127.0.0.1:7101 (tcp)")
		msgSize       = flag.Int("size", 8, "put payload bytes")
		puts          = flag.Int("puts", 1000, "puts per thread per flush round")
		rounds        = flag.Int("rounds", 4, "flush rounds")
		instances     = flag.Int("instances", 0, "instances (0 = one per core, paper default)")
		assignment    = flag.String("assignment", "dedicated", "round-robin | dedicated")
		prog          = flag.String("progress", "serial", "serial | concurrent")
		machineName   = flag.String("machine", "trinitite", "alembert | trinitite | knl | fast")

		faultDrop  = flag.Float64("fault-drop", 0, "per-packet drop probability on the control path (enables ack/retransmit reliability; real engine)")
		faultDup   = flag.Float64("fault-dup", 0, "per-packet duplication probability (real engine)")
		faultDelay = flag.Float64("fault-delay", 0, "per-packet delayed-delivery (reorder) probability (real engine)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed")

		spcDump        = flag.Bool("spc-dump", false, "dump counters with per-CRI/per-communicator attribution (real engine)")
		metricsOut     = flag.String("metrics-out", "", "write a Prometheus text-format metrics snapshot to this file (real engine)")
		traceOut       = flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in chrome://tracing) (real engine)")
		samplesOut     = flag.String("samples-out", "", "write the sampler time series as CSV to this file (real engine)")
		sampleInterval = flag.Duration("sample-interval", 0, "background counter/histogram sampling interval, e.g. 10ms (real engine)")

		traceWire  = flag.Bool("trace-wire", false, "carry trace context on the wire and stitch cross-rank message lifecycles (real engine)")
		traceShard = flag.String("trace-shard", "", "write per-rank raw trace shard JSON (merge with tracemerge; real engine)")
		httpAddr   = flag.String("http", "", "serve live /metrics, /spc, /trace, /healthz and pprof on this address during the run (real engine)")

		profile      = flag.Bool("profile", false, "attach the contention profiler: per-lock wait attribution and per-thread phase accounting (real engine)")
		breakdownOut = flag.String("breakdown-out", "", "write the per-rank phase/lock-wait breakdown as JSON to this file (either engine)")
		pprofCont    = flag.Bool("pprof-contention", false, "enable Go runtime mutex/block profiling so the -http pprof endpoints carry contention profiles (real engine)")

		flightCap = flag.Int("flight", 0, "flight recorder: per-ring event capacity (0 = off; real engine)")
		flightOut = flag.String("flight-out", "", "write the flight-record exit dump (rings + final queue snapshot) as JSON to this file; implies -flight "+fmt.Sprint(flight.DefaultRingCapacity))
		watchdog  = flag.Bool("watchdog", false, "run the stall watchdog; a detected stall dumps the flight record and queue snapshot to stderr (real engine)")
	)
	flag.Parse()
	if *flightOut != "" && *flightCap <= 0 {
		*flightCap = flight.DefaultRingCapacity
	}

	// Telemetry observes the real runtime; the virtual-time model has
	// nothing to instrument. Any telemetry output implies the real engine.
	// The RMA-MT model has no flight mirror (unlike multirate), so the
	// flight and watchdog flags imply the real engine too.
	wantTelemetry := *spcDump || *metricsOut != "" || *traceOut != "" || *samplesOut != "" ||
		*sampleInterval > 0 || *traceWire || *traceShard != "" || *httpAddr != "" ||
		*flightCap > 0 || *watchdog
	if wantTelemetry && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "rmamt: telemetry flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	// -breakdown-out alone stays on the chosen engine: the virtual-time
	// model produces the breakdown deterministically.
	if (*profile || *pprofCont) && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "rmamt: profiling flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}

	// The tcp backend is two-sided only: it advertises no one-sided
	// capability, and rmamt is nothing but MPI_Put + MPI_Win_flush. Parse
	// and validate the flags anyway so a misspelled peer list fails with
	// the real error, not the capability one.
	switch *transportName {
	case "sim", "":
	case "tcp":
		peers, perr := backends.ParsePeers(*peerList)
		check(perr)
		if len(peers) < 2 {
			check(fmt.Errorf("-transport tcp needs -peers with one address per rank"))
		}
		if *rank < 0 || *rank >= len(peers) {
			check(fmt.Errorf("-rank %d outside the %d-address peer list", *rank, len(peers)))
		}
		addr := *listen
		if addr == "" {
			addr = peers[*rank]
		}
		check(fmt.Errorf("-transport tcp: the tcp backend (rank %d at %s) has no one-sided capability, and rmamt needs MPI_Put/MPI_Win_flush; use -engine sim, or the multirate benchmark for two-sided tcp runs", *rank, addr))
	default:
		check(fmt.Errorf("unknown transport %q", *transportName))
	}

	machine, err := machineByName(*machineName)
	check(err)
	asg, err := assignmentByName(*assignment)
	check(err)
	pm, err := progressByName(*prog)
	check(err)

	switch *engine {
	case "sim":
		res := simnet.RunRMAMT(simnet.RMAMTConfig{
			Machine: machine, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds,
			NumInstances: *instances, Assignment: asg, Progress: pm,
		})
		fmt.Printf("engine=sim transport=virtual caps=none threads=%d size=%dB puts=%d makespan=%v rate=%.0f puts/s peak=%.0f\n",
			*threads, *msgSize, res.Messages, res.Makespan, res.Rate,
			machine.PeakMessageRate(*msgSize))
		if *breakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "sim"}
			for _, b := range res.Breakdown {
				bf.Reports = append(bf.Reports, b.Report(designLabel(*prog, *assignment), *threads))
			}
			check(writeBreakdown(*breakdownOut, bf))
		}
	case "real":
		if *pprofCont {
			restore := obs.EnableContentionProfiling(0, 0)
			defer restore()
		}
		ni := *instances
		if ni <= 0 {
			ni = machine.DefaultContexts
		}
		wantProf := *profile || *breakdownOut != ""
		opts := core.Options{
			NumInstances: ni, Assignment: asg, Progress: pm,
			ThreadLevel: core.ThreadMultiple, Telemetry: wantTelemetry,
			Profile:   wantProf,
			TraceWire: *traceWire,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: *flightCap,
		}
		if *traceOut != "" || *traceShard != "" || *traceWire || *httpAddr != "" {
			opts.TraceCapacity = 1 << 16
		}
		outputs := &obs.Outputs{
			MetricsPath: *metricsOut, TracePath: *traceOut,
			SamplesPath: *samplesOut, ShardPath: *traceShard,
			FlightPath: *flightOut,
			Info: map[string]string{
				"cmd": "rmamt", "progress": *prog, "assignment": *assignment,
				"rank": fmt.Sprint(*rank),
			},
		}
		defer outputs.DumpOnPanic()
		// Bind the endpoint before the world exists; /readyz serves 503
		// until the OnWorld hook marks the holder ready.
		holder := obs.NewHolder(outputs.Info, "waiting for world construction")
		var srv *obs.Server
		if *httpAddr != "" {
			s, serr := obs.Serve(*httpAddr, holder.Source())
			check(serr)
			srv = s
			fmt.Fprintf(os.Stderr, "rmamt: observability endpoint on http://%s\n", s.Addr())
		}
		var stopWatchdog func()
		stopSignals := outputs.FlushOnSignal()
		res, err := bench.Run(bench.Config{
			Machine: machine, Opts: opts, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds, SampleInterval: *sampleInterval,
			OnSampler: outputs.BindSampler,
			OnWorld: func(w *core.World) {
				src := worldSource(w, outputs.Info)
				outputs.Bind(src)
				holder.Bind(src)
				holder.SetReady()
				if *watchdog {
					stopWatchdog = w.StartWatchdog(core.WatchdogConfig{})
				}
			},
		})
		check(err)
		stopSignals()
		if stopWatchdog != nil {
			stopWatchdog()
		}
		fmt.Printf("engine=real transport=%s caps=%s threads=%d size=%dB puts=%d elapsed=%v rate=%.0f puts/s%s\n",
			res.Transport.Name, res.Transport, *threads, *msgSize, res.Puts, res.Elapsed, res.Rate,
			headerPath("flight_out", *flightOut))
		if *spcDump {
			for _, ps := range res.Stats {
				check(ps.WriteText(os.Stdout))
			}
		}
		if *profile {
			for _, ps := range res.Stats {
				if !ps.Prof.Empty() {
					check(prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *threads, ps.Prof).WriteText(os.Stdout))
				}
			}
		}
		if *breakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "real"}
			for _, ps := range res.Stats {
				if ps.Prof.Empty() {
					continue
				}
				bf.Reports = append(bf.Reports, prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *threads, ps.Prof))
			}
			check(writeBreakdown(*breakdownOut, bf))
		}
		check(outputs.Flush())
		if srv != nil {
			_ = srv.Close()
		}
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// worldSource adapts a live world to the observability Source: every
// request snapshots the current counters, histograms, and trace shards of
// all local ranks.
func worldSource(w *core.World, info map[string]string) obs.Source {
	return obs.Source{
		Stats: func() []telemetry.ProcStats {
			var out []telemetry.ProcStats
			for _, p := range w.LocalProcs() {
				out = append(out, p.TelemetryStats())
			}
			return out
		},
		Events: func() []telemetry.RankEvents {
			var out []telemetry.RankEvents
			for _, p := range w.LocalProcs() {
				if p.Tracer() != nil {
					out = append(out, p.TraceEvents())
				}
			}
			return out
		},
		Queues: func() []flight.QueueSnapshot {
			var out []flight.QueueSnapshot
			for _, p := range w.LocalProcs() {
				out = append(out, p.QueueSnapshot())
			}
			return out
		},
		Flight: func() []flight.RankRecord {
			var out []flight.RankRecord
			for _, p := range w.LocalProcs() {
				if p.FlightRecorder() != nil {
					out = append(out, p.FlightRecord())
				}
			}
			return out
		},
		Info: info,
	}
}

// headerPath renders an optional "key=path" field for the self-describing
// benchmark header line, empty when the path is unset.
func headerPath(key, path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf(" %s=%s", key, path)
}

// designLabel names the configuration under test in breakdown reports.
func designLabel(progress, assignment string) string {
	return fmt.Sprintf("progress=%s,assignment=%s", progress, assignment)
}

func writeBreakdown(path string, bf prof.BreakdownFile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteBreakdown(f, bf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func assignmentByName(name string) (cri.Assignment, error) {
	switch name {
	case "round-robin", "rr":
		return cri.RoundRobin, nil
	case "dedicated":
		return cri.Dedicated, nil
	default:
		return 0, fmt.Errorf("unknown assignment %q", name)
	}
}

func progressByName(name string) (progress.Mode, error) {
	switch name {
	case "serial":
		return progress.Serial, nil
	case "concurrent":
		return progress.Concurrent, nil
	default:
		return 0, fmt.Errorf("unknown progress mode %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmamt:", err)
		os.Exit(1)
	}
}
