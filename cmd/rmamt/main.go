// Command rmamt runs the RMA-MT multithreaded one-sided benchmark
// (MPI_Put + MPI_Win_flush) on either the virtual-time model or the real
// runtime.
//
// Examples:
//
//	rmamt -threads 32 -size 1024 -assignment dedicated
//	rmamt -threads 32 -instances 1              # the "single instance" curve
//	rmamt -machine knl -threads 64
//	rmamt -engine real -threads 4 -puts 100
//	rmamt -engine real -threads 4 -stall 200ms -stall-at 1 -watchdog
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backends"
	"repro/internal/bench/cliobs"
	bench "repro/internal/bench/rmamt"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/simnet"
)

func main() {
	var (
		engine        = flag.String("engine", "sim", "sim (virtual time) or real (wall clock)")
		threads       = flag.Int("threads", 32, "origin-side threads")
		transportName = flag.String("transport", "sim", "transport backend: sim | tcp (tcp is parsed but rejected: it lacks one-sided support)")
		rank          = flag.Int("rank", 0, "this process's world rank (tcp transport)")
		listen        = flag.String("listen", "", "accept address for this rank (tcp; default peers[rank])")
		peerList      = flag.String("peers", "", "comma-separated rank addresses, e.g. 127.0.0.1:7100,127.0.0.1:7101 (tcp)")
		msgSize       = flag.Int("size", 8, "put payload bytes")
		puts          = flag.Int("puts", 1000, "puts per thread per flush round")
		rounds        = flag.Int("rounds", 4, "flush rounds")
		instances     = flag.Int("instances", 0, "instances (0 = one per core, paper default)")
		assignment    = flag.String("assignment", "dedicated", "round-robin | dedicated")
		prog          = flag.String("progress", "serial", "serial | concurrent")
		machineName   = flag.String("machine", "trinitite", "alembert | trinitite | knl | fast")

		faultDrop  = flag.Float64("fault-drop", 0, "per-packet drop probability on the control path (enables ack/retransmit reliability; real engine)")
		faultDup   = flag.Float64("fault-dup", 0, "per-packet duplication probability (real engine)")
		faultDelay = flag.Float64("fault-delay", 0, "per-packet delayed-delivery (reorder) probability (real engine)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed")

		stallPut  = flag.Duration("stall", 0, "freeze origin thread 0 for this long mid-run, right before its flush of round -stall-at (real engine; pair with -watchdog or -http to watch the straggler surface)")
		stallAt   = flag.Int("stall-at", 0, "flush round at which the -stall freeze fires")
		stallRank = flag.Int("stall-rank", 0, "world rank the -stall freeze applies to, for flag parity with multirate (0 = the origin; the passive target rank has no put loop, so selecting it is a no-op)")
	)
	// The RMA-MT virtual-time model has no flight/latency mirror (unlike
	// multirate), so those flags imply the real engine.
	ob := cliobs.Register(flag.CommandLine, "rmamt", false)
	flag.Parse()
	ob.Normalize()

	// Telemetry observes the real runtime; the virtual-time model has
	// nothing to instrument. Any telemetry output implies the real engine,
	// and for this command so do the flight, watchdog, trace-wire, and
	// latency flags.
	if ob.WantTelemetry() && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "rmamt: telemetry flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	// -breakdown-out alone stays on the chosen engine: the virtual-time
	// model produces the breakdown deterministically.
	if (ob.Profile || ob.PprofContention) && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "rmamt: profiling flags instrument the real runtime; switching to -engine real")
		*engine = "real"
	}
	// The stall injection freezes a live thread; the virtual model has no
	// RMA stall hook.
	if *stallPut > 0 && *engine == "sim" {
		fmt.Fprintln(os.Stderr, "rmamt: -stall freezes a live origin thread; switching to -engine real")
		*engine = "real"
	}

	// The tcp backend is two-sided only: it advertises no one-sided
	// capability, and rmamt is nothing but MPI_Put + MPI_Win_flush. Parse
	// and validate the flags anyway so a misspelled peer list fails with
	// the real error, not the capability one.
	switch *transportName {
	case "sim", "":
	case "tcp":
		peers, perr := backends.ParsePeers(*peerList)
		check(perr)
		if len(peers) < 2 {
			check(fmt.Errorf("-transport tcp needs -peers with one address per rank"))
		}
		if *rank < 0 || *rank >= len(peers) {
			check(fmt.Errorf("-rank %d outside the %d-address peer list", *rank, len(peers)))
		}
		addr := *listen
		if addr == "" {
			addr = peers[*rank]
		}
		check(fmt.Errorf("-transport tcp: the tcp backend (rank %d at %s) has no one-sided capability, and rmamt needs MPI_Put/MPI_Win_flush; use -engine sim, or the multirate benchmark for two-sided tcp runs", *rank, addr))
	default:
		check(fmt.Errorf("unknown transport %q", *transportName))
	}

	machine, err := machineByName(*machineName)
	check(err)
	asg, err := assignmentByName(*assignment)
	check(err)
	pm, err := progressByName(*prog)
	check(err)

	switch *engine {
	case "sim":
		res := simnet.RunRMAMT(simnet.RMAMTConfig{
			Machine: machine, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds,
			NumInstances: *instances, Assignment: asg, Progress: pm,
		})
		fmt.Printf("engine=sim transport=virtual caps=none threads=%d size=%dB puts=%d makespan=%v rate=%.0f puts/s peak=%.0f\n",
			*threads, *msgSize, res.Messages, res.Makespan, res.Rate,
			machine.PeakMessageRate(*msgSize))
		if ob.BreakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "sim"}
			for _, b := range res.Breakdown {
				bf.Reports = append(bf.Reports, b.Report(designLabel(*prog, *assignment), *threads))
			}
			check(cliobs.WriteBreakdown(ob.BreakdownOut, bf))
		}
	case "real":
		ni := *instances
		if ni <= 0 {
			ni = machine.DefaultContexts
		}
		wantProf := ob.Profile || ob.BreakdownOut != ""
		opts := core.Options{
			NumInstances: ni, Assignment: asg, Progress: pm,
			ThreadLevel: core.ThreadMultiple, Telemetry: ob.WantTelemetry(),
			Profile:   wantProf,
			TraceWire: ob.TraceWire,
			Latency:   ob.Latency,
			FaultDrop: *faultDrop, FaultDup: *faultDup,
			FaultDelay: *faultDelay, FaultSeed: *faultSeed,
			FlightCapacity: ob.FlightCap,
		}
		if ob.TraceOut != "" || ob.TraceShard != "" || ob.TraceWire || ob.HTTPAddr != "" {
			opts.TraceCapacity = 1 << 16
		}
		sess, serr := ob.Start(map[string]string{
			"cmd": "rmamt", "progress": *prog, "assignment": *assignment,
			"rank": fmt.Sprint(*rank),
		})
		check(serr)
		defer sess.Outputs.DumpOnPanic()
		if addr := sess.Addr(); addr != "" {
			fmt.Fprintf(os.Stderr, "rmamt: observability endpoint on http://%s\n", addr)
		}
		res, err := bench.Run(bench.Config{
			Machine: machine, Opts: opts, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds, SampleInterval: ob.SampleInterval,
			StallPut: *stallPut, StallAfterRound: *stallAt, StallRank: *stallRank,
			OnSampler: sess.Outputs.BindSampler,
			OnWorld:   sess.BindWorld,
		})
		check(err)
		fmt.Printf("engine=real transport=%s caps=%s threads=%d size=%dB puts=%d elapsed=%v rate=%.0f puts/s%s%s\n",
			res.Transport.Name, res.Transport, *threads, *msgSize, res.Puts, res.Elapsed, res.Rate,
			cliobs.HeaderPath("flight_out", ob.FlightOut),
			cliobs.HeaderPath("latency_out", ob.LatencyOut))
		if ob.SPCDump {
			for _, ps := range res.Stats {
				check(ps.WriteText(os.Stdout))
			}
		}
		if ob.Profile {
			for _, ps := range res.Stats {
				if !ps.Prof.Empty() {
					check(prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *threads, ps.Prof).WriteText(os.Stdout))
				}
			}
		}
		if ob.BreakdownOut != "" {
			bf := prof.BreakdownFile{Engine: "real"}
			for _, ps := range res.Stats {
				if ps.Prof.Empty() {
					continue
				}
				bf.Reports = append(bf.Reports, prof.BuildReport(ps.Rank, designLabel(*prog, *assignment), *threads, ps.Prof))
			}
			check(cliobs.WriteBreakdown(ob.BreakdownOut, bf))
		}
		check(sess.Finish())
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// designLabel names the configuration under test in breakdown reports.
func designLabel(progress, assignment string) string {
	return fmt.Sprintf("progress=%s,assignment=%s", progress, assignment)
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func assignmentByName(name string) (cri.Assignment, error) {
	switch name {
	case "round-robin", "rr":
		return cri.RoundRobin, nil
	case "dedicated":
		return cri.Dedicated, nil
	default:
		return 0, fmt.Errorf("unknown assignment %q", name)
	}
}

func progressByName(name string) (progress.Mode, error) {
	switch name {
	case "serial":
		return progress.Serial, nil
	case "concurrent":
		return progress.Concurrent, nil
	default:
		return 0, fmt.Errorf("unknown progress mode %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmamt:", err)
		os.Exit(1)
	}
}
