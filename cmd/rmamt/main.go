// Command rmamt runs the RMA-MT multithreaded one-sided benchmark
// (MPI_Put + MPI_Win_flush) on either the virtual-time model or the real
// runtime.
//
// Examples:
//
//	rmamt -threads 32 -size 1024 -assignment dedicated
//	rmamt -threads 32 -instances 1              # the "single instance" curve
//	rmamt -machine knl -threads 64
//	rmamt -engine real -threads 4 -puts 100
package main

import (
	"flag"
	"fmt"
	"os"

	bench "repro/internal/bench/rmamt"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
)

func main() {
	var (
		engine      = flag.String("engine", "sim", "sim (virtual time) or real (wall clock)")
		threads     = flag.Int("threads", 32, "origin-side threads")
		msgSize     = flag.Int("size", 8, "put payload bytes")
		puts        = flag.Int("puts", 1000, "puts per thread per flush round")
		rounds      = flag.Int("rounds", 4, "flush rounds")
		instances   = flag.Int("instances", 0, "instances (0 = one per core, paper default)")
		assignment  = flag.String("assignment", "dedicated", "round-robin | dedicated")
		prog        = flag.String("progress", "serial", "serial | concurrent")
		machineName = flag.String("machine", "trinitite", "alembert | trinitite | knl | fast")
	)
	flag.Parse()

	machine, err := machineByName(*machineName)
	check(err)
	asg, err := assignmentByName(*assignment)
	check(err)
	pm, err := progressByName(*prog)
	check(err)

	switch *engine {
	case "sim":
		res := simnet.RunRMAMT(simnet.RMAMTConfig{
			Machine: machine, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds,
			NumInstances: *instances, Assignment: asg, Progress: pm,
		})
		fmt.Printf("engine=sim threads=%d size=%dB puts=%d makespan=%v rate=%.0f puts/s peak=%.0f\n",
			*threads, *msgSize, res.Messages, res.Makespan, res.Rate,
			machine.PeakMessageRate(*msgSize))
	case "real":
		ni := *instances
		if ni <= 0 {
			ni = machine.DefaultContexts
		}
		opts := core.Options{NumInstances: ni, Assignment: asg, Progress: pm, ThreadLevel: core.ThreadMultiple}
		res, err := bench.Run(bench.Config{
			Machine: machine, Opts: opts, Threads: *threads, MsgSize: *msgSize,
			PutsPerThread: *puts, Rounds: *rounds,
		})
		check(err)
		fmt.Printf("engine=real threads=%d size=%dB puts=%d elapsed=%v rate=%.0f puts/s\n",
			*threads, *msgSize, res.Puts, res.Elapsed, res.Rate)
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

func machineByName(name string) (hw.Machine, error) {
	switch name {
	case "alembert":
		return hw.AlembertHaswell(), nil
	case "trinitite":
		return hw.TrinititeHaswell(), nil
	case "knl":
		return hw.TrinititeKNL(), nil
	case "fast":
		return hw.Fast(), nil
	default:
		return hw.Machine{}, fmt.Errorf("unknown machine %q", name)
	}
}

func assignmentByName(name string) (cri.Assignment, error) {
	switch name {
	case "round-robin", "rr":
		return cri.RoundRobin, nil
	case "dedicated":
		return cri.Dedicated, nil
	default:
		return 0, fmt.Errorf("unknown assignment %q", name)
	}
}

func progressByName(name string) (progress.Mode, error) {
	switch name {
	case "serial":
		return progress.Serial, nil
	case "concurrent":
		return progress.Concurrent, nil
	default:
		return 0, fmt.Errorf("unknown progress mode %q", name)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmamt:", err)
		os.Exit(1)
	}
}
