// Command tracemerge merges per-rank trace shards into one clock-corrected
// Chrome trace.
//
// Each process of a distributed traced run (-trace-wire -trace-shard on
// cmd/multirate) writes a shard JSON carrying its events plus two anchors:
// the tracer's wall-clock base and the handshake-estimated clock offset to
// rank 0. tracemerge reads any number of shards, places every rank on rank
// 0's clock, and writes a single trace-event JSON with cross-rank flow
// arrows — load it in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	tracemerge -o merged.json shard-rank0.json shard-rank1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/telemetry"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracemerge [-o merged.json] shard.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	shards := make([]telemetry.RankEvents, 0, flag.NArg())
	seen := make(map[int]string)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		check(err)
		re, err := telemetry.ReadTraceShard(f)
		f.Close()
		if err != nil {
			check(fmt.Errorf("%s: %w", path, err))
		}
		if prev, dup := seen[re.Rank]; dup {
			check(fmt.Errorf("%s: rank %d already provided by %s", path, re.Rank, prev))
		}
		seen[re.Rank] = path
		shards = append(shards, re)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Rank < shards[j].Rank })

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer func() { check(f.Close()) }()
		w = f
	}
	check(telemetry.WriteChromeTraceRanks(w, shards))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracemerge:", err)
		os.Exit(1)
	}
}
