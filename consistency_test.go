// Cross-engine consistency: the real runtime (internal/core, wall clock)
// and the virtual-time model (internal/simnet) implement the same message
// path; their *count* invariants must agree on identical workloads even
// though their timings differ.
package repro_test

import (
	"testing"

	benchmr "repro/internal/bench/multirate"
	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
	"repro/internal/spc"
)

func TestEnginesAgreeOnMessageCounts(t *testing.T) {
	const (
		pairs  = 3
		window = 32
		iters  = 2
	)
	want := int64(pairs * window * iters)

	rres, err := benchmr.Run(benchmr.Config{
		Machine: hw.Fast(), Opts: core.CRIsConcurrent(pairs, cri.Dedicated),
		Pairs: pairs, Window: window, Iters: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	sres := simnet.RunMultirate(simnet.Config{
		Machine: hw.Fast(), Pairs: pairs, Window: window, Iters: iters,
		NumInstances: pairs, Assignment: cri.Dedicated, Progress: progress.Concurrent,
	})
	cases := []struct {
		name     string
		rv, simv int64
	}{
		// Both harnesses report the receiver side's counters, so
		// messages_received is the observable; sent is on the sender proc.
		{"messages", rres.Messages, sres.Messages},
		{"messages_received", rres.SPCs.Get(spc.MessagesReceived), sres.SPCs.Get(spc.MessagesReceived)},
	}
	for _, c := range cases {
		if c.rv != want || c.simv != want {
			t.Errorf("%s: real %d, sim %d, want %d", c.name, c.rv, c.simv, want)
		}
	}
}

func TestEnginesAgreeOvertakingEliminatesOOS(t *testing.T) {
	const (
		pairs  = 3
		window = 16
		iters  = 2
	)
	real, err := benchmr.Run(benchmr.Config{
		Machine: hw.Fast(), Opts: core.CRIsConcurrent(pairs, cri.Dedicated),
		Pairs: pairs, Window: window, Iters: iters,
		AnyTag: true, Overtaking: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.RunMultirate(simnet.Config{
		Machine: hw.Fast(), Pairs: pairs, Window: window, Iters: iters,
		NumInstances: pairs, Assignment: cri.Dedicated, Progress: progress.Concurrent,
		AnyTagRecv: true, AllowOvertaking: true,
	})
	if r := real.SPCs.Get(spc.OutOfSequence); r != 0 {
		t.Errorf("real engine recorded %d OOS under overtaking", r)
	}
	if s := sim.SPCs.Get(spc.OutOfSequence); s != 0 {
		t.Errorf("sim engine recorded %d OOS under overtaking", s)
	}
}

func TestEnginesAgreeCommPerPairFIFOHasNoOOS(t *testing.T) {
	// One sender thread per communicator through a dedicated instance:
	// strictly FIFO end to end — both engines must record zero OOS.
	const (
		pairs  = 4
		window = 16
		iters  = 2
	)
	real, err := benchmr.Run(benchmr.Config{
		Machine: hw.Fast(), Opts: core.CRIsConcurrent(pairs, cri.Dedicated),
		Pairs: pairs, Window: window, Iters: iters, CommPerPair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.RunMultirate(simnet.Config{
		Machine: hw.Fast(), Pairs: pairs, Window: window, Iters: iters,
		NumInstances: pairs, Assignment: cri.Dedicated, Progress: progress.Concurrent,
		CommPerPair: true,
	})
	if r := real.SPCs.Get(spc.OutOfSequence); r != 0 {
		t.Errorf("real engine: comm-per-pair dedicated OOS = %d", r)
	}
	if s := sim.SPCs.Get(spc.OutOfSequence); s != 0 {
		t.Errorf("sim engine: comm-per-pair dedicated OOS = %d", s)
	}
}
