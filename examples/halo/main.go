// Halo: a 2-D Jacobi-style stencil with MPI+threads hybrid decomposition.
//
// The global grid is split into P vertical slabs (one per process); each
// process runs T worker threads that own horizontal strips of the slab.
// Every iteration, processes exchange slab-boundary columns with their left
// and right neighbors — each worker thread exchanges *its own strip's*
// boundary segment concurrently, the MPI+X pattern whose messaging rate the
// paper's study is about.
//
// Following the paper's Fig. 3c guidance, each worker-thread row uses a
// private communicator so boundary matching proceeds concurrently.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
)

const (
	procs      = 4  // vertical slabs
	threadsPer = 4  // strips per slab
	rowsPer    = 16 // grid rows per strip
	cols       = 64 // columns per slab (interior)
	iterations = 20
)

// strip is one worker thread's share: rows x (cols+2) cells with one halo
// column on each side.
type strip struct {
	cells [][]float64
}

func newStrip(rows int, initial float64) *strip {
	s := &strip{cells: make([][]float64, rows)}
	for r := range s.cells {
		s.cells[r] = make([]float64, cols+2)
		for c := range s.cells[r] {
			s.cells[r][c] = initial
		}
	}
	return s
}

func main() {
	world, err := core.NewWorld(hw.Fast(), procs, core.CRIsConcurrent(threadsPer, cri.Dedicated))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// One communicator per thread row, spanning all processes: boundary
	// exchanges of different strips never contend on matching state.
	rowComms := make([][]*core.Comm, threadsPer)
	for tRow := range rowComms {
		rowComms[tRow], err = world.NewComm(allRanks(procs))
		if err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	results := make([][]float64, procs*threadsPer)
	for p := 0; p < procs; p++ {
		for tRow := 0; tRow < threadsPer; tRow++ {
			wg.Add(1)
			go func(p, tRow int) {
				defer wg.Done()
				results[p*threadsPer+tRow] = worker(world, rowComms[tRow][p], p, tRow)
			}(p, tRow)
		}
	}
	wg.Wait()

	// Interior slabs converge toward the fixed boundary values; report the
	// residual per slab to show the stencil actually exchanged halos.
	for p := 0; p < procs; p++ {
		var sum float64
		for tRow := 0; tRow < threadsPer; tRow++ {
			for _, v := range results[p*threadsPer+tRow] {
				sum += v
			}
		}
		fmt.Printf("slab %d: mean boundary-adjacent value %.4f\n", p, sum/float64(threadsPer*rowsPer*2))
	}
	fmt.Println("halo exchange complete:", iterations, "iterations,",
		procs, "processes x", threadsPer, "threads")
}

// worker runs one strip's Jacobi iterations, exchanging halo columns with
// the horizontal neighbors through its own thread handle and row
// communicator.
func worker(world *core.World, comm *core.Comm, p, tRow int) []float64 {
	th := comm.Proc().NewThread()
	// Initial condition: slab p starts at value p (a step function that
	// diffuses across slabs only if halo exchange works).
	cur := newStrip(rowsPer, float64(p))
	next := newStrip(rowsPer, 0)

	left, right := p-1, p+1
	sendBuf := make([]byte, rowsPer*8)
	recvBuf := make([]byte, rowsPer*8)

	for it := 0; it < iterations; it++ {
		// Exchange right boundary with right neighbor, then left.
		if right < procs {
			packColumn(cur, cols, sendBuf)
			rreq, err := comm.Irecv(th, right, tagHalo(it, 0), recvBuf)
			fatal(err)
			fatal(comm.Send(th, right, tagHalo(it, 1), sendBuf))
			fatal(rreq.Wait(th))
			unpackColumn(cur, cols+1, recvBuf)
		}
		if left >= 0 {
			packColumn(cur, 1, sendBuf)
			rreq, err := comm.Irecv(th, left, tagHalo(it, 1), recvBuf)
			fatal(err)
			fatal(comm.Send(th, left, tagHalo(it, 0), sendBuf))
			fatal(rreq.Wait(th))
			unpackColumn(cur, 0, recvBuf)
		}
		// Jacobi sweep over the interior (vertical halos between strips of
		// the same process are skipped for brevity; each strip relaxes
		// independently, which is enough to exercise the messaging).
		for r := 0; r < rowsPer; r++ {
			for c := 1; c <= cols; c++ {
				up, down := cur.cells[max(r-1, 0)][c], cur.cells[min(r+1, rowsPer-1)][c]
				next.cells[r][c] = 0.25 * (cur.cells[r][c-1] + cur.cells[r][c+1] + up + down)
			}
			// Edge columns keep exchanged halo values.
			next.cells[r][0] = cur.cells[r][0]
			next.cells[r][cols+1] = cur.cells[r][cols+1]
		}
		cur, next = next, cur
	}

	// Return the boundary-adjacent values as the worker's result.
	out := make([]float64, 0, rowsPer*2)
	for r := 0; r < rowsPer; r++ {
		out = append(out, cur.cells[r][1], cur.cells[r][cols])
	}
	return out
}

func tagHalo(iter, dir int) int32 { return int32(iter*2 + dir) }

func packColumn(s *strip, col int, buf []byte) {
	for r := 0; r < rowsPer; r++ {
		bits := math.Float64bits(s.cells[r][col])
		for i := 0; i < 8; i++ {
			buf[r*8+i] = byte(bits >> (8 * i))
		}
	}
}

func unpackColumn(s *strip, col int, buf []byte) {
	for r := 0; r < rowsPer; r++ {
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(buf[r*8+i]) << (8 * i)
		}
		s.cells[r][col] = math.Float64frombits(bits)
	}
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
