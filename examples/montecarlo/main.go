// Montecarlo: hybrid MPI+threads Monte Carlo π estimation using the
// collective layer — the bulk-synchronous MPI+X pattern (compute on
// threads, Allreduce between phases) whose communication behavior motivates
// the paper's study.
//
// Each process runs several worker threads sampling points; per round, the
// process-local tallies are combined with Allreduce(OpSumInt64) and every
// rank checks the running estimate against the convergence bound. A final
// Gather collects per-rank statistics at rank 0.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
)

const (
	procs          = 4
	threadsPer     = 4
	samplesPerThr  = 200_000
	roundsMax      = 8
	targetAccuracy = 2e-3
)

func main() {
	world, err := core.NewWorld(hw.Fast(), procs, core.CRIsConcurrent(threadsPer, cri.Dedicated))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	results := make([]string, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank] = runRank(world, rank)
		}(p)
	}
	wg.Wait()
	for _, line := range results {
		if line != "" {
			fmt.Println(line)
		}
	}
}

// runRank executes one MPI process: threads sample, the main thread runs
// the collective phases.
func runRank(world *core.World, rank int) string {
	proc := world.Proc(rank)
	comm := proc.CommWorld()
	main := proc.NewThread()

	var inside, total atomic.Int64
	sample := func(seed uint64, n int) {
		x := seed
		hits := int64(0)
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			px := float64(x>>40) / float64(1<<24)
			x = x*6364136223846793005 + 1442695040888963407
			py := float64(x>>40) / float64(1<<24)
			if px*px+py*py <= 1 {
				hits++
			}
		}
		inside.Add(hits)
		total.Add(int64(n))
	}

	estimate := 0.0
	round := 0
	for ; round < roundsMax; round++ {
		// Compute phase: threads sample in parallel.
		var tw sync.WaitGroup
		for g := 0; g < threadsPer; g++ {
			tw.Add(1)
			go func(g int) {
				defer tw.Done()
				seed := uint64(rank*threadsPer+g+1)*0x9E3779B97F4A7C15 + uint64(round)
				sample(seed, samplesPerThr)
			}(g)
		}
		tw.Wait()

		// Communication phase: global tallies via Allreduce.
		in := make([]byte, 16)
		binary.LittleEndian.PutUint64(in[0:], uint64(inside.Load()))
		binary.LittleEndian.PutUint64(in[8:], uint64(total.Load()))
		out := make([]byte, 16)
		if err := comm.Allreduce(main, in, out, core.OpSumInt64); err != nil {
			log.Fatal(err)
		}
		gIn := int64(binary.LittleEndian.Uint64(out[0:]))
		gTot := int64(binary.LittleEndian.Uint64(out[8:]))
		estimate = 4 * float64(gIn) / float64(gTot)
		if math.Abs(estimate-math.Pi) < targetAccuracy {
			round++
			break
		}
	}

	// Gather per-rank sample counts at rank 0 for the report.
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint64(mine, uint64(total.Load()))
	var all []byte
	if rank == 0 {
		all = make([]byte, 8*world.Size())
	}
	if err := comm.Gather(main, 0, mine, all); err != nil {
		log.Fatal(err)
	}
	if err := comm.Barrier(main); err != nil {
		log.Fatal(err)
	}
	if rank != 0 {
		return ""
	}
	var grand int64
	for r := 0; r < world.Size(); r++ {
		grand += int64(binary.LittleEndian.Uint64(all[8*r:]))
	}
	return fmt.Sprintf("pi ≈ %.6f after %d rounds, %d samples across %d ranks x %d threads (|err| = %.2e)",
		estimate, round, grand, procs, threadsPer, math.Abs(estimate-math.Pi))
}
