// Quickstart: create a world, exchange messages between two processes, and
// run multiple communicating threads against one process — the minimal tour
// of the runtime's two-sided API.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
)

func main() {
	// A world is a job: here two simulated MPI processes connected by the
	// in-memory fabric, using the paper's recommended configuration —
	// multiple communication resource instances, dedicated to threads,
	// with the concurrent progress engine.
	world, err := core.NewWorld(hw.Fast(), 2, core.CRIsConcurrent(4, cri.Dedicated))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Every process addresses peers through a communicator handle.
	comm0 := world.Proc(0).CommWorld()
	comm1 := world.Proc(1).CommWorld()

	// Part 1: blocking ping-pong on the main threads.
	go func() {
		th := world.Proc(1).NewThread()
		buf := make([]byte, 64)
		st, err := comm1.Recv(th, 0, 1, buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank 1 received %q (tag %d, %d bytes)\n", buf[:st.Count], st.Tag, st.Count)
		if err := comm1.Send(th, 0, 2, []byte("pong")); err != nil {
			log.Fatal(err)
		}
	}()

	th0 := world.Proc(0).NewThread()
	if err := comm0.Send(th0, 1, 1, []byte("ping")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	st, err := comm0.Recv(th0, 1, 2, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank 0 received %q\n", buf[:st.Count])

	// Part 2: MPI_THREAD_MULTIPLE — four threads per side exchanging
	// concurrently on the same communicator. Each thread gets its own
	// Thread handle (the explicit stand-in for thread-local storage) and
	// a dedicated communication resource instance.
	const threads, msgs = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			th := world.Proc(0).NewThread()
			for i := 0; i < msgs; i++ {
				if err := comm0.Send(th, 1, int32(10+g), []byte{byte(i)}); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			th := world.Proc(1).NewThread()
			b := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := comm1.Recv(th, 0, int32(10+g), b); err != nil {
					log.Fatal(err)
				}
				if b[0] != byte(i) {
					log.Fatalf("thread %d: message %d arrived as %d", g, i, b[0])
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("%d threads exchanged %d messages each, all in FIFO order\n", threads, msgs)

	// Part 3: non-blocking requests with wait-all.
	reqs := make([]*core.Request, 0, 8)
	recvBufs := make([][]byte, 8)
	th1 := world.Proc(1).NewThread()
	for i := range recvBufs {
		recvBufs[i] = make([]byte, 4)
		r, err := comm1.Irecv(th1, 0, 99, recvBufs[i])
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	for i := 0; i < 8; i++ {
		if _, err := comm0.Isend(th0, 1, 99, []byte{byte('a' + i)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := core.WaitAll(th1, reqs...); err != nil {
		log.Fatal(err)
	}
	fmt.Print("non-blocking batch delivered: ")
	for _, b := range recvBufs {
		fmt.Printf("%c", b[0])
	}
	fmt.Println()
}
