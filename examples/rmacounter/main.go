// Rmacounter: a distributed histogram built on passive-target one-sided
// communication — the access pattern Sections II-D and IV-F recommend for
// threaded applications because it has no matching stage.
//
// Rank 0 exposes a window of 64-bit bins. Every other process runs several
// threads that classify a stream of values and accumulate counts into the
// shared bins with MPI_Accumulate (remote atomic add), synchronizing with
// MPI_Win_flush. Each thread uses its own dedicated communication resource
// instance, so the threads never contend inside the runtime — the property
// Figures 6 and 7 quantify.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/rma"
)

const (
	procs        = 4 // rank 0 hosts the histogram; 1..3 produce
	threadsPer   = 4
	bins         = 16
	valuesPerThr = 5000
)

func main() {
	world, err := core.NewWorld(hw.Fast(), procs, core.CRIsConcurrent(threadsPer, cri.Dedicated))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	comms, err := world.NewComm(allRanks(procs))
	if err != nil {
		log.Fatal(err)
	}
	sizes := make([]int, procs)
	sizes[0] = bins * 8 // only rank 0 exposes memory
	wins, err := rma.New(comms, sizes)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 1; p < procs; p++ {
		win := wins[p]
		win.LockAll()
		for g := 0; g < threadsPer; g++ {
			wg.Add(1)
			go func(p, g int) {
				defer wg.Done()
				th := world.Proc(p).NewThread()
				// Deterministic pseudo-random value stream per thread.
				x := uint64(p*threadsPer+g)*0x9E3779B97F4A7C15 + 1
				local := make([]int64, bins)
				for i := 0; i < valuesPerThr; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					local[(x>>33)%bins]++
				}
				// Flush local counts to the shared histogram one bin at a
				// time (remote atomic adds; no target CPU involvement).
				for b, count := range local {
					if count == 0 {
						continue
					}
					if err := win.Accumulate(th, 0, b*8, []int64{count}, fabric.AccSum); err != nil {
						log.Fatal(err)
					}
				}
				if err := win.Flush(th, 0); err != nil {
					log.Fatal(err)
				}
			}(p, g)
		}
	}
	wg.Wait()
	for p := 1; p < procs; p++ {
		th := world.Proc(p).NewThread()
		if err := wins[p].UnlockAll(th); err != nil {
			log.Fatal(err)
		}
	}

	// Rank 0 reads its own window directly.
	mem := wins[0].Local()
	var total int64
	fmt.Println("bin  count")
	for b := 0; b < bins; b++ {
		var v int64
		for i := 7; i >= 0; i-- {
			v = v<<8 | int64(mem[b*8+i])
		}
		fmt.Printf("%3d  %d\n", b, v)
		total += v
	}
	want := int64((procs - 1) * threadsPer * valuesPerThr)
	if total != want {
		log.Fatalf("histogram total = %d, want %d (lost updates!)", total, want)
	}
	fmt.Printf("total %d values from %d producer threads — no updates lost\n",
		total, (procs-1)*threadsPer)
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
