// Taskqueue: a task-based master/worker runtime using message overtaking.
//
// Section IV-D and VI of the paper argue that runtimes which do not depend
// on message ordering — task-based systems above all — should assert
// mpi_assert_allow_overtaking and receive with wildcard tags, skipping both
// sequence validation and the matching-queue search. This example is that
// pattern: one master process farms variable-sized tasks to worker
// processes whose threads pull work with ANY_TAG receives on an
// overtaking-asserted communicator.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/spc"
)

const (
	workers       = 3  // worker processes
	threadsPerW   = 2  // puller threads per worker
	tasks         = 60 // total tasks
	resultTag     = 5000
	shutdownValue = 0xFF
)

func main() {
	world, err := core.NewWorld(hw.Fast(), workers+1, core.CRIsConcurrent(threadsPerW, cri.Dedicated))
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// The task channel communicator asserts overtaking: tasks are
	// independent, so FIFO matching is pure overhead.
	comms, err := world.NewCommWithInfo(allRanks(workers+1), core.Info{AllowOvertaking: true})
	if err != nil {
		log.Fatal(err)
	}
	master := comms[0]

	var done sync.WaitGroup
	var processed atomic.Int64

	// Workers: each thread loops pulling any task addressed to its rank.
	for wr := 1; wr <= workers; wr++ {
		for g := 0; g < threadsPerW; g++ {
			done.Add(1)
			go func(wr, g int) {
				defer done.Done()
				comm := comms[wr]
				th := comm.Proc().NewThread()
				buf := make([]byte, 8)
				for {
					// ANY_TAG: take whatever task arrives first — the
					// matching fast path the paper measures in Fig. 4.
					st, err := comm.Recv(th, 0, core.AnyTag, buf)
					if err != nil {
						log.Fatal(err)
					}
					if buf[0] == shutdownValue {
						return
					}
					// "Work": square the task payload.
					n := int(buf[0])
					result := []byte{byte(n * n % 251), byte(st.Tag)}
					if err := comm.Send(th, 0, resultTag, result); err != nil {
						log.Fatal(err)
					}
					processed.Add(1)
				}
			}(wr, g)
		}
	}

	// Master: scatter tasks round-robin with distinct tags, gather results
	// with a wildcard source.
	mth := master.Proc().NewThread()
	for i := 0; i < tasks; i++ {
		target := 1 + i%workers
		if err := master.Send(mth, target, int32(100+i), []byte{byte(i%200 + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	resBuf := make([]byte, 2)
	got := map[int32]bool{}
	for i := 0; i < tasks; i++ {
		st, err := master.Recv(mth, int(core.AnySource), resultTag, resBuf)
		if err != nil {
			log.Fatal(err)
		}
		tag := int32(resBuf[1])
		if got[tag] {
			log.Fatalf("duplicate result for task tag %d", tag)
		}
		got[tag] = true
		_ = st
	}
	// Poison pills: one per puller thread.
	for wr := 1; wr <= workers; wr++ {
		for g := 0; g < threadsPerW; g++ {
			if err := master.Send(mth, wr, 9999, []byte{shutdownValue}); err != nil {
				log.Fatal(err)
			}
		}
	}
	done.Wait()

	fmt.Printf("master scattered %d tasks to %d workers x %d threads; %d processed\n",
		tasks, workers, threadsPerW, processed.Load())
	// With overtaking asserted, the runtime never buffered an
	// out-of-sequence message.
	for wr := 1; wr <= workers; wr++ {
		if oos := world.Proc(wr).SPCSnapshot().Get(spc.OutOfSequence); oos != 0 {
			log.Fatalf("worker %d recorded %d out-of-sequence messages", wr, oos)
		}
	}
	fmt.Println("out-of-sequence messages across all workers: 0 (overtaking asserted)")
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
