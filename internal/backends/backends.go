// Package backends links the concrete transport backends to the runtime
// without the runtime naming them: core depends on this neutral glue for
// its default, so internal/core (and everything above it) never imports a
// concrete backend package — the same layering trick as database/sql
// drivers.
package backends

import (
	"repro/internal/fabric"
	"repro/internal/transport"
	"repro/internal/transport/tcpnet"
)

// Sim returns a fresh simulated in-process cluster — the default backend
// when a World is created without an explicit Network.
func Sim() transport.Network { return fabric.NewNetwork() }

// TCP returns a real TCP backend serving one rank of a multi-process job.
// listen is this rank's accept address; peers[r] is rank r's address.
func TCP(rank, size int, listen string, peers []string) (transport.Network, error) {
	return tcpnet.New(tcpnet.Config{Rank: rank, Size: size, Listen: listen, Peers: peers})
}

// ParsePeers splits a comma-separated rank address list, trimming
// whitespace and rejecting empty or duplicate entries, so every launcher
// front-end validates -peers the same way.
func ParsePeers(list string) ([]string, error) { return tcpnet.ParsePeers(list) }
