// Package cliobs factors the observability flag-and-flush wiring shared by
// the benchmark commands (cmd/multirate, cmd/rmamt): telemetry output
// files, the live HTTP endpoint, the flight recorder and watchdog, the
// contention profiler, and per-message critical-path latency attribution.
// Each command registers the shared flag set, starts a Session around its
// run, binds the world from its OnWorld hook, and finishes — the session
// owns the holder/server/signal-flush/watchdog lifecycle so the commands
// only keep their engine- and benchmark-specific logic.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/telemetry"
)

// Flags is the shared observability flag set.
type Flags struct {
	SPCDump        bool
	MetricsOut     string
	TraceOut       string
	SamplesOut     string
	SampleInterval time.Duration

	TraceWire  bool
	TraceShard string
	HTTPAddr   string

	Profile         bool
	BreakdownOut    string
	PprofContention bool

	FlightCap int
	FlightOut string
	Watchdog  bool

	Latency    bool
	LatencyOut string

	cmd string
	// simMirrors: the command's sim engine mirrors the flight recorder,
	// watchdog, and latency attribution in virtual time (multirate), so
	// those flags do not imply the real engine and their help text says
	// "either engine".
	simMirrors bool
}

// Register installs the shared flag set on fs. simMirrors selects the
// engine phrasing and telemetry implication for the flags the virtual-time
// model can mirror (flight, watchdog, latency).
func Register(fs *flag.FlagSet, cmd string, simMirrors bool) *Flags {
	f := &Flags{cmd: cmd, simMirrors: simMirrors}
	either := "real engine"
	latEngines := "real engine"
	if simMirrors {
		either = "either engine — sim records in virtual time"
		latEngines = "either engine — sim mirrors it deterministically; thread mode only"
	}
	fs.BoolVar(&f.SPCDump, "spc-dump", false, "dump counters with per-CRI/per-communicator attribution (real engine)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a Prometheus text-format metrics snapshot to this file (real engine)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace-event JSON file (load in chrome://tracing) (real engine)")
	fs.StringVar(&f.SamplesOut, "samples-out", "", "write the sampler time series as CSV to this file (real engine)")
	fs.DurationVar(&f.SampleInterval, "sample-interval", 0, "background counter/histogram sampling interval, e.g. 10ms (real engine)")
	fs.BoolVar(&f.TraceWire, "trace-wire", false, "carry trace context on the wire and stitch cross-rank message lifecycles (real engine)")
	fs.StringVar(&f.TraceShard, "trace-shard", "", "write this process's raw trace shard JSON to this file (merge with tracemerge; real engine)")
	fs.StringVar(&f.HTTPAddr, "http", "", "serve live /metrics, /spc, /trace, /debug/latency, /healthz and pprof on this address during the run (real engine)")
	fs.BoolVar(&f.Profile, "profile", false, "attach the contention profiler: per-lock wait attribution and per-thread phase accounting (real engine)")
	fs.StringVar(&f.BreakdownOut, "breakdown-out", "", "write the per-rank phase/lock-wait breakdown as JSON to this file (either engine; sim gives deterministic virtual-time numbers)")
	fs.BoolVar(&f.PprofContention, "pprof-contention", false, "enable Go runtime mutex/block profiling so the -http pprof endpoints carry contention profiles (real engine)")
	fs.IntVar(&f.FlightCap, "flight", 0, "flight recorder: per-ring event capacity (0 = off; "+either+")")
	fs.StringVar(&f.FlightOut, "flight-out", "", "write the flight-record exit dump (rings + final queue snapshot) as JSON to this file; implies -flight "+fmt.Sprint(flight.DefaultRingCapacity))
	fs.BoolVar(&f.Watchdog, "watchdog", false, "run the stall watchdog; a detected stall dumps the flight record and queue snapshot to stderr ("+either+")")
	fs.BoolVar(&f.Latency, "latency", false, "attach per-message critical-path attribution: stage histograms and tail exemplars ("+latEngines+")")
	fs.StringVar(&f.LatencyOut, "latency-out", "", "write the per-rank attribution dump (stage summaries + tail exemplars) as JSON to this file; implies -latency")
	return f
}

// Normalize resolves flag implications (output paths imply their layers).
// Call it right after flag.Parse.
func (f *Flags) Normalize() {
	if f.FlightOut != "" && f.FlightCap <= 0 {
		f.FlightCap = flight.DefaultRingCapacity
	}
	if f.LatencyOut != "" {
		f.Latency = true
	}
}

// WantTelemetry reports whether any requested output instruments the real
// runtime. For a command whose sim engine has no flight/latency mirror
// (simMirrors false), those flags imply the real engine too.
func (f *Flags) WantTelemetry() bool {
	want := f.SPCDump || f.MetricsOut != "" || f.TraceOut != "" || f.SamplesOut != "" ||
		f.SampleInterval > 0 || f.TraceShard != "" || f.HTTPAddr != ""
	if !f.simMirrors {
		want = want || f.TraceWire || f.FlightCap > 0 || f.Watchdog || f.Latency
	}
	return want
}

// Session owns the run-scoped observability state: the output sinks, the
// live endpoint's holder, and the stop hooks a finished run must fire.
type Session struct {
	Flags   *Flags
	Outputs *obs.Outputs
	Holder  *obs.Holder

	srv          *obs.Server
	stopSignals  func()
	stopWatchdog func()
	restoreProf  func()
}

// Start builds the output sinks, binds the live endpoint (which serves
// "not ready" until BindWorld), enables contention profiling when asked,
// and arms signal-triggered flushing. info labels every output.
func (f *Flags) Start(info map[string]string) (*Session, error) {
	s := &Session{Flags: f}
	if f.PprofContention {
		s.restoreProf = obs.EnableContentionProfiling(0, 0)
	}
	s.Outputs = &obs.Outputs{
		MetricsPath: f.MetricsOut, TracePath: f.TraceOut,
		SamplesPath: f.SamplesOut, ShardPath: f.TraceShard,
		FlightPath: f.FlightOut, LatencyPath: f.LatencyOut,
		Info: info,
	}
	// The endpoint binds before the world exists so orchestration can probe
	// liveness during startup; /readyz serves 503 until BindWorld.
	s.Holder = obs.NewHolder(info, "waiting for world construction")
	if f.HTTPAddr != "" {
		srv, err := obs.Serve(f.HTTPAddr, s.Holder.Source())
		if err != nil {
			return nil, err
		}
		s.srv = srv
	}
	s.stopSignals = s.Outputs.FlushOnSignal()
	return s, nil
}

// Addr returns the live endpoint's bound address ("" when -http is unset).
func (s *Session) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// BindWorld attaches a constructed world to the session: the outputs and
// the live endpoint start observing it, /readyz flips to 200, and the
// watchdog arms when requested. This is the commands' OnWorld hook.
func (s *Session) BindWorld(w *core.World) {
	src := WorldSource(w, s.Outputs.Info)
	s.Outputs.Bind(src)
	s.Holder.Bind(src)
	s.Holder.SetReady()
	if s.Flags.Watchdog {
		s.stopWatchdog = w.StartWatchdog(core.WatchdogConfig{})
	}
}

// Finish disarms the signal handler and watchdog, flushes every configured
// output, and closes the live endpoint.
func (s *Session) Finish() error {
	s.stopSignals()
	if s.stopWatchdog != nil {
		s.stopWatchdog()
	}
	err := s.Outputs.Flush()
	if s.srv != nil {
		_ = s.srv.Close()
	}
	if s.restoreProf != nil {
		s.restoreProf()
	}
	return err
}

// WorldSource adapts a live world to the observability Source: every
// request snapshots the current counters, histograms, trace shards, queue
// states, flight records, and latency attribution of all local ranks.
func WorldSource(w *core.World, info map[string]string) obs.Source {
	return obs.Source{
		Stats: func() []telemetry.ProcStats {
			var out []telemetry.ProcStats
			for _, p := range w.LocalProcs() {
				out = append(out, p.TelemetryStats())
			}
			return out
		},
		Events: func() []telemetry.RankEvents {
			var out []telemetry.RankEvents
			for _, p := range w.LocalProcs() {
				if p.Tracer() != nil {
					out = append(out, p.TraceEvents())
				}
			}
			return out
		},
		Queues: func() []flight.QueueSnapshot {
			var out []flight.QueueSnapshot
			for _, p := range w.LocalProcs() {
				out = append(out, p.QueueSnapshot())
			}
			return out
		},
		Flight: func() []flight.RankRecord {
			var out []flight.RankRecord
			for _, p := range w.LocalProcs() {
				if p.FlightRecorder() != nil {
					out = append(out, p.FlightRecord())
				}
			}
			return out
		},
		Latency: func() []latency.RankDump {
			var out []latency.RankDump
			for _, p := range w.LocalProcs() {
				if p.LatencyRecorder() != nil {
					out = append(out, p.LatencyDump())
				}
			}
			return out
		},
		Info: info,
	}
}

// HeaderPath renders an optional "key=path" field for the self-describing
// benchmark header line, empty when the path is unset.
func HeaderPath(key, path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf(" %s=%s", key, path)
}

// WriteBreakdown writes a phase/lock-wait breakdown file.
func WriteBreakdown(path string, bf prof.BreakdownFile) error {
	return writeTo(path, func(w *os.File) error { return prof.WriteBreakdown(w, bf) })
}

// WriteLatencyDumps writes per-rank attribution dumps (used by the sim
// engine, which returns the dumps in its result instead of holding a live
// world).
func WriteLatencyDumps(path string, dumps []latency.RankDump) error {
	return writeTo(path, func(w *os.File) error { return latency.WriteDumps(w, dumps) })
}

// WriteFlightDump writes a flight-record exit dump.
func WriteFlightDump(path string, dump flight.ExitDump) error {
	return writeTo(path, func(w *os.File) error { return flight.WriteExitDump(w, dump) })
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
