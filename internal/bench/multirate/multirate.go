// Package multirate implements the Multirate pairwise benchmark
// (Patinyasakdikul et al. [6]) over the real runtime (internal/core): N
// communication pairs, each iterating window-sized bursts of non-blocking
// sends/receives with wait-all, in either thread mode (pairs are threads of
// two processes) or process mode (each pair is its own process pair).
//
// This harness measures wall-clock rates on live goroutines. On a
// single-core host the multithreaded scaling shapes of the paper cannot
// materialize here; the deterministic virtual-time twin of this harness
// (internal/simnet) regenerates the figures. Both exist so the design can
// be validated functionally (here) and quantitatively (there).
package multirate

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Pattern selects the communication shape.
type Pattern int

const (
	// Pairwise: N sender threads paired with N receiver threads (the
	// paper's configuration, Fig. 2).
	Pairwise Pattern = iota
	// Incast: N sender threads all target a single receiver thread that
	// posts wildcard receives — maximal pressure on one matching stream.
	Incast
)

func (p Pattern) String() string {
	switch p {
	case Pairwise:
		return "pairwise"
	case Incast:
		return "incast"
	default:
		return "pattern(?)"
	}
}

// Config parameterizes one run.
type Config struct {
	// Machine is the hardware model (use hw.Fast for functional runs).
	Machine hw.Machine
	// Opts configures the runtime design under test.
	Opts core.Options
	// Pairs is the number of communication pairs.
	Pairs int
	// Window is the outstanding-message window (paper: 128).
	Window int
	// Iters is the number of window iterations.
	Iters int
	// MsgSize is the payload size (0 = envelope only).
	MsgSize int
	// CommPerPair gives each pair a private communicator (Fig. 3c mode).
	CommPerPair bool
	// AnyTag posts wildcard-tag receives (Fig. 4 mode).
	AnyTag bool
	// Overtaking asserts mpi_assert_allow_overtaking (Fig. 4 mode).
	Overtaking bool
	// ProcessMode maps each pair to its own process pair.
	ProcessMode bool
	// WorldSize is the number of OS processes in a distributed run
	// (RunDistributed only; 0 = 2). Must be even: ranks pair up as
	// (0,1), (2,3), ... with the even rank hosting the sender threads and
	// the odd rank the receivers of each process pair.
	WorldSize int
	// Pattern selects pairwise (default) or incast.
	Pattern Pattern
	// SampleInterval, when positive, runs a background sampler on the
	// receiver process snapshotting counters and histograms at this
	// interval; the time series lands in Result.Samples.
	SampleInterval time.Duration
	// OnWorld, when set, is called with the world right after construction
	// and before the measured section — the hook a command uses to attach
	// live observability (HTTP endpoint, signal-triggered flushing) to a
	// run in flight.
	OnWorld func(*core.World)
	// OnSampler, when set, is called with the background sampler right
	// after it starts (only when SampleInterval > 0), so an interrupted
	// run can stop it and flush the partial time series.
	OnSampler func(*telemetry.Sampler)
	// StallRecv, when positive, freezes every receiver thread on the
	// stalled rank for this wall-clock duration right after it posts
	// window iteration StallAfterIter — the real-engine sibling of
	// simnet's deterministic virtual stall injection, used to surface a
	// live straggler to the cluster imbalance detector: the whole rank's
	// receive side goes quiet while its peer keeps sending. The run still
	// completes with full totals once the freeze ends.
	StallRecv      time.Duration
	StallAfterIter int
	// StallRank restricts a distributed run's freeze to one world rank
	// (0 = the last, highest-numbered receiver rank). Single-process runs
	// ignore it: their only receiver process takes the freeze.
	StallRank int
}

func (c Config) withDefaults() Config {
	if c.Pairs <= 0 {
		c.Pairs = 1
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Iters <= 0 {
		c.Iters = 4
	}
	return c
}

// Result reports one run's outcome.
type Result struct {
	// Messages is the total message count.
	Messages int64
	// Elapsed is the wall-clock duration of the measured section.
	Elapsed time.Duration
	// Rate is Messages/Elapsed in msg/s.
	Rate float64
	// SPCs is the receiver-side counter snapshot: the full per-process
	// roll-up (residual + per-CRI + per-communicator child sets).
	SPCs spc.Snapshot
	// Transport names the backend the run used and its capability flags.
	Transport transport.Caps
	// Stats holds every process's attributed counter/histogram breakdown
	// in rank order (sender is rank 0, receiver rank 1 in thread mode).
	Stats []telemetry.ProcStats
	// Events holds every process's event trace when tracing was enabled
	// (Options.TraceCapacity > 0), in rank order.
	Events []telemetry.RankEvents
	// Samples is the sampler time series when Config.SampleInterval > 0.
	Samples []telemetry.Sample
	// TraceDump holds the receiver-side event trace rendered as text when
	// tracing was enabled (Options.TraceCapacity > 0).
	TraceDump string
}

// Run executes the benchmark.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Pattern == Incast {
		if cfg.ProcessMode {
			return Result{}, fmt.Errorf("multirate: incast has no process mode")
		}
		return runIncast(cfg)
	}
	if cfg.ProcessMode {
		return runProcesses(cfg)
	}
	return runThreads(cfg)
}

// runIncast: cfg.Pairs sender threads on proc 0, one receiver thread on
// proc 1 posting wildcard receives for the whole volume.
func runIncast(cfg Config) (Result, error) {
	w, err := core.NewWorld(cfg.Machine, 2, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	if cfg.OnWorld != nil {
		cfg.OnWorld(w)
	}
	info := core.Info{AllowOvertaking: cfg.Overtaking}
	comms, err := w.NewCommWithInfo([]int{0, 1}, info)
	if err != nil {
		return Result{}, err
	}
	smp := startSampler(cfg, w.Proc(1))
	errs := make(chan error, cfg.Pairs+1)
	var wg sync.WaitGroup
	start := time.Now()
	for pair := 0; pair < cfg.Pairs; pair++ {
		wg.Add(1)
		go func(pair int) {
			defer wg.Done()
			errs <- senderLoop(w.Proc(0).NewThread(), comms[0], cfg, int32(pair))
		}(pair)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := w.Proc(1).NewThread()
		defer th.Done()
		buf := make([]byte, cfg.MsgSize)
		total := cfg.Pairs * cfg.Window * cfg.Iters
		for i := 0; i < total; i++ {
			if _, err := comms[1].Recv(th, 0, core.AnyTag, buf); err != nil {
				errs <- fmt.Errorf("incast receiver: %w", err)
				return
			}
		}
		errs <- nil
	}()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			smp.Stop()
			return Result{}, err
		}
	}
	return result(cfg, elapsed, w, smp), nil
}

// startSampler attaches a background counter/histogram sampler observing p,
// or returns nil when Config.SampleInterval is unset.
func startSampler(cfg Config, p *core.Proc) *telemetry.Sampler {
	if cfg.SampleInterval <= 0 {
		return nil
	}
	s := telemetry.NewSampler(cfg.SampleInterval, func() (spc.Snapshot, []telemetry.NamedHist) {
		return p.SPCSnapshot(), p.Telemetry().Snapshot()
	})
	if p.Profiler().Enabled() {
		s.BindProf(p.Profiler().Snapshot)
	}
	s.Start()
	if cfg.OnSampler != nil {
		cfg.OnSampler(s)
	}
	return s
}

func runThreads(cfg Config) (Result, error) {
	w, err := core.NewWorld(cfg.Machine, 2, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	if cfg.OnWorld != nil {
		cfg.OnWorld(w)
	}

	info := core.Info{AllowOvertaking: cfg.Overtaking}
	sendComms := make([]*core.Comm, cfg.Pairs)
	recvComms := make([]*core.Comm, cfg.Pairs)
	for pair := 0; pair < cfg.Pairs; pair++ {
		if cfg.CommPerPair || pair == 0 {
			comms, err := w.NewCommWithInfo([]int{0, 1}, info)
			if err != nil {
				return Result{}, err
			}
			sendComms[pair], recvComms[pair] = comms[0], comms[1]
		} else {
			sendComms[pair], recvComms[pair] = sendComms[0], recvComms[0]
		}
	}

	smp := startSampler(cfg, w.Proc(1))
	errs := make(chan error, 2*cfg.Pairs)
	var wg sync.WaitGroup
	start := time.Now()
	for pair := 0; pair < cfg.Pairs; pair++ {
		wg.Add(2)
		go func(pair int) {
			defer wg.Done()
			errs <- senderLoop(w.Proc(0).NewThread(), sendComms[pair], cfg, int32(pair))
		}(pair)
		go func(pair int) {
			defer wg.Done()
			errs <- receiverLoop(w.Proc(1).NewThread(), recvComms[pair], cfg, int32(pair), cfg.stallsHere(1, 0))
		}(pair)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			smp.Stop()
			return Result{}, err
		}
	}
	res := result(cfg, elapsed, w, smp)
	res.TraceDump = traceDump(w.Proc(1))
	return res, nil
}

// traceDump renders the proc's event trace, or "" without a tracer.
func traceDump(p *core.Proc) string {
	tr := p.Tracer()
	if tr == nil {
		return ""
	}
	var sb strings.Builder
	_ = tr.Dump(&sb)
	return sb.String()
}

func runProcesses(cfg Config) (Result, error) {
	w, err := core.NewWorld(cfg.Machine, 2*cfg.Pairs, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	if cfg.OnWorld != nil {
		cfg.OnWorld(w)
	}

	info := core.Info{AllowOvertaking: cfg.Overtaking}
	type pairComms struct{ s, r *core.Comm }
	pcs := make([]pairComms, cfg.Pairs)
	for pair := 0; pair < cfg.Pairs; pair++ {
		comms, err := w.NewCommWithInfo([]int{2 * pair, 2*pair + 1}, info)
		if err != nil {
			return Result{}, err
		}
		pcs[pair] = pairComms{comms[0], comms[1]}
	}
	errs := make(chan error, 2*cfg.Pairs)
	var wg sync.WaitGroup
	start := time.Now()
	for pair := 0; pair < cfg.Pairs; pair++ {
		wg.Add(2)
		go func(pair int) {
			defer wg.Done()
			errs <- senderLoop(pcs[pair].s.Proc().NewThread(), pcs[pair].s, cfg, 0)
		}(pair)
		go func(pair int) {
			defer wg.Done()
			errs <- receiverLoop(pcs[pair].r.Proc().NewThread(), pcs[pair].r, cfg, 0, cfg.stallsHere(1, 0))
		}(pair)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	// Aggregate receiver-side SPC roll-ups across all receiver procs.
	snaps := make([]spc.Snapshot, 0, cfg.Pairs)
	for pair := 0; pair < cfg.Pairs; pair++ {
		snaps = append(snaps, pcs[pair].r.Proc().SPCSnapshot())
	}
	res := result(cfg, elapsed, w, nil)
	res.SPCs = spc.Merge(snaps...)
	return res, nil
}

// result assembles the common fields: rates, the receiver roll-up (rank 1,
// the convention every caller of Result.SPCs relies on), and per-process
// attributed stats and traces for all ranks.
func result(cfg Config, elapsed time.Duration, w *core.World, smp *telemetry.Sampler) Result {
	total := int64(cfg.Pairs) * int64(cfg.Window) * int64(cfg.Iters)
	r := Result{Messages: total, Elapsed: elapsed}
	if elapsed > 0 {
		r.Rate = float64(total) / elapsed.Seconds()
	}
	if w != nil {
		r.Transport = w.TransportCaps()
		r.SPCs = w.Proc(1).SPCSnapshot()
		for rank := 0; rank < w.Size(); rank++ {
			p := w.Proc(rank)
			r.Stats = append(r.Stats, p.TelemetryStats())
			if p.Tracer() != nil {
				r.Events = append(r.Events, p.TraceEvents())
			}
		}
	}
	if smp != nil {
		smp.Stop()
		r.Samples = smp.Samples()
	}
	return r
}

// RunDistributed executes this process's share of a multi-process pairwise
// run over a distributed transport backend (e.g. tcpnet). The world holds
// cfg.WorldSize ranks (default 2) paired as (0,1), (2,3), ...: the even rank
// of each process pair hosts the sender threads, the odd rank the receivers.
// All processes must call it with identical cfg so the collective
// communicator-creation order agrees. The returned Result is local: an odd
// rank's SPCs are the receiver-side roll-up the single-process harness
// reports; an even rank sees the sender side. Messages/Rate count this
// process pair's traffic only.
func RunDistributed(cfg Config, rank int, net transport.Network) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Pattern != Pairwise {
		return Result{}, fmt.Errorf("multirate: distributed mode supports only the pairwise pattern")
	}
	if cfg.ProcessMode {
		return Result{}, fmt.Errorf("multirate: distributed mode already maps ranks to processes")
	}
	size := cfg.WorldSize
	if size == 0 {
		size = 2
	}
	if size < 2 || size%2 != 0 {
		return Result{}, fmt.Errorf("multirate: world size %d is not an even count >= 2", size)
	}
	if rank < 0 || rank >= size {
		return Result{}, fmt.Errorf("multirate: rank %d out of range for world size %d", rank, size)
	}
	w, err := core.NewDistributedWorld(cfg.Machine, rank, size, net, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	if cfg.OnWorld != nil {
		cfg.OnWorld(w)
	}
	p := w.LocalProc()

	// Identical collective creation order on every rank keeps the
	// deterministic communicator ids in agreement (the MPI_Comm_create
	// contract), so each rank creates every process pair's communicators and
	// keeps only its own pair's.
	info := core.Info{AllowOvertaking: cfg.Overtaking}
	pairBase := rank - rank%2 // even rank of this process pair
	comms := make([]*core.Comm, cfg.Pairs)
	for pp := 0; pp < size/2; pp++ {
		group := []int{2 * pp, 2*pp + 1}
		for pair := 0; pair < cfg.Pairs; pair++ {
			if cfg.CommPerPair || pair == 0 {
				cs, err := w.NewCommWithInfo(group, info)
				if err != nil {
					return Result{}, err
				}
				if group[0] == pairBase {
					comms[pair] = cs[rank%2]
				}
			} else if group[0] == pairBase {
				comms[pair] = comms[0]
			}
		}
	}

	// Bracket the timed section with barriers so both processes measure the
	// same message volume, not each other's startup skew.
	th := p.NewThread()
	if err := p.CommWorld().Barrier(th); err != nil {
		return Result{}, fmt.Errorf("multirate: start barrier: %w", err)
	}
	var smp *telemetry.Sampler
	if rank%2 == 1 {
		smp = startSampler(cfg, p)
	}
	errs := make(chan error, cfg.Pairs)
	var wg sync.WaitGroup
	start := time.Now()
	for pair := 0; pair < cfg.Pairs; pair++ {
		wg.Add(1)
		go func(pair int) {
			defer wg.Done()
			if rank%2 == 0 {
				errs <- senderLoop(p.NewThread(), comms[pair], cfg, int32(pair))
			} else {
				errs <- receiverLoop(p.NewThread(), comms[pair], cfg, int32(pair), cfg.stallsHere(rank, size))
			}
		}(pair)
	}
	wg.Wait()
	if err := p.CommWorld().Barrier(th); err != nil {
		return Result{}, fmt.Errorf("multirate: end barrier: %w", err)
	}
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			smp.Stop()
			return Result{}, err
		}
	}

	total := int64(cfg.Pairs) * int64(cfg.Window) * int64(cfg.Iters)
	res := Result{Messages: total, Elapsed: elapsed, Transport: w.TransportCaps()}
	if elapsed > 0 {
		res.Rate = float64(total) / elapsed.Seconds()
	}
	res.SPCs = p.SPCSnapshot()
	res.Stats = []telemetry.ProcStats{p.TelemetryStats()}
	if p.Tracer() != nil {
		res.Events = []telemetry.RankEvents{p.TraceEvents()}
		if rank%2 == 1 {
			res.TraceDump = traceDump(p)
		}
	}
	if smp != nil {
		smp.Stop()
		res.Samples = smp.Samples()
	}
	return res, nil
}

func senderLoop(th *core.Thread, c *core.Comm, cfg Config, tag int32) error {
	defer th.Done()
	buf := make([]byte, cfg.MsgSize)
	reqs := make([]*core.Request, 0, cfg.Window)
	for it := 0; it < cfg.Iters; it++ {
		reqs = reqs[:0]
		for i := 0; i < cfg.Window; i++ {
			req, err := c.Isend(th, 1, tag, buf)
			if err != nil {
				return fmt.Errorf("multirate sender: %w", err)
			}
			reqs = append(reqs, req)
		}
		if err := core.WaitAll(th, reqs...); err != nil {
			return fmt.Errorf("multirate sender waitall: %w", err)
		}
	}
	return nil
}

func receiverLoop(th *core.Thread, c *core.Comm, cfg Config, tag int32, stall bool) error {
	defer th.Done()
	bufs := make([][]byte, cfg.Window)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.MsgSize)
	}
	reqs := make([]*core.Request, 0, cfg.Window)
	recvTag := tag
	if cfg.AnyTag {
		recvTag = core.AnyTag
	}
	for it := 0; it < cfg.Iters; it++ {
		reqs = reqs[:0]
		for i := 0; i < cfg.Window; i++ {
			req, err := c.Irecv(th, 0, recvTag, bufs[i])
			if err != nil {
				return fmt.Errorf("multirate receiver: %w", err)
			}
			reqs = append(reqs, req)
		}
		if stall && it == cfg.StallAfterIter {
			// Injected fault: leave the freshly posted window unserviced.
			// Arrivals drain the posted receives at match time, then this
			// rank's received counter freezes with the peer's further
			// traffic piling into the unexpected queue — the straggler
			// signature the cluster detector must localize.
			time.Sleep(cfg.StallRecv)
		}
		if err := core.WaitAll(th, reqs...); err != nil {
			return fmt.Errorf("multirate receiver waitall: %w", err)
		}
	}
	return nil
}

// stallsHere reports whether this receiver thread takes the injected
// freeze: in a distributed world only the configured stall rank's threads
// do (default: the last receiver rank), so every other rank keeps moving
// and the cluster detector has the cross-rank contrast it needs.
func (c Config) stallsHere(rank, size int) bool {
	if c.StallRecv <= 0 {
		return false
	}
	if size == 0 { // single-process harness: the one receiver proc
		return true
	}
	target := c.StallRank
	if target == 0 {
		target = size - 1
	}
	return rank == target
}
