package multirate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/spc"
)

func fastCfg() Config {
	return Config{
		Machine: hw.Fast(),
		Opts:    core.Stock(),
		Pairs:   2,
		Window:  16,
		Iters:   2,
	}
}

func TestThreadModeCompletes(t *testing.T) {
	res, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2*16*2 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if res.Rate <= 0 || res.Elapsed <= 0 {
		t.Fatalf("Rate = %v, Elapsed = %v", res.Rate, res.Elapsed)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("messages_received = %d, want 64", got)
	}
}

func TestProcessModeCompletes(t *testing.T) {
	cfg := fastCfg()
	cfg.ProcessMode = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 64 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("aggregated messages_received = %d, want 64", got)
	}
}

func TestCommPerPair(t *testing.T) {
	cfg := fastCfg()
	cfg.CommPerPair = true
	cfg.Opts = core.CRIsConcurrent(2, cri.Dedicated)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagOvertaking(t *testing.T) {
	cfg := fastCfg()
	cfg.AnyTag = true
	cfg.Overtaking = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SPCs.Get(spc.OutOfSequence); got != 0 {
		t.Fatalf("overtaking run recorded %d OOS messages", got)
	}
}

func TestWithPayload(t *testing.T) {
	cfg := fastCfg()
	cfg.MsgSize = 64
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := Run(Config{Machine: hw.Fast(), Opts: core.Stock(), Pairs: 1, Window: 4, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 {
		t.Fatalf("Messages = %d", res.Messages)
	}
}

func TestIncastPattern(t *testing.T) {
	cfg := fastCfg()
	cfg.Pattern = Incast
	cfg.Opts = core.CRIsConcurrent(2, cri.Dedicated)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 64 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("messages_received = %d", got)
	}
}

func TestIncastRejectsProcessMode(t *testing.T) {
	cfg := fastCfg()
	cfg.Pattern = Incast
	cfg.ProcessMode = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("incast + process mode accepted")
	}
}

func TestPatternString(t *testing.T) {
	if Pairwise.String() != "pairwise" || Incast.String() != "incast" {
		t.Fatal("Pattern.String mismatch")
	}
}

func TestAllDesignKnobsFunctional(t *testing.T) {
	opts := []core.Options{
		core.Stock(),
		core.CRIs(4, cri.RoundRobin),
		core.CRIs(4, cri.Dedicated),
		core.CRIsConcurrent(4, cri.RoundRobin),
		core.CRIsConcurrent(4, cri.Dedicated),
	}
	for i, o := range opts {
		cfg := fastCfg()
		cfg.Opts = o
		if _, err := Run(cfg); err != nil {
			t.Fatalf("option set %d: %v", i, err)
		}
	}
}
