package multirate

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/spc"
)

func fastCfg() Config {
	return Config{
		Machine: hw.Fast(),
		Opts:    core.Stock(),
		Pairs:   2,
		Window:  16,
		Iters:   2,
	}
}

func TestThreadModeCompletes(t *testing.T) {
	res, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2*16*2 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if res.Rate <= 0 || res.Elapsed <= 0 {
		t.Fatalf("Rate = %v, Elapsed = %v", res.Rate, res.Elapsed)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("messages_received = %d, want 64", got)
	}
}

func TestProcessModeCompletes(t *testing.T) {
	cfg := fastCfg()
	cfg.ProcessMode = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 64 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("aggregated messages_received = %d, want 64", got)
	}
}

func TestCommPerPair(t *testing.T) {
	cfg := fastCfg()
	cfg.CommPerPair = true
	cfg.Opts = core.CRIsConcurrent(2, cri.Dedicated)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagOvertaking(t *testing.T) {
	cfg := fastCfg()
	cfg.AnyTag = true
	cfg.Overtaking = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SPCs.Get(spc.OutOfSequence); got != 0 {
		t.Fatalf("overtaking run recorded %d OOS messages", got)
	}
}

func TestWithPayload(t *testing.T) {
	cfg := fastCfg()
	cfg.MsgSize = 64
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	res, err := Run(Config{Machine: hw.Fast(), Opts: core.Stock(), Pairs: 1, Window: 4, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 {
		t.Fatalf("Messages = %d", res.Messages)
	}
}

func TestIncastPattern(t *testing.T) {
	cfg := fastCfg()
	cfg.Pattern = Incast
	cfg.Opts = core.CRIsConcurrent(2, cri.Dedicated)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 64 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("messages_received = %d", got)
	}
}

func TestIncastRejectsProcessMode(t *testing.T) {
	cfg := fastCfg()
	cfg.Pattern = Incast
	cfg.ProcessMode = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("incast + process mode accepted")
	}
}

func TestPatternString(t *testing.T) {
	if Pairwise.String() != "pairwise" || Incast.String() != "incast" {
		t.Fatal("Pattern.String mismatch")
	}
}

func TestAllDesignKnobsFunctional(t *testing.T) {
	opts := []core.Options{
		core.Stock(),
		core.CRIs(4, cri.RoundRobin),
		core.CRIs(4, cri.Dedicated),
		core.CRIsConcurrent(4, cri.RoundRobin),
		core.CRIsConcurrent(4, cri.Dedicated),
	}
	for i, o := range opts {
		cfg := fastCfg()
		cfg.Opts = o
		if _, err := Run(cfg); err != nil {
			t.Fatalf("option set %d: %v", i, err)
		}
	}
}

// TestStallInjectionStillCompletes: the real-engine stall freeze delays
// pair 0's receiver but must not change the run's totals — the cluster
// smoke relies on a -stall job finishing cleanly after the verdict fires.
func TestStallInjectionStillCompletes(t *testing.T) {
	cfg := fastCfg()
	cfg.StallRecv = 30 * time.Millisecond
	cfg.StallAfterIter = 1
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 64 {
		t.Fatalf("Messages = %d, want 64", res.Messages)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != 64 {
		t.Fatalf("messages_received = %d, want 64", got)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("stall injection did not delay the run")
	}
}

// TestStallsHereTargetsOneRank: in a distributed world only the configured
// stall rank (default: the last receiver rank) takes the freeze.
func TestStallsHereTargetsOneRank(t *testing.T) {
	cfg := Config{StallRecv: time.Second}
	for rank := 0; rank < 4; rank++ {
		want := rank == 3
		if got := cfg.stallsHere(rank, 4); got != want {
			t.Fatalf("default stall rank: stallsHere(%d, 4) = %v", rank, got)
		}
	}
	cfg.StallRank = 1
	if !cfg.stallsHere(1, 4) || cfg.stallsHere(3, 4) {
		t.Fatal("explicit -stall-rank not honored")
	}
	if (Config{}).stallsHere(3, 4) {
		t.Fatal("stall fired with StallRecv unset")
	}
}
