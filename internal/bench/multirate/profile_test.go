package multirate

import (
	"testing"

	"repro/internal/prof"
)

// TestProfileCollectsBreakdown: with Options.Profile the benchmark's stats
// carry a populated profiler snapshot — lock sites with acquisitions and
// per-thread phase clocks whose phase sums stay within wall time.
func TestProfileCollectsBreakdown(t *testing.T) {
	cfg := fastCfg()
	cfg.Pairs = 4
	cfg.Opts.Profile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) < 2 {
		t.Fatalf("stats for %d ranks, want 2", len(res.Stats))
	}
	for _, ps := range res.Stats {
		if ps.Prof.Empty() {
			t.Fatalf("rank %d: empty profiler snapshot with Profile on", ps.Rank)
		}
		var acquired int64
		for _, s := range ps.Prof.Sites {
			acquired += s.Acquisitions
		}
		if acquired == 0 {
			t.Errorf("rank %d: no lock acquisitions recorded", ps.Rank)
		}
		for _, th := range ps.Prof.Threads {
			var sum int64
			for _, v := range th.Phases {
				sum += v
			}
			if th.WallNs <= 0 {
				t.Errorf("rank %d thread %s: wall %d", ps.Rank, th.Label, th.WallNs)
			}
			// Σphases ≤ wall: phases only cover instrumented runtime
			// sections; the remainder is app time by construction, so the
			// sum can never exceed the clock's wall time.
			if sum > th.WallNs {
				t.Errorf("rank %d thread %s: phase sum %d exceeds wall %d",
					ps.Rank, th.Label, sum, th.WallNs)
			}
		}
		rep := prof.BuildReport(ps.Rank, "test", cfg.Pairs, ps.Prof)
		if rep.WallNs <= 0 || rep.Bottleneck == "" {
			t.Errorf("rank %d: degenerate report %+v", ps.Rank, rep)
		}
	}
}

// TestProfileOffByDefault: without Options.Profile the snapshot stays
// empty — the disabled hooks are nil receivers, so nothing registers.
func TestProfileOffByDefault(t *testing.T) {
	res, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res.Stats {
		if !ps.Prof.Empty() {
			t.Fatalf("rank %d: profiler data recorded with Profile off", ps.Rank)
		}
	}
}
