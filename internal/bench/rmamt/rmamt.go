// Package rmamt implements the RMA-MT benchmark (Dosanjh et al. [7]) over
// the real runtime: N origin-side threads each performing bursts of MPI_Put
// into a remote window followed by MPI_Win_flush, sweeping message sizes
// and thread counts. The virtual-time twin in internal/simnet regenerates
// Figures 6 and 7; this harness validates the one-sided stack functionally
// and provides wall-clock testing.B integration.
package rmamt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/rma"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Config parameterizes one run.
type Config struct {
	// Machine is the hardware model (hw.Fast for functional runs).
	Machine hw.Machine
	// Opts configures the runtime design under test.
	Opts core.Options
	// Threads is the number of origin-side threads.
	Threads int
	// MsgSize is the put payload in bytes.
	MsgSize int
	// PutsPerThread is the burst length before each flush (paper: 1000).
	PutsPerThread int
	// Rounds repeats the burst+flush cycle.
	Rounds int
	// SampleInterval, when positive, runs a background sampler on the
	// origin process; the time series lands in Result.Samples.
	SampleInterval time.Duration
	// OnWorld, when set, is called with the world right after construction
	// and before the measured section — the hook a command uses to attach
	// live observability to a run in flight.
	OnWorld func(*core.World)
	// OnSampler, when set, is called with the background sampler right
	// after it starts (only when SampleInterval > 0).
	OnSampler func(*telemetry.Sampler)
	// StallPut, when positive, freezes origin thread 0 for this wall-clock
	// duration right after it finishes the put burst of round
	// StallAfterRound, before the flush — the one-sided sibling of
	// multirate's receiver freeze: the whole flush round goes quiet while
	// the other threads' completions pile up behind the window lock. The
	// run still completes with full totals once the freeze ends.
	StallPut        time.Duration
	StallAfterRound int
	// StallRank selects which world rank takes the freeze, for flag parity
	// with multirate's distributed runs (0 = the origin, the only rank with
	// put threads; selecting the passive target rank 1 makes the stall a
	// no-op).
	StallRank int
}

// stallsHere reports whether origin thread g takes the injected freeze in
// the given round.
func (c Config) stallsHere(g, round int) bool {
	return c.StallPut > 0 && c.StallRank == 0 && g == 0 && round == c.StallAfterRound
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1
	}
	if c.PutsPerThread <= 0 {
		c.PutsPerThread = 1000
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	return c
}

// Result reports one run's outcome.
type Result struct {
	// Puts is the total put count.
	Puts int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// Rate is Puts/Elapsed in ops/s.
	Rate float64
	// SPCs is the origin-side counter roll-up (residual + per-CRI +
	// per-communicator child sets).
	SPCs spc.Snapshot
	// Stats holds both processes' attributed counter/histogram breakdowns
	// in rank order (origin is rank 0, target rank 1).
	Stats []telemetry.ProcStats
	// Events holds both processes' event traces when tracing was enabled,
	// in rank order.
	Events []telemetry.RankEvents
	// Samples is the sampler time series when Config.SampleInterval > 0.
	Samples []telemetry.Sample
	// Transport names the backend the run used and its capability flags.
	Transport transport.Caps
}

// Run executes the benchmark: two processes, a window on each, all threads
// putting from rank 0 into rank 1's window at disjoint offsets.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	w, err := core.NewWorld(cfg.Machine, 2, cfg.Opts)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	if cfg.OnWorld != nil {
		cfg.OnWorld(w)
	}
	comms, err := w.NewComm([]int{0, 1})
	if err != nil {
		return Result{}, err
	}
	wins, err := rma.Allocate(comms, cfg.Threads*cfg.MsgSize)
	if err != nil {
		return Result{}, err
	}
	origin := wins[0]
	origin.LockAll()

	var smp *telemetry.Sampler
	if cfg.SampleInterval > 0 {
		op := w.Proc(0)
		smp = telemetry.NewSampler(cfg.SampleInterval, func() (spc.Snapshot, []telemetry.NamedHist) {
			return op.SPCSnapshot(), op.Telemetry().Snapshot()
		})
		smp.Start()
		if cfg.OnSampler != nil {
			cfg.OnSampler(smp)
		}
	}
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			src := make([]byte, cfg.MsgSize)
			for i := range src {
				src[i] = byte(g + 1)
			}
			offset := g * cfg.MsgSize
			for round := 0; round < cfg.Rounds; round++ {
				for k := 0; k < cfg.PutsPerThread; k++ {
					if err := origin.Put(th, 1, offset, src); err != nil {
						errs <- fmt.Errorf("rmamt put: %w", err)
						return
					}
				}
				if cfg.stallsHere(g, round) {
					// Injected fault: leave the burst unflushed — this
					// origin's completion counters freeze mid-round, the
					// straggler signature the observability plane must
					// surface.
					time.Sleep(cfg.StallPut)
				}
				if err := origin.Flush(th, 1); err != nil {
					errs <- fmt.Errorf("rmamt flush: %w", err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	smp.Stop()
	close(errs)
	for err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	mainTh := w.Proc(0).NewThread()
	if err := origin.UnlockAll(mainTh); err != nil {
		return Result{}, err
	}

	total := int64(cfg.Threads) * int64(cfg.PutsPerThread) * int64(cfg.Rounds)
	res := Result{Puts: total, Elapsed: elapsed, Transport: w.TransportCaps()}
	if elapsed > 0 {
		res.Rate = float64(total) / elapsed.Seconds()
	}
	res.SPCs = w.Proc(0).SPCSnapshot()
	for rank := 0; rank < w.Size(); rank++ {
		p := w.Proc(rank)
		res.Stats = append(res.Stats, p.TelemetryStats())
		if p.Tracer() != nil {
			res.Events = append(res.Events, p.TraceEvents())
		}
	}
	res.Samples = smp.Samples()
	// Verify delivery: every byte of the target window must carry its
	// thread's fill value (puts to disjoint offsets).
	target := wins[1].Local()
	for g := 0; g < cfg.Threads; g++ {
		for i := 0; i < cfg.MsgSize; i++ {
			if target[g*cfg.MsgSize+i] != byte(g+1) {
				return Result{}, fmt.Errorf("rmamt: target byte %d corrupt (thread %d)", g*cfg.MsgSize+i, g)
			}
		}
	}
	return res, nil
}
