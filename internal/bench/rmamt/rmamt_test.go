package rmamt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/spc"
)

func TestSingleThreadCompletes(t *testing.T) {
	res, err := Run(Config{
		Machine: hw.Fast(), Opts: core.Stock(),
		Threads: 1, MsgSize: 8, PutsPerThread: 50, Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts != 100 {
		t.Fatalf("Puts = %d, want 100", res.Puts)
	}
	if got := res.SPCs.Get(spc.PutsIssued); got != 100 {
		t.Fatalf("puts_issued = %d", got)
	}
	if got := res.SPCs.Get(spc.FlushCalls); got < 2 {
		t.Fatalf("flush_calls = %d, want >= 2", got)
	}
}

func TestMultiThreadDisjointOffsets(t *testing.T) {
	configs := []core.Options{
		core.Stock(),
		core.CRIsConcurrent(4, cri.Dedicated),
		core.CRIsConcurrent(4, cri.RoundRobin),
	}
	for i, o := range configs {
		res, err := Run(Config{
			Machine: hw.Fast(), Opts: o,
			Threads: 4, MsgSize: 32, PutsPerThread: 25, Rounds: 2,
		})
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if res.Puts != 200 {
			t.Fatalf("config %d: Puts = %d", i, res.Puts)
		}
	}
}

func TestDefaults(t *testing.T) {
	res, err := Run(Config{Machine: hw.Fast(), Opts: core.Stock(), PutsPerThread: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts != 10 { // 1 thread x 10 puts x 1 round
		t.Fatalf("Puts = %d", res.Puts)
	}
}
