// Package benchcmp compares two BENCH_*.json benchmark trajectories and
// classifies every (design, thread-count) point as an improvement, within
// noise, or a regression. It is the repo's performance gate: CI regenerates
// the trajectory on the deterministic virtual-time model and refuses the
// change if any point regresses past its noise threshold.
//
// The threshold is noise-aware per point: even on the deterministic model,
// legitimate code changes perturb event interleavings more at high thread
// counts (contention amplifies small cost shifts), so the tolerance widens
// with log2(threads). A 5% budget at 1 thread grows to ~10% at 16 threads
// with the defaults.
//
// When both trajectories carry critical-path attribution (schema v3
// sweep.latency files), every point's per-stage latency p99s are gated too,
// with the verdict direction inverted: a p99 increase past the point's
// tolerance is the regression.
//
// Comparisons refuse incompatible artifacts outright: different schema
// versions, machines, engines, sweep parameters, design sets — or one file
// recorded with the contention profiler enabled and the other without
// (instrumentation overhead is a measurement-setup change, not noise).
package benchcmp

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/benchjson"
)

// Verdict classifies one compared point.
type Verdict int

const (
	// WithinNoise: the rate moved less than the point's tolerance.
	WithinNoise Verdict = iota
	// Improvement: the rate rose past the tolerance.
	Improvement
	// Regression: the rate fell past the tolerance.
	Regression
)

func (v Verdict) String() string {
	switch v {
	case Improvement:
		return "improvement"
	case Regression:
		return "REGRESSION"
	default:
		return "within-noise"
	}
}

// Options tunes the gate.
type Options struct {
	// RelTol is the base relative tolerance at 1 thread (default 0.05).
	RelTol float64
	// ThreadNoise widens the tolerance per doubling of the thread count:
	// tol(t) = RelTol * (1 + ThreadNoise*log2(t)). Default 0.25.
	ThreadNoise float64
}

func (o Options) withDefaults() Options {
	if o.RelTol <= 0 {
		o.RelTol = 0.05
	}
	if o.ThreadNoise <= 0 {
		o.ThreadNoise = 0.25
	}
	return o
}

// Tolerance is the relative budget for a point at the given thread count.
func (o Options) Tolerance(threads int) float64 {
	o = o.withDefaults()
	if threads < 1 {
		threads = 1
	}
	return o.RelTol * (1 + o.ThreadNoise*math.Log2(float64(threads)))
}

// PointDelta is one compared (design, threads) point.
type PointDelta struct {
	Design   string  `json:"design"`
	Threads  int     `json:"threads"`
	BaseRate float64 `json:"base_rate"`
	NewRate  float64 `json:"new_rate"`
	// Delta is the relative change (new-base)/base.
	Delta float64 `json:"delta"`
	// Tolerance is the noise budget this point was judged against.
	Tolerance float64 `json:"tolerance"`
	Verdict   Verdict `json:"-"`
	// VerdictName mirrors Verdict for the JSON form.
	VerdictName string `json:"verdict"`
}

// StageDelta is one compared per-stage latency p99 at one point. Unlike
// rates, latency runs the other way: an increase past tolerance is the
// regression.
type StageDelta struct {
	Design    string `json:"design"`
	Threads   int    `json:"threads"`
	Stage     string `json:"stage"`
	BaseP99Ns int64  `json:"base_p99_ns"`
	NewP99Ns  int64  `json:"new_p99_ns"`
	// Delta is the relative change (new-base)/base.
	Delta float64 `json:"delta"`
	// Tolerance is the noise budget this point was judged against.
	Tolerance   float64 `json:"tolerance"`
	Verdict     Verdict `json:"-"`
	VerdictName string  `json:"verdict"`
}

// Result is the full comparison.
type Result struct {
	Points []PointDelta `json:"points"`
	// Stages holds the per-stage p99 deltas when both files carry
	// critical-path attribution (schema v3 sweep.latency files).
	Stages       []StageDelta `json:"stages,omitempty"`
	Improvements int          `json:"improvements"`
	Regressions  int          `json:"regressions"`
}

// Regressed reports whether any point regressed past its tolerance.
func (r Result) Regressed() bool { return r.Regressions > 0 }

// IncompatibleError reports two artifacts that must not be compared.
type IncompatibleError struct{ Reason string }

func (e *IncompatibleError) Error() string {
	return "benchcmp: incompatible artifacts: " + e.Reason
}

func incompatible(format string, args ...any) error {
	return &IncompatibleError{Reason: fmt.Sprintf(format, args...)}
}

// checkCompatible refuses pairs whose differences are measurement-setup
// changes rather than performance changes.
func checkCompatible(base, cur benchjson.File) error {
	if base.SchemaVersion != cur.SchemaVersion {
		return incompatible("schema_version %d vs %d", base.SchemaVersion, cur.SchemaVersion)
	}
	if base.Benchmark != cur.Benchmark {
		return incompatible("benchmark %q vs %q", base.Benchmark, cur.Benchmark)
	}
	if base.Engine != cur.Engine {
		return incompatible("engine %q vs %q", base.Engine, cur.Engine)
	}
	if base.Machine != cur.Machine {
		return incompatible("machine %q vs %q", base.Machine, cur.Machine)
	}
	if base.ProfilerEnabled != cur.ProfilerEnabled {
		return incompatible("profiler_enabled %v vs %v (instrumentation overhead is not noise)",
			base.ProfilerEnabled, cur.ProfilerEnabled)
	}
	if fmt.Sprint(base.Sweep) != fmt.Sprint(cur.Sweep) {
		return incompatible("sweep parameters differ: %+v vs %+v", base.Sweep, cur.Sweep)
	}
	if len(base.Designs) != len(cur.Designs) {
		return incompatible("%d designs vs %d", len(base.Designs), len(cur.Designs))
	}
	for i := range base.Designs {
		if base.Designs[i].Slug != cur.Designs[i].Slug {
			return incompatible("design[%d] %q vs %q", i, base.Designs[i].Slug, cur.Designs[i].Slug)
		}
	}
	return nil
}

// CompareBytes validates both raw trajectory files and compares them.
func CompareBytes(base, cur []byte, opt Options) (Result, error) {
	bf, err := parse(base, "base")
	if err != nil {
		return Result{}, err
	}
	cf, err := parse(cur, "new")
	if err != nil {
		return Result{}, err
	}
	return Compare(bf, cf, opt)
}

func parse(data []byte, which string) (benchjson.File, error) {
	if err := benchjson.Validate(data); err != nil {
		return benchjson.File{}, fmt.Errorf("benchcmp: %s file: %w", which, err)
	}
	return benchjson.Parse(data)
}

// Compare classifies every point of cur against base.
func Compare(base, cur benchjson.File, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := checkCompatible(base, cur); err != nil {
		return Result{}, err
	}
	var res Result
	for i, bd := range base.Designs {
		cd := cur.Designs[i]
		for j, bp := range bd.Points {
			cp := cd.Points[j]
			tol := opt.Tolerance(bp.Threads)
			delta := (cp.MessagesPerSec - bp.MessagesPerSec) / bp.MessagesPerSec
			v := WithinNoise
			switch {
			case delta < -tol:
				v = Regression
				res.Regressions++
			case delta > tol:
				v = Improvement
				res.Improvements++
			}
			res.Points = append(res.Points, PointDelta{
				Design: bd.Slug, Threads: bp.Threads,
				BaseRate: bp.MessagesPerSec, NewRate: cp.MessagesPerSec,
				Delta: delta, Tolerance: tol,
				Verdict: v, VerdictName: v.String(),
			})
			compareStages(&res, bd.Slug, bp, cp, tol)
		}
	}
	return res, nil
}

// compareStages gates the per-stage p99s of one point when both files carry
// them. Only stages present on both sides are judged — a stage migrating
// between posted and unexpected matching is a behavioral shift the rate and
// e2e rows already cover, not a silent tail regression. The latency verdict
// direction is inverted relative to rates: up past tolerance = regression.
func compareStages(res *Result, design string, bp, cp benchjson.Point, tol float64) {
	if len(bp.LatencyStages) == 0 || len(cp.LatencyStages) == 0 {
		return
	}
	curBy := make(map[string]benchjson.StageLatency, len(cp.LatencyStages))
	for _, sl := range cp.LatencyStages {
		curBy[sl.Stage] = sl
	}
	for _, bs := range bp.LatencyStages {
		cs, ok := curBy[bs.Stage]
		if !ok {
			continue
		}
		// +1 keeps zero-latency stages (e.g. transit in virtual time)
		// comparable without a divide-by-zero.
		delta := float64(cs.P99Ns-bs.P99Ns) / float64(bs.P99Ns+1)
		v := WithinNoise
		switch {
		case delta > tol:
			v = Regression
			res.Regressions++
		case delta < -tol:
			v = Improvement
			res.Improvements++
		}
		res.Stages = append(res.Stages, StageDelta{
			Design: design, Threads: bp.Threads, Stage: bs.Stage,
			BaseP99Ns: bs.P99Ns, NewP99Ns: cs.P99Ns,
			Delta: delta, Tolerance: tol,
			Verdict: v, VerdictName: v.String(),
		})
	}
}

// WriteText renders the comparison as an aligned table plus a one-line
// summary, regressions last so they are visible at the end of CI logs.
func (r Result) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tthreads\tbase msg/s\tnew msg/s\tdelta\ttol\tverdict")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%+.2f%%\t±%.2f%%\t%s\n",
			p.Design, p.Threads, p.BaseRate, p.NewRate,
			100*p.Delta, 100*p.Tolerance, p.Verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(r.Stages) > 0 {
		tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "design\tthreads\tstage\tbase p99 ns\tnew p99 ns\tdelta\ttol\tverdict")
		for _, s := range r.Stages {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%+.2f%%\t±%.2f%%\t%s\n",
				s.Design, s.Threads, s.Stage, s.BaseP99Ns, s.NewP99Ns,
				100*s.Delta, 100*s.Tolerance, s.Verdict)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "benchcmp: %d points, %d stage p99s, %d improvements, %d regressions\n",
		len(r.Points), len(r.Stages), r.Improvements, r.Regressions)
	return err
}
