package benchcmp

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func readFile(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIdenticalFilesWithinNoise(t *testing.T) {
	base := readFile(t, "base.json")
	res, err := CompareBytes(base, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() || res.Improvements != 0 {
		t.Fatalf("self-comparison not all within noise: %+v", res)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Verdict != WithinNoise {
			t.Errorf("%s/%d: verdict %v, want within-noise", p.Design, p.Threads, p.Verdict)
		}
	}
}

// TestDegradedFileRegresses is the gate's core promise: a synthetically
// degraded trajectory (ompi-thread at 8 threads down 20%) must trip the
// gate, while small jitter elsewhere stays within noise.
func TestDegradedFileRegresses(t *testing.T) {
	res, err := CompareBytes(readFile(t, "base.json"), readFile(t, "degraded.json"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatal("degraded file did not regress")
	}
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want exactly 1 (only the degraded point)", res.Regressions)
	}
	var hit *PointDelta
	for i, p := range res.Points {
		if p.Verdict == Regression {
			hit = &res.Points[i]
		}
	}
	if hit.Design != "ompi-thread" || hit.Threads != 8 {
		t.Fatalf("regressed point = %s/%d, want ompi-thread/8", hit.Design, hit.Threads)
	}
}

// TestDegradedReportGolden pins the human-readable verdict table.
func TestDegradedReportGolden(t *testing.T) {
	res, err := CompareBytes(readFile(t, "base.json"), readFile(t, "degraded.json"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "degraded.report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestImprovementDetected(t *testing.T) {
	improved := strings.Replace(string(readFile(t, "base.json")),
		`"messages_per_sec": 2800000`, `"messages_per_sec": 3400000`, 1)
	res, err := CompareBytes(readFile(t, "base.json"), []byte(improved), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() || res.Improvements != 1 {
		t.Fatalf("improvements = %d regressions = %d, want 1/0", res.Improvements, res.Regressions)
	}
}

func TestToleranceWidensWithThreads(t *testing.T) {
	var o Options
	t1, t8 := o.Tolerance(1), o.Tolerance(8)
	if t1 != 0.05 {
		t.Errorf("Tolerance(1) = %v, want 0.05", t1)
	}
	if t8 <= t1 {
		t.Errorf("Tolerance(8) = %v not wider than Tolerance(1) = %v", t8, t1)
	}
}

func TestIncompatibleArtifactsRefused(t *testing.T) {
	base := string(readFile(t, "base.json"))
	cases := []struct {
		name   string
		mutate func(string) string
		want   string
	}{
		{"profiler flag", func(s string) string {
			return strings.Replace(s, `"profiler_enabled": false`, `"profiler_enabled": true`, 1)
		}, "profiler_enabled"},
		{"machine", func(s string) string {
			return strings.Replace(s, `"machine": "fast"`, `"machine": "knl"`, 1)
		}, "machine"},
		{"sweep window", func(s string) string {
			return strings.Replace(s, `"window": 32`, `"window": 64`, 1)
		}, "sweep"},
		{"design set", func(s string) string {
			return strings.Replace(s, `"slug": "ompi-thread-cri-full"`, `"slug": "ompi-thread-cri"`, 1)
		}, "design"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompareBytes([]byte(base), []byte(tc.mutate(base)), Options{})
			if err == nil {
				t.Fatal("incompatible pair compared without error")
			}
			var ie *IncompatibleError
			if !errors.As(err, &ie) {
				t.Fatalf("error %T %q is not IncompatibleError", err, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestInvalidFileRefused(t *testing.T) {
	base := readFile(t, "base.json")
	if _, err := CompareBytes(base, []byte("{}"), Options{}); err == nil {
		t.Fatal("invalid new file accepted")
	}
	if _, err := CompareBytes([]byte("nope"), base, Options{}); err == nil {
		t.Fatal("invalid base file accepted")
	}
}
