package benchcmp

import (
	"strings"
	"testing"

	"repro/internal/benchjson"
	"repro/internal/designs"
	"repro/internal/hw"
)

func latencyFile(t *testing.T) benchjson.File {
	t.Helper()
	return benchjson.Run(benchjson.SweepConfig{
		Machine: hw.Fast(), MachineName: "fast",
		Threads: []int{1, 2}, Window: 8, Iters: 2,
		Latency: true,
		Designs: []designs.Design{designs.OMPIThread, designs.OMPIThreadCRIFull},
	})
}

// TestStageGateSelfComparison: a latency trajectory compared against itself
// produces stage rows, all within noise.
func TestStageGateSelfComparison(t *testing.T) {
	f := latencyFile(t)
	res, err := Compare(f, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() || res.Improvements != 0 {
		t.Fatalf("self-comparison not clean: %+v", res)
	}
	if len(res.Stages) == 0 {
		t.Fatal("no stage rows from a sweep.latency pair")
	}
	sawE2E := false
	for _, s := range res.Stages {
		if s.Verdict != WithinNoise {
			t.Errorf("%s/%d %s: verdict %v, want within-noise", s.Design, s.Threads, s.Stage, s.Verdict)
		}
		if s.Stage == "e2e" {
			sawE2E = true
		}
	}
	if !sawE2E {
		t.Fatal("stage rows missing the end-to-end gate")
	}
}

// TestStageGateCatchesTailRegression is the issue's gate promise: a p99
// increase past tolerance in one stage trips the gate and names the stage,
// even when every rate is untouched.
func TestStageGateCatchesTailRegression(t *testing.T) {
	base := latencyFile(t)
	cur := latencyFile(t)
	// Degrade one stage's p99 by 10x on ompi-thread at 2 threads.
	pt := &cur.Designs[0].Points[1]
	victim := ""
	for i := range pt.LatencyStages {
		if pt.LatencyStages[i].Stage == "deliver_wait" {
			pt.LatencyStages[i].P99Ns *= 10
			victim = "deliver_wait"
		}
	}
	if victim == "" {
		t.Fatalf("no deliver_wait stage to degrade: %+v", pt.LatencyStages)
	}
	res, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatal("10x stage p99 did not trip the gate")
	}
	var hits []StageDelta
	for _, s := range res.Stages {
		if s.Verdict == Regression {
			hits = append(hits, s)
		}
	}
	if len(hits) != 1 || hits[0].Stage != victim || hits[0].Design != "ompi-thread" || hits[0].Threads != 2 {
		t.Fatalf("regressions = %+v, want exactly ompi-thread/2 %s", hits, victim)
	}
	for _, p := range res.Points {
		if p.Verdict != WithinNoise {
			t.Fatalf("rate point moved: %+v", p)
		}
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), victim) || !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report does not name the regressed stage:\n%s", sb.String())
	}
}

// TestStageGateImprovementDirection: a large p99 drop counts as an
// improvement — the verdict direction is inverted relative to rates.
func TestStageGateImprovementDirection(t *testing.T) {
	base := latencyFile(t)
	cur := latencyFile(t)
	pt := &cur.Designs[0].Points[0]
	for i := range pt.LatencyStages {
		if pt.LatencyStages[i].Stage == "e2e" {
			pt.LatencyStages[i].P99Ns /= 10
		}
	}
	res, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() || res.Improvements != 1 {
		t.Fatalf("improvements = %d regressions = %d, want 1/0", res.Improvements, res.Regressions)
	}
}

// TestLatencyMismatchRefused: a latency trajectory and a plain one differ in
// measurement setup, not performance — the pair must be refused.
func TestLatencyMismatchRefused(t *testing.T) {
	withLat := latencyFile(t)
	without := benchjson.Run(benchjson.SweepConfig{
		Machine: hw.Fast(), MachineName: "fast",
		Threads: []int{1, 2}, Window: 8, Iters: 2,
		Designs: []designs.Design{designs.OMPIThread, designs.OMPIThreadCRIFull},
	})
	if _, err := Compare(withLat, without, Options{}); err == nil {
		t.Fatal("latency/no-latency pair compared without error")
	}
}
