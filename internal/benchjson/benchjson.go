// Package benchjson runs the Multirate sweep over named runtime designs
// and renders the result as a machine-readable benchmark trajectory file
// (BENCH_<n>.json): message rate per thread count per design. The sweep
// executes on the deterministic virtual-time model (internal/simnet), so
// the numbers are reproducible bit-for-bit on any host — the file is a
// performance trajectory of the *design*, not of the machine CI happened
// to run on.
//
// The package also carries the schema validator for the files it writes,
// so CI can assert a generated trajectory is well-formed without any
// external JSON-schema tooling.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/designs"
	"repro/internal/hw"
	"repro/internal/latency"
	"repro/internal/simnet"
)

// SchemaVersion identifies the BENCH_*.json layout this package writes and
// validates. Version 2 added the profiler_enabled flag so comparisons can
// refuse to mix profiled and unprofiled trajectories (instrumentation
// overhead is not noise). Version 3 added the optional per-stage
// critical-path latency quantiles (sweep.latency, points[].latency_stages)
// so the gate can hold tail latency per stage, not just throughput.
const SchemaVersion = 3

// SweepConfig parameterizes one trajectory run.
type SweepConfig struct {
	// Machine is the hardware-model name (alembert | trinitite | knl | fast).
	Machine hw.Machine
	// MachineName labels the file (the -machine flag value).
	MachineName string
	// Threads is the list of pair counts to sweep (the paper's x-axis).
	Threads []int
	// Window is the outstanding-message window per iteration.
	Window int
	// Iters is the number of window iterations per pair.
	Iters int
	// MsgSize is the payload size in bytes (0 = envelope only).
	MsgSize int
	// Instances is the CRI count the CRI designs use (paper: one per core).
	Instances int
	// Latency enables per-message critical-path attribution: every
	// thread-mode point additionally carries per-stage p50/p99 so the gate
	// can hold tail latency per stage. Attribution reads only the virtual
	// clock, so the rate numbers are identical either way.
	Latency bool
	// Designs is the set of designs to sweep (≥ 2 for a valid file).
	Designs []designs.Design
}

// File is the root of a BENCH_*.json trajectory.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Benchmark     string `json:"benchmark"`
	Engine        string `json:"engine"`
	Unit          string `json:"unit"`
	Machine       string `json:"machine"`
	// ProfilerEnabled records whether the sweep ran with the contention
	// profiler's instrumentation active. Trajectories with different values
	// are not comparable.
	ProfilerEnabled bool           `json:"profiler_enabled"`
	Sweep           Sweep          `json:"sweep"`
	Designs         []DesignResult `json:"designs"`
}

// Sweep records the parameters shared by every design's points.
type Sweep struct {
	Threads      []int `json:"threads"`
	Window       int   `json:"window"`
	Iters        int   `json:"iters"`
	MsgSizeBytes int   `json:"msg_size_bytes"`
	Instances    int   `json:"instances"`
	// Latency records whether the sweep ran with critical-path attribution,
	// i.e. whether thread-mode points carry latency_stages. Files that
	// disagree on it are not comparable.
	Latency bool `json:"latency,omitempty"`
}

// DesignResult is one design's rate curve.
type DesignResult struct {
	Name        string  `json:"name"`
	Slug        string  `json:"slug"`
	ProcessMode bool    `json:"process_mode"`
	Points      []Point `json:"points"`
}

// Point is one measurement: the design's message rate at one thread count.
type Point struct {
	Threads        int     `json:"threads"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	Messages       int64   `json:"messages"`
	MakespanNs     int64   `json:"makespan_ns"`
	// LatencyStages is the per-stage critical-path breakdown at this point
	// (sweep.latency runs, thread-mode designs only): one entry per populated
	// attribution stage in canonical stage order, end-to-end last.
	LatencyStages []StageLatency `json:"latency_stages,omitempty"`
}

// StageLatency is one stage's latency quantiles at one point.
type StageLatency struct {
	Stage string `json:"stage"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 12, 16, 20}
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	if c.Instances <= 0 {
		c.Instances = 20
	}
	if len(c.Designs) == 0 {
		c.Designs = []designs.Design{
			designs.OMPIProcess, designs.OMPIThread,
			designs.OMPIThreadCRI, designs.OMPIThreadCRIFull,
			designs.OMPIThreadCRILockFree,
		}
	}
	return c
}

// Run executes the sweep and assembles the trajectory file.
func Run(cfg SweepConfig) File {
	cfg = cfg.withDefaults()
	f := File{
		SchemaVersion: SchemaVersion,
		Benchmark:     "multirate",
		Engine:        "simnet-virtual-time",
		Unit:          "msg/s",
		Machine:       cfg.MachineName,
		Sweep: Sweep{
			Threads: cfg.Threads, Window: cfg.Window, Iters: cfg.Iters,
			MsgSizeBytes: cfg.MsgSize, Instances: cfg.Instances,
			Latency: cfg.Latency,
		},
	}
	base := simnet.Config{
		Machine: cfg.Machine, Window: cfg.Window, Iters: cfg.Iters,
		MsgSize: cfg.MsgSize,
	}
	for _, d := range cfg.Designs {
		dr := DesignResult{Name: d.String(), Slug: d.Slug(), ProcessMode: d.IsProcessMode()}
		for _, threads := range cfg.Threads {
			sc := d.SimConfig(base, cfg.Instances)
			sc.Pairs = threads
			sc.Latency = cfg.Latency && !d.IsProcessMode()
			res := simnet.RunMultirate(sc)
			dr.Points = append(dr.Points, Point{
				Threads:        threads,
				MessagesPerSec: res.Rate,
				Messages:       res.Messages,
				MakespanNs:     res.Makespan.Nanoseconds(),
				LatencyStages:  stageLatencies(res.Latency),
			})
		}
		f.Designs = append(f.Designs, dr)
	}
	return f
}

// stageLatencies folds a run's rank dumps into the point's per-stage
// quantile list: populated stages in canonical enum order (the recording
// ownership rule puts each stage on exactly one rank), end-to-end last.
// Nil when the run carried no attribution.
func stageLatencies(dumps []latency.RankDump) []StageLatency {
	if len(dumps) == 0 {
		return nil
	}
	byStage := map[string]StageLatency{}
	var e2e *StageLatency
	for _, d := range dumps {
		for _, s := range d.Stages {
			if s.Stage == "e2e" {
				e2e = &StageLatency{Stage: "e2e", P50Ns: s.P50Ns, P99Ns: s.P99Ns}
				continue
			}
			if s.Count == 0 {
				continue
			}
			byStage[s.Stage] = StageLatency{Stage: s.Stage, P50Ns: s.P50Ns, P99Ns: s.P99Ns}
		}
	}
	var out []StageLatency
	for s := latency.Stage(0); s < latency.NumStages; s++ {
		if sl, ok := byStage[s.String()]; ok {
			out = append(out, sl)
		}
	}
	if e2e != nil {
		out = append(out, *e2e)
	}
	return out
}

// Marshal renders the file as indented JSON with a trailing newline.
func Marshal(f File) ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a trajectory file strictly (unknown fields are errors) but
// without the structural checks Validate performs.
func Parse(data []byte) (File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("benchjson: parse: %w", err)
	}
	return f, nil
}

// Validate checks that data is a well-formed trajectory file: required
// fields present and typed, a known schema version, at least two designs
// with unique slugs, and every design carrying one positive-rate point per
// swept thread count, in sweep order. It is deliberately strict — the file
// is a machine-readable interface, not a log.
func Validate(data []byte) error {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("benchjson: parse: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchjson: schema_version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Benchmark == "" || f.Engine == "" || f.Unit == "" {
		return fmt.Errorf("benchjson: benchmark/engine/unit must be non-empty")
	}
	if len(f.Sweep.Threads) == 0 {
		return fmt.Errorf("benchjson: sweep.threads is empty")
	}
	if !sort.IntsAreSorted(f.Sweep.Threads) {
		return fmt.Errorf("benchjson: sweep.threads not ascending: %v", f.Sweep.Threads)
	}
	for i, n := range f.Sweep.Threads {
		if n <= 0 {
			return fmt.Errorf("benchjson: sweep.threads[%d] = %d, want > 0", i, n)
		}
	}
	if f.Sweep.Window <= 0 || f.Sweep.Iters <= 0 {
		return fmt.Errorf("benchjson: sweep window/iters must be positive")
	}
	if len(f.Designs) < 2 {
		return fmt.Errorf("benchjson: %d designs, want >= 2 for a comparable trajectory", len(f.Designs))
	}
	seen := make(map[string]bool, len(f.Designs))
	for _, d := range f.Designs {
		if d.Name == "" || d.Slug == "" {
			return fmt.Errorf("benchjson: design with empty name or slug")
		}
		if seen[d.Slug] {
			return fmt.Errorf("benchjson: duplicate design slug %q", d.Slug)
		}
		seen[d.Slug] = true
		if len(d.Points) != len(f.Sweep.Threads) {
			return fmt.Errorf("benchjson: design %q has %d points for %d swept thread counts",
				d.Slug, len(d.Points), len(f.Sweep.Threads))
		}
		for i, p := range d.Points {
			if p.Threads != f.Sweep.Threads[i] {
				return fmt.Errorf("benchjson: design %q point %d at threads=%d, sweep says %d",
					d.Slug, i, p.Threads, f.Sweep.Threads[i])
			}
			if p.MessagesPerSec <= 0 {
				return fmt.Errorf("benchjson: design %q threads=%d rate %v, want > 0",
					d.Slug, p.Threads, p.MessagesPerSec)
			}
			if p.Messages <= 0 || p.MakespanNs <= 0 {
				return fmt.Errorf("benchjson: design %q threads=%d has non-positive messages/makespan",
					d.Slug, p.Threads)
			}
			switch {
			case !f.Sweep.Latency && len(p.LatencyStages) > 0:
				return fmt.Errorf("benchjson: design %q threads=%d carries latency_stages but sweep.latency is false",
					d.Slug, p.Threads)
			case f.Sweep.Latency && d.ProcessMode && len(p.LatencyStages) > 0:
				return fmt.Errorf("benchjson: process-mode design %q carries latency_stages (attribution is thread-mode only)",
					d.Slug)
			case f.Sweep.Latency && !d.ProcessMode && len(p.LatencyStages) == 0:
				return fmt.Errorf("benchjson: design %q threads=%d missing latency_stages in a sweep.latency file",
					d.Slug, p.Threads)
			}
			seenStage := make(map[string]bool, len(p.LatencyStages))
			for _, sl := range p.LatencyStages {
				if sl.Stage == "" {
					return fmt.Errorf("benchjson: design %q threads=%d has a latency stage with no name",
						d.Slug, p.Threads)
				}
				if seenStage[sl.Stage] {
					return fmt.Errorf("benchjson: design %q threads=%d repeats latency stage %q",
						d.Slug, p.Threads, sl.Stage)
				}
				seenStage[sl.Stage] = true
				if sl.P50Ns < 0 || sl.P99Ns < sl.P50Ns {
					return fmt.Errorf("benchjson: design %q threads=%d stage %q quantiles p50=%d p99=%d out of order",
						d.Slug, p.Threads, sl.Stage, sl.P50Ns, sl.P99Ns)
				}
			}
		}
	}
	return nil
}
