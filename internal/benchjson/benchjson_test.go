package benchjson

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/hw"
)

func tinySweep() SweepConfig {
	return SweepConfig{
		Machine: hw.Fast(), MachineName: "fast",
		Threads: []int{1, 2}, Window: 8, Iters: 2,
		Designs: []designs.Design{designs.OMPIThread, designs.OMPIThreadCRIFull},
	}
}

func TestRunProducesValidFile(t *testing.T) {
	f := Run(tinySweep())
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatalf("generated file fails its own schema: %v", err)
	}
	if len(f.Designs) != 2 {
		t.Fatalf("designs = %d, want 2", len(f.Designs))
	}
	for _, d := range f.Designs {
		for _, p := range d.Points {
			if p.MessagesPerSec <= 0 {
				t.Errorf("design %s threads=%d rate=%v", d.Slug, p.Threads, p.MessagesPerSec)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two identical sweeps produced different trajectory files")
	}
}

// TestRunLatencySweep: a sweep.latency run must carry per-stage quantiles
// on every thread-mode point — in canonical stage order with e2e last — and
// must not move the rate numbers at all (attribution reads only the virtual
// clock).
func TestRunLatencySweep(t *testing.T) {
	cfg := tinySweep()
	cfg.Latency = true
	cfg.Designs = []designs.Design{designs.OMPIProcess, designs.OMPIThread}
	f := Run(cfg)
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatalf("latency file fails its own schema: %v", err)
	}
	for _, d := range f.Designs {
		for _, p := range d.Points {
			if d.ProcessMode {
				if len(p.LatencyStages) != 0 {
					t.Fatalf("process-mode point carries stages: %+v", p)
				}
				continue
			}
			if len(p.LatencyStages) == 0 {
				t.Fatalf("%s threads=%d has no latency stages", d.Slug, p.Threads)
			}
			last := p.LatencyStages[len(p.LatencyStages)-1]
			if last.Stage != "e2e" || last.P99Ns <= 0 {
				t.Fatalf("%s threads=%d last stage %+v, want populated e2e", d.Slug, p.Threads, last)
			}
			for _, sl := range p.LatencyStages {
				if sl.P99Ns < sl.P50Ns || sl.P50Ns < 0 {
					t.Fatalf("%s threads=%d stage %s quantiles out of order: %+v", d.Slug, p.Threads, sl.Stage, sl)
				}
			}
		}
	}

	// The rate trajectory must be identical with attribution off.
	cfg.Latency = false
	off := Run(cfg)
	for i, d := range f.Designs {
		for j, p := range d.Points {
			q := off.Designs[i].Points[j]
			if p.MessagesPerSec != q.MessagesPerSec || p.MakespanNs != q.MakespanNs {
				t.Fatalf("%s threads=%d moved under attribution: %v vs %v msg/s", d.Slug, p.Threads,
					p.MessagesPerSec, q.MessagesPerSec)
			}
		}
	}
}

// TestValidateRejectsLatencyMismatch: latency_stages and sweep.latency must
// agree, and quantiles must be ordered.
func TestValidateRejectsLatencyMismatch(t *testing.T) {
	cfg := tinySweep()
	cfg.Latency = true
	good, err := Marshal(Run(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"sweep flag off but stages present", func(s string) string {
			return strings.Replace(s, `"latency": true`, `"latency": false`, 1)
		}, "sweep.latency is false"},
		{"quantiles out of order", func(s string) string {
			return strings.Replace(s, `"p50_ns": `, `"p50_ns": 99999999`, 1)
		}, "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate([]byte(tc.mutate(string(good))))
			if err == nil {
				t.Fatal("validated corrupted latency file")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	good, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"not json", func(s string) string { return "nope" }, "parse"},
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"benchmark"`, `"surprise": 1, "benchmark"`, 1)
		}, "parse"},
		{"wrong version", func(s string) string {
			return strings.Replace(s,
				fmt.Sprintf(`"schema_version": %d`, SchemaVersion),
				`"schema_version": 99`, 1)
		}, "schema_version"},
		{"one design", func(s string) string {
			i := strings.Index(s, `    {
      "name": "OMPI Thread + CRIs*"`)
			j := strings.LastIndex(s, "]")
			return s[:strings.LastIndex(s[:i], ",")] + "\n  " + s[j:]
		}, "want >= 2"},
		{"negative rate", func(s string) string {
			return strings.Replace(s, `"messages_per_sec": `, `"messages_per_sec": -`, 1)
		}, "want > 0"},
		{"duplicate slug", func(s string) string {
			return strings.Replace(s, `"slug": "ompi-thread-cri-full"`, `"slug": "ompi-thread"`, 1)
		}, "duplicate design slug"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(string(good))
			err := Validate([]byte(bad))
			if err == nil {
				t.Fatalf("validated corrupted file:\n%s", bad)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
