package benchjson

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/hw"
)

func tinySweep() SweepConfig {
	return SweepConfig{
		Machine: hw.Fast(), MachineName: "fast",
		Threads: []int{1, 2}, Window: 8, Iters: 2,
		Designs: []designs.Design{designs.OMPIThread, designs.OMPIThreadCRIFull},
	}
}

func TestRunProducesValidFile(t *testing.T) {
	f := Run(tinySweep())
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b); err != nil {
		t.Fatalf("generated file fails its own schema: %v", err)
	}
	if len(f.Designs) != 2 {
		t.Fatalf("designs = %d, want 2", len(f.Designs))
	}
	for _, d := range f.Designs {
		for _, p := range d.Points {
			if p.MessagesPerSec <= 0 {
				t.Errorf("design %s threads=%d rate=%v", d.Slug, p.Threads, p.MessagesPerSec)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two identical sweeps produced different trajectory files")
	}
}

func TestValidateRejects(t *testing.T) {
	good, err := Marshal(Run(tinySweep()))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"not json", func(s string) string { return "nope" }, "parse"},
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"benchmark"`, `"surprise": 1, "benchmark"`, 1)
		}, "parse"},
		{"wrong version", func(s string) string {
			return strings.Replace(s,
				fmt.Sprintf(`"schema_version": %d`, SchemaVersion),
				`"schema_version": 99`, 1)
		}, "schema_version"},
		{"one design", func(s string) string {
			i := strings.Index(s, `    {
      "name": "OMPI Thread + CRIs*"`)
			j := strings.LastIndex(s, "]")
			return s[:strings.LastIndex(s[:i], ",")] + "\n  " + s[j:]
		}, "want >= 2"},
		{"negative rate", func(s string) string {
			return strings.Replace(s, `"messages_per_sec": `, `"messages_per_sec": -`, 1)
		}, "want > 0"},
		{"duplicate slug", func(s string) string {
			return strings.Replace(s, `"slug": "ompi-thread-cri-full"`, `"slug": "ompi-thread"`, 1)
		}, "duplicate design slug"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(string(good))
			err := Validate([]byte(bad))
			if err == nil {
				t.Fatalf("validated corrupted file:\n%s", bad)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
