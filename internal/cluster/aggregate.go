package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/spc"
)

// MergeFamilies concatenates every rank's families into one exposition:
// one family per name (first-seen HELP/TYPE wins; the exporters emit
// identical metadata on every rank), samples appended in rank order.
// Because every sample carries a rank label (enforced at scrape time), the
// merge can never collide two ranks' series.
func MergeFamilies(ranks []RankState) []PromFamily {
	var out []PromFamily
	index := map[string]int{}
	for _, rs := range ranks {
		for _, f := range rs.Families {
			i, ok := index[f.Name]
			if !ok {
				index[f.Name] = len(out)
				out = append(out, PromFamily{Name: f.Name, Type: f.Type, Help: f.Help})
				i = len(out) - 1
			}
			out[i].Samples = append(out[i].Samples, f.Samples...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RollupSPC merges every rank's process-scope counters into the cluster
// total — the same Merge invariant the per-process roll-up uses across
// CRIs and communicators, applied one level up across ranks.
func RollupSPC(ranks []RankState) spc.Snapshot {
	snaps := make([]spc.Snapshot, 0, len(ranks))
	for _, rs := range ranks {
		snaps = append(snaps, rs.SPC)
	}
	return spc.Merge(snaps...)
}

// ClusterState is one aggregation round's full output: the scraped ranks,
// the merged exposition, the rollup, per-rank rates from the detector, and
// the verdicts fired so far.
type ClusterState struct {
	CapturedNs int64
	Polls      int64
	Ranks      []RankState
	Rollup     spc.Snapshot
	// Rates holds the detector's per-rank trailing-window message rates
	// (msgs/s, sent+received), keyed by rank; absent until a full rate
	// window has elapsed.
	Rates map[int]float64
	// Current holds the verdicts fired by the latest observation; History
	// accumulates every verdict of the run in firing order.
	Current []Verdict
	History []Verdict
}

// Clean reports whether the run has produced no verdicts at all.
func (cs ClusterState) Clean() bool { return len(cs.History) == 0 }

// WriteClusterMetrics renders the aggregate exposition: every rank's
// families merged, followed by the mpi_cluster_* gauges that only exist at
// this level (rank counts, readiness, scrape errors, per-rank rates and
// depths, verdict counts, imbalance flag).
func WriteClusterMetrics(w io.Writer, cs ClusterState) error {
	if err := WriteFamilies(w, MergeFamilies(cs.Ranks)); err != nil {
		return err
	}
	g := func(name, help string, samples ...PromSample) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, s := range samples {
			s.Name = name
			formatSample(w, s)
		}
	}
	ready, errs := 0, 0
	for _, rs := range cs.Ranks {
		if rs.Err != "" {
			errs++
		} else if rs.Ready {
			ready++
		}
	}
	g("mpi_cluster_ranks", "Ranks the aggregator scrapes.",
		PromSample{Value: float64(len(cs.Ranks))})
	g("mpi_cluster_ranks_ready", "Ranks whose /readyz answered 200 on the last poll.",
		PromSample{Value: float64(ready)})
	g("mpi_cluster_scrape_errors", "Ranks whose last scrape failed.",
		PromSample{Value: float64(errs)})
	g("mpi_cluster_polls_total", "Aggregation rounds completed.",
		PromSample{Value: float64(cs.Polls)})

	var rateSamples, depthSamples []PromSample
	for _, rs := range cs.Ranks {
		rank := strconv.Itoa(rs.Rank)
		if r, ok := cs.Rates[rs.Rank]; ok {
			rateSamples = append(rateSamples, PromSample{
				Labels: map[string]string{"rank": rank}, Value: r})
		}
		depth := 0
		for _, cq := range rs.Queues.Comms {
			depth += cq.Unexpected
		}
		depthSamples = append(depthSamples, PromSample{
			Labels: map[string]string{"rank": rank}, Value: float64(depth)})
	}
	g("mpi_cluster_msg_rate", "Per-rank message rate (sent+received per second) over the last rate window.",
		rateSamples...)
	g("mpi_cluster_unexpected_depth", "Per-rank unexpected-queue depth summed over communicators.",
		depthSamples...)

	byReason := map[string]int{}
	for _, v := range cs.History {
		byReason[v.Reason]++
	}
	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	verdictSamples := make([]PromSample, 0, len(reasons))
	for _, r := range reasons {
		verdictSamples = append(verdictSamples, PromSample{
			Labels: map[string]string{"reason": r}, Value: float64(byReason[r])})
	}
	g("mpi_cluster_verdicts_total", "Imbalance verdicts fired this run, by reason.",
		verdictSamples...)
	imbalance := 0.0
	if len(cs.Current) > 0 {
		imbalance = 1
	}
	g("mpi_cluster_imbalance", "1 while the latest observation fired at least one verdict.",
		PromSample{Value: imbalance})
	return nil
}

// WriteClusterSPC renders the /cluster/spc document: the cluster-level
// rollup first, then every rank's own attribution dump verbatim.
func WriteClusterSPC(w io.Writer, cs ClusterState) error {
	if _, err := fmt.Fprintf(w, "cluster totals (%d ranks):\n%s", len(cs.Ranks), indent(cs.Rollup.String())); err != nil {
		return err
	}
	for _, rs := range cs.Ranks {
		if rs.Err != "" {
			fmt.Fprintf(w, "--- rank %d (scrape failed: %s)\n", rs.Rank, rs.Err)
			continue
		}
		fmt.Fprintf(w, "--- rank %d\n%s", rs.Rank, rs.SPCText)
	}
	return nil
}

func indent(s string) string {
	if s == "" {
		return "  (all zero)\n"
	}
	out := "  "
	for i := 0; i < len(s); i++ {
		out += string(s[i])
		if s[i] == '\n' && i != len(s)-1 {
			out += "  "
		}
	}
	return out
}

// RankReport is one rank's row in the cluster report — exactly the columns
// mpitop renders.
type RankReport struct {
	Rank          int     `json:"rank"`
	Ready         bool    `json:"ready"`
	ReadyReason   string  `json:"ready_reason,omitempty"`
	Err           string  `json:"err,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	MsgRate       float64 `json:"msg_rate"`
	Sent          int64   `json:"sent"`
	Received      int64   `json:"received"`
	Retransmits   int64   `json:"retransmits"`
	Conns         int64   `json:"conns"`
	Posted        int     `json:"posted"`
	Unexpected    int     `json:"unexpected"`
	OOSBuffered   int     `json:"oos_buffered"`
	P99LatencyNs  int64   `json:"p99_latency_ns"`
	// E2EP99Ns is the rank's critical-path end-to-end p99 from the
	// attribution layer (0 when the rank doesn't export it), and StageP99Ns
	// its per-stage breakdown keyed by stage name — what the waterfall and
	// the tail-skew verdict decompose the tail into.
	E2EP99Ns   int64            `json:"e2e_p99_ns,omitempty"`
	StageP99Ns map[string]int64 `json:"stage_p99_ns,omitempty"`
	// Verdict is the most recent verdict reason naming this rank, "" when
	// the rank has stayed clean.
	Verdict string `json:"verdict,omitempty"`
}

// HotStage is the report row's dominant stage: the largest per-stage p99,
// ties broken to the lexically first name ("" without attribution data).
func (rr RankReport) HotStage() (string, int64) {
	best, bestNs := "", int64(0)
	for name, ns := range rr.StageP99Ns {
		if ns > bestNs || (ns == bestNs && best != "" && name < best) {
			best, bestNs = name, ns
		}
	}
	return best, bestNs
}

// Report is the end-of-run cluster artifact (-report-out, /cluster/report):
// one row per rank, the rollup, and the full verdict history. Schema
// changes bump ReportSchemaVersion.
type Report struct {
	SchemaVersion int              `json:"schema_version"`
	CapturedNs    int64            `json:"captured_ns"`
	Polls         int64            `json:"polls"`
	Clean         bool             `json:"clean"`
	Ranks         []RankReport     `json:"ranks"`
	Cluster       map[string]int64 `json:"cluster_totals"`
	Verdicts      []Verdict        `json:"verdicts"`
}

// ReportSchemaVersion identifies the cluster report layout. v2 added the
// per-rank critical-path fields (e2e_p99_ns, stage_p99_ns).
const ReportSchemaVersion = 2

// BuildReport condenses the cluster state into the report.
func BuildReport(cs ClusterState) Report {
	rep := Report{
		SchemaVersion: ReportSchemaVersion,
		CapturedNs:    cs.CapturedNs,
		Polls:         cs.Polls,
		Clean:         cs.Clean(),
		Cluster:       map[string]int64{},
		Verdicts:      append([]Verdict{}, cs.History...),
		Ranks:         []RankReport{},
	}
	for c := 0; c < spc.NumCounters; c++ {
		if v := cs.Rollup.Get(spc.Counter(c)); v != 0 {
			rep.Cluster[spc.Counter(c).String()] = v
		}
	}
	lastVerdict := map[int]string{}
	for _, v := range cs.History {
		lastVerdict[v.Rank] = v.Reason
	}
	for _, rs := range cs.Ranks {
		rr := RankReport{
			Rank:          rs.Rank,
			Ready:         rs.Ready,
			ReadyReason:   rs.ReadyReason,
			Err:           rs.Err,
			UptimeSeconds: rs.UptimeSeconds,
			Sent:          rs.SPC.Get(spc.MessagesSent),
			Received:      rs.SPC.Get(spc.MessagesReceived),
			Retransmits:   rs.SPC.Get(spc.Retransmits),
			Conns:         rs.SPC.Get(spc.ConnsOpened) - rs.SPC.Get(spc.DialRacesLost),
			Verdict:       lastVerdict[rs.Rank],
		}
		if r, ok := cs.Rates[rs.Rank]; ok {
			rr.MsgRate = r
		}
		for _, cq := range rs.Queues.Comms {
			rr.Posted += cq.Posted
			rr.Unexpected += cq.Unexpected
			rr.OOSBuffered += cq.OOSBuffered
		}
		if f, ok := FamilyByName(rs.Families, "mpi_msg_latency_ns"); ok {
			rr.P99LatencyNs = HistogramQuantile(f, strconv.Itoa(rs.Rank), 0.99)
		}
		if e2e, stages := latencyFromFamilies(rs.Families, strconv.Itoa(rs.Rank)); e2e > 0 {
			rr.E2EP99Ns = e2e
			rr.StageP99Ns = make(map[string]int64, len(stages))
			for _, sp := range stages {
				rr.StageP99Ns[sp.Stage] = sp.P99Ns
			}
		}
		rep.Ranks = append(rep.Ranks, rr)
	}
	return rep
}
