package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/spc"
	"repro/internal/telemetry"
)

// fakeRank is a live obs endpoint whose counters the test advances.
type fakeRank struct {
	rank   int
	sent   atomic.Int64
	recv   atomic.Int64
	posted atomic.Int64
	srv    *obs.Server
}

func startFakeRank(t *testing.T, rank int) *fakeRank {
	t.Helper()
	fr := &fakeRank{rank: rank}
	src := obs.Source{
		Stats: func() []telemetry.ProcStats {
			set := spc.NewSet()
			set.SetEnabled(true)
			set.Add(spc.MessagesSent, fr.sent.Load())
			set.Add(spc.MessagesReceived, fr.recv.Load())
			return []telemetry.ProcStats{{Rank: rank, Process: set.Snapshot()}}
		},
		Queues: func() []flight.QueueSnapshot {
			return []flight.QueueSnapshot{{
				Rank:  rank,
				Comms: []flight.CommQueues{{Comm: 0, Posted: int(fr.posted.Load())}},
			}}
		},
		Info: map[string]string{"rank": fmt.Sprint(rank), "transport": "test"},
	}
	srv, err := obs.Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	fr.srv = srv
	return fr
}

func (fr *fakeRank) endpoint() Endpoint {
	return Endpoint{Rank: fr.rank, URL: "http://" + fr.srv.Addr()}
}

func TestScrapeRecoversRankState(t *testing.T) {
	fr := startFakeRank(t, 2)
	fr.sent.Store(123)
	fr.recv.Store(456)
	fr.posted.Store(7)
	time.Sleep(5 * time.Millisecond) // let the uptime gauge tick past 0.000

	s := &Scraper{Endpoints: []Endpoint{fr.endpoint()}}
	states := s.Scrape()
	if len(states) != 1 {
		t.Fatalf("states = %d", len(states))
	}
	rs := states[0]
	if rs.Err != "" {
		t.Fatalf("scrape error: %s", rs.Err)
	}
	if !rs.Ready {
		t.Fatal("nil Ready callback should scrape as ready")
	}
	if got := rs.SPC.Get(spc.MessagesSent); got != 123 {
		t.Fatalf("sent = %d, want 123", got)
	}
	if got := rs.SPC.Get(spc.MessagesReceived); got != 456 {
		t.Fatalf("received = %d, want 456", got)
	}
	if len(rs.Queues.Comms) != 1 || rs.Queues.Comms[0].Posted != 7 {
		t.Fatalf("queues = %+v", rs.Queues)
	}
	if rs.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v, want > 0", rs.UptimeSeconds)
	}
	if rs.SPCText == "" {
		t.Fatal("raw /spc body empty")
	}
	// The rank-label contract holds on every parsed sample.
	for _, f := range rs.Families {
		for _, smp := range f.Samples {
			if smp.Label("rank") == "" {
				t.Fatalf("sample %s missing rank label", f.Name)
			}
		}
	}
}

func TestScrapeFailure(t *testing.T) {
	s := &Scraper{Endpoints: []Endpoint{{Rank: 0, URL: "http://127.0.0.1:1"}}}
	rs := s.Scrape()[0]
	if rs.Err == "" {
		t.Fatal("dead endpoint scraped without error")
	}
}

func get(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

// TestAggregatorEndToEnd drives the whole plane over live HTTP: N fake
// ranks, the polling aggregator, and every /cluster/* endpoint.
func TestAggregatorEndToEnd(t *testing.T) {
	var eps []Endpoint
	var ranks []*fakeRank
	for r := 0; r < 4; r++ {
		fr := startFakeRank(t, r)
		fr.sent.Store(int64(100 * (r + 1)))
		fr.recv.Store(int64(100 * (r + 1)))
		ranks = append(ranks, fr)
		eps = append(eps, fr.endpoint())
	}
	agg := NewAggregator(AggregatorConfig{Endpoints: eps})
	agg.PollOnce()
	srv, err := Serve("127.0.0.1:0", agg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /cluster/metrics: one process series per rank plus the cluster gauges.
	body, status := get(t, base+"/cluster/metrics")
	if status != http.StatusOK {
		t.Fatalf("/cluster/metrics status %d", status)
	}
	for r := 0; r < 4; r++ {
		want := fmt.Sprintf(`mpi_spc_messages_sent{rank="%d",scope="process"} %d`, r, 100*(r+1))
		if !strings.Contains(body, want) {
			t.Fatalf("/cluster/metrics missing %q:\n%s", want, body)
		}
	}
	for _, want := range []string{
		"mpi_cluster_ranks 4",
		"mpi_cluster_ranks_ready 4",
		"mpi_cluster_scrape_errors 0",
		"mpi_cluster_imbalance 0",
		`mpi_uptime_seconds{rank="2"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/cluster/metrics missing %q", want)
		}
	}
	// The merged exposition must itself parse — aggregator output obeys the
	// same format it scrapes.
	if _, err := ParsePromText(strings.NewReader(body)); err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}

	// /cluster/spc: rollup sums the four ranks' sends (100+200+300+400).
	body, _ = get(t, base+"/cluster/spc")
	if !strings.Contains(body, "cluster totals (4 ranks)") {
		t.Fatalf("/cluster/spc missing rollup header:\n%s", body)
	}
	if !strings.Contains(body, "1000") {
		t.Fatalf("/cluster/spc rollup missing summed sends:\n%s", body)
	}

	// /cluster/health: all ready.
	body, status = get(t, base+"/cluster/health")
	if status != http.StatusOK {
		t.Fatalf("/cluster/health status %d: %s", status, body)
	}

	// /cluster/imbalance: clean.
	body, _ = get(t, base+"/cluster/imbalance")
	var imb struct {
		Clean    bool      `json:"clean"`
		Verdicts []Verdict `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(body), &imb); err != nil {
		t.Fatal(err)
	}
	if !imb.Clean || len(imb.Verdicts) != 0 {
		t.Fatalf("healthy cluster not clean: %s", body)
	}

	// /cluster/report: schema, one row per rank, totals.
	body, _ = get(t, base+"/cluster/report")
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion || !rep.Clean || len(rep.Ranks) != 4 {
		t.Fatalf("report wrong: %s", body)
	}
	if rep.Cluster["messages_sent"] != 1000 {
		t.Fatalf("report cluster totals = %v, want messages_sent 1000", rep.Cluster)
	}
	if rep.Ranks[2].Sent != 300 {
		t.Fatalf("report rank 2 sent = %d, want 300", rep.Ranks[2].Sent)
	}
}

// TestAggregatorDetectsLiveStraggler stalls one fake rank (frozen counters,
// posted receives) while the others advance, with detector windows shrunk
// so the test runs in well under a second of wall time.
func TestAggregatorDetectsLiveStraggler(t *testing.T) {
	var eps []Endpoint
	var ranks []*fakeRank
	for r := 0; r < 3; r++ {
		fr := startFakeRank(t, r)
		ranks = append(ranks, fr)
		eps = append(eps, fr.endpoint())
	}
	ranks[2].posted.Store(4) // rank 2 wedges with receives outstanding
	agg := NewAggregator(AggregatorConfig{
		Endpoints: eps,
		Detector:  DetectorConfig{StallAfter: 40 * time.Millisecond},
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for r, fr := range ranks {
			if r != 2 {
				fr.sent.Add(100)
				fr.recv.Add(100)
			}
		}
		if cs := agg.PollOnce(); len(cs.History) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cs := agg.State()
	if len(cs.History) == 0 {
		t.Fatal("no verdict for a live stalled rank")
	}
	for _, v := range cs.History {
		if v.Rank != 2 {
			t.Fatalf("verdict named rank %d, want 2: %+v", v.Rank, v)
		}
	}
	// The verdict surfaces on /cluster/imbalance and flips the gauge.
	srv, err := Serve("127.0.0.1:0", agg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, "http://"+srv.Addr()+"/cluster/imbalance")
	if !strings.Contains(body, `"rank-straggler"`) {
		t.Fatalf("/cluster/imbalance missing straggler verdict: %s", body)
	}
	body, _ = get(t, "http://"+srv.Addr()+"/cluster/metrics")
	if !strings.Contains(body, `mpi_cluster_verdicts_total{reason="rank-straggler"}`) {
		t.Fatalf("verdict gauge missing:\n%s", body)
	}
}

// TestAggregatorKeepsLastGoodState kills a rank mid-run: its row keeps the
// last good counters with the error noted, and health goes unhealthy.
func TestAggregatorKeepsLastGoodState(t *testing.T) {
	fr0 := startFakeRank(t, 0)
	fr1 := startFakeRank(t, 1)
	fr1.sent.Store(42)
	agg := NewAggregator(AggregatorConfig{
		Endpoints: []Endpoint{fr0.endpoint(), fr1.endpoint()},
	})
	agg.PollOnce()
	fr1.srv.Close()
	cs := agg.PollOnce()
	var r1 RankState
	for _, rs := range cs.Ranks {
		if rs.Rank == 1 {
			r1 = rs
		}
	}
	if r1.Err == "" {
		t.Fatal("dead rank scraped without error")
	}
	if got := r1.SPC.Get(spc.MessagesSent); got != 42 {
		t.Fatalf("last good state lost: sent = %d, want 42", got)
	}
	srv, err := Serve("127.0.0.1:0", agg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, status := get(t, "http://"+srv.Addr()+"/cluster/health")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/cluster/health status %d with a dead rank: %s", status, body)
	}
	// A dead rank is a health problem, not an imbalance verdict: teardown
	// races must not dirty the run's verdict record.
	if len(cs.History) != 0 {
		t.Fatalf("scrape failure produced verdicts: %+v", cs.History)
	}
}

func TestAggregatorStartStop(t *testing.T) {
	fr := startFakeRank(t, 0)
	agg := NewAggregator(AggregatorConfig{
		Endpoints: []Endpoint{fr.endpoint()},
		Poll:      5 * time.Millisecond,
	})
	agg.Start()
	deadline := time.Now().Add(5 * time.Second)
	for agg.State().Polls == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	agg.Stop()
	if agg.State().Polls == 0 {
		t.Fatal("poll loop never polled")
	}
}
