package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/flight"
)

// Obs is one rank's condensed state at a single cluster observation:
// cumulative movement counters, live queue depths, and readiness. The live
// aggregator builds one per rank from a scrape; the simnet twin builds one
// per virtual rank from a flight.Sample.
type Obs struct {
	Rank int
	// Err is a non-empty scrape failure description. An errored rank
	// contributes nothing to the detections this round (its counters are
	// stale), but stays visible in health output.
	Err string
	// Ready mirrors the rank's /readyz; ReadyReason carries the 503 body.
	Ready       bool
	ReadyReason string
	// Cumulative SPC movement counters.
	Sent, Received, Retransmits int64
	// Live queue depths summed over the rank's communicators.
	Posted, Unexpected, OOSBuffered int
	// Unacked is the rank's total reliability-window occupancy.
	Unacked int
	// LatencyValid marks ranks whose critical-path attribution layer is on
	// and has completed at least one traced message; the tail-skew rule only
	// scores these ranks.
	LatencyValid bool
	// E2EP99Ns is the rank's end-to-end p99 message latency.
	E2EP99Ns int64
	// StageP99 carries the rank's per-stage p99 breakdown — what lets the
	// tail-skew verdict name the stage responsible, not just the rank.
	StageP99 []flight.StageP99
}

// queued is the rank's total visible work in flight — the quantity that
// separates "straggling" from "finished" (zero) and from "blocked in a
// collective" (the ambient handful below DetectorConfig.MinOutstanding).
func (o Obs) queued() int {
	return o.Posted + o.Unexpected + o.OOSBuffered + o.Unacked
}

// Sample is one synchronized cluster observation.
type Sample struct {
	NowNs int64
	Obs   []Obs
}

// DetectorConfig bounds the cross-rank detections. Zero values take
// defaults chosen to match flight.DetectorConfig where the detections
// overlap (stalls, retransmit storms).
type DetectorConfig struct {
	// StallAfter fires the straggler detection when one rank's sent+received
	// counters freeze for this long with work outstanding while some other
	// rank keeps moving (default 1s).
	StallAfter time.Duration
	// MinOutstanding is the least total queued work (posted + unexpected +
	// out-of-sequence + unacked) the straggler and rate-skew rules require
	// before implicating a rank (default 4). A rank blocked in a barrier
	// while faster peers finish legitimately freezes holding one or two
	// collective receives; a genuinely stuck rank holds a window's worth.
	MinOutstanding int
	// SkewFraction fires the rate-skew detection when a rank with work
	// outstanding sustains a message rate below this fraction of the cluster
	// median over RateWindow (default 0.25).
	SkewFraction float64
	// RateWindow is the trailing window rates are computed over (default 1s).
	RateWindow time.Duration
	// MinMedianRate suppresses rate-skew when the cluster median is below
	// this many messages/second — idle phases produce no skew verdicts
	// (default 10).
	MinMedianRate float64
	// SkewWindows is how many consecutive completed rate windows a rank
	// must qualify as skewed before the verdict fires (default 2). One bad
	// window is scheduler noise on an oversubscribed host; a sick rank
	// stays under the fraction window after window.
	SkewWindows int
	// DivergeFactor and DivergeMin fire the unexpected-queue divergence
	// detection when a rank's unexpected depth exceeds DivergeFactor times
	// the cluster median and the excess is at least DivergeMin messages
	// (defaults 4 and 64).
	DivergeFactor float64
	DivergeMin    int
	// DivergeAfter additionally requires the diverging rank's received
	// counter to have been frozen this long (default: StallAfter). A rank
	// that is draining its queue is not diverging, however deep a sender
	// legitimately runs ahead of it — only depth combined with receive-side
	// stagnation localizes "arrivals outpacing posted receives" to a rank.
	DivergeAfter time.Duration
	// StormWindow and StormRetransmits localize a retransmit storm to a rank
	// when that rank alone re-injects at least StormRetransmits packets
	// within one StormWindow (defaults 1s / 100 — flight.Detector's storm
	// thresholds, applied per rank instead of per process).
	StormWindow      time.Duration
	StormRetransmits int64
	// ReadyStragglerAfter fires the readiness-straggler detection when a
	// rank still answers not-ready this long after the first rank reported
	// ready (default 2s). Fires once per rank per not-ready episode.
	ReadyStragglerAfter time.Duration
	// TailFactor fires the latency-tail-skew detection when a rank's
	// end-to-end p99 exceeds this multiple of the cluster median p99
	// (default 4). Needs at least 3 latency-reporting ranks for the median
	// to mean anything.
	TailFactor float64
	// TailWindows is how many consecutive observations a rank must stay
	// over TailFactor before the verdict fires (default 3) — one skewed
	// poll is a warm-up artifact; a sick tail persists.
	TailWindows int
	// TailMinP99 suppresses tail-skew below this absolute p99 (default
	// 1ms): a rank at 4x a sub-microsecond median is noise, not a tail.
	TailMinP99 time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.StallAfter <= 0 {
		c.StallAfter = time.Second
	}
	if c.MinOutstanding <= 0 {
		c.MinOutstanding = 4
	}
	if c.SkewFraction <= 0 {
		c.SkewFraction = 0.25
	}
	if c.RateWindow <= 0 {
		c.RateWindow = time.Second
	}
	if c.MinMedianRate <= 0 {
		c.MinMedianRate = 10
	}
	if c.SkewWindows <= 0 {
		c.SkewWindows = 2
	}
	if c.DivergeFactor <= 0 {
		c.DivergeFactor = 4
	}
	if c.DivergeMin <= 0 {
		c.DivergeMin = 64
	}
	if c.DivergeAfter <= 0 {
		c.DivergeAfter = c.StallAfter
	}
	if c.StormWindow <= 0 {
		c.StormWindow = time.Second
	}
	if c.StormRetransmits <= 0 {
		c.StormRetransmits = 100
	}
	if c.ReadyStragglerAfter <= 0 {
		c.ReadyStragglerAfter = 2 * time.Second
	}
	if c.TailFactor <= 0 {
		c.TailFactor = 4
	}
	if c.TailWindows <= 0 {
		c.TailWindows = 3
	}
	if c.TailMinP99 <= 0 {
		c.TailMinP99 = time.Millisecond
	}
	return c
}

// Verdict is one fired cross-rank detection: which rank is implicated, why,
// and since when. Reasons are stable strings: "rank-straggler",
// "rate-skew", "unexpected-divergence", "retransmit-storm",
// "readiness-straggler", "latency-tail-skew".
type Verdict struct {
	Reason  string `json:"reason"`
	Rank    int    `json:"rank"`
	Detail  string `json:"detail"`
	SinceNs int64  `json:"since_ns"`
}

// rankTrack is the detector's per-rank memory.
type rankTrack struct {
	lastSent, lastRecv int64
	lastMoveNs         int64
	// recvMoveNs is the last time the received counter alone moved — the
	// divergence rule's drain-stagnation clock.
	recvMoveNs int64
	// rate window anchor
	rateAnchorNs    int64
	rateAnchorTotal int64
	rate            float64
	rateValid       bool
	// rateFresh marks an observation where a rate window just completed —
	// the only rounds the skew rule scores, so its streak counts windows,
	// not polls.
	rateFresh  bool
	skewStreak int
	// retransmit storm anchor
	stormAnchorNs      int64
	stormAnchorRetrans int64
	// readiness latch: a verdict fired for the current not-ready episode
	readyFired bool
	// divergence latch: a verdict fired for the current divergence episode
	divergeFired bool
	// latency tail-skew streak and episode latch
	tailStreak int
	tailFired  bool
	seen       bool
}

// Detector is the cluster imbalance decision core: a pure deterministic
// state machine fed synchronized Samples, firing zero or more Verdicts per
// observation (at most one per reason per rank, re-armed after firing).
// Like flight.Detector it owns no clocks or goroutines, which is what lets
// the simnet engine run the identical logic over virtual-time series.
type Detector struct {
	cfg          DetectorConfig
	tracks       map[int]*rankTrack
	firstReadyNs int64
	haveReady    bool
}

// NewDetector creates a detector with cfg (zero fields take defaults).
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), tracks: make(map[int]*rankTrack)}
}

// Rate returns the rank's message rate (msgs/s of sent+received) over the
// last completed rate window, and whether a full window has elapsed yet.
func (d *Detector) Rate(rank int) (float64, bool) {
	if tr, ok := d.tracks[rank]; ok {
		return tr.rate, tr.rateValid
	}
	return 0, false
}

func (d *Detector) track(rank int, s Obs, nowNs int64) *rankTrack {
	tr := d.tracks[rank]
	if tr == nil {
		tr = &rankTrack{}
		d.tracks[rank] = tr
	}
	if !tr.seen {
		tr.seen = true
		tr.lastSent, tr.lastRecv = s.Sent, s.Received
		tr.lastMoveNs = nowNs
		tr.recvMoveNs = nowNs
		tr.rateAnchorNs, tr.rateAnchorTotal = nowNs, s.Sent+s.Received
		tr.stormAnchorNs, tr.stormAnchorRetrans = nowNs, s.Retransmits
	}
	return tr
}

// Observe feeds one synchronized cluster sample and returns the verdicts it
// fires. The first observation of each rank primes that rank's baselines.
func (d *Detector) Observe(s Sample) []Verdict {
	var out []Verdict
	now := s.NowNs

	// Movement and rate bookkeeping first, so the cross-rank comparisons
	// below see this observation's state.
	type live struct {
		obs Obs
		tr  *rankTrack
	}
	var ranks []live
	for _, o := range s.Obs {
		tr := d.track(o.Rank, o, now)
		if o.Err != "" {
			continue // stale state: exclude from this round's detections
		}
		if o.Received != tr.lastRecv {
			tr.recvMoveNs = now
		}
		if o.Sent != tr.lastSent || o.Received != tr.lastRecv {
			tr.lastSent, tr.lastRecv = o.Sent, o.Received
			tr.lastMoveNs = now
		}
		tr.rateFresh = false
		if dt := now - tr.rateAnchorNs; dt >= int64(d.cfg.RateWindow) {
			total := o.Sent + o.Received
			tr.rate = float64(total-tr.rateAnchorTotal) / (float64(dt) / float64(time.Second))
			tr.rateValid = true
			tr.rateFresh = true
			tr.rateAnchorNs, tr.rateAnchorTotal = now, total
		}
		ranks = append(ranks, live{o, tr})
	}

	// Readiness: anchor the cluster's first ready sighting, then flag
	// stragglers against it.
	for _, r := range ranks {
		if r.obs.Ready {
			if !d.haveReady {
				d.haveReady = true
				d.firstReadyNs = now
			}
			r.tr.readyFired = false // new episode allowed after a restart
		}
	}
	for _, r := range ranks {
		if r.obs.Ready || !d.haveReady || r.tr.readyFired {
			continue
		}
		if now-d.firstReadyNs >= int64(d.cfg.ReadyStragglerAfter) {
			r.tr.readyFired = true
			out = append(out, Verdict{
				Reason: "readiness-straggler",
				Rank:   r.obs.Rank,
				Detail: fmt.Sprintf("rank %d still not ready %v after the first rank reported ready (%s)",
					r.obs.Rank, time.Duration(now-d.firstReadyNs), orUnknown(r.obs.ReadyReason)),
				SinceNs: d.firstReadyNs,
			})
		}
	}

	// Straggler: frozen counters + outstanding work on one rank while some
	// other rank moved within the stall window. The cross-rank movement
	// requirement is what distinguishes one sick rank from a globally
	// stalled (deadlocked) job — the per-rank watchdog owns that case.
	someoneMoved := false
	for _, r := range ranks {
		if now-r.tr.lastMoveNs < int64(d.cfg.StallAfter) {
			someoneMoved = true
			break
		}
	}
	if someoneMoved {
		for _, r := range ranks {
			frozen := now - r.tr.lastMoveNs
			if frozen >= int64(d.cfg.StallAfter) && r.obs.queued() >= d.cfg.MinOutstanding {
				since := r.tr.lastMoveNs
				r.tr.lastMoveNs = now // re-arm
				out = append(out, Verdict{
					Reason: "rank-straggler",
					Rank:   r.obs.Rank,
					Detail: fmt.Sprintf("rank %d made no send/recv progress for %v with work outstanding (posted=%d unexpected=%d oos=%d unacked=%d) while peers kept moving",
						r.obs.Rank, time.Duration(frozen), r.obs.Posted, r.obs.Unexpected, r.obs.OOSBuffered, r.obs.Unacked),
					SinceNs: since,
				})
			}
		}
	}

	// Rate skew: a rank with work outstanding sustaining a small fraction
	// of the cluster-median rate. Needs at least 3 ranks for a meaningful
	// median (with 2, "the median" is half the straggler itself).
	var rates []float64
	for _, r := range ranks {
		if r.tr.rateValid {
			rates = append(rates, r.tr.rate)
		}
	}
	if len(rates) >= 3 {
		med := median(rates)
		if med >= d.cfg.MinMedianRate {
			for _, r := range ranks {
				if !r.tr.rateFresh {
					continue // score each completed window exactly once
				}
				if r.obs.queued() < d.cfg.MinOutstanding || r.tr.rate >= d.cfg.SkewFraction*med {
					r.tr.skewStreak = 0
					continue
				}
				r.tr.skewStreak++
				if r.tr.skewStreak < d.cfg.SkewWindows {
					continue
				}
				r.tr.skewStreak = 0 // re-arm: need a fresh streak
				out = append(out, Verdict{
					Reason: "rate-skew",
					Rank:   r.obs.Rank,
					Detail: fmt.Sprintf("rank %d at %.0f msg/s vs cluster median %.0f (%.0f%%) over %d consecutive windows with work outstanding",
						r.obs.Rank, r.tr.rate, med, 100*safeDiv(r.tr.rate, med), d.cfg.SkewWindows),
					SinceNs: now - int64(d.cfg.SkewWindows)*int64(d.cfg.RateWindow),
				})
			}
		}
	}

	// Unexpected-queue divergence: one rank's unexpected depth far above
	// the cluster median — arrivals outpacing posted receives on that rank
	// specifically (the per-rank watchdog's growth detection sees the
	// trend; this sees the cross-rank asymmetry).
	if len(ranks) >= 2 {
		depths := make([]float64, 0, len(ranks))
		for _, r := range ranks {
			depths = append(depths, float64(r.obs.Unexpected))
		}
		med := median(depths)
		for _, r := range ranks {
			excess := float64(r.obs.Unexpected) - med
			stagnant := now-r.tr.recvMoveNs >= int64(d.cfg.DivergeAfter)
			diverged := float64(r.obs.Unexpected) >= d.cfg.DivergeFactor*(med+1) &&
				excess >= float64(d.cfg.DivergeMin) && stagnant
			if !diverged {
				r.tr.divergeFired = false // episode over: re-arm
				continue
			}
			if !r.tr.divergeFired {
				r.tr.divergeFired = true
				out = append(out, Verdict{
					Reason: "unexpected-divergence",
					Rank:   r.obs.Rank,
					Detail: fmt.Sprintf("rank %d unexpected queue depth %d vs cluster median %.0f with no receive progress for %v; arrivals are outpacing posted receives on this rank",
						r.obs.Rank, r.obs.Unexpected, med, time.Duration(now-r.tr.recvMoveNs)),
					SinceNs: r.tr.recvMoveNs,
				})
			}
		}
	}

	// Latency tail skew: one rank's end-to-end p99 far above the cluster
	// median p99, sustained. The per-stage breakdown in the observation
	// lets the verdict name the stage carrying the excess — the difference
	// between "rank 3 is slow" and "rank 3's arrivals sit in the
	// unexpected queue".
	var tails []float64
	for _, r := range ranks {
		if r.obs.LatencyValid {
			tails = append(tails, float64(r.obs.E2EP99Ns))
		}
	}
	if len(tails) >= 3 {
		med := median(tails)
		byStage := map[string][]float64{}
		for _, r := range ranks {
			if !r.obs.LatencyValid {
				continue
			}
			for _, sp := range r.obs.StageP99 {
				byStage[sp.Stage] = append(byStage[sp.Stage], float64(sp.P99Ns))
			}
		}
		stageMed := make(map[string]float64, len(byStage))
		for k, vs := range byStage {
			stageMed[k] = median(vs)
		}
		for _, r := range ranks {
			if !r.obs.LatencyValid {
				continue
			}
			skewed := float64(r.obs.E2EP99Ns) >= d.cfg.TailFactor*(med+1) &&
				r.obs.E2EP99Ns >= int64(d.cfg.TailMinP99)
			if !skewed {
				r.tr.tailStreak = 0
				r.tr.tailFired = false // episode over: re-arm
				continue
			}
			r.tr.tailStreak++
			if r.tr.tailFired || r.tr.tailStreak < d.cfg.TailWindows {
				continue
			}
			r.tr.tailFired = true
			detail := fmt.Sprintf("rank %d e2e p99 %v is %.0fx the cluster median %v over %d consecutive observations",
				r.obs.Rank, time.Duration(r.obs.E2EP99Ns), safeDiv(float64(r.obs.E2EP99Ns), med),
				time.Duration(int64(med)), d.cfg.TailWindows)
			if stage, p99 := dominantStage(r.obs.StageP99, stageMed); stage != "" {
				detail += fmt.Sprintf("; dominant stage %s (p99 %v)", stage, time.Duration(p99))
			}
			out = append(out, Verdict{
				Reason:  "latency-tail-skew",
				Rank:    r.obs.Rank,
				Detail:  detail,
				SinceNs: now,
			})
		}
	}

	// Retransmit storm, localized: per-rank re-injection count inside the
	// storm window.
	for _, r := range ranks {
		if now-r.tr.stormAnchorNs >= int64(d.cfg.StormWindow) {
			delta := r.obs.Retransmits - r.tr.stormAnchorRetrans
			anchor := r.tr.stormAnchorNs
			r.tr.stormAnchorNs, r.tr.stormAnchorRetrans = now, r.obs.Retransmits
			if delta >= d.cfg.StormRetransmits {
				out = append(out, Verdict{
					Reason: "retransmit-storm",
					Rank:   r.obs.Rank,
					Detail: fmt.Sprintf("rank %d re-injected %d packets in %v (threshold %d); its peers' acks are not arriving",
						r.obs.Rank, delta, time.Duration(now-anchor), d.cfg.StormRetransmits),
					SinceNs: anchor,
				})
			}
		}
	}

	return out
}

// dominantStage names the stage whose p99 most exceeds the cluster's
// per-stage median — the stage carrying a skewed rank's excess latency.
// Ratio against median+1 so a stage every other rank reports as ~0 (e.g. an
// unexpected-queue dwell only the sick rank has) still dominates. Ties
// break to the lexically first stage name for determinism.
func dominantStage(stages []flight.StageP99, med map[string]float64) (string, int64) {
	best, bestRatio, bestP99 := "", 0.0, int64(0)
	for _, sp := range stages {
		ratio := float64(sp.P99Ns) / (med[sp.Stage] + 1)
		if ratio > bestRatio || (ratio == bestRatio && best != "" && sp.Stage < best) {
			best, bestRatio, bestP99 = sp.Stage, ratio, sp.P99Ns
		}
	}
	return best, bestP99
}

func orUnknown(s string) string {
	if s == "" {
		return "no reason reported"
	}
	return s
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// median returns the middle value (lower middle for even counts) of vs,
// which it sorts in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	return vs[(len(vs)-1)/2]
}
