package cluster

import (
	"testing"
	"time"
)

const stepNs = int64(250 * time.Millisecond)

// feed runs the detector over rounds of observations spaced stepNs apart
// and returns every verdict in firing order.
func feed(d *Detector, rounds [][]Obs) []Verdict {
	var out []Verdict
	for i, obs := range rounds {
		out = append(out, d.Observe(Sample{NowNs: int64(i+1) * stepNs, Obs: obs})...)
	}
	return out
}

// movingObs is a healthy rank: counters advance every round, nothing queued.
func movingObs(rank, round int) Obs {
	return Obs{Rank: rank, Ready: true, Sent: int64(100 * round), Received: int64(100 * round)}
}

func reasons(vs []Verdict) map[string][]int {
	m := map[string][]int{}
	for _, v := range vs {
		m[v.Reason] = append(m[v.Reason], v.Rank)
	}
	return m
}

func TestStragglerNamesFrozenRankOnly(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 8; round++ { // 2s of observations
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			// Rank 2: counters frozen after priming, receives posted and
			// unacked sends outstanding — a stuck receiver.
			{Rank: 2, Ready: true, Sent: 50, Received: 50, Posted: 4, Unacked: 2},
		})
	}
	got := reasons(feed(d, rounds))
	if ranks := got["rank-straggler"]; len(ranks) == 0 {
		t.Fatal("no rank-straggler verdict for a frozen rank with outstanding work")
	} else {
		for _, r := range ranks {
			if r != 2 {
				t.Fatalf("straggler verdict named rank %d, want 2 (all: %v)", r, ranks)
			}
		}
	}
}

func TestGlobalStallIsNotAStraggler(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	frozen := []Obs{
		{Rank: 0, Ready: true, Sent: 10, Received: 10, Posted: 1},
		{Rank: 1, Ready: true, Sent: 10, Received: 10, Posted: 1},
	}
	var rounds [][]Obs
	for i := 0; i < 12; i++ {
		rounds = append(rounds, frozen)
	}
	if vs := feed(d, rounds); len(vs) != 0 {
		// A whole-job deadlock belongs to the per-rank watchdog, not the
		// cross-rank imbalance detector.
		t.Fatalf("global stall produced cluster verdicts: %+v", vs)
	}
}

func TestFinishedRankIsNotAStraggler(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 12; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			// Rank 2 finished: frozen counters but fully drained queues.
			{Rank: 2, Ready: true, Sent: 500, Received: 500},
		})
	}
	if vs := feed(d, rounds); len(vs) != 0 {
		t.Fatalf("drained rank flagged: %+v", vs)
	}
}

// TestBarrierWaitIsNotAStraggler: a rank that finished its workload and
// blocks in the end barrier freezes holding an ambient collective receive
// or two while slower peers keep moving. That is waiting, not straggling —
// the MinOutstanding floor keeps it quiet.
func TestBarrierWaitIsNotAStraggler(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 12; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			{Rank: 2, Ready: true, Sent: 500, Received: 500, Posted: 1, Unexpected: 1},
		})
	}
	if vs := feed(d, rounds); len(vs) != 0 {
		t.Fatalf("barrier-blocked rank flagged: %+v", vs)
	}
}

func TestStragglerRearmsNotFloods(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 16; round++ { // 4s: two full stall windows
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			{Rank: 2, Ready: true, Sent: 50, Received: 50, Posted: 4},
		})
	}
	vs := feed(d, rounds)
	n := len(reasons(vs)["rank-straggler"])
	if n < 2 || n > 5 {
		// One verdict per elapsed stall window (1s), not one per poll (250ms).
		t.Fatalf("straggler fired %d times over 4s with a 1s window: %+v", n, vs)
	}
}

func TestRateSkew(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 10; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			movingObs(2, round),
			// Rank 3 crawls at 1% of the others' rate with work queued — slow,
			// not stopped, so the straggler rule stays quiet.
			{Rank: 3, Ready: true, Sent: int64(round), Received: int64(round), Posted: 6},
		})
	}
	got := reasons(feed(d, rounds))
	if ranks := got["rate-skew"]; len(ranks) == 0 {
		t.Fatal("no rate-skew verdict for a rank at 1 percent of the median")
	} else {
		for _, r := range ranks {
			if r != 3 {
				t.Fatalf("rate-skew named rank %d, want 3", r)
			}
		}
	}
	if len(got["rank-straggler"]) != 0 {
		t.Fatalf("crawling rank misfiled as full straggler: %v", got)
	}
}

// TestRateSkewIgnoresOneBadWindow: a single window below the fraction —
// scheduler noise on an oversubscribed host — must not fire; only
// SkewWindows consecutive qualifying windows do.
func TestRateSkewIgnoresOneBadWindow(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	slow := func(round int) Obs { // freezes at 600: ~0 msg/s for this window
		return Obs{Rank: 3, Ready: true, Sent: 600, Received: 600, Posted: 6}
	}
	fast := func(round int) Obs {
		return Obs{Rank: 3, Ready: true, Sent: int64(100 * round), Received: int64(100 * round), Posted: 6}
	}
	var rounds [][]Obs
	for round := 1; round <= 16; round++ {
		o := fast(round) // healthy except one bad window (rounds 6-9)
		if round >= 6 && round <= 9 {
			o = slow(round)
		}
		rounds = append(rounds, []Obs{movingObs(0, round), movingObs(1, round), movingObs(2, round), o})
	}
	if got := reasons(feed(d, rounds)); len(got["rate-skew"]) != 0 {
		t.Fatalf("rate-skew fired on a single bad window: %v", got)
	}
}

func TestRateSkewNeedsThreeRanks(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 10; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			{Rank: 1, Ready: true, Sent: int64(round), Received: int64(round), Posted: 6},
		})
	}
	if got := reasons(feed(d, rounds)); len(got["rate-skew"]) != 0 {
		t.Fatalf("rate-skew fired with only 2 ranks: %v", got)
	}
}

func TestUnexpectedDivergenceLatches(t *testing.T) {
	// One observation step of receive stagnation is enough here; the rank
	// keeps sending (so the straggler rule stays silent) while its received
	// counter freezes under a deep unexpected queue.
	d := NewDetector(DetectorConfig{DivergeAfter: time.Duration(stepNs)})
	diverged := func(round int) []Obs {
		return []Obs{
			movingObs(0, round),
			movingObs(1, round),
			{Rank: 2, Ready: true, Sent: int64(100 * round), Received: 100, Unexpected: 300},
		}
	}
	healthy := func(round int) []Obs {
		return []Obs{movingObs(0, round), movingObs(1, round), movingObs(2, round)}
	}
	var rounds [][]Obs
	for round := 1; round <= 6; round++ {
		rounds = append(rounds, diverged(round))
	}
	rounds = append(rounds, healthy(7), healthy(8)) // episode clears
	rounds = append(rounds, diverged(9), diverged(10))
	got := reasons(feed(d, rounds))
	if ranks := got["unexpected-divergence"]; len(ranks) != 2 {
		t.Fatalf("divergence fired %d times, want once per episode (2): %v", len(ranks), got)
	} else if ranks[0] != 2 || ranks[1] != 2 {
		t.Fatalf("divergence named wrong ranks: %v", ranks)
	}
}

// TestDivergenceSparesDrainingReceivers: pairwise workloads legitimately
// hold deep unexpected queues on every receiver (senders complete locally
// and run far ahead). As long as the receiver keeps draining — its
// received counter advances — no depth may fire divergence.
func TestDivergenceSparesDrainingReceivers(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 12; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round), // sender: no queue
			movingObs(2, round), // sender: no queue
			// Receivers: thousands deep but receiving the whole time.
			{Rank: 1, Ready: true, Received: int64(100 * round), Unexpected: 3000 + 100*round},
			{Rank: 3, Ready: true, Received: int64(80 * round), Unexpected: 6000 + 200*round},
		})
	}
	got := reasons(feed(d, rounds))
	if ranks := got["unexpected-divergence"]; len(ranks) != 0 {
		t.Fatalf("divergence fired on draining receivers: %v", got)
	}
}

func TestRetransmitStormLocalized(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 8; round++ {
		o := movingObs(1, round)
		o.Retransmits = int64(50 * round) // 200/s: well past the 100/window threshold
		rounds = append(rounds, []Obs{movingObs(0, round), o, movingObs(2, round)})
	}
	got := reasons(feed(d, rounds))
	if ranks := got["retransmit-storm"]; len(ranks) == 0 {
		t.Fatal("no retransmit-storm verdict")
	} else {
		for _, r := range ranks {
			if r != 1 {
				t.Fatalf("storm named rank %d, want 1", r)
			}
		}
	}
}

func TestReadinessStragglerFiresOnce(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 12; round++ { // 3s, threshold 2s
		rounds = append(rounds, []Obs{
			{Rank: 0, Ready: true},
			{Rank: 1, Ready: false, ReadyReason: "world not constructed"},
		})
	}
	got := reasons(feed(d, rounds))
	if ranks := got["readiness-straggler"]; len(ranks) != 1 || ranks[0] != 1 {
		t.Fatalf("readiness-straggler = %v, want exactly [1]", ranks)
	}
}

func TestErroredRankExcluded(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var rounds [][]Obs
	for round := 1; round <= 10; round++ {
		rounds = append(rounds, []Obs{
			movingObs(0, round),
			movingObs(1, round),
			// Scrape failures leave stale zeros — must not read as a stall.
			{Rank: 2, Err: "connection refused", Posted: 5},
		})
	}
	if vs := feed(d, rounds); len(vs) != 0 {
		t.Fatalf("errored rank produced verdicts from stale state: %+v", vs)
	}
}

func TestRateAccessor(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	if _, ok := d.Rate(0); ok {
		t.Fatal("rate valid before any observation")
	}
	for round := 1; round <= 6; round++ {
		d.Observe(Sample{NowNs: int64(round) * stepNs, Obs: []Obs{movingObs(0, round)}})
	}
	r, ok := d.Rate(0)
	if !ok {
		t.Fatal("rate still invalid after 1.5s of 250ms samples")
	}
	// 200 msgs per 250ms step = 800 msg/s.
	if r < 700 || r > 900 {
		t.Fatalf("rate = %v, want ~800", r)
	}
}
