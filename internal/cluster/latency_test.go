package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
)

// latObs builds one latency-reporting rank observation with steady
// counters and a posted receive so the other rules stay quiet.
func latObs(rank int, sent int64, e2eP99 int64, stages ...flight.StageP99) Obs {
	return Obs{
		Rank: rank, Ready: true,
		Sent: sent, Received: sent,
		Posted:       1,
		LatencyValid: true,
		E2EP99Ns:     e2eP99,
		StageP99:     stages,
	}
}

// tailClusterSample: ranks 0-2 healthy at ~500µs e2e p99, rank 3 at 20ms
// with the excess in deliver_wait.
func tailClusterSample(nowNs int64, moving int64) Sample {
	healthyStages := []flight.StageP99{
		{Stage: "transit", P99Ns: 100_000},
		{Stage: "deliver_wait", P99Ns: 200_000},
		{Stage: "match_posted", P99Ns: 150_000},
	}
	sickStages := []flight.StageP99{
		{Stage: "transit", P99Ns: 100_000},
		{Stage: "deliver_wait", P99Ns: 19_500_000},
		{Stage: "match_posted", P99Ns: 150_000},
	}
	return Sample{NowNs: nowNs, Obs: []Obs{
		latObs(0, moving, 500_000, healthyStages...),
		latObs(1, moving, 520_000, healthyStages...),
		latObs(2, moving, 480_000, healthyStages...),
		latObs(3, moving, 20_000_000, sickStages...),
	}}
}

// TestDetectorLatencyTailSkew: a sustained 40x tail on one rank fires
// exactly one latency-tail-skew verdict naming that rank and its dominant
// stage, after the configured number of consecutive observations.
func TestDetectorLatencyTailSkew(t *testing.T) {
	det := NewDetector(DetectorConfig{})
	ms := int64(time.Millisecond)
	var fired []Verdict
	for i := int64(1); i <= 5; i++ {
		vs := det.Observe(tailClusterSample(i*100*ms, i*1000))
		for _, v := range vs {
			if v.Reason != "latency-tail-skew" {
				t.Fatalf("unexpected verdict: %+v", v)
			}
		}
		fired = append(fired, vs...)
		if i < 3 && len(fired) > 0 {
			t.Fatalf("tail-skew fired after %d observations, want %d: %+v",
				i, 3, fired)
		}
	}
	if len(fired) != 1 {
		t.Fatalf("tail-skew verdicts = %d, want exactly 1 (episode latch): %+v", len(fired), fired)
	}
	v := fired[0]
	if v.Rank != 3 {
		t.Fatalf("verdict named rank %d, want 3: %+v", v.Rank, v)
	}
	if !strings.Contains(v.Detail, "deliver_wait") {
		t.Fatalf("verdict detail does not name the dominant stage: %q", v.Detail)
	}

	// Episode over: the tail returns to normal, then skews again — the
	// detector must re-arm and fire a second episode.
	for i := int64(6); i <= 8; i++ {
		s := tailClusterSample(i*100*ms, i*1000)
		s.Obs[3].E2EP99Ns = 500_000
		if vs := det.Observe(s); len(vs) != 0 {
			t.Fatalf("healthy tail produced verdicts: %+v", vs)
		}
	}
	var again []Verdict
	for i := int64(9); i <= 12; i++ {
		again = append(again, det.Observe(tailClusterSample(i*100*ms, i*1000))...)
	}
	if len(again) != 1 || again[0].Reason != "latency-tail-skew" || again[0].Rank != 3 {
		t.Fatalf("re-armed episode verdicts = %+v, want one more tail-skew on rank 3", again)
	}
}

// TestDetectorLatencyTailSkewNeedsThreeRanks: with only two
// latency-reporting ranks "the median" is half the straggler itself, so
// the rule must stay silent however skewed the pair looks.
func TestDetectorLatencyTailSkewNeedsThreeRanks(t *testing.T) {
	det := NewDetector(DetectorConfig{})
	ms := int64(time.Millisecond)
	for i := int64(1); i <= 6; i++ {
		s := Sample{NowNs: i * 100 * ms, Obs: []Obs{
			latObs(0, i*1000, 500_000),
			latObs(1, i*1000, 20_000_000),
		}}
		if vs := det.Observe(s); len(vs) != 0 {
			t.Fatalf("tail-skew fired with 2 valid ranks: %+v", vs)
		}
	}
}

// TestDetectorLatencyTailSkewFloor: a rank at many times a tiny median is
// measurement noise, not a tail — TailMinP99 suppresses it.
func TestDetectorLatencyTailSkewFloor(t *testing.T) {
	det := NewDetector(DetectorConfig{})
	ms := int64(time.Millisecond)
	for i := int64(1); i <= 6; i++ {
		s := Sample{NowNs: i * 100 * ms, Obs: []Obs{
			latObs(0, i*1000, 2_000),
			latObs(1, i*1000, 2_100),
			latObs(2, i*1000, 1_900),
			latObs(3, i*1000, 900_000), // 450x the median but under the 1ms floor
		}}
		if vs := det.Observe(s); len(vs) != 0 {
			t.Fatalf("tail-skew fired under the absolute floor: %+v", vs)
		}
	}
}

// TestDominantStage: ratio against the cluster median picks the stage the
// sick rank is an outlier in, even when another stage has a larger
// absolute p99 everywhere.
func TestDominantStage(t *testing.T) {
	med := map[string]float64{
		"wire_write":   1_000_000, // big everywhere
		"deliver_wait": 1_000,
	}
	stages := []flight.StageP99{
		{Stage: "wire_write", P99Ns: 1_200_000}, // 1.2x median
		{Stage: "deliver_wait", P99Ns: 500_000}, // 500x median
	}
	stage, p99 := dominantStage(stages, med)
	if stage != "deliver_wait" || p99 != 500_000 {
		t.Fatalf("dominantStage = %q/%d, want deliver_wait/500000", stage, p99)
	}
	if s, _ := dominantStage(nil, med); s != "" {
		t.Fatalf("dominantStage(nil) = %q, want empty", s)
	}
}
