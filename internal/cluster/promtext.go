// Package cluster is the fleet-level observability plane: it scrapes every
// rank's live HTTP endpoint, merges the per-rank expositions into one
// rank-labeled cluster view with an SPC rollup, and runs a cross-rank
// imbalance detector over the merged state — the cluster-scale sibling of
// the per-rank flight.Detector. The aggregator serves the merged view at
// /cluster/* (wired into cmd/mpirun) and produces the end-of-run cluster
// report consumed by cmd/mpitop and CI.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample: a metric name, its label set,
// and the value. Label values are unescaped (the parser reverses the text
// format's \\, \", and \n escapes).
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the named label's value ("" when absent).
func (s PromSample) Label(key string) string { return s.Labels[key] }

// PromFamily groups one metric family: its TYPE/HELP metadata and the
// samples that share the family name. Histogram families include their
// _bucket/_sum/_count series.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// baseFamily strips the histogram series suffixes so _bucket/_sum/_count
// samples group under their family name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParsePromText parses a Prometheus text-format (version 0.0.4) exposition
// into families, preserving family encounter order and per-family sample
// order. It accepts exactly what internal/telemetry emits (counters,
// gauges, histograms, info gauges) and tolerates the format's generality:
// samples with no preceding metadata get a bare family, comments other than
// HELP/TYPE are skipped, and timestamps after the value are rejected (the
// exporters never emit them).
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var out []PromFamily
	index := map[string]int{} // family name -> out index
	family := func(name string) *PromFamily {
		if i, ok := index[name]; ok {
			return &out[i]
		}
		index[name] = len(out)
		out = append(out, PromFamily{Name: name})
		return &out[len(out)-1]
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			// "# TYPE name type" / "# HELP name text..."
			if len(fields) >= 4 && fields[1] == "TYPE" {
				family(fields[2]).Type = strings.TrimSpace(fields[3])
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				family(fields[2]).Help = help
			}
			continue
		}
		smp, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("cluster: promtext line %d: %w", lineNo, err)
		}
		f := family(baseFamily(smp.Name))
		f.Samples = append(f.Samples, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: promtext: %w", err)
	}
	return out, nil
}

// parseSampleLine parses `name{k="v",...} value` (the label block optional).
func parseSampleLine(line string) (PromSample, error) {
	smp := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	} else {
		smp.Name = rest[:i]
		rest = rest[i:]
	}
	if smp.Name == "" {
		return smp, fmt.Errorf("empty metric name in %q", line)
	}
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return smp, fmt.Errorf("no value in %q", line)
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return smp, fmt.Errorf("unexpected trailing fields (timestamp?) in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q in %q", rest, line)
	}
	smp.Value = v
	return smp, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{', returning
// the labels and the remainder after the closing brace. Label values may
// contain any byte; the text format's escapes (\\ \" \n) are reversed.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		// End of block (also accepts a trailing comma before '}').
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block in %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q in %q", key, s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value for %q in %q", key, s)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					// Unknown escapes pass through verbatim, as Prometheus does.
					val.WriteByte('\\')
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}

// escapeLabelValue applies the text format's label escapes — the inverse of
// what parseLabels undoes, so render→parse→render is a fixed point.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// formatSample renders one sample line in the text format, label keys
// sorted except that "rank" leads and "le" trails — rank first keeps the
// merged exposition visually groupable, le last matches the exporter's
// bucket layout.
func formatSample(w io.Writer, s PromSample) {
	if len(s.Labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value))
		return
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "rank" && k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if _, ok := s.Labels["rank"]; ok {
		keys = append([]string{"rank"}, keys...)
	}
	if _, ok := s.Labels["le"]; ok {
		keys = append(keys, "le")
	}
	fmt.Fprintf(w, "%s{", s.Name)
	for i, k := range keys {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, `%s="%s"`, k, escapeLabelValue(s.Labels[k]))
	}
	fmt.Fprintf(w, "} %s\n", formatValue(s.Value))
}

// formatValue renders integers without an exponent or trailing zeros so
// counter roundtrips are byte-stable, and everything else in Go's shortest
// float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteFamilies renders families back into the text format: one HELP/TYPE
// header per family (when known) followed by its samples in order.
func WriteFamilies(w io.Writer, families []PromFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		}
		if f.Type != "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			formatSample(bw, s)
		}
	}
	return bw.Flush()
}

// FamilyByName finds a parsed family ("" type families included).
func FamilyByName(families []PromFamily, name string) (PromFamily, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return PromFamily{}, false
}

// HistogramQuantile estimates quantile q (0..1) in nanoseconds from a
// histogram family's _bucket samples for one rank, using the same
// upper-bound attribution the telemetry layer's own percentile accessors
// use (the value is the bucket's le edge, so estimates are conservative
// upper bounds). Returns 0 when the rank has no observations.
func HistogramQuantile(f PromFamily, rank string, q float64) int64 {
	type edge struct {
		le  float64
		cum float64
	}
	var edges []edge
	var total float64
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") || s.Label("rank") != rank {
			continue
		}
		le := s.Label("le")
		if le == "+Inf" {
			total = s.Value
			continue
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		edges = append(edges, edge{le: v, cum: s.Value})
	}
	if total == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	target := q * total
	for _, e := range edges {
		if e.cum >= target {
			return int64(e.le)
		}
	}
	// The quantile falls in the +Inf bucket: report the largest finite edge
	// (the histogram's resolution limit), or 0 when only +Inf exists.
	if len(edges) > 0 {
		return int64(edges[len(edges)-1].le)
	}
	return 0
}
