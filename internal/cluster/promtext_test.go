package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/spc"
	"repro/internal/telemetry"
)

// testProcStats builds a realistic exporter input: process counters with
// per-CRI and per-comm attribution plus a latency histogram.
func testProcStats(rank int) telemetry.ProcStats {
	proc := spc.NewSet()
	proc.SetEnabled(true)
	proc.Add(spc.MessagesSent, int64(100*(rank+1)))
	proc.Add(spc.MessagesReceived, int64(90*(rank+1)))
	proc.Add(spc.Retransmits, int64(rank))
	proc.Max(spc.UnexpectedQueuePeak, int64(7*(rank+1)))

	cri := spc.NewSet()
	cri.SetEnabled(true)
	cri.Add(spc.MessagesSent, 40)

	comm := spc.NewSet()
	comm.SetEnabled(true)
	comm.Add(spc.MessagesReceived, 25)

	h := telemetry.NewHistogram()
	for _, ns := range []int64{100, 1000, 1000, 50_000, 2_000_000} {
		h.ObserveNs(ns)
	}
	return telemetry.ProcStats{
		Rank:    rank,
		Process: proc.Snapshot(),
		PerCRI:  []telemetry.CRIStat{{Index: 0, Counters: cri.Snapshot()}},
		PerComm: []telemetry.CommStat{{ID: 1, Counters: comm.Snapshot()}},
		Hists:   []telemetry.NamedHist{{Name: telemetry.HistMsgLatency, Hist: h.Snapshot()}},
	}
}

// TestRoundtripRealExporter parses the real exporter's output, renders it
// back, and re-parses: the two parses must agree exactly, and the SPC
// snapshot recovered from the parse must match what went in.
func TestRoundtripRealExporter(t *testing.T) {
	var buf bytes.Buffer
	stats := testProcStats(3)
	if err := telemetry.WritePrometheus(&buf, stats); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse real exporter output: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("no families parsed")
	}

	var rendered bytes.Buffer
	if err := WriteFamilies(&rendered, fams); err != nil {
		t.Fatal(err)
	}
	fams2, err := ParsePromText(bytes.NewReader(rendered.Bytes()))
	if err != nil {
		t.Fatalf("re-parse rendered output: %v", err)
	}
	if !reflect.DeepEqual(fams, fams2) {
		t.Fatalf("parse→render→parse not a fixed point:\nfirst:  %+v\nsecond: %+v", fams, fams2)
	}

	got := SPCFromFamilies(fams, "3")
	if !reflect.DeepEqual(got, stats.Process) {
		t.Fatalf("SPC roundtrip mismatch:\nwant %v\ngot  %v", stats.Process, got)
	}

	// Histogram invariants survive: +Inf == _count, and the p99 estimate
	// lands on a bucket edge at or above the true p99 observation.
	f, ok := FamilyByName(fams, "mpi_msg_latency_ns")
	if !ok {
		t.Fatal("histogram family missing")
	}
	if f.Type != "histogram" {
		t.Fatalf("histogram family type = %q", f.Type)
	}
	p99 := HistogramQuantile(f, "3", 0.99)
	if p99 < 2_000_000 {
		t.Fatalf("p99 = %d, want >= 2000000 (largest observation)", p99)
	}
}

// TestRoundtripLabelEscaping pushes hostile label values through the real
// info-gauge exporter and back: backslashes, quotes, newlines, commas,
// braces.
func TestRoundtripLabelEscaping(t *testing.T) {
	hostile := map[string]string{
		"design":  `odd "quoted" value`,
		"caps":    "line1\nline2",
		"path":    `C:\temp\x`,
		"cluster": `a,b={c}`,
		"rank":    "5",
	}
	var buf bytes.Buffer
	if err := telemetry.WritePrometheusInfo(&buf, "mpi_build_info", hostile); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\ninput: %s", err, buf.String())
	}
	f, ok := FamilyByName(fams, "mpi_build_info")
	if !ok || len(f.Samples) != 1 {
		t.Fatalf("build info family missing or wrong: %+v", fams)
	}
	if !reflect.DeepEqual(f.Samples[0].Labels, hostile) {
		t.Fatalf("label escape roundtrip:\nwant %q\ngot  %q", hostile, f.Samples[0].Labels)
	}

	// Render→parse is a fixed point for the hostile values too.
	var rendered bytes.Buffer
	if err := WriteFamilies(&rendered, fams); err != nil {
		t.Fatal(err)
	}
	fams2, err := ParsePromText(bytes.NewReader(rendered.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v\nrendered: %s", err, rendered.String())
	}
	if !reflect.DeepEqual(fams, fams2) {
		t.Fatalf("escaping not a fixed point:\nfirst:  %+v\nsecond: %+v", fams, fams2)
	}
}

func TestParseRejectsTimestamps(t *testing.T) {
	_, err := ParsePromText(strings.NewReader("mpi_x 1 1700000000\n"))
	if err == nil {
		t.Fatal("timestamped sample accepted; exporters never emit them")
	}
}

func TestParseBareAndCommentLines(t *testing.T) {
	in := "# just a comment\n\nmpi_plain 42\nmpi_neg{rank=\"1\"} -0.5\n"
	fams, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2: %+v", len(fams), fams)
	}
	if fams[0].Name != "mpi_plain" || fams[0].Samples[0].Value != 42 {
		t.Fatalf("bare sample mis-parsed: %+v", fams[0])
	}
	if fams[1].Samples[0].Value != -0.5 || fams[1].Samples[0].Label("rank") != "1" {
		t.Fatalf("labeled sample mis-parsed: %+v", fams[1])
	}
}

func TestEnforceRankLabel(t *testing.T) {
	fams := []PromFamily{{
		Name: "mpi_x",
		Samples: []PromSample{
			{Name: "mpi_x", Labels: map[string]string{"scope": "process"}},
			{Name: "mpi_x", Labels: map[string]string{"rank": "9"}},
			{Name: "mpi_x"},
		},
	}}
	out := enforceRankLabel(fams, 4)
	if got := out[0].Samples[0].Label("rank"); got != "4" {
		t.Fatalf("missing rank not stamped: %q", got)
	}
	if got := out[0].Samples[1].Label("rank"); got != "9" {
		t.Fatalf("existing rank overwritten: %q", got)
	}
	if got := out[0].Samples[2].Label("rank"); got != "4" {
		t.Fatalf("nil-label sample not stamped: %q", got)
	}
}

// TestMergeFamiliesNoCollision merges two ranks' expositions and checks
// every series stays attributable.
func TestMergeFamiliesNoCollision(t *testing.T) {
	mk := func(rank int) RankState {
		var buf bytes.Buffer
		if err := telemetry.WritePrometheus(&buf, testProcStats(rank)); err != nil {
			t.Fatal(err)
		}
		fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return RankState{Rank: rank, Families: enforceRankLabel(fams, rank)}
	}
	merged := MergeFamilies([]RankState{mk(0), mk(1)})
	f, ok := FamilyByName(merged, "mpi_spc_messages_sent")
	if !ok {
		t.Fatal("messages_sent family missing from merge")
	}
	seen := map[string]bool{}
	for _, s := range f.Samples {
		if s.Label("scope") == "process" {
			seen[s.Label("rank")] = true
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("merged family missing a rank's process series: %+v", f.Samples)
	}
}
