package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/spc"
)

// Endpoint names one rank's live observability endpoint.
type Endpoint struct {
	Rank int
	// URL is the base, e.g. "http://127.0.0.1:9090".
	URL string
}

// RankState is everything one scrape learned about one rank. A failed
// scrape carries Err and the zero value elsewhere; the aggregator then
// keeps serving the rank's last good state with the error noted.
type RankState struct {
	Rank int
	Err  string

	Ready       bool
	ReadyReason string

	// Families is the rank's parsed /metrics exposition with the rank-label
	// contract enforced: any sample missing a rank label gets this rank's.
	Families []PromFamily
	// SPC is the rank's process-scope counter snapshot recovered from the
	// exposition — the per-rank operand of the cluster rollup.
	SPC spc.Snapshot
	// Queues is the rank's /debug/queues introspection snapshot.
	Queues flight.QueueSnapshot
	// SPCText is the raw human-readable /spc body, re-served per rank at
	// /cluster/spc.
	SPCText string
	// UptimeSeconds is the rank's mpi_uptime_seconds gauge; a value lower
	// than the previous poll's means the rank restarted between polls.
	UptimeSeconds float64
}

// Obs condenses the state into one detector observation.
func (rs RankState) Obs() Obs {
	o := Obs{
		Rank:        rs.Rank,
		Err:         rs.Err,
		Ready:       rs.Ready,
		ReadyReason: rs.ReadyReason,
		Sent:        rs.SPC.Get(spc.MessagesSent),
		Received:    rs.SPC.Get(spc.MessagesReceived),
		Retransmits: rs.SPC.Get(spc.Retransmits),
	}
	for _, cq := range rs.Queues.Comms {
		o.Posted += cq.Posted
		o.Unexpected += cq.Unexpected
		o.OOSBuffered += cq.OOSBuffered
	}
	for _, w := range rs.Queues.Windows {
		o.Unacked += w.Unacked
	}
	if e2e, stages := latencyFromFamilies(rs.Families, strconv.Itoa(rs.Rank)); e2e > 0 {
		o.LatencyValid = true
		o.E2EP99Ns = e2e
		o.StageP99 = stages
	}
	return o
}

// latencyFromFamilies recovers a rank's critical-path p99s from its parsed
// exposition: the e2e histogram's p99 (0 when the rank doesn't export the
// attribution layer or hasn't completed a traced message) and the per-stage
// p99s in stage order, zero-count stages skipped — the scrape-side inverse
// of latency.Recorder.StageP99s.
func latencyFromFamilies(fams []PromFamily, rank string) (int64, []flight.StageP99) {
	f, ok := FamilyByName(fams, "mpi_"+latency.HistE2E)
	if !ok {
		return 0, nil
	}
	e2e := HistogramQuantile(f, rank, 0.99)
	if e2e == 0 {
		return 0, nil
	}
	var stages []flight.StageP99
	for s := latency.Stage(0); s < latency.NumStages; s++ {
		sf, ok := FamilyByName(fams, "mpi_"+s.HistName())
		if !ok {
			continue
		}
		if p99 := HistogramQuantile(sf, rank, 0.99); p99 > 0 {
			stages = append(stages, flight.StageP99{Stage: s.String(), P99Ns: p99})
		}
	}
	return e2e, stages
}

// Scraper polls a fixed set of rank endpoints.
type Scraper struct {
	Endpoints []Endpoint
	// Client is the HTTP client used for every request; nil uses a client
	// with a 2s timeout (a scrape must never wedge the aggregation loop).
	Client *http.Client
}

func (s *Scraper) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Scrape polls every endpoint once, sequentially in rank order (N is small
// and determinism is worth more than scrape parallelism here).
func (s *Scraper) Scrape() []RankState {
	out := make([]RankState, 0, len(s.Endpoints))
	for _, ep := range s.Endpoints {
		out = append(out, s.scrapeOne(ep))
	}
	return out
}

func (s *Scraper) scrapeOne(ep Endpoint) RankState {
	rs := RankState{Rank: ep.Rank}
	c := s.client()

	body, _, err := fetch(c, ep.URL+"/metrics")
	if err != nil {
		rs.Err = fmt.Sprintf("/metrics: %v", err)
		return rs
	}
	fams, err := ParsePromText(strings.NewReader(body))
	if err != nil {
		rs.Err = err.Error()
		return rs
	}
	rs.Families = enforceRankLabel(fams, ep.Rank)
	rs.SPC = SPCFromFamilies(rs.Families, strconv.Itoa(ep.Rank))
	if f, ok := FamilyByName(rs.Families, "mpi_uptime_seconds"); ok && len(f.Samples) > 0 {
		rs.UptimeSeconds = f.Samples[0].Value
	}

	// Readiness: /readyz answers 200 ("ready") or 503 with a reason body.
	// A transport error here (after /metrics answered) is still a scrape
	// failure — half-scraped ranks would skew the detections.
	rbody, status, err := fetch(c, ep.URL+"/readyz")
	if err != nil && status == 0 {
		rs.Err = fmt.Sprintf("/readyz: %v", err)
		return rs
	}
	rs.Ready = status == http.StatusOK
	if !rs.Ready {
		rs.ReadyReason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rbody), "not ready:"))
	}

	qbody, _, err := fetch(c, ep.URL+"/debug/queues")
	if err != nil {
		rs.Err = fmt.Sprintf("/debug/queues: %v", err)
		return rs
	}
	var snaps []flight.QueueSnapshot
	if err := json.Unmarshal([]byte(qbody), &snaps); err != nil {
		rs.Err = fmt.Sprintf("/debug/queues: %v", err)
		return rs
	}
	// A process can host several local procs (thread-mode worlds); the
	// distributed deployments this plane targets serve exactly one. Merge
	// depths if several appear so the observation covers the process.
	for _, qs := range snaps {
		if len(snaps) == 1 || qs.Rank == ep.Rank {
			rs.Queues = qs
		}
	}
	if len(snaps) > 1 {
		rs.Queues = mergeQueueSnapshots(ep.Rank, snaps)
	}

	sbody, _, err := fetch(c, ep.URL+"/spc")
	if err != nil {
		rs.Err = fmt.Sprintf("/spc: %v", err)
		return rs
	}
	rs.SPCText = sbody
	return rs
}

// fetch GETs url and returns the body and status. err is non-nil for
// transport failures and non-2xx statuses other than 503 (which /readyz
// uses to carry the not-ready reason; callers check status).
func fetch(c *http.Client, url string) (body string, status int, err error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return string(b), resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return string(b), resp.StatusCode, nil
}

// enforceRankLabel stamps rank onto every sample that lacks one — the
// merge-safety contract. Samples that already carry a rank label keep it
// (a proxy re-exporting several ranks stays attributable).
func enforceRankLabel(fams []PromFamily, rank int) []PromFamily {
	r := strconv.Itoa(rank)
	for fi := range fams {
		for si := range fams[fi].Samples {
			smp := &fams[fi].Samples[si]
			if smp.Labels == nil {
				smp.Labels = map[string]string{}
			}
			if _, ok := smp.Labels["rank"]; !ok {
				smp.Labels["rank"] = r
			}
		}
	}
	return fams
}

// SPCFromFamilies recovers a rank's process-scope SPC snapshot from its
// parsed exposition — the inverse of telemetry.WritePrometheus for the
// scope="process" series, matched by counter name via spc.CounterByName so
// counters this binary doesn't know (a newer rank) are skipped rather than
// misfiled.
func SPCFromFamilies(fams []PromFamily, rank string) spc.Snapshot {
	var snap spc.Snapshot
	for _, f := range fams {
		name, ok := strings.CutPrefix(f.Name, "mpi_spc_")
		if !ok {
			continue
		}
		c, ok := spc.CounterByName(name)
		if !ok {
			continue
		}
		for _, smp := range f.Samples {
			if smp.Label("scope") == "process" && smp.Label("rank") == rank {
				snap[c] = int64(smp.Value)
			}
		}
	}
	return snap
}

// mergeQueueSnapshots folds several local procs' snapshots into one
// process-level view (comm depths concatenated, windows concatenated).
func mergeQueueSnapshots(rank int, snaps []flight.QueueSnapshot) flight.QueueSnapshot {
	out := flight.QueueSnapshot{Rank: rank}
	for _, qs := range snaps {
		if qs.CapturedNs > out.CapturedNs {
			out.CapturedNs = qs.CapturedNs
		}
		out.Comms = append(out.Comms, qs.Comms...)
		out.Windows = append(out.Windows, qs.Windows...)
		out.CRIs = append(out.CRIs, qs.CRIs...)
	}
	return out
}
