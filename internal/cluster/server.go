package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// AggregatorConfig configures the polling aggregator.
type AggregatorConfig struct {
	Endpoints []Endpoint
	// Poll is the scrape interval (default 250ms).
	Poll time.Duration
	// Detector tunes the cross-rank imbalance detector.
	Detector DetectorConfig
	// Client overrides the scrape HTTP client (tests).
	Client *http.Client
}

// Aggregator polls every rank endpoint on an interval, feeds each round
// through the cross-rank Detector, and serves the merged cluster view. It
// is the live twin of DetectSeries: same detector, wall-clock samples.
type Aggregator struct {
	cfg     AggregatorConfig
	scraper *Scraper
	start   time.Time

	mu       sync.Mutex
	det      *Detector
	state    ClusterState
	lastGood map[int]RankState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAggregator builds an aggregator; call Start to begin polling, or
// PollOnce for a single synchronous round (tests, final end-of-run poll).
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	return &Aggregator{
		cfg:      cfg,
		scraper:  &Scraper{Endpoints: cfg.Endpoints, Client: cfg.Client},
		start:    time.Now(),
		det:      NewDetector(cfg.Detector),
		lastGood: map[int]RankState{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background poll loop.
func (a *Aggregator) Start() {
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.PollOnce()
			}
		}
	}()
}

// Stop halts the poll loop and waits for the in-flight round to finish.
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

// PollOnce runs one scrape+detect round and folds it into the state. Safe
// to call concurrently with the poll loop and the HTTP handlers.
func (a *Aggregator) PollOnce() ClusterState {
	ranks := a.scraper.Scrape()
	now := time.Since(a.start).Nanoseconds()

	a.mu.Lock()
	defer a.mu.Unlock()
	// A failed scrape keeps serving the rank's last good state, error noted,
	// so one missed poll doesn't blank the rank's row.
	for i, rs := range ranks {
		if rs.Err == "" {
			good := rs
			a.lastGood[rs.Rank] = good
		} else if prev, ok := a.lastGood[rs.Rank]; ok {
			prev.Err = rs.Err
			ranks[i] = prev
		}
	}
	obs := make([]Obs, 0, len(ranks))
	for _, rs := range ranks {
		obs = append(obs, rs.Obs())
	}
	verdicts := a.det.Observe(Sample{NowNs: now, Obs: obs})

	a.state.CapturedNs = now
	a.state.Polls++
	a.state.Ranks = ranks
	a.state.Rollup = RollupSPC(ranks)
	a.state.Current = verdicts
	a.state.History = append(a.state.History, verdicts...)
	a.state.Rates = map[int]float64{}
	for _, rs := range ranks {
		if r, ok := a.det.Rate(rs.Rank); ok {
			a.state.Rates[rs.Rank] = r
		}
	}
	return a.snapshotLocked()
}

// State returns a copy of the latest aggregation round.
func (a *Aggregator) State() ClusterState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapshotLocked()
}

func (a *Aggregator) snapshotLocked() ClusterState {
	cs := a.state
	cs.Ranks = append([]RankState{}, a.state.Ranks...)
	cs.Current = append([]Verdict{}, a.state.Current...)
	cs.History = append([]Verdict{}, a.state.History...)
	cs.Rates = make(map[int]float64, len(a.state.Rates))
	for k, v := range a.state.Rates {
		cs.Rates[k] = v
	}
	return cs
}

// Handler returns the /cluster/* mux.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteClusterMetrics(w, a.State())
	})
	mux.HandleFunc("/cluster/spc", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteClusterSPC(w, a.State())
	})
	mux.HandleFunc("/cluster/health", func(w http.ResponseWriter, r *http.Request) {
		cs := a.State()
		type rankHealth struct {
			Rank        int    `json:"rank"`
			Ready       bool   `json:"ready"`
			ReadyReason string `json:"ready_reason,omitempty"`
			Err         string `json:"err,omitempty"`
		}
		healthy := cs.Polls > 0
		out := struct {
			Healthy bool         `json:"healthy"`
			Polls   int64        `json:"polls"`
			Ranks   []rankHealth `json:"ranks"`
		}{Polls: cs.Polls, Ranks: []rankHealth{}}
		for _, rs := range cs.Ranks {
			out.Ranks = append(out.Ranks, rankHealth{
				Rank: rs.Rank, Ready: rs.Ready, ReadyReason: rs.ReadyReason, Err: rs.Err})
			if rs.Err != "" || !rs.Ready {
				healthy = false
			}
		}
		out.Healthy = healthy
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/cluster/imbalance", func(w http.ResponseWriter, r *http.Request) {
		cs := a.State()
		out := struct {
			Clean    bool      `json:"clean"`
			Current  []Verdict `json:"current"`
			Verdicts []Verdict `json:"verdicts"`
		}{Clean: cs.Clean(), Current: cs.Current, Verdicts: cs.History}
		if out.Current == nil {
			out.Current = []Verdict{}
		}
		if out.Verdicts == nil {
			out.Verdicts = []Verdict{}
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, out)
	})
	mux.HandleFunc("/cluster/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, BuildReport(a.State()))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a live aggregator endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the aggregator's /cluster/* endpoints.
// ":0"-style addresses work; Addr reports the bound address.
func Serve(addr string, a *Aggregator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: a.Handler()}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:9090".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
