package cluster

import (
	"sort"

	"repro/internal/flight"
)

// obsFromFlightSample condenses one rank's watchdog-style sample into a
// cluster observation. Virtual ranks are always "ready": the simnet engine
// has no startup negotiation to straggle on.
func obsFromFlightSample(rank int, s flight.Sample) Obs {
	o := Obs{
		Rank:        rank,
		Ready:       true,
		Sent:        int64(s.Sent),
		Received:    int64(s.Received),
		Retransmits: int64(s.Retransmits),
		Unacked:     s.Unacked,
	}
	for _, cq := range s.Comms {
		o.Posted += cq.Posted
		o.Unexpected += cq.Unexpected
		o.OOSBuffered += cq.OOSBuffered
	}
	if s.LatencyValid {
		o.LatencyValid = true
		o.E2EP99Ns = s.E2EP99Ns
		o.StageP99 = append([]flight.StageP99{}, s.StageP99...)
	}
	return o
}

// MergeSeries aligns per-rank virtual-time sample series into synchronized
// cluster Samples: one Sample per distinct observation time, each rank
// contributing its latest state at or before that time (ranks whose series
// ended — their run finished — keep reporting their final, drained state,
// which the outstanding() predicate then excludes from straggler
// detections). Series from independent virtual runs compose freely because
// every run's clock starts at zero.
func MergeSeries(series []flight.RankSeries) []Sample {
	type cursor struct {
		rank int
		i    int
		s    []flight.Sample
	}
	var times []int64
	seen := map[int64]bool{}
	cursors := make([]*cursor, 0, len(series))
	for _, rs := range series {
		if len(rs.Samples) == 0 {
			continue
		}
		cursors = append(cursors, &cursor{rank: rs.Rank, s: rs.Samples})
		for _, smp := range rs.Samples {
			if !seen[smp.NowNs] {
				seen[smp.NowNs] = true
				times = append(times, smp.NowNs)
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]Sample, 0, len(times))
	for _, t := range times {
		cs := Sample{NowNs: t}
		for _, c := range cursors {
			for c.i+1 < len(c.s) && c.s[c.i+1].NowNs <= t {
				c.i++
			}
			if c.s[c.i].NowNs > t {
				continue // this rank has not been observed yet
			}
			cs.Obs = append(cs.Obs, obsFromFlightSample(c.rank, c.s[c.i]))
		}
		out = append(out, cs)
	}
	return out
}

// DetectSeries is the simnet twin of the live aggregator's polling loop:
// it merges per-rank virtual-time series (from one or several N-rank
// virtual runs) and replays them through the same Detector the aggregator
// uses, returning every verdict in firing order. Deterministic input in,
// byte-deterministic verdicts out.
func DetectSeries(cfg DetectorConfig, series []flight.RankSeries) []Verdict {
	det := NewDetector(cfg)
	var out []Verdict
	for _, s := range MergeSeries(series) {
		out = append(out, det.Observe(s)...)
	}
	return out
}
