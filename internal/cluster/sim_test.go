package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/flight"
)

func fsample(nowNs int64, sent, recv uint64, posted int) flight.Sample {
	return flight.Sample{
		NowNs: nowNs, CountersValid: true,
		Sent: sent, Received: recv,
		Comms: []flight.CommQueues{{Comm: 0, Posted: posted}},
	}
}

func TestMergeSeriesCarryForward(t *testing.T) {
	ms := int64(time.Millisecond)
	series := []flight.RankSeries{
		{Rank: 0, Samples: []flight.Sample{
			fsample(1*ms, 10, 10, 0),
			fsample(3*ms, 30, 30, 0),
		}},
		{Rank: 1, Samples: []flight.Sample{
			fsample(2*ms, 5, 5, 2),
		}},
	}
	merged := MergeSeries(series)
	if len(merged) != 3 {
		t.Fatalf("merged samples = %d, want 3 (distinct times): %+v", len(merged), merged)
	}
	// t=1ms: only rank 0 observed yet.
	if len(merged[0].Obs) != 1 || merged[0].Obs[0].Rank != 0 {
		t.Fatalf("t=1ms obs = %+v, want rank 0 only", merged[0].Obs)
	}
	// t=2ms: rank 0 carries forward its t=1ms state, rank 1 appears.
	if len(merged[1].Obs) != 2 {
		t.Fatalf("t=2ms obs = %+v, want both ranks", merged[1].Obs)
	}
	if merged[1].Obs[0].Sent != 10 || merged[1].Obs[1].Posted != 2 {
		t.Fatalf("t=2ms carry-forward wrong: %+v", merged[1].Obs)
	}
	// t=3ms: rank 0 advances, rank 1's series ended — final state persists.
	if merged[2].Obs[0].Sent != 30 || merged[2].Obs[1].Sent != 5 {
		t.Fatalf("t=3ms states wrong: %+v", merged[2].Obs)
	}
}

// stalledClusterSeries builds a 4-rank virtual cluster: ranks 0-2 make
// steady progress for 3 virtual seconds, rank 3 freezes at t=500ms with
// receives still posted.
func stalledClusterSeries() []flight.RankSeries {
	ms := int64(time.Millisecond)
	var series []flight.RankSeries
	for rank := 0; rank < 4; rank++ {
		var samples []flight.Sample
		for t := int64(100); t <= 3000; t += 100 {
			n := uint64(t)
			if rank == 3 && t > 500 {
				samples = append(samples, fsample(t*ms, 500, 500, 6))
				continue
			}
			samples = append(samples, fsample(t*ms, n, n, 1))
		}
		series = append(series, flight.RankSeries{Rank: rank, Samples: samples})
	}
	return series
}

// TestDetectSeriesNamesStalledRank is the deterministic twin of the live
// -stall smoke: the verdict must name exactly the frozen rank.
func TestDetectSeriesNamesStalledRank(t *testing.T) {
	verdicts := DetectSeries(DetectorConfig{}, stalledClusterSeries())
	if len(verdicts) == 0 {
		t.Fatal("no verdicts from a cluster with a frozen rank")
	}
	sawStraggler := false
	for _, v := range verdicts {
		if v.Rank != 3 {
			t.Fatalf("verdict named rank %d, want 3: %+v", v.Rank, v)
		}
		if v.Reason == "rank-straggler" {
			sawStraggler = true
		}
	}
	if !sawStraggler {
		t.Fatalf("no rank-straggler among verdicts: %+v", verdicts)
	}
}

// TestDetectSeriesDeterministic: same series in, byte-identical verdicts
// out — the property the simnet conformance gate relies on.
func TestDetectSeriesDeterministic(t *testing.T) {
	a := DetectSeries(DetectorConfig{}, stalledClusterSeries())
	b := DetectSeries(DetectorConfig{}, stalledClusterSeries())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("verdicts differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestDetectSeriesHealthyClusterClean(t *testing.T) {
	ms := int64(time.Millisecond)
	var series []flight.RankSeries
	for rank := 0; rank < 4; rank++ {
		var samples []flight.Sample
		for ts := int64(100); ts <= 3000; ts += 100 {
			samples = append(samples, fsample(ts*ms, uint64(ts), uint64(ts), 1))
		}
		series = append(series, flight.RankSeries{Rank: rank, Samples: samples})
	}
	if vs := DetectSeries(DetectorConfig{}, series); len(vs) != 0 {
		t.Fatalf("healthy cluster produced verdicts: %+v", vs)
	}
}
