package conformance

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport/tcpnet"
)

// harness is one two-rank world under test, abstracting over whether both
// ranks share an address space (sim) or live in separate worlds joined by a
// real wire (tcp loopback).
type harness struct {
	name  string
	procs [2]*core.Proc
	comms [2]*core.Comm // world-communicator handles, indexed by rank
	// newComm collectively creates a fresh communicator over both ranks and
	// returns the per-rank handles. Each backend preserves the collective
	// creation-order contract its topology requires.
	newComm func(info core.Info) ([2]*core.Comm, error)
	close   func()
}

func testOptions() core.Options {
	// Two instances, round-robin assignment, concurrent progress: the
	// configuration that exercises the CRI plumbing hardest. Telemetry is
	// on so the SPC roll-up invariant is checked with full per-CRI and
	// per-communicator attribution in play on every backend, and the
	// flight recorder flies through every case so its hooks are exercised
	// on both the simulated fabric and the real TCP message path.
	opts := core.CRIsConcurrent(2, cri.RoundRobin)
	opts.Telemetry = true
	opts.FlightCapacity = 1024
	return opts
}

// newSimHarness builds both ranks in one world over the simulated fabric.
func newSimHarness(t *testing.T) *harness {
	t.Helper()
	w, err := core.NewWorld(hw.Fast(), 2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		name:  "sim",
		procs: [2]*core.Proc{w.Proc(0), w.Proc(1)},
		comms: [2]*core.Comm{w.Proc(0).CommWorld(), w.Proc(1).CommWorld()},
		newComm: func(info core.Info) ([2]*core.Comm, error) {
			cs, err := w.NewCommWithInfo([]int{0, 1}, info)
			if err != nil {
				return [2]*core.Comm{}, err
			}
			return [2]*core.Comm{cs[0], cs[1]}, nil
		},
		close: w.Close,
	}
}

// newTCPHarness builds one distributed world per rank, joined over loopback
// TCP — the same code path as two OS processes, minus the fork.
func newTCPHarness(t *testing.T) *harness {
	t.Helper()
	nets, err := tcpnet.NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	var worlds [2]*core.World
	for r := 0; r < 2; r++ {
		w, err := core.NewDistributedWorld(hw.Fast(), r, 2, nets[r], testOptions())
		if err != nil {
			t.Fatalf("rank %d world: %v", r, err)
		}
		worlds[r] = w
	}
	return &harness{
		name:  "tcp",
		procs: [2]*core.Proc{worlds[0].LocalProc(), worlds[1].LocalProc()},
		comms: [2]*core.Comm{worlds[0].LocalProc().CommWorld(), worlds[1].LocalProc().CommWorld()},
		newComm: func(info core.Info) ([2]*core.Comm, error) {
			// Both worlds run the creation collectively in the same order, so
			// the deterministic id allocation agrees across processes.
			var out [2]*core.Comm
			for r := 0; r < 2; r++ {
				cs, err := worlds[r].NewCommWithInfo([]int{0, 1}, info)
				if err != nil {
					return out, err
				}
				out[r] = cs[r]
			}
			return out, nil
		},
		close: func() { worlds[0].Close(); worlds[1].Close() },
	}
}

// run2 drives rank 0 and rank 1 concurrently, each on its own thread, and
// fails the test on either side's error.
func run2(t *testing.T, h *harness, f func(rank int, th *core.Thread) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = f(r, h.procs[r].NewThread())
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func backends(t *testing.T) map[string]func(*testing.T) *harness {
	return map[string]func(*testing.T) *harness{
		"sim": newSimHarness,
		"tcp": newTCPHarness,
	}
}

// TestConformance runs the semantic table over every backend.
func TestConformance(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, h *harness)
	}{
		{"Eager", conformEager},
		{"Rendezvous", conformRendezvous},
		{"AnyTagOvertaking", conformAnyTagOvertaking},
		{"PersistentRequests", conformPersistent},
		{"WaitAny", conformWaitAny},
		{"SPCRollup", conformSPCRollup},
		{"FlightRecord", conformFlightRecord},
	}
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			h := mk(t)
			defer h.close()
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) { tc.run(t, h) })
			}
		})
	}
}

// conformEager: a burst of small messages arrives in FIFO order with intact
// payloads and statuses.
func conformEager(t *testing.T, h *harness) {
	const n = 32
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(th, 1, 7, []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 16)
		for i := 0; i < n; i++ {
			st, err := c.Recv(th, 0, 7, buf)
			if err != nil {
				return err
			}
			want := fmt.Sprintf("msg-%03d", i)
			if string(buf[:st.Count]) != want {
				return fmt.Errorf("message %d: got %q, want %q", i, buf[:st.Count], want)
			}
			if st.Source != 0 || st.Tag != 7 {
				return fmt.Errorf("message %d status: %+v", i, st)
			}
		}
		return nil
	})
}

// conformRendezvous: a payload above the eager limit travels through the
// RTS/ACK/FIN protocol — RDMA put on one-sided backends, data-in-FIN on
// two-sided ones — and lands intact.
func conformRendezvous(t *testing.T, h *harness) {
	big := make([]byte, 64<<10) // 64 KiB > the 8 KiB eager limit
	for i := range big {
		big[i] = byte(i * 31)
	}
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			return c.Send(th, 1, 9, big)
		}
		got := make([]byte, len(big))
		st, err := c.Recv(th, 0, 9, got)
		if err != nil {
			return err
		}
		if st.Count != len(big) || st.Truncated {
			return fmt.Errorf("status = %+v, want full %d bytes", st, len(big))
		}
		if !bytes.Equal(got, big) {
			return fmt.Errorf("rendezvous payload corrupted")
		}
		return nil
	})
}

// conformAnyTagOvertaking: with mpi_assert_allow_overtaking, ANY_TAG
// receives complete in whatever order messages arrive; every payload is
// delivered exactly once.
func conformAnyTagOvertaking(t *testing.T, h *harness) {
	comms, err := h.newComm(core.Info{AllowOvertaking: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	run2(t, h, func(rank int, th *core.Thread) error {
		c := comms[rank]
		if rank == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(th, 1, int32(100+i), []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		seen := make(map[int32]byte)
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			st, err := c.Recv(th, 0, core.AnyTag, buf)
			if err != nil {
				return err
			}
			if _, dup := seen[st.Tag]; dup {
				return fmt.Errorf("tag %d delivered twice", st.Tag)
			}
			seen[st.Tag] = buf[0]
		}
		for i := 0; i < n; i++ {
			tag := int32(100 + i)
			if got, ok := seen[tag]; !ok || got != byte(i) {
				return fmt.Errorf("tag %d: got payload %d (present=%v), want %d", tag, got, ok, i)
			}
		}
		return nil
	})
}

// conformPersistent: Start/Wait cycles of persistent requests deliver the
// buffer's current contents each incarnation.
func conformPersistent(t *testing.T, h *harness) {
	const rounds = 16
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			buf := make([]byte, 4)
			ps, err := c.SendInit(1, 21, buf)
			if err != nil {
				return err
			}
			for i := 0; i < rounds; i++ {
				buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i+1), byte(i+2), byte(i+3)
				if err := ps.Start(th); err != nil {
					return err
				}
				if err := ps.Wait(th); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 4)
		pr, err := c.RecvInit(0, 21, buf)
		if err != nil {
			return err
		}
		for i := 0; i < rounds; i++ {
			if err := pr.Start(th); err != nil {
				return err
			}
			st, err := pr.Wait(th)
			if err != nil {
				return err
			}
			if st.Count != 4 || buf[0] != byte(i) || buf[3] != byte(i+3) {
				return fmt.Errorf("round %d: count=%d buf=%v", i, st.Count, buf)
			}
		}
		return nil
	})
}

// conformWaitAny: WaitAny returns an index whose request is done; waiting
// out the rest completes every posted receive.
func conformWaitAny(t *testing.T, h *harness) {
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			// Send in reverse tag order so the matching order is not simply
			// the posting order.
			for _, tag := range []int32{33, 32, 31} {
				if err := c.Send(th, 1, tag, []byte{byte(tag)}); err != nil {
					return err
				}
			}
			return nil
		}
		bufs := [3][]byte{make([]byte, 1), make([]byte, 1), make([]byte, 1)}
		reqs := make([]*core.Request, 3)
		for i, tag := range []int32{31, 32, 33} {
			r, err := c.Irecv(th, 0, tag, bufs[i])
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		// Wait the set dry one completion at a time, mapping each live slot
		// back to its original index to validate status and payload.
		live := append([]*core.Request(nil), reqs...)
		origIdx := []int{0, 1, 2}
		for len(live) > 0 {
			idx, err := core.WaitAny(th, live...)
			if err != nil {
				return err
			}
			orig := origIdx[idx]
			wantTag := int32(31 + orig)
			if st := live[idx].Status(); st.Tag != wantTag || bufs[orig][0] != byte(wantTag) {
				return fmt.Errorf("request %d: status=%+v payload=%d", orig, st, bufs[orig][0])
			}
			live = append(live[:idx], live[idx+1:]...)
			origIdx = append(origIdx[:idx], origIdx[idx+1:]...)
		}
		return nil
	})
}

// conformSPCRollup: the two independent counter roll-up paths — the
// benchmark-facing SPCSnapshot and the observability-facing TelemetryStats
// attribution (residual + per-CRI + per-communicator) — must agree exactly
// at quiescence, with the attributed children accounting for the traffic
// just driven. Backends must not differ: the same invariant holds whether
// the counters were fed by the simulated fabric or the TCP wire.
func conformSPCRollup(t *testing.T, h *harness) {
	const n = 24
	before := h.procs[0].SPCSnapshot()[spc.MessagesSent]
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(th, 1, 91, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			if _, err := c.Recv(th, 0, 91, buf); err != nil {
				return err
			}
		}
		return nil
	})
	for rank, p := range h.procs {
		ps := p.TelemetryStats()
		merged := ps.MergeChildren()
		if ps.Process != merged {
			t.Errorf("rank %d: Process roll-up diverges from Merge(Residual, PerCRI..., PerComm...)", rank)
		}
		if snap := p.SPCSnapshot(); snap != merged {
			t.Errorf("rank %d: SPCSnapshot disagrees with attributed roll-up:\nsnapshot: %v\nattributed: %v",
				rank, snap, merged)
		}
		if len(ps.PerCRI) == 0 {
			t.Errorf("rank %d: no per-CRI attribution with telemetry on", rank)
		}
	}
	if sent := h.procs[0].SPCSnapshot()[spc.MessagesSent]; sent < before+n {
		t.Errorf("sender messages_sent=%d, want >= %d", sent, before+n)
	}
}

// conformFlightRecord: with the recorder flying, a round of traffic leaves
// both ranks with a coherent flight record — send posts on the sender,
// matching activity on the receiver, events in publication order — and a
// sane introspection snapshot, identically over the simulated fabric and
// the TCP wire.
func conformFlightRecord(t *testing.T, h *harness) {
	const n = 16
	run2(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(th, 1, 55, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			if _, err := c.Recv(th, 0, 55, buf); err != nil {
				return err
			}
		}
		return nil
	})
	for rank, p := range h.procs {
		rec := p.FlightRecord()
		if rec.Rank != rank {
			t.Errorf("record rank = %d, want %d", rec.Rank, rank)
		}
		if len(rec.Events) == 0 {
			t.Fatalf("rank %d: empty flight record with recorder on", rank)
		}
		kinds := make(map[flight.Kind]int)
		for i, e := range rec.Events {
			kinds[e.Kind]++
			if i > 0 && e.Seq <= rec.Events[i-1].Seq {
				t.Fatalf("rank %d: merged record out of publication order at %d", rank, i)
			}
		}
		if rank == 0 && kinds[flight.KindSendPost] < n {
			t.Errorf("sender record has %d send_post events, want >= %d", kinds[flight.KindSendPost], n)
		}
		if rank == 1 && kinds[flight.KindMatchHit]+kinds[flight.KindUnexpDeq] == 0 {
			t.Errorf("receiver record has no matching activity: %v", kinds)
		}
		qs := p.QueueSnapshot()
		if qs.Rank != rank || len(qs.Comms) == 0 || len(qs.CRIs) == 0 {
			t.Errorf("rank %d: snapshot incomplete: %+v", rank, qs)
		}
	}
}
