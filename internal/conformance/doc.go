// Package conformance holds the cross-backend transport conformance suite:
// one table of message-passing semantics (eager, rendezvous, ANY_TAG with
// overtaking, persistent requests, WaitAny) executed over every transport
// backend — the simulated fabric and real TCP — to pin down that the runtime
// behaves identically regardless of the wire underneath. The suite runs
// under -race in CI (go test -run Conformance -race ./internal/conformance).
package conformance
