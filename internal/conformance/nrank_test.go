package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport/tcpnet"
)

// nHarness is an N-rank world under test: all ranks in one address space
// over the simulated fabric, or one distributed world per rank joined by
// loopback TCP. Connections are established lazily on first send in both
// cases, so every case below also exercises the on-demand connect path.
type nHarness struct {
	name  string
	n     int
	procs []*core.Proc
	comms []*core.Comm // world communicators, indexed by rank
	close func()
}

func newSimNHarness(t *testing.T, n int) *nHarness {
	t.Helper()
	w, err := core.NewWorld(hw.Fast(), n, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := &nHarness{name: "sim", n: n, close: w.Close}
	for r := 0; r < n; r++ {
		h.procs = append(h.procs, w.Proc(r))
		h.comms = append(h.comms, w.Proc(r).CommWorld())
	}
	return h
}

func newTCPNHarness(t *testing.T, n int) *nHarness {
	t.Helper()
	nets, err := tcpnet.NewLoopback(n)
	if err != nil {
		t.Fatal(err)
	}
	h := &nHarness{name: "tcp", n: n}
	worlds := make([]*core.World, n)
	for r := 0; r < n; r++ {
		w, err := core.NewDistributedWorld(hw.Fast(), r, n, nets[r], testOptions())
		if err != nil {
			t.Fatalf("rank %d world: %v", r, err)
		}
		worlds[r] = w
		h.procs = append(h.procs, w.LocalProc())
		h.comms = append(h.comms, w.LocalProc().CommWorld())
	}
	h.close = func() {
		for _, w := range worlds {
			w.Close()
		}
	}
	return h
}

// runN drives every rank concurrently, each on its own thread, and fails
// the test on any rank's error.
func runN(t *testing.T, h *nHarness, f func(rank int, th *core.Thread) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, h.n)
	for r := 0; r < h.n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = f(r, h.procs[r].NewThread())
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestConformanceNRank runs the N-rank semantic table — collectives,
// wildcard matching, and the lazy-connect counters — over every backend at
// N in {2, 4, 8}.
func TestConformanceNRank(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, h *nHarness)
	}{
		{"Barrier", conformNBarrier},
		{"Bcast", conformNBcast},
		{"ReduceAllreduce", conformNReduce},
		{"GatherScatter", conformNGatherScatter},
		{"Allgather", conformNAllgather},
		{"Alltoall", conformNAlltoall},
		{"WildcardAnySource", conformNWildcard},
		// Last on purpose: it audits the connection counters the cases
		// above populated.
		{"LazyConnect", conformNLazyConnect},
	}
	backends := map[string]func(*testing.T, int) *nHarness{
		"sim": newSimNHarness,
		"tcp": newTCPNHarness,
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
					h := mk(t, n)
					defer h.close()
					for _, tc := range cases {
						t.Run(tc.name, func(t *testing.T) { tc.run(t, h) })
					}
				})
			}
		})
	}
}

// conformNBarrier: no rank leaves barrier k before every rank has entered
// it — observed through a shared counter that must read at least n*k at
// every exit.
func conformNBarrier(t *testing.T, h *nHarness) {
	const rounds = 3
	var entered int64
	runN(t, h, func(rank int, th *core.Thread) error {
		for k := 1; k <= rounds; k++ {
			atomic.AddInt64(&entered, 1)
			if err := h.comms[rank].Barrier(th); err != nil {
				return err
			}
			if got := atomic.LoadInt64(&entered); got < int64(h.n*k) {
				return fmt.Errorf("left barrier %d with only %d/%d ranks entered", k, got, h.n*k)
			}
		}
		return nil
	})
}

// conformNBcast: the root's payload reaches every rank, for a first-rank
// and a last-rank root (the binomial tree's two extreme shapes).
func conformNBcast(t *testing.T, h *nHarness) {
	for _, root := range []int{0, h.n - 1} {
		want := []byte(fmt.Sprintf("bcast-root-%d", root))
		runN(t, h, func(rank int, th *core.Thread) error {
			buf := make([]byte, len(want))
			if rank == root {
				copy(buf, want)
			}
			if err := h.comms[rank].Bcast(th, root, buf); err != nil {
				return err
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("root %d: got %q, want %q", root, buf, want)
			}
			return nil
		})
	}
}

// conformNReduce: summing each rank's contribution lands n(n+1)/2 on the
// root, and Allreduce lands it everywhere.
func conformNReduce(t *testing.T, h *nHarness) {
	want := int64(h.n * (h.n + 1) / 2)
	runN(t, h, func(rank int, th *core.Thread) error {
		in := binary.LittleEndian.AppendUint64(nil, uint64(rank+1))
		out := make([]byte, 8)
		if err := h.comms[rank].Reduce(th, 0, in, out, core.OpSumInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(out)); rank == 0 && got != want {
			return fmt.Errorf("reduce: got %d, want %d", got, want)
		}
		all := make([]byte, 8)
		if err := h.comms[rank].Allreduce(th, in, all, core.OpSumInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(all)); got != want {
			return fmt.Errorf("allreduce: got %d, want %d", got, want)
		}
		return nil
	})
}

// conformNGatherScatter: Gather assembles the rank-identity vector on the
// root; Scatter hands each rank back its own slot.
func conformNGatherScatter(t *testing.T, h *nHarness) {
	runN(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		var gathered []byte
		if rank == 0 {
			gathered = make([]byte, h.n)
		}
		if err := c.Gather(th, 0, []byte{byte(rank)}, gathered); err != nil {
			return err
		}
		if rank == 0 {
			for r := 0; r < h.n; r++ {
				if gathered[r] != byte(r) {
					return fmt.Errorf("gather slot %d = %d", r, gathered[r])
				}
			}
		}
		var scattered []byte
		if rank == 0 {
			scattered = make([]byte, h.n)
			for r := range scattered {
				scattered[r] = byte(100 + r)
			}
		}
		got := make([]byte, 1)
		if err := c.Scatter(th, 0, scattered, got); err != nil {
			return err
		}
		if got[0] != byte(100+rank) {
			return fmt.Errorf("scatter: got %d, want %d", got[0], 100+rank)
		}
		return nil
	})
}

// conformNAllgather: every rank ends with the full rank-identity vector.
func conformNAllgather(t *testing.T, h *nHarness) {
	runN(t, h, func(rank int, th *core.Thread) error {
		recv := make([]byte, h.n)
		if err := h.comms[rank].Allgather(th, []byte{byte(rank)}, recv); err != nil {
			return err
		}
		for r := 0; r < h.n; r++ {
			if recv[r] != byte(r) {
				return fmt.Errorf("slot %d = %d", r, recv[r])
			}
		}
		return nil
	})
}

// conformNAlltoall: the personalized exchange transposes the (rank, slot)
// matrix.
func conformNAlltoall(t *testing.T, h *nHarness) {
	runN(t, h, func(rank int, th *core.Thread) error {
		send := make([]byte, h.n)
		for j := range send {
			send[j] = byte(rank*16 + j)
		}
		recv := make([]byte, h.n)
		if err := h.comms[rank].Alltoall(th, send, recv); err != nil {
			return err
		}
		for j := range recv {
			if want := byte(j*16 + rank); recv[j] != want {
				return fmt.Errorf("slot %d = %d, want %d", j, recv[j], want)
			}
		}
		return nil
	})
}

// conformNWildcard: an MPI_ANY_SOURCE receive loop on rank 0 delivers every
// other rank's message exactly once, with statuses naming the true source.
func conformNWildcard(t *testing.T, h *nHarness) {
	runN(t, h, func(rank int, th *core.Thread) error {
		c := h.comms[rank]
		if rank != 0 {
			return c.Send(th, 0, 77, []byte{byte(rank)})
		}
		seen := make(map[int32]bool)
		for i := 0; i < h.n-1; i++ {
			buf := make([]byte, 1)
			st, err := c.Recv(th, int(core.AnySource), 77, buf)
			if err != nil {
				return err
			}
			if seen[st.Source] {
				return fmt.Errorf("source %d delivered twice", st.Source)
			}
			if int32(buf[0]) != st.Source {
				return fmt.Errorf("payload %d does not match source %d", buf[0], st.Source)
			}
			seen[st.Source] = true
		}
		for r := 1; r < h.n; r++ {
			if !seen[int32(r)] {
				return fmt.Errorf("no message from rank %d", r)
			}
		}
		return nil
	})
}

// conformNLazyConnect: after the traffic above, the connection counters
// obey the on-demand topology bounds — no rank opened more than n-1
// connections, later endpoints reused established ones, and on the real
// wire the surviving connections number at most one per peer pair (the
// Σopened − Σraces_lost invariant). The deterministic backends never lose
// a dial race.
func conformNLazyConnect(t *testing.T, h *nHarness) {
	var opened, reused, races int64
	for rank, p := range h.procs {
		snap := p.SPCSnapshot()
		o, u, l := snap[spc.ConnsOpened], snap[spc.ConnsReused], snap[spc.DialRacesLost]
		if o == 0 {
			t.Errorf("rank %d: no connections opened despite traffic", rank)
		}
		if o > int64(h.n-1) {
			t.Errorf("rank %d: opened %d connections, at most %d peers exist", rank, o, h.n-1)
		}
		if l > o {
			t.Errorf("rank %d: lost %d dial races but only opened %d connections", rank, l, o)
		}
		opened += o
		reused += u
		races += l
	}
	// On the real wire a peer pair shares one physical connection, so the
	// surviving total is bounded by the pair count. The simulated fabric
	// has no socket to share — each side notes its own establishment — so
	// its bound is one per directed edge.
	maxPairs := int64(h.n * (h.n - 1) / 2)
	if h.name == "sim" {
		maxPairs *= 2
	}
	if surviving := opened - races; surviving < int64(h.n-1) || surviving > maxPairs {
		t.Errorf("surviving connections = %d (opened %d - races %d), want within [%d, %d]",
			surviving, opened, races, h.n-1, maxPairs)
	}
	// Round-robin CRI assignment lands repeat sends on second instances,
	// whose endpoints must attach to the existing link, not a new one.
	if reused == 0 {
		t.Errorf("no endpoint reused an established connection across %d ranks", h.n)
	}
	if h.name == "sim" && races != 0 {
		t.Errorf("deterministic fabric lost %d dial races", races)
	}
}
