package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/progress"
	"repro/internal/spc"
)

// TestFreeCommLatePacketsCounted sends into a communicator the receiver has
// already freed: every packet arrives for an unknown communicator and must be
// counted (spc.LatePackets) and dropped, never panicked on.
func TestFreeCommLatePacketsCounted(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	comms, err := w.Proc(0).CommWorld().Dup()
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := comms[0], comms[1]
	d1.Free() // receiver gives up its handle before anything is sent

	t0 := w.Proc(0).NewThread()
	const n = 8
	var reqs []*Request
	for i := 0; i < n; i++ {
		r, err := d0.Isend(t0, 1, int32(i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	if err := WaitAll(t0, reqs...); err != nil {
		t.Fatal(err)
	}
	w.Proc(1).DrainProgress()
	if got := w.Proc(1).SPCs().Get(spc.LatePackets); got != n {
		t.Fatalf("LatePackets = %d, want %d", got, n)
	}
}

// TestFreeCommWhilePacketsInFlight frees the receive-side communicator while
// the sender is mid-burst and the receiver is actively progressing — the
// chaos scenario the old panic-on-unknown-communicator path could not
// survive. Run under -race.
func TestFreeCommWhilePacketsInFlight(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	comms, err := w.Proc(0).CommWorld().Dup()
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := comms[0], comms[1]

	const n = 200
	var senderDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		t0 := w.Proc(0).NewThread()
		var reqs []*Request
		for i := 0; i < n; i++ {
			r, err := d0.Isend(t0, 1, int32(i), []byte{byte(i)})
			if err != nil {
				t.Error(err)
				break
			}
			reqs = append(reqs, r)
		}
		if err := WaitAll(t0, reqs...); err != nil {
			t.Error(err)
		}
		senderDone.Store(true)
	}()
	go func() {
		defer wg.Done()
		// The receiver pumps events while the communicator disappears
		// beneath it.
		for !senderDone.Load() {
			w.Proc(1).DrainProgress()
		}
		w.Proc(1).DrainProgress()
	}()
	time.Sleep(100 * time.Microsecond)
	d1.Free()
	wg.Wait()
}

// TestFaultStressAllTrafficCompletes runs a multithreaded workload over a
// lossy, duplicating, reordering wire and requires every Isend and Irecv to
// complete successfully: the ack/retransmit layer must repair all loss, and
// the dedup layers must absorb all duplication. Payload sizes straddle the
// eager limit so both the eager and rendezvous protocols face faults. Run
// under -race.
func TestFaultStressAllTrafficCompletes(t *testing.T) {
	w := newTestWorld(t, 2, Options{
		NumInstances: 2, Progress: progress.Serial, ThreadLevel: ThreadMultiple,
		FaultDrop: 0.02, FaultDup: 0.02, FaultDelay: 0.05,
		FaultDelayDur: 50 * time.Microsecond, FaultSeed: 42,
	})
	const (
		groups = 2
		msgs   = 24
		big    = DefaultEagerLimit + 4096 // forces rendezvous
	)
	size := func(i int) int {
		if i%3 == 2 {
			return big
		}
		return 16
	}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			c := w.Proc(0).CommWorld()
			var reqs []*Request
			for i := 0; i < msgs; i++ {
				buf := make([]byte, size(i))
				buf[0] = byte(g)
				r, err := c.Isend(th, 1, int32(g*1000+i), buf)
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, r)
			}
			if err := WaitAll(th, reqs...); err != nil {
				t.Errorf("sender group %d: %v", g, err)
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			c := w.Proc(1).CommWorld()
			var reqs []*Request
			bufs := make([][]byte, msgs)
			for i := 0; i < msgs; i++ {
				bufs[i] = make([]byte, size(i))
				r, err := c.Irecv(th, 0, int32(g*1000+i), bufs[i])
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, r)
			}
			if err := WaitAll(th, reqs...); err != nil {
				t.Errorf("receiver group %d: %v", g, err)
				return
			}
			for i, b := range bufs {
				if b[0] != byte(g) {
					t.Errorf("group %d msg %d corrupted: first byte %d", g, i, b[0])
				}
			}
		}(g)
	}
	wg.Wait()

	// Faults were injected and repaired, not just absent.
	total := spc.Merge(w.Proc(0).SPCSnapshot(), w.Proc(1).SPCSnapshot())
	if total[spc.FaultPacketsDropped] == 0 {
		t.Error("stress run injected no drops; fault path untested")
	}
	if total[spc.Retransmits] == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
	if total[spc.AcksSent] == 0 || total[spc.AcksReceived] == 0 {
		t.Error("reliability layer exchanged no acks")
	}
}

// TestPeerUnreachable drives the retry budget to exhaustion on a wire that
// drops everything: the send must fail with ErrPeerUnreachable instead of
// hanging, on both the eager and rendezvous paths.
func TestPeerUnreachable(t *testing.T) {
	w := newTestWorld(t, 2, Options{
		NumInstances: 1, Progress: progress.Serial, ThreadLevel: ThreadMultiple,
		FaultDrop: 1, FaultSeed: 5,
		RetransmitTimeout: 200 * time.Microsecond, RetryBudget: 3,
	})
	t0 := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()

	for _, tc := range []struct {
		name string
		size int
	}{
		{"eager", 16},
		{"rendezvous", DefaultEagerLimit + 1},
	} {
		r, err := c.Isend(t0, 1, 7, make([]byte, tc.size))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(t0); !errors.Is(err, ErrPeerUnreachable) {
			t.Fatalf("%s Wait = %v, want ErrPeerUnreachable", tc.name, err)
		}
	}
	if got := w.Proc(0).SPCSnapshot()[spc.RetransmitFailures]; got < 2 {
		t.Fatalf("RetransmitFailures = %d, want >= 2", got)
	}
}

// TestReliableZeroFaultDelivery enables the ack/retransmit layer on a perfect
// wire: traffic must flow normally (sends complete on ack), with no spurious
// retransmissions.
func TestReliableZeroFaultDelivery(t *testing.T) {
	w := newTestWorld(t, 2, Options{
		NumInstances: 1, Progress: progress.Serial, ThreadLevel: ThreadMultiple,
		Reliable: true,
	})
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()

	const n = 32
	done := make(chan error, 1)
	go func() {
		var reqs []*Request
		for i := 0; i < n; i++ {
			r, err := c0.Isend(t0, 1, int32(i), []byte(fmt.Sprintf("m%d", i)))
			if err != nil {
				done <- err
				return
			}
			reqs = append(reqs, r)
		}
		done <- WaitAll(t0, reqs...)
	}()
	for i := 0; i < n; i++ {
		buf := make([]byte, 8)
		st, err := c1.Recv(t1, 0, int32(i), buf)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m%d", i); string(buf[:st.Count]) != want {
			t.Fatalf("msg %d = %q, want %q", i, buf[:st.Count], want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	total := spc.Merge(w.Proc(0).SPCSnapshot(), w.Proc(1).SPCSnapshot())
	if total[spc.AcksSent] == 0 {
		t.Error("reliable mode sent no acks")
	}
	if total[spc.RetransmitFailures] != 0 {
		t.Errorf("perfect wire produced %d retransmit failures", total[spc.RetransmitFailures])
	}
}
