package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/match"
)

// Collective operations, built on the runtime's own point-to-point layer
// (and therefore exercising the same CRI/progress/matching machinery the
// paper studies). As in MPI, all members of a communicator must call the
// same collectives in the same order; each rank calls with its own Thread.
//
// Internal tags: every collective call draws a per-communicator sequence
// number that all ranks advance in lockstep (guaranteed by the same-order
// rule), so concurrent traffic from earlier/later collectives can never
// cross-match.

const collTagBase int32 = -10000

// collTag derives the internal tag for step of collective call seq.
func collTag(seq uint32, step int) int32 {
	return collTagBase - int32(seq%100000)*16 - int32(step%16)
}

func (c *Comm) nextCollSeq() uint32 {
	return c.collSeq.Add(1)
}

// vrank maps a rank into the root-relative virtual ordering used by the
// binomial trees.
func vrank(rank, root, n int) int { return (rank - root + n) % n }

func unvrank(v, root, n int) int { return (v + root) % n }

// Bcast broadcasts buf from root to all members over a binomial tree
// (MPI_Bcast). Every rank passes a buffer of identical length; non-roots
// receive into it.
func (c *Comm) Bcast(th *Thread, root int, buf []byte) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	n := len(c.group)
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	tag := collTag(seq, 0)
	v := vrank(c.myRank, root, n)

	// Receive from parent (clear lowest set bit).
	if v != 0 {
		parent := unvrank(v&(v-1), root, n)
		st, err := c.recvInternalInto(th, parent, tag, buf)
		if err != nil {
			return fmt.Errorf("core: bcast recv: %w", err)
		}
		if st.Count != len(buf) {
			return fmt.Errorf("core: bcast length mismatch: got %d, want %d", st.Count, len(buf))
		}
	}
	// Send to children: set bits above the lowest set bit of v.
	lowest := v & (-v)
	if v == 0 {
		lowest = n // root: all bits
	}
	// Issue every child send before waiting on any: a serialized
	// send-then-wait loop would pipeline the subtrees one eager copy at a
	// time instead of fanning out.
	var reqs []*Request
	for bit := 1; bit < lowest && v+bit < n; bit <<= 1 {
		child := unvrank(v+bit, root, n)
		req, err := c.isendInternal(th, child, tag, buf)
		if err != nil {
			return fmt.Errorf("core: bcast send: %w", err)
		}
		reqs = append(reqs, req)
	}
	for _, req := range reqs {
		if err := req.Wait(th); err != nil {
			return err
		}
	}
	return nil
}

// ReduceOp combines src into dst element-wise; both have equal length.
type ReduceOp interface {
	Reduce(dst, src []byte)
}

// reduceFunc adapts a function to ReduceOp.
type reduceFunc func(dst, src []byte)

func (f reduceFunc) Reduce(dst, src []byte) { f(dst, src) }

// OpSumInt64 adds little-endian int64 lanes (MPI_SUM on MPI_INT64_T).
var OpSumInt64 ReduceOp = reduceFunc(func(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		v := int64(binary.LittleEndian.Uint64(dst[i:])) + int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], uint64(v))
	}
})

// OpMaxInt64 keeps the per-lane maximum (MPI_MAX on MPI_INT64_T).
var OpMaxInt64 ReduceOp = reduceFunc(func(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(dst[i:], uint64(b))
		}
	}
})

// OpMinInt64 keeps the per-lane minimum (MPI_MIN on MPI_INT64_T).
var OpMinInt64 ReduceOp = reduceFunc(func(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		if b < a {
			binary.LittleEndian.PutUint64(dst[i:], uint64(b))
		}
	}
})

// OpSumFloat64 adds IEEE-754 float64 lanes (MPI_SUM on MPI_DOUBLE).
var OpSumFloat64 ReduceOp = reduceFunc(func(dst, src []byte) {
	for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:])) +
			math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(v))
	}
})

// OpBor ORs bytes (MPI_BOR on MPI_BYTE).
var OpBor ReduceOp = reduceFunc(func(dst, src []byte) {
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] |= src[i]
	}
})

// Reduce combines every member's in buffer with op, leaving the result in
// root's out buffer (MPI_Reduce). in and out must have equal lengths on all
// ranks; out may be nil on non-roots.
func (c *Comm) Reduce(th *Thread, root int, in, out []byte, op ReduceOp) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	n := len(c.group)
	seq := c.nextCollSeq()
	tag := collTag(seq, 1)
	v := vrank(c.myRank, root, n)

	// Binomial reduction: each node accumulates children's partials, then
	// forwards to its parent.
	acc := append([]byte(nil), in...)
	tmp := make([]byte, len(in))
	for bit := 1; bit < n; bit <<= 1 {
		if v&bit != 0 {
			parent := unvrank(v&^bit, root, n)
			req, err := c.isendInternal(th, parent, tag, acc)
			if err != nil {
				return fmt.Errorf("core: reduce send: %w", err)
			}
			return req.Wait(th)
		}
		if v+bit < n {
			child := unvrank(v+bit, root, n)
			if _, err := c.recvInternalInto(th, child, tag, tmp); err != nil {
				return fmt.Errorf("core: reduce recv: %w", err)
			}
			op.Reduce(acc, tmp)
		}
	}
	if c.myRank != root {
		return fmt.Errorf("core: reduce internal error: non-root terminated as root")
	}
	if out == nil {
		return fmt.Errorf("core: reduce root needs an output buffer")
	}
	copy(out, acc)
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast (MPI_Allreduce). in and
// out must be equal-length on every rank.
func (c *Comm) Allreduce(th *Thread, in, out []byte, op ReduceOp) error {
	if len(out) != len(in) {
		return fmt.Errorf("core: allreduce buffer lengths differ (%d vs %d)", len(in), len(out))
	}
	if c.myRank == 0 {
		if err := c.Reduce(th, 0, in, out, op); err != nil {
			return err
		}
	} else {
		if err := c.Reduce(th, 0, in, nil, op); err != nil {
			return err
		}
	}
	return c.Bcast(th, 0, out)
}

// Gather collects each member's send buffer into root's recv buffer,
// ordered by rank (MPI_Gather). recv must be len(send)*Size() bytes at the
// root; nil elsewhere.
func (c *Comm) Gather(th *Thread, root int, send, recv []byte) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	n := len(c.group)
	seq := c.nextCollSeq()
	tag := collTag(seq, 2)
	if c.myRank != root {
		req, err := c.isendInternal(th, root, tag, send)
		if err != nil {
			return err
		}
		return req.Wait(th)
	}
	chunk := len(send)
	if len(recv) < chunk*n {
		return fmt.Errorf("core: gather recv buffer %d < %d", len(recv), chunk*n)
	}
	copy(recv[root*chunk:], send)
	// Post all receives, then wait: ranks arrive in any order.
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.irecvInternal(th, r, tag, recv[r*chunk:(r+1)*chunk])
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return WaitAll(th, reqs...)
}

// Scatter distributes equal chunks of root's send buffer to every member's
// recv buffer (MPI_Scatter). send must be len(recv)*Size() at the root.
func (c *Comm) Scatter(th *Thread, root int, send, recv []byte) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	n := len(c.group)
	seq := c.nextCollSeq()
	tag := collTag(seq, 3)
	chunk := len(recv)
	if c.myRank == root {
		if len(send) < chunk*n {
			return fmt.Errorf("core: scatter send buffer %d < %d", len(send), chunk*n)
		}
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				copy(recv, send[r*chunk:(r+1)*chunk])
				continue
			}
			req, err := c.isendInternal(th, r, tag, send[r*chunk:(r+1)*chunk])
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return WaitAll(th, reqs...)
	}
	_, err := c.recvInternalInto(th, root, tag, recv)
	return err
}

// Allgather concatenates every member's send buffer into every member's
// recv buffer in rank order, using a ring (MPI_Allgather). recv must be
// len(send)*Size() bytes on every rank.
func (c *Comm) Allgather(th *Thread, send, recv []byte) error {
	n := len(c.group)
	chunk := len(send)
	if len(recv) < chunk*n {
		return fmt.Errorf("core: allgather recv buffer %d < %d", len(recv), chunk*n)
	}
	seq := c.nextCollSeq()
	copy(recv[c.myRank*chunk:], send)
	if n == 1 {
		return nil
	}
	right := (c.myRank + 1) % n
	left := (c.myRank - 1 + n) % n
	// Ring: at step s, forward the chunk originally owned by
	// (myRank - s + n) % n to the right neighbor.
	for s := 0; s < n-1; s++ {
		tag := collTag(seq, s)
		outOwner := (c.myRank - s + n) % n
		inOwner := (c.myRank - s - 1 + n) % n
		rreq, err := c.irecvInternal(th, left, tag, recv[inOwner*chunk:(inOwner+1)*chunk])
		if err != nil {
			return err
		}
		sreq, err := c.isendInternal(th, right, tag, recv[outOwner*chunk:(outOwner+1)*chunk])
		if err != nil {
			return err
		}
		if err := sreq.Wait(th); err != nil {
			return err
		}
		if err := rreq.Wait(th); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall sends chunk i of send to rank i and receives rank j's chunk j
// into slot j of recv (MPI_Alltoall). Both buffers are chunk*Size() bytes
// with chunk = len(send)/Size().
func (c *Comm) Alltoall(th *Thread, send, recv []byte) error {
	n := len(c.group)
	if len(send)%n != 0 || len(recv) != len(send) {
		return fmt.Errorf("core: alltoall buffers must be equal and divisible by %d", n)
	}
	chunk := len(send) / n
	seq := c.nextCollSeq()
	copy(recv[c.myRank*chunk:(c.myRank+1)*chunk], send[c.myRank*chunk:(c.myRank+1)*chunk])
	// Pairwise exchange: at step s talk to (rank+s) and (rank-s).
	for s := 1; s < n; s++ {
		tag := collTag(seq, s)
		to := (c.myRank + s) % n
		from := (c.myRank - s + n) % n
		rreq, err := c.irecvInternal(th, from, tag, recv[from*chunk:(from+1)*chunk])
		if err != nil {
			return err
		}
		sreq, err := c.isendInternal(th, to, tag, send[to*chunk:(to+1)*chunk])
		if err != nil {
			return err
		}
		if err := sreq.Wait(th); err != nil {
			return err
		}
		if err := rreq.Wait(th); err != nil {
			return err
		}
	}
	return nil
}

// recvInternalInto blocks for an internal-tag message into buf.
func (c *Comm) recvInternalInto(th *Thread, src int, tag int32, buf []byte) (Status, error) {
	req, err := c.irecvInternal(th, src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	err = req.Wait(th)
	return req.status, err
}

// irecvInternal posts an internal-tag receive into buf.
func (c *Comm) irecvInternal(th *Thread, src int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	req := &Request{proc: p, kind: reqRecv}
	req.mrecv = &match.Recv{Source: int32(src), Tag: tag, Buf: buf, Token: req}
	if !c.selfMatch && !c.matchMu.TryLock() {
		t0 := c.spcs.StartTimer()
		c.matchMu.Lock()
		c.engine.ChargeWait(sinceTimer(c.spcs, t0))
	}
	h0 := p.histMatch.Start()
	comp, ok := c.engine.PostRecv(req.mrecv)
	p.histMatch.ObserveSince(h0)
	if !c.selfMatch {
		c.matchMu.Unlock()
	}
	if ok {
		// Internal-tag messages are never traced, so attribution inputs are
		// moot; 0 disables the measurement path outright.
		c.completeRecv(comp, 0, true)
	}
	_ = th
	return req, nil
}
