package core

import "fmt"

// Scan computes the inclusive prefix reduction: rank r's out buffer holds
// op over the in buffers of ranks 0..r (MPI_Scan). Linear pipeline: each
// rank receives the prefix from rank-1, folds its contribution, forwards.
func (c *Comm) Scan(th *Thread, in, out []byte, op ReduceOp) error {
	if len(out) != len(in) {
		return fmt.Errorf("core: scan buffer lengths differ (%d vs %d)", len(in), len(out))
	}
	seq := c.nextCollSeq()
	tag := collTag(seq, 4)
	copy(out, in)
	if c.myRank > 0 {
		prev := make([]byte, len(in))
		if _, err := c.recvInternalInto(th, c.myRank-1, tag, prev); err != nil {
			return fmt.Errorf("core: scan recv: %w", err)
		}
		// out = prefix(0..r-1) combined with our contribution.
		copy(out, prev)
		op.Reduce(out, in)
	}
	if c.myRank < len(c.group)-1 {
		req, err := c.isendInternal(th, c.myRank+1, tag, out)
		if err != nil {
			return fmt.Errorf("core: scan send: %w", err)
		}
		return req.Wait(th)
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank r's out holds op
// over ranks 0..r-1; rank 0's out is left untouched (MPI_Exscan).
func (c *Comm) Exscan(th *Thread, in, out []byte, op ReduceOp) error {
	if len(out) != len(in) {
		return fmt.Errorf("core: exscan buffer lengths differ (%d vs %d)", len(in), len(out))
	}
	seq := c.nextCollSeq()
	tag := collTag(seq, 5)
	// The value forwarded to rank r+1 is the inclusive prefix through r.
	inclusive := append([]byte(nil), in...)
	if c.myRank > 0 {
		prev := make([]byte, len(in))
		if _, err := c.recvInternalInto(th, c.myRank-1, tag, prev); err != nil {
			return fmt.Errorf("core: exscan recv: %w", err)
		}
		copy(out, prev)
		copy(inclusive, prev)
		op.Reduce(inclusive, in)
	}
	if c.myRank < len(c.group)-1 {
		req, err := c.isendInternal(th, c.myRank+1, tag, inclusive)
		if err != nil {
			return fmt.Errorf("core: exscan send: %w", err)
		}
		return req.Wait(th)
	}
	return nil
}

// ReduceScatterBlock reduces equal-sized blocks across all ranks and
// scatters block r to rank r (MPI_Reduce_scatter_block). in is
// len(out)*Size() bytes on every rank; rank r receives the reduction of
// everyone's r-th block into out.
func (c *Comm) ReduceScatterBlock(th *Thread, in, out []byte, op ReduceOp) error {
	n := len(c.group)
	block := len(out)
	if len(in) != block*n {
		return fmt.Errorf("core: reduce_scatter_block: in %d bytes, want %d", len(in), block*n)
	}
	// Reduce the full vector at rank 0, then scatter. (Simple algorithm;
	// a production pairwise-exchange variant halves the traffic but has
	// identical semantics.)
	var full []byte
	if c.myRank == 0 {
		full = make([]byte, block*n)
	}
	if err := c.Reduce(th, 0, in, full, op); err != nil {
		return err
	}
	return c.Scatter(th, 0, full, out)
}
