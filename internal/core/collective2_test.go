package core

import (
	"fmt"
	"testing"
)

func TestScanInclusivePrefix(t *testing.T) {
	const n = 5
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		out := make([]byte, 8)
		outs[rank] = out
		return c.Scan(th, int64Bytes(int64(rank+1)), out, OpSumInt64)
	})
	for r := 0; r < n; r++ {
		want := int64((r + 1) * (r + 2) / 2) // 1+2+...+(r+1)
		if got := int64sOf(outs[r])[0]; got != want {
			t.Fatalf("rank %d scan = %d, want %d", r, got, want)
		}
	}
}

func TestExscanExclusivePrefix(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		out := int64Bytes(-999) // sentinel: rank 0's out must stay untouched
		outs[rank] = out
		return c.Exscan(th, int64Bytes(int64(rank+1)), out, OpSumInt64)
	})
	if got := int64sOf(outs[0])[0]; got != -999 {
		t.Fatalf("rank 0 exscan touched out: %d", got)
	}
	for r := 1; r < n; r++ {
		want := int64(r * (r + 1) / 2) // 1+2+...+r
		if got := int64sOf(outs[r])[0]; got != want {
			t.Fatalf("rank %d exscan = %d, want %d", r, got, want)
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	const n = 3
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		// Block b of rank r's contribution is (r+1)*(b+1).
		in := make([]byte, 0, 8*n)
		for b := 0; b < n; b++ {
			in = append(in, int64Bytes(int64((rank+1)*(b+1)))...)
		}
		out := make([]byte, 8)
		outs[rank] = out
		return c.ReduceScatterBlock(th, in, out, OpSumInt64)
	})
	// Rank b receives sum over r of (r+1)*(b+1) = 6*(b+1) for n=3.
	for b := 0; b < n; b++ {
		want := int64(6 * (b + 1))
		if got := int64sOf(outs[b])[0]; got != want {
			t.Fatalf("rank %d reduce_scatter = %d, want %d", b, got, want)
		}
	}
}

func TestReduceScatterBlockValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	if err := c.ReduceScatterBlock(th, make([]byte, 8), make([]byte, 8), OpSumInt64); err == nil {
		t.Fatal("wrong in length accepted")
	}
}

func TestScanSingleRank(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	th := w.Proc(0).NewThread()
	out := make([]byte, 8)
	if err := w.Proc(0).CommWorld().Scan(th, int64Bytes(7), out, OpSumInt64); err != nil {
		t.Fatal(err)
	}
	if int64sOf(out)[0] != 7 {
		t.Fatalf("single-rank scan = %d", int64sOf(out)[0])
	}
}

func TestScanChainsWithOtherCollectives(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n, Stock())
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		out := make([]byte, 8)
		if err := c.Scan(th, int64Bytes(1), out, OpSumInt64); err != nil {
			return err
		}
		if got := int64sOf(out)[0]; got != int64(rank+1) {
			return fmt.Errorf("rank %d scan = %d", rank, got)
		}
		all := make([]byte, 8)
		if err := c.Allreduce(th, out, all, OpMaxInt64); err != nil {
			return err
		}
		if got := int64sOf(all)[0]; got != n {
			return fmt.Errorf("rank %d max-of-scans = %d", rank, got)
		}
		return nil
	})
}
