package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// runCollective invokes fn once per rank on its own goroutine and thread,
// failing the test on any error.
func runCollective(t *testing.T, w *World, fn func(rank int, th *Thread, c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, w.Size())
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs <- fn(r, w.Proc(r).NewThread(), w.Proc(r).CommWorld())
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		for root := 0; root < n; root += max(1, n-1) {
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				w := newTestWorld(t, n, Stock())
				payload := []byte("broadcast-payload")
				bufs := make([][]byte, n)
				runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
					buf := make([]byte, len(payload))
					if rank == root {
						copy(buf, payload)
					}
					bufs[rank] = buf
					return c.Bcast(th, root, buf)
				})
				for r, buf := range bufs {
					if !bytes.Equal(buf, payload) {
						t.Fatalf("rank %d got %q", r, buf)
					}
				}
			})
		}
	}
}

func TestBcastRootValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	th := w.Proc(0).NewThread()
	if err := w.Proc(0).CommWorld().Bcast(th, 5, nil); err == nil {
		t.Fatal("Bcast with invalid root succeeded")
	}
}

func int64Bytes(vals ...int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func int64sOf(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func TestReduceSum(t *testing.T) {
	const n = 5
	w := newTestWorld(t, n, Stock())
	out := make([]byte, 16)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		in := int64Bytes(int64(rank+1), int64(10*(rank+1)))
		if rank == 2 {
			return c.Reduce(th, 2, in, out, OpSumInt64)
		}
		return c.Reduce(th, 2, in, nil, OpSumInt64)
	})
	got := int64sOf(out)
	if got[0] != 15 || got[1] != 150 { // 1+2+3+4+5, 10+20+..+50
		t.Fatalf("reduce sums = %v", got)
	}
}

func TestReduceMaxMin(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n, Stock())
	outMax := make([]byte, 8)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		in := int64Bytes(int64(rank * rank))
		if rank == 0 {
			return c.Reduce(th, 0, in, outMax, OpMaxInt64)
		}
		return c.Reduce(th, 0, in, nil, OpMaxInt64)
	})
	if got := int64sOf(outMax)[0]; got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	outMin := make([]byte, 8)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		in := int64Bytes(int64(rank + 3))
		if rank == 0 {
			return c.Reduce(th, 0, in, outMin, OpMinInt64)
		}
		return c.Reduce(th, 0, in, nil, OpMinInt64)
	})
	if got := int64sOf(outMin)[0]; got != 3 {
		t.Fatalf("min = %d, want 3", got)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 6
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		in := int64Bytes(1, int64(rank))
		out := make([]byte, len(in))
		outs[rank] = out
		return c.Allreduce(th, in, out, OpSumInt64)
	})
	for r, out := range outs {
		got := int64sOf(out)
		if got[0] != n || got[1] != n*(n-1)/2 {
			t.Fatalf("rank %d allreduce = %v", r, got)
		}
	}
}

func TestAllreduceFloatAndBor(t *testing.T) {
	const n = 3
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		in := make([]byte, 8)
		binary.LittleEndian.PutUint64(in, 1<<uint(rank)) // distinct bits
		out := make([]byte, 8)
		outs[rank] = out
		return c.Allreduce(th, in, out, OpBor)
	})
	for r, out := range outs {
		if v := binary.LittleEndian.Uint64(out); v != 0b111 {
			t.Fatalf("rank %d bor = %b", r, v)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n, Stock())
	var gathered []byte
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		send := []byte{byte(rank), byte(rank * 2)}
		if rank == 1 {
			gathered = make([]byte, 2*n)
			return c.Gather(th, 1, send, gathered)
		}
		return c.Gather(th, 1, send, nil)
	})
	for r := 0; r < n; r++ {
		if gathered[2*r] != byte(r) || gathered[2*r+1] != byte(2*r) {
			t.Fatalf("gathered = %v", gathered)
		}
	}
	// Scatter the gathered buffer back out from rank 1.
	recvs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		recv := make([]byte, 2)
		recvs[rank] = recv
		if rank == 1 {
			return c.Scatter(th, 1, gathered, recv)
		}
		return c.Scatter(th, 1, nil, recv)
	})
	for r := 0; r < n; r++ {
		if recvs[r][0] != byte(r) || recvs[r][1] != byte(2*r) {
			t.Fatalf("scatter rank %d = %v", r, recvs[r])
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			w := newTestWorld(t, n, Stock())
			outs := make([][]byte, n)
			runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
				send := []byte{byte(100 + rank)}
				recv := make([]byte, n)
				outs[rank] = recv
				return c.Allgather(th, send, recv)
			})
			for r := 0; r < n; r++ {
				for i := 0; i < n; i++ {
					if outs[r][i] != byte(100+i) {
						t.Fatalf("rank %d slot %d = %d", r, i, outs[r][i])
					}
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n, Stock())
	outs := make([][]byte, n)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		// Chunk for destination d carries (rank, d).
		send := make([]byte, 2*n)
		for d := 0; d < n; d++ {
			send[2*d], send[2*d+1] = byte(rank), byte(d)
		}
		recv := make([]byte, 2*n)
		outs[rank] = recv
		return c.Alltoall(th, send, recv)
	})
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			if outs[r][2*s] != byte(s) || outs[r][2*s+1] != byte(r) {
				t.Fatalf("rank %d slot %d = (%d,%d), want (%d,%d)",
					r, s, outs[r][2*s], outs[r][2*s+1], s, r)
			}
		}
	}
}

func TestAlltoallValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	if err := c.Alltoall(th, make([]byte, 3), make([]byte, 3)); err == nil {
		t.Fatal("indivisible alltoall buffer accepted")
	}
}

func TestSequentialCollectivesDoNotCross(t *testing.T) {
	// Back-to-back collectives of different kinds on one communicator:
	// tags derived from the collective sequence must keep them separate.
	const n = 3
	w := newTestWorld(t, n, Stock())
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		buf := []byte{byte(rank)}
		if rank == 0 {
			buf[0] = 42
		}
		if err := c.Bcast(th, 0, buf); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("rank %d bcast got %d", rank, buf[0])
		}
		out := make([]byte, 8)
		if err := c.Allreduce(th, int64Bytes(int64(rank)), out, OpSumInt64); err != nil {
			return err
		}
		if got := int64sOf(out)[0]; got != 3 {
			return fmt.Errorf("rank %d allreduce got %d", rank, got)
		}
		if err := c.Barrier(th); err != nil {
			return err
		}
		recv := make([]byte, n)
		return c.Allgather(th, []byte{byte(rank)}, recv)
	})
}

// TestQuickAllreduceAnyWorldSize: property test — allreduce sums correctly
// for any world size and any per-rank contributions.
func TestQuickAllreduceAnyWorldSize(t *testing.T) {
	prop := func(sizeSeed uint8, vals [8]int16) bool {
		n := 2 + int(sizeSeed%5)
		w, err := NewWorld(hwFast(), n, Stock())
		if err != nil {
			return false
		}
		defer w.Close()
		var want int64
		for r := 0; r < n; r++ {
			want += int64(vals[r%8])
		}
		outs := make([][]byte, n)
		var wg sync.WaitGroup
		okAll := true
		var mu sync.Mutex
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				th := w.Proc(r).NewThread()
				c := w.Proc(r).CommWorld()
				out := make([]byte, 8)
				outs[r] = out
				if err := c.Allreduce(th, int64Bytes(int64(vals[r%8])), out, OpSumInt64); err != nil {
					mu.Lock()
					okAll = false
					mu.Unlock()
				}
			}(r)
		}
		wg.Wait()
		if !okAll {
			return false
		}
		for r := 0; r < n; r++ {
			if int64sOf(outs[r])[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
