package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/match"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Wildcards re-exported for the public API.
const (
	// AnySource matches messages from any rank (MPI_ANY_SOURCE).
	AnySource = match.AnySource
	// AnyTag matches any tag (MPI_ANY_TAG).
	AnyTag = match.AnyTag
)

// Comm is one process's handle on a communicator. Matching state is
// per-communicator (OB1-style), which is what makes the paper's
// concurrent-matching experiment possible: distinct communicators match
// concurrently because each has its own engine and lock.
type Comm struct {
	proc   *Proc
	id     uint32
	group  []int // communicator rank -> world rank
	myRank int
	info   Info

	// matchMu serializes the matching engine — the paper's "remaining
	// serial section". Profiled per communicator so concurrent-matching
	// designs show their per-comm contention split. When selfMatch is set
	// the engine synchronizes internally (match.Sharded) and matchMu is
	// never taken: the serial section is gone, which is the point.
	matchMu   prof.Mutex
	selfMatch bool
	engine    match.Matcher
	seq       *match.SeqTracker

	// spcs is this communicator's attributed counter set — a child of the
	// process totals (see Proc.SPCSnapshot). The matching engine records
	// into it directly. Nil when counters are disabled.
	spcs *spc.Set

	// collSeq numbers collective calls; all ranks advance it in lockstep
	// because MPI requires collectives in identical order.
	collSeq atomic.Uint32

	eagerLimit int

	// scratch is storage for completion scratch buffers (see Proc).
}

// completionScratch recycles the slice Deliver appends into.
type completionScratch struct {
	buf []match.Completion
}

// traceID derives the deterministic message-lifecycle trace id for one
// eager send: origin rank (biased so rank 0 yields a non-zero id), the
// communicator id, and the per-destination sequence number. Both ends of a
// traced message compute the same id, which is what lets a merger stitch
// the cross-rank flow without any id-exchange protocol.
func traceID(rank int, commID uint32, seq uint32) uint64 {
	return uint64(rank+1)<<48 | uint64(commID&0xffff)<<32 | uint64(seq)
}

func newComm(p *Proc, id uint32, group []int, myRank int, info Info) *Comm {
	c := &Comm{
		proc:       p,
		id:         id,
		group:      group,
		myRank:     myRank,
		info:       info,
		eagerLimit: p.world.opts.EagerLimit,
	}
	if p.spcs != nil {
		c.spcs = spc.NewSet()
	}
	c.matchMu.Bind(p.prof.NewSite("match.comm", -1, id))
	var meter match.Meter = match.SpinMeter{}
	if n := p.world.opts.MatchShards; n > 0 {
		sh := match.NewSharded(id, len(group), n, p.dev.Machine().Scaled(), meter, c.spcs)
		sites := make([]*prof.Site, sh.NumShards())
		for i := range sites {
			sites[i] = p.prof.NewSite("match.shard", i, id)
		}
		sh.BindProfSites(sites, p.prof.NewSite("match.stripe", -1, id), p.prof.NewSite("match.wild", -1, id))
		c.engine = sh
	} else if p.world.opts.HashMatching {
		c.engine = match.NewHashEngine(id, len(group), p.dev.Machine().Scaled(), meter, c.spcs)
	} else {
		c.engine = match.NewEngine(id, len(group), p.dev.Machine().Scaled(), meter, c.spcs)
	}
	c.selfMatch = match.SelfLocking(c.engine)
	c.engine.SetAllowOvertaking(info.AllowOvertaking)
	// The comm's matching events share one ring because the matching lock
	// already serializes them; the ring id keys the merged record.
	c.engine.BindFlight(p.flight.NewRing(fmt.Sprintf("rank%d/comm%d", p.rank, id)))
	c.seq = match.NewSeqTracker(len(group))
	p.registerComm(c)
	return c
}

// ID returns the communicator's context id.
func (c *Comm) ID() uint32 { return c.id }

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.group[commRank] }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.proc }

// SPCs returns the communicator's attributed counter set (nil when
// counters are disabled). Runtime-internal layers (e.g. the one-sided
// stack) record communicator-scoped counters here.
func (c *Comm) SPCs() *spc.Set { return c.spcs }

// Info returns the communicator's assertions.
func (c *Comm) Info() Info { return c.info }

// Dup collectively duplicates the communicator, returning the new handles
// for every member (indexed by communicator rank), like MPI_Comm_dup
// called by all members.
func (c *Comm) Dup() ([]*Comm, error) {
	return c.proc.world.NewCommWithInfo(c.group, c.info)
}

func (c *Comm) String() string {
	return fmt.Sprintf("comm(id=%d rank=%d/%d)", c.id, c.myRank, len(c.group))
}

func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("core: %s rank %d outside communicator of size %d", what, r, len(c.group))
	}
	return nil
}

// Isend starts a non-blocking send of buf to communicator rank dst.
// The buffer may be reused as soon as Isend returns (eager copy / RTS).
func (c *Comm) Isend(th *Thread, dst int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	if th.proc != p {
		panic("core: Isend with a thread from a different proc")
	}
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("core: negative tag %d is reserved", tag)
	}
	p.levelGuard.enter(th)
	defer p.levelGuard.leave()
	clk := th.ts.Clock()
	clk.Begin(prof.PhaseSend)
	defer clk.End()
	if p.bigLock {
		p.bigMu.LockClocked(clk)
		defer p.bigMu.Unlock()
	}

	if c.eagerLimit >= 0 && len(buf) > c.eagerLimit && c.group[dst] != p.rank {
		return c.isendRendezvous(th, dst, tag, buf)
	}

	seq := c.seq.Next(int32(dst))
	th.ts.Flight().Record(flight.KindSendPost, c.id, int32(dst), int32(seq))
	env := transport.Envelope{
		Src: int32(c.myRank), Dst: int32(dst), Tag: tag,
		Comm: c.id, Seq: seq, Kind: transport.KindEager,
	}
	req := &Request{proc: p, kind: reqSend}
	pkt := transport.NewPacket(env, buf, req)
	c.spcs.Inc(spc.MessagesSent)
	if p.histLatency != nil {
		pkt.Stamp = time.Now().UnixNano()
	}
	if p.traceWire {
		pkt.TraceID = traceID(p.rank, c.id, seq)
		pkt.Origin = int32(p.rank)
		if pkt.Stamp == 0 {
			pkt.Stamp = time.Now().UnixNano()
		}
	}

	if c.group[dst] == p.rank {
		// Self message: bypass the fabric, deliver straight into the
		// matching engine and complete the send.
		p.tracer.EmitFlowCRI(trace.KindSendInject, pkt.TraceID, -1, int32(dst), int32(seq))
		req.finish(nil)
		p.deliver(clk, nil, pkt)
		return req, nil
	}

	inst, release := p.pool.AcquireSend(&th.ts)
	p.tracer.EmitFlowCRI(trace.KindSendInject, pkt.TraceID, inst.Index(), int32(dst), int32(seq))
	ep := inst.Endpoint(c.group[dst])
	if ep == nil {
		release()
		return nil, fmt.Errorf("core: no endpoint from rank %d to %d: %w",
			p.rank, c.group[dst], ErrPeerUnreachable)
	}
	var acqNs, wire0 int64
	if p.lat != nil {
		// CRI-acquire stage: send post (the trace stamp, set above — Latency
		// implies TraceWire) to instance held. Stored on the packet before
		// injection so an in-process receiver reads it race-free; over a real
		// wire the field never leaves this process.
		acqNs = time.Now().UnixNano() - pkt.Stamp
		pkt.SendAcqNs = acqNs
	}
	p.rel.track(pkt, c.group[dst], req, nil)
	clk.Begin(prof.PhaseWire)
	if p.lat != nil {
		wire0 = time.Now().UnixNano()
	}
	err := ep.Send(pkt)
	if p.lat != nil && err == nil {
		p.lat.ObserveStage(latency.StageCRIAcquire, acqNs)
		p.lat.ObserveStage(latency.StageWireWrite, time.Now().UnixNano()-wire0)
	}
	clk.End()
	release()
	if err != nil {
		// The packet never reached the wire (lazy establishment or the
		// write itself failed definitively). Any reliability entry is left
		// to its retry budget, which re-drives or abandons it.
		return nil, fmt.Errorf("core: send from rank %d to %d: %v: %w",
			p.rank, c.group[dst], err, ErrPeerUnreachable)
	}
	return req, nil
}

// Send is the blocking send (MPI_Send).
func (c *Comm) Send(th *Thread, dst int, tag int32, buf []byte) error {
	req, err := c.Isend(th, dst, tag, buf)
	if err != nil {
		return err
	}
	return req.Wait(th)
}

// Irecv posts a non-blocking receive. src may be AnySource and tag may be
// AnyTag.
func (c *Comm) Irecv(th *Thread, src int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	if th.proc != p {
		panic("core: Irecv with a thread from a different proc")
	}
	if src != int(AnySource) {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	p.levelGuard.enter(th)
	defer p.levelGuard.leave()
	clk := th.ts.Clock()
	if p.bigLock {
		p.bigMu.LockClocked(clk)
		defer p.bigMu.Unlock()
	}

	req := &Request{proc: p, kind: reqRecv}
	req.mrecv = &match.Recv{Source: int32(src), Tag: tag, Buf: buf, Token: req}

	if !c.selfMatch && !c.matchMu.TryLockQuiet() {
		t0 := c.spcs.StartTimer()
		c.matchMu.LockClocked(clk)
		c.engine.ChargeWait(sinceTimer(c.spcs, t0))
	}
	clk.Begin(prof.PhaseMatch)
	h0 := p.histMatch.Start()
	comp, ok := c.engine.PostRecv(req.mrecv)
	p.histMatch.ObserveSince(h0)
	clk.End()
	if !c.selfMatch {
		c.matchMu.Unlock()
	}
	if ok {
		// PostRecv matched immediately: the message was sitting in the
		// unexpected queue.
		var matchedNs int64
		if p.lat != nil {
			matchedNs = time.Now().UnixNano()
		}
		c.completeRecv(comp, matchedNs, true)
	}
	return req, nil
}

// Recv is the blocking receive (MPI_Recv), returning the message status.
func (c *Comm) Recv(th *Thread, src int, tag int32, buf []byte) (Status, error) {
	req, err := c.Irecv(th, src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	err = req.Wait(th)
	return req.status, err
}

// Probe checks (without blocking or consuming) for an unexpected message
// matching src/tag, progressing once first (MPI_Iprobe).
func (c *Comm) Probe(th *Thread, src int, tag int32) (Status, bool) {
	th.Progress()
	if !c.selfMatch {
		c.matchMu.LockClocked(th.ts.Clock())
	}
	env, ok := c.engine.Probe(int32(src), tag)
	if !c.selfMatch {
		c.matchMu.Unlock()
	}
	if !ok {
		return Status{}, false
	}
	return Status{Source: env.Src, Tag: env.Tag, Count: int(env.Len), MessageLen: int(env.Len)}, true
}

// Message is a matched-probe handle (MPI_Message): a specific inbound
// message claimed by MProbe, receivable exactly once with MRecv.
type Message struct {
	comm *Comm
	pkt  *transport.Packet
	used bool
}

// Status describes the claimed message without receiving it.
func (m *Message) Status() Status {
	env := m.pkt.Envelope()
	return Status{Source: env.Src, Tag: env.Tag, Count: int(env.Len), MessageLen: int(env.Len)}
}

// MProbe claims the oldest unexpected message matching src/tag
// (MPI_Mprobe, non-blocking form): once claimed, the message can no longer
// match any posted receive — the thread-safe alternative to Probe+Recv,
// which races when multiple threads probe the same coordinates.
func (c *Comm) MProbe(th *Thread, src int, tag int32) (*Message, bool) {
	th.Progress()
	if !c.selfMatch {
		c.matchMu.LockClocked(th.ts.Clock())
	}
	pkt, ok := c.engine.MProbe(int32(src), tag)
	if !c.selfMatch {
		c.matchMu.Unlock()
	}
	if !ok {
		return nil, false
	}
	return &Message{comm: c, pkt: pkt}, true
}

// MRecv receives a claimed message into buf (MPI_Mrecv).
func (m *Message) MRecv(buf []byte) (Status, error) {
	if m.used {
		panic("core: MRecv on a consumed message")
	}
	m.used = true
	env := m.pkt.Envelope()
	n := copy(buf, m.pkt.Payload)
	st := Status{
		Source:     env.Src,
		Tag:        env.Tag,
		Count:      n,
		MessageLen: int(env.Len),
		Truncated:  n < len(m.pkt.Payload),
	}
	m.comm.spcs.Inc(spc.MessagesReceived)
	if st.Truncated {
		return st, fmt.Errorf("%w: %d-byte message into %d-byte buffer", ErrTruncated, st.MessageLen, st.Count)
	}
	return st, nil
}

// completeRecv finishes one matched receive: either the plain eager path or
// the start of a rendezvous transfer. matchedNs is the caller's match
// timestamp and unexpected whether the message matched via the unexpected
// queue — the critical-path attribution inputs (both ignored, and matchedNs
// may be 0, when attribution is off or the message is untraced).
func (c *Comm) completeRecv(comp match.Completion, matchedNs int64, unexpected bool) {
	req, _ := comp.Recv.Token.(*Request)
	if req == nil {
		panic("core: matched receive without request token")
	}
	env := comp.Recv.MatchedEnv
	if env.Kind == transport.KindRendezvousRTS {
		c.startRendezvousRecv(req, comp)
		return
	}
	p := c.proc
	var flow uint64
	if comp.Packet != nil {
		flow = comp.Packet.TraceID
		if p.histLatency != nil && comp.Packet.Stamp != 0 {
			p.histLatency.ObserveNs(time.Now().UnixNano() - comp.Packet.Stamp)
		}
		if p.histResidency != nil && comp.Packet.RecvStamp != 0 {
			// Arrival at the matching engine to match completion: how long
			// the message sat in the unexpected queue (or how fast a posted
			// receive consumed it).
			p.histResidency.ObserveNs(time.Now().UnixNano() - comp.Packet.RecvStamp)
		}
		if p.lat != nil && matchedNs != 0 && comp.Packet.TraceID != 0 && comp.Packet.Stamp != 0 {
			p.lat.Record(p.measure(comp.Packet, env.Tag, matchedNs, unexpected))
		}
	}
	p.tracer.EmitFlowCRI(trace.KindMatchComplete, flow, -1, env.Src, env.Tag)
	req.finishRecv(Status{
		Source:     env.Src,
		Tag:        env.Tag,
		Count:      comp.Recv.N,
		MessageLen: int(env.Len),
		Truncated:  comp.Recv.Truncated,
	})
}

// Free removes this handle's communicator state from its process
// (MPI_Comm_free). Packets still in flight toward a freed communicator are
// counted (spc.LatePackets) and dropped by the receive path.
func (c *Comm) Free() {
	c.proc.unregisterComm(c.id)
}

// Barrier synchronizes all members with a dissemination barrier built on
// the runtime's own point-to-point layer.
func (c *Comm) Barrier(th *Thread) error {
	n := len(c.group)
	if n == 1 {
		return nil
	}
	var b [1]byte
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (c.myRank + dist) % n
		from := (c.myRank - dist + n) % n
		tag := barrierTagBase + int32(round)
		sreq, err := c.isendInternal(th, to, tag, b[:])
		if err != nil {
			return err
		}
		if _, err := c.recvInternal(th, from, tag); err != nil {
			return err
		}
		if err := sreq.Wait(th); err != nil {
			return err
		}
	}
	return nil
}

// barrierTagBase keys internal collective traffic; user tags must be >= 0,
// and the matching engine treats these as ordinary (negative) tags that can
// never collide with user receives.
const barrierTagBase int32 = -1000

// isendInternal sends with an internal (negative) tag, bypassing the
// user-tag validation.
func (c *Comm) isendInternal(th *Thread, dst int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	clk := th.ts.Clock()
	clk.Begin(prof.PhaseSend)
	defer clk.End()
	seq := c.seq.Next(int32(dst))
	th.ts.Flight().Record(flight.KindSendPost, c.id, int32(dst), int32(seq))
	env := transport.Envelope{
		Src: int32(c.myRank), Dst: int32(dst), Tag: tag,
		Comm: c.id, Seq: seq, Kind: transport.KindEager,
	}
	req := &Request{proc: p, kind: reqSend}
	pkt := transport.NewPacket(env, buf, req)
	if c.group[dst] == p.rank {
		req.finish(nil)
		p.deliver(clk, nil, pkt)
		return req, nil
	}
	inst, release := p.pool.AcquireSend(&th.ts)
	ep := inst.Endpoint(c.group[dst])
	if ep == nil {
		release()
		return nil, fmt.Errorf("core: no endpoint from rank %d to %d: %w",
			p.rank, c.group[dst], ErrPeerUnreachable)
	}
	p.rel.track(pkt, c.group[dst], req, nil)
	clk.Begin(prof.PhaseWire)
	err := ep.Send(pkt)
	clk.End()
	release()
	if err != nil {
		return nil, fmt.Errorf("core: send from rank %d to %d: %v: %w",
			p.rank, c.group[dst], err, ErrPeerUnreachable)
	}
	return req, nil
}

// recvInternal blocks for an internal-tag message, discarding the payload.
func (c *Comm) recvInternal(th *Thread, src int, tag int32) (Status, error) {
	var scratch [1]byte
	return c.recvInternalInto(th, src, tag, scratch[:])
}

// ctlTagBase anchors the runtime-internal control-message tag space used by
// the one-sided synchronization layer (internal/rma). Kinds are small
// non-negative integers.
const ctlTagBase int32 = -500000

// CtlSend sends a control message of the given kind to dst. Reserved for
// runtime-internal layers (the one-sided synchronization protocols); user
// code should use Send.
func (c *Comm) CtlSend(th *Thread, dst int, kind int32, payload []byte) error {
	req, err := c.isendInternal(th, dst, ctlTagBase-kind, payload)
	if err != nil {
		return err
	}
	return req.Wait(th)
}

// CtlRecv blocks for a control message of the given kind from src.
func (c *Comm) CtlRecv(th *Thread, src int, kind int32, buf []byte) (Status, error) {
	return c.recvInternalInto(th, src, ctlTagBase-kind, buf)
}
