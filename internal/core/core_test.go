package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/spc"
)

func newTestWorld(t testing.TB, n int, opts Options) *World {
	t.Helper()
	w, err := NewWorld(hw.Fast(), n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldConstruction(t *testing.T) {
	w := newTestWorld(t, 3, Stock())
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	for r := 0; r < 3; r++ {
		p := w.Proc(r)
		if p.Rank() != r {
			t.Fatalf("proc %d reports rank %d", r, p.Rank())
		}
		cw := p.CommWorld()
		if cw == nil || cw.Size() != 3 || cw.Rank() != r {
			t.Fatalf("proc %d world comm = %v", r, cw)
		}
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(hw.Fast(), 0, Stock()); err == nil {
		t.Fatal("NewWorld(0) succeeded")
	}
}

func TestOptionsDefaults(t *testing.T) {
	w := newTestWorld(t, 1, Options{})
	o := w.Options()
	if o.NumInstances != 1 || o.QueueDepth != 4096 || o.EagerLimit != DefaultEagerLimit {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestInstanceCapByMachineLimit(t *testing.T) {
	m := hw.Fast()
	m.MaxContexts = 2
	w, err := NewWorld(m, 1, Options{NumInstances: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Proc(0).Pool().Len(); got != 2 {
		t.Fatalf("pool size = %d, want capped at 2", got)
	}
}

func TestBlockingSendRecv(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c0.Send(t0, 1, 7, []byte("payload")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 16)
	st, err := c1.Recv(t1, 0, 7, buf)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if st.Source != 0 || st.Tag != 7 || st.Count != 7 || st.Truncated {
		t.Fatalf("status = %+v", st)
	}
	if string(buf[:st.Count]) != "payload" {
		t.Fatalf("received %q", buf[:st.Count])
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()

	const n = 50
	var rreqs []*Request
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 4)
		r, err := c1.Irecv(t1, 0, int32(i), bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		rreqs = append(rreqs, r)
	}
	var sreqs []*Request
	for i := 0; i < n; i++ {
		s, err := c0.Isend(t0, 1, int32(i), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		sreqs = append(sreqs, s)
	}
	done := make(chan error, 1)
	go func() { done <- WaitAll(t1, rreqs...) }()
	if err := WaitAll(t0, sreqs...); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if bufs[i][0] != byte(i) {
			t.Fatalf("message %d delivered %d", i, bufs[i][0])
		}
		if rreqs[i].Status().Tag != int32(i) {
			t.Fatalf("message %d status tag %d", i, rreqs[i].Status().Tag)
		}
	}
}

func TestFIFOOrderingSingleThread(t *testing.T) {
	// Messages with the same tag from one thread must arrive in send order.
	w := newTestWorld(t, 2, Stock())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	const n = 100

	go func() {
		for i := 0; i < n; i++ {
			if err := c0.Send(t0, 1, 1, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < n; i++ {
		if _, err := c1.Recv(t1, 0, 1, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("message %d arrived as %d: FIFO violated", i, buf[0])
		}
	}
}

func TestSelfSend(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	c := w.Proc(0).CommWorld()
	th := w.Proc(0).NewThread()
	req, err := c.Isend(th, 0, 3, []byte("self"))
	if err != nil {
		t.Fatal(err)
	}
	if !req.Done() {
		t.Fatal("self send not immediately complete")
	}
	buf := make([]byte, 8)
	st, err := c.Recv(th, 0, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:st.Count]) != "self" {
		t.Fatalf("self recv = %q", buf[:st.Count])
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newTestWorld(t, 3, Stock())
	t1 := w.Proc(1).NewThread()
	t2 := w.Proc(2).NewThread()
	t0 := w.Proc(0).NewThread()
	go func() { _ = w.Proc(1).CommWorld().Send(t1, 0, 11, []byte("a")) }()
	go func() { _ = w.Proc(2).CommWorld().Send(t2, 0, 22, []byte("b")) }()

	c0 := w.Proc(0).CommWorld()
	seen := map[int32]bool{}
	for i := 0; i < 2; i++ {
		buf := make([]byte, 1)
		st, err := c0.Recv(t0, int(AnySource), AnyTag, buf)
		if err != nil {
			t.Fatal(err)
		}
		seen[st.Source] = true
		if (st.Source == 1 && st.Tag != 11) || (st.Source == 2 && st.Tag != 22) {
			t.Fatalf("status mismatch: %+v", st)
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("sources seen = %v", seen)
	}
}

func TestTruncationError(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, []byte("too long")) }()
	buf := make([]byte, 3)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if !st.Truncated || st.Count != 3 || st.MessageLen != 8 {
		t.Fatalf("status = %+v", st)
	}
	if string(buf) != "too" {
		t.Fatalf("buf = %q", buf)
	}
}

func TestRankAndTagValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	c := w.Proc(0).CommWorld()
	th := w.Proc(0).NewThread()
	if _, err := c.Isend(th, 5, 1, nil); err == nil {
		t.Fatal("Isend to rank 5 in world of 2 succeeded")
	}
	if _, err := c.Isend(th, -1, 1, nil); err == nil {
		t.Fatal("Isend to rank -1 succeeded")
	}
	if _, err := c.Isend(th, 1, -5, nil); err == nil {
		t.Fatal("negative user tag accepted")
	}
	if _, err := c.Irecv(th, 5, 1, nil); err == nil {
		t.Fatal("Irecv from rank 5 succeeded")
	}
}

func TestNewCommValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	if _, err := w.NewComm(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := w.NewComm([]int{0, 0}); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := w.NewComm([]int{0, 7}); err == nil {
		t.Fatal("out-of-world rank accepted")
	}
}

func TestSubCommunicatorRanks(t *testing.T) {
	w := newTestWorld(t, 4, Stock())
	comms, err := w.NewComm([]int{3, 1}) // comm rank 0 -> world 3, 1 -> world 1
	if err != nil {
		t.Fatal(err)
	}
	if comms[0].Rank() != 0 || comms[0].Proc().Rank() != 3 {
		t.Fatalf("comm[0] = %v on proc %d", comms[0], comms[0].Proc().Rank())
	}
	if comms[0].WorldRank(1) != 1 {
		t.Fatal("WorldRank mapping wrong")
	}
	// Traffic within the sub-communicator uses communicator ranks.
	th3 := w.Proc(3).NewThread()
	th1 := w.Proc(1).NewThread()
	go func() { _ = comms[0].Send(th3, 1, 9, []byte("sub")) }()
	buf := make([]byte, 8)
	st, err := comms[1].Recv(th1, 0, 9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || string(buf[:st.Count]) != "sub" {
		t.Fatalf("sub-comm recv: %+v %q", st, buf[:st.Count])
	}
}

func TestCommDup(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	dup, err := w.Proc(0).CommWorld().Dup()
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].ID() == w.Proc(0).CommWorld().ID() {
		t.Fatal("Dup reused the communicator id")
	}
	// Same-tag traffic on world and dup must not cross.
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() {
		_ = w.Proc(0).CommWorld().Send(t0, 1, 1, []byte("w"))
		_ = dup[0].Send(t0, 1, 1, []byte("d"))
	}()
	buf := make([]byte, 1)
	if _, err := dup[1].Recv(t1, 0, 1, buf); err != nil || buf[0] != 'd' {
		t.Fatalf("dup recv = %q, %v", buf, err)
	}
	if _, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf); err != nil || buf[0] != 'w' {
		t.Fatalf("world recv = %q, %v", buf, err)
	}
}

func TestProbeFindsUnexpected(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c1 := w.Proc(1).CommWorld()
	if _, ok := c1.Probe(t1, int(AnySource), AnyTag); ok {
		t.Fatal("Probe found a message before any send")
	}
	done := make(chan struct{})
	go func() {
		_ = w.Proc(0).CommWorld().Send(t0, 1, 33, []byte("xx"))
		close(done)
	}()
	<-done
	// Drain fabric into the unexpected queue, then probe.
	var st Status
	var ok bool
	for !ok {
		st, ok = c1.Probe(t1, 0, 33)
	}
	if st.Tag != 33 || st.MessageLen != 2 {
		t.Fatalf("probe status = %+v", st)
	}
	// The message is still there for a real receive.
	buf := make([]byte, 2)
	if _, err := c1.Recv(t1, 0, 33, buf); err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			w := newTestWorld(t, n, Stock())
			var wg sync.WaitGroup
			var mu sync.Mutex
			arrived := 0
			minSeen := n * 2
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					th := w.Proc(r).NewThread()
					c := w.Proc(r).CommWorld()
					mu.Lock()
					arrived++
					mu.Unlock()
					if err := c.Barrier(th); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					if arrived < minSeen {
						minSeen = arrived
					}
					mu.Unlock()
				}(r)
			}
			wg.Wait()
			if minSeen != n {
				t.Fatalf("a rank left the barrier after seeing only %d/%d arrivals", minSeen, n)
			}
		})
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	opts := Stock()
	opts.EagerLimit = 64
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()

	msg := bytes.Repeat([]byte("abcdefgh"), 100) // 800 B > 64 B eager limit
	go func() {
		if err := w.Proc(0).CommWorld().Send(t0, 1, 5, msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 1024)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 800 || st.MessageLen != 800 || st.Truncated {
		t.Fatalf("status = %+v", st)
	}
	if !bytes.Equal(buf[:800], msg) {
		t.Fatal("rendezvous payload corrupted")
	}
}

func TestRendezvousTruncation(t *testing.T) {
	opts := Stock()
	opts.EagerLimit = 16
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	msg := bytes.Repeat([]byte{7}, 100)
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 5, msg) }()
	buf := make([]byte, 40)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 5, buf)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if st.Count != 40 || st.MessageLen != 100 || !st.Truncated {
		t.Fatalf("status = %+v", st)
	}
	for i, b := range buf {
		if b != 7 {
			t.Fatalf("buf[%d] = %d", i, b)
		}
	}
}

func TestRendezvousPreservesFIFOWithEager(t *testing.T) {
	// Eager then rendezvous then eager with the same tag: arrival order
	// must equal send order even across protocol switches.
	opts := Stock()
	opts.EagerLimit = 32
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() {
		c := w.Proc(0).CommWorld()
		_ = c.Send(t0, 1, 1, []byte{1})
		_ = c.Send(t0, 1, 1, bytes.Repeat([]byte{2}, 100))
		_ = c.Send(t0, 1, 1, []byte{3})
	}()
	c1 := w.Proc(1).CommWorld()
	buf := make([]byte, 128)
	for i, want := range []byte{1, 2, 3} {
		st, err := c1.Recv(t1, 0, 1, buf)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != want {
			t.Fatalf("message %d delivered payload %d, want %d", i, buf[0], want)
		}
		_ = st
	}
}

func TestMessagesSentCounter(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() {
		for i := 0; i < 10; i++ {
			_ = w.Proc(0).CommWorld().Send(t0, 1, 1, nil)
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < 10; i++ {
		if _, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Proc(0).SPCSnapshot().Get(spc.MessagesSent); got != 10 {
		t.Fatalf("messages_sent = %d, want 10", got)
	}
	if got := w.Proc(1).SPCSnapshot().Get(spc.MessagesReceived); got != 10 {
		t.Fatalf("messages_received = %d, want 10", got)
	}
}

func TestDisableSPCs(t *testing.T) {
	opts := Stock()
	opts.DisableSPCs = true
	w := newTestWorld(t, 1, opts)
	if w.Proc(0).SPCs() != nil {
		t.Fatal("SPCs allocated despite DisableSPCs")
	}
	// Traffic must still work with a nil counter set.
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	if err := c.Send(th, 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := c.Recv(th, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestThreadSerializedViolationPanics(t *testing.T) {
	opts := Stock()
	opts.ThreadLevel = ThreadSerialized
	w := newTestWorld(t, 1, opts)
	p := w.Proc(0)
	// Simulate a concurrent entry by holding the guard.
	p.levelGuard.enter(p.NewThread())
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent entry at SERIALIZED did not panic")
		}
	}()
	p.levelGuard.enter(p.NewThread())
}

func TestThreadFunneledViolationPanics(t *testing.T) {
	opts := Stock()
	opts.ThreadLevel = ThreadFunneled
	w := newTestWorld(t, 1, opts)
	p := w.Proc(0)
	p.levelGuard.enter(p.NewThread()) // main thread claims ownership
	defer func() {
		if recover() == nil {
			t.Fatal("second thread at FUNNELED did not panic")
		}
	}()
	p.levelGuard.enter(p.NewThread())
}

func TestThreadMultipleAllowsConcurrency(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	p := w.Proc(0)
	th1, th2 := p.NewThread(), p.NewThread()
	p.levelGuard.enter(th1)
	p.levelGuard.enter(th2) // must not panic
	p.levelGuard.leave()
	p.levelGuard.leave()
}

// TestMultithreadedPairwiseStress is the core concurrency test: N sender
// threads and N receiver threads exchanging on one communicator under every
// design configuration. Run with -race.
func TestMultithreadedPairwiseStress(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"stock", Stock()},
		{"cri-rr", CRIs(4, cri.RoundRobin)},
		{"cri-dedicated", CRIs(4, cri.Dedicated)},
		{"concurrent-rr", CRIsConcurrent(4, cri.RoundRobin)},
		{"concurrent-dedicated", CRIsConcurrent(4, cri.Dedicated)},
		{"biglock", func() Options { o := Stock(); o.BigLock = true; return o }()},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			const (
				pairs = 4
				msgs  = 200
			)
			w := newTestWorld(t, 2, cfg.opts)
			var wg sync.WaitGroup
			for pair := 0; pair < pairs; pair++ {
				wg.Add(2)
				go func(pair int) {
					defer wg.Done()
					th := w.Proc(0).NewThread()
					c := w.Proc(0).CommWorld()
					for i := 0; i < msgs; i++ {
						if err := c.Send(th, 1, int32(pair), []byte{byte(i)}); err != nil {
							t.Error(err)
							return
						}
					}
				}(pair)
				go func(pair int) {
					defer wg.Done()
					th := w.Proc(1).NewThread()
					c := w.Proc(1).CommWorld()
					buf := make([]byte, 1)
					for i := 0; i < msgs; i++ {
						st, err := c.Recv(th, 0, int32(pair), buf)
						if err != nil {
							t.Error(err)
							return
						}
						if buf[0] != byte(i) {
							t.Errorf("pair %d: message %d arrived as %d (per-thread FIFO)", pair, i, buf[0])
							return
						}
						_ = st
					}
				}(pair)
			}
			wg.Wait()
		})
	}
}

// TestCommPerPairConcurrentMatching mirrors the Fig. 3c setup: each pair
// has a private communicator; matching runs concurrently.
func TestCommPerPairConcurrentMatching(t *testing.T) {
	const pairs = 4
	w := newTestWorld(t, 2, CRIsConcurrent(pairs, cri.Dedicated))
	comms := make([][]*Comm, pairs)
	for i := range comms {
		var err error
		comms[i], err = w.NewComm([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for pair := 0; pair < pairs; pair++ {
		wg.Add(2)
		go func(pair int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < 100; i++ {
				if err := comms[pair][0].Send(th, 1, 1, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(pair)
		go func(pair int) {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 1)
			for i := 0; i < 100; i++ {
				if _, err := comms[pair][1].Recv(th, 0, 1, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i) {
					t.Errorf("pair %d FIFO violated", pair)
					return
				}
			}
		}(pair)
	}
	wg.Wait()
}

// TestAllowOvertakingDelivery: with overtaking asserted and wildcard tags,
// all messages arrive exactly once (order free).
func TestAllowOvertakingDelivery(t *testing.T) {
	w := newTestWorld(t, 2, CRIsConcurrent(4, cri.Dedicated))
	comms, err := w.NewCommWithInfo([]int{0, 1}, Info{AllowOvertaking: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		threads = 4
		msgs    = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < msgs; i++ {
				if err := comms[0].Send(th, 1, 1, []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	counts := make([]int, threads)
	var mu sync.Mutex
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := comms[1].Recv(th, 0, AnyTag, buf); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				counts[buf[0]]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for g, n := range counts {
		if n != msgs {
			t.Fatalf("sender %d: %d messages delivered, want %d", g, n, msgs)
		}
	}
	if oos := w.Proc(1).SPCSnapshot().Get(spc.OutOfSequence); oos != 0 {
		t.Fatalf("overtaking recorded %d out-of-sequence messages", oos)
	}
}

func TestProgressModesDrainAfterChurn(t *testing.T) {
	// Threads detach mid-run (orphaned dedicated instances); remaining
	// threads must still complete all traffic via the round-robin sweep.
	w := newTestWorld(t, 2, Options{
		NumInstances: 4, Assignment: cri.Dedicated,
		Progress: progress.Concurrent, ThreadLevel: ThreadMultiple,
	})
	t0 := w.Proc(0).NewThread()
	c0 := w.Proc(0).CommWorld()
	c1 := w.Proc(1).CommWorld()

	// A short-lived thread sends then detaches.
	ephemeral := w.Proc(0).NewThread()
	if _, err := c0.Isend(ephemeral, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ephemeral.Detach()

	// A different thread (different dedicated instance) must still see the
	// message complete and the receiver drain it.
	buf := make([]byte, 1)
	t1 := w.Proc(1).NewThread()
	if _, err := c1.Recv(t1, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'x' {
		t.Fatalf("payload = %q", buf)
	}
	_ = t0
}
