package core

import (
	"bytes"
	"sync"
	"testing"
)

// TestNegativeEagerLimitDisablesRendezvous: with EagerLimit < 0 every
// message ships eagerly, including large ones.
func TestNegativeEagerLimitDisablesRendezvous(t *testing.T) {
	opts := Stock()
	opts.EagerLimit = -1
	opts.TraceCapacity = 256
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	msg := bytes.Repeat([]byte{9}, 64*1024) // far above any eager default
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, msg) }()
	buf := make([]byte, 64*1024)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf)
	if err != nil || st.Count != len(msg) {
		t.Fatalf("recv: %v %+v", err, st)
	}
	// No rendezvous events must have been traced.
	if n := w.Proc(1).Tracer().Snapshot(); len(n) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	for _, e := range w.Proc(1).Tracer().Snapshot() {
		if e.Kind.String() == "rendezvous_start" {
			t.Fatal("rendezvous used despite negative eager limit")
		}
	}
}

// TestBigLockFunctional: the big-lock comparator design still delivers all
// traffic (it is slow, not wrong).
func TestBigLockFunctional(t *testing.T) {
	opts := Stock()
	opts.BigLock = true
	w := newTestWorld(t, 2, opts)
	const (
		threads = 3
		msgs    = 60
	)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < msgs; i++ {
				if err := w.Proc(0).CommWorld().Send(th, 1, int32(g), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := w.Proc(1).CommWorld().Recv(th, 0, int32(g), buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i) {
					t.Errorf("thread %d FIFO violated under big lock", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestZeroByteMessages: the paper's workload — pure envelopes.
func TestZeroByteMessages(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() {
		for i := 0; i < 50; i++ {
			_ = w.Proc(0).CommWorld().Send(t0, 1, 1, nil)
		}
	}()
	for i := 0; i < 50; i++ {
		st, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Count != 0 || st.MessageLen != 0 || st.Truncated {
			t.Fatalf("zero-byte status = %+v", st)
		}
	}
}

// TestManyWorldsSequentially: worlds are independent; creating and closing
// many in sequence leaks nothing that breaks later worlds.
func TestManyWorldsSequentially(t *testing.T) {
	for i := 0; i < 20; i++ {
		w, err := NewWorld(hwFast(), 2, Stock())
		if err != nil {
			t.Fatal(err)
		}
		th0, th1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
		go func() { _ = w.Proc(0).CommWorld().Send(th0, 1, 1, []byte{byte(i)}) }()
		buf := make([]byte, 1)
		if _, err := w.Proc(1).CommWorld().Recv(th1, 0, 1, buf); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
}

// TestLargeWorld: a wider world (16 procs) with all-to-all barrier +
// neighbor traffic.
func TestLargeWorld(t *testing.T) {
	const n = 16
	w := newTestWorld(t, n, Stock())
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			th := w.Proc(r).NewThread()
			c := w.Proc(r).CommWorld()
			right := (r + 1) % n
			left := (r - 1 + n) % n
			out := []byte{byte(r)}
			in := make([]byte, 1)
			st, err := c.Sendrecv(th, right, 1, out, left, 1, in)
			if err != nil {
				t.Error(err)
				return
			}
			if in[0] != byte(left) || st.Source != int32(left) {
				t.Errorf("rank %d: ring neighbor data wrong", r)
				return
			}
			if err := c.Barrier(th); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
}
