package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/progress"
)

// A run with the recorder on must capture the full message-path event
// sequence, and the queue snapshot must reflect live depths.
func TestFlightRecorderCapturesMessagePath(t *testing.T) {
	w := newTestWorld(t, 2, Options{
		NumInstances: 2, Progress: progress.Concurrent,
		ThreadLevel: ThreadMultiple, FlightCapacity: 256,
	})
	p0, p1 := w.Proc(0), w.Proc(1)
	th0, th1 := p0.NewThread(), p1.NewThread()
	c0, c1 := p0.CommWorld(), p1.CommWorld()

	// An unmatched arrival first, so unexpected enq/deq both appear.
	if err := c0.Send(th0, 1, 7, []byte("early")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c1.Proc().QueueSnapshot().Comms[0].Unexpected == 0 {
		th1.Progress()
		if time.Now().After(deadline) {
			t.Fatal("message never reached the unexpected queue")
		}
	}
	qs := p1.QueueSnapshot()
	if qs.Rank != 1 || len(qs.Comms) != 1 || qs.Comms[0].Unexpected != 1 {
		t.Fatalf("mid-run snapshot = %+v", qs)
	}
	if len(qs.CRIs) != 2 {
		t.Fatalf("snapshot CRI levels = %+v", qs.CRIs)
	}

	if _, err := c1.Recv(th1, 0, 7, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}

	rec := p1.FlightRecord()
	if rec.Rank != 1 || len(rec.Events) == 0 {
		t.Fatalf("rank 1 flight record empty: %+v", rec)
	}
	kinds := make(map[flight.Kind]int)
	for _, e := range rec.Events {
		kinds[e.Kind]++
	}
	for _, want := range []flight.Kind{flight.KindMatchMiss, flight.KindUnexpEnq, flight.KindUnexpDeq, flight.KindProgress} {
		if kinds[want] == 0 {
			t.Fatalf("rank 1 record has no %v events: %v", want, kinds)
		}
	}
	sendRec := p0.FlightRecord()
	sendKinds := make(map[flight.Kind]int)
	for _, e := range sendRec.Events {
		sendKinds[e.Kind]++
	}
	if sendKinds[flight.KindSendPost] == 0 {
		t.Fatalf("rank 0 record has no send_post events: %v", sendKinds)
	}

	// Disabled recorder: accessors must be safe and empty.
	w2 := newTestWorld(t, 1, Stock())
	if r := w2.Proc(0).FlightRecord(); len(r.Events) != 0 || r.Rank != 0 {
		t.Fatalf("disabled recorder record = %+v", r)
	}
	if q := w2.Proc(0).QueueSnapshot(); len(q.Comms) != 1 {
		t.Fatalf("snapshot without recorder = %+v", q)
	}
}

// The watchdog must fire a no-progress verdict when a receiver posts a
// receive that nothing will ever match, and the dump must name the site.
func TestWatchdogFiresOnStall(t *testing.T) {
	w := newTestWorld(t, 2, Options{
		NumInstances: 1, ThreadLevel: ThreadMultiple, FlightCapacity: 128,
	})
	p1 := w.Proc(1)
	th1 := p1.NewThread()
	c1 := p1.CommWorld()

	// A receive that never matches: posted depth stays 1, counters frozen.
	if _, err := c1.Irecv(th1, 0, 99, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var dumps []flight.Dump
	stop := w.StartWatchdog(WatchdogConfig{
		Interval: 2 * time.Millisecond,
		Detector: flight.DetectorConfig{StallAfter: 10 * time.Millisecond},
		OnDump: func(d flight.Dump) {
			mu.Lock()
			dumps = append(dumps, d)
			mu.Unlock()
		},
	})
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(dumps)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired on a stalled receive")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	d := dumps[0]
	if d.Rank != 1 {
		t.Fatalf("dump rank = %d", d.Rank)
	}
	if d.Verdict.Reason != "no-progress" || d.Verdict.Phase != "progress" {
		t.Fatalf("verdict = %+v", d.Verdict)
	}
	found := false
	for _, cq := range d.Queues.Comms {
		if cq.Posted > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump snapshot shows no posted receive: %+v", d.Queues)
	}
	if len(d.Record.Events) == 0 {
		t.Fatal("dump carries no flight record")
	}
}
