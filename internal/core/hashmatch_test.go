package core

import (
	"sync"
	"testing"

	"repro/internal/cri"
)

// TestHashMatchingRuntimeEquivalence runs the full multithreaded pairwise
// workload on the real runtime with the hash engine and checks the same
// FIFO guarantees the list engine provides.
func TestHashMatchingRuntimeEquivalence(t *testing.T) {
	opts := CRIsConcurrent(4, cri.Dedicated)
	opts.HashMatching = true
	w := newTestWorld(t, 2, opts)
	const (
		pairs = 4
		msgs  = 150
	)
	var wg sync.WaitGroup
	for pair := 0; pair < pairs; pair++ {
		wg.Add(2)
		go func(pair int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			c := w.Proc(0).CommWorld()
			for i := 0; i < msgs; i++ {
				if err := c.Send(th, 1, int32(pair), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(pair)
		go func(pair int) {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			c := w.Proc(1).CommWorld()
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := c.Recv(th, 0, int32(pair), buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i) {
					t.Errorf("pair %d: FIFO violated under hash matching", pair)
					return
				}
			}
		}(pair)
	}
	wg.Wait()
}

// TestHashMatchingWildcardsAndScrambling: wildcards + adversarial
// reordering against the hash engine end to end.
func TestHashMatchingWildcardsAndScrambling(t *testing.T) {
	opts := Stock()
	opts.HashMatching = true
	opts.ScrambleWindow = 6
	opts.ScrambleSeed = 3
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	const msgs = 120
	go func() {
		c := w.Proc(0).CommWorld()
		for i := 0; i < msgs; i++ {
			if err := c.Send(t0, 1, int32(i%5), []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	c := w.Proc(1).CommWorld()
	buf := make([]byte, 1)
	for i := 0; i < msgs; i++ {
		// Wildcard receives must observe send order exactly (FIFO across
		// the whole stream, since any message matches).
		if _, err := c.Recv(t1, int(AnySource), AnyTag, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("message %d arrived as %d under hash+scramble", i, buf[0])
		}
	}
}

// TestHashMatchingCollectives: the collective layer (internal tags,
// exact-coordinate receives) over the hash engine.
func TestHashMatchingCollectives(t *testing.T) {
	opts := Stock()
	opts.HashMatching = true
	w := newTestWorld(t, 4, opts)
	runCollective(t, w, func(rank int, th *Thread, c *Comm) error {
		out := make([]byte, 8)
		if err := c.Allreduce(th, int64Bytes(int64(rank)), out, OpSumInt64); err != nil {
			return err
		}
		if got := int64sOf(out)[0]; got != 6 {
			t.Errorf("rank %d allreduce = %d", rank, got)
		}
		return c.Barrier(th)
	})
}
