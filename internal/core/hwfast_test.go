package core

import "repro/internal/hw"

// hwFast returns the zero-cost machine model for functional tests.
func hwFast() hw.Machine { return hw.Fast() }
