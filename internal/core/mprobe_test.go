package core

import (
	"sync"
	"testing"
)

func TestMProbeMRecv(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	done := make(chan struct{})
	go func() {
		_ = c0.Send(t0, 1, 7, []byte("claimed"))
		close(done)
	}()
	<-done

	var msg *Message
	for {
		var ok bool
		msg, ok = c1.MProbe(t1, 0, 7)
		if ok {
			break
		}
	}
	st := msg.Status()
	if st.Source != 0 || st.Tag != 7 || st.MessageLen != 7 {
		t.Fatalf("message status = %+v", st)
	}
	// The claimed message must no longer match a posted receive.
	if _, ok := c1.Probe(t1, 0, 7); ok {
		t.Fatal("claimed message still visible to Probe")
	}
	buf := make([]byte, 16)
	st, err := msg.MRecv(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:st.Count]) != "claimed" {
		t.Fatalf("MRecv payload = %q", buf[:st.Count])
	}
}

func TestMProbeMissReturnsFalse(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	th := w.Proc(1).NewThread()
	if _, ok := w.Proc(1).CommWorld().MProbe(th, 0, 99); ok {
		t.Fatal("MProbe matched with nothing sent")
	}
}

func TestMRecvTwicePanics(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, []byte("x")) }()
	var msg *Message
	for {
		var ok bool
		msg, ok = w.Proc(1).CommWorld().MProbe(t1, 0, 1)
		if ok {
			break
		}
	}
	buf := make([]byte, 4)
	if _, err := msg.MRecv(buf); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second MRecv did not panic")
		}
	}()
	_, _ = msg.MRecv(buf)
}

// TestMProbeConcurrentClaimants: the defining property of matched probe —
// N threads claiming from the same coordinates each get a distinct message.
func TestMProbeConcurrentClaimants(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0 := w.Proc(0).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	const msgs = 40
	go func() {
		for i := 0; i < msgs; i++ {
			_ = c0.Send(t0, 1, 1, []byte{byte(i)})
		}
	}()

	const claimants = 4
	var mu sync.Mutex
	seen := map[byte]bool{}
	var wg sync.WaitGroup
	for g := 0; g < claimants; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 1)
			for {
				mu.Lock()
				if len(seen) == msgs {
					mu.Unlock()
					return
				}
				mu.Unlock()
				msg, ok := c1.MProbe(th, 0, 1)
				if !ok {
					continue
				}
				if _, err := msg.MRecv(buf); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[buf[0]] {
					mu.Unlock()
					t.Errorf("message %d claimed twice", buf[0])
					return
				}
				seen[buf[0]] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCommFree(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	comms, err := w.NewComm([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	id := comms[0].ID()
	comms[0].Free()
	if w.Proc(0).commByID(id) != nil {
		t.Fatal("communicator still registered after Free")
	}
	// The other member's handle is independent until its own Free.
	if w.Proc(1).commByID(id) == nil {
		t.Fatal("Free on one handle removed the peer's state")
	}
	comms[1].Free()
}
