package core

import (
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/spc"
)

func TestOffloadProgressThreadDeliversTraffic(t *testing.T) {
	opts := CRIsConcurrent(2, cri.Dedicated)
	opts.ProgressThread = true
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	const msgs = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := c0.Send(t0, 1, 1, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < msgs; i++ {
		if _, err := c1.Recv(t1, 0, 1, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("message %d arrived as %d", i, buf[0])
		}
	}
	wg.Wait()
	// Application threads must not have entered the progress engine: all
	// progress calls come from the two offload threads. The progress-call
	// count is large (they spin), but the defining property is that
	// traffic completed although progressFor returned 0 for app threads.
	if got := w.Proc(1).SPCs().Get(spc.ProgressCalls); got == 0 {
		t.Fatal("offload thread never drove the progress engine")
	}
}

func TestOffloadWithRendezvousAndCollectives(t *testing.T) {
	opts := Stock()
	opts.ProgressThread = true
	opts.EagerLimit = 32
	w := newTestWorld(t, 3, opts)

	// Rendezvous through the offload thread.
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, make([]byte, 200)) }()
	buf := make([]byte, 256)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf)
	if err != nil || st.Count != 200 {
		t.Fatalf("rendezvous under offload: %v %+v", err, st)
	}

	// A collective (barrier + allreduce) under offload.
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			th := w.Proc(r).NewThread()
			c := w.Proc(r).CommWorld()
			if err := c.Barrier(th); err != nil {
				t.Error(err)
				return
			}
			out := make([]byte, 8)
			if err := c.Allreduce(th, int64Bytes(1), out, OpSumInt64); err != nil {
				t.Error(err)
				return
			}
			if got := int64sOf(out)[0]; got != 3 {
				t.Errorf("rank %d allreduce = %d", r, got)
			}
		}(r)
	}
	wg.Wait()
}

func TestOffloadCloseStopsThread(t *testing.T) {
	opts := Stock()
	opts.ProgressThread = true
	w, err := NewWorld(hwFast(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Close() // must not hang; offload goroutines must exit
	w.Close() // idempotent
}
