// Package core implements the message-passing runtime whose internal design
// the paper studies: an MPI-like API (communicators, two-sided send/receive
// with tag matching and FIFO ordering, threading levels) built over
// Communication Resource Instances, a pluggable progress engine, and the
// per-communicator matching engine. Every design knob from the paper —
// instance count, assignment strategy, serial vs. concurrent progress,
// message overtaking — is an Option, so one binary can realize every
// configuration in Figures 3–7.
package core

import (
	"fmt"
	"time"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/transport"
)

// ThreadLevel mirrors the MPI threading levels negotiated at init
// (Section II-A). Only Multiple allows true thread concurrency.
type ThreadLevel int

const (
	// ThreadSingle: only one thread exists in the process.
	ThreadSingle ThreadLevel = iota
	// ThreadFunneled: only the thread that initialized may call.
	ThreadFunneled
	// ThreadSerialized: any thread may call, but never concurrently.
	ThreadSerialized
	// ThreadMultiple: full concurrency, the subject of this study.
	ThreadMultiple
)

func (l ThreadLevel) String() string {
	switch l {
	case ThreadSingle:
		return "MPI_THREAD_SINGLE"
	case ThreadFunneled:
		return "MPI_THREAD_FUNNELED"
	case ThreadSerialized:
		return "MPI_THREAD_SERIALIZED"
	case ThreadMultiple:
		return "MPI_THREAD_MULTIPLE"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Options configures one World. The zero value plus Defaults() reproduces
// stock Open MPI's threading design: a single shared instance and a serial
// progress engine.
type Options struct {
	// Network selects the transport backend. Nil picks the default
	// simulated fabric (see internal/backends). The backend's capability
	// flags adjust the stack at world construction: a Lossless backend
	// skips the reliability layer, and fault/scramble options require
	// FaultInjection support.
	Network transport.Network
	// NumInstances is the number of Communication Resource Instances per
	// process (the MCA-parameter hint of Section III-B). 0 means 1.
	// Capped by the machine's hardware context limit.
	NumInstances int
	// Assignment is the thread-to-instance strategy (Algorithm 1).
	Assignment cri.Assignment
	// Progress selects serial (stock) or concurrent (Algorithm 2).
	Progress progress.Mode
	// ThreadLevel is the negotiated threading level; calls are checked
	// against it. Defaults to ThreadMultiple.
	ThreadLevel ThreadLevel
	// QueueDepth sizes transport queues (0 = default 4096).
	QueueDepth int
	// BigLock serializes every MPI entry point behind one process-wide
	// lock — the "global critical section" design some implementations
	// use, the worst comparator in Fig. 5.
	BigLock bool
	// DisableSPCs turns off software performance counters.
	DisableSPCs bool
	// Telemetry attaches the latency-histogram layer (internal/telemetry):
	// match-section time, instance-lock wait, progress-pass duration, and
	// eager inject-to-match message latency, exportable in Prometheus text
	// format. Off by default; every hook is a single branch when off.
	Telemetry bool
	// TraceCapacity, when positive, attaches an event tracer retaining
	// about this many recent message-path events per process
	// (see internal/trace).
	TraceCapacity int
	// TraceWire enables cross-process message-lifecycle tracing: every
	// eager send carries a deterministic trace id, origin rank, and send
	// timestamp (the transport.FlagTraced wire extension), receivers stitch
	// the lifecycle into flow-linked trace events, and the one-way-latency
	// and match-residency histograms fill (clock-corrected when the backend
	// implements transport.ClockSync). Off by default: the wire format stays
	// byte-identical to the paper-faithful framing. Pair with TraceCapacity
	// and/or Telemetry to retain what the tracing produces.
	TraceWire bool
	// Latency attaches the per-message critical-path attribution layer
	// (internal/latency): every traced message's end-to-end latency is
	// decomposed into lifecycle stages (CRI acquire, wire write, transit,
	// delivery wait, match, completion) recorded as per-stage histograms plus
	// a bounded tail-exemplar reservoir per rank, served at /debug/latency
	// and exported as mpi_latency_stage_* families. Implies TraceWire (the
	// stages are anchored on the trace extension's send stamp). Off by
	// default; every hook is a single branch when off.
	Latency bool
	// LatencyExemplars bounds the tail-exemplar reservoir
	// (0 = latency.DefaultExemplars). Latency mode only.
	LatencyExemplars int
	// Profile attaches the contention-and-phase profiler (internal/prof):
	// every serialization point — instance locks, the serial progress lock,
	// per-communicator matching locks, the reliability window, the big
	// lock — records acquisitions, contended waits, and hold time, and every
	// Thread carries a phase clock decomposing its wall time into the
	// paper's breakdown categories. Off by default; when off every hook is
	// a single branch (see prof package docs).
	Profile bool
	// HashMatching replaces the OB1-style list matching engine with the
	// hash-based engine (O(1) exact matching; see match.HashEngine) — the
	// optimized-matching direction the paper's Section III-F leaves out of
	// scope.
	HashMatching bool
	// MatchShards, when positive, replaces the externally locked matching
	// engine with the internally synchronized sharded engine
	// (match.Sharded): posted/unexpected state is hash-partitioned by
	// (source, tag) into about this many shards (rounded up to a power of
	// two) and the communicator-wide matching lock disappears entirely.
	// Takes precedence over HashMatching. 0 keeps the paper-faithful
	// single-lock engines.
	MatchShards int
	// ProgressThread dedicates one runtime-owned thread per process to
	// completion extraction — the software-offload design of Vaidyanathan
	// et al. [20] the paper's related work discusses. Application threads
	// stop driving the progress engine; they only wait. Orthogonal to the
	// CRI knobs: the offload thread still uses the configured progress
	// mode over the instance pool.
	ProgressThread bool
	// EagerLimit is the maximum payload carried eagerly; larger messages
	// use the rendezvous protocol. 0 selects the default (8 KiB).
	// Negative disables rendezvous entirely (everything eager).
	EagerLimit int
	// ScrambleWindow, when positive, installs an adversarial packet
	// scrambler on every device: inbound delivery is reordered within a
	// window of this many packets (deterministic, seeded by ScrambleSeed).
	// Real networks guarantee no ordering (Section II-C); the scrambler
	// exercises the sequence-validation and out-of-sequence buffering
	// paths under worst-case delivery. Testing/failure-injection only.
	ScrambleWindow int
	// ScrambleSeed seeds the scrambler (0 = 1).
	ScrambleSeed int64
	// FaultDrop is the per-packet probability the wire silently drops an
	// outbound packet (see transport.FaultConfig). Any non-zero fault
	// probability auto-enables the Reliable delivery layer.
	FaultDrop float64
	// FaultDup is the per-packet duplication probability.
	FaultDup float64
	// FaultDelay is the per-packet probability of a delayed (reordered)
	// delivery.
	FaultDelay float64
	// FaultDelayDur is how long a delayed packet is held
	// (0 = transport.DefaultFaultDelay).
	FaultDelayDur time.Duration
	// FaultSeed seeds the per-proc fault RNGs (0 = 1; proc rank is mixed in
	// so ranks draw decorrelated streams).
	FaultSeed int64
	// Reliable enables the ack/retransmit delivery layer (see
	// reliability.go) even without fault injection. Auto-enabled when any
	// Fault* probability is non-zero.
	Reliable bool
	// RetransmitTimeout is the base retransmission timeout, doubled per
	// retry (0 = DefaultRetransmitTimeout). Reliable mode only.
	RetransmitTimeout time.Duration
	// RetryBudget is how many retransmissions are attempted before a send
	// fails with ErrPeerUnreachable (0 = DefaultRetryBudget).
	RetryBudget int
	// FlightCapacity, when positive, attaches the flight recorder
	// (internal/flight): every thread, every communicator's matching
	// engine, the reliability layer, and each CRI's lock-wait path record
	// their last ~FlightCapacity message-path events into lock-free rings
	// for watchdog/crash dumps and /debug/flight. Off (0) by default;
	// every hook is a single branch when off.
	FlightCapacity int
	// FlightLockWaitThreshold is the minimum contended instance-lock wait
	// recorded as a flight lock-wait event
	// (0 = flight.DefaultLockWaitThreshold). Flight recorder only.
	FlightLockWaitThreshold time.Duration
}

// DefaultEagerLimit is the eager/rendezvous switchover when unspecified.
const DefaultEagerLimit = 8192

// withDefaults normalizes zero values.
func (o Options) withDefaults(m hw.Machine) Options {
	if o.NumInstances <= 0 {
		o.NumInstances = 1
	}
	if max := m.MaxContexts; max > 0 && o.NumInstances > max {
		o.NumInstances = max
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.EagerLimit == 0 {
		o.EagerLimit = DefaultEagerLimit
	}
	if o.Latency {
		// Stage attribution is anchored on the trace extension's send stamp,
		// so traced wires are a prerequisite, not an independent choice.
		o.TraceWire = true
	}
	if o.FaultDrop > 0 || o.FaultDup > 0 || o.FaultDelay > 0 {
		// An imperfect wire without the reliability layer would hang
		// waiters on the first dropped packet.
		o.Reliable = true
	}
	if o.Reliable {
		if o.RetransmitTimeout <= 0 {
			o.RetransmitTimeout = DefaultRetransmitTimeout
		}
		if o.RetryBudget <= 0 {
			o.RetryBudget = DefaultRetryBudget
		}
	}
	return o
}

// Stock returns the configuration of unmodified Open MPI threading:
// one instance, serial progress.
func Stock() Options {
	return Options{NumInstances: 1, Progress: progress.Serial, ThreadLevel: ThreadMultiple}
}

// CRIs returns the paper's concurrent-sends configuration: n instances with
// the given assignment, serial progress (Fig. 3a).
func CRIs(n int, a cri.Assignment) Options {
	return Options{NumInstances: n, Assignment: a, Progress: progress.Serial, ThreadLevel: ThreadMultiple}
}

// CRIsConcurrent adds the concurrent progress engine (Fig. 3b/3c).
func CRIsConcurrent(n int, a cri.Assignment) Options {
	return Options{NumInstances: n, Assignment: a, Progress: progress.Concurrent, ThreadLevel: ThreadMultiple}
}
