package core

import (
	"fmt"
	"sort"
)

// Sendrecv performs a combined send and receive (MPI_Sendrecv): the send to
// dst and the receive from src proceed concurrently, so symmetric exchanges
// cannot deadlock.
func (c *Comm) Sendrecv(th *Thread, dst int, sendTag int32, sendBuf []byte,
	src int, recvTag int32, recvBuf []byte) (Status, error) {
	rreq, err := c.Irecv(th, src, recvTag, recvBuf)
	if err != nil {
		return Status{}, err
	}
	sreq, err := c.Isend(th, dst, sendTag, sendBuf)
	if err != nil {
		return Status{}, err
	}
	if err := sreq.Wait(th); err != nil {
		return Status{}, err
	}
	err = rreq.Wait(th)
	return rreq.Status(), err
}

// Ssend is the synchronous-mode send (MPI_Ssend): it completes only after
// the receiver has matched the message, regardless of size. Implemented by
// forcing the rendezvous path, whose FIN round-trip carries exactly that
// guarantee.
func (c *Comm) Ssend(th *Thread, dst int, tag int32, buf []byte) error {
	p := c.proc
	if th.proc != p {
		panic("core: Ssend with a thread from a different proc")
	}
	if err := c.checkRank(dst, "destination"); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("core: negative tag %d is reserved", tag)
	}
	if c.group[dst] == p.rank {
		// Self synchronous send: semantically equal to a buffered self
		// send followed by the matching receive; deliver eagerly.
		return c.Send(th, dst, tag, buf)
	}
	p.levelGuard.enter(th)
	req, err := c.isendRendezvous(th, dst, tag, buf)
	p.levelGuard.leave()
	if err != nil {
		return err
	}
	return req.Wait(th)
}

// PersistentSend is a persistent send request (MPI_Send_init): created
// once, started many times with the same arguments. Start re-issues the
// operation; Wait completes the current incarnation.
type PersistentSend struct {
	comm *Comm
	dst  int
	tag  int32
	buf  []byte
	cur  *Request
}

// SendInit creates a persistent send (not yet started).
func (c *Comm) SendInit(dst int, tag int32, buf []byte) (*PersistentSend, error) {
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("core: negative tag %d is reserved", tag)
	}
	return &PersistentSend{comm: c, dst: dst, tag: tag, buf: buf}, nil
}

// Start begins one incarnation (MPI_Start). The previous incarnation must
// have completed.
func (ps *PersistentSend) Start(th *Thread) error {
	if ps.cur != nil && !ps.cur.Done() {
		return fmt.Errorf("core: persistent send started while active")
	}
	req, err := ps.comm.Isend(th, ps.dst, ps.tag, ps.buf)
	if err != nil {
		return err
	}
	ps.cur = req
	return nil
}

// Wait completes the current incarnation.
func (ps *PersistentSend) Wait(th *Thread) error {
	if ps.cur == nil {
		return fmt.Errorf("core: persistent send waited before Start")
	}
	return ps.cur.Wait(th)
}

// PersistentRecv is the receive-side persistent request (MPI_Recv_init).
type PersistentRecv struct {
	comm *Comm
	src  int
	tag  int32
	buf  []byte
	cur  *Request
}

// RecvInit creates a persistent receive (not yet started).
func (c *Comm) RecvInit(src int, tag int32, buf []byte) (*PersistentRecv, error) {
	if src != int(AnySource) {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	return &PersistentRecv{comm: c, src: src, tag: tag, buf: buf}, nil
}

// Start posts one incarnation.
func (pr *PersistentRecv) Start(th *Thread) error {
	if pr.cur != nil && !pr.cur.Done() {
		return fmt.Errorf("core: persistent recv started while active")
	}
	req, err := pr.comm.Irecv(th, pr.src, pr.tag, pr.buf)
	if err != nil {
		return err
	}
	pr.cur = req
	return nil
}

// Wait completes the current incarnation and returns its status.
func (pr *PersistentRecv) Wait(th *Thread) (Status, error) {
	if pr.cur == nil {
		return Status{}, fmt.Errorf("core: persistent recv waited before Start")
	}
	err := pr.cur.Wait(th)
	return pr.cur.Status(), err
}

// Split collectively partitions the communicator by color, ordering each
// new group by key then by current rank (MPI_Comm_split). colors and keys
// are indexed by current communicator rank; a negative color leaves that
// rank out (MPI_UNDEFINED). The result maps each member rank of the
// original communicator to its handle in its new communicator (nil for
// undefined colors). Like Dup, this is the shared-address-space collective:
// one call performs the operation for every member.
func (c *Comm) Split(colors, keys []int) ([]*Comm, error) {
	n := len(c.group)
	if len(colors) != n || len(keys) != n {
		return nil, fmt.Errorf("core: Split needs %d colors and keys, got %d/%d", n, len(colors), len(keys))
	}
	// Group ranks by color.
	byColor := map[int][]int{} // color -> member comm-ranks
	for r, col := range colors {
		if col < 0 {
			continue
		}
		byColor[col] = append(byColor[col], r)
	}
	out := make([]*Comm, n)
	// Deterministic iteration: sort colors.
	cols := make([]int, 0, len(byColor))
	for col := range byColor {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		members := byColor[col]
		sort.SliceStable(members, func(i, j int) bool {
			return keys[members[i]] < keys[members[j]]
		})
		worldRanks := make([]int, len(members))
		for i, r := range members {
			worldRanks[i] = c.group[r]
		}
		comms, err := c.proc.world.NewCommWithInfo(worldRanks, c.info)
		if err != nil {
			return nil, err
		}
		for i, r := range members {
			out[r] = comms[i]
		}
	}
	return out, nil
}
