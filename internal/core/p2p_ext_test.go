package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/spc"
)

func TestSendrecvSymmetricExchange(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			th := w.Proc(me).NewThread()
			c := w.Proc(me).CommWorld()
			peer := 1 - me
			out := []byte{byte('A' + me)}
			in := make([]byte, 1)
			// Both ranks Sendrecv simultaneously: must not deadlock.
			st, err := c.Sendrecv(th, peer, 1, out, peer, 1, in)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Source != int32(peer) {
				t.Errorf("rank %d: status source %d", me, st.Source)
			}
			results[me] = append([]byte(nil), in...)
		}(me)
	}
	wg.Wait()
	if results[0][0] != 'B' || results[1][0] != 'A' {
		t.Fatalf("exchange results = %q %q", results[0], results[1])
	}
}

func TestSsendCompletesOnlyAfterMatch(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	matched := make(chan struct{})
	sent := make(chan error, 1)
	go func() {
		sent <- c0.Ssend(t0, 1, 1, []byte("sync"))
	}()
	// The sender must not complete before the receive is posted. Drive the
	// receiver's progress a while with no posted receive.
	for i := 0; i < 100; i++ {
		t1.Progress()
		select {
		case <-sent:
			t.Fatal("Ssend completed before the receive was posted")
		default:
		}
	}
	go func() {
		buf := make([]byte, 8)
		if _, err := c1.Recv(t1, 0, 1, buf); err != nil {
			t.Error(err)
		}
		close(matched)
	}()
	<-matched
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
}

func TestSsendSelf(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	done := make(chan error, 1)
	go func() { done <- c.Ssend(th, 0, 1, []byte("x")) }()
	buf := make([]byte, 1)
	th2 := w.Proc(0).NewThread()
	if _, err := c.Recv(th2, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSsendValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	if err := c.Ssend(th, 9, 1, nil); err == nil {
		t.Fatal("Ssend to invalid rank succeeded")
	}
	if err := c.Ssend(th, 1, -3, nil); err == nil {
		t.Fatal("Ssend with negative tag succeeded")
	}
}

func TestPersistentSendRecv(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	sendBuf := make([]byte, 4)
	recvBuf := make([]byte, 4)
	ps, err := c0.SendInit(1, 7, sendBuf)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c1.RecvInit(0, 7, recvBuf)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := pr.Start(t1); err != nil {
				done <- err
				return
			}
			st, err := pr.Wait(t1)
			if err != nil {
				done <- err
				return
			}
			if recvBuf[0] != byte(i) || st.Count != 4 {
				done <- errOrderPersistent(i, recvBuf[0])
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < rounds; i++ {
		sendBuf[0] = byte(i)
		if err := ps.Start(t0); err != nil {
			t.Fatal(err)
		}
		if err := ps.Wait(t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type errPersist struct{ want, got int }

func errOrderPersistent(want int, got byte) error { return errPersist{want, int(got)} }
func (e errPersist) Error() string                { return "persistent recv out of order" }

func TestPersistentMisuse(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0 := w.Proc(0).NewThread()
	c0 := w.Proc(0).CommWorld()
	ps, err := c0.SendInit(1, 1, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Wait(t0); err == nil {
		t.Fatal("Wait before Start succeeded")
	}
	if _, err := c0.SendInit(5, 1, nil); err == nil {
		t.Fatal("SendInit to invalid rank succeeded")
	}
	pr, err := c0.RecvInit(int(AnySource), AnyTag, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Wait(t0); err == nil {
		t.Fatal("recv Wait before Start succeeded")
	}
}

func TestSplitByParity(t *testing.T) {
	w := newTestWorld(t, 4, Stock())
	world := w.Proc(0).CommWorld()
	colors := []int{0, 1, 0, 1} // evens and odds
	keys := []int{0, 0, 1, 1}
	subs, err := world.Split(colors, keys)
	if err != nil {
		t.Fatal(err)
	}
	// World rank 0,2 -> color 0 comm with ranks 0,1; world 1,3 -> color 1.
	if subs[0].Size() != 2 || subs[0].Rank() != 0 {
		t.Fatalf("subs[0] = %v", subs[0])
	}
	if subs[2].Rank() != 1 {
		t.Fatalf("subs[2] rank = %d, want 1", subs[2].Rank())
	}
	if subs[1].ID() == subs[0].ID() {
		t.Fatal("different colors share a communicator id")
	}
	// Traffic within a color works with sub-ranks.
	t0 := w.Proc(0).NewThread()
	t2 := w.Proc(2).NewThread()
	go func() { _ = subs[0].Send(t0, 1, 3, []byte("even")) }()
	buf := make([]byte, 8)
	st, err := subs[2].Recv(t2, 0, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:st.Count]) != "even" {
		t.Fatalf("split traffic = %q", buf[:st.Count])
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	w := newTestWorld(t, 3, Stock())
	world := w.Proc(0).CommWorld()
	// All one color; keys reverse the rank order.
	subs, err := world.Split([]int{0, 0, 0}, []int{30, 20, 10})
	if err != nil {
		t.Fatal(err)
	}
	if subs[2].Rank() != 0 || subs[1].Rank() != 1 || subs[0].Rank() != 2 {
		t.Fatalf("key ordering: ranks = %d %d %d", subs[0].Rank(), subs[1].Rank(), subs[2].Rank())
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := newTestWorld(t, 3, Stock())
	world := w.Proc(0).CommWorld()
	subs, err := world.Split([]int{0, -1, 0}, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if subs[1] != nil {
		t.Fatal("undefined color got a communicator")
	}
	if subs[0] == nil || subs[0].Size() != 2 {
		t.Fatalf("defined colors wrong: %v", subs[0])
	}
}

func TestSplitValidation(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	if _, err := w.Proc(0).CommWorld().Split([]int{0}, []int{0, 0}); err == nil {
		t.Fatal("mismatched colors length accepted")
	}
}

// TestScrambledDeliveryPreservesFIFO is the failure-injection test: with an
// adversarial packet scrambler on every device, the sequence-validation
// layer must still deliver per-sender FIFO order, exactly once.
func TestScrambledDeliveryPreservesFIFO(t *testing.T) {
	opts := CRIsConcurrent(2, cri.Dedicated)
	opts.ScrambleWindow = 8
	opts.ScrambleSeed = 99
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	const msgs = 300
	go func() {
		for i := 0; i < msgs; i++ {
			if err := c0.Send(t0, 1, 1, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 2)
	for i := 0; i < msgs; i++ {
		if _, err := c1.Recv(t1, 0, 1, buf); err != nil {
			t.Fatal(err)
		}
		got := int(buf[0]) | int(buf[1])<<8
		if got != i {
			t.Fatalf("message %d arrived as %d under scrambling", i, got)
		}
	}
	// The scrambler must actually have produced out-of-sequence arrivals,
	// or this test proves nothing.
	if oos := w.Proc(1).SPCSnapshot().Get(spc.OutOfSequence); oos == 0 {
		t.Fatal("scrambler produced zero out-of-sequence messages")
	}
}

// TestScrambledRendezvous: protocol control messages (RTS/ACK/FIN) also ride
// scrambled channels; large transfers must still complete intact.
func TestScrambledRendezvous(t *testing.T) {
	opts := Stock()
	opts.EagerLimit = 32
	opts.ScrambleWindow = 4
	opts.ScrambleSeed = 7
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	msg := bytes.Repeat([]byte{0xAB}, 500)
	go func() {
		if err := w.Proc(0).CommWorld().Send(t0, 1, 1, msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 512)
	st, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 500 || !bytes.Equal(buf[:500], msg) {
		t.Fatal("rendezvous payload corrupted under scrambling")
	}
}
