package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cri"
	"repro/internal/progress"
)

// TestQuickRandomTrafficConserved: for random (seeded) traffic matrices —
// any number of procs, random sources/destinations/tags/sizes — every
// message is delivered exactly once with intact payload.
func TestQuickRandomTrafficConserved(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2-4 procs
		opts := Options{
			NumInstances: 1 + rng.Intn(3),
			Assignment:   cri.Assignment(rng.Intn(2)),
			Progress:     progress.Mode(rng.Intn(2)),
			ThreadLevel:  ThreadMultiple,
			EagerLimit:   16 + rng.Intn(64), // force some rendezvous
		}
		w, err := NewWorld(hwFast(), n, opts)
		if err != nil {
			t.Log(err)
			return false
		}
		defer w.Close()

		// Build a random traffic plan: each directed (src,dst) pair gets a
		// random number of messages with deterministic payloads.
		type flow struct{ src, dst, count int }
		var flows []flow
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				flows = append(flows, flow{s, d, rng.Intn(12)})
			}
		}
		payload := func(src, dst, i int) []byte {
			ln := 1 + (src*31+dst*17+i*13)%100
			b := make([]byte, ln)
			for k := range b {
				b[k] = byte(src ^ dst ^ i ^ k)
			}
			return b
		}

		var wg sync.WaitGroup
		okCh := make(chan bool, 2*len(flows))
		for _, f := range flows {
			f := f
			wg.Add(2)
			go func() { // sender
				defer wg.Done()
				th := w.Proc(f.src).NewThread()
				c := w.Proc(f.src).CommWorld()
				for i := 0; i < f.count; i++ {
					if err := c.Send(th, f.dst, int32(f.src*100+f.dst), payload(f.src, f.dst, i)); err != nil {
						okCh <- false
						return
					}
				}
				okCh <- true
			}()
			go func() { // receiver
				defer wg.Done()
				th := w.Proc(f.dst).NewThread()
				c := w.Proc(f.dst).CommWorld()
				buf := make([]byte, 128)
				for i := 0; i < f.count; i++ {
					st, err := c.Recv(th, f.src, int32(f.src*100+f.dst), buf)
					if err != nil {
						okCh <- false
						return
					}
					if !bytes.Equal(buf[:st.Count], payload(f.src, f.dst, i)) {
						okCh <- false
						return
					}
				}
				okCh <- true
			}()
		}
		wg.Wait()
		close(okCh)
		for ok := range okCh {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBarrierNeverLosesRanks: random world sizes, every rank reaches
// the barrier before any rank leaves it.
func TestQuickBarrierNeverLosesRanks(t *testing.T) {
	prop := func(sizeSeed uint8) bool {
		n := 1 + int(sizeSeed%6)
		w, err := NewWorld(hwFast(), n, Stock())
		if err != nil {
			return false
		}
		defer w.Close()
		var mu sync.Mutex
		arrived := 0
		violated := false
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				th := w.Proc(r).NewThread()
				mu.Lock()
				arrived++
				mu.Unlock()
				if err := w.Proc(r).CommWorld().Barrier(th); err != nil {
					mu.Lock()
					violated = true
					mu.Unlock()
					return
				}
				mu.Lock()
				if arrived != n {
					violated = true
				}
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		return !violated
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEagerRendezvousBoundary: messages straddling the eager limit
// (limit-1, limit, limit+1, 2*limit) all round-trip intact.
func TestQuickEagerRendezvousBoundary(t *testing.T) {
	prop := func(limSeed uint8) bool {
		limit := 8 + int(limSeed%120)
		opts := Stock()
		opts.EagerLimit = limit
		w, err := NewWorld(hwFast(), 2, opts)
		if err != nil {
			return false
		}
		defer w.Close()
		t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
		sizes := []int{limit - 1, limit, limit + 1, 2 * limit, 0}
		done := make(chan bool, 1)
		go func() {
			c := w.Proc(0).CommWorld()
			for i, sz := range sizes {
				msg := bytes.Repeat([]byte{byte(i + 1)}, sz)
				if err := c.Send(t0, 1, int32(i), msg); err != nil {
					done <- false
					return
				}
			}
			done <- true
		}()
		c := w.Proc(1).CommWorld()
		buf := make([]byte, 4*256+16)
		for i, sz := range sizes {
			st, err := c.Recv(t1, 0, int32(i), buf)
			if err != nil || st.Count != sz {
				return false
			}
			for k := 0; k < sz; k++ {
				if buf[k] != byte(i+1) {
					return false
				}
			}
		}
		return <-done
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestManyCommunicatorsIsolated: traffic on k communicators with identical
// (source, tag) coordinates never crosses.
func TestManyCommunicatorsIsolated(t *testing.T) {
	const k = 6
	w, err := NewWorld(hwFast(), 2, CRIsConcurrent(4, cri.Dedicated))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms := make([][]*Comm, k)
	for i := range comms {
		comms[i], err = w.NewComm([]int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for m := 0; m < 50; m++ {
				if err := comms[i][0].Send(th, 1, 1, []byte{byte(i), byte(m)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 2)
			for m := 0; m < 50; m++ {
				if _, err := comms[i][1].Recv(th, 0, 1, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i) || buf[1] != byte(m) {
					t.Errorf("comm %d: message (%d,%d) crossed or reordered", i, buf[0], buf[1])
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestBidirectionalTraffic: both directions on one pair simultaneously —
// the full-duplex case the pairwise benchmark doesn't cover.
func TestBidirectionalTraffic(t *testing.T) {
	w, err := NewWorld(hwFast(), 2, CRIsConcurrent(2, cri.Dedicated))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const msgs = 200
	run := func(me, peer int) error {
		th := w.Proc(me).NewThread()
		c := w.Proc(me).CommWorld()
		var sendErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			th2 := w.Proc(me).NewThread()
			for i := 0; i < msgs; i++ {
				if err := c.Send(th2, peer, 1, []byte{byte(i)}); err != nil {
					sendErr = err
					return
				}
			}
		}()
		buf := make([]byte, 1)
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(th, peer, 1, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("rank %d: got %d want %d", me, buf[0], i)
			}
		}
		wg.Wait()
		return sendErr
	}
	errCh := make(chan error, 2)
	go func() { errCh <- run(0, 1) }()
	go func() { errCh <- run(1, 0) }()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
