package core

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/transport"
)

// ErrPeerUnreachable reports a tracked packet abandoned after the
// retransmit budget was exhausted: the runtime stops retrying and surfaces
// the failure to the caller instead of hanging.
var ErrPeerUnreachable = errors.New("core: peer unreachable (retransmit budget exhausted)")

// DefaultRetransmitTimeout is the base retransmission timeout when
// Options.RetransmitTimeout is unset. Each retry doubles it (capped at
// relMaxRTO).
const DefaultRetransmitTimeout = time.Millisecond

// DefaultRetryBudget is the default number of retransmissions attempted
// before a packet is abandoned with ErrPeerUnreachable.
const DefaultRetryBudget = 10

// relSweepTick bounds how often any one thread scans for expired
// retransmit timers; between ticks maybeSweep is one atomic load.
const relSweepTick = 200 * time.Microsecond

// relMaxRTO caps the exponential backoff.
const relMaxRTO = 100 * time.Millisecond

// Delivery-reliability protocol (enabled by Options.Reliable, which fault
// injection turns on automatically):
//
//   - Every tracked outbound packet carries a transport-level sequence
//     number per (sender, destination) pair in its driver metadata
//     (Packet.RelSeq/RelSrc) — separate from the matching layer's
//     per-communicator sequence, exactly as a BTL-level reliability window
//     is separate from PML matching in Open MPI.
//   - The receiver acks every tracked packet with a KindAck control packet
//     carrying {cumulative ack, selective ack}; duplicates (already under
//     the cumulative mark or already buffered) are counted, re-acked (the
//     original ack may have been lost), and dropped before matching.
//   - The sender keeps unacked packets in a per-peer window and, on a
//     coarse tick driven by the progress engine, retransmits entries whose
//     exponentially backed-off timeout expired. After RetryBudget
//     retransmissions the entry is abandoned: its request (or fail hook)
//     completes with ErrPeerUnreachable.
//
// The ack claim — removing an entry from the unacked map under the mutex —
// is exclusive, so a late ack racing the failure sweep can never complete
// a request twice.

// relEntry is one unacked tracked packet.
type relEntry struct {
	pkt      *transport.Packet
	dstWorld int
	// req, when non-nil, completes with nil on ack and ErrPeerUnreachable
	// on abandonment (eager sends).
	req *Request
	// fail, when non-nil, runs instead of req completion on abandonment —
	// control packets (rendezvous RTS/ACK) clean their protocol state here.
	fail    func(error)
	sentAt  time.Time
	retries int
}

// relSendPeer is the send-side window toward one peer, guarded by its own
// stripe lock: two threads sending to different peers never serialize on
// reliability state (the "reliability.window" slice in the breakdown used
// to be one process-wide lock).
type relSendPeer struct {
	mu      prof.Mutex
	nextSeq uint64
	unacked map[uint64]*relEntry
}

// relRecvPeer is the receive-side dedup state for one peer: the cumulative
// in-order mark plus the set of out-of-order sequences already seen. Also
// stripe-locked per peer.
type relRecvPeer struct {
	mu  prof.Mutex
	cum uint64
	ooo map[uint64]struct{}
}

// relNextSeq advances a reliability sequence, skipping 0: RelSeq 0 is the
// wire sentinel for "untracked packet", so after the uint64 counter wraps
// the stream continues at 1. Sender (track) and receiver (acceptData) both
// step with this function, keeping the two sides in lockstep across the
// wrap.
func relNextSeq(s uint64) uint64 {
	s++
	if s == 0 {
		s = 1
	}
	return s
}

// relSeqBefore reports whether a precedes-or-equals b in serial (modular)
// order — the uint64 analogue of the matching layer's int32(a-b) test.
// Plain <= would misclassify every post-wrap sequence as ancient.
func relSeqBeforeOrEq(a, b uint64) bool { return int64(a-b) <= 0 }

// reliability is one proc's delivery-reliability state. All methods are
// safe for concurrent use; a nil *reliability ignores every call, so hot
// paths need no enabled checks.
type reliability struct {
	proc   *Proc
	rto    time.Duration
	budget int

	// send/recv are the per-peer stripes; each carries its own lock, all
	// profiled under the one "reliability.window" site so the breakdown
	// still reports reliability contention as a single line.
	send []relSendPeer // indexed by destination world rank
	recv []relRecvPeer // indexed by source world rank
	site *prof.Site

	lastSweep atomic.Int64
}

func newReliability(p *Proc, rto time.Duration, budget int) *reliability {
	return &reliability{proc: p, rto: rto, budget: budget}
}

// bindProfSite attaches the profiler site shared by every stripe lock.
func (r *reliability) bindProfSite(s *prof.Site) {
	if r == nil {
		return
	}
	r.site = s
	for i := range r.send {
		r.send[i].mu.Bind(s)
	}
	for i := range r.recv {
		r.recv[i].mu.Bind(s)
	}
}

// initPeers sizes the per-peer tables once the world size is known.
func (r *reliability) initPeers(n int) {
	if r == nil {
		return
	}
	r.send = make([]relSendPeer, n)
	r.recv = make([]relRecvPeer, n)
	for i := range r.send {
		r.send[i].mu.Bind(r.site)
	}
	for i := range r.recv {
		r.recv[i].mu.Bind(r.site)
	}
}

// track registers an outbound packet for ack/retransmit, assigning its
// transport sequence number. Must be called before the packet is injected.
// req (if non-nil) is marked reliable: its send completion shifts from the
// local CQE to the peer's ack.
func (r *reliability) track(pkt *transport.Packet, dstWorld int, req *Request, fail func(error)) {
	if r == nil {
		return
	}
	if req != nil {
		req.reliable = true
	}
	now := time.Now()
	sp := &r.send[dstWorld]
	sp.mu.Lock()
	sp.nextSeq = relNextSeq(sp.nextSeq)
	pkt.RelSeq = sp.nextSeq
	pkt.RelSrc = int32(r.proc.rank)
	if sp.unacked == nil {
		sp.unacked = make(map[uint64]*relEntry)
	}
	sp.unacked[sp.nextSeq] = &relEntry{
		pkt: pkt, dstWorld: dstWorld, req: req, fail: fail, sentAt: now,
	}
	sp.mu.Unlock()
}

// acceptData runs receive-side dedup on a tracked inbound packet and acks
// it. It reports whether the packet is fresh (deliver it) or a duplicate
// (counted and dropped; the ack is re-sent because the original may have
// been lost on the wire).
func (r *reliability) acceptData(pkt *transport.Packet) bool {
	src := int(pkt.RelSrc)
	seq := pkt.RelSeq
	rp := &r.recv[src]
	rp.mu.Lock()
	fresh := false
	// Serial (modular) comparison: a sequence "after" cum is fresh even
	// when the uint64 counter has wrapped past cum numerically.
	if !relSeqBeforeOrEq(seq, rp.cum) {
		if _, seen := rp.ooo[seq]; !seen {
			fresh = true
			if seq == relNextSeq(rp.cum) {
				rp.cum = seq
				for {
					next := relNextSeq(rp.cum)
					if _, ok := rp.ooo[next]; !ok {
						break
					}
					delete(rp.ooo, next)
					rp.cum = next
				}
			} else {
				if rp.ooo == nil {
					rp.ooo = make(map[uint64]struct{})
				}
				rp.ooo[seq] = struct{}{}
			}
		}
	}
	cum := rp.cum
	rp.mu.Unlock()
	if !fresh {
		r.proc.spcs.Inc(spc.DuplicatePackets)
	}
	r.sendAck(src, cum, seq)
	return fresh
}

// sendAck injects a {cumulative, selective} acknowledgement toward
// dstWorld. Acks are not themselves tracked (no acks of acks): a lost ack
// is repaired by the peer's retransmission, which re-triggers this path.
func (r *reliability) sendAck(dstWorld int, cum, sel uint64) {
	p := r.proc
	var payload [16]byte
	binary.LittleEndian.PutUint64(payload[0:], cum)
	binary.LittleEndian.PutUint64(payload[8:], sel)
	env := transport.Envelope{
		Src: int32(p.rank), Dst: int32(dstWorld), Kind: transport.KindAck,
	}
	// An unsendable ack is repaired by the peer's retransmission, which
	// re-triggers this path — same recovery as a lost ack on the wire.
	_ = p.sendControl(dstWorld, transport.NewPacketRaw(env, payload[:], nil))
	p.spcs.Inc(spc.AcksSent)
	p.flightRing.Record(flight.KindAckSent, 0, int32(dstWorld), int32(uint32(cum)))
}

// handleAck retires every unacked entry covered by the ack's cumulative
// mark, plus the selectively acked sequence, completing their requests.
func (r *reliability) handleAck(pkt *transport.Packet) {
	if r == nil || len(pkt.Payload) < 16 {
		return
	}
	src := int(pkt.Envelope().Src) // acking peer's world rank
	if src < 0 || src >= len(r.send) {
		return
	}
	cum := binary.LittleEndian.Uint64(pkt.Payload[0:])
	sel := binary.LittleEndian.Uint64(pkt.Payload[8:])
	var done []*relEntry
	sp := &r.send[src]
	sp.mu.Lock()
	for seq, e := range sp.unacked {
		if relSeqBeforeOrEq(seq, cum) || seq == sel {
			delete(sp.unacked, seq)
			done = append(done, e)
		}
	}
	sp.mu.Unlock()
	r.proc.spcs.Inc(spc.AcksReceived)
	r.proc.flightRing.Record(flight.KindAckRecv, 0, int32(src), int32(len(done)))
	for _, e := range done {
		if e.req != nil {
			e.req.finish(nil)
		}
	}
}

// maybeSweep runs the retransmit sweep if a tick has elapsed since the last
// one; the CAS ensures exactly one of the threads racing a tick boundary
// pays for the scan. Nil-safe: disabled reliability costs one pointer test.
// The elected sweeper's scan is charged to its retransmit phase.
func (r *reliability) maybeSweep(clk *prof.ThreadClock) {
	if r == nil {
		return
	}
	now := time.Now()
	last := r.lastSweep.Load()
	if now.UnixNano()-last < int64(relSweepTick) || !r.lastSweep.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	clk.Begin(prof.PhaseRetransmit)
	r.sweep(now)
	clk.End()
}

// sweep retransmits every entry whose backed-off timeout expired and
// abandons entries that exhausted the retry budget. Injection and failure
// callbacks run outside the mutex.
func (r *reliability) sweep(now time.Time) {
	p := r.proc
	type redo struct {
		pkt     *transport.Packet
		dst     int
		retries int
	}
	var (
		again  []redo
		failed []*relEntry
	)
	// One stripe at a time: the sweep no longer freezes every send path
	// behind a process-wide window lock while it scans.
	for i := range r.send {
		sp := &r.send[i]
		sp.mu.Lock()
		for seq, e := range sp.unacked {
			timeout := r.rto << uint(e.retries)
			if timeout > relMaxRTO || timeout <= 0 {
				timeout = relMaxRTO
			}
			if now.Sub(e.sentAt) < timeout {
				continue
			}
			if e.retries >= r.budget {
				delete(sp.unacked, seq)
				failed = append(failed, e)
				continue
			}
			e.retries++
			e.sentAt = now
			again = append(again, redo{pkt: e.pkt, dst: e.dstWorld, retries: e.retries})
		}
		sp.mu.Unlock()
	}
	for _, rd := range again {
		p.spcs.Inc(spc.Retransmits)
		p.flightRing.Record(flight.KindRetransmit, 0, int32(rd.dst), int32(rd.retries))
		p.resend(rd.dst, rd.pkt)
	}
	for _, e := range failed {
		p.spcs.Inc(spc.RetransmitFailures)
		switch {
		case e.fail != nil:
			e.fail(ErrPeerUnreachable)
		case e.req != nil:
			e.req.finish(ErrPeerUnreachable)
		}
	}
}

// windowSnapshot reports the per-peer window occupancy for the runtime
// introspection snapshot, skipping peers with no reliability traffic at
// all. Nil-safe: disabled reliability contributes nothing.
func (r *reliability) windowSnapshot() []flight.PeerWindow {
	if r == nil {
		return nil
	}
	var out []flight.PeerWindow
	for i := range r.send {
		sp := &r.send[i]
		rp := &r.recv[i]
		sp.mu.Lock()
		nextSeq, unacked := sp.nextSeq, len(sp.unacked)
		sp.mu.Unlock()
		rp.mu.Lock()
		cum, ooo := rp.cum, len(rp.ooo)
		rp.mu.Unlock()
		if nextSeq == 0 && unacked == 0 && cum == 0 && ooo == 0 {
			continue
		}
		out = append(out, flight.PeerWindow{
			Peer:    i,
			Unacked: unacked,
			NextSeq: nextSeq,
			RecvCum: cum,
			RecvOOO: ooo,
		})
	}
	return out
}

// resend re-injects a packet toward dstWorld on a round-robin instance's
// endpoint without a new send-completion CQE (the original injection
// already produced one).
func (p *Proc) resend(dstWorld int, pkt *transport.Packet) {
	inst := p.pool.Get(p.pool.NextRoundRobin())
	if ep := inst.Endpoint(dstWorld); ep != nil {
		// A failed resend is indistinguishable from a lost packet; the
		// retry budget governs, so the error is deliberately dropped.
		_ = ep.Resend(pkt)
	}
}
