package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/spc"
)

func TestRelNextSeqSkipsSentinel(t *testing.T) {
	if got := relNextSeq(0); got != 1 {
		t.Fatalf("relNextSeq(0) = %d, want 1", got)
	}
	if got := relNextSeq(5); got != 6 {
		t.Fatalf("relNextSeq(5) = %d, want 6", got)
	}
	// The wrap: MaxUint64 + 1 would be 0, the "untracked" wire sentinel,
	// so the stream must continue at 1.
	if got := relNextSeq(math.MaxUint64); got != 1 {
		t.Fatalf("relNextSeq(MaxUint64) = %d, want 1 (sentinel skipped)", got)
	}
}

func TestRelSeqSerialOrder(t *testing.T) {
	cases := []struct {
		a, b uint64
		want bool
	}{
		{1, 1, true},
		{1, 2, true},
		{2, 1, false},
		{math.MaxUint64, 1, true},  // pre-wrap precedes post-wrap
		{1, math.MaxUint64, false}, // post-wrap does NOT precede pre-wrap
		{math.MaxUint64 - 10, math.MaxUint64, true},
	}
	for _, c := range cases {
		if got := relSeqBeforeOrEq(c.a, c.b); got != c.want {
			t.Errorf("relSeqBeforeOrEq(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestReliabilityWraparound is the ISSUE 7 regression test for the
// reliability window: seed the sender's per-peer transport sequence and the
// receiver's cumulative mark just below 2^64 and push messages across the
// wrap. With the old plain `>` / `== cum+1` comparisons every post-wrap
// packet would be misclassified as a duplicate and dropped (and RelSeq 0
// would collide with the "untracked" sentinel); with serial arithmetic all
// messages deliver exactly once.
func TestReliabilityWraparound(t *testing.T) {
	const start = math.MaxUint64 - 3 // four pre-wrap seqs, then the wrap
	w := newTestWorld(t, 2, Options{Reliable: true})
	p0, p1 := w.Proc(0), w.Proc(1)

	// Seed both ends of the 0 -> 1 stream near the wrap, in lockstep.
	p0.rel.send[1].nextSeq = start
	p1.rel.recv[0].cum = start

	c0, c1 := p0.CommWorld(), p1.CommWorld()
	t0, t1 := p0.NewThread(), p1.NewThread()

	const n = 10 // crosses the wrap mid-run
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := c0.Send(t0, 1, int32(i), []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		buf := make([]byte, 4)
		st, err := c1.Recv(t1, 0, int32(i), buf)
		if err != nil {
			t.Fatalf("recv %d across wrap: %v", i, err)
		}
		if st.Count != 1 || buf[0] != byte(i) {
			t.Fatalf("recv %d delivered %v", i, buf[:st.Count])
		}
	}
	wg.Wait()

	if dup := p1.spcs.Get(spc.DuplicatePackets); dup != 0 {
		t.Fatalf("receiver counted %d duplicate packets across the wrap (serial-arithmetic bug)", dup)
	}
	// The sender's counter wrapped and skipped the sentinel: it must now be
	// small and nonzero, and the receiver tracked it in lockstep.
	p0.rel.send[1].mu.Lock()
	next := p0.rel.send[1].nextSeq
	p0.rel.send[1].mu.Unlock()
	if next == 0 || next > uint64(n) {
		t.Fatalf("sender nextSeq = %d after wrap, want in (0, %d]", next, n)
	}
}
