package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/match"
	"repro/internal/trace"
)

// Rendezvous protocol for payloads above the eager limit:
//
//	sender                         receiver
//	  RTS (envelope, matched) ───────▶ match against posted receives
//	                                   register sink region
//	  put data ◀────────────────────── ACK {rdv id, region, sink len}
//	  (RDMA write into sink)
//	  FIN {rdv id} ──────────────────▶ complete receive, deregister
//
// The RTS is an ordinary matched envelope, so rendezvous and eager traffic
// share one sequence stream and FIFO semantics. ACK and FIN are control
// packets that bypass matching, delivered through the same progress engine.

type rdvSend struct {
	req      *Request
	buf      []byte
	dstWorld int
}

type rdvKey struct {
	srcWorld int
	id       uint64
}

type rdvRecv struct {
	req    *Request
	region *fabric.MemRegion
	total  int
	sink   int
	src    int32 // sender's communicator rank
	tag    int32
}

func (c *Comm) isendRendezvous(th *Thread, dst int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	req := &Request{proc: p, kind: reqRendezvousSend}
	id := p.rdvNext.Add(1)
	p.rdvMu.Lock()
	p.rdvSends[id] = &rdvSend{req: req, buf: buf, dstWorld: c.group[dst]}
	p.rdvMu.Unlock()

	seq := c.seq.Next(int32(dst))
	env := fabric.Envelope{
		Src: int32(c.myRank), Dst: int32(dst), Tag: tag,
		Comm: c.id, Seq: seq, Len: uint32(len(buf)), Kind: fabric.KindRendezvousRTS,
	}
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	pkt := fabric.NewPacketRaw(env, idb[:], req)

	inst := p.pool.ForThread(&th.ts)
	inst.Lock()
	inst.Endpoint(c.group[dst]).Send(pkt)
	inst.Unlock()
	return req, nil
}

// startRendezvousRecv runs on the receiver when an RTS matches a posted
// receive: register the sink and answer with an ACK.
func (c *Comm) startRendezvousRecv(req *Request, comp match.Completion) {
	p := c.proc
	env := comp.Recv.MatchedEnv
	id := binary.LittleEndian.Uint64(comp.Packet.Payload)
	total := int(env.Len)
	sink := len(req.mrecv.Buf)
	if sink > total {
		sink = total
	}
	var region *fabric.MemRegion
	if sink > 0 {
		region = p.dev.RegisterMemory(req.mrecv.Buf[:sink])
	} else {
		region = p.dev.RegisterMemory(nil)
	}
	key := rdvKey{srcWorld: c.group[env.Src], id: id}
	p.rdvMu.Lock()
	if _, dup := p.rdvRecvs[key]; dup {
		p.rdvMu.Unlock()
		panic(fmt.Sprintf("core: duplicate rendezvous id %d from world rank %d", id, key.srcWorld))
	}
	p.rdvRecvs[key] = &rdvRecv{req: req, region: region, total: total, sink: sink, src: env.Src, tag: env.Tag}
	p.rdvMu.Unlock()
	p.tracer.Emit(trace.KindRendezvousStart, env.Src, int32(total))

	// ACK: rdv id, region id, permitted sink length.
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[0:], id)
	binary.LittleEndian.PutUint64(payload[8:], region.ID())
	binary.LittleEndian.PutUint64(payload[16:], uint64(sink))
	ackEnv := fabric.Envelope{
		Src: int32(c.myRank), Dst: env.Src, Comm: c.id, Kind: fabric.KindRendezvousACK,
	}
	p.sendControl(c.group[env.Src], fabric.NewPacketRaw(ackEnv, payload[:], nil))
}

// handleRendezvousACK runs on the sender: put the data into the receiver's
// sink region and send the FIN.
func (c *Comm) handleRendezvousACK(pkt *fabric.Packet) {
	p := c.proc
	id := binary.LittleEndian.Uint64(pkt.Payload[0:])
	regionID := binary.LittleEndian.Uint64(pkt.Payload[8:])
	sink := int(binary.LittleEndian.Uint64(pkt.Payload[16:]))

	p.rdvMu.Lock()
	rs := p.rdvSends[id]
	delete(p.rdvSends, id)
	p.rdvMu.Unlock()
	if rs == nil {
		panic(fmt.Sprintf("core: rendezvous ACK for unknown id %d", id))
	}

	targetDev := p.world.procs[rs.dstWorld].dev
	region, ok := targetDev.Region(regionID)
	if !ok {
		panic(fmt.Sprintf("core: rendezvous region %d vanished", regionID))
	}
	if sink > 0 {
		// The bulk transfer is a hardware put: the fabric charges initiator
		// CPU plus wire time; no instance lock is needed because the data
		// path is offloaded (packet queues are inherently thread-safe).
		ctx := p.pool.Get(p.pool.NextRoundRobin()).Context()
		if err := ctx.Put(region, 0, rs.buf[:sink], nil); err != nil {
			panic(fmt.Sprintf("core: rendezvous put: %v", err))
		}
	}

	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	env := pkt.Envelope()
	finEnv := fabric.Envelope{
		Src: env.Dst, Dst: env.Src, Comm: c.id, Kind: fabric.KindRendezvousData,
	}
	p.sendControl(rs.dstWorld, fabric.NewPacketRaw(finEnv, idb[:], nil))
	rs.req.finish(nil)
}

// handleRendezvousFIN runs on the receiver: the data has landed; finish the
// receive.
func (c *Comm) handleRendezvousFIN(pkt *fabric.Packet) {
	p := c.proc
	id := binary.LittleEndian.Uint64(pkt.Payload)
	env := pkt.Envelope()
	key := rdvKey{srcWorld: c.group[env.Src], id: id}
	p.rdvMu.Lock()
	rr := p.rdvRecvs[key]
	delete(p.rdvRecvs, key)
	p.rdvMu.Unlock()
	if rr == nil {
		panic(fmt.Sprintf("core: rendezvous FIN for unknown id %d", id))
	}
	p.dev.DeregisterMemory(rr.region)
	p.tracer.Emit(trace.KindRendezvousDone, rr.src, int32(rr.sink))
	rr.req.finishRecv(Status{
		Source:     rr.src,
		Tag:        rr.tag,
		Count:      rr.sink,
		MessageLen: rr.total,
		Truncated:  rr.sink < rr.total,
	})
}

// sendControl injects a control packet outside the matched send path. It
// takes no instance lock: control packets ride the thread-safe hardware
// queues directly, like real implementations' internal control channels.
func (p *Proc) sendControl(dstWorld int, pkt *fabric.Packet) {
	inst := p.pool.Get(p.pool.NextRoundRobin())
	ep := inst.Endpoint(dstWorld)
	if ep == nil {
		panic(fmt.Sprintf("core: no endpoint from %d to %d", p.rank, dstWorld))
	}
	ep.Send(pkt)
}
