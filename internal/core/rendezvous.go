package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/match"
	"repro/internal/spc"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Rendezvous protocol for payloads above the eager limit:
//
//	sender                         receiver
//	  RTS (envelope, matched) ───────▶ match against posted receives
//	                                   register sink region
//	  put data ◀────────────────────── ACK {rdv id, region, sink len}
//	  (RDMA write into sink)
//	  FIN {rdv id} ──────────────────▶ complete receive, deregister
//
// The RTS is an ordinary matched envelope, so rendezvous and eager traffic
// share one sequence stream and FIFO semantics. ACK and FIN are control
// packets that bypass matching, delivered through the same progress engine.
//
// On a backend without one-sided support there is no RDMA write: the FIN
// carries the bulk data itself ({rdv id, data}), and the receiver copies it
// into the registered sink on arrival — the copy-in/copy-out rendezvous of
// send/recv-only transports.

type rdvSend struct {
	req      *Request
	buf      []byte
	dstWorld int
}

type rdvKey struct {
	srcWorld int
	id       uint64
}

type rdvRecv struct {
	req    *Request
	region transport.MemRegion
	total  int
	sink   int
	src    int32 // sender's communicator rank
	tag    int32
}

func (c *Comm) isendRendezvous(th *Thread, dst int, tag int32, buf []byte) (*Request, error) {
	p := c.proc
	req := &Request{proc: p, kind: reqRendezvousSend}
	id := p.rdvNext.Add(1)
	p.rdvMu.Lock()
	p.rdvSends[id] = &rdvSend{req: req, buf: buf, dstWorld: c.group[dst]}
	p.rdvMu.Unlock()

	seq := c.seq.Next(int32(dst))
	env := transport.Envelope{
		Src: int32(c.myRank), Dst: int32(dst), Tag: tag,
		Comm: c.id, Seq: seq, Len: uint32(len(buf)), Kind: transport.KindRendezvousRTS,
	}
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	pkt := transport.NewPacketRaw(env, idb[:], req)

	// The RTS completes the rendezvous via put+FIN, never on transport ack,
	// so it is tracked with a failure hook only: an unreachable peer tears
	// down the pending-send entry and fails the request.
	p.rel.track(pkt, c.group[dst], nil, func(err error) {
		p.rdvMu.Lock()
		delete(p.rdvSends, id)
		p.rdvMu.Unlock()
		req.finish(err)
	})

	inst, release := p.pool.AcquireSend(&th.ts)
	ep := inst.Endpoint(c.group[dst])
	if ep == nil {
		release()
		p.rdvMu.Lock()
		delete(p.rdvSends, id)
		p.rdvMu.Unlock()
		return nil, fmt.Errorf("core: no endpoint from rank %d to %d: %w",
			p.rank, c.group[dst], ErrPeerUnreachable)
	}
	err := ep.Send(pkt)
	release()
	if err != nil {
		p.rdvMu.Lock()
		delete(p.rdvSends, id)
		p.rdvMu.Unlock()
		return nil, fmt.Errorf("core: rendezvous RTS from rank %d to %d: %v: %w",
			p.rank, c.group[dst], err, ErrPeerUnreachable)
	}
	return req, nil
}

// startRendezvousRecv runs on the receiver when an RTS matches a posted
// receive: register the sink and answer with an ACK.
func (c *Comm) startRendezvousRecv(req *Request, comp match.Completion) {
	p := c.proc
	env := comp.Recv.MatchedEnv
	id := binary.LittleEndian.Uint64(comp.Packet.Payload)
	total := int(env.Len)
	sink := len(req.mrecv.Buf)
	if sink > total {
		sink = total
	}
	var region transport.MemRegion
	if sink > 0 {
		region = p.dev.RegisterMemory(req.mrecv.Buf[:sink])
	} else {
		region = p.dev.RegisterMemory(nil)
	}
	key := rdvKey{srcWorld: c.group[env.Src], id: id}
	p.rdvMu.Lock()
	if _, dup := p.rdvRecvs[key]; dup {
		// A duplicate RTS slipped past transport dedup (e.g. duplication
		// without the reliability layer). The original transfer is already
		// in progress; count the copy and drop it.
		p.rdvMu.Unlock()
		p.dev.DeregisterMemory(region)
		p.spcs.Inc(spc.LatePackets)
		return
	}
	p.rdvRecvs[key] = &rdvRecv{req: req, region: region, total: total, sink: sink, src: env.Src, tag: env.Tag}
	p.rdvMu.Unlock()
	p.tracer.Emit(trace.KindRendezvousStart, env.Src, int32(total))

	// ACK: rdv id, region id, permitted sink length.
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[0:], id)
	binary.LittleEndian.PutUint64(payload[8:], region.ID())
	binary.LittleEndian.PutUint64(payload[16:], uint64(sink))
	ackEnv := transport.Envelope{
		Src: int32(c.myRank), Dst: env.Src, Comm: c.id, Kind: transport.KindRendezvousACK,
	}
	ackPkt := transport.NewPacketRaw(ackEnv, payload[:], nil)
	dstWorld := c.group[env.Src]
	// If the ACK can never reach the sender, the posted receive would wait
	// forever for a put that is not coming: tear down and surface the error.
	teardown := func(err error) {
		p.rdvMu.Lock()
		rr := p.rdvRecvs[key]
		delete(p.rdvRecvs, key)
		p.rdvMu.Unlock()
		if rr != nil {
			p.dev.DeregisterMemory(rr.region)
			rr.req.finish(err)
		}
	}
	p.rel.track(ackPkt, dstWorld, nil, teardown)
	if err := p.sendControl(dstWorld, ackPkt); err != nil {
		teardown(err)
	}
}

// handleRendezvousACK runs on the sender: move the data into the receiver's
// sink and send the FIN. On a one-sided backend the data travels as an RDMA
// write and the FIN carries only the transfer id; otherwise the FIN carries
// the data.
func (c *Comm) handleRendezvousACK(pkt *transport.Packet) {
	p := c.proc
	id := binary.LittleEndian.Uint64(pkt.Payload[0:])
	regionID := binary.LittleEndian.Uint64(pkt.Payload[8:])
	sink := int(binary.LittleEndian.Uint64(pkt.Payload[16:]))

	p.rdvMu.Lock()
	rs := p.rdvSends[id]
	delete(p.rdvSends, id)
	p.rdvMu.Unlock()
	if rs == nil {
		// Duplicate or orphaned ACK (the transfer already ran, or the RTS
		// was abandoned by the retransmit sweep). Count and drop.
		p.spcs.Inc(spc.LatePackets)
		return
	}

	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	finPayload := idb[:]

	if sink > 0 && p.world.caps.OneSided {
		// The bulk transfer is a hardware put addressed by region id: the
		// backend charges initiator CPU plus wire time; no instance lock is
		// needed because the data path is offloaded (packet queues are
		// inherently thread-safe).
		inst := p.pool.Get(p.pool.NextRoundRobin())
		ep := inst.Endpoint(rs.dstWorld)
		if ep == nil {
			rs.req.finish(fmt.Errorf("core: no endpoint from rank %d to %d: %w",
				p.rank, rs.dstWorld, ErrPeerUnreachable))
			return
		}
		if err := ep.PutRegion(regionID, 0, rs.buf[:sink], nil); err != nil {
			// The receiver tore the sink region down (e.g. its side of the
			// transfer failed): the data cannot land, so fail the send.
			p.spcs.Inc(spc.LatePackets)
			rs.req.finish(fmt.Errorf("core: rendezvous put: %w", err))
			return
		}
	} else if sink > 0 {
		// Send/recv-only backend: the FIN carries the data.
		finPayload = append(idb[:], rs.buf[:sink]...)
	}

	env := pkt.Envelope()
	finEnv := transport.Envelope{
		Src: env.Dst, Dst: env.Src, Comm: c.id, Kind: transport.KindRendezvousData,
	}
	finPkt := transport.NewPacketRaw(finEnv, finPayload, nil)
	p.rel.track(finPkt, rs.dstWorld, nil, nil)
	if err := p.sendControl(rs.dstWorld, finPkt); err != nil {
		rs.req.finish(err)
		return
	}
	rs.req.finish(nil)
}

// handleRendezvousFIN runs on the receiver: the data has landed (or rides
// the FIN itself); finish the receive.
func (c *Comm) handleRendezvousFIN(pkt *transport.Packet) {
	p := c.proc
	id := binary.LittleEndian.Uint64(pkt.Payload)
	env := pkt.Envelope()
	key := rdvKey{srcWorld: c.group[env.Src], id: id}
	p.rdvMu.Lock()
	rr := p.rdvRecvs[key]
	delete(p.rdvRecvs, key)
	p.rdvMu.Unlock()
	if rr == nil {
		// Duplicate or orphaned FIN — the receive already completed (or was
		// torn down). Count and drop.
		p.spcs.Inc(spc.LatePackets)
		return
	}
	if data := pkt.Payload[8:]; len(data) > 0 && rr.sink > 0 {
		// Data-in-FIN path of non-one-sided backends.
		copy(rr.region.Bytes(), data[:rr.sink])
	}
	p.dev.DeregisterMemory(rr.region)
	p.tracer.Emit(trace.KindRendezvousDone, rr.src, int32(rr.sink))
	rr.req.finishRecv(Status{
		Source:     rr.src,
		Tag:        rr.tag,
		Count:      rr.sink,
		MessageLen: rr.total,
		Truncated:  rr.sink < rr.total,
	})
}

// sendControl injects a control packet outside the matched send path. It
// takes no instance lock: control packets ride the thread-safe hardware
// queues directly, like real implementations' internal control channels.
// A missing endpoint — on a real network, an unreachable address — is a
// typed error the caller surfaces through the request.
func (p *Proc) sendControl(dstWorld int, pkt *transport.Packet) error {
	inst := p.pool.Get(p.pool.NextRoundRobin())
	ep := inst.Endpoint(dstWorld)
	if ep == nil {
		return fmt.Errorf("core: no endpoint from rank %d to %d: %w",
			p.rank, dstWorld, ErrPeerUnreachable)
	}
	if err := ep.Send(pkt); err != nil {
		return fmt.Errorf("core: control send from rank %d to %d: %v: %w",
			p.rank, dstWorld, err, ErrPeerUnreachable)
	}
	return nil
}
