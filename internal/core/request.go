package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/match"
	"repro/internal/transport"
)

// ErrTruncated reports a receive whose buffer was shorter than the matched
// message (MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("core: message truncated")

// Status describes a completed receive, mirroring MPI_Status.
type Status struct {
	// Source is the communicator rank of the sender.
	Source int32
	// Tag is the matched message tag.
	Tag int32
	// Count is the number of bytes delivered into the buffer.
	Count int
	// MessageLen is the full length of the matched message.
	MessageLen int
	// Truncated reports that the message was longer than the buffer.
	Truncated bool
}

type reqKind uint8

const (
	reqSend reqKind = iota + 1
	reqRecv
	reqRendezvousSend
)

// Request is a non-blocking operation handle. Wait/Test observe completion;
// the progress engine (any thread's) completes it.
type Request struct {
	proc *Proc
	kind reqKind
	done atomic.Bool

	// reliable marks a send tracked by the delivery-reliability layer: it
	// completes on the peer's ack (or ErrPeerUnreachable), not on the local
	// send CQE. Written before injection, so the CQE handler observes it.
	reliable bool

	// recv state
	mrecv  *match.Recv
	status Status

	err error
}

// Done reports whether the operation has completed. It does not progress
// the runtime; use Test for the MPI_Test behavior.
func (r *Request) Done() bool { return r.done.Load() }

// Status returns the receive status. Valid only after completion of a
// receive request.
func (r *Request) Status() Status { return r.status }

// Test progresses the runtime once and reports completion (MPI_Test).
func (r *Request) Test(th *Thread) (bool, error) {
	if r.done.Load() {
		return true, r.err
	}
	th.Progress()
	if r.done.Load() {
		return true, r.err
	}
	return false, nil
}

// Wait blocks (progressing the runtime) until the operation completes —
// the mandatory-progress rule for blocking MPI calls (Section II-B).
func (r *Request) Wait(th *Thread) error {
	if th.proc != r.proc {
		panic("core: Wait with a thread from a different proc")
	}
	for !r.done.Load() {
		if th.Progress() == 0 {
			yield()
		}
	}
	return r.err
}

// WaitAll waits on every request (MPI_Waitall), returning the first error.
func WaitAll(th *Thread, reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(th); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitAny blocks until at least one request completes and returns its
// index (MPI_Waitany). Panics on an empty list.
func WaitAny(th *Thread, reqs ...*Request) (int, error) {
	if len(reqs) == 0 {
		panic("core: WaitAny with no requests")
	}
	for {
		for i, r := range reqs {
			if r.done.Load() {
				return i, r.err
			}
		}
		if th.Progress() == 0 {
			yield()
		}
	}
}

// TestAll progresses once and reports whether every request has completed
// (MPI_Testall), returning the first error among completed requests.
func TestAll(th *Thread, reqs ...*Request) (bool, error) {
	th.Progress()
	var first error
	for _, r := range reqs {
		if !r.done.Load() {
			return false, nil
		}
		if r.err != nil && first == nil {
			first = r.err
		}
	}
	return true, first
}

// Complete implements Completer for send completions extracted from a CQ.
func (r *Request) Complete(transport.CQE) {
	if r.kind == reqRendezvousSend {
		// The eager injection of the RTS does not finish a rendezvous
		// send; the put + FIN path completes it.
		return
	}
	if r.reliable {
		// Local injection is not delivery under the reliability layer; the
		// ack path (or the retransmit sweep's failure) completes this send.
		return
	}
	r.finish(nil)
}

func (r *Request) finish(err error) {
	r.err = err
	if r.done.Swap(true) {
		panic(fmt.Sprintf("core: request completed twice (kind %d)", r.kind))
	}
}

// finishRecv records receive results and completes the request.
func (r *Request) finishRecv(st Status) {
	r.status = st
	var err error
	if st.Truncated {
		err = fmt.Errorf("%w: %d-byte message into %d-byte buffer", ErrTruncated, st.MessageLen, st.Count)
	}
	r.finish(err)
}
