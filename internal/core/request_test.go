package core

import (
	"testing"
)

func TestWaitAnyReturnsFirstCompleted(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	// Post two receives; only tag 8 will be satisfied.
	bufA := make([]byte, 4)
	bufB := make([]byte, 4)
	ra, err := c1.Irecv(t1, 0, 7, bufA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c1.Irecv(t1, 0, 8, bufB)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c0.Send(t0, 1, 8, []byte("b")) }()
	idx, err := WaitAny(t1, ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("WaitAny = %d, want 1", idx)
	}
	// Satisfy the other receive so the world drains cleanly.
	go func() { _ = c0.Send(t0, 1, 7, []byte("a")) }()
	if err := ra.Wait(t1); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyEmptyPanics(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	th := w.Proc(0).NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("WaitAny() with no requests did not panic")
		}
	}()
	_, _ = WaitAny(th)
}

func TestTestAll(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	bufs := [][]byte{make([]byte, 1), make([]byte, 1)}
	r0, _ := c1.Irecv(t1, 0, 1, bufs[0])
	r1, _ := c1.Irecv(t1, 0, 2, bufs[1])
	if done, _ := TestAll(t1, r0, r1); done {
		t.Fatal("TestAll reported done with nothing sent")
	}
	go func() {
		_ = c0.Send(t0, 1, 1, []byte{1})
		_ = c0.Send(t0, 1, 2, []byte{2})
	}()
	for {
		done, err := TestAll(t1, r0, r1)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if bufs[0][0] != 1 || bufs[1][0] != 2 {
		t.Fatalf("payloads = %v %v", bufs[0], bufs[1])
	}
}

func TestRequestTest(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	buf := make([]byte, 1)
	req, err := w.Proc(1).CommWorld().Irecv(t1, 0, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := req.Test(t1); done {
		t.Fatal("Test true before send")
	}
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, []byte{9}) }()
	for {
		done, err := req.Test(t1)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if !req.Done() {
		t.Fatal("Done false after Test true")
	}
	if buf[0] != 9 {
		t.Fatalf("payload = %d", buf[0])
	}
}

func TestWaitCrossProcPanics(t *testing.T) {
	w := newTestWorld(t, 2, Stock())
	t1 := w.Proc(1).NewThread()
	t0 := w.Proc(0).NewThread()
	req, err := w.Proc(1).CommWorld().Irecv(t1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-proc Wait did not panic")
		}
		// Unblock the pending recv to drain.
		go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, nil) }()
		_ = req.Wait(t1)
	}()
	_ = req.Wait(t0) // wrong proc's thread
}
