package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/progress"
)

// shardedOpts is the lock-free hot-path configuration under test: sharded
// matching (no communicator-wide matching lock), free-list CRI acquisition,
// and the concurrent progress engine.
func shardedOpts(n int) Options {
	return Options{
		NumInstances: n,
		Assignment:   cri.FreeList,
		Progress:     progress.Concurrent,
		ThreadLevel:  ThreadMultiple,
		MatchShards:  8,
	}
}

func TestShardedWorldPingPong(t *testing.T) {
	w := newTestWorld(t, 2, shardedOpts(4))
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := c0.Send(t0, 1, int32(i%7), []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		buf := make([]byte, 16)
		st, err := c1.Recv(t1, 0, int32(i%7), buf)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := fmt.Sprintf("m%d", i)
		if string(buf[:st.Count]) != want {
			t.Fatalf("recv %d = %q, want %q (FIFO violated)", i, buf[:st.Count], want)
		}
	}
	wg.Wait()
}

// TestShardedWorldMultithreaded hammers the sharded engine through the full
// runtime: many sender threads on rank 0, many receiver threads on rank 1,
// distinct tags per thread pair (the sharded engine's sweet spot), plus a
// wildcard receiver draining a dedicated tag. Run with -race.
func TestShardedWorldMultithreaded(t *testing.T) {
	const (
		nThreads = 8
		perT     = 40
		wildTag  = 999
	)
	w := newTestWorld(t, 2, shardedOpts(4))
	p0, p1 := w.Proc(0), w.Proc(1)
	c0, c1 := p0.CommWorld(), p1.CommWorld()

	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(2)
		go func(tag int32) {
			defer wg.Done()
			th := p0.NewThread()
			for k := 0; k < perT; k++ {
				if err := c0.Send(th, 1, tag, []byte{byte(k)}); err != nil {
					t.Errorf("send tag %d: %v", tag, err)
					return
				}
			}
		}(int32(i))
		go func(tag int32) {
			defer wg.Done()
			th := p1.NewThread()
			buf := make([]byte, 4)
			for k := 0; k < perT; k++ {
				st, err := c1.Recv(th, 0, tag, buf)
				if err != nil {
					t.Errorf("recv tag %d: %v", tag, err)
					return
				}
				if st.Count != 1 || buf[0] != byte(k) {
					t.Errorf("tag %d msg %d: got %v (per-pair FIFO violated)", tag, k, buf[:st.Count])
					return
				}
			}
		}(int32(i))
	}
	// Wildcard receiver: source AND tag wildcards against concurrent traffic.
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := p0.NewThread()
		for k := 0; k < perT; k++ {
			if err := c0.Send(th, 1, wildTag, []byte{byte(k)}); err != nil {
				t.Errorf("wild send: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		th := p1.NewThread()
		buf := make([]byte, 4)
		seen := 0
		for seen < perT {
			st, err := c1.Recv(th, int(AnySource), wildTag, buf)
			if err != nil {
				t.Errorf("wild recv: %v", err)
				return
			}
			if st.Count != 1 || buf[0] != byte(seen) {
				t.Errorf("wild msg %d: got %v", seen, buf[:st.Count])
				return
			}
			seen++
		}
	}()
	wg.Wait()

	// Queues must drain; the snapshot path must work without a matching lock.
	qs := p1.QueueSnapshot()
	for _, cq := range qs.Comms {
		if cq.Posted != 0 || cq.Unexpected != 0 || cq.OOSBuffered != 0 {
			t.Fatalf("comm %d queues not drained: %+v", cq.Comm, cq)
		}
	}
}

// TestShardedWorldProbeAndCollectives covers the self-locking gating on the
// probe, matched-probe, and collective (internal receive) paths.
func TestShardedWorldProbeAndCollectives(t *testing.T) {
	w := newTestWorld(t, 4, shardedOpts(2))
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := w.Proc(r)
			c := p.CommWorld()
			th := p.NewThread()
			if err := c.Barrier(th); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	p0, p1 := w.Proc(0), w.Proc(1)
	c0, c1 := p0.CommWorld(), p1.CommWorld()
	t0, t1 := p0.NewThread(), p1.NewThread()
	if err := c0.Send(t0, 1, 5, []byte("probe-me")); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := c1.Probe(t1, 0, 5); ok {
			break
		}
	}
	msg, ok := c1.MProbe(t1, 0, 5)
	if !ok {
		t.Fatal("MProbe missed a probed message")
	}
	buf := make([]byte, 16)
	st, err := msg.MRecv(buf)
	if err != nil || string(buf[:st.Count]) != "probe-me" {
		t.Fatalf("MRecv: %v %q", err, buf[:st.Count])
	}
}
