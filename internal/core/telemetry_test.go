package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/progress"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// telemetryOpts is the full-observability configuration: several dedicated
// instances, concurrent progress, histograms, and a tracer.
func telemetryOpts() Options {
	return Options{
		NumInstances: 4, Assignment: cri.Dedicated,
		Progress: progress.Concurrent, ThreadLevel: ThreadMultiple,
		Telemetry: true, TraceCapacity: 4096,
	}
}

// runTraffic pushes msgs messages from proc 0 to proc 1 over c0/c1 using
// nThreads sender threads with distinct tags.
func runTraffic(t *testing.T, w *World, c0, c1 *Comm, nThreads, msgs int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < msgs; i++ {
				if err := c0.Send(th, 1, int32(g+1), []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	var rg sync.WaitGroup
	for g := 0; g < nThreads; g++ {
		rg.Add(1)
		go func(g int) {
			defer rg.Done()
			th := w.Proc(1).NewThread()
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := c1.Recv(th, 0, int32(g+1), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	rg.Wait()
}

// TestTelemetryRollupInvariant is the attribution contract: the per-CRI and
// per-communicator child sets plus the residual must merge to exactly the
// process totals, which must equal SPCSnapshot.
func TestTelemetryRollupInvariant(t *testing.T) {
	w := newTestWorld(t, 2, telemetryOpts())
	comms, err := w.NewComm([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	runTraffic(t, w, comms[0], comms[1], 4, 50)

	for rank := 0; rank < 2; rank++ {
		p := w.Proc(rank)
		stats := p.TelemetryStats()
		if got := stats.MergeChildren(); got != stats.Process {
			t.Fatalf("rank %d: MergeChildren != Process\nchildren: %vprocess: %v", rank, got, stats.Process)
		}
		if snap := p.SPCSnapshot(); snap != stats.Process {
			t.Fatalf("rank %d: SPCSnapshot != TelemetryStats.Process\nsnap: %vstats: %v", rank, snap, stats.Process)
		}
	}

	// The sender's traffic must be attributed to communicator child sets,
	// not the residual: 200 sends on comm-world plus 200 on comms[0].
	stats := w.Proc(0).TelemetryStats()
	var commSent int64
	for _, cs := range stats.PerComm {
		commSent += cs.Counters.Get(spc.MessagesSent)
	}
	if commSent != stats.Process.Get(spc.MessagesSent) || commSent != 200 {
		t.Fatalf("comm-attributed sends = %d, process total = %d, want 200",
			commSent, stats.Process.Get(spc.MessagesSent))
	}
	if r := stats.Residual.Get(spc.MessagesSent); r != 0 {
		t.Fatalf("residual holds %d sends; they belong to communicators", r)
	}
}

// TestTelemetryRetiredComms: freeing a communicator must not lose its
// counters — they move into the residual and the roll-up stays exact.
func TestTelemetryRetiredComms(t *testing.T) {
	w := newTestWorld(t, 2, telemetryOpts())
	comms, err := w.NewComm([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	runTraffic(t, w, comms[0], comms[1], 2, 25)
	before := w.Proc(0).SPCSnapshot().Get(spc.MessagesSent)
	comms[0].Free()
	comms[1].Free()
	p := w.Proc(0)
	if after := p.SPCSnapshot().Get(spc.MessagesSent); after != before {
		t.Fatalf("freeing comms changed messages_sent %d -> %d", before, after)
	}
	stats := p.TelemetryStats()
	if got := stats.Residual.Get(spc.MessagesSent); got != before {
		t.Fatalf("retired counters not in residual: %d, want %d", got, before)
	}
	if got := stats.MergeChildren(); got != stats.Process {
		t.Fatal("roll-up invariant broken after comm free")
	}
}

// TestTelemetryHistogramsRecord: with Telemetry on, a traffic run must
// populate every histogram the runtime instruments (lock-wait is
// contention-dependent and may legitimately stay empty).
func TestTelemetryHistogramsRecord(t *testing.T) {
	w := newTestWorld(t, 2, telemetryOpts())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	runTraffic(t, w, c0, c1, 4, 50)

	tel := w.Proc(1).Telemetry()
	if tel == nil {
		t.Fatal("Telemetry() nil despite Options.Telemetry")
	}
	if n := tel.MatchSection.Count(); n == 0 {
		t.Error("match-section histogram empty after traffic")
	}
	if n := tel.ProgressPass.Count(); n == 0 {
		t.Error("progress-pass histogram empty after traffic")
	}
	if n := tel.MsgLatency.Count(); n == 0 {
		t.Error("message-latency histogram empty after traffic")
	}
	if s := tel.MsgLatency.Snapshot(); s.Quantile(0.99) < s.Quantile(0.50) {
		t.Error("p99 below p50")
	}
	// Off by default: no histograms, nil-safe accessors.
	w2 := newTestWorld(t, 1, Stock())
	if w2.Proc(0).Telemetry() != nil {
		t.Fatal("telemetry allocated without Options.Telemetry")
	}
	if hists := w2.Proc(0).TelemetryStats().Hists; hists != nil {
		t.Fatal("disabled proc reported histograms")
	}
}

// TestTelemetryTraceAttribution: send-side inject events must carry the CRI
// index of the instance that injected them, and the progress engine must
// emit progress events for productive passes.
func TestTelemetryTraceAttribution(t *testing.T) {
	w := newTestWorld(t, 2, telemetryOpts())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	runTraffic(t, w, c0, c1, 4, 50)

	events := w.Proc(0).Tracer().Snapshot()
	attributed := 0
	for _, e := range events {
		if e.Kind == trace.KindSendInject && e.CRI >= 0 {
			attributed++
			if int(e.CRI) >= w.Proc(0).Pool().Len() {
				t.Fatalf("inject attributed to nonexistent CRI %d", e.CRI)
			}
		}
	}
	if attributed == 0 {
		t.Fatal("no send_inject events carry CRI attribution")
	}
	if n := w.Proc(1).Tracer().CountKind(trace.KindProgress); n == 0 {
		t.Fatal("no progress events emitted for productive passes")
	}
}

// TestTelemetryPrometheusExport: a live run's stats must export as
// Prometheus text carrying attributed scopes and populated histograms.
func TestTelemetryPrometheusExport(t *testing.T) {
	w := newTestWorld(t, 2, telemetryOpts())
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()
	runTraffic(t, w, c0, c1, 2, 50)

	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, w.Proc(0).TelemetryStats(), w.Proc(1).TelemetryStats()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mpi_spc_messages_sent{rank="0",scope="process"} 100`,
		`scope="comm"`,
		`# TYPE mpi_match_section_ns histogram`,
		`mpi_match_section_ns_bucket{rank="1",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}
