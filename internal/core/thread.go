package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cri"
	"repro/internal/spc"
)

// Thread is a communicating thread's handle into the runtime — the explicit
// stand-in for the thread-local storage of Algorithm 1 (Go exposes no TLS).
// Each goroutine that performs communication should create one Thread and
// use it for all calls; the handle caches the dedicated instance assignment
// and is not safe for concurrent use by multiple goroutines.
type Thread struct {
	proc *Proc
	ts   cri.ThreadState
}

// NewThread attaches a communication thread to the proc. Under
// Options.Profile the thread receives a phase clock, and under
// Options.FlightCapacity its own flight-recorder ring (both labelled
// rank<r>/t<n>); the clock starts in the app phase immediately.
func (p *Proc) NewThread() *Thread {
	th := &Thread{proc: p}
	if p.prof != nil || p.flight != nil {
		n := p.profThreads.Add(1) - 1
		if p.prof != nil {
			th.ts.SetClock(p.prof.NewThreadClock(fmt.Sprintf("rank%d/t%d", p.rank, n)))
		}
		th.ts.SetFlight(p.flight.NewRing(fmt.Sprintf("rank%d/t%d", p.rank, n)))
	}
	return th
}

// Done marks the thread's benchmark work finished, freezing its phase
// clock so the app-phase remainder stops accumulating. Harmless without
// profiling; idempotent.
func (t *Thread) Done() { t.ts.Clock().Stop() }

// Proc returns the thread's process.
func (t *Thread) Proc() *Proc { return t.proc }

// State exposes the CRI thread state (used by the one-sided layer).
func (t *Thread) State() *cri.ThreadState { return &t.ts }

// Progress makes one pass through the progress engine on behalf of this
// thread and returns the number of completion events handled.
func (t *Thread) Progress() int {
	return t.proc.progressFor(&t.ts)
}

// Detach releases the thread's dedicated instance assignment. The instance
// itself remains in the pool and — per the orphaned-CRI guarantee of
// Section III-E — continues to be progressed by other threads' round-robin
// sweeps.
func (t *Thread) Detach() { t.ts.Reset() }

// levelGuard enforces the negotiated threading level at runtime. Violations
// panic: they are program bugs, exactly as they are undefined behavior in
// MPI.
type levelGuard struct {
	level  ThreadLevel
	inCall atomic.Int32
	owner  atomic.Pointer[Thread]
}

func (g *levelGuard) enter(th *Thread) {
	switch g.level {
	case ThreadMultiple:
		return
	case ThreadSingle, ThreadFunneled:
		if !g.owner.CompareAndSwap(nil, th) && g.owner.Load() != th {
			panic("core: " + g.level.String() + " violated: call from a second thread")
		}
	case ThreadSerialized:
		if g.inCall.Add(1) > 1 {
			panic("core: MPI_THREAD_SERIALIZED violated: concurrent calls")
		}
	}
}

func (g *levelGuard) leave() {
	if g.level == ThreadSerialized {
		g.inCall.Add(-1)
	}
}

// sinceTimer returns elapsed time for a timer started on s, or zero if the
// timer never started (SPCs disabled).
func sinceTimer(s *spc.Set, t0 time.Time) time.Duration {
	if t0.IsZero() {
		return 0
	}
	return time.Since(t0)
}

// yield relinquishes the core; single-core hosts depend on wait loops
// yielding so the peer can make progress.
func yield() { runtime.Gosched() }
