package core

import (
	"testing"

	"repro/internal/trace"
)

func TestTracerRecordsMessagePath(t *testing.T) {
	opts := Stock()
	opts.TraceCapacity = 1024
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	const msgs = 5
	go func() {
		for i := 0; i < msgs; i++ {
			_ = c0.Send(t0, 1, int32(i), []byte{byte(i)})
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < msgs; i++ {
		if _, err := c1.Recv(t1, 0, int32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Proc(0).Tracer().CountKind(trace.KindSendInject); got != msgs {
		t.Fatalf("sender traced %d injections, want %d", got, msgs)
	}
	if got := w.Proc(1).Tracer().CountKind(trace.KindRecvDeliver); got != msgs {
		t.Fatalf("receiver traced %d deliveries, want %d", got, msgs)
	}
	if got := w.Proc(1).Tracer().CountKind(trace.KindMatchComplete); got != msgs {
		t.Fatalf("receiver traced %d matches, want %d", got, msgs)
	}
	// Injection events carry (dst, seq) in order for a single thread.
	seq := int32(0)
	for _, e := range w.Proc(0).Tracer().Snapshot() {
		if e.Kind != trace.KindSendInject {
			continue
		}
		if e.Arg0 != 1 || e.Arg1 != seq {
			t.Fatalf("inject event = %+v, want dst=1 seq=%d", e, seq)
		}
		seq++
	}
}

func TestTracerRecordsRendezvous(t *testing.T) {
	opts := Stock()
	opts.EagerLimit = 16
	opts.TraceCapacity = 256
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, make([]byte, 100)) }()
	buf := make([]byte, 128)
	if _, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	tr := w.Proc(1).Tracer()
	if tr.CountKind(trace.KindRendezvousStart) != 1 || tr.CountKind(trace.KindRendezvousDone) != 1 {
		t.Fatalf("rendezvous events: start=%d done=%d",
			tr.CountKind(trace.KindRendezvousStart), tr.CountKind(trace.KindRendezvousDone))
	}
}

func TestNoTracerByDefault(t *testing.T) {
	w := newTestWorld(t, 1, Stock())
	if w.Proc(0).Tracer() != nil {
		t.Fatal("tracer attached without TraceCapacity")
	}
	// Message path must work with a nil tracer (nil-safe Emit).
	th := w.Proc(0).NewThread()
	c := w.Proc(0).CommWorld()
	if err := c.Send(th, 0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := c.Recv(th, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWireLifecycle(t *testing.T) {
	opts := Stock()
	opts.TraceCapacity = 1024
	opts.Telemetry = true
	opts.TraceWire = true
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	c0, c1 := w.Proc(0).CommWorld(), w.Proc(1).CommWorld()

	go func() { _ = c0.Send(t0, 1, 7, []byte("traced")) }()
	buf := make([]byte, 8)
	if _, err := c1.Recv(t1, 0, 7, buf); err != nil {
		t.Fatal(err)
	}

	// Both ends compute the same deterministic flow id; the first eager
	// send on the world communicator has seq 0 (the rank bias keeps the id
	// non-zero regardless).
	want := traceID(0, 1, 0)
	findFlow := func(p *Proc, k trace.Kind) uint64 {
		for _, e := range p.Tracer().Snapshot() {
			if e.Kind == k {
				return e.Flow
			}
		}
		return 0
	}
	if got := findFlow(w.Proc(0), trace.KindSendInject); got != want {
		t.Fatalf("sender inject flow = %#x, want %#x", got, want)
	}
	if got := findFlow(w.Proc(1), trace.KindRecvDeliver); got != want {
		t.Fatalf("receiver deliver flow = %#x, want %#x", got, want)
	}
	if got := findFlow(w.Proc(1), trace.KindMatchComplete); got != want {
		t.Fatalf("receiver match flow = %#x, want %#x", got, want)
	}

	// Lifecycle histograms fill on the receiver.
	tel := w.Proc(1).Telemetry()
	if tel.OneWayLatency.Count() == 0 {
		t.Error("one-way latency histogram empty on a traced run")
	}
	if tel.MatchResidency.Count() == 0 {
		t.Error("match residency histogram empty on a traced run")
	}

	// TraceEvents carries the shard anchors.
	re := w.Proc(1).TraceEvents()
	if re.Rank != 1 || len(re.Events) == 0 || re.BaseUnixNs == 0 {
		t.Fatalf("trace shard incomplete: rank=%d events=%d base=%d", re.Rank, len(re.Events), re.BaseUnixNs)
	}
}

func TestTraceWireOffByDefault(t *testing.T) {
	opts := Stock()
	opts.TraceCapacity = 64
	opts.Telemetry = true
	w := newTestWorld(t, 2, opts)
	t0, t1 := w.Proc(0).NewThread(), w.Proc(1).NewThread()
	go func() { _ = w.Proc(0).CommWorld().Send(t0, 1, 1, []byte{1}) }()
	buf := make([]byte, 1)
	if _, err := w.Proc(1).CommWorld().Recv(t1, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Proc(1).Tracer().Snapshot() {
		if e.Flow != 0 {
			t.Fatalf("flow id %#x recorded with TraceWire off", e.Flow)
		}
	}
	if n := w.Proc(1).Telemetry().OneWayLatency.Count(); n != 0 {
		t.Fatalf("one-way latency recorded %d samples with TraceWire off", n)
	}
}
