package core

import (
	"os"
	"sync"
	"time"

	"repro/internal/flight"
)

// DefaultWatchdogInterval is the stall watchdog's sampling period when
// WatchdogConfig.Interval is unset.
const DefaultWatchdogInterval = 100 * time.Millisecond

// WatchdogConfig configures the stall watchdog started by
// World.StartWatchdog.
type WatchdogConfig struct {
	// Interval is the sampling period (0 = DefaultWatchdogInterval).
	Interval time.Duration
	// Detector bounds the detections (zero fields take the defaults
	// documented on flight.DetectorConfig).
	Detector flight.DetectorConfig
	// OnDump receives each fired verdict's dump — the verdict, the queue
	// introspection snapshot, and the rank's merged flight record. Nil
	// writes indented JSON to stderr. Called from the watchdog goroutine.
	OnDump func(flight.Dump)
}

// StartWatchdog starts the stall watchdog: a goroutine that samples every
// local proc's movement counters and queue depths each Interval, feeds them
// through a per-proc flight.Detector, and on any verdict (no-progress,
// retransmit storm, unexpected-queue growth) dumps the merged flight record
// plus the runtime introspection snapshot. The returned stop function is
// idempotent and waits for the goroutine to exit.
//
// The watchdog works with the flight recorder off — dumps then carry only
// the queue snapshot — but pairs with Options.FlightCapacity to answer
// "what happened just before it stalled".
func (w *World) StartWatchdog(cfg WatchdogConfig) (stop func()) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogInterval
	}
	onDump := cfg.OnDump
	if onDump == nil {
		onDump = func(d flight.Dump) { _ = flight.WriteDump(os.Stderr, d) }
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		procs := w.LocalProcs()
		dets := make([]*flight.Detector, len(procs))
		for i := range dets {
			dets[i] = flight.NewDetector(cfg.Detector)
		}
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			for i, p := range procs {
				if v, ok := dets[i].Observe(p.watchdogSample()); ok {
					onDump(flight.Dump{
						Rank:    p.rank,
						Verdict: v,
						Queues:  p.QueueSnapshot(),
						Record:  p.FlightRecord(),
					})
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
