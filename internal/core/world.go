package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cri"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// World is a job: a set of Procs (the analog of MPI processes) connected by
// the simulated fabric, plus the communicator registry. All Procs live in
// one address space — the fabric supplies the process isolation that
// matters for this study (separate devices, contexts, queues, locks).
type World struct {
	machine hw.Machine
	opts    Options
	procs   []*Proc

	commMu   sync.Mutex
	nextComm uint32
}

// NewWorld creates n Procs with identical options and wires instance k of
// every proc to context (k mod remote instances) of every other proc.
func NewWorld(machine hw.Machine, n int, opts Options) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: world size %d < 1", n)
	}
	opts = opts.withDefaults(machine)
	w := &World{machine: machine, opts: opts}
	for rank := 0; rank < n; rank++ {
		p, err := newProc(w, rank, machine, opts)
		if err != nil {
			return nil, fmt.Errorf("core: proc %d: %w", rank, err)
		}
		w.procs = append(w.procs, p)
	}
	// Wire endpoints now that every device exists.
	for _, p := range w.procs {
		p.wire(w.procs)
	}
	// The world communicator spans all ranks.
	if _, err := w.NewComm(allRanks(n)); err != nil {
		return nil, err
	}
	return w, nil
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Size returns the number of Procs.
func (w *World) Size() int { return len(w.procs) }

// Machine returns the machine model the world runs on.
func (w *World) Machine() hw.Machine { return w.machine }

// Options returns the world's normalized options.
func (w *World) Options() Options { return w.opts }

// Proc returns the Proc with the given world rank.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// Info carries communicator assertions, mirroring MPI info keys.
type Info struct {
	// AllowOvertaking is mpi_assert_allow_overtaking: the application
	// does not rely on FIFO matching order, so sequence validation is
	// skipped (Section IV-D).
	AllowOvertaking bool
}

// NewComm collectively creates a communicator over the given world ranks
// and returns one handle per member, indexed by communicator rank.
func (w *World) NewComm(worldRanks []int) ([]*Comm, error) {
	return w.NewCommWithInfo(worldRanks, Info{})
}

// NewCommWithInfo is NewComm with communicator assertions.
func (w *World) NewCommWithInfo(worldRanks []int, info Info) ([]*Comm, error) {
	if len(worldRanks) == 0 {
		return nil, fmt.Errorf("core: empty communicator group")
	}
	seen := make(map[int]bool, len(worldRanks))
	for _, r := range worldRanks {
		if r < 0 || r >= len(w.procs) {
			return nil, fmt.Errorf("core: rank %d outside world of %d", r, len(w.procs))
		}
		if seen[r] {
			return nil, fmt.Errorf("core: rank %d appears twice in group", r)
		}
		seen[r] = true
	}
	w.commMu.Lock()
	w.nextComm++
	id := w.nextComm
	w.commMu.Unlock()

	group := append([]int(nil), worldRanks...)
	comms := make([]*Comm, len(group))
	for commRank, worldRank := range group {
		comms[commRank] = newComm(w.procs[worldRank], id, group, commRank, info)
	}
	return comms, nil
}

// Close shuts down every proc's device and stops offload threads.
func (w *World) Close() {
	for _, p := range w.procs {
		if p.offloadStop != nil {
			close(p.offloadStop)
			<-p.offloadDone
			p.offloadStop = nil
		}
		p.dev.Close()
	}
}

// Proc is one simulated MPI process: a fabric device, a pool of
// Communication Resource Instances, a progress engine, and the
// communicator registry for inbound dispatch.
type Proc struct {
	world  *World
	rank   int
	dev    *fabric.Device
	pool   *cri.Pool
	prog   *progress.Engine
	spcs   *spc.Set
	tracer *trace.Tracer

	// tel bundles the latency histograms (Options.Telemetry); the two
	// histograms the proc's own hot paths record into are cached as direct
	// pointers so a disabled hook is one nil check.
	tel         *telemetry.Telemetry
	histMatch   *telemetry.Histogram
	histLatency *telemetry.Histogram

	commMu sync.RWMutex
	comms  map[uint32]*Comm
	// retiredSPCs retains the counter totals of freed communicators so the
	// process roll-up never loses history. Guarded by commMu.
	retiredSPCs spc.Snapshot

	// bigMu is the process-wide lock of the BigLock comparator design.
	bigMu   sync.Mutex
	bigLock bool

	// levelGuard enforces the negotiated threading level.
	levelGuard levelGuard

	// rel is the delivery-reliability layer (nil unless Options.Reliable;
	// all its methods are nil-safe).
	rel *reliability

	// offload is the dedicated progress thread (Options.ProgressThread).
	offload     bool
	offloadStop chan struct{}
	offloadDone chan struct{}

	// rendezvous bookkeeping (see rendezvous.go).
	rdvMu    sync.Mutex
	rdvSends map[uint64]*rdvSend
	rdvRecvs map[rdvKey]*rdvRecv
	rdvNext  atomic.Uint64

	scratchPool sync.Pool // []match.Completion scratch buffers
}

func newProc(w *World, rank int, machine hw.Machine, opts Options) (*Proc, error) {
	p := &Proc{
		world:    w,
		rank:     rank,
		dev:      fabric.NewDevice(machine),
		comms:    make(map[uint32]*Comm),
		bigLock:  opts.BigLock,
		rdvSends: make(map[uint64]*rdvSend),
		rdvRecvs: make(map[rdvKey]*rdvRecv),
	}
	if opts.ScrambleWindow > 0 {
		seed := opts.ScrambleSeed
		if seed == 0 {
			seed = 1
		}
		p.dev.SetScrambler(fabric.NewScrambler(seed+int64(rank), opts.ScrambleWindow))
	}
	if !opts.DisableSPCs {
		p.spcs = spc.NewSet()
	}
	if fc := (fabric.FaultConfig{
		Drop: opts.FaultDrop, Dup: opts.FaultDup,
		Delay: opts.FaultDelay, DelayDur: opts.FaultDelayDur,
	}); fc.Enabled() {
		seed := opts.FaultSeed
		if seed == 0 {
			seed = 1
		}
		fc.Seed = seed + int64(rank) // decorrelate the per-proc streams
		p.dev.SetFaultInjector(fabric.NewFaultInjector(fc, p.spcs))
	}
	if opts.Reliable {
		p.rel = newReliability(p, opts.RetransmitTimeout, opts.RetryBudget)
	}
	if opts.TraceCapacity > 0 {
		p.tracer = trace.New(opts.TraceCapacity)
	}
	if opts.Telemetry {
		p.tel = telemetry.New()
		p.histMatch = p.tel.MatchSection
		p.histLatency = p.tel.MsgLatency
	}
	p.levelGuard.level = opts.ThreadLevel
	insts := make([]*cri.Instance, opts.NumInstances)
	for i := range insts {
		ctx, err := p.dev.CreateContext(opts.QueueDepth)
		if err != nil {
			return nil, err
		}
		// Each instance owns a child counter set; Proc.SPCSnapshot merges
		// the children back into the process totals.
		var is *spc.Set
		if p.spcs != nil {
			is = spc.NewSet()
		}
		insts[i] = cri.NewInstance(i, ctx, is)
		if p.tel != nil {
			insts[i].SetLockWaitHistogram(p.tel.LockWait)
		}
	}
	p.pool = cri.NewPool(insts, opts.Assignment)
	p.prog = progress.New(opts.Progress, p.pool, p.dispatch, p.spcs)
	if p.tracer != nil || p.tel != nil {
		var passHist *telemetry.Histogram
		if p.tel != nil {
			passHist = p.tel.ProgressPass
		}
		p.prog.SetObservers(p.tracer, passHist)
	}
	if opts.ProgressThread {
		p.offload = true
		p.offloadStop = make(chan struct{})
		p.offloadDone = make(chan struct{})
		go p.offloadLoop()
	}
	return p, nil
}

// offloadLoop is the dedicated progress thread: it alone drives completion
// extraction, yielding when idle so application threads can run.
func (p *Proc) offloadLoop() {
	defer close(p.offloadDone)
	var ts cri.ThreadState
	for {
		select {
		case <-p.offloadStop:
			return
		default:
		}
		p.rel.maybeSweep()
		if p.prog.Progress(&ts) == 0 {
			yield()
		}
	}
}

// wire connects every local instance to one context of every peer.
func (p *Proc) wire(procs []*Proc) {
	p.rel.initPeers(len(procs))
	for k := 0; k < p.pool.Len(); k++ {
		inst := p.pool.Get(k)
		eps := make([]*fabric.Endpoint, len(procs))
		for j, q := range procs {
			if q == p {
				continue // self messages short-circuit elsewhere
			}
			remote := q.dev.Context(k % q.pool.Len())
			eps[j] = fabric.NewEndpoint(inst.Context(), remote)
		}
		inst.SetEndpoints(eps)
	}
}

// Rank returns the proc's world rank.
func (p *Proc) Rank() int { return p.rank }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// SPCs returns the proc's residual counter set (nil when disabled). It
// holds only counters with no per-CRI or per-communicator owner; use
// SPCSnapshot for the rolled-up process totals.
func (p *Proc) SPCs() *spc.Set { return p.spcs }

// SPCSnapshot returns the process counter totals: the residual set merged
// with every instance's and every live communicator's child set, plus the
// retained totals of freed communicators.
func (p *Proc) SPCSnapshot() spc.Snapshot {
	if p.spcs == nil {
		return spc.Snapshot{}
	}
	snaps := make([]spc.Snapshot, 0, 2+p.pool.Len())
	snaps = append(snaps, p.spcs.Snapshot())
	for i := 0; i < p.pool.Len(); i++ {
		if s := p.pool.Get(i).SPCs(); s != nil {
			snaps = append(snaps, s.Snapshot())
		}
	}
	p.commMu.RLock()
	snaps = append(snaps, p.retiredSPCs)
	for _, c := range p.comms {
		if c.spcs != nil {
			snaps = append(snaps, c.spcs.Snapshot())
		}
	}
	p.commMu.RUnlock()
	return spc.Merge(snaps...)
}

// Telemetry returns the proc's latency-histogram bundle (nil unless
// Options.Telemetry was set).
func (p *Proc) Telemetry() *telemetry.Telemetry { return p.tel }

// TelemetryStats assembles the proc's full observability snapshot: rolled
// up process totals, the per-CRI and per-communicator attributions they
// merge from, the residual set, and the latency histograms.
func (p *Proc) TelemetryStats() telemetry.ProcStats {
	ps := telemetry.ProcStats{Rank: p.rank, Hists: p.tel.Snapshot()}
	if p.spcs == nil {
		return ps
	}
	for i := 0; i < p.pool.Len(); i++ {
		if s := p.pool.Get(i).SPCs(); s != nil {
			ps.PerCRI = append(ps.PerCRI, telemetry.CRIStat{Index: i, Counters: s.Snapshot()})
		}
	}
	p.commMu.RLock()
	ps.Residual = spc.Merge(p.spcs.Snapshot(), p.retiredSPCs)
	for id, c := range p.comms {
		if c.spcs != nil {
			ps.PerComm = append(ps.PerComm, telemetry.CommStat{ID: id, Counters: c.spcs.Snapshot()})
		}
	}
	p.commMu.RUnlock()
	ps.Process = ps.MergeChildren()
	return ps
}

// Tracer returns the proc's event tracer (nil unless Options.TraceCapacity
// was set).
func (p *Proc) Tracer() *trace.Tracer { return p.tracer }

// Pool exposes the instance pool (used by the one-sided layer).
func (p *Proc) Pool() *cri.Pool { return p.pool }

// Device exposes the fabric device (used by the one-sided layer).
func (p *Proc) Device() *fabric.Device { return p.dev }

// CommWorld returns this proc's handle on the world communicator.
func (p *Proc) CommWorld() *Comm {
	p.commMu.RLock()
	defer p.commMu.RUnlock()
	return p.comms[1] // id 1 is created by NewWorld
}

func (p *Proc) registerComm(c *Comm) {
	p.commMu.Lock()
	p.comms[c.id] = c
	p.commMu.Unlock()
}

func (p *Proc) unregisterComm(id uint32) {
	p.commMu.Lock()
	if c := p.comms[id]; c != nil && c.spcs != nil {
		// Retain the freed communicator's totals so process roll-ups are
		// monotone across communicator lifetimes.
		p.retiredSPCs = spc.Merge(p.retiredSPCs, c.spcs.Snapshot())
	}
	delete(p.comms, id)
	p.commMu.Unlock()
}

func (p *Proc) commByID(id uint32) *Comm {
	p.commMu.RLock()
	c := p.comms[id]
	p.commMu.RUnlock()
	return c
}

// Completer is implemented by CQE tokens that know how to complete
// themselves (send requests, one-sided operations).
type Completer interface {
	Complete(fabric.CQE)
}

// dispatch routes one extracted completion event. It runs inside the
// progress engine, under the instance lock of the polled instance.
func (p *Proc) dispatch(in *cri.Instance, e fabric.CQE) {
	switch e.Kind {
	case fabric.CQESendComplete:
		if c, ok := e.Packet.Token.(Completer); ok && c != nil {
			c.Complete(e)
		}
	case fabric.CQERecv:
		p.deliver(e.Packet)
	default: // one-sided completions
		if c, ok := e.Token.(Completer); ok && c != nil {
			c.Complete(e)
		}
	}
}

// deliver pushes an inbound two-sided packet through the owning
// communicator's matching engine under its matching lock.
func (p *Proc) deliver(pkt *fabric.Packet) {
	env := pkt.Envelope()
	if env.Kind == fabric.KindAck {
		p.rel.handleAck(pkt)
		return
	}
	if pkt.RelSeq != 0 && p.rel != nil && !p.rel.acceptData(pkt) {
		// Transport-level duplicate: already delivered (or buffered); the
		// dedup counted it and re-acked the sender. Drop before matching.
		return
	}
	c := p.commByID(env.Comm)
	if c == nil {
		// The communicator was freed (or never existed here) while this
		// packet was in flight — with real networks and MPI_Comm_free that
		// is a legal race, not a fatal protocol violation. Count and drop.
		p.spcs.Inc(spc.LatePackets)
		return
	}
	switch env.Kind {
	case fabric.KindRendezvousACK:
		c.handleRendezvousACK(pkt)
		return
	case fabric.KindRendezvousData:
		c.handleRendezvousFIN(pkt)
		return
	}
	p.tracer.Emit(trace.KindRecvDeliver, env.Src, int32(env.Seq))
	scratch, _ := p.scratchPool.Get().(*completionScratch)
	if scratch == nil {
		scratch = &completionScratch{}
	}
	// Measure matching-lock wait: Table II's match time includes the time
	// threads spend fighting over the matching critical section. The wait
	// is charged to the communicator's own counter set.
	if !c.matchMu.TryLock() {
		t0 := c.spcs.StartTimer()
		c.matchMu.Lock()
		c.engine.ChargeWait(sinceTimer(c.spcs, t0))
	}
	h0 := p.histMatch.Start()
	scratch.buf = c.engine.Deliver(pkt, scratch.buf[:0])
	p.histMatch.ObserveSince(h0)
	c.matchMu.Unlock()
	for _, comp := range scratch.buf {
		c.completeRecv(comp)
	}
	scratch.buf = scratch.buf[:0]
	p.scratchPool.Put(scratch)
}

// Progress drives the progress engine once for the calling thread. Under
// the software-offload design, application threads never enter the engine;
// the dedicated thread owns it, so callers simply yield.
func (p *Proc) progressFor(ts *cri.ThreadState) int {
	p.rel.maybeSweep()
	if p.offload {
		yield()
		return 0
	}
	if p.bigLock {
		p.bigMu.Lock()
		defer p.bigMu.Unlock()
	}
	return p.prog.Progress(ts)
}

// DrainProgress drains all pending fabric events (teardown only).
func (p *Proc) DrainProgress() int { return p.prog.Drain() }
