package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backends"
	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/latency"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// World is a job: a set of Procs (the analog of MPI processes) connected by
// a transport backend, plus the communicator registry. With the default
// simulated backend all Procs live in one address space; with a distributed
// backend (see NewDistributedWorld) each OS process hosts exactly one local
// Proc and the slice holds nil for remote ranks.
type World struct {
	machine hw.Machine
	opts    Options
	net     transport.Network
	caps    transport.Caps
	procs   []*Proc

	commMu   sync.Mutex
	nextComm uint32
}

// NewWorld creates n Procs with identical options and wires instance k of
// every proc to context (k mod remote instances) of every other proc.
func NewWorld(machine hw.Machine, n int, opts Options) (*World, error) {
	w, err := newWorld(machine, n, opts)
	if err != nil {
		return nil, err
	}
	for rank := 0; rank < n; rank++ {
		p, err := newProc(w, rank, machine, w.opts)
		if err != nil {
			return nil, fmt.Errorf("core: proc %d: %w", rank, err)
		}
		w.procs = append(w.procs, p)
	}
	// Wire endpoints now that every device exists.
	for _, p := range w.procs {
		if err := p.wire(); err != nil {
			return nil, err
		}
	}
	// The world communicator spans all ranks.
	if _, err := w.NewComm(allRanks(n)); err != nil {
		return nil, err
	}
	return w, nil
}

// NewDistributedWorld creates the World of one OS process in a multi-process
// job: rank's Proc is local, the other size-1 slots stay nil, and every
// endpoint reaches its peer through net (which must be a distributed
// backend, e.g. tcpnet). Communicator creation must follow the identical
// collective order in every process so the deterministic id allocation
// agrees — the same contract MPI imposes on MPI_Comm_create.
func NewDistributedWorld(machine hw.Machine, rank, size int, net transport.Network, opts Options) (*World, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("core: rank %d outside world of %d", rank, size)
	}
	if net == nil {
		return nil, fmt.Errorf("core: distributed world requires an explicit transport network")
	}
	opts.Network = net
	w, err := newWorld(machine, size, opts)
	if err != nil {
		return nil, err
	}
	w.procs = make([]*Proc, size)
	p, err := newProc(w, rank, machine, w.opts)
	if err != nil {
		return nil, fmt.Errorf("core: proc %d: %w", rank, err)
	}
	w.procs[rank] = p
	if err := p.wire(); err != nil {
		return nil, err
	}
	if _, err := w.NewComm(allRanks(size)); err != nil {
		return nil, err
	}
	return w, nil
}

// newWorld validates options against the backend's capabilities and builds
// the empty world shell.
func newWorld(machine hw.Machine, n int, opts Options) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: world size %d < 1", n)
	}
	opts = opts.withDefaults(machine)
	net := opts.Network
	if net == nil {
		net = backends.Sim()
		opts.Network = net
	}
	caps := net.Caps()
	wantFaults := opts.FaultDrop > 0 || opts.FaultDup > 0 || opts.FaultDelay > 0
	if (wantFaults || opts.ScrambleWindow > 0) && !caps.FaultInjection {
		return nil, fmt.Errorf("core: transport %q does not support fault injection", caps.Name)
	}
	if caps.Lossless {
		// A lossless wire (e.g. a TCP stream) cannot drop or duplicate:
		// the ack/retransmit bookkeeping would be pure overhead.
		opts.Reliable = false
	}
	return &World{machine: machine, opts: opts, net: net, caps: caps}, nil
}

func allRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Size returns the number of Procs.
func (w *World) Size() int { return len(w.procs) }

// Machine returns the machine model the world runs on.
func (w *World) Machine() hw.Machine { return w.machine }

// Options returns the world's normalized options.
func (w *World) Options() Options { return w.opts }

// Proc returns the Proc with the given world rank (nil for a remote rank
// of a distributed world).
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// LocalProc returns this process's Proc: in an in-process world the rank-0
// proc, in a distributed world the single non-nil one.
func (w *World) LocalProc() *Proc {
	for _, p := range w.procs {
		if p != nil {
			return p
		}
	}
	return nil
}

// LocalProcs returns every Proc hosted by this OS process in rank order:
// all of them for an in-process world, the single local one for a
// distributed world. Live observability endpoints iterate this.
func (w *World) LocalProcs() []*Proc {
	out := make([]*Proc, 0, len(w.procs))
	for _, p := range w.procs {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// TransportCaps returns the capability flags of the world's backend.
func (w *World) TransportCaps() transport.Caps { return w.caps }

// Info carries communicator assertions, mirroring MPI info keys.
type Info struct {
	// AllowOvertaking is mpi_assert_allow_overtaking: the application
	// does not rely on FIFO matching order, so sequence validation is
	// skipped (Section IV-D).
	AllowOvertaking bool
}

// NewComm collectively creates a communicator over the given world ranks
// and returns one handle per member, indexed by communicator rank.
func (w *World) NewComm(worldRanks []int) ([]*Comm, error) {
	return w.NewCommWithInfo(worldRanks, Info{})
}

// NewCommWithInfo is NewComm with communicator assertions.
func (w *World) NewCommWithInfo(worldRanks []int, info Info) ([]*Comm, error) {
	if len(worldRanks) == 0 {
		return nil, fmt.Errorf("core: empty communicator group")
	}
	seen := make(map[int]bool, len(worldRanks))
	for _, r := range worldRanks {
		if r < 0 || r >= len(w.procs) {
			return nil, fmt.Errorf("core: rank %d outside world of %d", r, len(w.procs))
		}
		if seen[r] {
			return nil, fmt.Errorf("core: rank %d appears twice in group", r)
		}
		seen[r] = true
	}
	w.commMu.Lock()
	w.nextComm++
	id := w.nextComm
	w.commMu.Unlock()

	group := append([]int(nil), worldRanks...)
	comms := make([]*Comm, len(group))
	for commRank, worldRank := range group {
		if w.procs[worldRank] == nil {
			continue // remote rank of a distributed world
		}
		comms[commRank] = newComm(w.procs[worldRank], id, group, commRank, info)
	}
	return comms, nil
}

// Close shuts down every proc's device and stops offload threads.
func (w *World) Close() {
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		if p.offloadStop != nil {
			close(p.offloadStop)
			<-p.offloadDone
			p.offloadStop = nil
		}
		p.dev.Close()
	}
}

// Proc is one MPI process: a transport device, a pool of Communication
// Resource Instances, a progress engine, and the communicator registry for
// inbound dispatch.
type Proc struct {
	world  *World
	rank   int
	dev    transport.Device
	pool   *cri.Pool
	prog   *progress.Engine
	spcs   *spc.Set
	tracer *trace.Tracer

	// tel bundles the latency histograms (Options.Telemetry); the
	// histograms the proc's own hot paths record into are cached as direct
	// pointers so a disabled hook is one nil check.
	tel           *telemetry.Telemetry
	histMatch     *telemetry.Histogram
	histLatency   *telemetry.Histogram
	histOneWay    *telemetry.Histogram
	histResidency *telemetry.Histogram

	// lat is the per-message critical-path attribution recorder
	// (Options.Latency; nil-safe, every hot-path hook is one nil check).
	lat *latency.Recorder

	// traceWire marks eager sends with the trace-context wire extension
	// (Options.TraceWire); clock holds the backend's peer clock-offset
	// estimator when it implements transport.ClockSync (nil otherwise).
	traceWire bool
	clock     transport.ClockSync

	commMu sync.RWMutex
	comms  map[uint32]*Comm
	// retiredSPCs retains the counter totals of freed communicators so the
	// process roll-up never loses history. Guarded by commMu.
	retiredSPCs spc.Snapshot

	// bigMu is the process-wide lock of the BigLock comparator design.
	bigMu   prof.Mutex
	bigLock bool

	// prof is the contention-and-phase profiler (nil unless
	// Options.Profile; all its hand-outs are nil-safe). profThreads
	// numbers the thread clocks NewThread hands out.
	prof        *prof.Profiler
	profThreads atomic.Int32

	// levelGuard enforces the negotiated threading level.
	levelGuard levelGuard

	// rel is the delivery-reliability layer (nil unless Options.Reliable;
	// all its methods are nil-safe).
	rel *reliability

	// flight is the flight recorder (nil unless Options.FlightCapacity;
	// nil-safe). flightRing is the proc-shared ring for paths with no
	// thread identity — the reliability sweep, ack handling — so their
	// events land in the same merged record.
	flight     *flight.Recorder
	flightRing *flight.Ring

	// offload is the dedicated progress thread (Options.ProgressThread).
	offload     bool
	offloadStop chan struct{}
	offloadDone chan struct{}

	// rendezvous bookkeeping (see rendezvous.go).
	rdvMu    sync.Mutex
	rdvSends map[uint64]*rdvSend
	rdvRecvs map[rdvKey]*rdvRecv
	rdvNext  atomic.Uint64

	scratchPool sync.Pool // []match.Completion scratch buffers
}

func newProc(w *World, rank int, machine hw.Machine, opts Options) (*Proc, error) {
	p := &Proc{
		world:    w,
		rank:     rank,
		comms:    make(map[uint32]*Comm),
		bigLock:  opts.BigLock,
		rdvSends: make(map[uint64]*rdvSend),
		rdvRecvs: make(map[rdvKey]*rdvRecv),
	}
	if !opts.DisableSPCs {
		p.spcs = spc.NewSet()
	}
	if opts.Profile {
		p.prof = prof.New()
		p.bigMu.Bind(p.prof.NewSite("core.biglock", -1, 0))
	}
	if opts.FlightCapacity > 0 {
		p.flight = flight.NewRecorder(opts.FlightCapacity)
		p.flightRing = p.flight.NewRing(fmt.Sprintf("rank%d/proc", rank))
	}
	cfg := transport.DeviceConfig{Counters: p.spcs}
	if opts.ScrambleWindow > 0 {
		seed := opts.ScrambleSeed
		if seed == 0 {
			seed = 1
		}
		// Rank is mixed into the seed so procs draw decorrelated streams.
		cfg.ScrambleWindow = opts.ScrambleWindow
		cfg.ScrambleSeed = seed + int64(rank)
	}
	if fc := (transport.FaultConfig{
		Drop: opts.FaultDrop, Dup: opts.FaultDup,
		Delay: opts.FaultDelay, DelayDur: opts.FaultDelayDur,
	}); fc.Enabled() {
		seed := opts.FaultSeed
		if seed == 0 {
			seed = 1
		}
		fc.Seed = seed + int64(rank)
		cfg.Faults = fc
	}
	dev, err := w.net.NewDevice(rank, machine, cfg)
	if err != nil {
		return nil, err
	}
	p.dev = dev
	if opts.Reliable {
		p.rel = newReliability(p, opts.RetransmitTimeout, opts.RetryBudget)
		p.rel.bindProfSite(p.prof.NewSite("reliability.window", -1, 0))
	}
	if opts.TraceCapacity > 0 {
		p.tracer = trace.New(opts.TraceCapacity)
	}
	if opts.Telemetry {
		p.tel = telemetry.New()
		p.histMatch = p.tel.MatchSection
		p.histLatency = p.tel.MsgLatency
		p.histOneWay = p.tel.OneWayLatency
		p.histResidency = p.tel.MatchResidency
	}
	if opts.Latency {
		p.lat = latency.NewRecorder(opts.LatencyExemplars)
	}
	p.traceWire = opts.TraceWire
	if cs, ok := dev.(transport.ClockSync); ok {
		p.clock = cs
	} else if cs, ok := w.net.(transport.ClockSync); ok {
		p.clock = cs
	}
	p.levelGuard.level = opts.ThreadLevel
	insts := make([]*cri.Instance, opts.NumInstances)
	for i := range insts {
		ctx, err := p.dev.CreateContext(opts.QueueDepth)
		if err != nil {
			return nil, err
		}
		// Each instance owns a child counter set; Proc.SPCSnapshot merges
		// the children back into the process totals.
		var is *spc.Set
		if p.spcs != nil {
			is = spc.NewSet()
		}
		insts[i] = cri.NewInstance(i, ctx, is)
		if p.tel != nil {
			insts[i].SetLockWaitHistogram(p.tel.LockWait)
		}
		insts[i].BindProfSite(p.prof.NewSite("cri.instance", i, 0))
		insts[i].BindFlight(p.flightRing, opts.FlightLockWaitThreshold)
	}
	p.pool, err = cri.NewPool(insts, opts.Assignment)
	if err != nil {
		return nil, err
	}
	p.pool.SetSPCs(p.spcs)
	p.prog = progress.New(opts.Progress, p.pool, p.dispatch, p.spcs)
	p.prog.BindProfSite(p.prof.NewSite("progress.serial", -1, 0))
	if p.tracer != nil || p.tel != nil {
		var passHist *telemetry.Histogram
		if p.tel != nil {
			passHist = p.tel.ProgressPass
		}
		p.prog.SetObservers(p.tracer, passHist)
	}
	if opts.ProgressThread {
		p.offload = true
		p.offloadStop = make(chan struct{})
		p.offloadDone = make(chan struct{})
		go p.offloadLoop()
	}
	return p, nil
}

// offloadLoop is the dedicated progress thread: it alone drives completion
// extraction, yielding when idle so application threads can run.
func (p *Proc) offloadLoop() {
	defer close(p.offloadDone)
	var ts cri.ThreadState
	ts.SetClock(p.prof.NewThreadClock(fmt.Sprintf("rank%d/offload", p.rank)))
	ts.SetFlight(p.flight.NewRing(fmt.Sprintf("rank%d/offload", p.rank)))
	defer ts.Clock().Stop()
	for {
		select {
		case <-p.offloadStop:
			return
		default:
		}
		p.rel.maybeSweep(ts.Clock())
		if p.prog.Progress(&ts) == 0 {
			yield()
		}
	}
}

// wire acquires an endpoint from every local instance to one context of
// every peer: instance k reaches context (k mod peer instances) of each
// remote rank. Every rank runs the same normalized options, so the peer's
// instance count is known without inspecting its (possibly remote) process.
// Endpoints are lazily connectable — acquisition is bookkeeping, nothing is
// dialed here; the first send toward a peer establishes (or reuses) the
// pair's shared physical connection, and an establishment failure surfaces
// from the send path as a typed error.
func (p *Proc) wire() error {
	size := len(p.world.procs)
	p.rel.initPeers(size)
	for k := 0; k < p.pool.Len(); k++ {
		inst := p.pool.Get(k)
		eps := make([]transport.Endpoint, size)
		for j := 0; j < size; j++ {
			if j == p.rank {
				continue // self messages short-circuit elsewhere
			}
			peerInstances := p.world.opts.NumInstances
			if q := p.world.procs[j]; q != nil {
				peerInstances = q.pool.Len()
			}
			ep, err := p.dev.Connect(inst.Context(), j, k%peerInstances)
			if err != nil {
				return fmt.Errorf("core: wiring rank %d instance %d to rank %d: %w", p.rank, k, j, err)
			}
			eps[j] = ep
		}
		inst.SetEndpoints(eps)
	}
	return nil
}

// Rank returns the proc's world rank.
func (p *Proc) Rank() int { return p.rank }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// SPCs returns the proc's residual counter set (nil when disabled). It
// holds only counters with no per-CRI or per-communicator owner; use
// SPCSnapshot for the rolled-up process totals.
func (p *Proc) SPCs() *spc.Set { return p.spcs }

// SPCSnapshot returns the process counter totals: the residual set merged
// with every instance's and every live communicator's child set, plus the
// retained totals of freed communicators.
func (p *Proc) SPCSnapshot() spc.Snapshot {
	if p.spcs == nil {
		return spc.Snapshot{}
	}
	snaps := make([]spc.Snapshot, 0, 2+p.pool.Len())
	snaps = append(snaps, p.spcs.Snapshot())
	for i := 0; i < p.pool.Len(); i++ {
		if s := p.pool.Get(i).SPCs(); s != nil {
			snaps = append(snaps, s.Snapshot())
		}
	}
	p.commMu.RLock()
	snaps = append(snaps, p.retiredSPCs)
	for _, c := range p.comms {
		if c.spcs != nil {
			snaps = append(snaps, c.spcs.Snapshot())
		}
	}
	p.commMu.RUnlock()
	return spc.Merge(snaps...)
}

// Telemetry returns the proc's latency-histogram bundle (nil unless
// Options.Telemetry was set).
func (p *Proc) Telemetry() *telemetry.Telemetry { return p.tel }

// TelemetryStats assembles the proc's full observability snapshot: rolled
// up process totals, the per-CRI and per-communicator attributions they
// merge from, the residual set, and the latency histograms.
func (p *Proc) TelemetryStats() telemetry.ProcStats {
	ps := telemetry.ProcStats{Rank: p.rank, Hists: append(p.tel.Snapshot(), p.lat.Snapshot()...)}
	if p.spcs == nil {
		return ps
	}
	for i := 0; i < p.pool.Len(); i++ {
		if s := p.pool.Get(i).SPCs(); s != nil {
			ps.PerCRI = append(ps.PerCRI, telemetry.CRIStat{Index: i, Counters: s.Snapshot()})
		}
	}
	p.commMu.RLock()
	ps.Residual = spc.Merge(p.spcs.Snapshot(), p.retiredSPCs)
	for id, c := range p.comms {
		if c.spcs != nil {
			ps.PerComm = append(ps.PerComm, telemetry.CommStat{ID: id, Counters: c.spcs.Snapshot()})
		}
	}
	p.commMu.RUnlock()
	ps.Process = ps.MergeChildren()
	ps.Prof = p.prof.Snapshot()
	return ps
}

// Tracer returns the proc's event tracer (nil unless Options.TraceCapacity
// was set).
func (p *Proc) Tracer() *trace.Tracer { return p.tracer }

// Profiler returns the proc's contention-and-phase profiler (nil unless
// Options.Profile was set; nil is safe to use everywhere).
func (p *Proc) Profiler() *prof.Profiler { return p.prof }

// ClockOffsetToRank0Ns returns the correction mapping this proc's clock
// onto rank 0's (rank0_time = local_time + offset), from the transport's
// NTP-style handshake estimate. Zero for rank 0, for in-process worlds
// (one shared clock), and when no estimate exists.
func (p *Proc) ClockOffsetToRank0Ns() int64 {
	if p.rank == 0 || p.clock == nil {
		return 0
	}
	if off, ok := p.clock.PeerClockOffsetNs(0); ok {
		// off is local − rank0, so mapping local onto rank 0 subtracts it.
		return -off
	}
	return 0
}

// TraceEvents snapshots the proc's retained trace events together with the
// clock anchors a cross-rank merger needs (tracer start instant, offset to
// rank 0) — the payload of one trace shard. Safe without a tracer: the
// result is empty with a zero base.
func (p *Proc) TraceEvents() telemetry.RankEvents {
	return telemetry.RankEvents{
		Rank:           p.rank,
		Events:         p.tracer.Snapshot(),
		BaseUnixNs:     p.tracer.StartUnixNano(),
		ClockToRank0Ns: p.ClockOffsetToRank0Ns(),
	}
}

// FlightRecorder returns the proc's flight recorder (nil unless
// Options.FlightCapacity was set; nil is safe to use everywhere).
func (p *Proc) FlightRecorder() *flight.Recorder { return p.flight }

// FlightRecord assembles the proc's merged, time-ordered flight record in
// dump form. Empty (rank only) when the recorder is off.
func (p *Proc) FlightRecord() flight.RankRecord { return p.flight.RankRecord(p.rank) }

// LatencyRecorder returns the proc's critical-path attribution recorder
// (nil unless Options.Latency was set; nil is safe to use everywhere).
func (p *Proc) LatencyRecorder() *latency.Recorder { return p.lat }

// LatencyDump assembles the proc's attribution dump: per-stage summaries
// plus the tail exemplars with their surrounding flight events. Empty
// (rank only) when attribution is off.
func (p *Proc) LatencyDump() latency.RankDump { return p.lat.Dump(p.rank, p.FlightRecord()) }

// QueueSnapshot captures the proc's live runtime introspection snapshot:
// per-communicator posted/unexpected queue depths, reliability window
// occupancy, and CRI pool levels. Safe to call at any time from any thread
// (it takes each communicator's matching lock briefly); works with the
// flight recorder off.
func (p *Proc) QueueSnapshot() flight.QueueSnapshot {
	qs := flight.QueueSnapshot{Rank: p.rank, CapturedNs: time.Now().UnixNano()}
	p.commMu.RLock()
	comms := make([]*Comm, 0, len(p.comms))
	for _, c := range p.comms {
		comms = append(comms, c)
	}
	p.commMu.RUnlock()
	sort.Slice(comms, func(i, j int) bool { return comms[i].id < comms[j].id })
	for _, c := range comms {
		// Self-locking engines (match.Sharded) publish approximate atomic
		// depth counters; there is no engine-wide lock to freeze them under,
		// and monitoring must not introduce one. Depths from either path are
		// monitoring-only — never a synchronization predicate.
		if !c.selfMatch {
			c.matchMu.Lock()
		}
		qs.Comms = append(qs.Comms, flight.CommQueues{
			Comm:        c.id,
			Posted:      c.engine.PostedLen(),
			Unexpected:  c.engine.UnexpectedLen(),
			OOSBuffered: c.engine.OOSBuffered(),
		})
		if !c.selfMatch {
			c.matchMu.Unlock()
		}
	}
	qs.Windows = p.rel.windowSnapshot()
	for i := 0; i < p.pool.Len(); i++ {
		in := p.pool.Get(i)
		qs.CRIs = append(qs.CRIs, flight.CRILevel{Index: i, Pending: in.Context().Pending()})
	}
	return qs
}

// watchdogSample condenses the proc's state into one detector observation.
func (p *Proc) watchdogSample() flight.Sample {
	s := flight.Sample{NowNs: time.Now().UnixNano()}
	if p.spcs != nil {
		snap := p.SPCSnapshot()
		s.CountersValid = true
		s.Sent = uint64(snap[spc.MessagesSent])
		s.Received = uint64(snap[spc.MessagesReceived])
		s.Retransmits = uint64(snap[spc.Retransmits])
	}
	qs := p.QueueSnapshot()
	s.Comms = qs.Comms
	for _, w := range qs.Windows {
		s.Unacked += w.Unacked
	}
	if stages, e2e, ok := p.lat.StageP99s(); ok {
		s.LatencyValid = true
		s.E2EP99Ns = e2e
		s.StageP99 = stages
	}
	return s
}

// Pool exposes the instance pool (used by the one-sided layer).
func (p *Proc) Pool() *cri.Pool { return p.pool }

// RegisterMemory registers buf with the proc's device for one-sided access
// (the window/rendezvous sink path of the one-sided layer).
func (p *Proc) RegisterMemory(buf []byte) transport.MemRegion {
	return p.dev.RegisterMemory(buf)
}

// DeregisterMemory removes a region registered with RegisterMemory.
func (p *Proc) DeregisterMemory(r transport.MemRegion) { p.dev.DeregisterMemory(r) }

// Region looks up a registered region by id.
func (p *Proc) Region(id uint64) (transport.MemRegion, bool) { return p.dev.Region(id) }

// TransportCaps returns the capability flags of the proc's backend.
func (p *Proc) TransportCaps() transport.Caps { return p.world.caps }

// CommWorld returns this proc's handle on the world communicator.
func (p *Proc) CommWorld() *Comm {
	p.commMu.RLock()
	defer p.commMu.RUnlock()
	return p.comms[1] // id 1 is created by NewWorld
}

func (p *Proc) registerComm(c *Comm) {
	p.commMu.Lock()
	p.comms[c.id] = c
	p.commMu.Unlock()
}

func (p *Proc) unregisterComm(id uint32) {
	p.commMu.Lock()
	if c := p.comms[id]; c != nil && c.spcs != nil {
		// Retain the freed communicator's totals so process roll-ups are
		// monotone across communicator lifetimes.
		p.retiredSPCs = spc.Merge(p.retiredSPCs, c.spcs.Snapshot())
	}
	delete(p.comms, id)
	p.commMu.Unlock()
}

func (p *Proc) commByID(id uint32) *Comm {
	p.commMu.RLock()
	c := p.comms[id]
	p.commMu.RUnlock()
	return c
}

// Completer is implemented by CQE tokens that know how to complete
// themselves (send requests, one-sided operations).
type Completer interface {
	Complete(transport.CQE)
}

// dispatch routes one extracted completion event. It runs inside the
// progress engine, under the instance lock of the polled instance; clk is
// the progressing thread's phase clock (nil when profiling is off).
func (p *Proc) dispatch(clk *prof.ThreadClock, in *cri.Instance, e transport.CQE) {
	switch e.Kind {
	case transport.CQESendComplete:
		if c, ok := e.Packet.Token.(Completer); ok && c != nil {
			c.Complete(e)
		}
	case transport.CQERecv:
		p.deliver(clk, in, e.Packet)
	default: // one-sided completions
		if c, ok := e.Token.(Completer); ok && c != nil {
			c.Complete(e)
		}
	}
}

// deliver pushes an inbound two-sided packet through the owning
// communicator's matching engine under its matching lock. in is the CRI
// instance whose context the packet arrived on (nil for self messages,
// which bypass the fabric); clk the delivering thread's phase clock.
func (p *Proc) deliver(clk *prof.ThreadClock, in *cri.Instance, pkt *transport.Packet) {
	env := pkt.Envelope()
	if env.Kind == transport.KindAck {
		p.rel.handleAck(pkt)
		return
	}
	if pkt.RelSeq != 0 && p.rel != nil && !p.rel.acceptData(pkt) {
		// Transport-level duplicate: already delivered (or buffered); the
		// dedup counted it and re-acked the sender. Drop before matching.
		return
	}
	c := p.commByID(env.Comm)
	if c == nil {
		// The communicator was freed (or never existed here) while this
		// packet was in flight — with real networks and MPI_Comm_free that
		// is a legal race, not a fatal protocol violation. Count and drop.
		p.spcs.Inc(spc.LatePackets)
		return
	}
	switch env.Kind {
	case transport.KindRendezvousACK:
		c.handleRendezvousACK(pkt)
		return
	case transport.KindRendezvousData:
		c.handleRendezvousFIN(pkt)
		return
	}
	criIdx := -1
	if in != nil {
		criIdx = in.Index()
	}
	if pkt.TraceID != 0 {
		now := time.Now().UnixNano()
		// Arrival stamp feeds the match-residency histogram at completion.
		pkt.RecvStamp = now
		if p.histOneWay != nil && pkt.Stamp != 0 {
			// The send stamp is on the origin's clock; the transport's
			// NTP-style estimate maps it into ours (local = peer + offset).
			var off int64
			if p.clock != nil {
				if o, ok := p.clock.PeerClockOffsetNs(int(pkt.Origin)); ok {
					off = o
				}
			}
			p.histOneWay.ObserveNs(now - (pkt.Stamp + off))
		}
	}
	p.tracer.EmitFlowCRI(trace.KindRecvDeliver, pkt.TraceID, criIdx, env.Src, int32(env.Seq))
	scratch, _ := p.scratchPool.Get().(*completionScratch)
	if scratch == nil {
		scratch = &completionScratch{}
	}
	// Measure matching-lock wait: Table II's match time includes the time
	// threads spend fighting over the matching critical section. The wait
	// is charged to the communicator's own counter set (and, profiled, to
	// the matching lock's site and the thread's lock-wait phase).
	if !c.selfMatch && !c.matchMu.TryLockQuiet() {
		t0 := c.spcs.StartTimer()
		c.matchMu.LockClocked(clk)
		c.engine.ChargeWait(sinceTimer(c.spcs, t0))
	}
	clk.Begin(prof.PhaseMatch)
	h0 := p.histMatch.Start()
	scratch.buf = c.engine.Deliver(pkt, scratch.buf[:0])
	p.histMatch.ObserveSince(h0)
	clk.End()
	if !c.selfMatch {
		c.matchMu.Unlock()
	}
	var matchedNs int64
	if p.lat != nil && len(scratch.buf) > 0 {
		matchedNs = time.Now().UnixNano()
	}
	for _, comp := range scratch.buf {
		// A completion produced at delivery matched a posted receive.
		c.completeRecv(comp, matchedNs, false)
	}
	scratch.buf = scratch.buf[:0]
	p.scratchPool.Put(scratch)
}

// measure assembles one completed eager message's critical-path measurement
// from the packet's stamps. matchedNs is when the matching engine produced
// the completion; unexpected reports whether it matched via the unexpected
// queue. Sender-local stage fields that never crossed the wire (real
// networks) stay Unknown; the transit stage absorbs whatever the engine
// could not split out, so the stages always sum to at most the end-to-end.
func (p *Proc) measure(pkt *transport.Packet, tag int32, matchedNs int64, unexpected bool) latency.Measurement {
	now := time.Now().UnixNano()
	// The send stamp is on the origin's clock; the transport's NTP-style
	// estimate maps it into ours (local = peer + offset).
	var off int64
	if p.clock != nil {
		if o, ok := p.clock.PeerClockOffsetNs(int(pkt.Origin)); ok {
			off = o
		}
	}
	sendLocal := pkt.Stamp + off
	m := latency.Measurement{
		TraceID:    pkt.TraceID,
		Origin:     pkt.Origin,
		Tag:        tag,
		Unexpected: unexpected,
		E2ENs:      clampNs(now - sendLocal),
		// Completion anchored on the flight recorder's clock (relative wall
		// time) so exemplar event windows compare directly against Event.TS.
		CompletedAtNs: now - p.flight.StartUnixNano(),
	}
	for i := range m.StageNs {
		m.StageNs[i] = latency.Unknown
	}
	acq, wire := pkt.SendAcqNs, pkt.SendWireNs
	if acq > 0 {
		m.StageNs[latency.StageCRIAcquire] = acq
	}
	if wire > 0 {
		m.StageNs[latency.StageWireWrite] = wire
	}
	// "Injection complete" is the transit anchor; unknown sender stages fold
	// into transit rather than vanishing.
	base := sendLocal
	if acq > 0 {
		base += acq
	}
	if wire > 0 {
		base += wire
	}
	recv := pkt.RecvStamp
	if arrive := pkt.ArriveNs; arrive > 0 {
		m.StageNs[latency.StageTransit] = clampNs(arrive - base)
		if recv != 0 {
			m.StageNs[latency.StageDeliverWait] = clampNs(recv - arrive)
		}
	} else if recv != 0 {
		// No arrival stamp (self messages): transit absorbs the delivery wait.
		m.StageNs[latency.StageTransit] = clampNs(recv - base)
	}
	if recv != 0 && matchedNs != 0 {
		ms := latency.StageMatchPosted
		if unexpected {
			ms = latency.StageMatchUnexpected
		}
		m.StageNs[ms] = clampNs(matchedNs - recv)
	}
	if matchedNs != 0 {
		m.StageNs[latency.StageComplete] = clampNs(now - matchedNs)
	}
	return m
}

func clampNs(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Progress drives the progress engine once for the calling thread. Under
// the software-offload design, application threads never enter the engine;
// the dedicated thread owns it, so callers simply yield.
func (p *Proc) progressFor(ts *cri.ThreadState) int {
	p.rel.maybeSweep(ts.Clock())
	if p.offload {
		yield()
		return 0
	}
	if p.bigLock {
		p.bigMu.LockClocked(ts.Clock())
		defer p.bigMu.Unlock()
	}
	return p.prog.Progress(ts)
}

// DrainProgress drains all pending transport events (teardown only).
func (p *Proc) DrainProgress() int { return p.prog.Drain() }
