// Package cri implements Communication Resource Instances — the paper's
// central abstraction (Section III-B). A CRI bundles a network context, its
// completion queue, and the endpoints reaching each peer, protected by one
// per-instance lock. A Pool owns all of a process's instances and assigns
// them to threads with the two strategies of Algorithm 1: round-robin
// (atomic circular counter, new instance per call) and dedicated
// (thread-local cache of a permanently assigned instance).
package cri

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Assignment selects how threads are mapped to instances.
type Assignment int

const (
	// RoundRobin hands out the next instance on every acquisition
	// (Algorithm 1, GET-INSTANCE-ID–ROUND-ROBIN).
	RoundRobin Assignment = iota
	// Dedicated permanently assigns an instance per thread via the
	// thread-local cache (Algorithm 1, GET-INSTANCE-ID–DEDICATED).
	Dedicated
	// FreeList hands each sender an exclusively owned instance popped from
	// an atomic Treiber-stack free-list, so the send-path instance lock is
	// uncontended between senders (progress threads may still try-lock it).
	// When every instance is claimed (threads > instances) acquisition falls
	// back to round-robin, which keeps liveness at the cost of contention.
	FreeList
)

func (a Assignment) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case Dedicated:
		return "dedicated"
	case FreeList:
		return "free-list"
	default:
		return fmt.Sprintf("assignment(%d)", int(a))
	}
}

// Instance is one Communication Resource Instance.
type Instance struct {
	mu    prof.Mutex
	index int
	ctx   transport.Context
	eps   []transport.Endpoint // indexed by remote rank; nil for self
	// spcs is this instance's own attributed counter set (a child of the
	// process totals), so contention localizes to an instance. Nil when
	// counters are disabled.
	spcs *spc.Set
	// lockWait records blocking instance-lock acquisitions; nil when
	// latency telemetry is disabled.
	lockWait *telemetry.Histogram
	// flightRing receives lock-wait flight events when a contended
	// acquisition blocks for at least flightWaitNs; nil when the flight
	// recorder is off.
	flightRing   *flight.Ring
	flightWaitNs int64
}

// NewInstance wraps a transport context as instance index within its pool.
// spcs is the instance's OWN counter set (not the process set): callers
// that want per-instance attribution pass a fresh set per instance and
// roll the children up with spc.Merge.
func NewInstance(index int, ctx transport.Context, spcs *spc.Set) *Instance {
	return &Instance{index: index, ctx: ctx, spcs: spcs}
}

// SetLockWaitHistogram attaches a histogram recording blocking lock waits.
// Call during setup, before the instance is shared between threads.
func (in *Instance) SetLockWaitHistogram(h *telemetry.Histogram) { in.lockWait = h }

// BindFlight attaches a flight-recorder ring that receives a lock-wait
// event whenever a contended acquisition blocks for at least threshold
// (0 = flight.DefaultLockWaitThreshold). Call during setup; a nil ring
// leaves the hook at one branch.
func (in *Instance) BindFlight(r *flight.Ring, threshold time.Duration) {
	if threshold <= 0 {
		threshold = flight.DefaultLockWaitThreshold
	}
	in.flightRing = r
	in.flightWaitNs = int64(threshold)
}

// BindProfSite attaches the contention profiler's per-site statistics to
// the instance lock. Call during setup only; a nil site leaves the lock
// unprofiled (single-branch overhead).
func (in *Instance) BindProfSite(s *prof.Site) { in.mu.Bind(s) }

// SPCs returns the instance's attributed counter set (nil when disabled).
func (in *Instance) SPCs() *spc.Set { return in.spcs }

// Index returns the instance's position in its pool.
func (in *Instance) Index() int { return in.index }

// Context returns the underlying network context.
func (in *Instance) Context() transport.Context { return in.ctx }

// SetEndpoints installs the per-rank endpoint table.
func (in *Instance) SetEndpoints(eps []transport.Endpoint) { in.eps = eps }

// Endpoint returns the endpoint to rank, or nil (self or unwired).
func (in *Instance) Endpoint(rank int) transport.Endpoint {
	if rank < 0 || rank >= len(in.eps) {
		return nil
	}
	return in.eps[rank]
}

// Lock acquires the instance lock, recording contention in the instance's
// SPC set (send_lock_waits), the lock-wait histogram, and the profiler site
// when the fast-path try-lock fails. All records are nil-safe single
// branches when disabled.
func (in *Instance) Lock() { in.LockClocked(nil) }

// LockClocked is Lock, additionally charging any contended wait to a
// lock-wait phase section on the calling thread's clock (nil-safe).
func (in *Instance) LockClocked(clk *prof.ThreadClock) {
	if in.mu.TryLockQuiet() {
		return
	}
	in.spcs.Inc(spc.SendLockWaits)
	t0 := in.lockWait.Start()
	var f0 time.Time
	if in.flightRing != nil {
		f0 = time.Now()
	}
	in.mu.LockClocked(clk)
	in.lockWait.ObserveSince(t0)
	if in.flightRing != nil {
		if w := time.Since(f0).Nanoseconds(); w >= in.flightWaitNs {
			in.flightRing.Record(flight.KindLockWait, 0, int32(in.index), int32(w/int64(time.Microsecond)))
		}
	}
}

// TryLock attempts the instance lock without blocking, recording the loss
// on the profiler site when one is bound.
func (in *Instance) TryLock() bool { return in.mu.TryLock() }

// Unlock releases the instance lock.
func (in *Instance) Unlock() { in.mu.Unlock() }

// PollHandler routes one completion event extracted under the instance
// lock. The clock is the polling thread's phase clock (nil when profiling
// is off) so downstream work — matching, request completion — can charge
// its phases without a per-event lookup.
type PollHandler func(clk *prof.ThreadClock, in *Instance, e transport.CQE)

// Poll drains up to max completion events under the caller-held instance
// lock. The caller MUST hold the lock (progress-engine discipline).
func (in *Instance) Poll(clk *prof.ThreadClock, handler PollHandler, max int) int {
	return in.ctx.Poll(func(e transport.CQE) { handler(clk, in, e) }, max)
}

// ThreadState is the per-thread assignment cache — the TLS slot of
// Algorithm 1. Go has no thread-local storage, so the runtime hands each
// communicating goroutine an explicit handle holding this state; the lookup
// cost is identical (one pointer dereference).
type ThreadState struct {
	dedicated int
	assigned  bool
	// clock is the thread's phase clock (nil when profiling is off). It
	// rides in the TLS stand-in so every layer the thread enters — send
	// path, progress engine, matching — can attribute its time without
	// extra plumbing.
	clock *prof.ThreadClock
	// flight is the thread's flight-recorder ring (nil when the recorder
	// is off), riding in the TLS stand-in for the same reason.
	flight *flight.Ring
}

// SetClock attaches the thread's phase clock. Call at thread creation.
func (ts *ThreadState) SetClock(c *prof.ThreadClock) { ts.clock = c }

// Clock returns the thread's phase clock, nil when profiling is off.
func (ts *ThreadState) Clock() *prof.ThreadClock { return ts.clock }

// SetFlight attaches the thread's flight ring. Call at thread creation.
func (ts *ThreadState) SetFlight(r *flight.Ring) { ts.flight = r }

// Flight returns the thread's flight ring, nil when the recorder is off.
func (ts *ThreadState) Flight() *flight.Ring { return ts.flight }

// NewThreadState returns a state with a pre-assigned dedicated instance;
// a negative index means unassigned. The virtual-time model (internal/simnet)
// uses this to drive the same assignment logic without a Pool.
func NewThreadState(dedicated int) ThreadState {
	if dedicated < 0 {
		return ThreadState{}
	}
	return ThreadState{dedicated: dedicated, assigned: true}
}

// Reset clears the cached dedicated assignment (used when a thread detaches
// and its instance may be recycled).
func (ts *ThreadState) Reset() { ts.assigned = false }

// Dedicated returns the cached instance index, or -1 if unassigned.
func (ts *ThreadState) Dedicated() int {
	if !ts.assigned {
		return -1
	}
	return ts.dedicated
}

// Pool owns a process's instances and implements the assignment strategies.
type Pool struct {
	instances []*Instance
	mode      Assignment
	rr        atomic.Uint64
	// spcs is the process counter set free-list acquisitions attribute to
	// (nil when counters are disabled).
	spcs *spc.Set

	// The free-list is a Treiber stack over instance indices. freeHead packs
	// {version:32 | index+1:32}: the low half is the top-of-stack index plus
	// one (0 = empty), the high half a version bumped on every successful
	// CAS, which defeats ABA (a stale head from before a pop/push pair can
	// never CAS successfully, because the version moved even if the index
	// half came back around). freeNext[i] holds the index+1 of the element
	// below i, with the same +1/0 encoding. Indices fit easily in 32 bits:
	// pools are at most a few dozen instances.
	freeHead atomic.Uint64
	freeNext []atomic.Int32
}

// ErrEmptyPool reports a pool construction with no instances — a
// misconfiguration a real launcher surfaces as an init error, not a crash.
var ErrEmptyPool = errors.New("cri: empty instance pool")

// NewPool builds a pool over instances with the given assignment strategy.
func NewPool(instances []*Instance, mode Assignment) (*Pool, error) {
	if len(instances) == 0 {
		return nil, ErrEmptyPool
	}
	p := &Pool{instances: instances, mode: mode}
	if mode == FreeList {
		p.freeNext = make([]atomic.Int32, len(instances))
		// Seed the stack with every index, 0 on top, so low indices are
		// preferred and pool occupancy reads naturally in snapshots.
		for i := len(instances) - 1; i >= 0; i-- {
			p.pushFree(i)
		}
	}
	return p, nil
}

// SetSPCs attaches the process counter set that free-list acquisitions
// attribute to. Call during setup.
func (p *Pool) SetSPCs(s *spc.Set) { p.spcs = s }

// Len returns the number of instances.
func (p *Pool) Len() int { return len(p.instances) }

// Mode returns the pool's assignment strategy.
func (p *Pool) Mode() Assignment { return p.mode }

// Get returns instance i.
func (p *Pool) Get(i int) *Instance { return p.instances[i] }

// NextRoundRobin returns the next instance index first-come first-served.
// The counter is an unsigned 64-bit atomic on purpose: taking the modulo of
// a SIGNED counter after overflow would yield a negative index and panic,
// so the index math stays in uint64 until after the modulo. (At the 2^64
// wrap the sequence jumps by at most one position for non-power-of-two pool
// sizes — a one-off fairness skip, never an out-of-range index.)
func (p *Pool) NextRoundRobin() int {
	return int((p.rr.Add(1) - 1) % uint64(len(p.instances)))
}

// SeedRR sets the round-robin counter, for tests exercising the overflow
// boundaries (MaxInt32, MaxUint64). Not for concurrent use.
func (p *Pool) SeedRR(v uint64) { p.rr.Store(v) }

// pushFree returns index i to the free-list.
func (p *Pool) pushFree(i int) {
	for {
		h := p.freeHead.Load()
		p.freeNext[i].Store(int32(uint32(h)))
		nh := (h>>32+1)<<32 | uint64(uint32(i+1))
		if p.freeHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

// popFree removes and returns the top free index, or -1 when drained.
func (p *Pool) popFree() int {
	for {
		h := p.freeHead.Load()
		idx := int32(uint32(h))
		if idx == 0 {
			return -1
		}
		// Reading freeNext[idx-1] is safe even if idx was popped and
		// re-pushed between our Load and CAS: the CAS below fails on the
		// version half and we retry with a fresh head.
		next := p.freeNext[idx-1].Load()
		nh := (h>>32+1)<<32 | uint64(uint32(next))
		if p.freeHead.CompareAndSwap(h, nh) {
			return int(idx - 1)
		}
	}
}

// AcquireSend returns a locked instance for one send operation plus its
// release function. Under FreeList the instance is popped from the atomic
// free-list, so it is exclusively owned against other senders and the lock
// acquisition is uncontended (only progress-engine try-locks can overlap);
// when the list is drained it falls back to a contended round-robin pick.
// Under RoundRobin/Dedicated it is ForThread + LockClocked, unchanged. The
// release function unlocks and, for free-list acquisitions, returns the
// instance to the list.
func (p *Pool) AcquireSend(ts *ThreadState) (*Instance, func()) {
	if p.mode == FreeList {
		if i := p.popFree(); i >= 0 {
			p.spcs.Inc(spc.FreeListAcquires)
			in := p.instances[i]
			in.LockClocked(ts.Clock())
			return in, func() {
				in.Unlock()
				p.pushFree(i)
			}
		}
		p.spcs.Inc(spc.FreeListEmpty)
		in := p.instances[p.NextRoundRobin()]
		in.LockClocked(ts.Clock())
		return in, in.Unlock
	}
	in := p.ForThread(ts)
	in.LockClocked(ts.Clock())
	return in, in.Unlock
}

// ForThread returns the instance for ts under the pool's strategy. With
// Dedicated the first call assigns via round-robin and caches the result in
// the thread state (Algorithm 1 line 19); with RoundRobin every call
// advances the circular counter.
func (p *Pool) ForThread(ts *ThreadState) *Instance {
	switch p.mode {
	case Dedicated:
		if !ts.assigned {
			ts.dedicated = p.NextRoundRobin()
			ts.assigned = true
		}
		return p.instances[ts.dedicated]
	default:
		return p.instances[p.NextRoundRobin()]
	}
}
