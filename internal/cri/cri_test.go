package cri

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/transport"
	"repro/internal/transport/mocknet"
)

func newTestPool(t *testing.T, n int, mode Assignment) *Pool {
	t.Helper()
	dev := mocknet.NewDevice()
	insts := make([]*Instance, n)
	for i := range insts {
		ctx, err := dev.CreateContext(0)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = NewInstance(i, ctx, nil)
	}
	pool, err := NewPool(insts, mode)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestAssignmentString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Dedicated.String() != "dedicated" {
		t.Fatal("Assignment.String mismatch")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := newTestPool(t, 3, RoundRobin)
	var ts ThreadState
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.ForThread(&ts).Index(); got != w {
			t.Fatalf("call %d: instance %d, want %d", i, got, w)
		}
	}
	if ts.Dedicated() != -1 {
		t.Fatal("round-robin assignment polluted the thread-local cache")
	}
}

func TestDedicatedSticksPerThread(t *testing.T) {
	p := newTestPool(t, 4, Dedicated)
	var ts1, ts2 ThreadState
	a := p.ForThread(&ts1)
	b := p.ForThread(&ts2)
	if a == b {
		t.Fatal("two threads got the same dedicated instance with 4 available")
	}
	for i := 0; i < 10; i++ {
		if p.ForThread(&ts1) != a {
			t.Fatal("dedicated assignment changed between calls")
		}
	}
	if ts1.Dedicated() != a.Index() {
		t.Fatalf("ThreadState.Dedicated = %d, want %d", ts1.Dedicated(), a.Index())
	}
}

func TestDedicatedSharingWhenOversubscribed(t *testing.T) {
	// More threads than instances: assignments wrap (paper: "some
	// communicating threads might share the same instance").
	p := newTestPool(t, 2, Dedicated)
	states := make([]ThreadState, 4)
	counts := map[int]int{}
	for i := range states {
		counts[p.ForThread(&states[i]).Index()]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("oversubscribed assignment = %v, want {0:2, 1:2}", counts)
	}
}

func TestThreadStateReset(t *testing.T) {
	p := newTestPool(t, 2, Dedicated)
	var ts ThreadState
	p.ForThread(&ts)
	ts.Reset()
	if ts.Dedicated() != -1 {
		t.Fatal("Reset did not clear assignment")
	}
}

func TestConcurrentRoundRobinBalanced(t *testing.T) {
	p := newTestPool(t, 4, RoundRobin)
	const (
		goroutines = 8
		per        = 1000
	)
	var mu sync.Mutex
	counts := make(map[int]int)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[int]int)
			var ts ThreadState
			for i := 0; i < per; i++ {
				local[p.ForThread(&ts).Index()]++
			}
			mu.Lock()
			for k, v := range local {
				counts[k] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	total := 0
	for i := 0; i < 4; i++ {
		c := counts[i]
		total += c
		if c != goroutines*per/4 {
			t.Fatalf("instance %d acquired %d times, want exactly %d (atomic counter)", i, c, goroutines*per/4)
		}
	}
	if total != goroutines*per {
		t.Fatalf("total = %d", total)
	}
}

func TestLockContentionCounted(t *testing.T) {
	s := spc.NewSet()
	dev := mocknet.NewDevice()
	ctx, _ := dev.CreateContext(0)
	in := NewInstance(0, ctx, s)
	in.Lock()
	done := make(chan struct{})
	go func() {
		in.Lock() // must block and count one contention
		in.Unlock()
		close(done)
	}()
	// Wait until the contender has certainly failed its try-lock.
	for s.Get(spc.SendLockWaits) == 0 {
		runtime.Gosched()
	}
	in.Unlock()
	<-done
	if got := s.Get(spc.SendLockWaits); got != 1 {
		t.Fatalf("send_lock_waits = %d, want 1", got)
	}
}

func TestTryLock(t *testing.T) {
	p := newTestPool(t, 1, RoundRobin)
	in := p.Get(0)
	if !in.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if in.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	in.Unlock()
	if !in.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	in.Unlock()
}

func TestEndpointTable(t *testing.T) {
	p := newTestPool(t, 1, RoundRobin)
	in := p.Get(0)
	dev := mocknet.NewDevice()
	remote, _ := dev.CreateContext(0)
	ep := mocknet.NewEndpoint(in.Context(), remote)
	in.SetEndpoints([]transport.Endpoint{nil, ep})
	if in.Endpoint(0) != nil {
		t.Fatal("self endpoint should be nil")
	}
	if in.Endpoint(1) != ep {
		t.Fatal("Endpoint(1) lookup failed")
	}
	if in.Endpoint(5) != nil || in.Endpoint(-1) != nil {
		t.Fatal("out-of-range endpoint lookup returned non-nil")
	}
}

func TestEmptyPoolError(t *testing.T) {
	if _, err := NewPool(nil, RoundRobin); !errors.Is(err, ErrEmptyPool) {
		t.Fatalf("NewPool(nil) error = %v, want ErrEmptyPool", err)
	}
}

func TestInstancePollDispatches(t *testing.T) {
	p := newTestPool(t, 2, RoundRobin)
	rx := p.Get(0)
	tx := p.Get(1)
	ep := mocknet.NewEndpoint(tx.Context(), rx.Context())
	ep.Send(transport.NewPacket(transport.Envelope{Kind: transport.KindEager, Tag: 3}, nil, nil))

	var got []transport.CQE
	var fromInst *Instance
	rx.Lock()
	n := rx.Poll(nil, func(_ *prof.ThreadClock, in *Instance, e transport.CQE) { fromInst = in; got = append(got, e) }, 8)
	rx.Unlock()
	if n != 1 || len(got) != 1 || got[0].Kind != transport.CQERecv {
		t.Fatalf("Poll handled %d events: %+v", n, got)
	}
	if fromInst != rx {
		t.Fatal("dispatch reported wrong instance")
	}
}

func BenchmarkForThreadRoundRobin(b *testing.B) {
	dev := mocknet.NewDevice()
	insts := make([]*Instance, 8)
	for i := range insts {
		ctx, _ := dev.CreateContext(0)
		insts[i] = NewInstance(i, ctx, nil)
	}
	p, err := NewPool(insts, RoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	var ts ThreadState
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ForThread(&ts)
	}
}

func BenchmarkForThreadDedicated(b *testing.B) {
	dev := mocknet.NewDevice()
	insts := make([]*Instance, 8)
	for i := range insts {
		ctx, _ := dev.CreateContext(0)
		insts[i] = NewInstance(i, ctx, nil)
	}
	p, err := NewPool(insts, Dedicated)
	if err != nil {
		b.Fatal(err)
	}
	var ts ThreadState
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ForThread(&ts)
	}
}
