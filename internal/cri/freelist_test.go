package cri

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/spc"
)

func testPool(t *testing.T, n int, mode Assignment) *Pool {
	t.Helper()
	instances := make([]*Instance, n)
	for i := range instances {
		instances[i] = NewInstance(i, nil, nil)
	}
	p, err := NewPool(instances, mode)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRoundRobinOverflow is the ISSUE 7 regression test: seed the circular
// counter at the signed-overflow boundaries and prove indices stay in
// [0, len). A signed implementation would go negative after MaxInt32 /
// MaxInt64 and index out of range; the unsigned counter must not.
func TestRoundRobinOverflow(t *testing.T) {
	for _, n := range []int{3, 4, 7} {
		p := testPool(t, n, RoundRobin)
		for _, seed := range []uint64{
			math.MaxInt32 - 1,  // crossing 2^31: int32 arithmetic would go negative
			math.MaxInt64 - 1,  // crossing 2^63: int64 arithmetic would go negative
			math.MaxUint64 - 1, // crossing 2^64: the counter itself wraps
		} {
			p.SeedRR(seed)
			for i := 0; i < 8; i++ {
				idx := p.NextRoundRobin()
				if idx < 0 || idx >= n {
					t.Fatalf("n=%d seed=%d: index %d out of range", n, seed, idx)
				}
			}
		}
	}
}

// TestRoundRobinOverflowCoversAll proves the rotation still visits every
// instance while the counter crosses 2^31 (no instance starves after wrap).
func TestRoundRobinOverflowCoversAll(t *testing.T) {
	const n = 5
	p := testPool(t, n, RoundRobin)
	p.SeedRR(math.MaxInt32 - 2)
	seen := map[int]bool{}
	for i := 0; i < 2*n; i++ {
		seen[p.NextRoundRobin()] = true
	}
	if len(seen) != n {
		t.Fatalf("rotation across the 2^31 boundary visited %d/%d instances", len(seen), n)
	}
}

func TestFreeListSeedAndDrain(t *testing.T) {
	const n = 4
	p := testPool(t, n, FreeList)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		idx := p.popFree()
		if idx < 0 || idx >= n || seen[idx] {
			t.Fatalf("pop %d: bad or duplicate index %d", i, idx)
		}
		seen[idx] = true
	}
	if idx := p.popFree(); idx != -1 {
		t.Fatalf("pop on drained list = %d, want -1", idx)
	}
	p.pushFree(2)
	if idx := p.popFree(); idx != 2 {
		t.Fatalf("pop after push = %d, want 2", idx)
	}
}

// TestFreeListAcquireSendExclusive: while a free-list acquisition holds an
// instance, no other AcquireSend may receive the same instance (until the
// list drains and round-robin fallback kicks in, which this test avoids by
// holding at most n-1 instances).
func TestFreeListAcquireSendExclusive(t *testing.T) {
	const n = 4
	p := testPool(t, n, FreeList)
	p.SetSPCs(spc.NewSet())
	var ts ThreadState

	held := map[*Instance]func(){}
	for i := 0; i < n-1; i++ {
		in, release := p.AcquireSend(&ts)
		if _, dup := held[in]; dup {
			t.Fatalf("AcquireSend returned instance %d twice while held", in.Index())
		}
		held[in] = release
	}
	for _, release := range held {
		release()
	}
	// All released: n consecutive acquisitions must again be distinct.
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		in, release := p.AcquireSend(&ts)
		if seen[in.Index()] {
			t.Fatalf("instance %d handed out twice after release", in.Index())
		}
		seen[in.Index()] = true
		defer release()
	}
}

// TestFreeListFallbackWhenDrained: with every instance claimed, AcquireSend
// must still return a usable locked instance (round-robin fallback) rather
// than deadlock, and count the miss.
func TestFreeListFallbackWhenDrained(t *testing.T) {
	const n = 2
	p := testPool(t, n, FreeList)
	set := spc.NewSet()
	p.SetSPCs(set)
	var ts ThreadState

	// Drain the list directly (without holding the instance locks) so the
	// fallback acquisition can proceed deterministically.
	for i := 0; i < n; i++ {
		if p.popFree() < 0 {
			t.Fatal("list drained early")
		}
	}
	in, release := p.AcquireSend(&ts)
	if in == nil {
		t.Fatal("fallback acquisition returned nil")
	}
	release()
	if got := set.Get(spc.FreeListEmpty); got != 1 {
		t.Fatalf("FreeListEmpty = %d, want 1", got)
	}
	if got := set.Get(spc.FreeListAcquires); got != 0 {
		t.Fatalf("FreeListAcquires = %d, want 0", got)
	}
	// Return the indices; the next acquisition pops again.
	for i := 0; i < n; i++ {
		p.pushFree(i)
	}
	_, release = p.AcquireSend(&ts)
	release()
	if got := set.Get(spc.FreeListAcquires); got != 1 {
		t.Fatalf("FreeListAcquires after refill = %d, want 1", got)
	}
}

// TestFreeListChurnRace is the -race stress case from ISSUE 7: many
// goroutines acquire and release through the free-list concurrently.
// Asserts no instance is ever held by two send paths at once (the Treiber
// stack's exclusivity guarantee) across many wrap cycles of the stack.
func TestFreeListChurnRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(prev)
	}

	const (
		n       = 4
		workers = 16
		iters   = 10000
	)
	p := testPool(t, n, FreeList)
	p.SetSPCs(spc.NewSet())

	var holders [n]atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ts ThreadState
			for i := 0; i < iters; i++ {
				in, release := p.AcquireSend(&ts)
				// The instance lock is held here even on the fallback path,
				// so the holder count must never exceed one.
				if holders[in.Index()].Add(1) > 1 {
					violations.Add(1)
				}
				holders[in.Index()].Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d double-held instances", v)
	}
	// Every instance must be back on the list.
	seen := 0
	for p.popFree() >= 0 {
		seen++
	}
	if seen != n {
		t.Fatalf("free-list holds %d/%d instances after churn", seen, n)
	}
}
