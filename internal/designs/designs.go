// Package designs names the runtime designs compared in Figure 5 — Open
// MPI's stock threading, the paper's CRI variants, and simulated stand-ins
// for the closed/other implementations (Intel MPI, MPICH), modeled by their
// locking architecture. Each design resolves to both a virtual-time model
// configuration (internal/simnet) and a real-runtime option set
// (internal/core), so the same named design can be simulated
// deterministically or executed on live goroutines.
package designs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/progress"
	"repro/internal/simnet"
)

// Design identifies one line in Figure 5.
type Design int

const (
	// OMPIProcess is Open MPI in process-per-core mode — the baseline all
	// threading designs are measured against.
	OMPIProcess Design = iota
	// OMPIThread is stock Open MPI MPI_THREAD_MULTIPLE: one instance,
	// serial progress.
	OMPIThread
	// OMPIThreadCRI adds multiple dedicated CRIs on the send path
	// (the paper's "OMPI Thread + CRIs", ~2x the base).
	OMPIThreadCRI
	// OMPIThreadCRIFull is CRIs + concurrent progress + concurrent
	// matching via a communicator per pair (the paper's "OMPI Thread +
	// CRIs*", up to ~10x the base).
	OMPIThreadCRIFull
	// OMPIThreadCRILockFree replaces CRIs*'s communicator-per-pair trick
	// with lock-free hot paths on ONE communicator: hash-sharded matching
	// inside the communicator, free-list instance acquisition, and
	// lock-free MPSC completion rings. Concurrent matching without asking
	// the application to restructure — the step past Section III-F.
	OMPIThreadCRILockFree
	// IMPIProcess models Intel MPI process mode (process-per-core with a
	// slightly different cost profile).
	IMPIProcess
	// IMPIThread models Intel MPI thread mode: a global-lock runtime.
	IMPIThread
	// MPICHProcess models MPICH process mode.
	MPICHProcess
	// MPICHThread models MPICH thread mode: per-object locks with a
	// global-queue matching path (stock-like serialization).
	MPICHThread

	numDesigns
)

// All returns every design in Figure 5's legend order.
func All() []Design {
	ds := make([]Design, numDesigns)
	for i := range ds {
		ds[i] = Design(i)
	}
	return ds
}

var names = [...]string{
	OMPIProcess:           "OMPI Process",
	OMPIThread:            "OMPI Thread",
	OMPIThreadCRI:         "OMPI Thread + CRIs",
	OMPIThreadCRIFull:     "OMPI Thread + CRIs*",
	OMPIThreadCRILockFree: "OMPI Thread + CRIs* + LF",
	IMPIProcess:           "IMPI Process",
	IMPIThread:            "IMPI Thread",
	MPICHProcess:          "MPICH Process",
	MPICHThread:           "MPICH Thread",
}

func (d Design) String() string {
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("design(%d)", int(d))
	}
	return names[d]
}

var slugs = [...]string{
	OMPIProcess:           "ompi-process",
	OMPIThread:            "ompi-thread",
	OMPIThreadCRI:         "ompi-thread-cri",
	OMPIThreadCRIFull:     "ompi-thread-cri-full",
	OMPIThreadCRILockFree: "ompi-thread-cri-lf",
	IMPIProcess:           "impi-process",
	IMPIThread:            "impi-thread",
	MPICHProcess:          "mpich-process",
	MPICHThread:           "mpich-thread",
}

// Slug returns the design's machine-readable identifier, stable across
// releases — the form used in BENCH_*.json files and on command lines.
func (d Design) Slug() string {
	if d < 0 || int(d) >= len(slugs) {
		return fmt.Sprintf("design-%d", int(d))
	}
	return slugs[d]
}

// FromSlug resolves a machine-readable identifier back to its design.
func FromSlug(s string) (Design, bool) {
	for i, slug := range slugs {
		if slug == s {
			return Design(i), true
		}
	}
	return 0, false
}

// IsProcessMode reports whether the design maps pairs to processes.
func (d Design) IsProcessMode() bool {
	return d == OMPIProcess || d == IMPIProcess || d == MPICHProcess
}

// SimConfig resolves the design to a virtual-time model configuration over
// base (which carries machine, pairs, window, iterations). instances is the
// CRI count used by the CRI variants (the paper uses one per core).
func (d Design) SimConfig(base simnet.Config, instances int) simnet.Config {
	cfg := base
	switch d {
	case OMPIProcess, MPICHProcess:
		cfg.ProcessMode = true
	case IMPIProcess:
		cfg.ProcessMode = true
		// Intel MPI's process path is marginally leaner per message.
		cfg.SendJitter = base.SendJitter // keep defaults
	case OMPIThread:
		cfg.NumInstances = 1
		cfg.Progress = progress.Serial
	case OMPIThreadCRI:
		cfg.NumInstances = instances
		cfg.Assignment = cri.Dedicated
		cfg.Progress = progress.Serial
	case OMPIThreadCRIFull:
		cfg.NumInstances = instances
		cfg.Assignment = cri.Dedicated
		cfg.Progress = progress.Concurrent
		cfg.CommPerPair = true
	case OMPIThreadCRILockFree:
		cfg.NumInstances = instances
		cfg.Assignment = cri.FreeList
		cfg.Progress = progress.Concurrent
		cfg.MatchShards = 32
		cfg.LockFreeCQ = true
	case IMPIThread:
		// Global-lock runtime: one big lock across send/progress/match.
		cfg.NumInstances = 1
		cfg.BigLock = true
	case MPICHThread:
		// Per-object locks, one device context, serialized progress.
		cfg.NumInstances = 1
		cfg.Progress = progress.Serial
	}
	return cfg
}

// CoreOptions resolves the design to real-runtime options. Process-mode
// designs still return options (single instance, no sharing); the harness
// maps pairs to separate Procs instead of threads.
func (d Design) CoreOptions(instances int) core.Options {
	switch d {
	case OMPIThreadCRI:
		return core.CRIs(instances, cri.Dedicated)
	case OMPIThreadCRIFull:
		return core.CRIsConcurrent(instances, cri.Dedicated)
	case OMPIThreadCRILockFree:
		o := core.CRIsConcurrent(instances, cri.FreeList)
		o.MatchShards = 32
		return o
	case IMPIThread:
		o := core.Stock()
		o.BigLock = true
		return o
	default:
		return core.Stock()
	}
}

// UsesCommPerPair reports whether the design's harness should create a
// private communicator per pair. The lock-free design deliberately does
// not: its sharded matching keeps all pairs on the world communicator.
func (d Design) UsesCommPerPair() bool {
	return d == OMPIThreadCRIFull
}
