package designs

import (
	"testing"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
)

func TestAllCoversLegend(t *testing.T) {
	ds := All()
	if len(ds) != int(numDesigns) {
		t.Fatalf("All() returned %d designs, want %d", len(ds), int(numDesigns))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		s := d.String()
		if s == "" || seen[s] {
			t.Fatalf("design %d has bad or duplicate name %q", int(d), s)
		}
		seen[s] = true
	}
}

func TestProcessModeFlags(t *testing.T) {
	for _, d := range All() {
		want := d == OMPIProcess || d == IMPIProcess || d == MPICHProcess
		if d.IsProcessMode() != want {
			t.Errorf("%v: IsProcessMode = %v, want %v", d, d.IsProcessMode(), want)
		}
	}
}

func TestSimConfigResolution(t *testing.T) {
	base := simnet.Config{Machine: hw.AlembertHaswell(), Pairs: 4, Window: 32, Iters: 2}

	cfg := OMPIThreadCRIFull.SimConfig(base, 20)
	if cfg.NumInstances != 20 || cfg.Assignment != cri.Dedicated ||
		cfg.Progress != progress.Concurrent || !cfg.CommPerPair {
		t.Fatalf("CRIFull config = %+v", cfg)
	}
	if cfg := OMPIThread.SimConfig(base, 20); cfg.NumInstances != 1 || cfg.ProcessMode {
		t.Fatalf("OMPIThread config = %+v", cfg)
	}
	if cfg := IMPIThread.SimConfig(base, 20); !cfg.BigLock {
		t.Fatal("IMPIThread must be a big-lock design")
	}
	if cfg := OMPIProcess.SimConfig(base, 20); !cfg.ProcessMode {
		t.Fatal("OMPIProcess must be process mode")
	}
}

func TestCoreOptionsResolution(t *testing.T) {
	o := OMPIThreadCRI.CoreOptions(8)
	if o.NumInstances != 8 || o.Assignment != cri.Dedicated || o.Progress != progress.Serial {
		t.Fatalf("CRI options = %+v", o)
	}
	o = OMPIThreadCRIFull.CoreOptions(8)
	if o.Progress != progress.Concurrent {
		t.Fatalf("CRIFull options = %+v", o)
	}
	if !IMPIThread.CoreOptions(1).BigLock {
		t.Fatal("IMPIThread core options missing BigLock")
	}
	if OMPIThread.CoreOptions(1).NumInstances != 1 {
		t.Fatal("OMPIThread core options wrong")
	}
	if !OMPIThreadCRIFull.UsesCommPerPair() || OMPIThread.UsesCommPerPair() {
		t.Fatal("UsesCommPerPair flags wrong")
	}
}

// TestFig5Ordering runs the model for every design at a moderate pair count
// and checks the paper's headline ordering: every process mode beats every
// stock thread mode; CRIs beats stock; CRIs* beats CRIs.
func TestFig5Ordering(t *testing.T) {
	base := simnet.Config{Machine: hw.AlembertHaswell(), Pairs: 12, Window: 128, Iters: 3}
	rates := map[Design]float64{}
	for _, d := range All() {
		rates[d] = simnet.RunMultirate(d.SimConfig(base, 20)).Rate
	}
	for _, proc := range []Design{OMPIProcess, IMPIProcess, MPICHProcess} {
		for _, thr := range []Design{OMPIThread, IMPIThread, MPICHThread} {
			if rates[proc] <= rates[thr] {
				t.Errorf("%v (%.0f) did not beat %v (%.0f)", proc, rates[proc], thr, rates[thr])
			}
		}
	}
	if rates[OMPIThreadCRI] <= rates[OMPIThread] {
		t.Errorf("CRIs (%.0f) did not beat stock thread (%.0f)", rates[OMPIThreadCRI], rates[OMPIThread])
	}
	if rates[OMPIThreadCRIFull] <= rates[OMPIThreadCRI] {
		t.Errorf("CRIs* (%.0f) did not beat CRIs (%.0f)", rates[OMPIThreadCRIFull], rates[OMPIThreadCRI])
	}
	// Even CRIs* stays below process mode (the paper's closing gap claim).
	if rates[OMPIThreadCRIFull] >= rates[OMPIProcess] {
		t.Errorf("CRIs* (%.0f) overtook process mode (%.0f)", rates[OMPIThreadCRIFull], rates[OMPIProcess])
	}
}

// TestLockFreeOrdering checks the lock-free design at the paper's 20-pair
// operating point. Its claim is not "faster than CRIs*" — it is "as fast as
// CRIs* without the communicator-per-pair restructuring": all pairs share the
// world communicator, and sharded matching + free-list CRIs + lock-free rings
// recover nearly all of what comm-per-pair buys. So: far above every
// single-communicator locked design, within a small factor of CRIs*, and
// still below process mode (per-process resources have no sharing at all).
func TestLockFreeOrdering(t *testing.T) {
	base := simnet.Config{Machine: hw.AlembertHaswell(), Pairs: 20, Window: 128, Iters: 3}
	rate := func(d Design) float64 { return simnet.RunMultirate(d.SimConfig(base, 20)).Rate }
	full, lf, proc := rate(OMPIThreadCRIFull), rate(OMPIThreadCRILockFree), rate(OMPIProcess)
	stock, cris := rate(OMPIThread), rate(OMPIThreadCRI)
	if lf < 4*stock {
		t.Errorf("CRIs*+LF (%.0f) is not well clear of stock thread (%.0f)", lf, stock)
	}
	if lf < 2*cris {
		t.Errorf("CRIs*+LF (%.0f) is not well clear of CRIs (%.0f)", lf, cris)
	}
	if lf < 0.9*full {
		t.Errorf("CRIs*+LF (%.0f) fell below 90%% of CRIs* (%.0f) despite sharing one communicator", lf, full)
	}
	if lf >= proc {
		t.Errorf("CRIs*+LF (%.0f) overtook process mode (%.0f)", lf, proc)
	}
}
