package fabric

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/hw"
)

func TestFetchAndOpBasics(t *testing.T) {
	target := NewDevice(hw.Fast())
	initiator := NewDevice(hw.Fast())
	ictx, _ := initiator.CreateContext(0)
	mem := make([]byte, 16)
	reg := target.RegisterMemory(mem)

	var old int64
	if err := ictx.FetchAndOp(reg, 0, 10, AccSum, &old, nil); err != nil {
		t.Fatal(err)
	}
	if old != 0 {
		t.Fatalf("old = %d, want 0", old)
	}
	if err := ictx.FetchAndOp(reg, 0, 7, AccReplace, &old, nil); err != nil {
		t.Fatal(err)
	}
	if old != 10 {
		t.Fatalf("old = %d, want 10", old)
	}
	if err := ictx.FetchAndOp(reg, 0, 100, AccMax, &old, nil); err != nil {
		t.Fatal(err)
	}
	if old != 7 || int64(le64(mem[:8])) != 100 {
		t.Fatalf("max: old=%d mem=%d", old, int64(le64(mem[:8])))
	}
	if err := ictx.FetchAndOp(reg, 0, 1, AccMin, &old, nil); err != nil {
		t.Fatal(err)
	}
	if old != 100 || int64(le64(mem[:8])) != 1 {
		t.Fatalf("min: old=%d mem=%d", old, int64(le64(mem[:8])))
	}
	// nil result pointer is allowed.
	if err := ictx.FetchAndOp(reg, 8, 1, AccSum, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Completions: one per op.
	n := 0
	for ictx.Pending() {
		ictx.Poll(func(e CQE) {
			if e.Kind != CQEAccComplete {
				t.Fatalf("completion kind = %d", e.Kind)
			}
			n++
		}, 16)
	}
	if n != 5 {
		t.Fatalf("completions = %d, want 5", n)
	}
}

func TestFetchAndOpBounds(t *testing.T) {
	target := NewDevice(hw.Fast())
	initiator := NewDevice(hw.Fast())
	ictx, _ := initiator.CreateContext(0)
	reg := target.RegisterMemory(make([]byte, 8))
	var be *BoundsError
	if err := ictx.FetchAndOp(reg, 8, 1, AccSum, nil, nil); !errors.As(err, &be) {
		t.Fatalf("out-of-bounds err = %v", err)
	}
	if err := ictx.FetchAndOp(reg, 4, 1, AccSum, nil, nil); !errors.As(err, &be) {
		t.Fatalf("misaligned err = %v", err)
	}
	if err := ictx.CompareAndSwap(reg, 12, 0, 1, nil, nil); !errors.As(err, &be) {
		t.Fatalf("CAS out-of-bounds err = %v", err)
	}
}

func TestCompareAndSwapSemantics(t *testing.T) {
	target := NewDevice(hw.Fast())
	initiator := NewDevice(hw.Fast())
	ictx, _ := initiator.CreateContext(0)
	mem := make([]byte, 8)
	reg := target.RegisterMemory(mem)

	var old int64
	if err := ictx.CompareAndSwap(reg, 0, 0, 42, &old, nil); err != nil || old != 0 {
		t.Fatalf("CAS = %d, %v", old, err)
	}
	if got := int64(le64(mem)); got != 42 {
		t.Fatalf("mem = %d, want 42", got)
	}
	if err := ictx.CompareAndSwap(reg, 0, 7, 99, &old, nil); err != nil || old != 42 {
		t.Fatalf("failed CAS = %d, %v", old, err)
	}
	if got := int64(le64(mem)); got != 42 {
		t.Fatalf("failed CAS mutated memory: %d", got)
	}
}

// TestFetchAndOpAtomicTickets: concurrent fetch-add issues strictly unique
// tickets across contexts.
func TestFetchAndOpAtomicTickets(t *testing.T) {
	target := NewDevice(hw.Fast())
	initiator := NewDevice(hw.Fast())
	mem := make([]byte, 8)
	reg := target.RegisterMemory(mem)
	const (
		goroutines = 8
		per        = 500
	)
	tickets := make(chan int64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ctx, err := initiator.CreateContext(0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ctx *Context) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var old int64
				if err := ctx.FetchAndOp(reg, 0, 1, AccSum, &old, nil); err != nil {
					t.Error(err)
					return
				}
				tickets <- old
			}
		}(ctx)
	}
	wg.Wait()
	close(tickets)
	seen := map[int64]bool{}
	for v := range tickets {
		if seen[v] {
			t.Fatalf("ticket %d duplicated", v)
		}
		seen[v] = true
	}
	if int64(le64(mem)) != goroutines*per {
		t.Fatalf("final counter = %d", int64(le64(mem)))
	}
}
