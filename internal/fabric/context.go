package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/ringbuf"
	"repro/internal/transport"
)

// Context is one network context: an independent injection path into the
// NIC with its own receive queue and completion queue. A Communication
// Resource Instance (CRI) wraps exactly one Context. Contexts are the unit
// of hardware parallelism — two threads on two different contexts do not
// share any fabric-level state except the device-wide rate limiter.
//
// Thread safety: Inject and the RMA initiators may be called concurrently
// (the receive queue and CQ are multi-producer). Poll must be called by one
// goroutine at a time; the layers above guarantee this with the per-CRI
// lock the paper describes.
type Context struct {
	dev   *Device
	index int

	recvQ *ringbuf.MPSC[*Packet] // packets from remote senders
	cq    *ringbuf.MPSC[CQE]     // local completions (send/put/get)

	scrambler *Scrambler
	faults    *FaultInjector

	// delayed holds fault-injector-delayed packets until their release
	// time; hasDelayed makes the empty check a single atomic load on the
	// poll hot path.
	delayMu    sync.Mutex
	delayed    []delayedPacket
	hasDelayed atomic.Bool
}

// delayedPacket is one held-back packet with its release time.
type delayedPacket struct {
	due time.Time
	pkt *Packet
}

func newContext(d *Device, index, depth int) *Context {
	return &Context{
		dev:   d,
		index: index,
		recvQ: ringbuf.NewMPSC[*Packet](depth),
		cq:    ringbuf.NewMPSC[CQE](depth),
	}
}

// Index returns the context's index within its device.
func (c *Context) Index() int { return c.index }

// Device returns the owning device.
func (c *Context) Device() *Device { return c.dev }

// deliver enqueues an inbound packet, blocking (with yields) on a full
// queue — hardware back-pressure. The remote sender's goroutine runs this.
func (c *Context) deliver(p *Packet) {
	if s := c.scrambler; s != nil {
		for _, q := range s.scramble(p) {
			c.deliverDirect(q)
		}
		return
	}
	c.deliverDirect(p)
}

func (c *Context) deliverDirect(p *Packet) {
	if p.TraceID != 0 && p.ArriveNs == 0 {
		// Transport-arrival stamp for the critical-path attribution layer:
		// the gap to the matching-engine delivery stamp is the receive-side
		// progress lag (deliver_wait stage). Write-once: duplicates and
		// retransmits re-deliver the same *Packet, which must stay read-only
		// once the first delivery published the pointer to the receiver.
		p.ArriveNs = time.Now().UnixNano()
	}
	for !c.recvQ.Push(p) {
		runtime.Gosched()
	}
}

// deliverDelayed holds p back until the delay elapses; the packet is
// released into the receive queue by a later Poll on this context.
func (c *Context) deliverDelayed(p *Packet, d time.Duration) {
	c.delayMu.Lock()
	c.delayed = append(c.delayed, delayedPacket{due: time.Now().Add(d), pkt: p})
	c.hasDelayed.Store(true)
	c.delayMu.Unlock()
}

// releaseDue moves every delayed packet whose hold time has elapsed into the
// receive queue.
func (c *Context) releaseDue() {
	now := time.Now()
	var due []*Packet
	c.delayMu.Lock()
	kept := c.delayed[:0]
	for _, dp := range c.delayed {
		if dp.due.After(now) {
			kept = append(kept, dp)
		} else {
			due = append(due, dp.pkt)
		}
	}
	c.delayed = kept
	c.hasDelayed.Store(len(kept) > 0)
	c.delayMu.Unlock()
	for _, p := range due {
		c.deliver(p)
	}
}

// completeLocal enqueues a local completion, blocking on a full CQ.
func (c *Context) completeLocal(e CQE) {
	for !c.cq.Push(e) {
		runtime.Gosched()
	}
}

// Poll extracts up to max completion events, invoking handler for each, and
// returns the number handled. Inbound packets are surfaced as CQERecv
// events. Each extraction charges the receive-side CPU cost; an empty poll
// charges the empty-poll cost — exactly the per-call economics of reading a
// real CQ.
func (c *Context) Poll(handler func(CQE), max int) int {
	if max <= 0 {
		max = 64
	}
	if c.hasDelayed.Load() {
		c.releaseDue()
	}
	costs := &c.dev.costs
	n := 0
	for n < max {
		e, ok := c.cq.Pop()
		if !ok {
			break
		}
		hw.Spin(costs.RecvExtract)
		handler(e)
		n++
	}
	for n < max {
		p, ok := c.recvQ.Pop()
		if !ok {
			break
		}
		hw.Spin(costs.RecvExtract)
		handler(CQE{Kind: CQERecv, Packet: p})
		n++
	}
	if n == 0 {
		if s := c.scrambler; s != nil {
			// An idle poll flushes any adversarially held packets so a
			// scrambled stream can never strand its tail.
			s.DrainTo(c)
			for n < max {
				p, ok := c.recvQ.Pop()
				if !ok {
					break
				}
				hw.Spin(costs.RecvExtract)
				handler(CQE{Kind: CQERecv, Packet: p})
				n++
			}
		}
		if n == 0 {
			hw.Spin(costs.CQPollEmpty)
		}
	}
	return n
}

// Pending reports whether any completions or inbound packets are queued
// (including fault-delayed packets not yet released).
func (c *Context) Pending() bool {
	return c.cq.Len() > 0 || c.recvQ.Len() > 0 || c.hasDelayed.Load()
}

// Endpoint is a send path from a local context to one remote context. It is
// the object the per-CRI lock protects in the send path; the fabric itself
// performs no locking here, mirroring real endpoints whose thread safety is
// the MPI library's problem.
type Endpoint struct {
	local  *Context
	remote *Context
}

// NewEndpoint connects a local context to a remote one.
func NewEndpoint(local, remote *Context) *Endpoint {
	return &Endpoint{local: local, remote: remote}
}

// Local returns the endpoint's local context.
func (e *Endpoint) Local() *Context { return e.local }

// Remote returns the endpoint's remote context.
func (e *Endpoint) Remote() *Context { return e.remote }

// Send injects a two-sided packet: charges the injection CPU cost, reserves
// wire time (envelope + payload) on the local device's rate limiter,
// delivers to the remote context's receive queue, and posts a
// send-completion CQE to the local context.
func (e *Endpoint) Send(p *Packet) error {
	costs := &e.local.dev.costs
	hw.Spin(costs.SendInject)
	e.local.dev.limiter.reserve(headerSize(p) + len(p.Payload))
	if f := e.local.faults; f != nil {
		f.inject(e.remote, p)
	} else {
		e.remote.deliver(p)
	}
	e.local.completeLocal(CQE{Kind: CQESendComplete, Packet: p})
	return nil
}

// Resend re-injects a packet without posting a new send-completion CQE —
// the retransmission path of the delivery-reliability layer, which already
// holds local completion state for the packet. The retransmitted copy faces
// the wire faults again.
func (e *Endpoint) Resend(p *Packet) error {
	costs := &e.local.dev.costs
	hw.Spin(costs.SendInject)
	e.local.dev.limiter.reserve(headerSize(p) + len(p.Payload))
	if f := e.local.faults; f != nil {
		f.inject(e.remote, p)
	} else {
		e.remote.deliver(p)
	}
	return nil
}

// headerSize is the per-packet wire-header footprint the rate limiter
// charges: the canonical envelope, plus the trace-context extension when
// the packet carries one — the simulated wire mirrors the real framing's
// conditional cost byte for byte.
func headerSize(p *Packet) int {
	if p.TraceID != 0 {
		return EnvelopeSize + TraceExtSize
	}
	return EnvelopeSize
}

// PutRegion writes src into the remote device's registered region at offset
// — an RDMA write addressed by region id, routed through the endpoint so
// callers need no handle on the peer's device. Completion is a local
// PutComplete CQE carrying token.
func (e *Endpoint) PutRegion(regionID uint64, offset int, src []byte, token any) error {
	r, ok := e.remote.dev.Region(regionID)
	if !ok {
		return transport.ErrRegionUnavailable
	}
	return e.local.Put(r, offset, src, token)
}
