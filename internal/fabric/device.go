package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hw"
)

// ErrContextLimit is returned by CreateContext when the device's hardware
// context limit (the Cray Aries-style constraint from Section III-B) is
// exhausted.
var ErrContextLimit = errors.New("fabric: hardware network context limit reached")

// Device is one process's NIC. It owns the device-wide rate limiter, the
// set of network contexts, and the registered memory regions that remote
// peers address with one-sided operations.
type Device struct {
	machine hw.Machine
	costs   hw.CostModel
	limiter *rateLimiter

	mu       sync.Mutex
	contexts []*Context
	closed   bool

	regMu   sync.RWMutex
	regions map[uint64]*MemRegion
	nextReg uint64

	scrambler *Scrambler     // optional adversarial reordering for tests
	faults    *FaultInjector // optional wire-fault injection
}

// NewDevice creates a NIC for the given machine model.
func NewDevice(m hw.Machine) *Device {
	return &Device{
		machine: m,
		costs:   m.Scaled(),
		limiter: newRateLimiter(m.LinkGbps, m.MaxInjectionRate),
		regions: make(map[uint64]*MemRegion),
	}
}

// Machine returns the device's machine model.
func (d *Device) Machine() hw.Machine { return d.machine }

// Costs returns the device's scaled CPU cost model.
func (d *Device) Costs() hw.CostModel { return d.costs }

// SetScrambler installs an adversarial delivery-order scrambler on every
// context created afterwards. Test-only; nil disables.
func (d *Device) SetScrambler(s *Scrambler) { d.scrambler = s }

// SetFaultInjector installs a wire-fault injector applied to every packet
// this device's endpoints send afterwards (outbound side). Call before
// CreateContext; nil disables.
func (d *Device) SetFaultInjector(f *FaultInjector) { d.faults = f }

// CreateContext allocates a new network context with the given queue depth
// (rounded up to a power of two; depth <= 0 selects the default 4096).
// It fails with ErrContextLimit when the hardware limit is reached.
func (d *Device) CreateContext(depth int) (*Context, error) {
	if depth <= 0 {
		depth = 4096
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errors.New("fabric: device closed")
	}
	if max := d.machine.MaxContexts; max > 0 && len(d.contexts) >= max {
		return nil, ErrContextLimit
	}
	ctx := newContext(d, len(d.contexts), depth)
	ctx.scrambler = d.scrambler
	ctx.faults = d.faults
	d.contexts = append(d.contexts, ctx)
	return ctx, nil
}

// NumContexts returns the number of contexts created so far.
func (d *Device) NumContexts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.contexts)
}

// Context returns context i, or nil if out of range.
func (d *Device) Context(i int) *Context {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.contexts) {
		return nil
	}
	return d.contexts[i]
}

// Close marks the device closed. Outstanding contexts remain readable so
// in-flight progress loops can drain.
func (d *Device) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
}

func (d *Device) String() string {
	return fmt.Sprintf("device(%s, %d ctx)", d.machine.Name, d.NumContexts())
}
