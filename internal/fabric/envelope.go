// Package fabric is the default simulated backend of the pluggable
// transport layer (internal/transport): an RDMA-capable network interface
// with devices, network contexts, endpoints, completion queues (CQs), and
// remote memory regions. It is the substrate beneath the runtime's
// Communication Resource Instances (CRIs) when no other backend is chosen.
//
// The fabric is synchronous-with-costs: the injecting goroutine itself
// executes delivery, paying a calibrated CPU cost per operation (see
// internal/hw) and reserving wire time on a per-device rate limiter. All
// serialization effects the paper studies — endpoint locks, progress
// serialization, matching locks — live *above* the fabric; the fabric
// supplies real concurrent queues for them to contend on.
//
// The wire contracts (Envelope, Packet, CQE, Kind) now live in
// internal/transport; the aliases below keep the fabric's historical names
// working for the simulator and its tests.
package fabric

import (
	"repro/internal/transport"
)

// EnvelopeSize is the wire footprint of the matching header.
const EnvelopeSize = transport.EnvelopeSize

// TraceExtSize is the wire footprint of the optional trace-context
// extension a traced packet carries after the envelope.
const TraceExtSize = transport.TraceExtSize

// Envelope is the matching header carried by every two-sided message.
type Envelope = transport.Envelope

// Kind discriminates packet types on the wire.
type Kind = transport.Kind

const (
	// KindEager is a two-sided eager message: envelope plus full payload.
	KindEager = transport.KindEager
	// KindRendezvousRTS is the ready-to-send control message of the
	// rendezvous protocol for large payloads.
	KindRendezvousRTS = transport.KindRendezvousRTS
	// KindRendezvousACK is the receiver's clear-to-send response carrying
	// the registered sink region.
	KindRendezvousACK = transport.KindRendezvousACK
	// KindRendezvousData is the bulk data / FIN of a rendezvous transfer.
	KindRendezvousData = transport.KindRendezvousData
	// KindAck is a delivery-reliability acknowledgement.
	KindAck = transport.KindAck
)

// Packet is one message on the simulated wire.
type Packet = transport.Packet

// NewPacket marshals env and copies payload into a fresh packet, setting
// the envelope's Len to the payload length.
var NewPacket = transport.NewPacket

// NewPacketRaw is NewPacket without overwriting env.Len.
var NewPacketRaw = transport.NewPacketRaw

// CQEKind discriminates completion-queue entries.
type CQEKind = transport.CQEKind

const (
	// CQESendComplete reports local completion of an injected send.
	CQESendComplete = transport.CQESendComplete
	// CQERecv reports arrival of a two-sided packet.
	CQERecv = transport.CQERecv
	// CQEPutComplete reports local completion of a one-sided put.
	CQEPutComplete = transport.CQEPutComplete
	// CQEGetComplete reports local completion of a one-sided get.
	CQEGetComplete = transport.CQEGetComplete
	// CQEAccComplete reports local completion of a one-sided accumulate.
	CQEAccComplete = transport.CQEAccComplete
)

// CQE is one completion-queue entry.
type CQE = transport.CQE
