package fabric

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func newFastDevice(t testing.TB) *Device {
	t.Helper()
	return NewDevice(hw.Fast())
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := Envelope{Src: 3, Dst: 7, Tag: -42, Comm: 9, Seq: 123456, Len: 28, Kind: KindEager}
	var b [EnvelopeSize]byte
	e.Marshal(&b)
	var got Envelope
	got.Unmarshal(&b)
	if got != e {
		t.Fatalf("round trip = %+v, want %+v", got, e)
	}
}

func TestEnvelopeQuickRoundTrip(t *testing.T) {
	prop := func(src, dst, tag int32, comm, seq, ln uint32) bool {
		e := Envelope{Src: src, Dst: dst, Tag: tag, Comm: comm, Seq: seq, Len: ln, Kind: KindEager}
		var b [EnvelopeSize]byte
		e.Marshal(&b)
		var got Envelope
		got.Unmarshal(&b)
		return got == e
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketCopiesPayload(t *testing.T) {
	payload := []byte{1, 2, 3}
	p := NewPacket(Envelope{Kind: KindEager}, payload, nil)
	payload[0] = 99 // sender reuses its buffer immediately
	if p.Payload[0] != 1 {
		t.Fatal("packet aliases the sender's buffer; eager semantics require a copy")
	}
	if env := p.Envelope(); env.Len != 3 {
		t.Fatalf("packet Len = %d, want 3", env.Len)
	}
}

func TestContextLimit(t *testing.T) {
	m := hw.Fast()
	m.MaxContexts = 2
	d := NewDevice(m)
	if _, err := d.CreateContext(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateContext(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateContext(0); !errors.Is(err, ErrContextLimit) {
		t.Fatalf("third CreateContext err = %v, want ErrContextLimit", err)
	}
	if d.NumContexts() != 2 {
		t.Fatalf("NumContexts = %d, want 2", d.NumContexts())
	}
}

func TestDeviceContextLookup(t *testing.T) {
	d := newFastDevice(t)
	c0, _ := d.CreateContext(0)
	if got := d.Context(0); got != c0 {
		t.Fatal("Context(0) did not return the created context")
	}
	if d.Context(5) != nil || d.Context(-1) != nil {
		t.Fatal("out-of-range Context lookup returned non-nil")
	}
}

func TestClosedDeviceRefusesContexts(t *testing.T) {
	d := newFastDevice(t)
	d.Close()
	if _, err := d.CreateContext(0); err == nil {
		t.Fatal("CreateContext succeeded on closed device")
	}
}

func TestSendDeliversAndCompletes(t *testing.T) {
	sender := newFastDevice(t)
	receiver := newFastDevice(t)
	sctx, _ := sender.CreateContext(0)
	rctx, _ := receiver.CreateContext(0)
	ep := NewEndpoint(sctx, rctx)

	tok := "req-1"
	env := Envelope{Src: 0, Dst: 1, Tag: 5, Comm: 1, Seq: 0, Kind: KindEager}
	ep.Send(NewPacket(env, []byte("hi"), tok))

	// Sender side: one send completion.
	var sendDone []CQE
	sctx.Poll(func(e CQE) { sendDone = append(sendDone, e) }, 16)
	if len(sendDone) != 1 || sendDone[0].Kind != CQESendComplete {
		t.Fatalf("sender CQ = %+v, want one SendComplete", sendDone)
	}
	if sendDone[0].Packet.Token != tok {
		t.Fatal("send completion lost its token")
	}

	// Receiver side: one recv event with intact envelope and payload.
	var recvd []CQE
	rctx.Poll(func(e CQE) { recvd = append(recvd, e) }, 16)
	if len(recvd) != 1 || recvd[0].Kind != CQERecv {
		t.Fatalf("receiver CQ = %+v, want one Recv", recvd)
	}
	got := recvd[0].Packet.Envelope()
	if got.Tag != 5 || got.Src != 0 || got.Len != 2 {
		t.Fatalf("received envelope = %+v", got)
	}
	if string(recvd[0].Packet.Payload) != "hi" {
		t.Fatalf("payload = %q", recvd[0].Packet.Payload)
	}
}

func TestPollMaxBound(t *testing.T) {
	d := newFastDevice(t)
	rx, _ := d.CreateContext(0)
	tx, _ := d.CreateContext(0)
	ep := NewEndpoint(tx, rx)
	for i := 0; i < 10; i++ {
		ep.Send(NewPacket(Envelope{Seq: uint32(i), Kind: KindEager}, nil, nil))
	}
	n := rx.Poll(func(CQE) {}, 4)
	if n != 4 {
		t.Fatalf("Poll handled %d, want 4 (max bound)", n)
	}
	if !rx.Pending() {
		t.Fatal("Pending() = false with 6 packets still queued")
	}
	total := n
	for rx.Pending() {
		total += rx.Poll(func(CQE) {}, 64)
	}
	if total != 10 {
		t.Fatalf("drained %d packets, want 10", total)
	}
}

func TestPollFIFOPerSender(t *testing.T) {
	d := newFastDevice(t)
	rx, _ := d.CreateContext(0)
	tx, _ := d.CreateContext(0)
	ep := NewEndpoint(tx, rx)
	const n = 100
	for i := 0; i < n; i++ {
		ep.Send(NewPacket(Envelope{Seq: uint32(i), Kind: KindEager}, nil, nil))
	}
	next := uint32(0)
	for rx.Pending() {
		rx.Poll(func(e CQE) {
			if e.Kind != CQERecv {
				return
			}
			if got := e.Packet.Envelope().Seq; got != next {
				t.Fatalf("seq %d delivered, want %d (single-sender FIFO)", got, next)
			}
			next++
		}, 16)
	}
	if next != n {
		t.Fatalf("received %d packets, want %d", next, n)
	}
}

func TestConcurrentSendersAllDelivered(t *testing.T) {
	sender := newFastDevice(t)
	receiver := newFastDevice(t)
	rctx, _ := receiver.CreateContext(0)
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sctx, err := sender.CreateContext(0)
			if err != nil {
				t.Error(err)
				return
			}
			ep := NewEndpoint(sctx, rctx)
			for i := 0; i < perG; i++ {
				ep.Send(NewPacket(Envelope{Src: int32(g), Seq: uint32(i), Kind: KindEager}, nil, nil))
			}
		}(g)
	}
	wg.Wait()

	seen := make(map[int32]uint32)
	count := 0
	for rctx.Pending() {
		rctx.Poll(func(e CQE) {
			if e.Kind != CQERecv {
				return
			}
			env := e.Packet.Envelope()
			if env.Seq != seen[env.Src] {
				t.Fatalf("sender %d: seq %d, want %d (per-sender FIFO broken)", env.Src, env.Seq, seen[env.Src])
			}
			seen[env.Src]++
			count++
		}, 64)
	}
	if count != goroutines*perG {
		t.Fatalf("delivered %d, want %d", count, goroutines*perG)
	}
}

func TestRMAPutGet(t *testing.T) {
	target := newFastDevice(t)
	initiator := newFastDevice(t)
	ictx, _ := initiator.CreateContext(0)

	mem := make([]byte, 64)
	reg := target.RegisterMemory(mem)
	if r, ok := target.Region(reg.ID()); !ok || r != reg {
		t.Fatal("Region lookup failed after RegisterMemory")
	}

	if err := ictx.Put(reg, 8, []byte("hello"), "p1"); err != nil {
		t.Fatal(err)
	}
	if string(mem[8:13]) != "hello" {
		t.Fatalf("target memory = %q", mem[8:13])
	}

	dst := make([]byte, 5)
	if err := ictx.Get(reg, 8, dst, "g1"); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "hello" {
		t.Fatalf("Get read %q", dst)
	}

	var kinds []CQEKind
	var tokens []any
	for ictx.Pending() {
		ictx.Poll(func(e CQE) { kinds = append(kinds, e.Kind); tokens = append(tokens, e.Token) }, 16)
	}
	if len(kinds) != 2 || kinds[0] != CQEPutComplete || kinds[1] != CQEGetComplete {
		t.Fatalf("completions = %v", kinds)
	}
	if tokens[0] != "p1" || tokens[1] != "g1" {
		t.Fatalf("tokens = %v", tokens)
	}

	target.DeregisterMemory(reg)
	if _, ok := target.Region(reg.ID()); ok {
		t.Fatal("region still visible after DeregisterMemory")
	}
}

func TestRMABounds(t *testing.T) {
	target := newFastDevice(t)
	initiator := newFastDevice(t)
	ictx, _ := initiator.CreateContext(0)
	reg := target.RegisterMemory(make([]byte, 16))

	cases := []error{
		ictx.Put(reg, 12, []byte("too long"), nil),
		ictx.Put(reg, -1, []byte("x"), nil),
		ictx.Get(reg, 16, make([]byte, 1), nil),
		ictx.Accumulate(reg, 16, []int64{1}, AccSum, nil),
		ictx.Accumulate(reg, 3, []int64{1}, AccSum, nil), // misaligned
	}
	for i, err := range cases {
		var be *BoundsError
		if !errors.As(err, &be) {
			t.Errorf("case %d: err = %v, want BoundsError", i, err)
		}
	}
	if ictx.Pending() {
		t.Fatal("failed operations generated completions")
	}
}

func TestAccumulateOps(t *testing.T) {
	target := newFastDevice(t)
	initiator := newFastDevice(t)
	ictx, _ := initiator.CreateContext(0)
	mem := make([]byte, 32)
	reg := target.RegisterMemory(mem)

	check := func(op AccumulateOp, operand, want int64) {
		t.Helper()
		if err := ictx.Accumulate(reg, 0, []int64{operand}, op, nil); err != nil {
			t.Fatal(err)
		}
		if got := int64(le64(mem[0:8])); got != want {
			t.Fatalf("op %d: memory = %d, want %d", op, got, want)
		}
	}
	check(AccReplace, 10, 10)
	check(AccSum, 5, 15)
	check(AccMax, 3, 15)
	check(AccMax, 99, 99)
	check(AccMin, 50, 50)
	check(AccMin, 60, 50)
	check(AccSum, -50, 0)
}

func TestAccumulateAtomicUnderConcurrency(t *testing.T) {
	target := newFastDevice(t)
	initiator := newFastDevice(t)
	mem := make([]byte, 8)
	reg := target.RegisterMemory(mem)

	const (
		goroutines = 8
		adds       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ctx, err := initiator.CreateContext(0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ctx *Context) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				if err := ctx.Accumulate(reg, 0, []int64{1}, AccSum, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(ctx)
	}
	wg.Wait()
	if got := int64(le64(mem)); got != goroutines*adds {
		t.Fatalf("sum = %d, want %d (accumulate not atomic)", got, goroutines*adds)
	}
}

func TestScramblerDeliversEverythingOnce(t *testing.T) {
	m := hw.Fast()
	d := NewDevice(m)
	d.SetScrambler(NewScrambler(42, 8))
	rx, _ := d.CreateContext(0)
	tx, _ := NewDevice(m).CreateContext(0)
	ep := NewEndpoint(tx, rx)
	const n = 200
	for i := 0; i < n; i++ {
		ep.Send(NewPacket(Envelope{Seq: uint32(i), Kind: KindEager}, nil, nil))
	}
	d.scrambler.DrainTo(rx)

	seen := make(map[uint32]bool)
	outOfOrder := false
	var last int64 = -1
	for rx.Pending() {
		rx.Poll(func(e CQE) {
			if e.Kind != CQERecv {
				return
			}
			seq := e.Packet.Envelope().Seq
			if seen[seq] {
				t.Fatalf("seq %d delivered twice", seq)
			}
			seen[seq] = true
			if int64(seq) < last {
				outOfOrder = true
			}
			last = int64(seq)
		}, 64)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct packets, want %d", len(seen), n)
	}
	if !outOfOrder {
		t.Fatal("scrambler produced fully ordered delivery; want reordering")
	}
}

func TestRateLimiterCapsThroughput(t *testing.T) {
	// 1e6 msg/s cap: 200 messages should take >= ~200us of wall time.
	l := newRateLimiter(0, 1e6)
	for i := 0; i < 200; i++ {
		l.reserve(0)
	}
	elapsed := l.next.Load()
	if elapsed < 190_000 { // virtual ns reserved
		t.Fatalf("reserved only %d ns of wire time, want ~200000", elapsed)
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	l := newRateLimiter(0, 0)
	if l.enabled() {
		t.Fatal("zero-rate limiter reports enabled")
	}
	l.reserve(1 << 20) // must not block or panic
	var nilL *rateLimiter
	nilL.reserve(10) // nil limiter is a no-op
}

func TestRateLimiterBandwidthDimension(t *testing.T) {
	l := newRateLimiter(8, 0) // 8 Gbps = 1 byte/ns
	l.reserve(1000)
	if got := l.next.Load(); got < 1000 {
		t.Fatalf("1000-byte reservation advanced cursor by %d ns, want >= 1000", got)
	}
}

func BenchmarkEndpointSendZeroByte(b *testing.B) {
	d := NewDevice(hw.Fast())
	rx, _ := d.CreateContext(1 << 16)
	tx, _ := d.CreateContext(1 << 16)
	ep := NewEndpoint(tx, rx)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ep.Send(NewPacket(Envelope{Seq: uint32(i), Kind: KindEager}, nil, nil))
		if i%1024 == 1023 {
			for rx.Pending() {
				rx.Poll(func(CQE) {}, 256)
			}
			for tx.Pending() {
				tx.Poll(func(CQE) {}, 256)
			}
		}
	}
}
