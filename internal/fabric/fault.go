package fabric

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/spc"
)

// FaultConfig parameterizes the wire-fault injector. All probabilities are
// per-packet and independent; a packet is first tested for drop, then (if it
// survived) for duplication and delay. The zero value injects nothing.
type FaultConfig struct {
	// Drop is the probability a packet vanishes on the wire. The sender
	// still observes local send completion — exactly like real hardware,
	// which reports the DMA done long before the packet survives the
	// network.
	Drop float64
	// Dup is the probability a packet is delivered twice.
	Dup float64
	// Delay is the probability a packet is held back for DelayDur before
	// delivery (a slow path through the switch), reordering it past later
	// traffic.
	Delay float64
	// DelayDur is how long a delayed packet is held (0 = 200µs).
	DelayDur time.Duration
	// Seed seeds the deterministic RNG (0 = 1).
	Seed int64
}

// DefaultFaultDelay is the hold time of a delayed packet when
// FaultConfig.DelayDur is unset.
const DefaultFaultDelay = 200 * time.Microsecond

// Enabled reports whether any fault has a non-zero probability.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.DelayDur <= 0 {
		c.DelayDur = DefaultFaultDelay
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultInjector perturbs packet delivery at the device layer under a seeded
// RNG: drops, duplications, and delays. It models an imperfect network under
// the fabric's synchronous-delivery design, so the layers above can be
// tested against loss, duplication, and reordering instead of assuming the
// perfect wire the paper evaluates on. Injected faults are recorded in the
// attached counter set (nil-safe).
type FaultInjector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	cfg  FaultConfig
	spcs *spc.Set
}

// NewFaultInjector builds an injector for cfg recording into spcs (may be
// nil). Returns nil when cfg injects nothing, so callers can install the
// result unconditionally.
func NewFaultInjector(cfg FaultConfig, spcs *spc.Set) *FaultInjector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return &FaultInjector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, spcs: spcs}
}

// Config returns the injector's (defaulted) configuration.
func (f *FaultInjector) Config() FaultConfig { return f.cfg }

// fate is the injector's verdict for one packet.
type fate struct {
	drop  bool
	dup   bool
	delay time.Duration // 0 = deliver now
}

// judge rolls the dice for one packet and advances the fault counters.
func (f *FaultInjector) judge() fate {
	f.mu.Lock()
	var ft fate
	if f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop {
		ft.drop = true
	} else {
		if f.cfg.Dup > 0 && f.rng.Float64() < f.cfg.Dup {
			ft.dup = true
		}
		if f.cfg.Delay > 0 && f.rng.Float64() < f.cfg.Delay {
			ft.delay = f.cfg.DelayDur
		}
	}
	f.mu.Unlock()
	switch {
	case ft.drop:
		f.spcs.Inc(spc.FaultPacketsDropped)
	case ft.dup:
		f.spcs.Inc(spc.FaultPacketsDuplicated)
	}
	if ft.delay > 0 {
		f.spcs.Inc(spc.FaultPacketsDelayed)
	}
	return ft
}

// inject delivers p to dst subject to the injector's faults. Duplicated
// packets are the same *Packet delivered twice — receivers must treat
// packets as read-only, which they do.
func (f *FaultInjector) inject(dst *Context, p *Packet) {
	ft := f.judge()
	if ft.drop {
		return
	}
	if ft.delay > 0 {
		dst.deliverDelayed(p, ft.delay)
		if ft.dup {
			dst.deliverDelayed(p, ft.delay)
		}
		return
	}
	dst.deliver(p)
	if ft.dup {
		dst.deliver(p)
	}
}
