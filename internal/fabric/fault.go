package fabric

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/spc"
	"repro/internal/transport"
)

// FaultConfig parameterizes the wire-fault injector; the type lives in
// internal/transport so consumers can request faults without naming a
// backend.
type FaultConfig = transport.FaultConfig

// DefaultFaultDelay is the hold time of a delayed packet when
// FaultConfig.DelayDur is unset.
const DefaultFaultDelay = transport.DefaultFaultDelay

// FaultInjector perturbs packet delivery at the device layer under a seeded
// RNG: drops, duplications, and delays. It models an imperfect network under
// the fabric's synchronous-delivery design, so the layers above can be
// tested against loss, duplication, and reordering instead of assuming the
// perfect wire the paper evaluates on. Injected faults are recorded in the
// attached counter set (nil-safe).
type FaultInjector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	cfg  FaultConfig
	spcs *spc.Set
}

// NewFaultInjector builds an injector for cfg recording into spcs (may be
// nil). Returns nil when cfg injects nothing, so callers can install the
// result unconditionally.
func NewFaultInjector(cfg FaultConfig, spcs *spc.Set) *FaultInjector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.WithDefaults()
	return &FaultInjector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, spcs: spcs}
}

// Config returns the injector's (defaulted) configuration.
func (f *FaultInjector) Config() FaultConfig { return f.cfg }

// fate is the injector's verdict for one packet.
type fate struct {
	drop  bool
	dup   bool
	delay time.Duration // 0 = deliver now
}

// judge rolls the dice for one packet and advances the fault counters.
func (f *FaultInjector) judge() fate {
	f.mu.Lock()
	var ft fate
	if f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop {
		ft.drop = true
	} else {
		if f.cfg.Dup > 0 && f.rng.Float64() < f.cfg.Dup {
			ft.dup = true
		}
		if f.cfg.Delay > 0 && f.rng.Float64() < f.cfg.Delay {
			ft.delay = f.cfg.DelayDur
		}
	}
	f.mu.Unlock()
	switch {
	case ft.drop:
		f.spcs.Inc(spc.FaultPacketsDropped)
	case ft.dup:
		f.spcs.Inc(spc.FaultPacketsDuplicated)
	}
	if ft.delay > 0 {
		f.spcs.Inc(spc.FaultPacketsDelayed)
	}
	return ft
}

// inject delivers p to dst subject to the injector's faults. Duplicated
// packets are the same *Packet delivered twice — receivers must treat
// packets as read-only, which they do.
func (f *FaultInjector) inject(dst *Context, p *Packet) {
	ft := f.judge()
	if ft.drop {
		return
	}
	if ft.delay > 0 {
		dst.deliverDelayed(p, ft.delay)
		if ft.dup {
			dst.deliverDelayed(p, ft.delay)
		}
		return
	}
	dst.deliver(p)
	if ft.dup {
		dst.deliver(p)
	}
}
