package fabric

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/spc"
)

// faultPair builds two devices with cfg installed on the sender side and
// returns a sender->receiver endpoint plus the sender's counter set.
func faultPair(t *testing.T, cfg FaultConfig) (*Endpoint, *Context, *spc.Set) {
	t.Helper()
	s := spc.NewSet()
	sender := NewDevice(hw.Fast())
	sender.SetFaultInjector(NewFaultInjector(cfg, s))
	receiver := NewDevice(hw.Fast())
	src, err := sender.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := receiver.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	return NewEndpoint(src, dst), dst, s
}

// drain polls dst until idle and returns how many inbound packets arrived.
func drain(dst *Context, rounds int) int {
	got := 0
	for i := 0; i < rounds; i++ {
		dst.Poll(func(e CQE) {
			if e.Kind == CQERecv {
				got++
			}
		}, 64)
	}
	return got
}

func TestFaultInjectorDisabledIsNil(t *testing.T) {
	if f := NewFaultInjector(FaultConfig{}, spc.NewSet()); f != nil {
		t.Fatal("zero FaultConfig must yield a nil injector")
	}
	if f := NewFaultInjector(FaultConfig{Drop: 0.5}, nil); f == nil {
		t.Fatal("non-zero drop probability must yield an injector (nil spcs is allowed)")
	}
}

func TestFaultDropAll(t *testing.T) {
	ep, dst, s := faultPair(t, FaultConfig{Drop: 1})
	const n = 16
	for i := 0; i < n; i++ {
		ep.Send(NewPacket(Envelope{Kind: KindEager, Seq: uint32(i)}, nil, nil))
	}
	if got := drain(dst, 4); got != 0 {
		t.Fatalf("Drop=1 delivered %d packets, want 0", got)
	}
	if c := s.Get(spc.FaultPacketsDropped); c != n {
		t.Fatalf("FaultPacketsDropped = %d, want %d", c, n)
	}
	// The sender still sees local send completions, like real hardware.
	sends := 0
	ep.Local().Poll(func(e CQE) {
		if e.Kind == CQESendComplete {
			sends++
		}
	}, 64)
	if sends != n {
		t.Fatalf("sender saw %d send completions, want %d", sends, n)
	}
}

func TestFaultDupAll(t *testing.T) {
	ep, dst, s := faultPair(t, FaultConfig{Dup: 1})
	const n = 8
	for i := 0; i < n; i++ {
		ep.Send(NewPacket(Envelope{Kind: KindEager, Seq: uint32(i)}, nil, nil))
	}
	if got := drain(dst, 4); got != 2*n {
		t.Fatalf("Dup=1 delivered %d packets, want %d", got, 2*n)
	}
	if c := s.Get(spc.FaultPacketsDuplicated); c != n {
		t.Fatalf("FaultPacketsDuplicated = %d, want %d", c, n)
	}
}

func TestFaultDelayReleasedByPoll(t *testing.T) {
	ep, dst, s := faultPair(t, FaultConfig{Delay: 1, DelayDur: time.Millisecond})
	ep.Send(NewPacket(Envelope{Kind: KindEager}, nil, nil))
	if !dst.Pending() {
		t.Fatal("a delayed packet must keep the context Pending")
	}
	if got := drain(dst, 1); got != 0 {
		t.Fatal("packet delivered before its hold time elapsed")
	}
	time.Sleep(2 * time.Millisecond)
	if got := drain(dst, 2); got != 1 {
		t.Fatalf("delayed packet not released after hold time: got %d", got)
	}
	if c := s.Get(spc.FaultPacketsDelayed); c != 1 {
		t.Fatalf("FaultPacketsDelayed = %d, want 1", c)
	}
	if dst.Pending() {
		t.Fatal("context still Pending after the delayed packet drained")
	}
}

// TestFaultDeterministicSeed checks that two injectors with the same seed
// make identical per-packet decisions, and a different seed diverges.
func TestFaultDeterministicSeed(t *testing.T) {
	roll := func(seed int64) []bool {
		f := NewFaultInjector(FaultConfig{Drop: 0.5, Seed: seed}, nil)
		out := make([]bool, 256)
		for i := range out {
			out[i] = f.judge().drop
		}
		return out
	}
	a, b, c := roll(42), roll(42), roll(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault sequences")
	}
}
