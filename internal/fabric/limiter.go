package fabric

import (
	"runtime"
	"sync/atomic"
	"time"
)

// rateLimiter serializes wire time for one device using virtual-time
// reservations: each injection atomically reserves its serialization slot on
// a monotone cursor and, if the cursor is ahead of real time, the injecting
// goroutine waits out the difference. The effect is a hard aggregate cap on
// the device's message and byte rate — the "theoretical peak" line in
// Figures 6 and 7 — that all threads share, no matter how many contexts
// they spread across.
type rateLimiter struct {
	next      atomic.Int64 // virtual time (ns since start) of next free slot
	start     time.Time
	perByteNs float64
	perMsgNs  float64
}

// newRateLimiter builds a limiter from a link rate in Gbps and a message
// injection cap in msg/s. Either may be zero to disable that dimension; a
// limiter with both zero is nil-equivalent and reserve becomes a no-op.
func newRateLimiter(linkGbps, maxMsgRate float64) *rateLimiter {
	l := &rateLimiter{start: time.Now()}
	if linkGbps > 0 {
		l.perByteNs = 8 / linkGbps
	}
	if maxMsgRate > 0 {
		l.perMsgNs = 1e9 / maxMsgRate
	}
	return l
}

// enabled reports whether any rate dimension is configured.
func (l *rateLimiter) enabled() bool {
	return l != nil && (l.perByteNs > 0 || l.perMsgNs > 0)
}

// reserve charges one message of the given wire size and blocks until its
// reserved slot begins. Safe for unlimited concurrency.
func (l *rateLimiter) reserve(wireBytes int) {
	if !l.enabled() {
		return
	}
	cost := int64(l.perMsgNs + l.perByteNs*float64(wireBytes))
	if cost <= 0 {
		return
	}
	now := time.Since(l.start).Nanoseconds()
	var slotStart int64
	for {
		cur := l.next.Load()
		slotStart = cur
		if slotStart < now {
			slotStart = now
		}
		if l.next.CompareAndSwap(cur, slotStart+cost) {
			break
		}
	}
	// Wait until the reserved slot opens. Short waits spin; longer waits
	// yield so other goroutines (e.g. the receiver) can run.
	for {
		now = time.Since(l.start).Nanoseconds()
		if now >= slotStart {
			return
		}
		if slotStart-now > int64(50*time.Microsecond) {
			runtime.Gosched()
		}
	}
}
