package fabric

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/transport"
)

// MemRegion is a registered remote-memory region — the fabric-level object
// behind an MPI window. Remote peers address it by (device, region id).
// Puts and gets move bytes without any involvement of the target process's
// CPU, which is exactly the property that makes one-sided communication
// thread-friendly in the paper's Section II-D.
type MemRegion struct {
	id  uint64
	buf []byte
	// atomMu serializes accumulate operations, which MPI defines to be
	// element-wise atomic. Plain puts/gets are not serialized: concurrent
	// overlapping puts are erroneous at the MPI level, as in the standard's
	// separate memory model.
	atomMu sync.Mutex
}

// ID returns the region's registration id.
func (r *MemRegion) ID() uint64 { return r.id }

// Size returns the region length in bytes.
func (r *MemRegion) Size() int { return len(r.buf) }

// Bytes exposes the underlying buffer (local access for the window owner).
func (r *MemRegion) Bytes() []byte { return r.buf }

// RegisterMemory registers buf for remote access and returns its region.
func (d *Device) RegisterMemory(buf []byte) *MemRegion {
	d.regMu.Lock()
	defer d.regMu.Unlock()
	d.nextReg++
	r := &MemRegion{id: d.nextReg, buf: buf}
	d.regions[r.id] = r
	return r
}

// DeregisterMemory removes a region from remote visibility.
func (d *Device) DeregisterMemory(r *MemRegion) {
	d.regMu.Lock()
	delete(d.regions, r.id)
	d.regMu.Unlock()
}

// Region looks up a registered region by id.
func (d *Device) Region(id uint64) (*MemRegion, bool) {
	d.regMu.RLock()
	r, ok := d.regions[id]
	d.regMu.RUnlock()
	return r, ok
}

// errBounds is returned when a one-sided access falls outside the region.
var errBounds = errors.New("fabric: one-sided access out of region bounds")

// BoundsError wraps errBounds with the offending access.
type BoundsError struct {
	Op     string
	Offset int
	Len    int
	Size   int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("fabric: %s [%d, %d) outside region of %d bytes",
		e.Op, e.Offset, e.Offset+e.Len, e.Size)
}

func (e *BoundsError) Unwrap() error { return errBounds }

func checkBounds(op string, r *MemRegion, offset, n int) error {
	if offset < 0 || n < 0 || offset+n > len(r.buf) {
		return &BoundsError{Op: op, Offset: offset, Len: n, Size: len(r.buf)}
	}
	return nil
}

// simRegion narrows a transport-level region handle to the fabric's concrete
// region. The initiators accept the interface so *Context satisfies
// transport.Context; a handle from another backend (or nil) is unreachable
// by construction and reported as such.
func simRegion(reg transport.MemRegion) (*MemRegion, error) {
	r, ok := reg.(*MemRegion)
	if !ok || r == nil {
		return nil, transport.ErrRegionUnavailable
	}
	return r, nil
}

// Put writes src into the remote region at offset: initiator-side CPU cost,
// wire reservation for the payload, direct memory write, and a local
// PutComplete CQE carrying token. The target's CPU is never involved.
func (c *Context) Put(reg transport.MemRegion, offset int, src []byte, token any) error {
	r, err := simRegion(reg)
	if err != nil {
		return err
	}
	if err := checkBounds("put", r, offset, len(src)); err != nil {
		return err
	}
	costs := &c.dev.costs
	hw.Spin(costs.RMAPut)
	c.dev.limiter.reserve(EnvelopeSize + len(src))
	copy(r.buf[offset:], src)
	c.completeLocal(CQE{Kind: CQEPutComplete, Token: token})
	return nil
}

// Get reads len(dst) bytes from the remote region at offset into dst and
// posts a local GetComplete CQE carrying token.
func (c *Context) Get(reg transport.MemRegion, offset int, dst []byte, token any) error {
	r, err := simRegion(reg)
	if err != nil {
		return err
	}
	if err := checkBounds("get", r, offset, len(dst)); err != nil {
		return err
	}
	costs := &c.dev.costs
	hw.Spin(costs.RMAGet)
	c.dev.limiter.reserve(EnvelopeSize + len(dst))
	copy(dst, r.buf[offset:offset+len(dst)])
	c.completeLocal(CQE{Kind: CQEGetComplete, Token: token})
	return nil
}

// AccumulateOp selects the reduction applied by Accumulate; the type and
// its values live in internal/transport.
type AccumulateOp = transport.AccumulateOp

const (
	// AccSum adds the operand to the target (MPI_SUM).
	AccSum = transport.AccSum
	// AccReplace overwrites the target (MPI_REPLACE).
	AccReplace = transport.AccReplace
	// AccMax keeps the maximum (MPI_MAX).
	AccMax = transport.AccMax
	// AccMin keeps the minimum (MPI_MIN).
	AccMin = transport.AccMin
)

// Accumulate applies op element-wise over int64 lanes at offset. The
// operation is atomic with respect to other Accumulates on the same region
// (MPI's same-op atomicity guarantee); it costs initiator CPU plus wire
// time, posts an AccComplete CQE with token, and never involves the target
// CPU — the "remote atomic" of the RDMA hardware.
func (c *Context) Accumulate(reg transport.MemRegion, offset int, operand []int64, op AccumulateOp, token any) error {
	r, err := simRegion(reg)
	if err != nil {
		return err
	}
	n := len(operand) * 8
	if err := checkBounds("accumulate", r, offset, n); err != nil {
		return err
	}
	if offset%8 != 0 {
		return &BoundsError{Op: "accumulate (alignment)", Offset: offset, Len: n, Size: len(r.buf)}
	}
	costs := &c.dev.costs
	hw.Spin(costs.RMAPut)
	c.dev.limiter.reserve(EnvelopeSize + n)
	r.atomMu.Lock()
	for i, v := range operand {
		p := r.buf[offset+8*i : offset+8*i+8]
		cur := int64(le64(p))
		switch op {
		case AccSum:
			cur += v
		case AccReplace:
			cur = v
		case AccMax:
			if v > cur {
				cur = v
			}
		case AccMin:
			if v < cur {
				cur = v
			}
		}
		putLE64(p, uint64(cur))
	}
	r.atomMu.Unlock()
	c.completeLocal(CQE{Kind: CQEAccComplete, Token: token})
	return nil
}

// FetchAndOp atomically applies op to the int64 at offset and writes the
// previous value into *result before posting an AccComplete CQE — the
// MPI_Fetch_and_op primitive RDMA NICs provide natively.
func (c *Context) FetchAndOp(reg transport.MemRegion, offset int, operand int64, op AccumulateOp, result *int64, token any) error {
	r, err := simRegion(reg)
	if err != nil {
		return err
	}
	if err := checkBounds("fetch_and_op", r, offset, 8); err != nil {
		return err
	}
	if offset%8 != 0 {
		return &BoundsError{Op: "fetch_and_op (alignment)", Offset: offset, Len: 8, Size: len(r.buf)}
	}
	costs := &c.dev.costs
	hw.Spin(costs.RMAPut)
	c.dev.limiter.reserve(EnvelopeSize + 8)
	r.atomMu.Lock()
	p := r.buf[offset : offset+8]
	old := int64(le64(p))
	cur := old
	switch op {
	case AccSum:
		cur += operand
	case AccReplace:
		cur = operand
	case AccMax:
		if operand > cur {
			cur = operand
		}
	case AccMin:
		if operand < cur {
			cur = operand
		}
	}
	putLE64(p, uint64(cur))
	r.atomMu.Unlock()
	if result != nil {
		*result = old
	}
	c.completeLocal(CQE{Kind: CQEAccComplete, Token: token})
	return nil
}

// CompareAndSwap atomically replaces the int64 at offset with swap if it
// equals compare, writing the previous value into *result
// (MPI_Compare_and_swap).
func (c *Context) CompareAndSwap(reg transport.MemRegion, offset int, compare, swap int64, result *int64, token any) error {
	r, err := simRegion(reg)
	if err != nil {
		return err
	}
	if err := checkBounds("compare_and_swap", r, offset, 8); err != nil {
		return err
	}
	if offset%8 != 0 {
		return &BoundsError{Op: "compare_and_swap (alignment)", Offset: offset, Len: 8, Size: len(r.buf)}
	}
	costs := &c.dev.costs
	hw.Spin(costs.RMAPut)
	c.dev.limiter.reserve(EnvelopeSize + 16)
	r.atomMu.Lock()
	p := r.buf[offset : offset+8]
	old := int64(le64(p))
	if old == compare {
		putLE64(p, uint64(swap))
	}
	r.atomMu.Unlock()
	if result != nil {
		*result = old
	}
	c.completeLocal(CQE{Kind: CQEAccComplete, Token: token})
	return nil
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
