package fabric

import (
	"math/rand"
	"sync"
)

// Scrambler adversarially reorders packet delivery within a bounded window.
// Real networks provide no ordering guarantee (Section II-C); in the
// simulated fabric natural reordering only arises from concurrent senders,
// so tests install a Scrambler to exercise the sequence-validation and
// out-of-sequence buffering paths deterministically.
type Scrambler struct {
	mu     sync.Mutex
	rng    *rand.Rand
	window int
	held   []*Packet
}

// NewScrambler returns a scrambler holding back up to window packets,
// releasing them in seeded-random order.
func NewScrambler(seed int64, window int) *Scrambler {
	if window < 1 {
		window = 1
	}
	return &Scrambler{rng: rand.New(rand.NewSource(seed)), window: window}
}

// scramble accepts one packet and returns zero or more packets to deliver
// now, in scrambled order.
func (s *Scrambler) scramble(p *Packet) []*Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.held = append(s.held, p)
	if len(s.held) < s.window {
		// Randomly hold until the window fills, with occasional early
		// release to avoid starving short streams.
		if s.rng.Intn(4) != 0 {
			return nil
		}
	}
	out := make([]*Packet, len(s.held))
	perm := s.rng.Perm(len(s.held))
	for i, j := range perm {
		out[i] = s.held[j]
	}
	s.held = s.held[:0]
	return out
}

// Flush releases all held packets in random order. Call after the sending
// phase ends so no packet is stranded.
func (s *Scrambler) Flush() []*Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Packet, len(s.held))
	perm := s.rng.Perm(len(s.held))
	for i, j := range perm {
		out[i] = s.held[j]
	}
	s.held = s.held[:0]
	return out
}

// DrainTo delivers all held packets directly to ctx.
func (s *Scrambler) DrainTo(ctx *Context) {
	for _, p := range s.Flush() {
		ctx.deliverDirect(p)
	}
}
