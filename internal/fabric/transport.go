package fabric

import (
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

var (
	_ transport.Network   = (*Network)(nil)
	_ transport.Device    = (*tdev)(nil)
	_ transport.Context   = (*Context)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
	_ transport.MemRegion = (*MemRegion)(nil)
)

// Network is the simulated backend's implementation of transport.Network:
// an in-process cluster of devices, one per world rank, wired through shared
// memory. It is the default backend the runtime falls back to when no other
// is configured.
type Network struct {
	mu   sync.Mutex
	devs map[int]*tdev
}

// NewNetwork creates an empty simulated cluster.
func NewNetwork() *Network {
	return &Network{devs: make(map[int]*tdev)}
}

// Caps describes the simulated fabric: a faulty, one-sided-capable wire
// that mirrors the multiplexed backends' lazy-establishment semantics (all
// of a peer pair's contexts share one logical connection, resolved on first
// send) so the same world-construction path exercises both engines.
func (n *Network) Caps() transport.Caps {
	return transport.Caps{Name: "sim", OneSided: true, FaultInjection: true, Multiplexed: true}
}

// NewDevice creates the device for world rank r, honoring the scramble and
// fault settings in cfg (this backend advertises FaultInjection).
func (n *Network) NewDevice(rank int, m hw.Machine, cfg transport.DeviceConfig) (transport.Device, error) {
	d := NewDevice(m)
	if cfg.ScrambleWindow > 0 {
		seed := cfg.ScrambleSeed
		if seed == 0 {
			seed = 1
		}
		d.SetScrambler(NewScrambler(seed, cfg.ScrambleWindow))
	}
	if cfg.Faults.Enabled() {
		d.SetFaultInjector(NewFaultInjector(cfg.Faults, cfg.Counters))
	}
	t := &tdev{d: d, net: n, rank: rank, counters: cfg.Counters}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.devs[rank]; dup {
		return nil, fmt.Errorf("fabric: device for rank %d already exists", rank)
	}
	n.devs[rank] = t
	return t, nil
}

// device returns the registered device for a rank, or nil.
func (n *Network) device(rank int) *tdev {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.devs[rank]
}

// tdev adapts *Device to transport.Device. The concrete methods return
// concrete types (CreateContext, RegisterMemory, Region), so a thin wrapper
// re-exposes them with interface signatures and resolves peer devices
// through the owning Network for Connect.
type tdev struct {
	d        *Device
	net      *Network
	rank     int
	counters *spc.Set

	// connMu guards connected, the peers whose first lazy endpoint
	// resolution already happened — the ConnsOpened/ConnsReused accounting
	// that mirrors the real backends' physical-connection counters.
	connMu    sync.Mutex
	connected map[int]bool
}

// noteEstablish records one lazy endpoint resolution toward peer: the first
// per peer mirrors opening a physical connection, later ones reuse it. The
// totals are deterministic (distinct peers vs. endpoints) even though the
// resolution order is scheduler-dependent.
func (t *tdev) noteEstablish(peer int) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if t.connected == nil {
		t.connected = make(map[int]bool)
	}
	if !t.connected[peer] {
		t.connected[peer] = true
		t.counters.Inc(spc.ConnsOpened)
	} else {
		t.counters.Inc(spc.ConnsReused)
	}
}

// Underlying returns the wrapped simulated device (backend-specific tests
// and the simnet harness reach fabric features through it).
func (t *tdev) Underlying() *Device { return t.d }

func (t *tdev) Machine() hw.Machine { return t.d.Machine() }

func (t *tdev) Caps() transport.Caps { return t.net.Caps() }

func (t *tdev) CreateContext(depth int) (transport.Context, error) {
	c, err := t.d.CreateContext(depth)
	if err != nil {
		// Return an untyped nil: a nil *Context boxed in the interface
		// would compare non-nil to callers.
		return nil, err
	}
	return c, nil
}

// Connect returns a lazily connectable endpoint toward context remoteIdx of
// rank peer, mirroring the multiplexed backends: nothing resolves here —
// the first Send looks the peer's context up and binds the concrete
// endpoint, counting ConnsOpened (first peer resolution on this device) or
// ConnsReused (another endpoint onto an established pair).
func (t *tdev) Connect(local transport.Context, peer int, remoteIdx int) (transport.Endpoint, error) {
	lc, ok := local.(*Context)
	if !ok || lc == nil {
		return nil, fmt.Errorf("fabric: Connect local context is not a fabric context")
	}
	return &lazyEndpoint{t: t, local: lc, peer: peer, remoteIdx: remoteIdx}, nil
}

// lazyEndpoint defers the peer context lookup to first use, so world
// construction never assumes a pre-wired full mesh — the simulated mirror
// of dial-on-first-send. Resolution is idempotent and cached; a failed
// resolution (peer device or context missing) surfaces as ErrConnEstablish
// from the send that triggered it.
type lazyEndpoint struct {
	t         *tdev
	local     *Context
	peer      int
	remoteIdx int

	mu sync.Mutex
	ep *Endpoint
}

func (e *lazyEndpoint) resolve() (*Endpoint, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ep != nil {
		return e.ep, nil
	}
	pd := e.t.net.device(e.peer)
	if pd == nil {
		return nil, fmt.Errorf("%w: rank %d has no device", transport.ErrConnEstablish, e.peer)
	}
	rc := pd.d.Context(e.remoteIdx)
	if rc == nil {
		return nil, fmt.Errorf("%w: rank %d has no context %d", transport.ErrConnEstablish, e.peer, e.remoteIdx)
	}
	e.ep = NewEndpoint(e.local, rc)
	e.t.noteEstablish(e.peer)
	return e.ep, nil
}

func (e *lazyEndpoint) Send(p *transport.Packet) error {
	ep, err := e.resolve()
	if err != nil {
		return err
	}
	return ep.Send(p)
}

func (e *lazyEndpoint) Resend(p *transport.Packet) error {
	ep, err := e.resolve()
	if err != nil {
		return err
	}
	return ep.Resend(p)
}

func (e *lazyEndpoint) PutRegion(regionID uint64, offset int, src []byte, token any) error {
	ep, err := e.resolve()
	if err != nil {
		return err
	}
	return ep.PutRegion(regionID, offset, src, token)
}

func (t *tdev) RegisterMemory(buf []byte) transport.MemRegion {
	return t.d.RegisterMemory(buf)
}

func (t *tdev) DeregisterMemory(r transport.MemRegion) {
	if rr, ok := r.(*MemRegion); ok {
		t.d.DeregisterMemory(rr)
	}
}

func (t *tdev) Region(id uint64) (transport.MemRegion, bool) {
	r, ok := t.d.Region(id)
	if !ok {
		return nil, false
	}
	return r, true
}

func (t *tdev) Close() { t.d.Close() }
