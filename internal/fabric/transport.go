package fabric

import (
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/transport"
)

var (
	_ transport.Network   = (*Network)(nil)
	_ transport.Device    = (*tdev)(nil)
	_ transport.Context   = (*Context)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
	_ transport.MemRegion = (*MemRegion)(nil)
)

// Network is the simulated backend's implementation of transport.Network:
// an in-process cluster of devices, one per world rank, wired through shared
// memory. It is the default backend the runtime falls back to when no other
// is configured.
type Network struct {
	mu   sync.Mutex
	devs map[int]*tdev
}

// NewNetwork creates an empty simulated cluster.
func NewNetwork() *Network {
	return &Network{devs: make(map[int]*tdev)}
}

// Caps describes the simulated fabric: a faulty, one-sided-capable wire.
func (n *Network) Caps() transport.Caps {
	return transport.Caps{Name: "sim", OneSided: true, FaultInjection: true}
}

// NewDevice creates the device for world rank r, honoring the scramble and
// fault settings in cfg (this backend advertises FaultInjection).
func (n *Network) NewDevice(rank int, m hw.Machine, cfg transport.DeviceConfig) (transport.Device, error) {
	d := NewDevice(m)
	if cfg.ScrambleWindow > 0 {
		seed := cfg.ScrambleSeed
		if seed == 0 {
			seed = 1
		}
		d.SetScrambler(NewScrambler(seed, cfg.ScrambleWindow))
	}
	if cfg.Faults.Enabled() {
		d.SetFaultInjector(NewFaultInjector(cfg.Faults, cfg.Counters))
	}
	t := &tdev{d: d, net: n, rank: rank}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.devs[rank]; dup {
		return nil, fmt.Errorf("fabric: device for rank %d already exists", rank)
	}
	n.devs[rank] = t
	return t, nil
}

// device returns the registered device for a rank, or nil.
func (n *Network) device(rank int) *tdev {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.devs[rank]
}

// tdev adapts *Device to transport.Device. The concrete methods return
// concrete types (CreateContext, RegisterMemory, Region), so a thin wrapper
// re-exposes them with interface signatures and resolves peer devices
// through the owning Network for Connect.
type tdev struct {
	d    *Device
	net  *Network
	rank int
}

// Underlying returns the wrapped simulated device (backend-specific tests
// and the simnet harness reach fabric features through it).
func (t *tdev) Underlying() *Device { return t.d }

func (t *tdev) Machine() hw.Machine { return t.d.Machine() }

func (t *tdev) Caps() transport.Caps { return t.net.Caps() }

func (t *tdev) CreateContext(depth int) (transport.Context, error) {
	c, err := t.d.CreateContext(depth)
	if err != nil {
		// Return an untyped nil: a nil *Context boxed in the interface
		// would compare non-nil to callers.
		return nil, err
	}
	return c, nil
}

func (t *tdev) Connect(local transport.Context, peer int, remoteIdx int) (transport.Endpoint, error) {
	lc, ok := local.(*Context)
	if !ok || lc == nil {
		return nil, fmt.Errorf("fabric: Connect local context is not a fabric context")
	}
	pd := t.net.device(peer)
	if pd == nil {
		return nil, fmt.Errorf("fabric: rank %d has no device: %w", peer, transport.ErrNoEndpoint)
	}
	rc := pd.d.Context(remoteIdx)
	if rc == nil {
		return nil, fmt.Errorf("fabric: rank %d has no context %d: %w", peer, remoteIdx, transport.ErrNoEndpoint)
	}
	return NewEndpoint(lc, rc), nil
}

func (t *tdev) RegisterMemory(buf []byte) transport.MemRegion {
	return t.d.RegisterMemory(buf)
}

func (t *tdev) DeregisterMemory(r transport.MemRegion) {
	if rr, ok := r.(*MemRegion); ok {
		t.d.DeregisterMemory(rr)
	}
}

func (t *tdev) Region(id uint64) (transport.MemRegion, bool) {
	r, ok := t.d.Region(id)
	if !ok {
		return nil, false
	}
	return r, true
}

func (t *tdev) Close() { t.d.Close() }
