package figures

import (
	"fmt"
	"time"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
)

// Ablations isolate the model's load-bearing mechanisms — the design
// choices DESIGN.md calls out. Each sweeps one knob with everything else at
// defaults, reporting both the message rate and the out-of-sequence share
// so the mechanism's contribution to the paper's phenomena is visible.

// ablationPoint runs one multirate configuration and reports rate + OOS%.
func ablationPoint(cfg simnet.Config) (rate, oosPct float64) {
	res := simnet.RunMultirate(cfg)
	return res.Rate, res.SPCs.OutOfSequencePercent()
}

func ablationBase(sc Scale) simnet.Config {
	return simnet.Config{
		Machine: hw.AlembertHaswell(), Pairs: 20, Window: sc.Window, Iters: sc.Iters,
		NumInstances: 20, Assignment: cri.Dedicated, Progress: progress.Serial,
	}
}

// AblationJitter sweeps the send-path jitter span. Finding: at realistic
// (deep) eager-credit settings, OOS stays high even with near-zero jitter —
// the dominant reordering source is batched extraction from deep per-context
// queues, not injection-time variability; jitter only adds a few points at
// the top. (At shallow credits — see AblationCredits — the balance flips.)
func AblationJitter(sc Scale) Table {
	spans := []time.Duration{0, 150 * time.Nanosecond, 600 * time.Nanosecond, 2400 * time.Nanosecond}
	t := Table{
		Title:  "Ablation — send-path jitter vs out-of-sequence rate",
		XLabel: "by jitter span (ns)",
		Notes:  "20 pairs, 20 dedicated instances, serial progress",
	}
	var rates, oos []float64
	for _, span := range spans {
		t.XS = append(t.XS, int(span.Nanoseconds()))
		cfg := ablationBase(sc)
		if span == 0 {
			cfg.SendJitter = time.Nanosecond // ~zero (0 selects the default)
		} else {
			cfg.SendJitter = span
		}
		r, o := ablationPoint(cfg)
		rates = append(rates, r)
		oos = append(oos, o)
	}
	t.Rows = []Row{{Label: "msg/s", Values: rates}, {Label: "OOS %", Values: oos}}
	return t
}

// AblationCredits sweeps the eager flow-control depth. Shallow credits pace
// senders into near-order (low OOS, higher rate); deep credits let senders
// run far ahead, recreating the paper's 85%+ OOS and its buffering cost.
func AblationCredits(sc Scale) Table {
	depths := []int{64, 192, 1024, 4096, 16384}
	t := Table{
		Title:  "Ablation — eager credits vs OOS and rate",
		XLabel: "by credit depth",
		XS:     depths,
		Notes:  "20 pairs, 20 dedicated instances, serial progress",
	}
	var rates, oos []float64
	for _, d := range depths {
		cfg := ablationBase(sc)
		cfg.Credits = d
		cfg.QueueDepth = 32768 // keep hardware back-pressure out of the sweep
		r, o := ablationPoint(cfg)
		rates = append(rates, r)
		oos = append(oos, o)
	}
	t.Rows = []Row{{Label: "msg/s", Values: rates}, {Label: "OOS %", Values: oos}}
	return t
}

// AblationConvoy sweeps the futex-wake (convoy) penalty on the
// single-instance configuration. Without it the single shared instance
// stops collapsing and Figure 3a's base line flattens instead of degrading
// — the convoy model carries the paper's core single-instance result.
func AblationConvoy(sc Scale) Table {
	penalties := []time.Duration{time.Nanosecond, 500 * time.Nanosecond, 2 * time.Microsecond, 8 * time.Microsecond}
	t := Table{
		Title:  "Ablation — lock convoy (futex wake) penalty, single instance",
		XLabel: "by sleep penalty (ns)",
		Notes:  "20 pairs, 1 shared instance, serial progress",
	}
	var rates []float64
	for _, p := range penalties {
		t.XS = append(t.XS, int(p.Nanoseconds()))
		cfg := ablationBase(sc)
		cfg.NumInstances = 1
		cfg.SleepPenalty = p
		r, _ := ablationPoint(cfg)
		rates = append(rates, r)
	}
	t.Rows = []Row{{Label: "msg/s", Values: rates}}
	return t
}

// AblationInstances sweeps the CRI count at fixed thread count, the
// resource-scaling question of Section III-B: returns diminish once
// instances exceed threads.
func AblationInstances(sc Scale) Table {
	counts := []int{1, 2, 5, 10, 20, 40}
	t := Table{
		Title:  "Ablation — instance count at 20 thread pairs",
		XLabel: "by instances",
		XS:     counts,
		Notes:  "dedicated assignment, serial progress",
	}
	var rates []float64
	for _, n := range counts {
		cfg := ablationBase(sc)
		cfg.NumInstances = n
		r, _ := ablationPoint(cfg)
		rates = append(rates, r)
	}
	t.Rows = []Row{{Label: "msg/s", Values: rates}}
	return t
}

// AblationAllocSerialize sweeps the process-wide memory-management
// serialization — the modeled stand-in for the paper's "bottlenecks not yet
// identified" that cap Fig. 3c. Zeroing it lets comm-per-pair scale far
// beyond the paper's observed ceiling, supporting the attribution.
func AblationAllocSerialize(sc Scale) Table {
	costs := []time.Duration{0, 110 * time.Nanosecond, 220 * time.Nanosecond, 440 * time.Nanosecond}
	t := Table{
		Title:  "Ablation — process-shared allocator serialization (Fig. 3c ceiling)",
		XLabel: "by alloc serialize (ns)",
		Notes:  "20 pairs, comm-per-pair, concurrent progress, dedicated",
	}
	var rates []float64
	for _, c := range costs {
		t.XS = append(t.XS, int(c.Nanoseconds()))
		m := hw.AlembertHaswell()
		m.Costs.AllocSerialize = c
		cfg := simnet.Config{
			Machine: m, Pairs: 20, Window: sc.Window, Iters: sc.Iters,
			NumInstances: 20, Assignment: cri.Dedicated,
			Progress: progress.Concurrent, CommPerPair: true,
		}
		r, _ := ablationPoint(cfg)
		rates = append(rates, r)
	}
	t.Rows = []Row{{Label: "msg/s", Values: rates}}
	return t
}

// Ablations returns every ablation table.
func Ablations(sc Scale) []Table {
	return []Table{
		AblationJitter(sc),
		AblationCredits(sc),
		AblationConvoy(sc),
		AblationInstances(sc),
		AblationAllocSerialize(sc),
	}
}

// AblationByName resolves one ablation ("jitter", "credits", "convoy",
// "instances", "alloc").
func AblationByName(name string, sc Scale) (Table, error) {
	switch name {
	case "jitter":
		return AblationJitter(sc), nil
	case "credits":
		return AblationCredits(sc), nil
	case "convoy":
		return AblationConvoy(sc), nil
	case "instances":
		return AblationInstances(sc), nil
	case "alloc":
		return AblationAllocSerialize(sc), nil
	default:
		return Table{}, fmt.Errorf("unknown ablation %q", name)
	}
}
