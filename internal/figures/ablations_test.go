package figures

import "testing"

// ablScale reaches steady state (the ablation claims are about equilibrium
// behavior, not the startup transient).
func ablScale() Scale {
	return Scale{Window: 128, Iters: 8, RMAPuts: 50, RMARounds: 1}
}

func TestAblationCreditsIsTheOOSLever(t *testing.T) {
	tab := AblationCredits(ablScale())
	oos := tab.Rows[1].Values
	if oos[0] >= oos[len(oos)-1] {
		t.Fatalf("OOS did not grow with credit depth: %v", oos)
	}
}

func TestAblationConvoyDegradesSingleInstance(t *testing.T) {
	tab := AblationConvoy(ablScale())
	rates := tab.Rows[0].Values
	if rates[0] <= rates[len(rates)-1] {
		t.Fatalf("convoy penalty did not degrade the single instance: %v", rates)
	}
}

func TestAblationInstancesHelp(t *testing.T) {
	tab := AblationInstances(ablScale())
	rates := tab.Rows[0].Values
	if rates[0] >= rates[len(rates)-1] {
		t.Fatalf("more instances did not help: %v", rates)
	}
}

func TestAblationAllocCapsConcurrentMatching(t *testing.T) {
	tab := AblationAllocSerialize(ablScale())
	rates := tab.Rows[0].Values
	// Zero serialization must beat every non-zero setting by a wide margin.
	if rates[0] < 2*rates[len(rates)-1] {
		t.Fatalf("alloc serialization is not the Fig. 3c ceiling: %v", rates)
	}
	// And the cap must be monotone non-increasing in the cost.
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1]*1.05 {
			t.Fatalf("rate increased with higher alloc cost: %v", rates)
		}
	}
}

func TestAblationByName(t *testing.T) {
	for _, name := range []string{"jitter", "credits", "convoy", "instances", "alloc"} {
		if _, err := AblationByName(name, tinyScale()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := AblationByName("nope", tinyScale()); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestAblationsComplete(t *testing.T) {
	tabs := Ablations(tinyScale())
	if len(tabs) != 5 {
		t.Fatalf("Ablations returned %d tables", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 || len(tab.XS) == 0 {
			t.Fatalf("%s is empty", tab.Title)
		}
	}
}
