package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/designs"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/simnet"
)

// BreakdownFigure is the paper-style time-breakdown chart: for each rung of
// the design ladder at a fixed thread count, the share of total thread wall
// time spent in each runtime phase, rendered as horizontal stacked bars with
// the dominant bottleneck named per design. It is the profiler's headline
// output, computed on the deterministic virtual-time model so the bars are
// reproducible bit-for-bit.
type BreakdownFigure struct {
	Title   string
	Threads int
	Bars    []BreakdownBar
	Notes   string
}

// BreakdownBar is one design's stacked bar.
type BreakdownBar struct {
	Design string
	// Shares maps phase name to its fraction of summed wall time.
	Shares map[string]float64
	// Bottleneck names the dominant non-app phase (and hottest lock site
	// when lock wait dominates), as reported by internal/prof.
	Bottleneck string
}

// breakdownPhases is the stacking order: app (useful work) first, then the
// runtime phases from most to least interesting for the paper's story.
var breakdownPhases = []prof.Phase{
	prof.PhaseApp, prof.PhaseLockWait, prof.PhaseMatch,
	prof.PhaseProgressOwn, prof.PhaseProgressSteal,
	prof.PhaseSend, prof.PhaseWire, prof.PhaseRetransmit,
}

var phaseGlyphs = map[prof.Phase]byte{
	prof.PhaseApp:           '.',
	prof.PhaseLockWait:      'L',
	prof.PhaseMatch:         'M',
	prof.PhaseProgressOwn:   'P',
	prof.PhaseProgressSteal: 'S',
	prof.PhaseSend:          's',
	prof.PhaseWire:          'w',
	prof.PhaseRetransmit:    'r',
}

// TimeBreakdown runs the Multirate workload once per design at the given
// thread count and decomposes where the threads' virtual time went.
func TimeBreakdown(sc Scale, threads int) BreakdownFigure {
	fig := BreakdownFigure{
		Title:   fmt.Sprintf("Time breakdown across the design ladder, %d thread pairs", threads),
		Threads: threads,
		Notes: "share of summed thread wall time per phase (virtual time, Multirate pairwise);\n" +
			"legend: .=app L=lock_wait M=match P=progress_own S=progress_steal s=send w=wire r=retransmit",
	}
	base := simnet.Config{
		Machine: hw.AlembertHaswell(), Pairs: threads,
		Window: sc.Window, Iters: sc.Iters,
	}
	for _, d := range designs.All() {
		cfg := d.SimConfig(base, threads)
		res := simnet.RunMultirate(cfg)
		var wall int64
		var totals prof.PhaseTotals
		var sites []prof.SiteSnapshot
		for _, b := range res.Breakdown {
			wall += b.WallNs
			totals.Merge(b.Phases)
			sites = append(sites, b.Sites...)
		}
		rep := prof.ReportFromTotals(0, d.String(), threads, wall, totals, sites)
		bar := BreakdownBar{Design: d.String(), Shares: map[string]float64{}, Bottleneck: rep.Bottleneck}
		if wall > 0 {
			for _, ph := range breakdownPhases {
				if totals[ph] > 0 {
					bar.Shares[ph.String()] = float64(totals[ph]) / float64(wall)
				}
			}
		}
		fig.Bars = append(fig.Bars, bar)
	}
	return fig
}

// Render draws the stacked bars as text: one glyph per percent of wall
// time, bottleneck named on the right.
func (f BreakdownFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "%s\n", f.Notes)
	}
	width := 0
	for _, bar := range f.Bars {
		if len(bar.Design) > width {
			width = len(bar.Design)
		}
	}
	for _, bar := range f.Bars {
		fmt.Fprintf(&b, "%-*s |", width, bar.Design)
		drawn := 0
		for _, ph := range breakdownPhases {
			n := int(bar.Shares[ph.String()]*100 + 0.5)
			for i := 0; i < n && drawn < 100; i++ {
				b.WriteByte(phaseGlyphs[ph])
				drawn++
			}
		}
		for ; drawn < 100; drawn++ {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "| bottleneck: %s\n", bar.Bottleneck)
	}
	return b.String()
}

// CSV renders the shares as comma-separated values, one row per design.
func (f BreakdownFigure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	b.WriteString("design")
	for _, ph := range breakdownPhases {
		b.WriteString("," + ph.String())
	}
	b.WriteString(",bottleneck\n")
	for _, bar := range f.Bars {
		b.WriteString(csvQuote(bar.Design))
		for _, ph := range breakdownPhases {
			fmt.Fprintf(&b, ",%.4f", bar.Shares[ph.String()])
		}
		b.WriteString("," + csvQuote(bar.Bottleneck) + "\n")
	}
	return b.String()
}

// DominantPhases lists each design's dominant non-app phase, for tests and
// quick textual summaries.
func (f BreakdownFigure) DominantPhases() map[string]string {
	out := make(map[string]string, len(f.Bars))
	for _, bar := range f.Bars {
		best, bestShare := "", 0.0
		names := make([]string, 0, len(bar.Shares))
		for name := range bar.Shares {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if name == prof.PhaseApp.String() {
				continue
			}
			if s := bar.Shares[name]; s > bestShare {
				best, bestShare = name, s
			}
		}
		out[bar.Design] = best
	}
	return out
}
