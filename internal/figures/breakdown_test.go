package figures

import (
	"strings"
	"testing"
)

func TestTimeBreakdownSharesSumToOne(t *testing.T) {
	fig := TimeBreakdown(Quick(), 8)
	if len(fig.Bars) == 0 {
		t.Fatal("no bars")
	}
	for _, bar := range fig.Bars {
		var sum float64
		for _, s := range bar.Shares {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: shares sum to %.6f, want 1 (virtual-time decomposition is exact)", bar.Design, sum)
		}
		if bar.Bottleneck == "" {
			t.Errorf("%s: no bottleneck named", bar.Design)
		}
	}
}

// TestTimeBreakdownTellsThePaperStory: the figure's whole point — the stock
// threaded designs are dominated by lock wait, and the full CRI design's
// bottleneck has moved off the locks.
func TestTimeBreakdownTellsThePaperStory(t *testing.T) {
	fig := TimeBreakdown(Quick(), 8)
	dom := fig.DominantPhases()
	if dom["OMPI Thread"] != "lock_wait" {
		t.Errorf("OMPI Thread dominant phase %q, want lock_wait", dom["OMPI Thread"])
	}
	if dom["OMPI Thread + CRIs*"] == "lock_wait" {
		t.Error("full CRI design still dominated by lock_wait")
	}
	for _, bar := range fig.Bars {
		if bar.Design == "OMPI Thread" && !strings.Contains(bar.Bottleneck, "lock_wait") {
			t.Errorf("OMPI Thread bottleneck %q does not name lock_wait", bar.Bottleneck)
		}
	}
}

func TestTimeBreakdownRenders(t *testing.T) {
	fig := TimeBreakdown(Quick(), 4)
	text := fig.Render()
	if !strings.Contains(text, "bottleneck:") || !strings.Contains(text, "OMPI Thread") {
		t.Fatalf("render missing expected content:\n%s", text)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "design,app,lock_wait") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
}
