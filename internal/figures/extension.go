package figures

import (
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
)

// ExtensionOffload goes beyond the paper's evaluation: it compares the
// software-offload design (a dedicated progress thread, Vaidyanathan et
// al. [20], discussed in the paper's related work) against the paper's CRI
// designs on the same Multirate pairwise workload. Offloading removes the
// progress-engine contention entirely — application threads never extract —
// at the cost of one core and of serializing extraction through a single
// thread, so it tracks the serial-progress ceiling while avoiding the
// try-lock churn.
// ExtensionMatching quantifies what the paper leaves open in Section III-F:
// how much of the thread-mode gap is the matching *search* (removable with
// a better data structure — the hash engine here) versus the matching
// *serialization* (inherent in MPI's ordered-matching semantics). The hash
// engine removes the queue walk; the per-communicator lock remains.
func ExtensionMatching(sc Scale) Table {
	m := hw.AlembertHaswell()
	t := Table{
		Title:  "Extension — list vs hash matching engine",
		XLabel: "msg/s by thread pairs",
		XS:     sc.PairPoints,
		Notes:  "Multirate pairwise, 0-byte messages, 20 dedicated instances",
	}
	type variant struct {
		label string
		prog  progress.Mode
		hash  bool
		cpp   bool
	}
	variants := []variant{
		{"list matching, serial progress", progress.Serial, false, false},
		{"hash matching, serial progress", progress.Serial, true, false},
		{"list matching, concurrent progress", progress.Concurrent, false, false},
		{"hash matching, concurrent progress", progress.Concurrent, true, false},
		{"hash matching + comm-per-pair", progress.Concurrent, true, true},
	}
	for _, v := range variants {
		row := Row{Label: v.label}
		for _, pairs := range sc.PairPoints {
			cfg := simnet.Config{
				Machine: m, Pairs: pairs, Window: sc.Window, Iters: sc.Iters,
				NumInstances: 20, Assignment: cri.Dedicated, Progress: v.prog,
				HashMatching: v.hash, CommPerPair: v.cpp,
			}
			row.Values = append(row.Values, simnet.RunMultirate(cfg).Rate)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func ExtensionOffload(sc Scale) Table {
	m := hw.AlembertHaswell()
	t := Table{
		Title:  "Extension — software offload (dedicated progress thread) vs CRI designs",
		XLabel: "msg/s by thread pairs",
		XS:     sc.PairPoints,
		Notes:  "Multirate pairwise, 0-byte messages; offload rows dedicate one core to progress",
	}
	type variant struct {
		label   string
		inst    int
		mode    cri.Assignment
		prog    progress.Mode
		offload bool
	}
	variants := []variant{
		{"stock (1 inst, serial)", 1, cri.RoundRobin, progress.Serial, false},
		{"CRIs dedicated, serial", 20, cri.Dedicated, progress.Serial, false},
		{"offload, 1 instance", 1, cri.RoundRobin, progress.Serial, true},
		{"offload + CRIs dedicated", 20, cri.Dedicated, progress.Serial, true},
		{"offload + CRIs, concurrent engine", 20, cri.Dedicated, progress.Concurrent, true},
	}
	for _, v := range variants {
		row := Row{Label: v.label}
		for _, pairs := range sc.PairPoints {
			cfg := simnet.Config{
				Machine: m, Pairs: pairs, Window: sc.Window, Iters: sc.Iters,
				NumInstances: v.inst, Assignment: v.mode, Progress: v.prog,
				ProgressThread: v.offload,
			}
			row.Values = append(row.Values, simnet.RunMultirate(cfg).Rate)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
