package figures

import "testing"

func TestExtensionOffloadShape(t *testing.T) {
	tab := ExtensionOffload(tinyScale())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 variants", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.XS) {
			t.Fatalf("row %q has %d values", r.Label, len(r.Values))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Fatalf("row %q point %d = %v", r.Label, i, v)
			}
		}
	}
}

func TestExtensionMatchingShape(t *testing.T) {
	sc := Scale{Window: 128, Iters: 6, PairPoints: []int{20}}
	tab := ExtensionMatching(sc)
	rates := map[string]float64{}
	for _, r := range tab.Rows {
		rates[r.Label] = r.Values[0]
	}
	// Hash matching must beat list matching under serial progress (the
	// search is removed)...
	if rates["hash matching, serial progress"] <= rates["list matching, serial progress"] {
		t.Fatalf("hash (%.0f) did not beat list (%.0f) under serial progress",
			rates["hash matching, serial progress"], rates["list matching, serial progress"])
	}
	// ...but concurrent progress must still fall below hash+serial — the
	// matching lock's serialization is inherent (the paper's conclusion).
	if rates["hash matching, concurrent progress"] >= rates["hash matching, serial progress"] {
		t.Fatalf("concurrent progress (%.0f) beat serial (%.0f) despite hash matching: serialization should still bind",
			rates["hash matching, concurrent progress"], rates["hash matching, serial progress"])
	}
	// Parallel matching (comm-per-pair) escapes both.
	if rates["hash matching + comm-per-pair"] < 2*rates["hash matching, serial progress"] {
		t.Fatalf("comm-per-pair (%.0f) did not escape the matching wall",
			rates["hash matching + comm-per-pair"])
	}
}

func TestOffloadTracksSerialCeiling(t *testing.T) {
	// Offloading extraction to one dedicated thread must stay in the same
	// regime as serial progress (single extractor), not unlock matching.
	sc := Scale{Window: 128, Iters: 6, PairPoints: []int{20}}
	tab := ExtensionOffload(sc)
	var stock, offload []float64
	for _, r := range tab.Rows {
		switch r.Label {
		case "stock (1 inst, serial)":
			stock = r.Values
		case "offload, 1 instance":
			offload = r.Values
		}
	}
	last := len(stock) - 1
	ratio := offload[last] / stock[last]
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("offload diverged from the serial regime: %.0f vs %.0f", offload[last], stock[last])
	}
}
