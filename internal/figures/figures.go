// Package figures regenerates every table and figure of the paper's
// evaluation section from the deterministic virtual-time model
// (internal/simnet). Each Fig* function returns a Table whose rows are the
// same series the paper plots; cmd/figures renders them as text.
package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cri"
	"repro/internal/designs"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/simnet"
	"repro/internal/spc"
)

// Table is one regenerated figure or table: a labeled grid of values.
type Table struct {
	// Title identifies the experiment ("Figure 3a", ...).
	Title string
	// XLabel and XS describe the columns (e.g. thread pairs).
	XLabel string
	XS     []int
	// Rows are the series, in legend order.
	Rows []Row
	// Notes carries rendering context (units, workload).
	Notes string
}

// Row is one series.
type Row struct {
	Label  string
	Values []float64
}

// Render prints the table as aligned text columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "%s\n", t.Notes)
	}
	fmt.Fprintf(&b, "%-34s", t.XLabel)
	for _, x := range t.XS {
		fmt.Fprintf(&b, " %10d", x)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-34s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %10.0f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row,
// suitable for plotting tools.
func (t Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString("series")
	for _, x := range t.XS {
		fmt.Fprintf(&b, ",%d", x)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvQuote(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Scale selects the sweep density / message volume.
type Scale struct {
	// Window is the outstanding-message window (paper: 128).
	Window int
	// Iters is iterations per pair per point.
	Iters int
	// PairPoints are the thread-pair counts swept in Figs. 3-5.
	PairPoints []int
	// RMAPuts is puts per thread per flush round in Figs. 6-7.
	RMAPuts int
	// RMARounds is flush rounds per point.
	RMARounds int
}

// Quick is a fast sweep preserving every shape (seconds per figure).
func Quick() Scale {
	return Scale{
		Window:     128,
		Iters:      4,
		PairPoints: []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		RMAPuts:    250,
		RMARounds:  2,
	}
}

// Paper matches the paper's message volumes (minutes per figure).
func Paper() Scale {
	return Scale{
		Window:     128,
		Iters:      40,
		PairPoints: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20},
		RMAPuts:    1000,
		RMARounds:  4,
	}
}

// fig3Line is one series of Figures 3 and 4: an instance count and an
// assignment mode.
type fig3Line struct {
	label     string
	instances int
	mode      cri.Assignment
}

func fig3Lines() []fig3Line {
	return []fig3Line{
		{"1 instance", 1, cri.RoundRobin},
		{"10 instances round-robin", 10, cri.RoundRobin},
		{"10 instances dedicated", 10, cri.Dedicated},
		{"20 instances round-robin", 20, cri.RoundRobin},
		{"20 instances dedicated", 20, cri.Dedicated},
	}
}

func fig34(title string, sc Scale, prog progress.Mode, commPerPair, overtaking, anyTag bool) Table {
	m := hw.AlembertHaswell()
	t := Table{
		Title:  title,
		XLabel: "msg/s by thread pairs",
		XS:     sc.PairPoints,
		Notes: fmt.Sprintf("Multirate pairwise, 0-byte messages, window %d, %s progress, commPerPair=%v, overtaking=%v, anyTag=%v, %s",
			sc.Window, prog, commPerPair, overtaking, anyTag, m.Name),
	}
	for _, ln := range fig3Lines() {
		row := Row{Label: ln.label}
		for _, pairs := range sc.PairPoints {
			cfg := simnet.Config{
				Machine: m, Pairs: pairs, Window: sc.Window, Iters: sc.Iters,
				NumInstances: ln.instances, Assignment: ln.mode, Progress: prog,
				CommPerPair: commPerPair, AllowOvertaking: overtaking, AnyTagRecv: anyTag,
			}
			row.Values = append(row.Values, simnet.RunMultirate(cfg).Rate)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig3a: zero-byte message rate, concurrent sends under serial progress.
func Fig3a(sc Scale) Table {
	return fig34("Figure 3a — serial progress", sc, progress.Serial, false, false, false)
}

// Fig3b: concurrent progress moves the bottleneck to matching.
func Fig3b(sc Scale) Table {
	return fig34("Figure 3b — concurrent progress", sc, progress.Concurrent, false, false, false)
}

// Fig3c: concurrent progress + concurrent matching (communicator per pair).
func Fig3c(sc Scale) Table {
	return fig34("Figure 3c — concurrent progress + concurrent matching", sc, progress.Concurrent, true, false, false)
}

// Fig4a-c repeat Fig3 with message overtaking + wildcard-tag receives.
func Fig4a(sc Scale) Table {
	return fig34("Figure 4a — serial progress, no ordering", sc, progress.Serial, false, true, true)
}

// Fig4b is Fig3b without ordering enforcement.
func Fig4b(sc Scale) Table {
	return fig34("Figure 4b — concurrent progress, no ordering", sc, progress.Concurrent, false, true, true)
}

// Fig4c is Fig3c without ordering enforcement.
func Fig4c(sc Scale) Table {
	return fig34("Figure 4c — concurrent progress + matching, no ordering", sc, progress.Concurrent, true, true, true)
}

// Fig5 compares the state-of-the-art designs (log-scale in the paper).
func Fig5(sc Scale) Table {
	m := hw.AlembertHaswell()
	t := Table{
		Title:  "Figure 5 — state of MPI threading (pairwise 0 bytes, window 128, Alembert)",
		XLabel: "msg/s by communication pairs",
		XS:     sc.PairPoints,
		Notes:  "Process rows map pairs to process pairs; thread rows to threads of one process pair.",
	}
	base := simnet.Config{Machine: m, Window: sc.Window, Iters: sc.Iters}
	for _, d := range designs.All() {
		row := Row{Label: d.String()}
		for _, pairs := range sc.PairPoints {
			cfg := d.SimConfig(base, 20)
			cfg.Pairs = pairs
			row.Values = append(row.Values, simnet.RunMultirate(cfg).Rate)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableII reproduces the SPC table: out-of-sequence counts and match time
// at 20 thread pairs with dedicated assignment, for serial progress,
// concurrent progress, and concurrent progress + matching, each at 1/10/20
// instances. Row values are per configuration column, matching the paper's
// layout transposed into rows per metric.
type TableIIResult struct {
	// Configs labels the nine columns.
	Configs []string
	// TotalMessages is the per-config message count.
	TotalMessages int64
	// OutOfSequence, OutOfSequencePct, MatchTimeMs are the paper's rows.
	OutOfSequence    []int64
	OutOfSequencePct []float64
	MatchTimeMs      []float64
}

// TableII runs the nine Table II configurations. full=true uses the
// paper's exact message count (2,585,600 = 20 pairs x 128 window x 1010
// iterations); otherwise sc.Iters is used.
func TableII(sc Scale, full bool) TableIIResult {
	m := hw.AlembertHaswell()
	iters := sc.Iters
	if full {
		iters = 1010
	}
	type group struct {
		name string
		prog progress.Mode
		cpp  bool
	}
	groups := []group{
		{"serial", progress.Serial, false},
		{"concurrent", progress.Concurrent, false},
		{"concurrent+match", progress.Concurrent, true},
	}
	var res TableIIResult
	for _, g := range groups {
		for _, inst := range []int{1, 10, 20} {
			cfg := simnet.Config{
				Machine: m, Pairs: 20, Window: sc.Window, Iters: iters,
				NumInstances: inst, Assignment: cri.Dedicated,
				Progress: g.prog, CommPerPair: g.cpp,
			}
			r := simnet.RunMultirate(cfg)
			res.Configs = append(res.Configs, fmt.Sprintf("%s/%d", g.name, inst))
			res.TotalMessages = r.Messages
			res.OutOfSequence = append(res.OutOfSequence, r.SPCs.Get(spc.OutOfSequence))
			res.OutOfSequencePct = append(res.OutOfSequencePct, r.SPCs.OutOfSequencePercent())
			res.MatchTimeMs = append(res.MatchTimeMs, float64(r.SPCs.MatchTime())/float64(time.Millisecond))
		}
	}
	return res
}

// Render prints Table II in the paper's layout.
func (r TableIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table II — SPCs at 20 thread pairs, dedicated assignment, total messages = %d ==\n", r.TotalMessages)
	fmt.Fprintf(&b, "%-24s", "config")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "out-of-sequence msgs")
	for _, v := range r.OutOfSequence {
		fmt.Fprintf(&b, " %14d", v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "out-of-sequence (%)")
	for _, v := range r.OutOfSequencePct {
		fmt.Fprintf(&b, " %13.2f%%", v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "match time (ms)")
	for _, v := range r.MatchTimeMs {
		fmt.Fprintf(&b, " %14.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// rmaSizes are the message sizes of Figures 6 and 7.
var rmaSizes = []int{1, 128, 1024, 4096, 16384}

// figRMA sweeps the RMA-MT workload for one machine.
func figRMA(title string, m hw.Machine, threadPoints []int, sc Scale) []Table {
	type variant struct {
		label     string
		instances int
		mode      cri.Assignment
		prog      progress.Mode
	}
	variants := []variant{
		{"single / serial", 1, cri.RoundRobin, progress.Serial},
		{"single / concurrent", 1, cri.RoundRobin, progress.Concurrent},
		{"dedicated / serial", 0, cri.Dedicated, progress.Serial},
		{"dedicated / concurrent", 0, cri.Dedicated, progress.Concurrent},
		{"round-robin / serial", 0, cri.RoundRobin, progress.Serial},
		{"round-robin / concurrent", 0, cri.RoundRobin, progress.Concurrent},
	}
	var tables []Table
	for _, size := range rmaSizes {
		t := Table{
			Title:  fmt.Sprintf("%s — %d bytes", title, size),
			XLabel: "puts/s by threads",
			XS:     threadPoints,
			Notes: fmt.Sprintf("RMA-MT MPI_Put + MPI_Win_flush, %s, theoretical peak %.0f msg/s",
				m.Name, m.PeakMessageRate(size)),
		}
		for _, v := range variants {
			row := Row{Label: v.label}
			for _, threads := range threadPoints {
				cfg := simnet.RMAMTConfig{
					Machine: m, Threads: threads, MsgSize: size,
					PutsPerThread: sc.RMAPuts, Rounds: sc.RMARounds,
					NumInstances: v.instances, Assignment: v.mode, Progress: v.prog,
				}
				row.Values = append(row.Values, simnet.RunRMAMT(cfg).Rate)
			}
			t.Rows = append(t.Rows, row)
		}
		peak := Row{Label: "theoretical peak"}
		for range threadPoints {
			peak.Values = append(peak.Values, m.PeakMessageRate(size))
		}
		t.Rows = append(t.Rows, peak)
		tables = append(tables, t)
	}
	return tables
}

// Fig6: RMA-MT on Trinitite Haswell, 1-32 threads.
func Fig6(sc Scale) []Table {
	return figRMA("Figure 6 — RMA-MT Haswell", hw.TrinititeHaswell(), []int{1, 2, 4, 8, 16, 32}, sc)
}

// Fig7: RMA-MT on Trinitite KNL, 1-64 threads.
func Fig7(sc Scale) []Table {
	return figRMA("Figure 7 — RMA-MT KNL", hw.TrinititeKNL(), []int{1, 2, 4, 8, 16, 32, 64}, sc)
}
