package figures

import (
	"strings"
	"testing"
)

// tinyScale keeps figure tests fast.
func tinyScale() Scale {
	return Scale{
		Window:     32,
		Iters:      2,
		PairPoints: []int{1, 4, 8},
		RMAPuts:    50,
		RMARounds:  1,
	}
}

func TestFig3aShape(t *testing.T) {
	tab := Fig3a(tinyScale())
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig3a rows = %d, want 5 series", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 3 {
			t.Fatalf("row %q has %d values, want 3", r.Label, len(r.Values))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Fatalf("row %q point %d non-positive: %v", r.Label, i, v)
			}
		}
	}
}

func TestFig5IncludesAllDesigns(t *testing.T) {
	tab := Fig5(tinyScale())
	if len(tab.Rows) != 9 {
		t.Fatalf("Fig5 rows = %d, want 9 designs", len(tab.Rows))
	}
	labels := map[string]bool{}
	for _, r := range tab.Rows {
		labels[r.Label] = true
	}
	for _, want := range []string{"OMPI Process", "OMPI Thread", "OMPI Thread + CRIs*", "MPICH Thread"} {
		if !labels[want] {
			t.Fatalf("Fig5 missing series %q (have %v)", want, labels)
		}
	}
}

func TestFig6PerSizeTablesWithPeak(t *testing.T) {
	tabs := Fig6(tinyScale())
	if len(tabs) != 5 {
		t.Fatalf("Fig6 tables = %d, want 5 sizes", len(tabs))
	}
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1]
		if last.Label != "theoretical peak" {
			t.Fatalf("last row = %q, want theoretical peak", last.Label)
		}
		for _, r := range tab.Rows[:len(tab.Rows)-1] {
			for i, v := range r.Values {
				if v > last.Values[i]*1.05 {
					t.Fatalf("%s: %q exceeds peak at point %d (%v > %v)",
						tab.Title, r.Label, i, v, last.Values[i])
				}
			}
		}
	}
}

func TestFig7UsesKNLThreadRange(t *testing.T) {
	tabs := Fig7(tinyScale())
	xs := tabs[0].XS
	if xs[len(xs)-1] != 64 {
		t.Fatalf("Fig7 max threads = %d, want 64", xs[len(xs)-1])
	}
}

func TestTableIIStructure(t *testing.T) {
	res := TableII(tinyScale(), false)
	if len(res.Configs) != 9 {
		t.Fatalf("TableII configs = %d, want 9", len(res.Configs))
	}
	// The paper's qualitative claims:
	// (1) concurrent progress match time exceeds serial at same instances;
	serialMT, concMT := res.MatchTimeMs[2], res.MatchTimeMs[5] // 20-inst columns
	if concMT <= serialMT {
		t.Errorf("concurrent match time (%.1f ms) not above serial (%.1f ms)", concMT, serialMT)
	}
	// (2) concurrent matching (comm per pair) collapses OOS at 20 inst.
	if res.OutOfSequence[8] != 0 {
		t.Errorf("concurrent+match/20 OOS = %d, want 0", res.OutOfSequence[8])
	}
	// (3) shared-comm configs have substantial OOS.
	if res.OutOfSequencePct[0] < 10 {
		t.Errorf("serial/1 OOS%% = %.1f, want substantial", res.OutOfSequencePct[0])
	}
	out := res.Render()
	for _, want := range []string{"out-of-sequence msgs", "match time (ms)", "serial/1", "concurrent+match/20"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title: "T", XLabel: "x", XS: []int{1, 2},
		Rows:  []Row{{Label: "r", Values: []float64{10, 20}}},
		Notes: "n",
	}
	out := tab.Render()
	for _, want := range []string{"== T ==", "n", "r", "10", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in %q", want, out)
		}
	}
}

func TestScalesDiffer(t *testing.T) {
	q, p := Quick(), Paper()
	if p.Iters <= q.Iters {
		t.Fatal("paper scale not larger than quick")
	}
	if len(p.PairPoints) < len(q.PairPoints) {
		t.Fatal("paper scale has fewer sweep points")
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Title: "T", XLabel: "x", XS: []int{1, 2},
		Rows: []Row{
			{Label: "plain", Values: []float64{10, 20}},
			{Label: `with,comma "q"`, Values: []float64{1.5, 2}},
		},
	}
	out := tab.CSV()
	want := "# T\nseries,1,2\nplain,10,20\n\"with,comma \"\"q\"\"\",1.5,2\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
