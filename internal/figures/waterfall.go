package figures

import (
	"fmt"
	"strings"

	"repro/internal/designs"
	"repro/internal/hw"
	"repro/internal/latency"
	"repro/internal/simnet"
)

// WaterfallFigure is the critical-path latency waterfall: for each
// thread-mode rung of the design ladder at a fixed thread count, the share
// of a message's mean end-to-end path spent in each attribution stage,
// rendered as horizontal stacked bars with the e2e p50/p99 and the
// tail-dominant stage named per design. Computed on the deterministic
// virtual-time model, so the bars reproduce bit-for-bit. Process-mode
// designs are skipped: attribution is mirrored in thread mode only.
type WaterfallFigure struct {
	Title   string
	Threads int
	Bars    []WaterfallBar
	Notes   string
}

// WaterfallBar is one design's stacked stage bar.
type WaterfallBar struct {
	Design string
	// Shares maps stage name to its fraction of the summed per-stage mean
	// durations (sender stages from the sender's dump, receive-path stages
	// from the receiver's).
	Shares map[string]float64
	// E2EP50Ns / E2EP99Ns are the receiver's end-to-end quantiles.
	E2EP50Ns int64
	E2EP99Ns int64
	// TailStage names the stage with the largest p99 — where this design's
	// tail lives.
	TailStage string
}

var stageGlyphs = map[latency.Stage]byte{
	latency.StageCRIAcquire:      'C',
	latency.StageWireWrite:       'w',
	latency.StageTransit:         't',
	latency.StageDeliverWait:     'D',
	latency.StageMatchPosted:     'm',
	latency.StageMatchUnexpected: 'U',
	latency.StageComplete:        'c',
}

// Waterfall runs the Multirate workload once per thread-mode design with
// critical-path attribution on and decomposes where a message's latency
// went.
func Waterfall(sc Scale, threads int) WaterfallFigure {
	fig := WaterfallFigure{
		Title:   fmt.Sprintf("Critical-path latency waterfall across the design ladder, %d thread pairs", threads),
		Threads: threads,
		Notes: "share of summed per-stage mean latency (virtual time, Multirate pairwise); tail = largest stage p99;\n" +
			"legend: C=cri_acquire w=wire_write t=transit D=deliver_wait m=match_posted U=match_unexpected c=complete",
	}
	base := simnet.Config{
		Machine: hw.AlembertHaswell(), Pairs: threads,
		Window: sc.Window, Iters: sc.Iters,
	}
	for _, d := range designs.All() {
		if d.IsProcessMode() {
			continue
		}
		cfg := d.SimConfig(base, threads)
		cfg.Latency = true
		res := simnet.RunMultirate(cfg)
		fig.Bars = append(fig.Bars, waterfallBar(d.String(), res.Latency))
	}
	return fig
}

// waterfallBar folds a run's rank dumps (sender first, receiver second)
// into one stacked bar: per-stage mean durations summed across ranks — the
// recording ownership rule guarantees each stage appears on exactly one
// side — normalized into shares.
func waterfallBar(design string, dumps []latency.RankDump) WaterfallBar {
	bar := WaterfallBar{Design: design, Shares: map[string]float64{}}
	means := map[string]float64{}
	var total float64
	var tailP99 int64
	for _, d := range dumps {
		for _, s := range d.Stages {
			if s.Stage == "e2e" {
				bar.E2EP50Ns = s.P50Ns
				bar.E2EP99Ns = s.P99Ns
				continue
			}
			if s.Count == 0 {
				continue
			}
			mean := float64(s.SumNs) / float64(s.Count)
			means[s.Stage] += mean
			total += mean
			if s.P99Ns > tailP99 || (s.P99Ns == tailP99 && bar.TailStage != "" && s.Stage < bar.TailStage) {
				bar.TailStage, tailP99 = s.Stage, s.P99Ns
			}
		}
	}
	if total > 0 {
		for name, m := range means {
			bar.Shares[name] = m / total
		}
	}
	return bar
}

// Render draws the stacked bars as text: one glyph per percent of the
// summed stage means, quantiles and tail stage named on the right.
func (f WaterfallFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "%s\n", f.Notes)
	}
	width := 0
	for _, bar := range f.Bars {
		if len(bar.Design) > width {
			width = len(bar.Design)
		}
	}
	for _, bar := range f.Bars {
		fmt.Fprintf(&b, "%-*s |", width, bar.Design)
		drawn := 0
		for s := latency.Stage(0); s < latency.NumStages; s++ {
			n := int(bar.Shares[s.String()]*100 + 0.5)
			for i := 0; i < n && drawn < 100; i++ {
				b.WriteByte(stageGlyphs[s])
				drawn++
			}
		}
		for ; drawn < 100; drawn++ {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "| e2e p50=%dns p99=%dns tail: %s\n", bar.E2EP50Ns, bar.E2EP99Ns, bar.TailStage)
	}
	return b.String()
}

// CSV renders the shares and quantiles as comma-separated values, one row
// per design.
func (f WaterfallFigure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	b.WriteString("design")
	for s := latency.Stage(0); s < latency.NumStages; s++ {
		b.WriteString("," + s.String())
	}
	b.WriteString(",e2e_p50_ns,e2e_p99_ns,tail_stage\n")
	for _, bar := range f.Bars {
		b.WriteString(csvQuote(bar.Design))
		for s := latency.Stage(0); s < latency.NumStages; s++ {
			fmt.Fprintf(&b, ",%.4f", bar.Shares[s.String()])
		}
		fmt.Fprintf(&b, ",%d,%d,%s\n", bar.E2EP50Ns, bar.E2EP99Ns, csvQuote(bar.TailStage))
	}
	return b.String()
}
