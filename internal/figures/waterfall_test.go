package figures

import (
	"reflect"
	"strings"
	"testing"
)

func TestWaterfallSharesSumToOne(t *testing.T) {
	fig := Waterfall(Quick(), 4)
	if len(fig.Bars) == 0 {
		t.Fatal("no bars")
	}
	for _, bar := range fig.Bars {
		var sum float64
		for _, s := range bar.Shares {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: shares sum to %.6f, want 1", bar.Design, sum)
		}
		if bar.E2EP99Ns <= 0 || bar.E2EP50Ns <= 0 {
			t.Errorf("%s: missing e2e quantiles: %+v", bar.Design, bar)
		}
		if bar.E2EP99Ns < bar.E2EP50Ns {
			t.Errorf("%s: p99 %d below p50 %d", bar.Design, bar.E2EP99Ns, bar.E2EP50Ns)
		}
		if bar.TailStage == "" {
			t.Errorf("%s: no tail stage named", bar.Design)
		}
	}
}

// TestWaterfallSkipsProcessModeDesigns: attribution is mirrored in thread
// mode only, so the process rungs must be absent rather than rendered as
// empty bars.
func TestWaterfallSkipsProcessModeDesigns(t *testing.T) {
	fig := Waterfall(Quick(), 4)
	for _, bar := range fig.Bars {
		if strings.Contains(bar.Design, "Process") {
			t.Errorf("process-mode design %q in the waterfall", bar.Design)
		}
	}
}

func TestWaterfallDeterministic(t *testing.T) {
	a := Waterfall(Quick(), 4)
	b := Waterfall(Quick(), 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("waterfall differs across identical runs")
	}
}

func TestWaterfallRenders(t *testing.T) {
	fig := Waterfall(Quick(), 4)
	text := fig.Render()
	if !strings.Contains(text, "tail:") || !strings.Contains(text, "OMPI Thread") {
		t.Fatalf("render missing expected content:\n%s", text)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "design,cri_acquire,wire_write,transit,deliver_wait") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
}
