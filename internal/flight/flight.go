// Package flight is the runtime's black-box flight recorder: fixed-size
// per-thread ring buffers of compact binary events (send/recv posted, match
// hit/miss, unexpected enqueue/dequeue, retransmit, ack, progress pass,
// lock-wait over threshold) that retain the last moments of message-path
// history for post-mortem triage — the record a stall watchdog or crash
// handler dumps when aggregate counters can only say "rate dropped".
//
// Recording is lock-free and race-detector clean: each ring slot is four
// atomic words claimed with one atomic add and validated by readers with a
// per-slot seqlock (the sequence word is published last; a snapshot re-reads
// it and discards torn slots). An enabled hook costs one atomic add plus
// four atomic stores — tens of nanoseconds; a disabled hook is one nil
// check, the same discipline as the spc/telemetry/trace layers.
//
// The recorder's clock is pluggable: wall time by default, virtual time
// under the simulator (internal/simnet), which is what makes watchdog
// acceptance tests deterministic.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one flight event.
type Kind uint8

// Event kinds recorded by the runtime's nil-safe hooks.
const (
	// KindSendPost: a send entered the runtime. A0 = destination rank,
	// A1 = matching-layer sequence number.
	KindSendPost Kind = iota + 1
	// KindRecvPost: a receive was posted and queued (no unexpected message
	// matched). A0 = source (or -1 wildcard), A1 = posted depth after.
	KindRecvPost
	// KindMatchHit: an inbound message matched a posted receive.
	// A0 = source, A1 = posted depth after removal.
	KindMatchHit
	// KindMatchMiss: an inbound message matched no posted receive and is
	// about to join the unexpected queue. A0 = source, A1 = tag.
	KindMatchMiss
	// KindUnexpEnq: a message joined the unexpected queue. A0 = source,
	// A1 = unexpected depth after.
	KindUnexpEnq
	// KindUnexpDeq: a queued unexpected message was claimed (by a posted
	// receive or a matched probe). A0 = source, A1 = unexpected depth after.
	KindUnexpDeq
	// KindRetransmit: the reliability sweep re-injected an unacked packet.
	// A0 = destination rank, A1 = retry count.
	KindRetransmit
	// KindAckSent: an acknowledgement was injected. A0 = destination rank,
	// A1 = acked sequence (truncated).
	KindAckSent
	// KindAckRecv: an acknowledgement arrived and retired window entries.
	// A0 = acking rank, A1 = entries retired.
	KindAckRecv
	// KindProgress: one productive progress pass. A0 = events handled.
	KindProgress
	// KindLockWait: a contended lock acquisition waited at least the bound
	// threshold. A0 = instance index, A1 = wait in microseconds.
	KindLockWait
)

var kindNames = [...]string{
	KindSendPost:   "send_post",
	KindRecvPost:   "recv_post",
	KindMatchHit:   "match_hit",
	KindMatchMiss:  "match_miss",
	KindUnexpEnq:   "unexp_enq",
	KindUnexpDeq:   "unexp_deq",
	KindRetransmit: "retransmit",
	KindAckSent:    "ack_sent",
	KindAckRecv:    "ack_recv",
	KindProgress:   "progress",
	KindLockWait:   "lock_wait",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name, so dumps read without a decoder
// ring.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// DefaultLockWaitThreshold is the minimum contended lock wait recorded as a
// KindLockWait event when the binding layer does not choose its own bound.
const DefaultLockWaitThreshold = 10 * time.Microsecond

// Event is one decoded flight record. TS is nanoseconds on the recorder's
// clock (relative wall time, or virtual time under the simulator); Seq is
// the recorder-wide claim order, which is the merge key.
type Event struct {
	TS   int64  `json:"ts_ns"`
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`
	Ring int32  `json:"ring"`
	Comm uint32 `json:"comm,omitempty"`
	A0   int32  `json:"a0"`
	A1   int32  `json:"a1"`
}

func (e Event) String() string {
	return fmt.Sprintf("%10dns #%06d %-11s comm=%-3d a0=%-6d a1=%d", e.TS, e.Seq, e.Kind, e.Comm, e.A0, e.A1)
}

// wordsPerSlot is the packed size of one event: sequence (the seqlock
// word, published last), timestamp, kind|comm|a0, a1.
const wordsPerSlot = 4

// Ring is one fixed-size event ring. Writers are lock-free (one atomic add
// claims a slot, four atomic stores fill it); a nil *Ring ignores every
// record at the cost of one branch, so hooks need no enabled checks.
//
// Rings are single-writer in the runtime's usual binding (one per thread,
// one per communicator under its matching lock), but concurrent writers are
// safe: the per-slot sequence word lets snapshot readers discard torn
// slots. The one theoretical loss — two writers lapping onto the same slot
// in the same instant — can garble that single diagnostic record, never
// memory safety.
type Ring struct {
	rec   *Recorder
	id    int32
	mask  uint64
	pos   atomic.Uint64
	words []atomic.Uint64
}

// Record appends one event stamped with the recorder's clock. Nil-safe.
func (r *Ring) Record(k Kind, comm uint32, a0, a1 int32) {
	if r == nil {
		return
	}
	r.RecordAt(r.rec.now(), k, comm, a0, a1)
}

// RecordAt appends one event with an explicit timestamp (the simulator
// stamps virtual time directly). Nil-safe.
func (r *Ring) RecordAt(ts int64, k Kind, comm uint32, a0, a1 int32) {
	if r == nil {
		return
	}
	seq := r.rec.seq.Add(1)
	base := ((r.pos.Add(1) - 1) & r.mask) * wordsPerSlot
	r.words[base+1].Store(uint64(ts))
	r.words[base+2].Store(uint64(k)<<56 | uint64(comm&0xffffff)<<32 | uint64(uint32(a0)))
	r.words[base+3].Store(uint64(uint32(a1)))
	// Publish last: a reader that sees this sequence also sees the fields,
	// and re-reads it after the fields to discard torn slots.
	r.words[base].Store(seq)
}

// Events appends the ring's valid retained events to out (unordered; the
// recorder's merge sorts by Seq). Safe concurrently with writers.
func (r *Ring) Events(out []Event) []Event {
	if r == nil {
		return out
	}
	for i := uint64(0); i <= r.mask; i++ {
		base := i * wordsPerSlot
		s := r.words[base].Load()
		if s == 0 {
			continue
		}
		ts := r.words[base+1].Load()
		w2 := r.words[base+2].Load()
		w3 := r.words[base+3].Load()
		if r.words[base].Load() != s {
			continue // torn: a writer lapped this slot mid-read
		}
		out = append(out, Event{
			TS:   int64(ts),
			Seq:  s,
			Kind: Kind(w2 >> 56),
			Ring: r.id,
			Comm: uint32(w2>>32) & 0xffffff,
			A0:   int32(uint32(w2)),
			A1:   int32(uint32(w3)),
		})
	}
	return out
}

// Recorder owns a process's flight rings and the shared claim counter that
// totally orders their events. All methods are nil-safe.
type Recorder struct {
	perRing   int
	startUnix int64
	now       func() int64
	seq       atomic.Uint64

	mu     sync.Mutex
	rings  []*Ring
	labels []string
}

// DefaultRingCapacity sizes each ring when the caller passes 0.
const DefaultRingCapacity = 4096

// NewRecorder creates a recorder whose rings retain about perRing events
// each (rounded up to a power of two), stamping relative wall time.
func NewRecorder(perRing int) *Recorder {
	if perRing <= 0 {
		perRing = DefaultRingCapacity
	}
	start := time.Now()
	return &Recorder{
		perRing:   ceilPow2(perRing),
		startUnix: start.UnixNano(),
		now:       func() int64 { return time.Since(start).Nanoseconds() },
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetClock replaces the recorder's clock (the simulator installs virtual
// time). Call during setup, before any ring records; it also clears the
// wall-clock anchor so dumps of virtual-time runs are byte-reproducible.
func (r *Recorder) SetClock(now func() int64) {
	if r == nil {
		return
	}
	r.now = now
	r.startUnix = 0
}

// NewRing adds one labelled ring. A nil recorder returns a nil ring, which
// ignores records — callers bind unconditionally and pay one branch.
func (r *Recorder) NewRing(label string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := &Ring{
		rec:   r,
		id:    int32(len(r.rings)),
		mask:  uint64(r.perRing - 1),
		words: make([]atomic.Uint64, r.perRing*wordsPerSlot),
	}
	r.rings = append(r.rings, ring)
	r.labels = append(r.labels, label)
	return ring
}

// Merged returns every ring's retained events in one time-ordered record
// (ordered by claim sequence, the recorder-wide total order). Safe
// concurrently with writers; nil-safe.
func (r *Recorder) Merged() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rings := append([]*Ring(nil), r.rings...)
	r.mu.Unlock()
	var out []Event
	for _, ring := range rings {
		out = ring.Events(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Labels returns the ring labels in ring-id order.
func (r *Recorder) Labels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.labels...)
}

// StartUnixNano anchors the recorder's relative timestamps on the wall
// clock (0 when a virtual clock is installed).
func (r *Recorder) StartUnixNano() int64 {
	if r == nil {
		return 0
	}
	return r.startUnix
}

// RankRecord is one rank's merged flight record in dump form: the events in
// recorder order plus the ring labels Event.Ring indexes into.
type RankRecord struct {
	Rank        int      `json:"rank"`
	StartUnixNs int64    `json:"start_unix_ns,omitempty"`
	Rings       []string `json:"rings"`
	Events      []Event  `json:"events"`
}

// RankRecord assembles the dump form for one rank. Nil-safe: a nil recorder
// yields an empty record carrying only the rank. Rings and Events are never
// nil so the JSON form is always an array, even for an idle rank.
func (r *Recorder) RankRecord(rank int) RankRecord {
	rec := RankRecord{Rank: rank, Rings: []string{}, Events: []Event{}}
	if r == nil {
		return rec
	}
	rec.StartUnixNs = r.startUnix
	if labels := r.Labels(); labels != nil {
		rec.Rings = labels
	}
	if evs := r.Merged(); evs != nil {
		rec.Events = evs
	}
	return rec
}

// WriteRecords writes rank records as indented JSON (the /debug/flight
// document and the flight half of the exit dump).
func WriteRecords(w io.Writer, recs []RankRecord) error {
	if recs == nil {
		recs = []RankRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
