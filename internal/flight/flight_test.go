package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// A nil ring and nil recorder must absorb every call.
func TestNilSafety(t *testing.T) {
	var r *Ring
	r.Record(KindSendPost, 1, 2, 3)
	r.RecordAt(10, KindProgress, 0, 4, 0)
	if got := r.Events(nil); got != nil {
		t.Fatalf("nil ring events = %v", got)
	}
	var rec *Recorder
	rec.SetClock(func() int64 { return 0 })
	if rec.NewRing("x") != nil {
		t.Fatal("nil recorder returned a ring")
	}
	if rec.Merged() != nil || rec.Labels() != nil || rec.StartUnixNano() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	rr := rec.RankRecord(3)
	if rr.Rank != 3 || len(rr.Events) != 0 {
		t.Fatalf("nil recorder rank record = %+v", rr)
	}
}

func TestRecordAndMerge(t *testing.T) {
	rec := NewRecorder(16)
	clock := int64(0)
	rec.SetClock(func() int64 { clock += 5; return clock })
	a := rec.NewRing("t0")
	b := rec.NewRing("t1")

	a.Record(KindSendPost, 7, 1, 100)
	b.Record(KindMatchMiss, 7, 1, 42)
	a.Record(KindMatchHit, 7, 1, 0)

	ev := rec.Merged()
	if len(ev) != 3 {
		t.Fatalf("merged %d events, want 3", len(ev))
	}
	for i, want := range []Kind{KindSendPost, KindMatchMiss, KindMatchHit} {
		if ev[i].Kind != want {
			t.Fatalf("event %d kind = %v, want %v", i, ev[i].Kind, want)
		}
		if i > 0 && ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("merge not seq-ordered: %v", ev)
		}
	}
	if ev[0].Comm != 7 || ev[0].A0 != 1 || ev[0].A1 != 100 || ev[0].TS != 5 {
		t.Fatalf("event payload mangled: %+v", ev[0])
	}
	if ev[1].Ring != 1 || ev[0].Ring != 0 {
		t.Fatalf("ring ids wrong: %+v", ev)
	}
	if got := rec.Labels(); len(got) != 2 || got[0] != "t0" || got[1] != "t1" {
		t.Fatalf("labels = %v", got)
	}
	if rec.StartUnixNano() != 0 {
		t.Fatal("virtual clock should clear the wall anchor")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(8) // rounds to 8 slots
	r := rec.NewRing("w")
	for i := 0; i < 20; i++ {
		r.RecordAt(int64(i), KindProgress, 0, int32(i), 0)
	}
	ev := rec.Merged()
	if len(ev) != 8 {
		t.Fatalf("retained %d events, want 8", len(ev))
	}
	for _, e := range ev {
		if e.A0 < 12 {
			t.Fatalf("retained stale event %+v", e)
		}
	}
}

func TestNegativeArgsRoundTrip(t *testing.T) {
	rec := NewRecorder(4)
	r := rec.NewRing("n")
	r.RecordAt(1, KindRecvPost, 0xffffff, -1, -2)
	ev := rec.Merged()
	if len(ev) != 1 || ev[0].A0 != -1 || ev[0].A1 != -2 || ev[0].Comm != 0xffffff {
		t.Fatalf("negative args mangled: %+v", ev)
	}
}

// Concurrent writers on one ring plus concurrent snapshot readers: the
// seqlock must keep this race-detector clean and every surviving event
// internally consistent (kind/a0 agree).
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	rec := NewRecorder(64)
	r := rec.NewRing("hot")
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				r.Record(KindSendPost, uint32(w), int32(i), int32(i))
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range rec.Merged() {
				if e.Kind != KindSendPost || e.A0 != e.A1 {
					t.Errorf("torn event escaped: %+v", e)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if n := len(rec.Merged()); n == 0 || n > 64 {
		t.Fatalf("retained %d events, want 1..64", n)
	}
}

func TestKindJSONAndString(t *testing.T) {
	b, err := json.Marshal(KindUnexpEnq)
	if err != nil || string(b) != `"unexp_enq"` {
		t.Fatalf("kind json = %s, %v", b, err)
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind string = %q", Kind(200))
	}
}

func TestWriteRecords(t *testing.T) {
	rec := NewRecorder(4)
	rec.SetClock(func() int64 { return 9 })
	rec.NewRing("only").Record(KindAckRecv, 0, 1, 2)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, []RankRecord{rec.RankRecord(0)}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"ack_recv"`, `"rings"`, `"only"`, `"ts_ns": 9`} {
		if !strings.Contains(s, want) {
			t.Fatalf("record JSON missing %s:\n%s", want, s)
		}
	}
	// nil slice must still encode as a JSON array.
	buf.Reset()
	if err := WriteRecords(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil records JSON = %q", buf.String())
	}
}
