package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// CommQueues is one communicator's live matching-queue depths. Depths are
// approximate: self-locking engines (and ring-backed completion queues)
// publish atomic counters read without stopping the world, so a value can be
// off by a few elements against in-flight operations. Monitoring-only —
// never use a depth as a synchronization predicate.
type CommQueues struct {
	Comm        uint32 `json:"comm"`
	Posted      int    `json:"posted"`
	Unexpected  int    `json:"unexpected"`
	OOSBuffered int    `json:"oos_buffered"`
}

// PeerWindow is one peer's reliability-window occupancy: the send side's
// outstanding unacked packets and the receive side's reordering state.
type PeerWindow struct {
	Peer    int    `json:"peer"`
	Unacked int    `json:"unacked"`
	NextSeq uint64 `json:"next_seq"`
	RecvCum uint64 `json:"recv_cum"`
	RecvOOO int    `json:"recv_ooo"`
}

// CRILevel is one Communication Resource Instance's completion-queue level:
// Pending is the transport context's own "work outstanding" signal; Queued
// is the simulator's exact queued-event count (0 on the real transports,
// which only expose the boolean).
type CRILevel struct {
	Index   int  `json:"index"`
	Pending bool `json:"pending"`
	Queued  int  `json:"queued,omitempty"`
}

// QueueSnapshot is one rank's runtime introspection snapshot — the
// structured answer to "where is everything right now": per-communicator
// posted/unexpected queue depths, reliability window occupancy, and CRI
// pool levels. Served live at /debug/queues and embedded in watchdog and
// exit dumps.
type QueueSnapshot struct {
	Rank       int          `json:"rank"`
	CapturedNs int64        `json:"captured_ns"`
	Comms      []CommQueues `json:"comms"`
	Windows    []PeerWindow `json:"windows,omitempty"`
	CRIs       []CRILevel   `json:"cris,omitempty"`
}

// WriteSnapshots writes queue snapshots as indented JSON (the /debug/queues
// document).
func WriteSnapshots(w io.Writer, snaps []QueueSnapshot) error {
	if snaps == nil {
		snaps = []QueueSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// Sample is one watchdog observation of a rank: monotonically increasing
// movement counters plus the live queue depths. CountersValid is false when
// the run has SPCs disabled, which suppresses the counter-delta detections
// (no-progress, retransmit storm) and leaves only queue-shape ones.
type Sample struct {
	NowNs         int64
	CountersValid bool
	Sent          uint64
	Received      uint64
	Retransmits   uint64
	Unacked       int
	Comms         []CommQueues
	// LatencyValid marks a sample carrying latency-attribution quantiles
	// (the run had the internal/latency layer on and at least one traced
	// message completed on this rank by this observation).
	LatencyValid bool
	// E2EP99Ns is the rank's end-to-end latency p99 at this observation;
	// StageP99 the per-stage p99 vector in stage order. Cumulative-histogram
	// quantiles, so they move slowly — the cluster tail-skew rule compares
	// them across ranks rather than across time.
	E2EP99Ns int64
	StageP99 []StageP99
}

// StageP99 is one critical-path stage's p99 in a latency-carrying Sample.
// The stage name matches internal/latency's Stage.String() vocabulary; the
// type lives here so the latency layer and the cluster plane share it
// without an import cycle.
type StageP99 struct {
	Stage string `json:"stage"`
	P99Ns int64  `json:"p99_ns"`
}

// RankSeries is one rank's observation time series: the same Samples the
// watchdog consumes one at a time, retained in observation order. The
// simnet engine collects one per simulated rank (in virtual time, so the
// series is byte-deterministic) and the cluster imbalance detector
// consumes sets of them — the bridge that lets cross-rank verdicts be
// asserted without a live cluster.
type RankSeries struct {
	Rank    int
	Samples []Sample
}

// DetectorConfig bounds the stall detections. Zero values take defaults.
type DetectorConfig struct {
	// StallAfter fires the no-progress detection when neither sent nor
	// received counters move for this long while work is outstanding
	// (default 1s).
	StallAfter time.Duration
	// StormWindow and StormRetransmits fire the retransmit-storm detection
	// when at least StormRetransmits retransmissions land within one
	// StormWindow (defaults 1s / 100).
	StormWindow      time.Duration
	StormRetransmits int64
	// GrowthSamples fires the unexpected-queue-growth detection when a
	// communicator's unexpected depth grows strictly monotonically across
	// this many consecutive observations (default 8).
	GrowthSamples int
	// GrowthMinDelta is the minimum total depth increase over a monotone
	// streak before the growth detection may fire (default: GrowthSamples).
	// Queue depths are sampled from approximate atomic counters (see
	// ringbuf.MPSC.Len and match.Sharded) that can read transiently high by
	// a few elements against in-flight operations; a streak of +1 jitter
	// must not be mistaken for a real backlog.
	GrowthMinDelta int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.StallAfter <= 0 {
		c.StallAfter = time.Second
	}
	if c.StormWindow <= 0 {
		c.StormWindow = time.Second
	}
	if c.StormRetransmits <= 0 {
		c.StormRetransmits = 100
	}
	if c.GrowthSamples <= 0 {
		c.GrowthSamples = 8
	}
	if c.GrowthMinDelta <= 0 {
		c.GrowthMinDelta = c.GrowthSamples
	}
	return c
}

// Verdict is one fired detection: the reason, the runtime phase it
// implicates (named like the contention profiler's phases), the site (named
// like prof's lock-site labels), and a human-readable detail line.
type Verdict struct {
	Reason  string `json:"reason"`
	Phase   string `json:"phase"`
	Site    string `json:"site"`
	Detail  string `json:"detail"`
	SinceNs int64  `json:"since_ns"`
}

type commTrend struct {
	last   int
	first  int
	streak int
}

// Detector is the watchdog's decision core: a pure deterministic state
// machine fed periodic Samples, firing at most one Verdict per observation.
// Keeping it free of clocks and goroutines is what lets the simulator run
// the identical logic in virtual time.
type Detector struct {
	cfg    DetectorConfig
	primed bool

	lastMoveNs         int64
	lastSent, lastRecv uint64

	stormAnchorNs      int64
	stormAnchorRetrans uint64

	trends map[uint32]*commTrend
}

// NewDetector creates a detector with cfg (zero fields take defaults).
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), trends: make(map[uint32]*commTrend)}
}

// Observe feeds one sample. The first sample primes the baselines; later
// ones may fire. After firing, the corresponding detection re-arms so a
// persistent stall produces a dump per detection period, not per sample.
func (d *Detector) Observe(s Sample) (Verdict, bool) {
	if !d.primed {
		d.primed = true
		d.lastMoveNs = s.NowNs
		d.lastSent, d.lastRecv = s.Sent, s.Received
		d.stormAnchorNs, d.stormAnchorRetrans = s.NowNs, s.Retransmits
		for _, cq := range s.Comms {
			d.trends[cq.Comm] = &commTrend{last: cq.Unexpected, first: cq.Unexpected}
		}
		return Verdict{}, false
	}

	// Unexpected-queue growth: strictly monotone depth across
	// GrowthSamples consecutive observations means arrivals are outpacing
	// posted receives — the classic "receiver stopped posting" signature.
	for _, cq := range s.Comms {
		tr := d.trends[cq.Comm]
		if tr == nil {
			d.trends[cq.Comm] = &commTrend{last: cq.Unexpected, first: cq.Unexpected}
			continue
		}
		if cq.Unexpected > tr.last {
			if tr.streak == 0 {
				tr.first = tr.last
			}
			tr.streak++
		} else {
			tr.streak = 0
		}
		tr.last = cq.Unexpected
		if tr.streak >= d.cfg.GrowthSamples && cq.Unexpected-tr.first >= d.cfg.GrowthMinDelta {
			streak := tr.streak
			tr.streak = 0
			return Verdict{
				Reason: "unexpected-queue-growth",
				Phase:  "match",
				Site:   fmt.Sprintf("match.comm %d unexpected queue", cq.Comm),
				Detail: fmt.Sprintf("unexpected queue grew monotonically %d -> %d over %d samples; arrivals are outpacing posted receives",
					tr.first, cq.Unexpected, streak+1),
				SinceNs: s.NowNs,
			}, true
		}
	}

	if !s.CountersValid {
		return Verdict{}, false
	}

	// Retransmit storm: too many sweep re-injections inside one window.
	if s.NowNs-d.stormAnchorNs >= int64(d.cfg.StormWindow) {
		delta := s.Retransmits - d.stormAnchorRetrans
		anchor := d.stormAnchorNs
		d.stormAnchorNs, d.stormAnchorRetrans = s.NowNs, s.Retransmits
		if delta >= uint64(d.cfg.StormRetransmits) {
			return Verdict{
				Reason: "retransmit-storm",
				Phase:  "retransmit",
				Site:   "reliability send windows",
				Detail: fmt.Sprintf("%d retransmissions in %v (threshold %d); acks are not arriving or the fault rate is pathological",
					delta, time.Duration(s.NowNs-anchor), d.cfg.StormRetransmits),
				SinceNs: anchor,
			}, true
		}
	}

	// No progress: work outstanding but neither counter moved for
	// StallAfter.
	if s.Sent != d.lastSent || s.Received != d.lastRecv {
		d.lastSent, d.lastRecv = s.Sent, s.Received
		d.lastMoveNs = s.NowNs
	} else if outstanding(s) && s.NowNs-d.lastMoveNs >= int64(d.cfg.StallAfter) {
		since := d.lastMoveNs
		d.lastMoveNs = s.NowNs // re-arm
		return Verdict{
			Reason:  "no-progress",
			Phase:   "progress",
			Site:    stallSite(s),
			Detail:  fmt.Sprintf("no send/recv movement for %v with work outstanding (%s)", time.Duration(s.NowNs-since), outstandingDetail(s)),
			SinceNs: since,
		}, true
	}

	return Verdict{}, false
}

func outstanding(s Sample) bool {
	if s.Unacked > 0 {
		return true
	}
	for _, cq := range s.Comms {
		if cq.Posted > 0 || cq.Unexpected > 0 || cq.OOSBuffered > 0 {
			return true
		}
	}
	return false
}

// stallSite names the dominant outstanding work site so the verdict points
// at a place, not just a symptom.
func stallSite(s Sample) string {
	best, bestDepth := "", -1
	for _, cq := range s.Comms {
		if d := cq.Posted + cq.Unexpected + cq.OOSBuffered; d > bestDepth && d > 0 {
			best = fmt.Sprintf("match.comm %d posted/unexpected queues", cq.Comm)
			bestDepth = d
		}
	}
	if s.Unacked > bestDepth {
		return "reliability send windows"
	}
	if best != "" {
		return best
	}
	return "reliability send windows"
}

func outstandingDetail(s Sample) string {
	posted, unexp, oos := 0, 0, 0
	for _, cq := range s.Comms {
		posted += cq.Posted
		unexp += cq.Unexpected
		oos += cq.OOSBuffered
	}
	return fmt.Sprintf("posted=%d unexpected=%d oos=%d unacked=%d", posted, unexp, oos, s.Unacked)
}

// Dump is one watchdog firing in full: the verdict, the queue introspection
// snapshot at firing time, and the rank's merged flight record.
type Dump struct {
	Rank    int           `json:"rank"`
	Verdict Verdict       `json:"verdict"`
	Queues  QueueSnapshot `json:"queues"`
	Record  RankRecord    `json:"record"`
}

// WriteDump writes one watchdog dump as indented JSON.
func WriteDump(w io.Writer, d Dump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ExitDump is the end-of-run artifact written by -flight-out (and by the
// signal/panic flush paths): every local rank's queue snapshot and flight
// record, plus any watchdog verdicts the run produced, so the file is a
// self-contained triage artifact.
type ExitDump struct {
	Queues []QueueSnapshot `json:"queues"`
	Flight []RankRecord    `json:"flight"`
	Dumps  []Dump          `json:"watchdog_dumps,omitempty"`
}

// WriteExitDump writes the exit dump as indented JSON.
func WriteExitDump(w io.Writer, d ExitDump) error {
	if d.Queues == nil {
		d.Queues = []QueueSnapshot{}
	}
	if d.Flight == nil {
		d.Flight = []RankRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
