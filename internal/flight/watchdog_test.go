package flight

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const ms = int64(time.Millisecond)

func sampleAt(now int64) Sample {
	return Sample{NowNs: now, CountersValid: true}
}

func TestDetectorNoProgress(t *testing.T) {
	d := NewDetector(DetectorConfig{StallAfter: 10 * time.Millisecond})

	s := sampleAt(0)
	s.Sent, s.Received = 5, 5
	s.Comms = []CommQueues{{Comm: 1, Posted: 2}}
	if _, fired := d.Observe(s); fired {
		t.Fatal("priming sample fired")
	}

	// Counters move: no verdict, stall clock resets.
	s = sampleAt(5 * ms)
	s.Sent, s.Received = 6, 5
	s.Comms = []CommQueues{{Comm: 1, Posted: 2}}
	if _, fired := d.Observe(s); fired {
		t.Fatal("fired while counters moved")
	}

	// Frozen counters but nothing outstanding: an idle rank is not stalled.
	for now := int64(10); now <= 40; now += 5 {
		s = sampleAt(now * ms)
		s.Sent, s.Received = 6, 5
		if _, fired := d.Observe(s); fired {
			t.Fatalf("fired at %dms with nothing outstanding", now)
		}
	}

	// Frozen counters with a posted receive outstanding: fires after
	// StallAfter, then re-arms.
	fired := 0
	var v Verdict
	for now := int64(45); now <= 100; now += 5 {
		s = sampleAt(now * ms)
		s.Sent, s.Received = 6, 5
		s.Comms = []CommQueues{{Comm: 1, Posted: 2}}
		if got, ok := d.Observe(s); ok {
			fired++
			v = got
		}
	}
	if fired == 0 {
		t.Fatal("no-progress never fired")
	}
	if v.Reason != "no-progress" || v.Phase != "progress" {
		t.Fatalf("verdict = %+v", v)
	}
	if !strings.Contains(v.Site, "comm 1") {
		t.Fatalf("verdict site %q does not name the comm", v.Site)
	}
	// Re-arm means one firing per StallAfter period, not one per sample:
	// 12 samples over 55ms with a 10ms stall must fire at most 6 times.
	if fired > 6 {
		t.Fatalf("no-progress fired %d times in 55ms with 10ms stall — re-arm broken", fired)
	}
}

func TestDetectorRetransmitStorm(t *testing.T) {
	d := NewDetector(DetectorConfig{StormWindow: 10 * time.Millisecond, StormRetransmits: 8})
	d.Observe(sampleAt(0))

	// 4 retransmits in the first window: below threshold.
	s := sampleAt(12 * ms)
	s.Retransmits = 4
	if v, fired := d.Observe(s); fired {
		t.Fatalf("fired below threshold: %+v", v)
	}

	// 20 more in the next window: storm.
	s = sampleAt(25 * ms)
	s.Retransmits = 24
	v, fired := d.Observe(s)
	if !fired || v.Reason != "retransmit-storm" || v.Phase != "retransmit" {
		t.Fatalf("storm verdict = %+v fired=%v", v, fired)
	}
	if !strings.Contains(v.Detail, "20 retransmissions") {
		t.Fatalf("storm detail %q", v.Detail)
	}
}

func TestDetectorUnexpectedGrowth(t *testing.T) {
	d := NewDetector(DetectorConfig{GrowthSamples: 4})
	s := sampleAt(0)
	s.Comms = []CommQueues{{Comm: 3, Unexpected: 10}}
	d.Observe(s)

	// Growth interrupted by a plateau: streak resets.
	depths := []int{11, 12, 12, 13, 14, 15, 16}
	var v Verdict
	fired := false
	for i, depth := range depths {
		s = sampleAt(int64(i+1) * ms)
		s.Comms = []CommQueues{{Comm: 3, Unexpected: depth}}
		if got, ok := d.Observe(s); ok {
			if fired {
				t.Fatalf("fired twice: %+v and %+v", v, got)
			}
			v, fired = got, true
		}
	}
	if !fired {
		t.Fatal("growth never fired")
	}
	if v.Reason != "unexpected-queue-growth" || v.Phase != "match" {
		t.Fatalf("verdict = %+v", v)
	}
	if !strings.Contains(v.Site, "comm 3") {
		t.Fatalf("site %q does not name the comm", v.Site)
	}
	if !strings.Contains(v.Detail, "12 -> 16") {
		t.Fatalf("detail %q does not carry the growth range", v.Detail)
	}

	// Growth detection must not depend on SPC counters.
	d2 := NewDetector(DetectorConfig{GrowthSamples: 2})
	for i, depth := range []int{1, 2, 3} {
		s = sampleAt(int64(i) * ms)
		s.CountersValid = false
		s.Comms = []CommQueues{{Comm: 0, Unexpected: depth}}
		if _, ok := d2.Observe(s); ok && i < 2 {
			t.Fatal("fired too early")
		} else if ok {
			return
		}
	}
	t.Fatal("growth with counters disabled never fired")
}

// TestDetectorGrowthMinDelta: approximate depth counters (sharded matching,
// ring CQs) can drift upward by single elements against in-flight operations;
// a raised GrowthMinDelta keeps slow monotone creep from firing until the
// total increase is unambiguous.
func TestDetectorGrowthMinDelta(t *testing.T) {
	d := NewDetector(DetectorConfig{GrowthSamples: 3, GrowthMinDelta: 50})
	s := sampleAt(0)
	s.Comms = []CommQueues{{Comm: 1, Unexpected: 0}}
	d.Observe(s)
	// +1 per sample: monotone, but far below the delta floor.
	for i := 1; i <= 10; i++ {
		s = sampleAt(int64(i) * ms)
		s.Comms = []CommQueues{{Comm: 1, Unexpected: i}}
		if v, ok := d.Observe(s); ok {
			t.Fatalf("sample %d fired on +1 creep below GrowthMinDelta: %+v", i, v)
		}
	}
	// A real backlog crosses the floor and fires.
	s = sampleAt(11 * ms)
	s.Comms = []CommQueues{{Comm: 1, Unexpected: 120}}
	v, ok := d.Observe(s)
	if !ok {
		t.Fatal("real growth past GrowthMinDelta never fired")
	}
	if v.Reason != "unexpected-queue-growth" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectorDeterminism(t *testing.T) {
	run := func() []Verdict {
		d := NewDetector(DetectorConfig{StallAfter: 5 * time.Millisecond, GrowthSamples: 3})
		var out []Verdict
		for i := int64(0); i < 40; i++ {
			s := sampleAt(i * ms)
			s.Sent = 10
			s.Comms = []CommQueues{{Comm: 1, Unexpected: int(i) / 2, Posted: 1}}
			if v, ok := d.Observe(s); ok {
				out = append(out, v)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("deterministic run fired nothing")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWriteDumpAndExitDump(t *testing.T) {
	var buf bytes.Buffer
	d := Dump{
		Rank:    1,
		Verdict: Verdict{Reason: "no-progress", Phase: "progress", Site: "match.comm 0 posted/unexpected queues"},
		Queues: QueueSnapshot{
			Rank:  1,
			Comms: []CommQueues{{Comm: 0, Posted: 3, Unexpected: 9}},
			CRIs:  []CRILevel{{Index: 0, Pending: true}},
		},
	}
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"no-progress"`, `"unexpected": 9`, `"pending": true`, `"record"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("dump JSON missing %s:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := WriteExitDump(&buf, ExitDump{}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"queues": []`) || !strings.Contains(s, `"flight": []`) {
		t.Fatalf("empty exit dump must keep arrays: %s", s)
	}

	buf.Reset()
	if err := WriteSnapshots(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil snapshots JSON = %q", buf.String())
	}
}
