// Package hw models the hardware testbeds from the paper's Table I: per-core
// speed, core counts, NIC context limits, and link rates. The machine model
// parameterizes the simulated fabric's CPU cost model so that the Haswell
// (Alembert, Trinitite) and KNL (Trinitite) experiments differ the way the
// paper's do — KNL has more cores and more NIC contexts, but each core is
// slower, and every per-message software cost grows accordingly.
package hw

import (
	"fmt"
	"time"
)

// Machine describes one testbed node type.
type Machine struct {
	// Name identifies the testbed, e.g. "alembert-haswell".
	Name string
	// Cores is the number of physical cores available to one process.
	Cores int
	// SpeedFactor scales all per-operation CPU costs. 1.0 is the Haswell
	// baseline; KNL cores run the (serial) driver path roughly 2.2x slower.
	SpeedFactor float64
	// MaxContexts is the NIC's hardware limit on network contexts per
	// process (the Cray Aries-style limit discussed in Section III-B).
	// Zero means unlimited.
	MaxContexts int
	// DefaultContexts is how many contexts the transport creates when
	// auto-detecting (the ugni BTL creates one per available core).
	DefaultContexts int
	// LinkGbps is the interconnect signaling rate in gigabits per second.
	LinkGbps float64
	// MaxInjectionRate caps messages per second per NIC regardless of
	// size (hardware doorbell/packet-processing limit).
	MaxInjectionRate float64
	// Costs is the per-operation CPU cost model at SpeedFactor 1.0;
	// Scaled() applies the factor.
	Costs CostModel
}

// CostModel lists the CPU time charged for each software operation on the
// message path, calibrated to a Haswell-class core. These are the costs the
// real driver stack pays for envelope processing, CQ manipulation, and
// matching-queue bookkeeping; they put the simulation's absolute message
// rates in the regime the paper reports (~0.1M-3M msg/s two-sided).
type CostModel struct {
	// SendInject: build the 28-byte envelope and ring the doorbell.
	SendInject time.Duration
	// RecvExtract: read one completion/envelope out of a CQ.
	RecvExtract time.Duration
	// CQPollEmpty: poll a CQ and find nothing.
	CQPollEmpty time.Duration
	// MatchBase: fixed cost of one matching attempt (lookup of the
	// per-peer sequence state plus queue head examination).
	MatchBase time.Duration
	// MatchPerElement: incremental cost per posted-receive-queue element
	// walked during the search.
	MatchPerElement time.Duration
	// RecvPost: build and initialize one receive request before it enters
	// the matching engine (outside the matching lock).
	RecvPost time.Duration
	// AllocSerialize: the per-message share of process-wide memory
	// management (allocator arenas, page faults, kernel VM) that threads
	// of one process serialize on but separate processes do not. This is
	// the residual bottleneck the paper observes but leaves unidentified
	// in Section IV-C ("suggesting other bottlenecks not yet identified"):
	// it caps thread-mode message rates well below process mode even when
	// instances, progress, and matching are all concurrent.
	AllocSerialize time.Duration
	// OOSBuffer: allocate and enqueue an out-of-sequence message.
	OOSBuffer time.Duration
	// RMAPut: initiator-side cost of one put descriptor.
	RMAPut time.Duration
	// RMAGet: initiator-side cost of one get descriptor.
	RMAGet time.Duration
	// RMAFlushPerInstance: cost to sweep one instance during a flush.
	RMAFlushPerInstance time.Duration
}

// scale multiplies every cost by f.
func (c CostModel) scale(f float64) CostModel {
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return CostModel{
		SendInject:          s(c.SendInject),
		RecvExtract:         s(c.RecvExtract),
		CQPollEmpty:         s(c.CQPollEmpty),
		MatchBase:           s(c.MatchBase),
		MatchPerElement:     s(c.MatchPerElement),
		RecvPost:            s(c.RecvPost),
		AllocSerialize:      s(c.AllocSerialize),
		OOSBuffer:           s(c.OOSBuffer),
		RMAPut:              s(c.RMAPut),
		RMAGet:              s(c.RMAGet),
		RMAFlushPerInstance: s(c.RMAFlushPerInstance),
	}
}

// Scaled returns the machine's cost model with its speed factor applied.
func (m Machine) Scaled() CostModel { return m.Costs.scale(m.SpeedFactor) }

// ByteNanos returns the wire serialization time per byte in nanoseconds.
func (m Machine) ByteNanos() float64 {
	if m.LinkGbps <= 0 {
		return 0
	}
	return 8 / m.LinkGbps // ns per byte at LinkGbps
}

// PeakMessageRate returns the theoretical peak message rate (msg/s) for a
// given payload size — the black horizontal line in Figures 6 and 7. It is
// the minimum of the NIC injection-rate cap and the link bandwidth divided
// by the on-wire message footprint (payload + envelope).
func (m Machine) PeakMessageRate(payloadBytes int) float64 {
	wire := float64(payloadBytes) + 28 // envelope footprint
	bw := m.LinkGbps * 1e9 / 8         // bytes/s
	rate := bw / wire
	if m.MaxInjectionRate > 0 && rate > m.MaxInjectionRate {
		rate = m.MaxInjectionRate
	}
	return rate
}

func (m Machine) String() string {
	return fmt.Sprintf("%s (%d cores, x%.2f speed, %g Gbps, %d contexts)",
		m.Name, m.Cores, m.SpeedFactor, m.LinkGbps, m.DefaultContexts)
}

// baselineCosts is the Haswell-calibrated cost model shared by the testbeds.
var baselineCosts = CostModel{
	SendInject:          350 * time.Nanosecond,
	RecvExtract:         300 * time.Nanosecond,
	CQPollEmpty:         60 * time.Nanosecond,
	MatchBase:           120 * time.Nanosecond,
	MatchPerElement:     8 * time.Nanosecond,
	RecvPost:            250 * time.Nanosecond,
	AllocSerialize:      220 * time.Nanosecond,
	OOSBuffer:           250 * time.Nanosecond,
	RMAPut:              220 * time.Nanosecond,
	RMAGet:              240 * time.Nanosecond,
	RMAFlushPerInstance: 80 * time.Nanosecond,
}

// AlembertHaswell models the University of Tennessee Alembert nodes:
// dual 10-core Haswell Xeon E5-2650v3, InfiniBand EDR 100 Gbps.
func AlembertHaswell() Machine {
	return Machine{
		Name:             "alembert-haswell",
		Cores:            20,
		SpeedFactor:      1.0,
		MaxContexts:      0, // InfiniBand: effectively unlimited contexts
		DefaultContexts:  20,
		LinkGbps:         100,
		MaxInjectionRate: 13e6, // EDR ConnectX-4-class per-port MPI message rate
		Costs:            baselineCosts,
	}
}

// TrinititeHaswell models LANL Trinitite Haswell nodes: dual 16-core Xeon
// E5-2698v3, Cray Aries 100 Gbps. Aries limits hardware contexts; the ugni
// BTL auto-creates one instance per available core (32).
func TrinititeHaswell() Machine {
	return Machine{
		Name:             "trinitite-haswell",
		Cores:            32,
		SpeedFactor:      1.0,
		MaxContexts:      120,
		DefaultContexts:  32,
		LinkGbps:         100,
		MaxInjectionRate: 30e6,
		Costs:            baselineCosts,
	}
}

// TrinititeKNL models LANL Trinitite Knights Landing nodes: 68-core KNL
// (the benchmark uses up to 64 threads), Cray Aries. The ugni BTL detects
// 72 hardware threads/contexts; each KNL core runs the serial driver path
// roughly 2.2x slower than Haswell.
func TrinititeKNL() Machine {
	return Machine{
		Name:             "trinitite-knl",
		Cores:            64,
		SpeedFactor:      2.2,
		MaxContexts:      128,
		DefaultContexts:  72,
		LinkGbps:         100,
		MaxInjectionRate: 30e6,
		Costs:            baselineCosts,
	}
}

// Fast returns a machine with all CPU costs zeroed and no injection cap.
// Unit and integration tests use it so correctness tests don't burn time in
// the calibrated spin loops.
func Fast() Machine {
	return Machine{
		Name:            "fast",
		Cores:           16,
		SpeedFactor:     1.0,
		DefaultContexts: 16,
		LinkGbps:        0,
	}
}
