package hw

import (
	"strings"
	"testing"
	"time"
)

func TestMachinePresets(t *testing.T) {
	cases := []struct {
		m        Machine
		cores    int
		contexts int
	}{
		{AlembertHaswell(), 20, 20},
		{TrinititeHaswell(), 32, 32},
		{TrinititeKNL(), 64, 72},
	}
	for _, c := range cases {
		if c.m.Cores != c.cores {
			t.Errorf("%s: Cores = %d, want %d", c.m.Name, c.m.Cores, c.cores)
		}
		if c.m.DefaultContexts != c.contexts {
			t.Errorf("%s: DefaultContexts = %d, want %d", c.m.Name, c.m.DefaultContexts, c.contexts)
		}
		if c.m.Costs.SendInject <= 0 {
			t.Errorf("%s: zero SendInject cost", c.m.Name)
		}
	}
}

func TestKNLSlowerThanHaswell(t *testing.T) {
	knl := TrinititeKNL().Scaled()
	has := TrinititeHaswell().Scaled()
	if knl.SendInject <= has.SendInject {
		t.Fatalf("KNL SendInject %v not slower than Haswell %v", knl.SendInject, has.SendInject)
	}
	if knl.MatchPerElement <= has.MatchPerElement {
		t.Fatal("KNL MatchPerElement not slower than Haswell")
	}
}

func TestScaledAppliesFactor(t *testing.T) {
	m := AlembertHaswell()
	m.SpeedFactor = 2.0
	sc := m.Scaled()
	if sc.SendInject != 2*m.Costs.SendInject {
		t.Fatalf("Scaled SendInject = %v, want %v", sc.SendInject, 2*m.Costs.SendInject)
	}
	if sc.RMAFlushPerInstance != 2*m.Costs.RMAFlushPerInstance {
		t.Fatal("Scaled did not scale RMAFlushPerInstance")
	}
}

func TestPeakMessageRate(t *testing.T) {
	m := AlembertHaswell()
	// Zero-byte messages: capped by the injection-rate limit, not bandwidth.
	if got := m.PeakMessageRate(0); got != 13e6 {
		t.Fatalf("PeakMessageRate(0) = %g, want EDR injection cap 13e6", got)
	}
	if got := TrinititeHaswell().PeakMessageRate(0); got != 30e6 {
		t.Fatalf("Aries PeakMessageRate(0) = %g, want 30e6", got)
	}
	// 16 KiB messages: bandwidth-bound. 12.5 GB/s / (16384+28) B.
	want := 12.5e9 / 16412
	if got := m.PeakMessageRate(16384); got < want*0.99 || got > want*1.01 {
		t.Fatalf("PeakMessageRate(16384) = %g, want ~%g", got, want)
	}
	// Monotone non-increasing in size.
	prev := m.PeakMessageRate(1)
	for _, s := range []int{128, 1024, 4096, 16384} {
		cur := m.PeakMessageRate(s)
		if cur > prev {
			t.Fatalf("peak rate increased from %g to %g at size %d", prev, cur, s)
		}
		prev = cur
	}
}

func TestByteNanos(t *testing.T) {
	m := AlembertHaswell()
	if got := m.ByteNanos(); got != 0.08 {
		t.Fatalf("ByteNanos = %v, want 0.08 (100 Gbps)", got)
	}
	if Fast().ByteNanos() != 0 {
		t.Fatal("Fast machine should have zero wire cost")
	}
}

func TestFastMachineZeroCosts(t *testing.T) {
	c := Fast().Scaled()
	if c.SendInject != 0 || c.MatchBase != 0 || c.RMAPut != 0 {
		t.Fatalf("Fast() has non-zero costs: %+v", c)
	}
}

func TestMachineString(t *testing.T) {
	s := TrinititeKNL().String()
	for _, want := range []string{"trinitite-knl", "64 cores", "72 contexts"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSpinZeroIsFree(t *testing.T) {
	start := time.Now()
	for i := 0; i < 1_000_000; i++ {
		Spin(0)
	}
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Fatalf("1M Spin(0) calls took %v; should be branch-only", e)
	}
}

func TestSpinApproximatesDuration(t *testing.T) {
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond} {
		start := time.Now()
		Spin(d)
		elapsed := time.Since(start)
		if elapsed < d/2 {
			t.Errorf("Spin(%v) returned after only %v", d, elapsed)
		}
		if elapsed > 100*d+time.Millisecond {
			t.Errorf("Spin(%v) took %v, far over target", d, elapsed)
		}
	}
}

func TestSpinShortPath(t *testing.T) {
	// Sub-200ns spins use the calibrated loop; just verify they terminate
	// promptly and do not panic.
	start := time.Now()
	for i := 0; i < 10000; i++ {
		Spin(100 * time.Nanosecond)
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("10k short spins took %v", e)
	}
}

func BenchmarkSpin350ns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spin(350 * time.Nanosecond)
	}
}
