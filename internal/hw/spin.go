package hw

import (
	"sync/atomic"
	"time"
)

// Spin busy-waits for approximately d, charging CPU time to the calling
// goroutine the way a real driver's per-message software path would. Unlike
// time.Sleep it never yields the OS thread, so it models work, not waiting:
// a core spinning here is genuinely unavailable, which is what makes the
// simulation's scaling curves honest.
//
// Durations of zero or less return immediately, so cost models with zeroed
// entries (hw.Fast) have no overhead beyond one branch.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	// For very short spins, use the calibrated pause loop to avoid paying a
	// time.Now call that may exceed the requested duration.
	if d < 200*time.Nanosecond {
		spinIters(int(float64(d) * itersPerNano()))
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		spinIters(32)
	}
}

//go:noinline
func spinIters(n int) {
	// The accumulator defeats dead-code elimination; the result is published
	// through a package-level sink.
	acc := spinSink.Load()
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(acc)
}

var spinSink atomic.Uint64

var calibOnce atomic.Uint64 // stores iters-per-nano * 1024, 0 = uncalibrated

// itersPerNano returns the calibrated number of spinIters iterations per
// nanosecond. Calibration runs once, on first use.
func itersPerNano() float64 {
	if v := calibOnce.Load(); v != 0 {
		return float64(v) / 1024
	}
	const iters = 1 << 20
	start := time.Now()
	spinIters(iters)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = 1
	}
	ipn := float64(iters) / float64(elapsed.Nanoseconds())
	if ipn < 0.001 {
		ipn = 0.001
	}
	calibOnce.Store(uint64(ipn * 1024))
	return ipn
}
