// Package latency is the per-message critical-path attribution layer: it
// decomposes each traced message's end-to-end latency into named lifecycle
// stages — send post → CRI acquire → wire write → transit → delivery →
// match (posted hit vs unexpected residency) → completion — and records a
// per-stage log-linear histogram per rank plus a bounded reservoir of tail
// exemplars (the slowest messages, kept with their full stage breakdown and
// the surrounding flight-recorder events) so a p99.9 outlier can be replayed
// as a causal story instead of a single number.
//
// The layer follows the spc/telemetry/flight discipline: a nil *Recorder
// ignores every call, so hot paths pay one branch when attribution is off.
// Stage timestamps come from the existing 20-byte trace extension (send
// stamp, clock-sync corrected into the receiver's domain) plus driver-private
// packet metadata; which stages are exact and which are approximate depends
// on the engine and is documented in DESIGN.md §8.
package latency

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/telemetry"
)

// Stage names one segment of a message's critical path.
type Stage int

const (
	// StageCRIAcquire: send post to CRI instance acquired (queueing for a
	// communication resource instance, including any send-credit backoff).
	StageCRIAcquire Stage = iota
	// StageWireWrite: instance acquired to injection complete (header build,
	// injection CPU, wire reservation / socket write).
	StageWireWrite
	// StageTransit: injection complete to arrival at the receiver's
	// transport (clock-corrected). On engines that do not stamp arrival this
	// stage is folded into StageDeliverWait's residual.
	StageTransit
	// StageDeliverWait: transport arrival to matching-engine delivery — the
	// receive-side progress lag. A receiver that posts its window and then
	// goes quiet grows exactly this stage.
	StageDeliverWait
	// StageMatchPosted: delivery to match completion for a posted hit.
	StageMatchPosted
	// StageMatchUnexpected: delivery to match completion via the unexpected
	// queue — the unexpected residency of a message that arrived early.
	StageMatchUnexpected
	// StageComplete: match completion to request completion signalled.
	StageComplete

	// NumStages is the stage count; Measurement.StageNs is indexed by Stage.
	NumStages
)

var stageNames = [NumStages]string{
	StageCRIAcquire:      "cri_acquire",
	StageWireWrite:       "wire_write",
	StageTransit:         "transit",
	StageDeliverWait:     "deliver_wait",
	StageMatchPosted:     "match_posted",
	StageMatchUnexpected: "match_unexpected",
	StageComplete:        "complete",
}

// String names the stage ("cri_acquire", "wire_write", ...).
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// HistName returns the stage's histogram export name; the Prometheus family
// is this with the usual "mpi_" prefix (mpi_latency_stage_<name>_ns).
func (s Stage) HistName() string { return "latency_stage_" + s.String() + "_ns" }

// HistE2E is the end-to-end histogram's export name (family
// mpi_latency_e2e_ns).
const HistE2E = "latency_e2e_ns"

// Unknown marks a stage duration the recording engine could not observe
// (e.g. sender-local stages of a message that crossed a real wire).
const Unknown int64 = -1

// Measurement is one traced message's completed critical path, assembled at
// the completion site. Stage durations are nanoseconds; Unknown (-1) marks
// stages the engine could not observe, which are skipped by the histograms
// and rendered as unknown in exemplar dumps.
type Measurement struct {
	TraceID uint64
	// Origin is the sender's world rank; Tag the message tag.
	Origin int32
	Tag    int32
	// Unexpected reports whether the message matched via the unexpected
	// queue (StageMatchUnexpected set) or a posted receive (StageMatchPosted).
	Unexpected bool
	StageNs    [NumStages]int64
	// E2ENs is send post to completion, clock-corrected into the completing
	// rank's domain.
	E2ENs int64
	// CompletedAtNs is the completion time on the recorder's clock domain
	// (relative wall time, or virtual time under the simulator) — the anchor
	// used to attach surrounding flight-recorder events to an exemplar.
	CompletedAtNs int64
}

// Recorder accumulates one rank's stage histograms and tail-exemplar
// reservoir. Histogram recording is lock-free (telemetry.Histogram); the
// reservoir takes a mutex on the completion path only when the message is
// slow enough to contend for a reservoir slot. All methods are nil-safe.
type Recorder struct {
	stage [NumStages]*telemetry.Histogram
	e2e   *telemetry.Histogram

	mu   sync.Mutex
	cap  int
	tail []Measurement // unordered reservoir of the slowest messages
	// floor caches the smallest E2ENs in a full reservoir so the common
	// fast-message case is one atomic load + compare without the lock.
	floor atomic.Int64
}

// DefaultExemplars is the reservoir capacity when the caller passes 0.
const DefaultExemplars = 64

// NewRecorder returns an enabled recorder keeping up to exemplars tail
// exemplars (0 = DefaultExemplars).
func NewRecorder(exemplars int) *Recorder {
	if exemplars <= 0 {
		exemplars = DefaultExemplars
	}
	r := &Recorder{cap: exemplars, e2e: telemetry.NewHistogram()}
	for i := range r.stage {
		r.stage[i] = telemetry.NewHistogram()
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// ObserveStage records one stage duration directly — the sender-side hook
// for the stages only the sender can time (CRI acquire, wire write).
// Unknown and negative values are ignored. Nil-safe.
func (r *Recorder) ObserveStage(s Stage, ns int64) {
	if r == nil || s < 0 || s >= NumStages || ns < 0 {
		return
	}
	r.stage[s].ObserveNs(ns)
}

// Record folds one completed message in: the receiver-observable stages and
// the end-to-end latency land in the histograms, and the message contends
// for a tail-exemplar slot. Sender-local stages (CRI acquire, wire write)
// are NOT histogrammed here — the sender records those via ObserveStage, so
// each stage is counted on exactly one rank — but they stay in the exemplar's
// stage vector when the engine knew them. Nil-safe.
func (r *Recorder) Record(m Measurement) {
	if r == nil {
		return
	}
	for s := StageTransit; s < NumStages; s++ {
		if v := m.StageNs[s]; v >= 0 {
			r.stage[s].ObserveNs(v)
		}
	}
	r.e2e.ObserveNs(m.E2ENs)
	r.offer(m)
}

// offer admits m to the reservoir when it is among the slowest seen.
func (r *Recorder) offer(m Measurement) {
	// Fast path: the reservoir is full and its floor already beats m (a tie
	// must still take the lock for the deterministic tie-break).
	if m.E2ENs < r.floor.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tail) < r.cap {
		r.tail = append(r.tail, m)
		if len(r.tail) == r.cap {
			r.refloor()
		}
		return
	}
	// Full: replace the current minimum if m is strictly slower, with the
	// trace id as a deterministic tie-break (ties keep the smaller id so
	// virtual-time runs, where equal latencies are common, stay
	// byte-reproducible regardless of arrival interleaving).
	min := 0
	for i := 1; i < len(r.tail); i++ {
		if less(r.tail[i], r.tail[min]) {
			min = i
		}
	}
	if less(r.tail[min], m) {
		r.tail[min] = m
		r.refloor()
	}
}

// less orders measurements by slowness: a < b when a is evicted before b.
func less(a, b Measurement) bool {
	if a.E2ENs != b.E2ENs {
		return a.E2ENs < b.E2ENs
	}
	return a.TraceID > b.TraceID
}

func (r *Recorder) refloor() {
	f := int64(1<<62 - 1)
	for _, m := range r.tail {
		if m.E2ENs < f {
			f = m.E2ENs
		}
	}
	r.floor.Store(f)
}

// Exemplars returns the reservoir sorted slowest-first (ties by ascending
// trace id, so the order is deterministic). Nil-safe.
func (r *Recorder) Exemplars() []Measurement {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Measurement(nil), r.tail...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return less(out[j], out[i]) })
	return out
}

// Snapshot captures the per-stage and end-to-end histograms as named
// snapshots ready to append to a ProcStats.Hists set — which is all it takes
// for the existing Prometheus exporter, sampler, and cluster scrape path to
// carry them as mpi_latency_* families. Nil-safe: a nil recorder yields nil.
func (r *Recorder) Snapshot() []telemetry.NamedHist {
	if r == nil {
		return nil
	}
	out := make([]telemetry.NamedHist, 0, NumStages+1)
	out = append(out, telemetry.NamedHist{Name: HistE2E, Hist: r.e2e.Snapshot()})
	for s := Stage(0); s < NumStages; s++ {
		out = append(out, telemetry.NamedHist{Name: s.HistName(), Hist: r.stage[s].Snapshot()})
	}
	return out
}

// StageP99s condenses the recorder into the per-stage p99 vector the cluster
// plane's virtual-time twin feeds through the tail-skew detector: one entry
// per stage with observations, in stage order, plus the end-to-end p99.
// Nil-safe: a nil recorder yields (nil, 0, false).
func (r *Recorder) StageP99s() (stages []flight.StageP99, e2eP99 int64, ok bool) {
	if r == nil {
		return nil, 0, false
	}
	e2e := r.e2e.Snapshot()
	if e2e.Count == 0 {
		return nil, 0, false
	}
	for s := Stage(0); s < NumStages; s++ {
		snap := r.stage[s].Snapshot()
		if snap.Count == 0 {
			continue
		}
		stages = append(stages, flight.StageP99{Stage: s.String(), P99Ns: snap.P99()})
	}
	return stages, e2e.P99(), true
}

// StageSummary is one stage's aggregate in a rank dump.
type StageSummary struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// Exemplar is one tail message in dump form: the stage breakdown in stage
// order plus the surrounding flight-recorder events (empty when the flight
// recorder was off or retained nothing near the completion).
type Exemplar struct {
	TraceID       uint64         `json:"trace_id"`
	Origin        int32          `json:"origin"`
	Tag           int32          `json:"tag"`
	Unexpected    bool           `json:"unexpected"`
	E2ENs         int64          `json:"e2e_ns"`
	CompletedAtNs int64          `json:"completed_at_ns"`
	Stages        []StageValue   `json:"stages"`
	Events        []flight.Event `json:"events"`
}

// StageValue is one stage's duration in an exemplar (-1 = unknown).
type StageValue struct {
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// RankDump is one rank's full attribution dump: per-stage summaries (stage
// order, end-to-end last) and the tail exemplars slowest-first — the
// /debug/latency document and the -latency-out artifact.
type RankDump struct {
	Rank      int            `json:"rank"`
	Stages    []StageSummary `json:"stages"`
	Exemplars []Exemplar     `json:"exemplars"`
}

// exemplarSlackNs bounds how far after an exemplar's completion surrounding
// flight events are still attached.
const exemplarSlackNs = int64(1000)

// Dump assembles the rank's dump, attaching to each exemplar the flight
// events that fall inside its lifetime window [completion − e2e − slack,
// completion + slack] on the flight recorder's clock. Pass the rank's
// flight.RankRecord (the zero value when the recorder is off). Nil-safe.
func (r *Recorder) Dump(rank int, rec flight.RankRecord) RankDump {
	d := RankDump{Rank: rank, Stages: []StageSummary{}, Exemplars: []Exemplar{}}
	if r == nil {
		return d
	}
	for _, nh := range r.Snapshot() {
		if nh.Hist.Count == 0 {
			continue
		}
		name := nh.Name
		if name == HistE2E {
			name = "e2e"
		} else {
			name = name[len("latency_stage_") : len(name)-len("_ns")]
		}
		d.Stages = append(d.Stages, StageSummary{
			Stage: name,
			Count: nh.Hist.Count,
			SumNs: nh.Hist.Sum,
			P50Ns: nh.Hist.P50(),
			P99Ns: nh.Hist.P99(),
			MaxNs: nh.Hist.Max,
		})
	}
	for _, m := range r.Exemplars() {
		ex := Exemplar{
			TraceID:       m.TraceID,
			Origin:        m.Origin,
			Tag:           m.Tag,
			Unexpected:    m.Unexpected,
			E2ENs:         m.E2ENs,
			CompletedAtNs: m.CompletedAtNs,
			Events:        []flight.Event{},
		}
		for s := Stage(0); s < NumStages; s++ {
			ex.Stages = append(ex.Stages, StageValue{Stage: s.String(), Ns: m.StageNs[s]})
		}
		// The measurement's completion anchor and the flight clock share a
		// domain start (both are relative to process start, or both virtual),
		// so the window is a direct comparison.
		lo := m.CompletedAtNs - m.E2ENs - exemplarSlackNs
		hi := m.CompletedAtNs + exemplarSlackNs
		for _, ev := range rec.Events {
			if ev.TS >= lo && ev.TS <= hi {
				ex.Events = append(ex.Events, ev)
			}
		}
		d.Exemplars = append(d.Exemplars, ex)
	}
	return d
}

// WriteDumps writes rank dumps as indented JSON — the /debug/latency body
// and the -latency-out artifact. Dumps of virtual-time runs are
// byte-reproducible: every field derives from the deterministic schedule.
func WriteDumps(w io.Writer, dumps []RankDump) error {
	if dumps == nil {
		dumps = []RankDump{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}
