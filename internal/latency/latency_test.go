package latency

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/flight"
)

func meas(id uint64, e2e int64) Measurement {
	m := Measurement{TraceID: id, E2ENs: e2e, CompletedAtNs: e2e}
	for s := range m.StageNs {
		m.StageNs[s] = Unknown
	}
	m.StageNs[StageDeliverWait] = e2e / 2
	m.StageNs[StageMatchPosted] = e2e / 4
	return m
}

func TestStageNamesAndHistNames(t *testing.T) {
	want := []string{"cri_acquire", "wire_write", "transit", "deliver_wait",
		"match_posted", "match_unexpected", "complete"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("Stage(%d) = %q, want %q", s, s.String(), want[s])
		}
		hn := s.HistName()
		if !strings.HasPrefix(hn, "latency_stage_") || !strings.HasSuffix(hn, "_ns") {
			t.Fatalf("HistName %q not of the latency_stage_*_ns form", hn)
		}
	}
	if Stage(99).String() == "" {
		t.Fatal("out-of-range stage has no printable name")
	}
}

// TestNilRecorderSafe: every method on a nil recorder is a no-op — the
// hot-path contract that lets call sites skip guards.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.ObserveStage(StageCRIAcquire, 10)
	r.Record(meas(1, 100))
	if r.Exemplars() != nil || r.Snapshot() != nil {
		t.Fatal("nil recorder returned data")
	}
	if st, e2e, ok := r.StageP99s(); ok || st != nil || e2e != 0 {
		t.Fatal("nil recorder produced stage p99s")
	}
	d := r.Dump(3, flight.RankRecord{})
	if d.Rank != 3 || len(d.Stages) != 0 || len(d.Exemplars) != 0 {
		t.Fatalf("nil recorder dump: %+v", d)
	}
}

// TestReservoirKeepsSlowest: a reservoir of capacity k retains exactly the
// k slowest measurements, sorted slowest-first on extraction.
func TestReservoirKeepsSlowest(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 100; i++ {
		r.Record(meas(uint64(i), int64(i)*10))
	}
	ex := r.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("reservoir holds %d, want 4", len(ex))
	}
	for i, want := range []int64{1000, 990, 980, 970} {
		if ex[i].E2ENs != want {
			t.Fatalf("exemplar %d e2e = %d, want %d", i, ex[i].E2ENs, want)
		}
	}
}

// TestReservoirDeterministicTieBreak: equal latencies are common in virtual
// time; ties must resolve by trace id regardless of arrival order so dumps
// stay byte-reproducible.
func TestReservoirDeterministicTieBreak(t *testing.T) {
	ids := [][]uint64{{5, 3, 1, 4, 2}, {1, 2, 3, 4, 5}, {2, 4, 5, 1, 3}}
	var first []Measurement
	for _, order := range ids {
		r := NewRecorder(2)
		for _, id := range order {
			r.Record(meas(id, 500))
		}
		got := r.Exemplars()
		if len(got) != 2 || got[0].TraceID != 1 || got[1].TraceID != 2 {
			t.Fatalf("order %v kept %+v, want trace ids 1,2", order, got)
		}
		if first == nil {
			first = got
		}
	}
}

// TestRecordSkipsSenderStagesAndUnknowns: Record histograms only the
// receive-path stages — sender stages arrive via ObserveStage on the sender
// — and Unknown (-1) durations stay out of the histograms entirely.
func TestRecordSkipsSenderStagesAndUnknowns(t *testing.T) {
	r := NewRecorder(0)
	m := meas(1, 1000)
	m.StageNs[StageCRIAcquire] = 400 // sender-local: must NOT histogram here
	m.StageNs[StageTransit] = Unknown
	r.Record(m)
	stages, e2e, ok := r.StageP99s()
	if !ok || e2e <= 0 {
		t.Fatalf("no e2e after Record: %v %v", e2e, ok)
	}
	for _, sp := range stages {
		if sp.Stage == "cri_acquire" {
			t.Fatal("Record histogrammed a sender-local stage")
		}
		if sp.Stage == "transit" {
			t.Fatal("Record histogrammed an Unknown stage")
		}
	}
	r.ObserveStage(StageCRIAcquire, 400)
	stages, _, _ = r.StageP99s()
	found := false
	for _, sp := range stages {
		if sp.Stage == "cri_acquire" && sp.P99Ns == 400 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ObserveStage did not land: %+v", stages)
	}
}

// TestDumpEventWindowing: an exemplar picks up exactly the flight events
// inside its lifetime window and none outside it.
func TestDumpEventWindowing(t *testing.T) {
	r := NewRecorder(1)
	m := meas(7, 1000)
	m.CompletedAtNs = 5000 // lifetime [4000-slack, 5000+slack]
	r.Record(m)
	rec := flight.RankRecord{Events: []flight.Event{
		{TS: 100},  // long before
		{TS: 4500}, // inside
		{TS: 5000}, // at completion
		{TS: 9000}, // long after
	}}
	d := r.Dump(0, rec)
	if len(d.Exemplars) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(d.Exemplars))
	}
	got := d.Exemplars[0].Events
	if len(got) != 2 || got[0].TS != 4500 || got[1].TS != 5000 {
		t.Fatalf("windowed events = %+v, want TS 4500 and 5000", got)
	}
	// The dump spells out every stage, unknowns as -1, in stage order.
	if len(d.Exemplars[0].Stages) != int(NumStages) {
		t.Fatalf("exemplar stage vector length %d", len(d.Exemplars[0].Stages))
	}
	if d.Exemplars[0].Stages[StageCRIAcquire].Ns != Unknown {
		t.Fatal("unknown stage not preserved as -1")
	}
}

// TestWriteDumpsNilIsEmptyArray: a nil dump set renders as [] not null, so
// consumers can always range over the document.
func TestWriteDumpsNilIsEmptyArray(t *testing.T) {
	var b bytes.Buffer
	if err := WriteDumps(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil dumps rendered %q", b.String())
	}
}
