package match

import (
	"fmt"
	"time"

	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

// HashEngine is a hash-based matching engine: posted receives and
// unexpected messages with exact (source, tag) coordinates live in O(1)
// buckets, while wildcard receives stay on ordered side lists. This is the
// "optimized matching" direction the paper's Section III-F explicitly
// leaves out of scope ("a study of optimized or parallel matching is not
// within the scope of this paper") — implemented here so the remaining
// serialization can be quantified with the search cost removed.
//
// MPI's matching order is preserved exactly: every posted receive carries a
// monotone ticket; an incoming message matches the oldest candidate among
// its exact bucket head and the wildcard list heads. Like Engine, all
// methods require external synchronization.
type HashEngine struct {
	comm  uint32
	costs hw.CostModel
	meter Meter
	spcs  *spc.Set

	allowOvertaking bool

	peers  map[int32]*peerState
	single []*peerState

	nextTicket uint64

	// exact[(src,tag)] holds non-wildcard posted receives, FIFO.
	exact map[key64]*bucket
	// srcWild holds Recvs with Source set and Tag == AnyTag.
	// tagWild holds Recvs with Source == AnySource and Tag set.
	// allWild holds fully wildcarded Recvs.
	// (Each ordered by ticket; heads are match candidates.)
	srcWild map[int32]*bucket
	tagWild map[int32]*bucket
	allWild bucket
	posted  int

	// unexpected messages: bucketed by exact (src, tag) for O(1) exact
	// posts, plus one global FIFO so wildcard posts and Probe can scan in
	// arrival order.
	unexp       map[key64]*umsgList
	unexpHead   *pendingMsg
	unexpTail   *pendingMsg
	unexpLen    int
	unexpTicket uint64

	flight *flight.Ring
}

// key64 packs (source, tag) into one map key.
type key64 uint64

func mkKey(src, tag int32) key64 { return key64(uint32(src))<<32 | key64(uint32(tag)) }

// bucket is a FIFO of posted receives sharing coordinates.
type bucket struct {
	head, tail *Recv
	n          int
}

func (b *bucket) push(r *Recv) {
	r.bprev = b.tail
	r.bnext = nil
	if b.tail != nil {
		b.tail.bnext = r
	} else {
		b.head = r
	}
	b.tail = r
	b.n++
}

func (b *bucket) remove(r *Recv) {
	if r.bprev != nil {
		r.bprev.bnext = r.bnext
	} else {
		b.head = r.bnext
	}
	if r.bnext != nil {
		r.bnext.bprev = r.bprev
	} else {
		b.tail = r.bprev
	}
	r.bprev, r.bnext = nil, nil
	b.n--
}

// umsgList is a FIFO of unexpected messages sharing exact coordinates,
// threaded through the same nodes as the global list.
type umsgList struct {
	head, tail *pendingMsg
	n          int
}

// NewHashEngine creates a hash matching engine for communicator comm.
func NewHashEngine(comm uint32, nRanks int, costs hw.CostModel, meter Meter, spcs *spc.Set) *HashEngine {
	if meter == nil {
		meter = NopMeter{}
	}
	e := &HashEngine{
		comm:    comm,
		costs:   costs,
		meter:   meter,
		spcs:    spcs,
		peers:   make(map[int32]*peerState),
		exact:   make(map[key64]*bucket),
		srcWild: make(map[int32]*bucket),
		tagWild: make(map[int32]*bucket),
		unexp:   make(map[key64]*umsgList),
	}
	if nRanks > 0 {
		e.single = make([]*peerState, nRanks)
		for i := range e.single {
			e.single[i] = &peerState{}
		}
	}
	return e
}

var _ Matcher = (*HashEngine)(nil)

// Comm returns the communicator id.
func (e *HashEngine) Comm() uint32 { return e.comm }

// SetAllowOvertaking implements Matcher.
func (e *HashEngine) SetAllowOvertaking(on bool) { e.allowOvertaking = on }

// SeedNextSeq sets the expected inbound sequence for src, for wraparound
// regression tests. Requires the caller's external synchronization.
func (e *HashEngine) SeedNextSeq(src int32, v uint32) { e.peer(src).nextSeq = v }

// BindFlight implements Matcher.
func (e *HashEngine) BindFlight(r *flight.Ring) { e.flight = r }

// PostedLen implements Matcher.
func (e *HashEngine) PostedLen() int { return e.posted }

// UnexpectedLen implements Matcher.
func (e *HashEngine) UnexpectedLen() int { return e.unexpLen }

// OOSBuffered implements Matcher.
func (e *HashEngine) OOSBuffered() int {
	n := 0
	for _, p := range e.single {
		n += len(p.oos)
	}
	for _, p := range e.peers {
		n += len(p.oos)
	}
	return n
}

// ChargeWait implements Matcher.
func (e *HashEngine) ChargeWait(d time.Duration) {
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

func (e *HashEngine) charge(d time.Duration) {
	e.meter.Charge(d)
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

func (e *HashEngine) peer(rank int32) *peerState {
	if rank >= 0 && int(rank) < len(e.single) {
		return e.single[rank]
	}
	p := e.peers[rank]
	if p == nil {
		p = &peerState{}
		e.peers[rank] = p
	}
	return p
}

// PostRecv implements Matcher. Exact receives look up their unexpected
// bucket in O(1); wildcard receives scan the global unexpected FIFO.
func (e *HashEngine) PostRecv(r *Recv) (Completion, bool) {
	if r.queued {
		panic("match: Recv posted twice")
	}
	e.spcs.Inc(spc.MatchAttempts)
	exact := r.Source != AnySource && r.Tag != AnyTag
	if exact {
		e.charge(e.costs.MatchBase)
		if l := e.unexp[mkKey(r.Source, r.Tag)]; l != nil && l.head != nil {
			m := l.head
			e.removeUnexpected(m)
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
			e.fill(r, m.env, m.pkt)
			e.spcs.Inc(spc.MessagesReceived)
			return Completion{Recv: r, Packet: m.pkt}, true
		}
	} else {
		// Wildcards walk the arrival-ordered global list.
		walked := 0
		for m := e.unexpHead; m != nil; m = m.next {
			walked++
			if envMatches(r, m.env) {
				e.spcs.Add(spc.MatchWalkElements, int64(walked))
				e.charge(e.costs.MatchBase + time.Duration(walked)*e.costs.MatchPerElement)
				e.removeUnexpected(m)
				e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
				e.fill(r, m.env, m.pkt)
				e.spcs.Inc(spc.MessagesReceived)
				return Completion{Recv: r, Packet: m.pkt}, true
			}
		}
		e.spcs.Add(spc.MatchWalkElements, int64(walked))
		e.charge(e.costs.MatchBase + time.Duration(walked)*e.costs.MatchPerElement)
	}
	e.nextTicket++
	r.ticket = e.nextTicket
	r.queued = true
	e.bucketFor(r).push(r)
	e.posted++
	e.spcs.Max(spc.PostedQueuePeak, int64(e.posted))
	e.flight.Record(flight.KindRecvPost, e.comm, r.Source, int32(e.posted))
	return Completion{}, false
}

func (e *HashEngine) bucketFor(r *Recv) *bucket {
	switch {
	case r.Source != AnySource && r.Tag != AnyTag:
		k := mkKey(r.Source, r.Tag)
		b := e.exact[k]
		if b == nil {
			b = &bucket{}
			e.exact[k] = b
		}
		return b
	case r.Source != AnySource: // tag wildcard
		b := e.srcWild[r.Source]
		if b == nil {
			b = &bucket{}
			e.srcWild[r.Source] = b
		}
		return b
	case r.Tag != AnyTag: // source wildcard
		b := e.tagWild[r.Tag]
		if b == nil {
			b = &bucket{}
			e.tagWild[r.Tag] = b
		}
		return b
	default:
		return &e.allWild
	}
}

// CancelRecv implements Matcher.
func (e *HashEngine) CancelRecv(r *Recv) bool {
	if !r.queued {
		return false
	}
	e.bucketFor(r).remove(r)
	r.queued = false
	e.posted--
	return true
}

// Deliver implements Matcher: identical sequence validation to Engine, with
// the bucketed search in place of the linear one.
func (e *HashEngine) Deliver(pkt *transport.Packet, out []Completion) []Completion {
	env := pkt.Envelope()
	if env.Comm != e.comm {
		panic(fmt.Sprintf("match: packet for comm %d delivered to hash engine %d", env.Comm, e.comm))
	}
	if e.allowOvertaking {
		return e.matchIn(env, pkt, out)
	}
	p := e.peer(env.Src)
	if env.Seq != p.nextSeq {
		if int32(env.Seq-p.nextSeq) < 0 {
			// Stale sequence: already delivered, so this is a duplicate copy
			// (fabric duplication or a losing retransmission). Discard.
			e.spcs.Inc(spc.DuplicateSequences)
			return out
		}
		e.spcs.Inc(spc.OutOfSequence)
		e.charge(e.costs.OOSBuffer)
		if p.oos == nil {
			p.oos = make(map[uint32]*transport.Packet)
		}
		if _, dup := p.oos[env.Seq]; dup {
			e.spcs.Inc(spc.DuplicateSequences)
			return out
		}
		p.oos[env.Seq] = pkt
		return out
	}
	p.nextSeq++
	out = e.matchIn(env, pkt, out)
	for {
		next, ok := p.oos[p.nextSeq]
		if !ok {
			break
		}
		delete(p.oos, p.nextSeq)
		nenv := next.Envelope()
		p.nextSeq++
		out = e.matchIn(nenv, next, out)
	}
	return out
}

// matchIn picks the oldest candidate among the four bucket heads that can
// accept the message — constant-time regardless of queue depth.
func (e *HashEngine) matchIn(env transport.Envelope, pkt *transport.Packet, out []Completion) []Completion {
	e.spcs.Inc(spc.MatchAttempts)
	e.charge(e.costs.MatchBase)
	var best *Recv
	var bestBucket *bucket
	consider := func(b *bucket) {
		if b == nil || b.head == nil {
			return
		}
		if best == nil || b.head.ticket < best.ticket {
			best = b.head
			bestBucket = b
		}
	}
	consider(e.exact[mkKey(env.Src, env.Tag)])
	consider(e.srcWild[env.Src])
	consider(e.tagWild[env.Tag])
	consider(&e.allWild)
	if best != nil {
		bestBucket.remove(best)
		best.queued = false
		e.posted--
		e.flight.Record(flight.KindMatchHit, e.comm, env.Src, int32(e.posted))
		e.fill(best, env, pkt)
		e.spcs.Inc(spc.ExpectedMessages)
		e.spcs.Inc(spc.MessagesReceived)
		return append(out, Completion{Recv: best, Packet: pkt})
	}
	e.flight.Record(flight.KindMatchMiss, e.comm, env.Src, env.Tag)
	e.appendUnexpected(env, pkt)
	e.flight.Record(flight.KindUnexpEnq, e.comm, env.Src, int32(e.unexpLen))
	e.spcs.Inc(spc.UnexpectedMessages)
	return out
}

// Probe implements Matcher.
func (e *HashEngine) Probe(source, tag int32) (transport.Envelope, bool) {
	if source != AnySource && tag != AnyTag {
		if l := e.unexp[mkKey(source, tag)]; l != nil && l.head != nil {
			return l.head.env, true
		}
		return transport.Envelope{}, false
	}
	probe := &Recv{Source: source, Tag: tag}
	for m := e.unexpHead; m != nil; m = m.next {
		if envMatches(probe, m.env) {
			return m.env, true
		}
	}
	return transport.Envelope{}, false
}

// MProbe implements Matcher.
func (e *HashEngine) MProbe(source, tag int32) (*transport.Packet, bool) {
	if source != AnySource && tag != AnyTag {
		if l := e.unexp[mkKey(source, tag)]; l != nil && l.head != nil {
			m := l.head
			e.removeUnexpected(m)
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
			return m.pkt, true
		}
		return nil, false
	}
	probe := &Recv{Source: source, Tag: tag}
	for m := e.unexpHead; m != nil; m = m.next {
		if envMatches(probe, m.env) {
			e.removeUnexpected(m)
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
			return m.pkt, true
		}
	}
	return nil, false
}

func (e *HashEngine) fill(r *Recv, env transport.Envelope, pkt *transport.Packet) {
	r.MatchedEnv = env
	n := copy(r.Buf, pkt.Payload)
	r.N = n
	r.Truncated = n < len(pkt.Payload)
}

func (e *HashEngine) appendUnexpected(env transport.Envelope, pkt *transport.Packet) {
	m := &pendingMsg{env: env, pkt: pkt}
	// Global FIFO.
	m.prev = e.unexpTail
	if e.unexpTail != nil {
		e.unexpTail.next = m
	} else {
		e.unexpHead = m
	}
	e.unexpTail = m
	// Exact bucket.
	k := mkKey(env.Src, env.Tag)
	l := e.unexp[k]
	if l == nil {
		l = &umsgList{}
		e.unexp[k] = l
	}
	m.bprev = l.tail
	if l.tail != nil {
		l.tail.bnext = m
	} else {
		l.head = m
	}
	l.tail = m
	l.n++
	e.unexpLen++
	e.spcs.Max(spc.UnexpectedQueuePeak, int64(e.unexpLen))
}

func (e *HashEngine) removeUnexpected(m *pendingMsg) {
	// Global FIFO.
	if m.prev != nil {
		m.prev.next = m.next
	} else {
		e.unexpHead = m.next
	}
	if m.next != nil {
		m.next.prev = m.prev
	} else {
		e.unexpTail = m.prev
	}
	// Exact bucket.
	l := e.unexp[mkKey(m.env.Src, m.env.Tag)]
	if m.bprev != nil {
		m.bprev.bnext = m.bnext
	} else {
		l.head = m.bnext
	}
	if m.bnext != nil {
		m.bnext.bprev = m.bprev
	} else {
		l.tail = m.bprev
	}
	m.prev, m.next, m.bprev, m.bnext = nil, nil, nil, nil
	l.n--
	e.unexpLen--
}
