package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/spc"
)

func newTestHash(spcs *spc.Set) *HashEngine {
	return NewHashEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, spcs)
}

func TestHashExactMatch(t *testing.T) {
	e := newTestHash(nil)
	r := &Recv{Source: 2, Tag: 7, Buf: make([]byte, 8)}
	if _, ok := e.PostRecv(r); ok {
		t.Fatal("matched with nothing delivered")
	}
	comps := e.Deliver(pkt(2, 7, 0, []byte("abc")), nil)
	if len(comps) != 1 || comps[0].Recv != r || r.N != 3 {
		t.Fatalf("comps = %+v", comps)
	}
	if e.PostedLen() != 0 || e.UnexpectedLen() != 0 {
		t.Fatal("queues not empty")
	}
}

func TestHashUnexpectedExactLookup(t *testing.T) {
	e := newTestHash(nil)
	e.Deliver(pkt(1, 5, 0, []byte("x")), nil)
	e.Deliver(pkt(1, 6, 1, []byte("y")), nil)
	r := &Recv{Source: 1, Tag: 6, Buf: make([]byte, 2)}
	c, ok := e.PostRecv(r)
	if !ok || c.Recv.MatchedEnv.Tag != 6 {
		t.Fatalf("exact unexpected lookup failed: %+v", c)
	}
	if e.UnexpectedLen() != 1 {
		t.Fatalf("unexpected len = %d", e.UnexpectedLen())
	}
}

func TestHashWildcardOrdering(t *testing.T) {
	// Matching must pick the OLDEST posted candidate across buckets.
	e := newTestHash(nil)
	rExact := &Recv{Source: 0, Tag: 3}
	rAny := &Recv{Source: AnySource, Tag: AnyTag}
	e.PostRecv(rExact) // older
	e.PostRecv(rAny)
	comps := e.Deliver(pkt(0, 3, 0, nil), nil)
	if comps[0].Recv != rExact {
		t.Fatal("younger wildcard beat older exact receive")
	}
	// Next message matches the wildcard.
	comps = e.Deliver(pkt(5, 9, 0, nil), nil)
	if len(comps) != 1 || comps[0].Recv != rAny {
		t.Fatalf("wildcard did not match: %+v", comps)
	}
}

func TestHashWildcardBeforeExact(t *testing.T) {
	e := newTestHash(nil)
	rAny := &Recv{Source: AnySource, Tag: AnyTag}
	rExact := &Recv{Source: 0, Tag: 3}
	e.PostRecv(rAny) // older wildcard must win
	e.PostRecv(rExact)
	comps := e.Deliver(pkt(0, 3, 0, nil), nil)
	if comps[0].Recv != rAny {
		t.Fatal("younger exact receive beat older wildcard")
	}
}

func TestHashHalfWildcards(t *testing.T) {
	e := newTestHash(nil)
	rSrcWild := &Recv{Source: 2, Tag: AnyTag}    // fixed source, any tag
	rTagWild := &Recv{Source: AnySource, Tag: 9} // any source, fixed tag
	e.PostRecv(rSrcWild)
	e.PostRecv(rTagWild)
	comps := e.Deliver(pkt(2, 42, 0, nil), nil) // matches rSrcWild only
	if len(comps) != 1 || comps[0].Recv != rSrcWild {
		t.Fatalf("src-wild match failed: %+v", comps)
	}
	comps = e.Deliver(pkt(5, 9, 0, nil), nil) // matches rTagWild only
	if len(comps) != 1 || comps[0].Recv != rTagWild {
		t.Fatalf("tag-wild match failed: %+v", comps)
	}
}

func TestHashSequenceValidation(t *testing.T) {
	s := spc.NewSet()
	e := NewHashEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, s)
	for i := 0; i < 3; i++ {
		e.PostRecv(&Recv{Source: 0, Tag: 1, Buf: make([]byte, 1)})
	}
	e.Deliver(pkt(0, 1, 2, []byte{2}), nil)
	e.Deliver(pkt(0, 1, 1, []byte{1}), nil)
	if got := s.Get(spc.OutOfSequence); got != 2 {
		t.Fatalf("OOS = %d", got)
	}
	comps := e.Deliver(pkt(0, 1, 0, []byte{0}), nil)
	if len(comps) != 3 {
		t.Fatalf("drain produced %d completions", len(comps))
	}
	for i, c := range comps {
		if c.Recv.Buf[0] != byte(i) {
			t.Fatalf("completion %d carries payload %d", i, c.Recv.Buf[0])
		}
	}
	if e.OOSBuffered() != 0 {
		t.Fatal("OOS buffer not drained")
	}
}

func TestHashOvertaking(t *testing.T) {
	e := newTestHash(nil)
	e.SetAllowOvertaking(true)
	e.PostRecv(&Recv{Source: AnySource, Tag: AnyTag, Buf: make([]byte, 1)})
	comps := e.Deliver(pkt(0, 1, 99, []byte{7}), nil) // wild seq: fine
	if len(comps) != 1 {
		t.Fatal("overtaking did not match immediately")
	}
}

func TestHashCancel(t *testing.T) {
	e := newTestHash(nil)
	r := &Recv{Source: 0, Tag: 0}
	e.PostRecv(r)
	if !e.CancelRecv(r) || e.CancelRecv(r) {
		t.Fatal("cancel semantics broken")
	}
	if e.PostedLen() != 0 {
		t.Fatal("posted count wrong after cancel")
	}
}

func TestHashProbe(t *testing.T) {
	e := newTestHash(nil)
	e.Deliver(pkt(3, 42, 0, []byte("xy")), nil)
	if env, ok := e.Probe(3, 42); !ok || env.Len != 2 {
		t.Fatalf("exact probe = %+v %v", env, ok)
	}
	if _, ok := e.Probe(3, 43); ok {
		t.Fatal("probe matched wrong tag")
	}
	if env, ok := e.Probe(AnySource, AnyTag); !ok || env.Src != 3 {
		t.Fatalf("wildcard probe = %+v %v", env, ok)
	}
}

// TestQuickHashEquivalentToList is the strongest correctness evidence: for
// random workloads (random posts with random wildcards interleaved with
// random-permutation deliveries), the hash engine must produce exactly the
// same match results as the reference list engine.
func TestQuickHashEquivalentToList(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		list := NewEngine(1, 4, hw.Fast().Scaled(), NopMeter{}, nil)
		hash := NewHashEngine(1, 4, hw.Fast().Scaled(), NopMeter{}, nil)

		const nMsgs = 24
		perm := rng.Perm(nMsgs)
		type post struct{ src, tag int32 }
		var posts []post
		for i := 0; i < nMsgs; i++ {
			p := post{src: int32(rng.Intn(2)), tag: int32(rng.Intn(3))}
			if rng.Intn(4) == 0 {
				p.src = AnySource
			}
			if rng.Intn(4) == 0 {
				p.tag = AnyTag
			}
			posts = append(posts, p)
		}
		// Build the interleaving: ops > 0 are posts, ops <= 0 deliveries.
		var listOut, hashOut []string
		di, pi := 0, 0
		record := func(out *[]string, comps []Completion) {
			for _, c := range comps {
				*out = append(*out, fmt2(c))
			}
		}
		for di < nMsgs || pi < nMsgs {
			doPost := pi < nMsgs && (di >= nMsgs || rng.Intn(2) == 0)
			if doPost {
				pl := &Recv{Source: posts[pi].src, Tag: posts[pi].tag, Buf: make([]byte, 4), Token: pi}
				ph := &Recv{Source: posts[pi].src, Tag: posts[pi].tag, Buf: make([]byte, 4), Token: pi}
				if cl, ok := list.PostRecv(pl); ok {
					record(&listOut, []Completion{cl})
				}
				if ch, ok := hash.PostRecv(ph); ok {
					record(&hashOut, []Completion{ch})
				}
				pi++
			} else {
				seq := perm[di]
				src := int32(seq % 2) // two senders with independent streams
				msgSeq := uint32(seq / 2)
				tag := int32(seq % 3)
				record(&listOut, list.Deliver(pkt(src, tag, msgSeq, []byte{byte(seq)}), nil))
				record(&hashOut, hash.Deliver(pkt(src, tag, msgSeq, []byte{byte(seq)}), nil))
				di++
			}
		}
		if len(listOut) != len(hashOut) {
			return false
		}
		for i := range listOut {
			if listOut[i] != hashOut[i] {
				return false
			}
		}
		return list.PostedLen() == hash.PostedLen() &&
			list.UnexpectedLen() == hash.UnexpectedLen() &&
			list.OOSBuffered() == hash.OOSBuffered()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fmt2 canonicalizes a completion: which post (token) matched which message
// (payload byte).
func fmt2(c Completion) string {
	return string([]byte{byte(c.Recv.Token.(int)), ':', c.Recv.Buf[0]})
}

// Note: deliveries use sequence numbers derived from the permutation, so
// the two senders' streams are delivered in a random but *identical* order
// to both engines — any divergence is an engine bug.

func BenchmarkHashDeliverExact(b *testing.B) {
	e := newTestHash(nil)
	b.ReportAllocs()
	var comps []Completion
	for i := 0; i < b.N; i++ {
		e.PostRecv(&Recv{Source: 0, Tag: 1})
		comps = e.Deliver(pkt(0, 1, uint32(i), nil), comps[:0])
	}
}

// BenchmarkMatchEnginesDeepQueues contrasts list vs hash search cost with
// many distinct tags outstanding — the regime Section IV-D's queue-search
// discussion worries about.
func BenchmarkMatchEnginesDeepQueues(b *testing.B) {
	const depth = 256
	b.Run("list", func(b *testing.B) {
		e := NewEngine(1, 4, hw.Fast().Scaled(), NopMeter{}, nil)
		for d := 0; d < depth; d++ {
			e.PostRecv(&Recv{Source: 0, Tag: int32(1000 + d)})
		}
		b.ReportAllocs()
		b.ResetTimer()
		seq := uint32(0)
		for i := 0; i < b.N; i++ {
			e.PostRecv(&Recv{Source: 0, Tag: 1})
			e.Deliver(pkt(0, 1, seq, nil), nil)
			seq++
		}
	})
	b.Run("hash", func(b *testing.B) {
		e := newTestHash(nil)
		for d := 0; d < depth; d++ {
			e.PostRecv(&Recv{Source: 0, Tag: int32(1000 + d)})
		}
		b.ReportAllocs()
		b.ResetTimer()
		seq := uint32(0)
		for i := 0; i < b.N; i++ {
			e.PostRecv(&Recv{Source: 0, Tag: 1})
			e.Deliver(pkt(0, 1, seq, nil), nil)
			seq++
		}
	})
}
