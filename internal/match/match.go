// Package match implements the MPI message-matching engine: per-peer
// sequence-number validation, out-of-sequence buffering, the posted-receive
// queue, the unexpected-message queue, and wildcard (ANY_SOURCE / ANY_TAG)
// matching — the OB1-style per-communicator matching state the paper builds
// its concurrent-matching experiment on (Section III-F).
//
// The engine is deliberately lock-free *internally*: the caller provides
// mutual exclusion (a real sync.Mutex in the runtime, a virtual-time lock in
// the simulator). CPU costs are charged through a Meter so the same code
// serves both wall-clock and virtual-time execution, and the SPC match-time
// counter is advanced by the *modeled* cost, making Table II deterministic.
package match

import (
	"fmt"
	"time"

	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

// Wildcard values for Recv.Source and Recv.Tag, mirroring MPI_ANY_SOURCE
// and MPI_ANY_TAG.
const (
	AnySource int32 = -1
	AnyTag    int32 = -101
)

// Meter charges modeled CPU time to the executing thread. The runtime's
// meter busy-spins (hw.Spin); the simulator's meter advances virtual time.
type Meter interface {
	Charge(d time.Duration)
}

// SpinMeter charges cost by actually spinning the calling core.
type SpinMeter struct{}

// Charge implements Meter.
func (SpinMeter) Charge(d time.Duration) { hw.Spin(d) }

// NopMeter discards charges; unit tests use it.
type NopMeter struct{}

// Charge implements Meter.
func (NopMeter) Charge(time.Duration) {}

// Matcher is the matching-engine contract shared by the list-based Engine
// (OB1-style, the paper's subject) and the hash-based HashEngine (the
// "optimized matching" direction Section III-F leaves out of scope). All
// implementations require external synchronization per communicator.
type Matcher interface {
	// PostRecv posts a receive, completing immediately against a queued
	// unexpected message when possible.
	PostRecv(r *Recv) (Completion, bool)
	// CancelRecv removes an unmatched posted receive.
	CancelRecv(r *Recv) bool
	// Deliver runs one inbound packet through sequence validation and
	// matching, appending completions to out.
	Deliver(pkt *transport.Packet, out []Completion) []Completion
	// Probe reports a queued unexpected message matching (source, tag).
	Probe(source, tag int32) (transport.Envelope, bool)
	// MProbe removes and returns the oldest queued unexpected message
	// matching (source, tag) — MPI_Mprobe semantics: the message is
	// claimed and can no longer match other receives.
	MProbe(source, tag int32) (*transport.Packet, bool)
	// SetAllowOvertaking toggles the overtaking assertion.
	SetAllowOvertaking(on bool)
	// ChargeWait accounts externally measured matching-lock wait time.
	ChargeWait(d time.Duration)
	// PostedLen and UnexpectedLen report queue lengths; OOSBuffered the
	// number of sequence-buffered packets.
	PostedLen() int
	UnexpectedLen() int
	OOSBuffered() int
	// BindFlight attaches a flight-recorder ring receiving match events
	// (recv posted, match hit/miss, unexpected enqueue/dequeue). Call
	// during setup, under the same synchronization as the other methods;
	// nil (the default) leaves recording off at one branch per event.
	BindFlight(r *flight.Ring)
}

// Recv is one posted receive. The engine links it into the posted queue;
// when a message matches, the engine fills the result fields and reports it
// in a Completion. The caller owns completion signaling to the user.
type Recv struct {
	Source int32 // sender rank or AnySource
	Tag    int32 // tag or AnyTag
	Buf    []byte

	// Results, valid after the Recv appears in a Completion.
	MatchedEnv transport.Envelope
	Truncated  bool // payload longer than Buf
	N          int  // bytes copied into Buf

	// Token is opaque caller state (the user-level request).
	Token any

	prev, next *Recv
	queued     bool
	// ticket orders posted receives across the hash engine's buckets.
	ticket uint64
	// bprev/bnext link the recv into its hash bucket (HashEngine only).
	bprev, bnext *Recv
}

// Completion reports one matched message: the receive and its packet.
type Completion struct {
	Recv   *Recv
	Packet *transport.Packet
}

// pendingMsg is an arrived-but-unmatched message in the unexpected queue.
// prev/next thread the arrival-ordered list; bprev/bnext thread the hash
// engine's per-(source, tag) bucket.
type pendingMsg struct {
	env          transport.Envelope
	pkt          *transport.Packet
	prev, next   *pendingMsg
	bprev, bnext *pendingMsg
	// stamp is the global arrival order (Sharded only): wildcard receives
	// claim the lowest stamp across shards.
	stamp uint64
}

// peerState tracks the inbound sequence stream from one sender.
type peerState struct {
	nextSeq uint32
	// oos buffers out-of-sequence packets keyed by sequence number. The
	// map models the allocation cost the paper highlights: arrival out of
	// order forces the library to stash the message mid-critical-path.
	oos map[uint32]*transport.Packet
}

// Engine is the matching state of one communicator. All methods require
// external synchronization (the communicator's matching lock).
type Engine struct {
	comm   uint32
	costs  hw.CostModel
	meter  Meter
	spcs   *spc.Set
	peers  map[int32]*peerState
	single []*peerState // dense fast path for ranks [0, len)

	// AllowOvertaking skips sequence validation entirely — the
	// mpi_assert_allow_overtaking info key (Section IV-D).
	AllowOvertaking bool

	postedHead, postedTail *Recv
	postedLen              int
	unexpHead, unexpTail   *pendingMsg
	unexpLen               int

	flight *flight.Ring
}

// NewEngine creates the matching engine for communicator id comm with
// the given cost model. nRanks sizes the dense per-peer table; senders
// outside [0, nRanks) fall back to a map. spcs may be nil.
func NewEngine(comm uint32, nRanks int, costs hw.CostModel, meter Meter, spcs *spc.Set) *Engine {
	if meter == nil {
		meter = NopMeter{}
	}
	e := &Engine{
		comm:  comm,
		costs: costs,
		meter: meter,
		spcs:  spcs,
		peers: make(map[int32]*peerState),
	}
	if nRanks > 0 {
		e.single = make([]*peerState, nRanks)
		for i := range e.single {
			e.single[i] = &peerState{}
		}
	}
	return e
}

// Comm returns the communicator id this engine serves.
func (e *Engine) Comm() uint32 { return e.comm }

// SetAllowOvertaking implements Matcher.
func (e *Engine) SetAllowOvertaking(on bool) { e.AllowOvertaking = on }

// SeedNextSeq sets the expected inbound sequence for src, for wraparound
// regression tests. Requires the caller's external synchronization, like
// every other method.
func (e *Engine) SeedNextSeq(src int32, v uint32) { e.peer(src).nextSeq = v }

// BindFlight implements Matcher.
func (e *Engine) BindFlight(r *flight.Ring) { e.flight = r }

// static interface check
var _ Matcher = (*Engine)(nil)

// PostedLen returns the posted-receive queue length.
func (e *Engine) PostedLen() int { return e.postedLen }

// UnexpectedLen returns the unexpected-message queue length.
func (e *Engine) UnexpectedLen() int { return e.unexpLen }

func (e *Engine) peer(rank int32) *peerState {
	if rank >= 0 && int(rank) < len(e.single) {
		return e.single[rank]
	}
	p := e.peers[rank]
	if p == nil {
		p = &peerState{}
		e.peers[rank] = p
	}
	return p
}

// PostRecv posts a receive. If an unexpected message already matches, the
// engine completes it immediately and returns the completion with ok=true;
// otherwise the receive is queued and ok=false.
func (e *Engine) PostRecv(r *Recv) (Completion, bool) {
	if r.queued {
		panic("match: Recv posted twice")
	}
	e.spcs.Inc(spc.MatchAttempts)
	cost := e.costs.MatchBase
	walked := 0
	for m := e.unexpHead; m != nil; m = m.next {
		walked++
		if envMatches(r, m.env) {
			cost += time.Duration(walked) * e.costs.MatchPerElement
			e.spcs.Add(spc.MatchWalkElements, int64(walked))
			e.charge(cost)
			e.removeUnexpected(m)
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
			e.fill(r, m.env, m.pkt)
			e.spcs.Inc(spc.MessagesReceived)
			return Completion{Recv: r, Packet: m.pkt}, true
		}
	}
	cost += time.Duration(walked) * e.costs.MatchPerElement
	e.spcs.Add(spc.MatchWalkElements, int64(walked))
	e.charge(cost)
	e.appendPosted(r)
	e.flight.Record(flight.KindRecvPost, e.comm, r.Source, int32(e.postedLen))
	return Completion{}, false
}

// CancelRecv removes a posted receive that has not matched, reporting
// whether it was found (false means it already matched or was never posted).
func (e *Engine) CancelRecv(r *Recv) bool {
	if !r.queued {
		return false
	}
	e.removePosted(r)
	return true
}

// Deliver processes one inbound packet through sequence validation and
// matching, appending any completions to out (several can complete at once
// when an in-order arrival unblocks buffered out-of-sequence messages).
// The returned slice is out with appends.
func (e *Engine) Deliver(pkt *transport.Packet, out []Completion) []Completion {
	env := pkt.Envelope()
	if env.Comm != e.comm {
		panic(fmt.Sprintf("match: packet for comm %d delivered to engine %d", env.Comm, e.comm))
	}
	if e.AllowOvertaking {
		// Overtaking asserted: no ordering requirement, match immediately.
		return e.matchIn(env, pkt, out)
	}
	p := e.peer(env.Src)
	if env.Seq != p.nextSeq {
		if int32(env.Seq-p.nextSeq) < 0 {
			// Stale sequence: this message was already delivered, so the
			// packet is a duplicate (fabric duplication or a retransmission
			// that lost the race with its original). Discard and count —
			// re-matching it would violate exactly-once delivery.
			e.spcs.Inc(spc.DuplicateSequences)
			return out
		}
		// Out of sequence: buffer for later. This is the costly mid-path
		// allocation the paper measures; SPC out_of_sequence counts it.
		e.spcs.Inc(spc.OutOfSequence)
		e.charge(e.costs.OOSBuffer)
		if p.oos == nil {
			p.oos = make(map[uint32]*transport.Packet)
		}
		if _, dup := p.oos[env.Seq]; dup {
			// Same future sequence already buffered: duplicate copy.
			e.spcs.Inc(spc.DuplicateSequences)
			return out
		}
		p.oos[env.Seq] = pkt
		return out
	}
	// In order: match it, then drain any consecutive buffered successors.
	p.nextSeq++
	out = e.matchIn(env, pkt, out)
	for {
		next, ok := p.oos[p.nextSeq]
		if !ok {
			break
		}
		delete(p.oos, p.nextSeq)
		nenv := next.Envelope()
		p.nextSeq++
		out = e.matchIn(nenv, next, out)
	}
	return out
}

// matchIn matches one sequence-valid (or overtaking) message against the
// posted-receive queue, or stores it as unexpected.
func (e *Engine) matchIn(env transport.Envelope, pkt *transport.Packet, out []Completion) []Completion {
	e.spcs.Inc(spc.MatchAttempts)
	cost := e.costs.MatchBase
	walked := 0
	for r := e.postedHead; r != nil; r = r.next {
		walked++
		if envMatches(r, env) {
			cost += time.Duration(walked) * e.costs.MatchPerElement
			e.spcs.Add(spc.MatchWalkElements, int64(walked))
			e.charge(cost)
			e.removePosted(r)
			e.flight.Record(flight.KindMatchHit, e.comm, env.Src, int32(e.postedLen))
			e.fill(r, env, pkt)
			e.spcs.Inc(spc.ExpectedMessages)
			e.spcs.Inc(spc.MessagesReceived)
			return append(out, Completion{Recv: r, Packet: pkt})
		}
	}
	cost += time.Duration(walked) * e.costs.MatchPerElement
	e.spcs.Add(spc.MatchWalkElements, int64(walked))
	e.charge(cost)
	e.flight.Record(flight.KindMatchMiss, e.comm, env.Src, env.Tag)
	e.appendUnexpected(&pendingMsg{env: env, pkt: pkt})
	e.flight.Record(flight.KindUnexpEnq, e.comm, env.Src, int32(e.unexpLen))
	e.spcs.Inc(spc.UnexpectedMessages)
	return out
}

// Probe reports whether an unexpected message matching (source, tag) is
// queued, returning its envelope — MPI_Iprobe semantics over the
// unexpected queue.
func (e *Engine) Probe(source, tag int32) (transport.Envelope, bool) {
	probe := &Recv{Source: source, Tag: tag}
	for m := e.unexpHead; m != nil; m = m.next {
		if envMatches(probe, m.env) {
			return m.env, true
		}
	}
	return transport.Envelope{}, false
}

// MProbe implements Matcher: claim the oldest matching unexpected message.
func (e *Engine) MProbe(source, tag int32) (*transport.Packet, bool) {
	probe := &Recv{Source: source, Tag: tag}
	for m := e.unexpHead; m != nil; m = m.next {
		if envMatches(probe, m.env) {
			e.removeUnexpected(m)
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(e.unexpLen))
			return m.pkt, true
		}
	}
	return nil, false
}

// OOSBuffered returns the total number of currently buffered
// out-of-sequence packets, for tests and diagnostics.
func (e *Engine) OOSBuffered() int {
	n := 0
	for _, p := range e.single {
		n += len(p.oos)
	}
	for _, p := range e.peers {
		n += len(p.oos)
	}
	return n
}

// fill copies payload into the receive and records results.
func (e *Engine) fill(r *Recv, env transport.Envelope, pkt *transport.Packet) {
	r.MatchedEnv = env
	n := copy(r.Buf, pkt.Payload)
	r.N = n
	r.Truncated = n < len(pkt.Payload)
}

func (e *Engine) charge(d time.Duration) {
	e.meter.Charge(d)
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

// ChargeWait adds externally measured lock-wait time to the match-time
// counter; the runtime and simulator report matching-lock contention here
// so Table II's "match time" includes waiting, as Open MPI's SPC does.
func (e *Engine) ChargeWait(d time.Duration) {
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

func envMatches(r *Recv, env transport.Envelope) bool {
	if r.Source != AnySource && r.Source != env.Src {
		return false
	}
	if r.Tag != AnyTag && r.Tag != env.Tag {
		return false
	}
	return true
}

// --- intrusive queues ---

func (e *Engine) appendPosted(r *Recv) {
	r.queued = true
	r.prev = e.postedTail
	r.next = nil
	if e.postedTail != nil {
		e.postedTail.next = r
	} else {
		e.postedHead = r
	}
	e.postedTail = r
	e.postedLen++
	e.spcs.Max(spc.PostedQueuePeak, int64(e.postedLen))
}

func (e *Engine) removePosted(r *Recv) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		e.postedHead = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		e.postedTail = r.prev
	}
	r.prev, r.next = nil, nil
	r.queued = false
	e.postedLen--
}

func (e *Engine) appendUnexpected(m *pendingMsg) {
	m.prev = e.unexpTail
	if e.unexpTail != nil {
		e.unexpTail.next = m
	} else {
		e.unexpHead = m
	}
	e.unexpTail = m
	e.unexpLen++
	e.spcs.Max(spc.UnexpectedQueuePeak, int64(e.unexpLen))
}

func (e *Engine) removeUnexpected(m *pendingMsg) {
	if m.prev != nil {
		m.prev.next = m.next
	} else {
		e.unexpHead = m.next
	}
	if m.next != nil {
		m.next.prev = m.prev
	} else {
		e.unexpTail = m.prev
	}
	m.prev, m.next = nil, nil
	e.unexpLen--
}
