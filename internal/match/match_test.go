package match

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

func newTestEngine(spcs *spc.Set) *Engine {
	return NewEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, spcs)
}

func pkt(src int32, tag int32, seq uint32, payload []byte) *transport.Packet {
	return transport.NewPacket(transport.Envelope{
		Src: src, Dst: 0, Tag: tag, Comm: 1, Seq: seq, Kind: transport.KindEager,
	}, payload, nil)
}

func TestInOrderExpectedMatch(t *testing.T) {
	e := newTestEngine(nil)
	r := &Recv{Source: 2, Tag: 7, Buf: make([]byte, 8)}
	if _, ok := e.PostRecv(r); ok {
		t.Fatal("PostRecv matched with nothing delivered")
	}
	comps := e.Deliver(pkt(2, 7, 0, []byte("abc")), nil)
	if len(comps) != 1 || comps[0].Recv != r {
		t.Fatalf("completions = %+v", comps)
	}
	if r.N != 3 || string(r.Buf[:3]) != "abc" || r.Truncated {
		t.Fatalf("recv result = N=%d buf=%q trunc=%v", r.N, r.Buf[:r.N], r.Truncated)
	}
	if e.PostedLen() != 0 || e.UnexpectedLen() != 0 {
		t.Fatal("queues not empty after match")
	}
}

func TestUnexpectedThenPost(t *testing.T) {
	e := newTestEngine(nil)
	e.Deliver(pkt(3, 9, 0, []byte("x")), nil)
	if e.UnexpectedLen() != 1 {
		t.Fatalf("UnexpectedLen = %d, want 1", e.UnexpectedLen())
	}
	r := &Recv{Source: 3, Tag: 9, Buf: make([]byte, 4)}
	c, ok := e.PostRecv(r)
	if !ok || c.Recv != r {
		t.Fatal("PostRecv did not match the queued unexpected message")
	}
	if e.UnexpectedLen() != 0 {
		t.Fatal("unexpected queue not drained")
	}
}

func TestTagMismatchStaysQueued(t *testing.T) {
	e := newTestEngine(nil)
	r := &Recv{Source: 1, Tag: 5, Buf: nil}
	e.PostRecv(r)
	comps := e.Deliver(pkt(1, 6, 0, nil), nil)
	if len(comps) != 0 {
		t.Fatal("mismatched tag matched")
	}
	if e.PostedLen() != 1 || e.UnexpectedLen() != 1 {
		t.Fatalf("queues = posted %d unexpected %d, want 1/1", e.PostedLen(), e.UnexpectedLen())
	}
}

func TestWildcardSourceAndTag(t *testing.T) {
	e := newTestEngine(nil)
	r1 := &Recv{Source: AnySource, Tag: 5}
	r2 := &Recv{Source: 2, Tag: AnyTag}
	e.PostRecv(r1)
	e.PostRecv(r2)
	comps := e.Deliver(pkt(4, 5, 0, nil), nil) // matches r1 (any source, tag 5)
	if len(comps) != 1 || comps[0].Recv != r1 {
		t.Fatalf("wildcard-source match = %+v", comps)
	}
	comps = e.Deliver(pkt(2, 77, 0, nil), nil) // matches r2 (src 2, any tag)
	if len(comps) != 1 || comps[0].Recv != r2 {
		t.Fatalf("wildcard-tag match = %+v", comps)
	}
}

func TestPostedQueueFIFOPreference(t *testing.T) {
	// Two receives both matching: the first posted must win (MPI ordering).
	e := newTestEngine(nil)
	r1 := &Recv{Source: AnySource, Tag: AnyTag}
	r2 := &Recv{Source: AnySource, Tag: AnyTag}
	e.PostRecv(r1)
	e.PostRecv(r2)
	comps := e.Deliver(pkt(0, 1, 0, nil), nil)
	if comps[0].Recv != r1 {
		t.Fatal("second-posted receive matched first")
	}
}

func TestOutOfSequenceBuffering(t *testing.T) {
	s := spc.NewSet()
	e := NewEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, s)
	// Deliver seq 2, 1 first: both must be buffered, not matched.
	e.Deliver(pkt(0, 1, 2, []byte("c")), nil)
	e.Deliver(pkt(0, 1, 1, []byte("b")), nil)
	if e.UnexpectedLen() != 0 {
		t.Fatal("out-of-sequence packets reached the unexpected queue")
	}
	if e.OOSBuffered() != 2 {
		t.Fatalf("OOSBuffered = %d, want 2", e.OOSBuffered())
	}
	if got := s.Get(spc.OutOfSequence); got != 2 {
		t.Fatalf("SPC out_of_sequence = %d, want 2", got)
	}
	// Seq 0 arrives: all three deliver, in order.
	var recvs []*Recv
	for i := 0; i < 3; i++ {
		r := &Recv{Source: 0, Tag: 1, Buf: make([]byte, 1)}
		recvs = append(recvs, r)
		e.PostRecv(r)
	}
	comps := e.Deliver(pkt(0, 1, 0, []byte("a")), nil)
	if len(comps) != 3 {
		t.Fatalf("completions = %d, want 3 (in-order drain)", len(comps))
	}
	want := "abc"
	for i, c := range comps {
		if c.Recv != recvs[i] {
			t.Fatalf("completion %d matched wrong receive", i)
		}
		if string(recvs[i].Buf[:1]) != string(want[i]) {
			t.Fatalf("recv %d payload = %q, want %q", i, recvs[i].Buf[:1], want[i])
		}
	}
	if e.OOSBuffered() != 0 {
		t.Fatal("OOS buffer not drained")
	}
}

func TestSequenceStreamsIndependentPerPeer(t *testing.T) {
	e := newTestEngine(nil)
	// Peer 0 is at seq 0; peer 1 delivering seq 0 must not be blocked by
	// peer 0's stream state.
	r := &Recv{Source: 1, Tag: 1}
	e.PostRecv(r)
	comps := e.Deliver(pkt(1, 1, 0, nil), nil)
	if len(comps) != 1 {
		t.Fatal("peer streams are not independent")
	}
}

func TestAllowOvertakingSkipsSeqValidation(t *testing.T) {
	s := spc.NewSet()
	e := NewEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, s)
	e.AllowOvertaking = true
	r1 := &Recv{Source: AnySource, Tag: AnyTag}
	r2 := &Recv{Source: AnySource, Tag: AnyTag}
	e.PostRecv(r1)
	e.PostRecv(r2)
	// Reverse sequence order: with overtaking they match immediately.
	comps := e.Deliver(pkt(0, 1, 5, []byte("x")), nil)
	comps = append(comps, e.Deliver(pkt(0, 1, 4, []byte("y")), nil)...)
	if len(comps) != 2 {
		t.Fatalf("completions = %d, want 2", len(comps))
	}
	if comps[0].Recv != r1 || comps[1].Recv != r2 {
		t.Fatal("overtaking did not match first-posted-first")
	}
	if got := s.Get(spc.OutOfSequence); got != 0 {
		t.Fatalf("overtaking recorded %d OOS messages, want 0", got)
	}
	if e.OOSBuffered() != 0 {
		t.Fatal("overtaking buffered packets")
	}
}

func TestTruncation(t *testing.T) {
	e := newTestEngine(nil)
	r := &Recv{Source: 0, Tag: 0, Buf: make([]byte, 2)}
	e.PostRecv(r)
	e.Deliver(pkt(0, 0, 0, []byte("hello")), nil)
	if !r.Truncated || r.N != 2 || string(r.Buf) != "he" {
		t.Fatalf("truncation result: N=%d trunc=%v buf=%q", r.N, r.Truncated, r.Buf)
	}
}

func TestCancelRecv(t *testing.T) {
	e := newTestEngine(nil)
	r := &Recv{Source: 0, Tag: 0}
	e.PostRecv(r)
	if !e.CancelRecv(r) {
		t.Fatal("CancelRecv failed on queued receive")
	}
	if e.PostedLen() != 0 {
		t.Fatal("cancelled receive still queued")
	}
	if e.CancelRecv(r) {
		t.Fatal("CancelRecv succeeded twice")
	}
	// The message that would have matched now goes unexpected.
	e.Deliver(pkt(0, 0, 0, nil), nil)
	if e.UnexpectedLen() != 1 {
		t.Fatal("message matched a cancelled receive")
	}
}

func TestProbe(t *testing.T) {
	e := newTestEngine(nil)
	if _, ok := e.Probe(AnySource, AnyTag); ok {
		t.Fatal("Probe found a message in an empty engine")
	}
	e.Deliver(pkt(3, 42, 0, []byte("xyz")), nil)
	env, ok := e.Probe(3, 42)
	if !ok || env.Len != 3 || env.Src != 3 {
		t.Fatalf("Probe = %+v, %v", env, ok)
	}
	if _, ok := e.Probe(3, 43); ok {
		t.Fatal("Probe matched wrong tag")
	}
}

func TestDoublePostPanics(t *testing.T) {
	e := newTestEngine(nil)
	r := &Recv{Source: 0, Tag: 0}
	e.PostRecv(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double PostRecv did not panic")
		}
	}()
	e.PostRecv(r)
}

func TestWrongCommPanics(t *testing.T) {
	e := newTestEngine(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-communicator delivery did not panic")
		}
	}()
	p := transport.NewPacket(transport.Envelope{Comm: 99, Kind: transport.KindEager}, nil, nil)
	e.Deliver(p, nil)
}

// TestDuplicateSeqDiscarded covers both duplicate shapes a faulty fabric can
// produce: a second copy of a sequence that is still buffered out of order,
// and a copy of a sequence that was already delivered. Both are counted and
// discarded, never matched twice.
func TestDuplicateSeqDiscarded(t *testing.T) {
	s := spc.NewSet()
	e := NewEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, s)

	// Future sequence, buffered; its duplicate must not double-buffer.
	e.Deliver(pkt(0, 1, 5, nil), nil)
	e.Deliver(pkt(0, 1, 5, nil), nil)
	if got := s.Get(spc.DuplicateSequences); got != 1 {
		t.Fatalf("buffered duplicate: DuplicateSequences = %d, want 1", got)
	}
	if got := e.OOSBuffered(); got != 1 {
		t.Fatalf("OOSBuffered = %d, want 1", got)
	}

	// Deliver seq 0 in order, then a stale copy of it.
	e.Deliver(pkt(0, 1, 0, nil), nil)
	if got := e.UnexpectedLen(); got != 1 {
		t.Fatalf("UnexpectedLen = %d, want 1", got)
	}
	e.Deliver(pkt(0, 1, 0, nil), nil)
	if got := s.Get(spc.DuplicateSequences); got != 2 {
		t.Fatalf("stale duplicate: DuplicateSequences = %d, want 2", got)
	}
	if got := e.UnexpectedLen(); got != 1 {
		t.Fatalf("stale duplicate re-matched: UnexpectedLen = %d, want 1", got)
	}
}

// TestDuplicateSeqDiscardedHash is the same property on the hash engine.
func TestDuplicateSeqDiscardedHash(t *testing.T) {
	s := spc.NewSet()
	e := NewHashEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, s)
	e.Deliver(pkt(0, 1, 0, nil), nil)
	e.Deliver(pkt(0, 1, 0, nil), nil)
	e.Deliver(pkt(0, 1, 3, nil), nil)
	e.Deliver(pkt(0, 1, 3, nil), nil)
	if got := s.Get(spc.DuplicateSequences); got != 2 {
		t.Fatalf("DuplicateSequences = %d, want 2", got)
	}
	if got := e.UnexpectedLen(); got != 1 {
		t.Fatalf("UnexpectedLen = %d, want 1", got)
	}
}

func TestSPCQueuePeaks(t *testing.T) {
	s := spc.NewSet()
	e := NewEngine(1, 4, hw.Fast().Scaled(), NopMeter{}, s)
	for i := 0; i < 5; i++ {
		e.PostRecv(&Recv{Source: 0, Tag: int32(100 + i)})
	}
	if got := s.Get(spc.PostedQueuePeak); got != 5 {
		t.Fatalf("posted peak = %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		e.Deliver(pkt(1, int32(200+i), uint32(i), nil), nil)
	}
	if got := s.Get(spc.UnexpectedQueuePeak); got != 3 {
		t.Fatalf("unexpected peak = %d, want 3", got)
	}
}

// TestQuickAnyPermutationDeliversInOrder is the core ordering property:
// for ANY permutation of sequence numbers from one sender, posted receives
// complete in send (sequence) order, every message exactly once.
func TestQuickAnyPermutationDeliversInOrder(t *testing.T) {
	prop := func(seed int64, nMsgs uint8) bool {
		n := int(nMsgs%32) + 1
		rng := rand.New(rand.NewSource(seed))
		e := newTestEngine(nil)
		var recvs []*Recv
		for i := 0; i < n; i++ {
			r := &Recv{Source: 0, Tag: 1, Buf: make([]byte, 4)}
			recvs = append(recvs, r)
			e.PostRecv(r)
		}
		var comps []Completion
		for _, seq := range rng.Perm(n) {
			payload := []byte{byte(seq)}
			comps = e.Deliver(pkt(0, 1, uint32(seq), payload), comps)
		}
		if len(comps) != n {
			return false
		}
		for i, c := range comps {
			if c.Recv != recvs[i] {
				return false // completion order must be post order
			}
			if recvs[i].Buf[0] != byte(i) {
				return false // message i must land in receive i
			}
		}
		return e.OOSBuffered() == 0 && e.UnexpectedLen() == 0 && e.PostedLen() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOvertakingDeliversExactlyOnce: with overtaking, any permutation
// still delivers every message exactly once (order unconstrained).
func TestQuickOvertakingDeliversExactlyOnce(t *testing.T) {
	prop := func(seed int64, nMsgs uint8) bool {
		n := int(nMsgs%32) + 1
		rng := rand.New(rand.NewSource(seed))
		e := newTestEngine(nil)
		e.AllowOvertaking = true
		for i := 0; i < n; i++ {
			e.PostRecv(&Recv{Source: AnySource, Tag: AnyTag, Buf: make([]byte, 1)})
		}
		seen := make(map[byte]bool)
		total := 0
		for _, seq := range rng.Perm(n) {
			comps := e.Deliver(pkt(0, 1, uint32(seq), []byte{byte(seq)}), nil)
			for _, c := range comps {
				b := c.Recv.Buf[0]
				if seen[b] {
					return false
				}
				seen[b] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMixedPostDeliverInterleaving: random interleavings of posts and
// deliveries conserve messages and preserve per-sender order.
func TestQuickMixedPostDeliverInterleaving(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newTestEngine(nil)
		const n = 24
		perm := rng.Perm(n)
		di, pi := 0, 0
		completed := 0
		var lastPayload int = -1
		check := func(comps []Completion) bool {
			for _, c := range comps {
				v := int(c.Recv.Buf[0])
				if v != lastPayload+1 {
					return false
				}
				lastPayload = v
				completed++
			}
			return true
		}
		for di < n || pi < n {
			if pi < n && (di >= n || rng.Intn(2) == 0) {
				r := &Recv{Source: 0, Tag: 1, Buf: make([]byte, 1)}
				if c, ok := e.PostRecv(r); ok {
					if !check([]Completion{c}) {
						return false
					}
				}
				pi++
			} else {
				seq := perm[di]
				if !check(e.Deliver(pkt(0, 1, uint32(seq), []byte{byte(seq)}), nil)) {
					return false
				}
				di++
			}
		}
		return completed == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqTrackerDense(t *testing.T) {
	tr := NewSeqTracker(4)
	for i := uint32(0); i < 5; i++ {
		if got := tr.Next(2); got != i {
			t.Fatalf("Next(2) = %d, want %d", got, i)
		}
	}
	if got := tr.Next(3); got != 0 {
		t.Fatalf("independent rank started at %d", got)
	}
}

func TestSeqTrackerSparseFallback(t *testing.T) {
	tr := NewSeqTracker(2)
	if got := tr.Next(100); got != 0 {
		t.Fatalf("sparse Next = %d, want 0", got)
	}
	if got := tr.Next(100); got != 1 {
		t.Fatalf("sparse Next = %d, want 1", got)
	}
}

func TestSeqTrackerConcurrentUnique(t *testing.T) {
	tr := NewSeqTracker(1)
	const (
		goroutines = 8
		per        = 1000
	)
	results := make(chan uint32, goroutines*per)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				results <- tr.Next(0)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(results)
	seen := make(map[uint32]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("sequence %d issued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("issued %d unique sequences, want %d", len(seen), goroutines*per)
	}
}

func BenchmarkDeliverInOrder(b *testing.B) {
	e := newTestEngine(nil)
	b.ReportAllocs()
	var comps []Completion
	for i := 0; i < b.N; i++ {
		r := &Recv{Source: 0, Tag: 1}
		e.PostRecv(r)
		comps = e.Deliver(pkt(0, 1, uint32(i), nil), comps[:0])
	}
}

func BenchmarkDeliverOOSWindow(b *testing.B) {
	// Pairs of (seq+1, seq) deliveries: every other packet is buffered.
	e := newTestEngine(nil)
	b.ReportAllocs()
	var comps []Completion
	seq := uint32(0)
	for i := 0; i < b.N; i++ {
		e.PostRecv(&Recv{Source: 0, Tag: 1})
		e.PostRecv(&Recv{Source: 0, Tag: 1})
		comps = e.Deliver(pkt(0, 1, seq+1, nil), comps[:0])
		comps = e.Deliver(pkt(0, 1, seq, nil), comps[:0])
		seq += 2
	}
}
