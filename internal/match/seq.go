package match

import (
	"sync"
	"sync/atomic"
)

// SeqTracker issues per-(destination, communicator) send sequence numbers.
// One tracker serves one communicator on the sending side. Numbers are
// issued with a single atomic increment — the same lock-free counter real
// implementations use — so concurrent sending threads obtain *distinct*
// sequence numbers but can trivially inject them out of order, which is the
// root cause of the out-of-sequence storm Table II shows for threads.
type SeqTracker struct {
	dense  []atomic.Uint32
	sparse atomicMap
}

// NewSeqTracker creates a tracker with a dense counter table for ranks
// [0, nRanks); other ranks fall back to a map.
func NewSeqTracker(nRanks int) *SeqTracker {
	t := &SeqTracker{}
	if nRanks > 0 {
		t.dense = make([]atomic.Uint32, nRanks)
	}
	return t
}

// Next returns the next sequence number for messages to dst. Numbers are
// raw uint32s that wrap at 2^32; consumers compare them with serial
// (modular) arithmetic — int32(a-b) — never plain </>.
func (t *SeqTracker) Next(dst int32) uint32 {
	if dst >= 0 && int(dst) < len(t.dense) {
		return t.dense[dst].Add(1) - 1
	}
	return t.sparse.inc(dst)
}

// Seed sets the next sequence number for dst, for wraparound regression
// tests seeding counters near 2^32. Not for concurrent use with Next on
// the same dst.
func (t *SeqTracker) Seed(dst int32, v uint32) {
	if dst >= 0 && int(dst) < len(t.dense) {
		t.dense[dst].Store(v)
		return
	}
	t.sparse.set(dst, v)
}

// atomicMap is a mutex-protected fallback for out-of-table ranks (rare:
// only dynamic communicators hit it).
type atomicMap struct {
	mu sync.Mutex
	m  map[int32]uint32
}

func (a *atomicMap) set(k int32, v uint32) {
	a.mu.Lock()
	if a.m == nil {
		a.m = make(map[int32]uint32)
	}
	a.m[k] = v
	a.mu.Unlock()
}

func (a *atomicMap) inc(k int32) uint32 {
	a.mu.Lock()
	if a.m == nil {
		a.m = make(map[int32]uint32)
	}
	v := a.m[k]
	a.m[k] = v + 1
	a.mu.Unlock()
	return v
}
