package match

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/transport"
)

// Sharded is a concurrently accessible matching engine: posted receives and
// unexpected messages are partitioned into hash shards by (source, tag), so
// exact-coordinate traffic on different shards matches in parallel — taking
// the paper's "concurrent matching" (communicator-per-pair, Section III-F)
// one step further, inside a single communicator. Unlike Engine and
// HashEngine it synchronizes INTERNALLY (SelfLocking reports true); callers
// must NOT wrap it in a communicator-wide matching lock, or the sharding
// buys nothing.
//
// Correctness rests on three ordered lock classes, always acquired in this
// order (each op takes at most one pass through them, so the hierarchy is
// acyclic and deadlock-free):
//
//  1. stripe (per-source): serializes sequence validation and
//     out-of-sequence buffering for one sender, and is HELD ACROSS the
//     shard insertion so two in-order messages from the same sender can
//     never race into their buckets in the wrong order.
//  2. shard (per source/tag hash): guards that shard's posted and
//     unexpected buckets. Wildcard operations lock all shards in ascending
//     index order.
//  3. wild: guards the wildcard posted lists (ANY_SOURCE / ANY_TAG), taken
//     last. A wildcard receive is inserted under the wild lock while all
//     shard locks are still held, so a concurrent Deliver can never enqueue
//     a matching message as unexpected without either seeing the receive or
//     forcing the receive's scan to see the message.
//
// MPI matching order is preserved: posted receives carry a global atomic
// ticket (lowest ticket wins among the exact-bucket head and the wildcard
// heads), and unexpected messages carry a global atomic arrival stamp
// (wildcard receives and probes claim the lowest stamp across shards).
//
// PostedLen/UnexpectedLen/OOSBuffered are approximate by design: they read
// atomic counters without stopping the world, the same monitoring-only
// contract as ringbuf.MPSC.Len.
type Sharded struct {
	comm  uint32
	costs hw.CostModel
	meter Meter
	spcs  *spc.Set

	// allowOvertaking is set during setup, before the engine is shared.
	allowOvertaking bool

	shards    []matchShard
	shardMask uint64
	stripes   []seqStripe

	wildMu    prof.Mutex
	srcWild   map[int32]*bucket
	tagWild   map[int32]*bucket
	allWild   bucket
	wildCount atomic.Int64

	nextTicket atomic.Uint64
	nextStamp  atomic.Uint64

	postedCount atomic.Int64
	unexpCount  atomic.Int64
	oosCount    atomic.Int64

	flight *flight.Ring
}

// matchShard is one hash partition of the matching state.
type matchShard struct {
	mu prof.Mutex
	// exact posted receives and unexpected messages keyed by (src, tag).
	exact map[key64]*bucket
	unexp map[key64]*umsgList
	// Arrival-stamp-ordered FIFO of this shard's unexpected messages,
	// walked by wildcard receives and probes.
	unexpHead, unexpTail *pendingMsg
}

// seqStripe serializes per-sender sequence state. Sources hash onto
// stripes, so distinct senders usually validate concurrently.
type seqStripe struct {
	mu    prof.Mutex
	peers map[int32]*peerState
}

// NewSharded creates a sharded matching engine for communicator comm with
// nShards hash partitions (rounded up to a power of two, minimum 2).
// nRanks is accepted for signature parity with the other engines; peer
// state is allocated lazily per stripe. spcs may be nil.
func NewSharded(comm uint32, nRanks, nShards int, costs hw.CostModel, meter Meter, spcs *spc.Set) *Sharded {
	if meter == nil {
		meter = NopMeter{}
	}
	n := 2
	for n < nShards {
		n <<= 1
	}
	e := &Sharded{
		comm:    comm,
		costs:   costs,
		meter:   meter,
		spcs:    spcs,
		shards:  make([]matchShard, n),
		stripes: make([]seqStripe, n),
		srcWild: make(map[int32]*bucket),
		tagWild: make(map[int32]*bucket),
	}
	e.shardMask = uint64(n - 1)
	for i := range e.shards {
		e.shards[i].exact = make(map[key64]*bucket)
		e.shards[i].unexp = make(map[key64]*umsgList)
	}
	for i := range e.stripes {
		e.stripes[i].peers = make(map[int32]*peerState)
	}
	return e
}

var _ Matcher = (*Sharded)(nil)

// selfLocking marks the engine as internally synchronized (see SelfLocking).
func (e *Sharded) selfLocking() {}

// SelfLocking reports whether m synchronizes internally, in which case the
// caller must not (and must not need to) wrap it in an external matching
// lock. Engine and HashEngine return false; Sharded returns true.
func SelfLocking(m Matcher) bool {
	type sl interface{ selfLocking() }
	_, ok := m.(sl)
	return ok
}

// Comm returns the communicator id.
func (e *Sharded) Comm() uint32 { return e.comm }

// NumShards returns the number of hash partitions.
func (e *Sharded) NumShards() int { return len(e.shards) }

// SetAllowOvertaking implements Matcher. Call during setup only.
func (e *Sharded) SetAllowOvertaking(on bool) { e.allowOvertaking = on }

// BindFlight implements Matcher. Call during setup only.
func (e *Sharded) BindFlight(r *flight.Ring) { e.flight = r }

// BindProfSites attaches contention-profiler sites: one per shard lock (a
// short slice binds only the covered prefix), one shared by all stripe
// locks, one for the wildcard lock. Sites are all-atomic, so sharing one
// across stripes is safe. Call during setup only.
func (e *Sharded) BindProfSites(shards []*prof.Site, stripe, wild *prof.Site) {
	for i := range e.shards {
		if i < len(shards) {
			e.shards[i].mu.Bind(shards[i])
		}
	}
	for i := range e.stripes {
		e.stripes[i].mu.Bind(stripe)
	}
	e.wildMu.Bind(wild)
}

// hash64 finalizes a (src, tag) key into a well-mixed shard index
// (splitmix64 finalizer).
func hash64(k key64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the shard index for exact coordinates (src, tag) —
// exported so tests and the simulator mirror can partition the same way.
func (e *Sharded) ShardOf(src, tag int32) int {
	return int(hash64(mkKey(src, tag)) & e.shardMask)
}

func (e *Sharded) shardFor(src, tag int32) *matchShard {
	return &e.shards[e.ShardOf(src, tag)]
}

func (e *Sharded) stripeFor(src int32) *seqStripe {
	return &e.stripes[hash64(key64(uint32(src)))&e.shardMask]
}

func (s *seqStripe) peer(rank int32) *peerState {
	p := s.peers[rank]
	if p == nil {
		p = &peerState{}
		s.peers[rank] = p
	}
	return p
}

// PostedLen implements Matcher. Approximate: see the type comment.
func (e *Sharded) PostedLen() int { return int(e.postedCount.Load()) }

// UnexpectedLen implements Matcher. Approximate: see the type comment.
func (e *Sharded) UnexpectedLen() int { return int(e.unexpCount.Load()) }

// OOSBuffered implements Matcher. Approximate: see the type comment.
func (e *Sharded) OOSBuffered() int { return int(e.oosCount.Load()) }

// ChargeWait implements Matcher.
func (e *Sharded) ChargeWait(d time.Duration) {
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

func (e *Sharded) charge(d time.Duration) {
	e.meter.Charge(d)
	e.spcs.Add(spc.MatchTimeNanos, int64(d))
}

func (e *Sharded) lockAllShards() {
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
}

func (e *Sharded) unlockAllShards() {
	for i := range e.shards {
		e.shards[i].mu.Unlock()
	}
}

// PostRecv implements Matcher. Exact receives touch only their shard;
// wildcard receives lock every shard (ascending) to scan arrivals in stamp
// order and, on a miss, publish themselves under the wild lock before any
// shard is released.
func (e *Sharded) PostRecv(r *Recv) (Completion, bool) {
	if r.queued {
		panic("match: Recv posted twice")
	}
	e.spcs.Inc(spc.MatchAttempts)
	if r.Source != AnySource && r.Tag != AnyTag {
		sh := e.shardFor(r.Source, r.Tag)
		sh.mu.Lock()
		e.charge(e.costs.MatchBase)
		if l := sh.unexp[mkKey(r.Source, r.Tag)]; l != nil && l.head != nil {
			m := l.head
			e.removeUnexpectedLocked(sh, m)
			un := e.unexpCount.Add(-1)
			sh.mu.Unlock()
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(un))
			e.fill(r, m.env, m.pkt)
			e.spcs.Inc(spc.MessagesReceived)
			return Completion{Recv: r, Packet: m.pkt}, true
		}
		r.ticket = e.nextTicket.Add(1)
		r.queued = true
		k := mkKey(r.Source, r.Tag)
		b := sh.exact[k]
		if b == nil {
			b = &bucket{}
			sh.exact[k] = b
		}
		b.push(r)
		posted := e.postedCount.Add(1)
		sh.mu.Unlock()
		e.spcs.Max(spc.PostedQueuePeak, posted)
		e.flight.Record(flight.KindRecvPost, e.comm, r.Source, int32(posted))
		return Completion{}, false
	}

	// Wildcard: scan all shards for the oldest matching arrival.
	e.lockAllShards()
	best, bestShard, walked := e.oldestUnexpected(r)
	e.spcs.Add(spc.MatchWalkElements, int64(walked))
	e.charge(e.costs.MatchBase + time.Duration(walked)*e.costs.MatchPerElement)
	if best != nil {
		e.removeUnexpectedLocked(bestShard, best)
		un := e.unexpCount.Add(-1)
		e.unlockAllShards()
		e.flight.Record(flight.KindUnexpDeq, e.comm, best.env.Src, int32(un))
		e.fill(r, best.env, best.pkt)
		e.spcs.Inc(spc.MessagesReceived)
		return Completion{Recv: r, Packet: best.pkt}, true
	}
	// Publish the wildcard receive before releasing the shards, so no
	// in-flight Deliver can miss it.
	e.wildMu.Lock()
	r.ticket = e.nextTicket.Add(1)
	r.queued = true
	e.wildBucketFor(r).push(r)
	e.wildCount.Add(1)
	posted := e.postedCount.Add(1)
	e.wildMu.Unlock()
	e.unlockAllShards()
	e.spcs.Max(spc.PostedQueuePeak, posted)
	e.flight.Record(flight.KindRecvPost, e.comm, r.Source, int32(posted))
	return Completion{}, false
}

// oldestUnexpected scans every shard's arrival FIFO (all shard locks held)
// for the stamp-oldest message matching r, returning it, its shard, and the
// total elements walked.
func (e *Sharded) oldestUnexpected(r *Recv) (*pendingMsg, *matchShard, int) {
	var best *pendingMsg
	var bestShard *matchShard
	walked := 0
	for i := range e.shards {
		sh := &e.shards[i]
		for m := sh.unexpHead; m != nil; m = m.next {
			walked++
			if envMatches(r, m.env) {
				if best == nil || m.stamp < best.stamp {
					best = m
					bestShard = sh
				}
				break // FIFO per shard: the first match is this shard's oldest
			}
		}
	}
	return best, bestShard, walked
}

func (e *Sharded) wildBucketFor(r *Recv) *bucket {
	switch {
	case r.Source != AnySource: // tag wildcard
		b := e.srcWild[r.Source]
		if b == nil {
			b = &bucket{}
			e.srcWild[r.Source] = b
		}
		return b
	case r.Tag != AnyTag: // source wildcard
		b := e.tagWild[r.Tag]
		if b == nil {
			b = &bucket{}
			e.tagWild[r.Tag] = b
		}
		return b
	default:
		return &e.allWild
	}
}

// CancelRecv implements Matcher.
func (e *Sharded) CancelRecv(r *Recv) bool {
	if r.Source != AnySource && r.Tag != AnyTag {
		sh := e.shardFor(r.Source, r.Tag)
		sh.mu.Lock()
		if !r.queued {
			sh.mu.Unlock()
			return false
		}
		sh.exact[mkKey(r.Source, r.Tag)].remove(r)
		r.queued = false
		e.postedCount.Add(-1)
		sh.mu.Unlock()
		return true
	}
	e.wildMu.Lock()
	if !r.queued {
		e.wildMu.Unlock()
		return false
	}
	e.wildBucketFor(r).remove(r)
	r.queued = false
	e.wildCount.Add(-1)
	e.postedCount.Add(-1)
	e.wildMu.Unlock()
	return true
}

// Deliver implements Matcher: sequence validation under the sender's
// stripe lock (serial/modular comparison, held across matching so same-
// sender arrivals can never reorder), then shard-local matching.
func (e *Sharded) Deliver(pkt *transport.Packet, out []Completion) []Completion {
	env := pkt.Envelope()
	if env.Comm != e.comm {
		panic(fmt.Sprintf("match: packet for comm %d delivered to sharded engine %d", env.Comm, e.comm))
	}
	if e.allowOvertaking {
		return e.matchIn(env, pkt, out)
	}
	st := e.stripeFor(env.Src)
	st.mu.Lock()
	p := st.peer(env.Src)
	if env.Seq != p.nextSeq {
		if int32(env.Seq-p.nextSeq) < 0 {
			// Serial arithmetic: stale even across the uint32 wrap.
			e.spcs.Inc(spc.DuplicateSequences)
			st.mu.Unlock()
			return out
		}
		e.spcs.Inc(spc.OutOfSequence)
		e.charge(e.costs.OOSBuffer)
		if p.oos == nil {
			p.oos = make(map[uint32]*transport.Packet)
		}
		if _, dup := p.oos[env.Seq]; dup {
			e.spcs.Inc(spc.DuplicateSequences)
			st.mu.Unlock()
			return out
		}
		p.oos[env.Seq] = pkt
		e.oosCount.Add(1)
		st.mu.Unlock()
		return out
	}
	p.nextSeq++
	out = e.matchIn(env, pkt, out)
	for {
		next, ok := p.oos[p.nextSeq]
		if !ok {
			break
		}
		delete(p.oos, p.nextSeq)
		e.oosCount.Add(-1)
		nenv := next.Envelope()
		p.nextSeq++
		out = e.matchIn(nenv, next, out)
	}
	st.mu.Unlock()
	return out
}

// matchIn matches one sequence-valid (or overtaking) message: shard lock,
// then — only when a wildcard receive might exist — the wild lock. The
// wildCount fast path is sound because wildcard receives are inserted while
// holding every shard lock, including ours.
func (e *Sharded) matchIn(env transport.Envelope, pkt *transport.Packet, out []Completion) []Completion {
	e.spcs.Inc(spc.MatchAttempts)
	e.charge(e.costs.MatchBase)
	sh := e.shardFor(env.Src, env.Tag)
	sh.mu.Lock()
	var best *Recv
	var bestBucket *bucket
	if b := sh.exact[mkKey(env.Src, env.Tag)]; b != nil && b.head != nil {
		best = b.head
		bestBucket = b
	}
	wildLocked := false
	bestWild := false
	if e.wildCount.Load() > 0 {
		e.wildMu.Lock()
		wildLocked = true
		consider := func(b *bucket) {
			if b == nil || b.head == nil {
				return
			}
			if best == nil || b.head.ticket < best.ticket {
				best = b.head
				bestBucket = b
				bestWild = true
			}
		}
		consider(e.srcWild[env.Src])
		consider(e.tagWild[env.Tag])
		consider(&e.allWild)
	}
	if best != nil {
		bestBucket.remove(best)
		best.queued = false
		if bestWild {
			e.wildCount.Add(-1)
		}
		if wildLocked {
			e.wildMu.Unlock()
		}
		posted := e.postedCount.Add(-1)
		sh.mu.Unlock()
		e.flight.Record(flight.KindMatchHit, e.comm, env.Src, int32(posted))
		e.fill(best, env, pkt)
		e.spcs.Inc(spc.ExpectedMessages)
		e.spcs.Inc(spc.MessagesReceived)
		return append(out, Completion{Recv: best, Packet: pkt})
	}
	if wildLocked {
		e.wildMu.Unlock()
	}
	m := &pendingMsg{env: env, pkt: pkt, stamp: e.nextStamp.Add(1)}
	e.appendUnexpectedLocked(sh, m)
	un := e.unexpCount.Add(1)
	sh.mu.Unlock()
	e.flight.Record(flight.KindMatchMiss, e.comm, env.Src, env.Tag)
	e.flight.Record(flight.KindUnexpEnq, e.comm, env.Src, int32(un))
	e.spcs.Inc(spc.UnexpectedMessages)
	e.spcs.Max(spc.UnexpectedQueuePeak, un)
	return out
}

// Probe implements Matcher.
func (e *Sharded) Probe(source, tag int32) (transport.Envelope, bool) {
	if source != AnySource && tag != AnyTag {
		sh := e.shardFor(source, tag)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if l := sh.unexp[mkKey(source, tag)]; l != nil && l.head != nil {
			return l.head.env, true
		}
		return transport.Envelope{}, false
	}
	probe := &Recv{Source: source, Tag: tag}
	e.lockAllShards()
	defer e.unlockAllShards()
	best, _, _ := e.oldestUnexpected(probe)
	if best != nil {
		return best.env, true
	}
	return transport.Envelope{}, false
}

// MProbe implements Matcher.
func (e *Sharded) MProbe(source, tag int32) (*transport.Packet, bool) {
	if source != AnySource && tag != AnyTag {
		sh := e.shardFor(source, tag)
		sh.mu.Lock()
		if l := sh.unexp[mkKey(source, tag)]; l != nil && l.head != nil {
			m := l.head
			e.removeUnexpectedLocked(sh, m)
			un := e.unexpCount.Add(-1)
			sh.mu.Unlock()
			e.flight.Record(flight.KindUnexpDeq, e.comm, m.env.Src, int32(un))
			return m.pkt, true
		}
		sh.mu.Unlock()
		return nil, false
	}
	probe := &Recv{Source: source, Tag: tag}
	e.lockAllShards()
	best, bestShard, _ := e.oldestUnexpected(probe)
	if best == nil {
		e.unlockAllShards()
		return nil, false
	}
	e.removeUnexpectedLocked(bestShard, best)
	un := e.unexpCount.Add(-1)
	e.unlockAllShards()
	e.flight.Record(flight.KindUnexpDeq, e.comm, best.env.Src, int32(un))
	return best.pkt, true
}

// SeedNextSeq sets the expected inbound sequence for src, for wraparound
// regression tests. Safe concurrently (takes the stripe lock).
func (e *Sharded) SeedNextSeq(src int32, v uint32) {
	st := e.stripeFor(src)
	st.mu.Lock()
	st.peer(src).nextSeq = v
	st.mu.Unlock()
}

func (e *Sharded) fill(r *Recv, env transport.Envelope, pkt *transport.Packet) {
	r.MatchedEnv = env
	n := copy(r.Buf, pkt.Payload)
	r.N = n
	r.Truncated = n < len(pkt.Payload)
}

// appendUnexpectedLocked links m into sh's exact bucket and arrival FIFO.
// Caller holds sh.mu.
func (e *Sharded) appendUnexpectedLocked(sh *matchShard, m *pendingMsg) {
	m.prev = sh.unexpTail
	if sh.unexpTail != nil {
		sh.unexpTail.next = m
	} else {
		sh.unexpHead = m
	}
	sh.unexpTail = m
	k := mkKey(m.env.Src, m.env.Tag)
	l := sh.unexp[k]
	if l == nil {
		l = &umsgList{}
		sh.unexp[k] = l
	}
	m.bprev = l.tail
	if l.tail != nil {
		l.tail.bnext = m
	} else {
		l.head = m
	}
	l.tail = m
	l.n++
}

// removeUnexpectedLocked unlinks m from sh's lists. Caller holds sh.mu.
func (e *Sharded) removeUnexpectedLocked(sh *matchShard, m *pendingMsg) {
	if m.prev != nil {
		m.prev.next = m.next
	} else {
		sh.unexpHead = m.next
	}
	if m.next != nil {
		m.next.prev = m.prev
	} else {
		sh.unexpTail = m.prev
	}
	l := sh.unexp[mkKey(m.env.Src, m.env.Tag)]
	if m.bprev != nil {
		m.bprev.bnext = m.bnext
	} else {
		l.head = m.bnext
	}
	if m.bnext != nil {
		m.bnext.bprev = m.bprev
	} else {
		l.tail = m.bprev
	}
	m.prev, m.next, m.bprev, m.bnext = nil, nil, nil, nil
	l.n--
}
