package match

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/spc"
)

func newTestSharded(spcs *spc.Set) *Sharded {
	return NewSharded(1, 8, 8, hw.Fast().Scaled(), NopMeter{}, spcs)
}

func TestShardedSelfLocking(t *testing.T) {
	if !SelfLocking(newTestSharded(nil)) {
		t.Fatal("Sharded must report SelfLocking")
	}
	if SelfLocking(newTestEngine(nil)) {
		t.Fatal("Engine must not report SelfLocking")
	}
	if SelfLocking(NewHashEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, nil)) {
		t.Fatal("HashEngine must not report SelfLocking")
	}
}

func TestShardedExactMatch(t *testing.T) {
	e := newTestSharded(nil)
	r := &Recv{Source: 2, Tag: 7, Buf: make([]byte, 8)}
	if _, ok := e.PostRecv(r); ok {
		t.Fatal("PostRecv matched with nothing delivered")
	}
	comps := e.Deliver(pkt(2, 7, 0, []byte("abc")), nil)
	if len(comps) != 1 || comps[0].Recv != r {
		t.Fatalf("completions = %+v", comps)
	}
	if r.N != 3 || string(r.Buf[:3]) != "abc" {
		t.Fatalf("recv result = N=%d buf=%q", r.N, r.Buf[:r.N])
	}
	if e.PostedLen() != 0 || e.UnexpectedLen() != 0 {
		t.Fatal("queues not empty after match")
	}
}

func TestShardedUnexpectedThenPost(t *testing.T) {
	e := newTestSharded(nil)
	e.Deliver(pkt(3, 9, 0, []byte("x")), nil)
	if e.UnexpectedLen() != 1 {
		t.Fatalf("UnexpectedLen = %d, want 1", e.UnexpectedLen())
	}
	r := &Recv{Source: 3, Tag: 9, Buf: make([]byte, 4)}
	c, ok := e.PostRecv(r)
	if !ok || c.Recv != r {
		t.Fatal("PostRecv did not match the queued unexpected message")
	}
	if e.UnexpectedLen() != 0 {
		t.Fatal("unexpected queue not drained")
	}
}

// TestShardedPostedOrder: a message must match the OLDEST (lowest-ticket)
// candidate even when an exact receive and a wildcard receive both match.
func TestShardedPostedOrder(t *testing.T) {
	e := newTestSharded(nil)
	wild := &Recv{Source: AnySource, Tag: AnyTag}
	exact := &Recv{Source: 1, Tag: 5}
	e.PostRecv(wild)  // ticket 1
	e.PostRecv(exact) // ticket 2
	comps := e.Deliver(pkt(1, 5, 0, nil), nil)
	if len(comps) != 1 || comps[0].Recv != wild {
		t.Fatalf("message matched %+v, want the older wildcard", comps)
	}
	comps = e.Deliver(pkt(1, 5, 1, nil), nil)
	if len(comps) != 1 || comps[0].Recv != exact {
		t.Fatalf("second message matched %+v, want the exact recv", comps)
	}
}

// TestShardedWildcardOldestAcrossShards: a wildcard receive must claim the
// stamp-oldest unexpected message even when candidates live on different
// shards.
func TestShardedWildcardOldestAcrossShards(t *testing.T) {
	e := newTestSharded(nil)
	// Different (src, tag) pairs land on different shards (with 8 shards
	// and distinct keys, at least some do); arrival order must still win.
	e.Deliver(pkt(0, 10, 0, []byte("first")), nil)
	e.Deliver(pkt(1, 20, 0, []byte("second")), nil)
	e.Deliver(pkt(2, 30, 0, []byte("third")), nil)
	for _, want := range []int32{0, 1, 2} {
		r := &Recv{Source: AnySource, Tag: AnyTag, Buf: make([]byte, 16)}
		c, ok := e.PostRecv(r)
		if !ok {
			t.Fatalf("wildcard did not match queued message %d", want)
		}
		if c.Recv.MatchedEnv.Src != want {
			t.Fatalf("wildcard matched src %d, want %d (arrival order)", c.Recv.MatchedEnv.Src, want)
		}
	}
}

func TestShardedProbeAndMProbe(t *testing.T) {
	e := newTestSharded(nil)
	e.Deliver(pkt(4, 2, 0, []byte("m1")), nil)
	e.Deliver(pkt(5, 3, 0, []byte("m2")), nil)
	if env, ok := e.Probe(4, 2); !ok || env.Src != 4 {
		t.Fatalf("exact Probe = %+v %v", env, ok)
	}
	if env, ok := e.Probe(AnySource, AnyTag); !ok || env.Src != 4 {
		t.Fatalf("wildcard Probe = %+v %v (want oldest, src 4)", env, ok)
	}
	if p, ok := e.MProbe(AnySource, AnyTag); !ok || p.Envelope().Src != 4 {
		t.Fatal("wildcard MProbe did not claim the oldest")
	}
	if e.UnexpectedLen() != 1 {
		t.Fatalf("UnexpectedLen = %d after MProbe, want 1", e.UnexpectedLen())
	}
	if _, ok := e.Probe(4, 2); ok {
		t.Fatal("claimed message still probeable")
	}
}

func TestShardedCancelRecv(t *testing.T) {
	e := newTestSharded(nil)
	exact := &Recv{Source: 1, Tag: 1}
	wild := &Recv{Source: AnySource, Tag: 9}
	e.PostRecv(exact)
	e.PostRecv(wild)
	if !e.CancelRecv(exact) || !e.CancelRecv(wild) {
		t.Fatal("cancel failed")
	}
	if e.CancelRecv(exact) {
		t.Fatal("double cancel succeeded")
	}
	if e.PostedLen() != 0 {
		t.Fatalf("PostedLen = %d after cancels", e.PostedLen())
	}
	if comps := e.Deliver(pkt(1, 1, 0, nil), nil); len(comps) != 0 {
		t.Fatal("cancelled recv matched")
	}
}

// TestShardedOutOfSequence: the stripe must buffer out-of-sequence arrivals
// and drain them in order, like the other engines.
func TestShardedOutOfSequence(t *testing.T) {
	set := spc.NewSet()
	e := newTestSharded(set)
	var rs []*Recv
	for i := 0; i < 3; i++ {
		r := &Recv{Source: 2, Tag: 1, Buf: make([]byte, 4)}
		rs = append(rs, r)
		e.PostRecv(r)
	}
	// Deliver 2, 1, 0: the first two buffer, the third drains all.
	if comps := e.Deliver(pkt(2, 1, 2, []byte("c")), nil); len(comps) != 0 {
		t.Fatal("out-of-sequence packet matched early")
	}
	if comps := e.Deliver(pkt(2, 1, 1, []byte("b")), nil); len(comps) != 0 {
		t.Fatal("out-of-sequence packet matched early")
	}
	if e.OOSBuffered() != 2 {
		t.Fatalf("OOSBuffered = %d, want 2", e.OOSBuffered())
	}
	comps := e.Deliver(pkt(2, 1, 0, []byte("a")), nil)
	if len(comps) != 3 {
		t.Fatalf("drain produced %d completions, want 3", len(comps))
	}
	for i, c := range comps {
		if c.Recv != rs[i] {
			t.Fatalf("completion %d went to the wrong recv (FIFO violated)", i)
		}
	}
	if e.OOSBuffered() != 0 {
		t.Fatalf("OOSBuffered = %d after drain", e.OOSBuffered())
	}
	if set.Get(spc.OutOfSequence) != 2 {
		t.Fatalf("OutOfSequence = %d, want 2", set.Get(spc.OutOfSequence))
	}
}

// TestSeqWraparound is the ISSUE 7 wraparound regression test: seed the
// per-peer expected sequence near 2^32 on each engine and deliver a run of
// packets crossing the wrap. Serial (modular) arithmetic must keep them in
// order; plain comparisons would misclassify post-wrap packets as stale
// duplicates and drop them.
func TestSeqWraparound(t *testing.T) {
	const start = math.MaxUint32 - 2 // three pre-wrap seqs, then 0, 1, ...
	engines := map[string]Matcher{
		"engine": newTestEngine(spc.NewSet()),
		"hash":   NewHashEngine(1, 8, hw.Fast().Scaled(), NopMeter{}, spc.NewSet()),
		"sharded": func() Matcher {
			e := newTestSharded(spc.NewSet())
			return e
		}(),
	}
	seed := map[string]func(src int32, v uint32){
		"engine":  engines["engine"].(*Engine).SeedNextSeq,
		"hash":    engines["hash"].(*HashEngine).SeedNextSeq,
		"sharded": engines["sharded"].(*Sharded).SeedNextSeq,
	}
	for name, e := range engines {
		seed[name](7, start)
		const n = 6 // crosses the wrap after 3 deliveries
		for i := 0; i < n; i++ {
			r := &Recv{Source: 7, Tag: 1, Buf: make([]byte, 4)}
			if _, ok := e.PostRecv(r); ok {
				t.Fatalf("%s: recv matched before delivery", name)
			}
		}
		for i := 0; i < n; i++ {
			seq := uint32(start + uint32(i)) // wraps through MaxUint32 to 0, 1, 2
			comps := e.Deliver(pkt(7, 1, seq, []byte{byte(i)}), nil)
			if len(comps) != 1 {
				t.Fatalf("%s: packet seq %d (i=%d) produced %d completions, want 1 (dropped across wrap?)",
					name, seq, i, len(comps))
			}
		}
		if e.PostedLen() != 0 || e.UnexpectedLen() != 0 || e.OOSBuffered() != 0 {
			t.Fatalf("%s: queues not empty after wrap crossing", name)
		}
	}
}

// TestSeqWraparoundOutOfOrder drives the wrap boundary with REORDERED
// arrivals: the pre-wrap packet arrives after the post-wrap ones, which
// must buffer (not drop) under serial arithmetic.
func TestSeqWraparoundOutOfOrder(t *testing.T) {
	set := spc.NewSet()
	e := newTestSharded(set)
	e.SeedNextSeq(3, math.MaxUint32)
	var rs []*Recv
	for i := 0; i < 3; i++ {
		r := &Recv{Source: 3, Tag: 2, Buf: make([]byte, 4)}
		rs = append(rs, r)
		e.PostRecv(r)
	}
	// Post-wrap seqs 0 and 1 arrive before pre-wrap MaxUint32.
	if comps := e.Deliver(pkt(3, 2, 0, []byte("b")), nil); len(comps) != 0 {
		t.Fatal("post-wrap packet matched before the pre-wrap one")
	}
	if comps := e.Deliver(pkt(3, 2, 1, []byte("c")), nil); len(comps) != 0 {
		t.Fatal("post-wrap packet matched before the pre-wrap one")
	}
	if set.Get(spc.DuplicateSequences) != 0 {
		t.Fatal("post-wrap packets misclassified as duplicates (plain comparison bug)")
	}
	comps := e.Deliver(pkt(3, 2, math.MaxUint32, []byte("a")), nil)
	if len(comps) != 3 {
		t.Fatalf("wrap drain produced %d completions, want 3", len(comps))
	}
	for i, c := range comps {
		if c.Recv != rs[i] {
			t.Fatalf("completion %d out of order across wrap", i)
		}
	}
	// A true duplicate of an already-delivered seq must still be dropped.
	if comps := e.Deliver(pkt(3, 2, math.MaxUint32, []byte("dup")), nil); len(comps) != 0 {
		t.Fatal("stale pre-wrap duplicate matched")
	}
	if set.Get(spc.DuplicateSequences) != 1 {
		t.Fatalf("DuplicateSequences = %d, want 1", set.Get(spc.DuplicateSequences))
	}
}

func TestShardOfStable(t *testing.T) {
	e := newTestSharded(nil)
	for src := int32(0); src < 16; src++ {
		for tag := int32(0); tag < 16; tag++ {
			s1 := e.ShardOf(src, tag)
			s2 := e.ShardOf(src, tag)
			if s1 != s2 || s1 < 0 || s1 >= e.NumShards() {
				t.Fatalf("ShardOf(%d,%d) = %d, %d", src, tag, s1, s2)
			}
		}
	}
}

// TestShardedConcurrentStress is the -race stress case from ISSUE 7:
// concurrent deliverers (one per source, preserving per-source seq order),
// concurrent exact receivers, and a concurrent prober, at GOMAXPROCS >= 8.
// Asserts conservation: every message is consumed by exactly one receive.
func TestShardedConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(prev)
	}
	const (
		sources = 8
		perSrc  = 2000
	)
	e := NewSharded(1, sources, 8, hw.Fast().Scaled(), NopMeter{}, spc.NewSet())

	var wg sync.WaitGroup
	completed := make([]int, sources) // per-source completions via Deliver
	var compMu sync.Mutex

	// Receivers: each posts perSrc exact receives for its source, counting
	// immediate (unexpected-queue) matches.
	recvDone := make([]chan int, sources)
	for s := 0; s < sources; s++ {
		recvDone[s] = make(chan int, 1)
		wg.Add(1)
		go func(src int32, done chan int) {
			defer wg.Done()
			immediate := 0
			for i := 0; i < perSrc; i++ {
				r := &Recv{Source: src, Tag: src % 4, Buf: make([]byte, 4)}
				if _, ok := e.PostRecv(r); ok {
					immediate++
				}
			}
			done <- immediate
		}(int32(s), recvDone[s])
	}
	// Deliverers: one per source, sequential seqs (the per-source stream).
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(src int32) {
			defer wg.Done()
			n := 0
			for i := 0; i < perSrc; i++ {
				comps := e.Deliver(pkt(src, src%4, uint32(i), []byte{1}), nil)
				n += len(comps)
			}
			compMu.Lock()
			completed[src] += n
			compMu.Unlock()
		}(int32(s))
	}
	// A prober hammering wildcard and exact probes concurrently.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Probe(AnySource, AnyTag)
				e.Probe(3, 3)
				e.PostedLen()
				e.UnexpectedLen()
			}
		}
	}()
	// Wait for receivers and deliverers (not the prober) to finish.
	done := make(chan struct{})
	go func() {
		for s := 0; s < sources; s++ {
			im := <-recvDone[s]
			compMu.Lock()
			completed[s] += im
			compMu.Unlock()
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()

	total := 0
	for s, n := range completed {
		total += n
		if n != perSrc {
			t.Errorf("source %d: %d completions, want %d", s, n, perSrc)
		}
	}
	if total != sources*perSrc {
		t.Fatalf("total completions %d, want %d", total, sources*perSrc)
	}
	if e.PostedLen() != 0 || e.UnexpectedLen() != 0 || e.OOSBuffered() != 0 {
		t.Fatalf("queues not empty: posted=%d unexp=%d oos=%d",
			e.PostedLen(), e.UnexpectedLen(), e.OOSBuffered())
	}
}
