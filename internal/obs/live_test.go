package obs

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/telemetry"
)

// Every endpoint must stay race-free and responsive while the world it
// observes is mid-run: goroutines hammer all handlers concurrently with
// live send/recv traffic. Run under -race this is the introspection
// layer's thread-safety proof.
func TestEndpointsUnderLiveTraffic(t *testing.T) {
	w, err := core.NewWorld(hw.Fast(), 2, core.Options{
		NumInstances:   2,
		ThreadLevel:    core.ThreadMultiple,
		FlightCapacity: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src := Source{
		Stats: func() []telemetry.ProcStats {
			var out []telemetry.ProcStats
			for _, p := range w.LocalProcs() {
				out = append(out, p.TelemetryStats())
			}
			return out
		},
		Queues: func() []flight.QueueSnapshot {
			var out []flight.QueueSnapshot
			for _, p := range w.LocalProcs() {
				out = append(out, p.QueueSnapshot())
			}
			return out
		},
		Flight: func() []flight.RankRecord {
			var out []flight.RankRecord
			for _, p := range w.LocalProcs() {
				out = append(out, p.FlightRecord())
			}
			return out
		},
		Ready: func() (bool, string) { return true, "" },
	}
	s, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	stopWatchdog := w.StartWatchdog(core.WatchdogConfig{
		Interval: time.Millisecond,
		OnDump:   func(flight.Dump) {},
	})
	defer stopWatchdog()

	const iters = 200
	var traffic sync.WaitGroup
	traffic.Add(2)
	go func() {
		defer traffic.Done()
		th := w.Proc(0).NewThread()
		c := w.Proc(0).CommWorld()
		buf := []byte("payload")
		for i := 0; i < iters; i++ {
			if err := c.Send(th, 1, int32(i%8), buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer traffic.Done()
		th := w.Proc(1).NewThread()
		c := w.Proc(1).CommWorld()
		buf := make([]byte, 16)
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(th, 0, int32(i%8), buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	stop := make(chan struct{})
	var hammer sync.WaitGroup
	paths := []string{"/healthz", "/readyz", "/metrics", "/spc", "/trace",
		"/debug/queues", "/debug/flight"}
	for _, path := range paths {
		hammer.Add(1)
		go func(url string) {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(base + path)
	}

	traffic.Wait()
	close(stop)
	hammer.Wait()
}
