// Package obs is the live observability endpoint: a small HTTP server a
// benchmark process attaches to its running world, serving the telemetry
// layer's exporters over the wire instead of only into files at exit.
//
//	/metrics       Prometheus text format (SPC attribution + histograms)
//	/spc           human-readable counter attribution dump
//	/trace         Chrome trace-event JSON snapshot of the retained events
//	/healthz       liveness probe (the process is up and serving)
//	/readyz        readiness probe (the world is constructed and connected)
//	/debug/queues  runtime introspection: posted/unexpected depths, windows
//	/debug/flight  merged flight-recorder rings as JSON
//	/debug/latency per-rank critical-path attribution: stage summaries + exemplars
//	/debug/pprof   the standard Go profiler endpoints
//
// The server pulls through a Source of callbacks so it always serves the
// current state of a run in flight; it takes no locks of its own beyond
// what the nil-safe snapshot paths already take.
package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/telemetry"
)

// EnableContentionProfiling turns on the Go runtime's own lock-contention
// instrumentation so the /debug/pprof/mutex and /debug/pprof/block profiles
// served by this endpoint actually populate: mutexFraction samples 1/n of
// contended mutex events (runtime.SetMutexProfileFraction) and blockRateNs
// records blocking events lasting at least that many nanoseconds
// (runtime.SetBlockProfileRate). Zero values pick sensible defaults (1 and
// 1µs). Returns a restore func that puts both rates back; profiling the
// runtime's own locks costs a few percent, so benchmarks only enable it
// behind an explicit flag.
func EnableContentionProfiling(mutexFraction, blockRateNs int) (restore func()) {
	if mutexFraction <= 0 {
		mutexFraction = 1
	}
	if blockRateNs <= 0 {
		blockRateNs = int(time.Microsecond)
	}
	prev := runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNs)
	return func() {
		runtime.SetMutexProfileFraction(prev)
		runtime.SetBlockProfileRate(0)
	}
}

// Source supplies the live data the endpoints render. Callbacks may be nil;
// the corresponding endpoint then serves an empty document. They are called
// on every request, concurrently with the run.
type Source struct {
	// Stats returns the current observability snapshot of every local proc.
	Stats func() []telemetry.ProcStats
	// Events returns the current trace shard of every local proc.
	Events func() []telemetry.RankEvents
	// Queues returns the runtime introspection snapshot of every local proc
	// (posted/unexpected depths, reliability windows, CRI levels) — served
	// at /debug/queues.
	Queues func() []flight.QueueSnapshot
	// Flight returns the merged flight-recorder record of every local proc —
	// served at /debug/flight.
	Flight func() []flight.RankRecord
	// Latency returns the critical-path attribution dump of every local proc
	// (per-stage summaries + tail exemplars) — served at /debug/latency.
	Latency func() []latency.RankDump
	// Ready reports run readiness for /readyz: false with a reason while the
	// world is still being constructed (handshake, clock sync), true once
	// communication can proceed. Nil means always ready — right for
	// single-process runs with no startup negotiation.
	Ready func() (bool, string)
	// Info labels the run (transport, caps, design, ...) — exported as the
	// mpi_build_info gauge on /metrics.
	Info map[string]string
}

// A Holder late-binds a Source so the HTTP endpoint can start serving
// before the world it describes exists: the benchmark binds addr, the
// endpoint answers /healthz immediately and 503s /readyz, and once the
// world's OnWorld hook fires the holder is bound and marked ready. All
// methods are safe for concurrent use with requests in flight.
type Holder struct {
	mu     sync.RWMutex
	src    Source
	ready  bool
	reason string
}

// NewHolder returns a holder that reports not-ready with the given reason
// until SetReady. Info labels /metrics from the start (build metadata is
// known before the world is).
func NewHolder(info map[string]string, notReadyReason string) *Holder {
	if notReadyReason == "" {
		notReadyReason = "world not constructed"
	}
	return &Holder{reason: notReadyReason, src: Source{Info: info}}
}

// Bind installs the live source. Info set at construction is kept unless
// the bound source carries its own.
func (h *Holder) Bind(src Source) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if src.Info == nil {
		src.Info = h.src.Info
	}
	h.src = src
}

// SetReady flips /readyz to 200. Call once startup negotiation (rank
// handshake, clock sync) has completed and communication can proceed.
func (h *Holder) SetReady() {
	h.mu.Lock()
	h.ready = true
	h.mu.Unlock()
}

// Source returns a Source whose callbacks delegate through the holder, so
// it can be handed to Serve (or Outputs.Bind) before Bind has run.
func (h *Holder) Source() Source {
	get := func() Source {
		h.mu.RLock()
		defer h.mu.RUnlock()
		return h.src
	}
	return Source{
		Stats: func() []telemetry.ProcStats {
			if s := get(); s.Stats != nil {
				return s.Stats()
			}
			return nil
		},
		Events: func() []telemetry.RankEvents {
			if s := get(); s.Events != nil {
				return s.Events()
			}
			return nil
		},
		Queues: func() []flight.QueueSnapshot {
			if s := get(); s.Queues != nil {
				return s.Queues()
			}
			return nil
		},
		Flight: func() []flight.RankRecord {
			if s := get(); s.Flight != nil {
				return s.Flight()
			}
			return nil
		},
		Latency: func() []latency.RankDump {
			if s := get(); s.Latency != nil {
				return s.Latency()
			}
			return nil
		},
		Ready: func() (bool, string) {
			h.mu.RLock()
			defer h.mu.RUnlock()
			return h.ready, h.reason
		},
		Info: get().Info,
	}
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port)
// and serves the observability endpoints in the background until Close.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	// An explicit mux: the pprof handlers are registered here rather than
	// relying on net/http's DefaultServeMux side-effect registration, so
	// nothing else a process imports can leak handlers onto this port.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if src.Ready != nil {
			if ok, reason := src.Ready(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "not ready:", reason)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/queues", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var qs []flight.QueueSnapshot
		if src.Queues != nil {
			qs = src.Queues()
		}
		_ = flight.WriteSnapshots(w, qs)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var recs []flight.RankRecord
		if src.Flight != nil {
			recs = src.Flight()
		}
		_ = flight.WriteRecords(w, recs)
	})
	mux.HandleFunc("/debug/latency", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var dumps []latency.RankDump
		if src.Latency != nil {
			dumps = src.Latency()
		}
		_ = latency.WriteDumps(w, dumps)
	})
	// Uptime resets to zero when the process restarts, which is how a
	// scraper that only ever sees the endpoint (not the supervisor) detects
	// a rank restart between two polls: the gauge went backwards.
	started := time.Now()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP mpi_uptime_seconds Seconds since this rank's observability endpoint started (resets on rank restart).\n"+
			"# TYPE mpi_uptime_seconds gauge\nmpi_uptime_seconds{rank=%q} %.3f\n",
			rankLabel(src.Info), time.Since(started).Seconds())
		if len(src.Info) > 0 {
			_ = telemetry.WritePrometheusInfo(w, "mpi_build_info", src.Info)
		}
		if src.Stats != nil {
			_ = telemetry.WritePrometheus(w, src.Stats()...)
		}
	})
	mux.HandleFunc("/spc", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if src.Stats == nil {
			return
		}
		for _, ps := range src.Stats() {
			_ = ps.WriteText(w)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var evs []telemetry.RankEvents
		if src.Events != nil {
			evs = src.Events()
		}
		_ = telemetry.WriteChromeTraceRanks(w, evs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err // the listener closed under us at shutdown
		}
	}()
	return s, nil
}

// rankLabel extracts the serving process's world rank from the run
// metadata for the series that the endpoint itself originates (uptime).
// The commands put their -rank flag into Info["rank"]; a process that
// never set one is a single-process run, rank 0 — the rank-label contract
// aggregation depends on (every series carries a rank, so merged
// expositions never collide).
func rankLabel(info map[string]string) string {
	if r, ok := info["rank"]; ok && r != "" {
		return r
	}
	return "0"
}

// Addr returns the bound address (resolves ":0" to the chosen port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. In-flight requests are cut off —
// appropriate for benchmark teardown, where nothing downstream waits.
func (s *Server) Close() error { return s.srv.Close() }
