package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	var residual spc.Snapshot
	residual[spc.MessagesSent] = 12
	stats := telemetry.ProcStats{Rank: 0, Residual: residual}
	stats.Process = stats.MergeChildren()
	src := Source{
		Stats: func() []telemetry.ProcStats { return []telemetry.ProcStats{stats} },
		Events: func() []telemetry.RankEvents {
			return []telemetry.RankEvents{{Rank: 0, Events: []trace.Event{
				{TS: 100, Seq: 1, Kind: trace.KindSendInject, CRI: 0, Arg0: 1},
			}}}
		},
		Info: map[string]string{"transport": "sim", "design": "stock"},
	}
	s, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if body, _ := get(t, base+"/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}

	metrics, ct := get(t, base+"/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content-type = %q", ct)
	}
	for _, want := range []string{
		`mpi_build_info{design="stock",transport="sim"} 1`,
		`mpi_spc_messages_sent{rank="0",scope="process"} 12`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	spcText, _ := get(t, base+"/spc")
	if !strings.Contains(spcText, "rank 0 process totals:") || !strings.Contains(spcText, "messages_sent") {
		t.Errorf("/spc output unexpected:\n%s", spcText)
	}

	traceJSON, ct := get(t, base+"/trace")
	if ct != "application/json" {
		t.Errorf("trace content-type = %q", ct)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(traceJSON), &parsed); err != nil {
		t.Fatalf("/trace is not valid JSON: %v\n%s", err, traceJSON)
	}
	if len(parsed) == 0 {
		t.Error("/trace served no events")
	}

	if body, _ := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServerNilSource(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Source{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	for _, path := range []string{"/healthz", "/metrics", "/spc", "/trace"} {
		get(t, base+path) // must not panic or error with nil callbacks
	}
}
