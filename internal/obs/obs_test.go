package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/flight"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	var residual spc.Snapshot
	residual[spc.MessagesSent] = 12
	stats := telemetry.ProcStats{Rank: 0, Residual: residual}
	stats.Process = stats.MergeChildren()
	src := Source{
		Stats: func() []telemetry.ProcStats { return []telemetry.ProcStats{stats} },
		Events: func() []telemetry.RankEvents {
			return []telemetry.RankEvents{{Rank: 0, Events: []trace.Event{
				{TS: 100, Seq: 1, Kind: trace.KindSendInject, CRI: 0, Arg0: 1},
			}}}
		},
		Info: map[string]string{"transport": "sim", "design": "stock"},
	}
	s, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if body, _ := get(t, base+"/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}

	metrics, ct := get(t, base+"/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content-type = %q", ct)
	}
	for _, want := range []string{
		`mpi_build_info{design="stock",transport="sim"} 1`,
		`mpi_spc_messages_sent{rank="0",scope="process"} 12`,
		"# TYPE mpi_uptime_seconds gauge",
		`mpi_uptime_seconds{rank="0"} `,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	spcText, _ := get(t, base+"/spc")
	if !strings.Contains(spcText, "rank 0 process totals:") || !strings.Contains(spcText, "messages_sent") {
		t.Errorf("/spc output unexpected:\n%s", spcText)
	}

	traceJSON, ct := get(t, base+"/trace")
	if ct != "application/json" {
		t.Errorf("trace content-type = %q", ct)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(traceJSON), &parsed); err != nil {
		t.Fatalf("/trace is not valid JSON: %v\n%s", err, traceJSON)
	}
	if len(parsed) == 0 {
		t.Error("/trace served no events")
	}

	if body, _ := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServerNilSource(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Source{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	for _, path := range []string{"/healthz", "/metrics", "/spc", "/trace",
		"/readyz", "/debug/queues", "/debug/flight"} {
		get(t, base+path) // must not panic or error with nil callbacks
	}
}

// A holder-backed server must 503 /readyz until the world binds, then serve
// the introspection endpoints from the bound source.
func TestHolderReadinessAndDebugEndpoints(t *testing.T) {
	h := NewHolder(map[string]string{"transport": "tcp"}, "waiting for rank handshake")
	s, err := Serve("127.0.0.1:0", h.Source())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before bind: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "waiting for rank handshake") {
		t.Fatalf("/readyz reason missing: %q", body)
	}
	// Liveness and the debug endpoints must answer even while not ready.
	get(t, base+"/healthz")
	if qs, ct := get(t, base+"/debug/queues"); ct != "application/json" || strings.TrimSpace(qs) != "[]" {
		t.Fatalf("/debug/queues before bind = %q (%s)", qs, ct)
	}

	h.Bind(Source{
		Queues: func() []flight.QueueSnapshot {
			return []flight.QueueSnapshot{{Rank: 2, Comms: []flight.CommQueues{{Comm: 0, Posted: 3, Unexpected: 1}}}}
		},
		Flight: func() []flight.RankRecord {
			return []flight.RankRecord{{Rank: 2, Rings: []string{"rank2/t0"},
				Events: []flight.Event{{TS: 10, Seq: 1, Kind: flight.KindSendPost, A0: 1}}}}
		},
	})
	h.SetReady()

	if body, _ := get(t, base+"/readyz"); body != "ready\n" {
		t.Fatalf("/readyz after SetReady = %q", body)
	}
	qs, _ := get(t, base+"/debug/queues")
	if !strings.Contains(qs, `"posted": 3`) || !strings.Contains(qs, `"unexpected": 1`) {
		t.Fatalf("/debug/queues = %s", qs)
	}
	fl, _ := get(t, base+"/debug/flight")
	if !strings.Contains(fl, `"send_post"`) || !strings.Contains(fl, `"rank2/t0"`) {
		t.Fatalf("/debug/flight = %s", fl)
	}
	// Info provided at construction still labels /metrics after the bind.
	if metrics, _ := get(t, base+"/metrics"); !strings.Contains(metrics, `transport="tcp"`) {
		t.Fatalf("/metrics lost holder info:\n%s", metrics)
	}
}

// The uptime gauge carries the rank from the run metadata (the rank-label
// contract: distributed ranks set Info["rank"], single-process runs get 0).
func TestUptimeRankLabel(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Source{Info: map[string]string{"rank": "3"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	metrics, _ := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(metrics, `mpi_uptime_seconds{rank="3"} `) {
		t.Fatalf("/metrics uptime not rank-labeled:\n%s", metrics)
	}
}
