package obs

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/telemetry"
)

// Outputs owns a run's file-backed telemetry artifacts — Prometheus
// snapshot, Chrome trace, sampler CSV, raw trace shards — and guarantees
// each is written exactly once, whether the run completes normally or a
// signal cuts it short mid-flight. Paths left empty are skipped.
//
// The artifacts are pulled through the same Source callbacks the live HTTP
// endpoint serves, so an interrupted run flushes whatever partial state the
// world has accumulated so far rather than nothing.
type Outputs struct {
	// MetricsPath receives a Prometheus text-format snapshot.
	MetricsPath string
	// TracePath receives the merged clock-corrected Chrome trace JSON.
	TracePath string
	// SamplesPath receives the background sampler time series as CSV.
	SamplesPath string
	// ShardPath receives one raw trace-shard JSON per local rank (input to
	// cmd/tracemerge). With more than one local rank, "-rank<N>" is
	// inserted before the path's extension.
	ShardPath string
	// FlightPath receives the flight-record exit dump: every local rank's
	// merged flight-recorder ring plus the final queue-introspection
	// snapshot, as one JSON document. Written on normal exit, on
	// SIGINT/SIGTERM via FlushOnSignal, and on panic via DumpOnPanic.
	FlightPath string
	// LatencyPath receives the critical-path attribution exit dump: every
	// local rank's per-stage summaries and tail exemplars as one JSON
	// document (the file form of /debug/latency).
	LatencyPath string
	// ProfRank names the rank whose pid group receives the phase-breakdown
	// counter track in the Chrome trace, when the bound sampler carries
	// profiler snapshots (the sampler observes exactly one proc, so its
	// series belongs to exactly one rank).
	ProfRank int
	// Info labels the Prometheus snapshot (mpi_build_info).
	Info map[string]string

	mu      sync.Mutex
	src     Source
	sampler *telemetry.Sampler
	once    sync.Once
	err     error
}

// Bind points the outputs at a run's live data source. Called from the
// benchmark's OnWorld hook.
func (o *Outputs) Bind(src Source) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.src = src
}

// BindSampler hands the outputs the background sampler so a flush can stop
// it and write the partial time series. Called from the OnSampler hook.
func (o *Outputs) BindSampler(s *telemetry.Sampler) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sampler = s
}

// Active reports whether any artifact path is configured.
func (o *Outputs) Active() bool {
	return o.MetricsPath != "" || o.TracePath != "" || o.SamplesPath != "" ||
		o.ShardPath != "" || o.FlightPath != "" || o.LatencyPath != ""
}

// Flush writes every configured artifact exactly once; subsequent calls
// return the first call's result.
func (o *Outputs) Flush() error {
	o.once.Do(func() { o.err = o.flush() })
	return o.err
}

func (o *Outputs) flush() error {
	o.mu.Lock()
	src, smp := o.src, o.sampler
	o.mu.Unlock()

	if o.MetricsPath != "" {
		err := writeFile(o.MetricsPath, func(w io.Writer) error {
			if len(o.Info) > 0 {
				if err := telemetry.WritePrometheusInfo(w, "mpi_build_info", o.Info); err != nil {
					return err
				}
			}
			if src.Stats == nil {
				return nil
			}
			return telemetry.WritePrometheus(w, src.Stats()...)
		})
		if err != nil {
			return err
		}
	}

	var events []telemetry.RankEvents
	if src.Events != nil && (o.TracePath != "" || o.ShardPath != "") {
		events = src.Events()
	}
	if smp != nil && o.TracePath != "" {
		// Fold the sampler's profiler series into the trace as a counter
		// track on the sampled rank's pid group.
		smp.Stop()
		if pts := telemetry.PhasePointsFromSamples(smp.Samples()); len(pts) > 0 {
			for i := range events {
				if events[i].Rank == o.ProfRank {
					events[i].Phases = pts
				}
			}
		}
	}
	if o.TracePath != "" {
		err := writeFile(o.TracePath, func(w io.Writer) error {
			return telemetry.WriteChromeTraceRanks(w, events)
		})
		if err != nil {
			return err
		}
	}
	if o.ShardPath != "" {
		for _, re := range events {
			re := re
			err := writeFile(ShardPathForRank(o.ShardPath, re.Rank, len(events) > 1), func(w io.Writer) error {
				return telemetry.WriteTraceShard(w, re)
			})
			if err != nil {
				return err
			}
		}
	}

	if o.FlightPath != "" {
		var dump flight.ExitDump
		if src.Queues != nil {
			dump.Queues = src.Queues()
		}
		if src.Flight != nil {
			dump.Flight = src.Flight()
		}
		err := writeFile(o.FlightPath, func(w io.Writer) error {
			return flight.WriteExitDump(w, dump)
		})
		if err != nil {
			return err
		}
	}

	if o.LatencyPath != "" {
		var dumps []latency.RankDump
		if src.Latency != nil {
			dumps = src.Latency()
		}
		err := writeFile(o.LatencyPath, func(w io.Writer) error {
			return latency.WriteDumps(w, dumps)
		})
		if err != nil {
			return err
		}
	}

	if o.SamplesPath != "" && smp != nil {
		smp.Stop()
		err := writeFile(o.SamplesPath, func(w io.Writer) error {
			return telemetry.WriteSamplesCSV(w, smp.Samples())
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardPathForRank names one rank's shard file: the path itself when the
// process hosts a single rank, otherwise "-rank<N>" inserted before the
// extension (trace.json -> trace-rank1.json).
func ShardPathForRank(path string, rank int, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s-rank%d%s", strings.TrimSuffix(path, ext), rank, ext)
}

// FlushOnSignal installs a SIGINT/SIGTERM handler that flushes the outputs
// and exits with the conventional 128+signo status. The returned stop
// function uninstalls the handler; call it once the run has completed and
// the normal-exit path owns flushing again.
func (o *Outputs) FlushOnSignal() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "obs: %v: flushing telemetry outputs\n", sig)
		if err := o.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "obs: flush:", err)
		}
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// DumpOnPanic flushes the outputs when the calling goroutine is unwinding
// from a panic, then re-panics so the crash still reports normally. Use as
// `defer outputs.DumpOnPanic()` in main: a crash mid-benchmark then leaves
// the flight record and queue snapshot on disk for triage instead of only
// a stack trace.
func (o *Outputs) DumpOnPanic() {
	r := recover()
	if r == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "obs: panic: %v: flushing telemetry outputs\n", r)
	if err := o.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "obs: flush:", err)
	}
	panic(r)
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
