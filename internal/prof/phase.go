package prof

import "sync/atomic"

// Phase labels one exclusive slice of a thread's wall time — the paper's
// time-breakdown categories. At any instant a thread is in exactly one
// phase; nesting is handled by a small explicit stack so an inner section
// (say lock-wait inside send) suspends the outer one rather than
// double-counting.
type Phase uint8

const (
	// PhaseApp is everything outside the runtime: the benchmark's own loop
	// bookkeeping, completion spinning between progress calls, idle time.
	PhaseApp Phase = iota
	// PhaseSend is the send path (Isend) excluding its nested sections.
	PhaseSend
	// PhaseLockWait is time blocked on a contended runtime lock (instance,
	// matching, big-lock, reliability window).
	PhaseLockWait
	// PhaseMatch is time inside a matching engine's critical section.
	PhaseMatch
	// PhaseProgressOwn is progress work on the thread's own turf: the
	// serial engine's full pass, or the dedicated instance in Algorithm 2.
	PhaseProgressOwn
	// PhaseProgressSteal is the round-robin sweep over other threads'
	// instances (Algorithm 2's helper role).
	PhaseProgressSteal
	// PhaseWire is time handing packets to the transport.
	PhaseWire
	// PhaseRetransmit is time inside the reliability layer's sweep.
	PhaseRetransmit

	numPhases
)

// NumPhases is the number of defined phases.
const NumPhases = int(numPhases)

var phaseNames = [...]string{
	PhaseApp:           "app",
	PhaseSend:          "send",
	PhaseLockWait:      "lock_wait",
	PhaseMatch:         "match",
	PhaseProgressOwn:   "progress_own",
	PhaseProgressSteal: "progress_steal",
	PhaseWire:          "wire",
	PhaseRetransmit:    "retransmit",
}

// String returns the phase's snake_case name.
func (ph Phase) String() string {
	if int(ph) >= len(phaseNames) {
		return "phase(?)"
	}
	return phaseNames[ph]
}

// maxNest bounds the phase stack. The deepest real nesting is three
// (progress → match → lock-wait); eight leaves slack. Deeper sections
// still balance Begin/End correctly, they just stop re-slicing.
const maxNest = 8

// ThreadClock decomposes one thread's wall time into exclusive phases.
// Begin/End/Stop must be called only by the owning thread; Snapshot may be
// read concurrently (the per-phase totals are atomics). A nil *ThreadClock
// ignores everything — the disabled path is one branch per call.
type ThreadClock struct {
	label   string
	startNs int64
	stopped atomic.Bool
	wallNs  atomic.Int64
	ns      [numPhases]atomic.Int64

	// Single-writer state, owned by the thread: the open phase, when it
	// started, and the suspended outer phases.
	cur      Phase
	curSince int64
	stack    [maxNest]Phase
	depth    int
}

// Begin suspends the current phase and enters ph.
func (c *ThreadClock) Begin(ph Phase) {
	if c == nil {
		return
	}
	now := nowNs()
	c.ns[c.cur].Add(now - c.curSince)
	c.curSince = now
	if c.depth < maxNest {
		c.stack[c.depth] = c.cur
	}
	c.depth++
	c.cur = ph
}

// End closes the innermost open section and resumes the enclosing phase.
func (c *ThreadClock) End() {
	if c == nil || c.depth == 0 {
		return
	}
	now := nowNs()
	c.ns[c.cur].Add(now - c.curSince)
	c.curSince = now
	c.depth--
	if c.depth < maxNest {
		c.cur = c.stack[c.depth]
	} else {
		c.cur = PhaseApp
	}
}

// Stop flushes the open phase and freezes the wall time. Idempotent; call
// when the thread's benchmark work is done.
func (c *ThreadClock) Stop() {
	if c == nil || !c.stopped.CompareAndSwap(false, true) {
		return
	}
	now := nowNs()
	c.ns[c.cur].Add(now - c.curSince)
	c.curSince = now
	c.wallNs.Store(now - c.startNs)
}

func (c *ThreadClock) snapshot() ThreadSnapshot {
	sn := ThreadSnapshot{Label: c.label, PhaseNs: make(map[string]int64, NumPhases)}
	if c.stopped.Load() {
		sn.WallNs = c.wallNs.Load()
	} else {
		sn.WallNs = nowNs() - c.startNs
	}
	for i := range c.ns {
		v := c.ns[i].Load()
		sn.Phases[i] = v
		if v != 0 {
			sn.PhaseNs[Phase(i).String()] = v
		}
	}
	return sn
}

// PhaseTotals is an aggregate per-phase time vector (nanoseconds — wall or
// virtual). The virtual-time model (internal/simnet) accumulates one of
// these per simulated thread with plain adds; the real runtime sums them
// out of ThreadSnapshots.
type PhaseTotals [NumPhases]int64

// Add accumulates ns into phase ph.
func (t *PhaseTotals) Add(ph Phase, ns int64) { t[ph] += ns }

// Merge adds o element-wise.
func (t *PhaseTotals) Merge(o PhaseTotals) {
	for i, v := range o {
		t[i] += v
	}
}

// Sum returns the total across all phases.
func (t PhaseTotals) Sum() int64 {
	var s int64
	for _, v := range t {
		s += v
	}
	return s
}

// Map returns the non-zero phases keyed by name.
func (t PhaseTotals) Map() map[string]int64 {
	m := make(map[string]int64, NumPhases)
	for i, v := range t {
		if v != 0 {
			m[Phase(i).String()] = v
		}
	}
	return m
}
