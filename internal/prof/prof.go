// Package prof is the contention-and-phase profiler: the measurement layer
// behind the paper's attribution argument. THREAD_MULTIPLE does not collapse
// because "locks are slow" in the abstract — it collapses because threads
// spend their wall time waiting on a handful of nameable serialization
// points (the CRI instance lock, the serial progress lock, the matching
// section, the reliability window). This package gives each of those points
// a Site that records acquisitions, contended acquisitions, total/max wait,
// and hold time, attributed per CRI and per communicator, plus a per-thread
// phase clock that decomposes each benchmark thread's wall time into
// exclusive phases, so "where did the time go" is a query, not a guess.
//
// Everything is nil-safe in the repo's usual way: a nil *Profiler hands out
// nil Sites and nil ThreadClocks, and every record method on a nil receiver
// is a single predictable branch, so instrumented hot paths cost ~1 ns when
// profiling is off.
package prof

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// base anchors the package's monotonic nanosecond clock. time.Since on a
// monotonic time.Time compiles to one nanotime call, which is the cheapest
// portable clock read Go offers.
var base = time.Now()

func nowNs() int64 { return int64(time.Since(base)) }

// Site is one named lock site's statistics. All counters are atomics; a
// Site is shared by every thread that touches its lock. A nil *Site ignores
// all records.
type Site struct {
	name string
	cri  int    // owning instance index, or -1 when not instance-scoped
	comm uint32 // owning communicator id, or 0 when not communicator-scoped

	acquisitions atomic.Int64
	contended    atomic.Int64
	tryFails     atomic.Int64
	waitNs       atomic.Int64
	maxWaitNs    atomic.Int64
	holdNs       atomic.Int64
}

// Name returns the site's registered name.
func (s *Site) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Site) recordAcquire() {
	if s == nil {
		return
	}
	s.acquisitions.Add(1)
}

func (s *Site) recordTryFail() {
	if s == nil {
		return
	}
	s.tryFails.Add(1)
}

// recordWait records one contended acquisition that blocked for d.
func (s *Site) recordWait(d int64) {
	if s == nil {
		return
	}
	s.acquisitions.Add(1)
	s.contended.Add(1)
	s.waitNs.Add(d)
	for {
		cur := s.maxWaitNs.Load()
		if d <= cur || s.maxWaitNs.CompareAndSwap(cur, d) {
			return
		}
	}
}

func (s *Site) recordHold(d int64) {
	if s == nil {
		return
	}
	s.holdNs.Add(d)
}

// Mutex is a drop-in sync.Mutex wrapper that attributes contention to a
// Site. The zero value is a plain unprofiled mutex; Bind attaches a site
// during setup, before the lock is shared between threads. With a nil site
// every extra path is one branch.
type Mutex struct {
	mu   sync.Mutex
	site *Site
	// heldSince is written after acquiring and read in Unlock — both under
	// the mutex, so plain (non-atomic) access is race-free.
	heldSince int64
}

// Bind attaches the site statistics. Call during setup only.
func (m *Mutex) Bind(s *Site) { m.site = s }

// Lock acquires the mutex, recording a contended acquisition (with wait
// time) when the try-lock fast path fails.
func (m *Mutex) Lock() { m.LockClocked(nil) }

// LockClocked is Lock, additionally charging any contended wait to a
// lock-wait phase section on c (nil-safe on both receiver and clock).
func (m *Mutex) LockClocked(c *ThreadClock) {
	if m.mu.TryLock() {
		if s := m.site; s != nil {
			s.acquisitions.Add(1)
			m.heldSince = nowNs()
		}
		return
	}
	s := m.site
	if s == nil {
		m.mu.Lock()
		return
	}
	c.Begin(PhaseLockWait)
	t0 := nowNs()
	m.mu.Lock()
	now := nowNs()
	c.End()
	s.recordWait(now - t0)
	m.heldSince = now
}

// TryLockQuiet attempts the mutex recording an acquisition on success but
// NOTHING on failure — for fast paths whose failure is immediately followed
// by a blocking LockClocked (which records the contended acquisition), so a
// miss is not double-counted as a try-lock loss.
func (m *Mutex) TryLockQuiet() bool {
	if m.mu.TryLock() {
		if s := m.site; s != nil {
			s.acquisitions.Add(1)
			m.heldSince = nowNs()
		}
		return true
	}
	return false
}

// TryLock attempts the mutex without blocking, recording the loss on the
// site when it fails.
func (m *Mutex) TryLock() bool {
	if m.mu.TryLock() {
		if s := m.site; s != nil {
			s.acquisitions.Add(1)
			m.heldSince = nowNs()
		}
		return true
	}
	m.site.recordTryFail()
	return false
}

// Unlock releases the mutex, accumulating hold time on the site.
func (m *Mutex) Unlock() {
	if s := m.site; s != nil {
		s.holdNs.Add(nowNs() - m.heldSince)
	}
	m.mu.Unlock()
}

// TryMutex is the serial progress engine's lock shape: acquisition is only
// ever attempted, never blocked on — a loser leaves assuming someone else
// is progressing — so its contention metric is try-lock losses, not wait
// time. The zero value is usable unprofiled.
type TryMutex struct {
	mu        sync.Mutex
	site      *Site
	heldSince int64
}

// Bind attaches the site statistics. Call during setup only.
func (m *TryMutex) Bind(s *Site) { m.site = s }

// TryLock attempts the lock, recording acquisition or loss on the site.
func (m *TryMutex) TryLock() bool {
	if m.mu.TryLock() {
		if s := m.site; s != nil {
			s.acquisitions.Add(1)
			m.heldSince = nowNs()
		}
		return true
	}
	m.site.recordTryFail()
	return false
}

// Unlock releases the lock, accumulating hold time on the site.
func (m *TryMutex) Unlock() {
	if s := m.site; s != nil {
		s.holdNs.Add(nowNs() - m.heldSince)
	}
	m.mu.Unlock()
}

// Profiler is one process's registry of lock sites and thread clocks. A nil
// *Profiler is the disabled state: it hands out nil Sites and clocks, and
// Snapshot returns a zero value.
type Profiler struct {
	mu     sync.Mutex
	sites  []*Site
	clocks []*ThreadClock
}

// New returns an enabled profiler.
func New() *Profiler { return &Profiler{} }

// Enabled reports whether the profiler records anything.
func (p *Profiler) Enabled() bool { return p != nil }

// NewSite registers a lock site. cri is the owning instance index (-1 when
// the lock is not instance-scoped); comm the owning communicator id (0 when
// not communicator-scoped). Returns nil on a nil profiler, so binding is
// unconditional at call sites.
func (p *Profiler) NewSite(name string, cri int, comm uint32) *Site {
	if p == nil {
		return nil
	}
	s := &Site{name: name, cri: cri, comm: comm}
	p.mu.Lock()
	p.sites = append(p.sites, s)
	p.mu.Unlock()
	return s
}

// NewThreadClock registers a phase clock for one thread, started in
// PhaseApp. Returns nil on a nil profiler.
func (p *Profiler) NewThreadClock(label string) *ThreadClock {
	if p == nil {
		return nil
	}
	now := nowNs()
	c := &ThreadClock{label: label, startNs: now, curSince: now}
	p.mu.Lock()
	p.clocks = append(p.clocks, c)
	p.mu.Unlock()
	return c
}

// SiteSnapshot is an immutable copy of one site's statistics.
type SiteSnapshot struct {
	Name         string `json:"name"`
	CRI          int    `json:"cri"`
	Comm         uint32 `json:"comm,omitempty"`
	Acquisitions int64  `json:"acquisitions"`
	Contended    int64  `json:"contended"`
	TryFailures  int64  `json:"try_failures"`
	WaitNs       int64  `json:"wait_ns"`
	MaxWaitNs    int64  `json:"max_wait_ns"`
	HoldNs       int64  `json:"hold_ns"`
}

// ThreadSnapshot is an immutable copy of one thread clock: its wall time
// and the exclusive per-phase decomposition. Phases holds nanoseconds
// indexed by Phase.
type ThreadSnapshot struct {
	Label  string           `json:"label"`
	WallNs int64            `json:"wall_ns"`
	Phases [NumPhases]int64 `json:"-"`
	// PhaseNs mirrors Phases keyed by phase name for JSON consumers.
	PhaseNs map[string]int64 `json:"phase_ns"`
}

// Snapshot is a point-in-time copy of every registered site and clock,
// deterministically ordered (sites by name/cri/comm, threads by label).
type Snapshot struct {
	Sites   []SiteSnapshot   `json:"sites"`
	Threads []ThreadSnapshot `json:"threads"`
}

// Empty reports whether the snapshot carries no data at all.
func (sn Snapshot) Empty() bool { return len(sn.Sites) == 0 && len(sn.Threads) == 0 }

// Snapshot copies the current state of every site and thread clock. Safe to
// call while threads are running: a running clock's wall time is "so far"
// and its open phase section is not yet flushed, so Σphases ≤ wall always
// holds.
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	sites := append([]*Site(nil), p.sites...)
	clocks := append([]*ThreadClock(nil), p.clocks...)
	p.mu.Unlock()
	var sn Snapshot
	for _, s := range sites {
		sn.Sites = append(sn.Sites, SiteSnapshot{
			Name:         s.name,
			CRI:          s.cri,
			Comm:         s.comm,
			Acquisitions: s.acquisitions.Load(),
			Contended:    s.contended.Load(),
			TryFailures:  s.tryFails.Load(),
			WaitNs:       s.waitNs.Load(),
			MaxWaitNs:    s.maxWaitNs.Load(),
			HoldNs:       s.holdNs.Load(),
		})
	}
	sort.Slice(sn.Sites, func(i, j int) bool {
		a, b := sn.Sites[i], sn.Sites[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.CRI != b.CRI {
			return a.CRI < b.CRI
		}
		return a.Comm < b.Comm
	})
	for _, c := range clocks {
		sn.Threads = append(sn.Threads, c.snapshot())
	}
	sort.Slice(sn.Threads, func(i, j int) bool { return sn.Threads[i].Label < sn.Threads[j].Label })
	return sn
}
