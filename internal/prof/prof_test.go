package prof

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMutexHammer drives N goroutines through one profiled mutex (run under
// -race via make race): the site invariants must hold however the scheduler
// interleaves them.
func TestMutexHammer(t *testing.T) {
	p := New()
	var m Mutex
	m.Bind(p.NewSite("hammer", -1, 0))
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg sync.WaitGroup
	var held int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				held++ // the mutex must actually exclude
				held--
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	sn := p.Snapshot()
	if len(sn.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(sn.Sites))
	}
	s := sn.Sites[0]
	if s.Acquisitions != goroutines*iters {
		t.Fatalf("acquisitions = %d, want %d", s.Acquisitions, goroutines*iters)
	}
	if s.Contended > s.Acquisitions {
		t.Fatalf("contended %d > acquisitions %d", s.Contended, s.Acquisitions)
	}
	if s.Contended > 0 && s.WaitNs <= 0 {
		t.Fatalf("contended=%d but wait_ns=%d", s.Contended, s.WaitNs)
	}
	if s.MaxWaitNs > s.WaitNs {
		t.Fatalf("max wait %d > total wait %d", s.MaxWaitNs, s.WaitNs)
	}
	if s.HoldNs < 0 {
		t.Fatalf("hold_ns = %d", s.HoldNs)
	}
}

// TestTryMutexLosses checks the serial-progress lock shape: losers are
// recorded as try failures, never as waits.
func TestTryMutexLosses(t *testing.T) {
	p := New()
	var m TryMutex
	m.Bind(p.NewSite("serial", -1, 0))
	if !m.TryLock() {
		t.Fatal("uncontended TryLock failed")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m.TryLock() {
				t.Error("TryLock succeeded while held")
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	m.Unlock()
	s := p.Snapshot().Sites[0]
	if s.TryFailures != 4 {
		t.Fatalf("try_failures = %d, want 4", s.TryFailures)
	}
	if s.Acquisitions != 1 || s.WaitNs != 0 {
		t.Fatalf("acquisitions=%d wait_ns=%d, want 1/0", s.Acquisitions, s.WaitNs)
	}
	if s.HoldNs <= 0 {
		t.Fatalf("hold_ns = %d, want > 0", s.HoldNs)
	}
}

// TestPhaseSumWithinWall: Σ(exclusive phase time) must not exceed wall time
// and must account for nearly all of it once the clock is stopped.
func TestPhaseSumWithinWall(t *testing.T) {
	p := New()
	c := p.NewThreadClock("t0")
	for i := 0; i < 50; i++ {
		c.Begin(PhaseSend)
		c.Begin(PhaseLockWait)
		time.Sleep(100 * time.Microsecond)
		c.End()
		c.Begin(PhaseWire)
		c.End()
		c.End()
		c.Begin(PhaseProgressOwn)
		c.Begin(PhaseMatch)
		time.Sleep(50 * time.Microsecond)
		c.End()
		c.End()
	}
	c.Stop()
	th := p.Snapshot().Threads[0]
	var sum int64
	for _, v := range th.Phases {
		sum += v
	}
	if sum > th.WallNs {
		t.Fatalf("phase sum %d > wall %d", sum, th.WallNs)
	}
	// A stopped clock flushes every section including the app remainder,
	// so the decomposition must be essentially exact.
	if got := float64(sum) / float64(th.WallNs); got < 0.999 {
		t.Fatalf("phase sum covers %.4f of wall, want ~1", got)
	}
	if th.Phases[PhaseLockWait] <= 0 || th.Phases[PhaseMatch] <= 0 {
		t.Fatalf("expected nested phases recorded: %+v", th.PhaseNs)
	}
	// The nested lock-wait slice suspended send: send's exclusive time must
	// not include the sleeps.
	if th.Phases[PhaseSend] >= th.Phases[PhaseLockWait] {
		t.Fatalf("send %d >= lock_wait %d; nesting not exclusive", th.Phases[PhaseSend], th.Phases[PhaseLockWait])
	}
}

// TestPhaseSumConcurrent runs one clock per goroutine under the race
// detector while a snapshotter reads mid-flight.
func TestPhaseSumConcurrent(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Snapshot()
			}
		}
	}()
	var thwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		thwg.Add(1)
		c := p.NewThreadClock("t")
		go func() {
			defer thwg.Done()
			for i := 0; i < 500; i++ {
				c.Begin(PhaseSend)
				c.Begin(PhaseLockWait)
				c.End()
				c.End()
			}
			c.Stop()
		}()
	}
	thwg.Wait()
	close(stop)
	wg.Wait()
	for _, th := range p.Snapshot().Threads {
		var sum int64
		for _, v := range th.Phases {
			sum += v
		}
		if sum > th.WallNs {
			t.Fatalf("phase sum %d > wall %d", sum, th.WallNs)
		}
	}
}

// TestDisabledBranchOnly: with profiling off (nil profiler → nil sites and
// clocks), the instrumented paths must allocate nothing and record nothing.
func TestDisabledBranchOnly(t *testing.T) {
	var p *Profiler
	site := p.NewSite("x", 0, 0)
	if site != nil {
		t.Fatal("nil profiler handed out a site")
	}
	clk := p.NewThreadClock("x")
	if clk != nil {
		t.Fatal("nil profiler handed out a clock")
	}
	var m Mutex
	m.Bind(site)
	var tm TryMutex
	tm.Bind(site)
	if n := testing.AllocsPerRun(1000, func() {
		m.LockClocked(clk)
		m.Unlock()
		if tm.TryLock() {
			tm.Unlock()
		}
		clk.Begin(PhaseSend)
		clk.End()
		clk.Stop()
		site.recordWait(1)
		site.recordTryFail()
	}); n != 0 {
		t.Fatalf("disabled path allocates %v per op", n)
	}
	if !p.Snapshot().Empty() {
		t.Fatal("nil profiler snapshot not empty")
	}
}

func TestReportRankingAndBottleneck(t *testing.T) {
	p := New()
	hot := p.NewSite("cri.instance", 0, 0)
	cold := p.NewSite("match.comm", -1, 7)
	hot.recordWait(int64(80 * time.Millisecond))
	cold.recordWait(int64(5 * time.Millisecond))
	c := p.NewThreadClock("rank0/t0")
	c.Begin(PhaseLockWait)
	time.Sleep(2 * time.Millisecond)
	c.End()
	c.Stop()
	r := BuildReport(0, "ompi-thread", 8, p.Snapshot())
	if r.Sites[0].Name != "cri.instance" {
		t.Fatalf("top site = %q, want cri.instance", r.Sites[0].Name)
	}
	if !strings.Contains(r.Bottleneck, "lock_wait") || !strings.Contains(r.Bottleneck, "cri.instance[cri=0]") {
		t.Fatalf("bottleneck = %q", r.Bottleneck)
	}
	if r.LockWaitShare <= 0 || r.LockWaitShare > 1 {
		t.Fatalf("lock-wait share = %v", r.LockWaitShare)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bottleneck report", "lock_wait", "cri.instance[cri=0]", "match.comm[comm=7]"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
}

func TestBreakdownRoundTrip(t *testing.T) {
	f := BreakdownFile{
		Engine: "sim",
		Reports: []Report{ReportFromTotals(0, "ompi-thread", 8, 1000,
			PhaseTotals{PhaseLockWait: 400, PhaseSend: 100},
			[]SiteSnapshot{{Name: "cri.instance", CRI: 0, Contended: 3, WaitNs: 400, Acquisitions: 5}})},
	}
	var buf bytes.Buffer
	if err := WriteBreakdown(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBreakdown(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != BreakdownSchemaVersion || got.Engine != "sim" {
		t.Fatalf("round trip header: %+v", got)
	}
	if got.Reports[0].LockWaitShare != 0.4 {
		t.Fatalf("lock-wait share = %v, want 0.4", got.Reports[0].LockWaitShare)
	}
	// A tampered schema version must be refused.
	bad := strings.Replace(buf.String(), "\"schema_version\": 1", "\"schema_version\": 99", 1)
	if _, err := ReadBreakdown(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted wrong schema version")
	}
}

func TestPrometheusExport(t *testing.T) {
	p := New()
	s := p.NewSite("progress.serial", -1, 0)
	s.recordAcquire()
	s.recordTryFail()
	c := p.NewThreadClock("rank0/t1")
	c.Begin(PhaseMatch)
	c.End()
	c.Stop()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, 0, p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mpi_prof_lock_acquisitions_total{rank="0",site="progress.serial",cri="-1",comm="0",kind="try_failed"} 1`,
		"mpi_prof_phase_ns_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
