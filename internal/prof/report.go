package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is the automated bottleneck report for one rank: lock sites ranked
// by contended wait, the aggregate phase breakdown across the rank's
// threads, and a one-line naming of the dominant bottleneck — the paper's
// "what is the remaining serial section" question answered from data.
type Report struct {
	Rank    int    `json:"rank"`
	Design  string `json:"design,omitempty"`
	Threads int    `json:"threads,omitempty"`
	// WallNs is the summed wall time of all profiled threads; PhaseNs the
	// summed exclusive phase times (non-zero phases only).
	WallNs  int64            `json:"wall_ns"`
	PhaseNs map[string]int64 `json:"phase_ns"`
	// LockWaitShare is lock-wait time / wall time across all threads —
	// the single number the serial-vs-concurrent comparison turns on.
	LockWaitShare float64 `json:"lock_wait_share"`
	// Sites is every lock site, ranked by contended wait descending.
	Sites []SiteSnapshot `json:"sites"`
	// Bottleneck names the dominant non-app phase and, when lock wait
	// dominates, the hottest site.
	Bottleneck string `json:"bottleneck"`
}

// Totals returns the report's phase breakdown as a PhaseTotals vector.
func (r Report) Totals() PhaseTotals {
	var t PhaseTotals
	for i := 0; i < NumPhases; i++ {
		t[i] = r.PhaseNs[Phase(i).String()]
	}
	return t
}

// BuildReport aggregates a snapshot into a rank's bottleneck report.
// design/threads are labels carried into the output (empty/zero to omit).
func BuildReport(rank int, design string, threads int, snap Snapshot) Report {
	r := Report{Rank: rank, Design: design, Threads: threads, PhaseNs: map[string]int64{}}
	var totals PhaseTotals
	for _, th := range snap.Threads {
		r.WallNs += th.WallNs
		totals.Merge(th.Phases)
	}
	for i, v := range totals {
		if v != 0 {
			r.PhaseNs[Phase(i).String()] = v
		}
	}
	if r.WallNs > 0 {
		r.LockWaitShare = float64(totals[PhaseLockWait]) / float64(r.WallNs)
	}
	r.Sites = append([]SiteSnapshot(nil), snap.Sites...)
	sort.SliceStable(r.Sites, func(i, j int) bool { return r.Sites[i].WaitNs > r.Sites[j].WaitNs })
	r.Bottleneck = bottleneck(totals, r.WallNs, r.Sites)
	return r
}

// ReportFromTotals builds a report straight from an aggregate phase vector
// and pre-ranked sites — the virtual-time model's entry point, where phase
// times are deterministic virtual nanoseconds rather than thread clocks.
func ReportFromTotals(rank int, design string, threads int, wallNs int64, totals PhaseTotals, sites []SiteSnapshot) Report {
	r := Report{Rank: rank, Design: design, Threads: threads, WallNs: wallNs, PhaseNs: totals.Map()}
	if r.PhaseNs == nil {
		r.PhaseNs = map[string]int64{}
	}
	if wallNs > 0 {
		r.LockWaitShare = float64(totals[PhaseLockWait]) / float64(wallNs)
	}
	r.Sites = append([]SiteSnapshot(nil), sites...)
	sort.SliceStable(r.Sites, func(i, j int) bool { return r.Sites[i].WaitNs > r.Sites[j].WaitNs })
	r.Bottleneck = bottleneck(totals, wallNs, r.Sites)
	return r
}

// bottleneck names the dominant non-app phase; when that phase is lock
// wait, the hottest site is named too.
func bottleneck(totals PhaseTotals, wallNs int64, ranked []SiteSnapshot) string {
	best, bestNs := PhaseApp, int64(0)
	for i := 1; i < NumPhases; i++ { // skip app: it is the useful-work remainder
		if totals[i] > bestNs {
			best, bestNs = Phase(i), totals[i]
		}
	}
	if bestNs == 0 {
		return "none (no runtime time recorded)"
	}
	share := 0.0
	if wallNs > 0 {
		share = 100 * float64(bestNs) / float64(wallNs)
	}
	if best == PhaseLockWait && len(ranked) > 0 && ranked[0].WaitNs > 0 {
		return fmt.Sprintf("%s %.1f%% (hottest site %s)", best, share, siteLabel(ranked[0]))
	}
	return fmt.Sprintf("%s %.1f%%", best, share)
}

func siteLabel(s SiteSnapshot) string {
	switch {
	case s.CRI >= 0:
		return fmt.Sprintf("%s[cri=%d]", s.Name, s.CRI)
	case s.Comm != 0:
		return fmt.Sprintf("%s[comm=%d]", s.Name, s.Comm)
	default:
		return s.Name
	}
}

// WriteText renders the paper-style breakdown: the phase table first, then
// lock sites ranked by contended wait.
func (r Report) WriteText(w io.Writer) error {
	head := fmt.Sprintf("rank %d", r.Rank)
	if r.Design != "" {
		head += " design=" + r.Design
	}
	if r.Threads > 0 {
		head += fmt.Sprintf(" threads=%d", r.Threads)
	}
	if _, err := fmt.Fprintf(w, "== bottleneck report: %s ==\n", head); err != nil {
		return err
	}
	fmt.Fprintf(w, "dominant: %s\n", r.Bottleneck)
	fmt.Fprintf(w, "%-16s %14s %7s\n", "phase", "time", "share")
	totals := r.Totals()
	for i := 0; i < NumPhases; i++ {
		v := totals[i]
		if v == 0 {
			continue
		}
		share := 0.0
		if r.WallNs > 0 {
			share = 100 * float64(v) / float64(r.WallNs)
		}
		fmt.Fprintf(w, "%-16s %14s %6.1f%%\n", Phase(i).String(), fmtNs(v), share)
	}
	if len(r.Sites) > 0 {
		fmt.Fprintf(w, "%-24s %10s %10s %8s %12s %12s %12s\n",
			"lock site", "acquired", "contended", "tryfail", "wait", "max-wait", "hold")
		for _, s := range r.Sites {
			if s.Acquisitions == 0 && s.TryFailures == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-24s %10d %10d %8d %12s %12s %12s\n",
				siteLabel(s), s.Acquisitions, s.Contended, s.TryFailures,
				fmtNs(s.WaitNs), fmtNs(s.MaxWaitNs), fmtNs(s.HoldNs)); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// BreakdownSchemaVersion identifies the -breakdown-out JSON layout.
const BreakdownSchemaVersion = 1

// BreakdownFile is the JSON artifact written by -breakdown-out: one report
// per rank (or per design on the virtual-time engine).
type BreakdownFile struct {
	SchemaVersion int      `json:"schema_version"`
	Engine        string   `json:"engine"` // "real" or "sim"
	Reports       []Report `json:"reports"`
}

// WriteBreakdown serializes f with a trailing newline.
func WriteBreakdown(w io.Writer, f BreakdownFile) error {
	f.SchemaVersion = BreakdownSchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBreakdown parses and sanity-checks a breakdown artifact.
func ReadBreakdown(r io.Reader) (BreakdownFile, error) {
	var f BreakdownFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("prof: parse breakdown: %w", err)
	}
	if f.SchemaVersion != BreakdownSchemaVersion {
		return f, fmt.Errorf("prof: breakdown schema %d, want %d", f.SchemaVersion, BreakdownSchemaVersion)
	}
	return f, nil
}

// RankSnapshot pairs a rank with its profiler snapshot for multi-rank
// Prometheus export.
type RankSnapshot struct {
	Rank int
	Snap Snapshot
}

// WritePrometheus appends one rank's snapshot as Prometheus gauges: per-site
// lock statistics and per-thread phase times.
func WritePrometheus(w io.Writer, rank int, sn Snapshot) error {
	return WritePrometheusRanks(w, []RankSnapshot{{Rank: rank, Snap: sn}})
}

// WritePrometheusRanks renders several ranks' snapshots with one HELP/TYPE
// header per family, per the exposition-format contract. Empty snapshots are
// skipped; if every snapshot is empty nothing is written.
func WritePrometheusRanks(w io.Writer, ranks []RankSnapshot) error {
	live := ranks[:0:0]
	for _, r := range ranks {
		if !r.Snap.Empty() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("# HELP mpi_prof_lock_wait_ns_total Contended lock-wait time per site.\n# TYPE mpi_prof_lock_wait_ns_total gauge\n")
	for _, r := range live {
		for _, s := range r.Snap.Sites {
			fmt.Fprintf(&b, "mpi_prof_lock_wait_ns_total{rank=\"%d\",site=\"%s\",cri=\"%d\",comm=\"%d\"} %d\n",
				r.Rank, s.Name, s.CRI, s.Comm, s.WaitNs)
		}
	}
	b.WriteString("# HELP mpi_prof_lock_acquisitions_total Lock acquisitions per site (contended and try-failed shown separately).\n# TYPE mpi_prof_lock_acquisitions_total gauge\n")
	for _, r := range live {
		for _, s := range r.Snap.Sites {
			fmt.Fprintf(&b, "mpi_prof_lock_acquisitions_total{rank=\"%d\",site=\"%s\",cri=\"%d\",comm=\"%d\",kind=\"acquired\"} %d\n",
				r.Rank, s.Name, s.CRI, s.Comm, s.Acquisitions)
			fmt.Fprintf(&b, "mpi_prof_lock_acquisitions_total{rank=\"%d\",site=\"%s\",cri=\"%d\",comm=\"%d\",kind=\"contended\"} %d\n",
				r.Rank, s.Name, s.CRI, s.Comm, s.Contended)
			fmt.Fprintf(&b, "mpi_prof_lock_acquisitions_total{rank=\"%d\",site=\"%s\",cri=\"%d\",comm=\"%d\",kind=\"try_failed\"} %d\n",
				r.Rank, s.Name, s.CRI, s.Comm, s.TryFailures)
		}
	}
	b.WriteString("# HELP mpi_prof_lock_hold_ns_total Lock hold time per site.\n# TYPE mpi_prof_lock_hold_ns_total gauge\n")
	for _, r := range live {
		for _, s := range r.Snap.Sites {
			fmt.Fprintf(&b, "mpi_prof_lock_hold_ns_total{rank=\"%d\",site=\"%s\",cri=\"%d\",comm=\"%d\"} %d\n",
				r.Rank, s.Name, s.CRI, s.Comm, s.HoldNs)
		}
	}
	b.WriteString("# HELP mpi_prof_phase_ns_total Exclusive per-thread phase time.\n# TYPE mpi_prof_phase_ns_total gauge\n")
	for _, r := range live {
		for _, th := range r.Snap.Threads {
			for i := 0; i < NumPhases; i++ {
				if th.Phases[i] == 0 {
					continue
				}
				fmt.Fprintf(&b, "mpi_prof_phase_ns_total{rank=\"%d\",thread=\"%s\",phase=\"%s\"} %d\n",
					r.Rank, th.Label, Phase(i).String(), th.Phases[i])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
