package progress

import (
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestSerialPassHistExcludesTryLockLosers checks the pass-duration histogram
// invariant: a serial-mode caller that loses the global try-lock did no
// engine work and must not contribute a sample, so across any amount of
// contention hist.Count() == ProgressCalls - ProgressTryLockFail.
func TestSerialPassHistExcludesTryLockLosers(t *testing.T) {
	h := newHarness(t, 2)
	s := spc.NewSet()
	hist := telemetry.NewHistogram()
	e := New(Serial, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) {}, s)
	e.SetObservers(nil, hist)

	const (
		threads = 4
		iters   = 500
	)
	// A trickle of inbound packets keeps winning passes non-trivially long,
	// which keeps the try-lock contended.
	for i := 0; i < 64; i++ {
		h.inject(i%2, uint32(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ts cri.ThreadState
			for i := 0; i < iters; i++ {
				e.Progress(&ts)
			}
		}()
	}
	wg.Wait()

	calls := s.Get(spc.ProgressCalls)
	fails := s.Get(spc.ProgressTryLockFail)
	if calls != threads*iters {
		t.Fatalf("ProgressCalls = %d, want %d", calls, threads*iters)
	}
	if got := hist.Count(); got != calls-fails {
		t.Fatalf("passHist samples = %d, want ProgressCalls - ProgressTryLockFail = %d - %d = %d",
			got, calls, fails, calls-fails)
	}
}
