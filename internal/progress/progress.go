// Package progress implements the MPI progress engine in the two designs
// the paper compares (Section III-E):
//
//   - Serial: Open MPI's original design — one thread at a time inside the
//     engine, enforced with a global try-lock (a thread that loses simply
//     returns, assuming someone else is progressing).
//   - Concurrent: the paper's redesign — the global lock is gone; threads
//     use per-instance try-locks, progressing their dedicated instance
//     first and sweeping the others round-robin only when their own
//     instance had no completions (Algorithm 2).
package progress

import (
	"fmt"

	"repro/internal/cri"
	"repro/internal/flight"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Mode selects the progress design.
type Mode int

const (
	// Serial is the original single-threaded progress engine.
	Serial Mode = iota
	// Concurrent allows all threads into the engine simultaneously.
	Concurrent
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Dispatch handles one completion event extracted by the engine. It is the
// instance Poll handler shape: the clock is the progressing thread's phase
// clock (nil when profiling is off).
type Dispatch = cri.PollHandler

// Engine drives completion extraction over a CRI pool.
type Engine struct {
	mode     Mode
	pool     *cri.Pool
	dispatch Dispatch
	spcs     *spc.Set
	// serialMu is the classic design's global progress lock. Losers never
	// block on it — they leave — so its profiled contention metric is
	// try-lock losses.
	serialMu prof.TryMutex
	// batch bounds how many events one Poll handles per instance visit.
	batch int
	// tracer, when attached, receives one KindProgress event per
	// productive pass (Arg0 = events handled), attributed to the calling
	// thread's dedicated instance when it has one.
	tracer *trace.Tracer
	// passHist, when attached, records the duration of every pass.
	passHist *telemetry.Histogram
}

// New creates a progress engine over pool. The dispatch callback routes
// events to the upper layer (request completion, matching). spcs is the
// process-level residual set; per-instance contention is charged to each
// instance's own set.
func New(mode Mode, pool *cri.Pool, dispatch Dispatch, spcs *spc.Set) *Engine {
	return &Engine{mode: mode, pool: pool, dispatch: dispatch, spcs: spcs, batch: 64}
}

// SetObservers attaches the event tracer and pass-duration histogram.
// Either may be nil; call during setup, before threads enter the engine.
func (e *Engine) SetObservers(tr *trace.Tracer, passHist *telemetry.Histogram) {
	e.tracer = tr
	e.passHist = passHist
}

// BindProfSite attaches the contention profiler's statistics to the serial
// progress lock. Call during setup, before threads enter the engine.
func (e *Engine) BindProfSite(s *prof.Site) { e.serialMu.Bind(s) }

// Mode returns the engine's progress design.
func (e *Engine) Mode() Mode { return e.mode }

// Progress makes one progress pass on behalf of the thread owning ts and
// returns the number of completion events handled.
func (e *Engine) Progress(ts *cri.ThreadState) int {
	e.spcs.Inc(spc.ProgressCalls)
	var count int
	if e.mode == Serial {
		// The serial try-lock is taken before the pass timer starts: a
		// thread that loses did no engine work, and recording its ~0ns
		// "pass" would drown the histogram in no-op samples under
		// contention.
		if !e.serialMu.TryLock() {
			e.spcs.Inc(spc.ProgressTryLockFail)
			return 0
		}
		clk := ts.Clock()
		clk.Begin(prof.PhaseProgressOwn)
		t0 := e.passHist.Start()
		count = e.progressSerialLocked(clk)
		e.serialMu.Unlock()
		e.passHist.ObserveSince(t0)
		clk.End()
	} else {
		t0 := e.passHist.Start()
		count = e.progressConcurrent(ts)
		e.passHist.ObserveSince(t0)
	}
	if count > 0 {
		// Productive passes only: an idle spin loop would flush the ring
		// of every interesting event within milliseconds. The flight
		// recorder keeps the same discipline for the same reason.
		e.tracer.EmitCRI(trace.KindProgress, ts.Dedicated(), int32(count), 0)
		ts.Flight().Record(flight.KindProgress, 0, int32(count), 0)
	}
	return count
}

// progressSerialLocked is one pass of Open MPI's classic design: the caller
// won the global serial lock and polls every instance; losers have already
// left in Progress.
func (e *Engine) progressSerialLocked(clk *prof.ThreadClock) int {
	count := 0
	for i := 0; i < e.pool.Len(); i++ {
		inst := e.pool.Get(i)
		// The send path still contends on the instance lock, so polling
		// takes it even though progress itself is serialized.
		inst.LockClocked(clk)
		count += inst.Poll(clk, e.dispatch, e.batch)
		inst.Unlock()
	}
	return count
}

// progressConcurrent is Algorithm 2: progress the dedicated instance first;
// if it produced nothing, sweep other instances round-robin with try-locks,
// stopping at the first instance that produces completions. The sweep
// guarantees every instance is eventually progressed even if its owning
// thread is gone (orphaned-CRI rule, Section III-E).
func (e *Engine) progressConcurrent(ts *cri.ThreadState) int {
	clk := ts.Clock()
	count := 0
	if k := ts.Dedicated(); k >= 0 {
		inst := e.pool.Get(k)
		if inst.TryLock() {
			clk.Begin(prof.PhaseProgressOwn)
			count = inst.Poll(clk, e.dispatch, e.batch)
			clk.End()
			inst.Unlock()
		} else {
			// Contention is charged to the contended instance's own set so
			// the hot instance is identifiable; the process roll-up merges
			// it back into the Table II total.
			e.chargeTryLockFail(inst)
		}
	}
	if count > 0 {
		return count
	}
	clk.Begin(prof.PhaseProgressSteal)
	for i := 0; i < e.pool.Len(); i++ {
		inst := e.pool.Get(e.pool.NextRoundRobin())
		if !inst.TryLock() {
			// Someone else is progressing this instance; move on
			// (the try-lock-as-helper rule of Section III-C). Losing here
			// is steal pressure, counted separately from the dedicated
			// instance's losses above.
			e.chargeTryLockFail(inst)
			chargeInstance(inst, e.spcs, spc.ProgressStealLosses)
			continue
		}
		c := inst.Poll(clk, e.dispatch, e.batch)
		inst.Unlock()
		count += c
		if count > 0 {
			break
		}
	}
	clk.End()
	return count
}

// chargeTryLockFail records a failed instance try-lock on the instance's
// own counter set when it has one, else on the engine's residual set.
func (e *Engine) chargeTryLockFail(inst *cri.Instance) {
	chargeInstance(inst, e.spcs, spc.ProgressTryLockFail)
}

// chargeInstance increments c on the instance's own counter set when it has
// one, else on the fallback set.
func chargeInstance(inst *cri.Instance, fallback *spc.Set, c spc.Counter) {
	if s := inst.SPCs(); s != nil {
		s.Inc(c)
		return
	}
	fallback.Inc(c)
}

// Drain polls every instance until no events remain, ignoring the engine's
// concurrency discipline. Only for shutdown/teardown paths.
func (e *Engine) Drain() int {
	total := 0
	for {
		n := 0
		for i := 0; i < e.pool.Len(); i++ {
			inst := e.pool.Get(i)
			inst.Lock()
			n += inst.Poll(nil, e.dispatch, e.batch)
			inst.Unlock()
		}
		total += n
		if n == 0 {
			return total
		}
	}
}
