package progress

import (
	"sync"
	"testing"

	"repro/internal/cri"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/transport"
	"repro/internal/transport/mocknet"
)

// harness builds a pool of n instances on one device plus a sender device
// wired so that test packets can be injected into any instance.
type harness struct {
	pool    *cri.Pool
	sendEps []transport.Endpoint // endpoint into each instance's context
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	dev := mocknet.NewDevice()
	sender := mocknet.NewDevice()
	insts := make([]*cri.Instance, n)
	eps := make([]transport.Endpoint, n)
	for i := range insts {
		ctx, err := dev.CreateContext(0)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = cri.NewInstance(i, ctx, nil)
		sctx, err := sender.CreateContext(0)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = mocknet.NewEndpoint(sctx, ctx)
	}
	pool, err := cri.NewPool(insts, cri.Dedicated)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{pool: pool, sendEps: eps}
}

func (h *harness) inject(inst int, seq uint32) {
	h.sendEps[inst].Send(transport.NewPacket(
		transport.Envelope{Seq: seq, Kind: transport.KindEager}, nil, nil))
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || Concurrent.String() != "concurrent" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestSerialProgressPollsAllInstances(t *testing.T) {
	h := newHarness(t, 3)
	for i := 0; i < 3; i++ {
		h.inject(i, uint32(i))
	}
	var mu sync.Mutex
	seen := map[int]int{}
	e := New(Serial, h.pool, func(_ *prof.ThreadClock, in *cri.Instance, ev transport.CQE) {
		mu.Lock()
		seen[in.Index()]++
		mu.Unlock()
	}, nil)
	var ts cri.ThreadState
	n := e.Progress(&ts)
	if n != 3 {
		t.Fatalf("Progress handled %d events, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Fatalf("instance %d polled %d times, want 1: %v", i, seen[i], seen)
		}
	}
}

func TestSerialProgressExcludesSecondThread(t *testing.T) {
	h := newHarness(t, 1)
	s := spc.NewSet()
	block := make(chan struct{})
	entered := make(chan struct{})
	e := New(Serial, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) {
		close(entered)
		<-block // hold the serial lock
	}, s)
	h.inject(0, 0)

	go func() {
		var ts cri.ThreadState
		e.Progress(&ts)
	}()
	<-entered
	// A second thread must bounce off the global try-lock with 0 events.
	var ts2 cri.ThreadState
	if n := e.Progress(&ts2); n != 0 {
		t.Fatalf("second thread extracted %d events inside serial progress", n)
	}
	if got := s.Get(spc.ProgressTryLockFail); got != 1 {
		t.Fatalf("progress_trylock_fail = %d, want 1", got)
	}
	close(block)
}

func TestConcurrentProgressPrefersDedicated(t *testing.T) {
	h := newHarness(t, 4)
	var mu sync.Mutex
	var polled []int
	e := New(Concurrent, h.pool, func(_ *prof.ThreadClock, in *cri.Instance, ev transport.CQE) {
		mu.Lock()
		polled = append(polled, in.Index())
		mu.Unlock()
	}, nil)

	// Thread with dedicated instance 0 (first ForThread call assigns 0).
	var ts cri.ThreadState
	h.pool.ForThread(&ts)
	if ts.Dedicated() != 0 {
		t.Fatalf("dedicated = %d, want 0", ts.Dedicated())
	}
	// Events on both instance 0 and instance 2: the dedicated instance
	// produces completions, so the sweep must NOT run.
	h.inject(0, 0)
	h.inject(2, 0)
	n := e.Progress(&ts)
	if n != 1 {
		t.Fatalf("Progress = %d events, want 1 (dedicated only)", n)
	}
	if len(polled) != 1 || polled[0] != 0 {
		t.Fatalf("polled instances = %v, want [0]", polled)
	}
}

func TestConcurrentProgressSweepsWhenDedicatedEmpty(t *testing.T) {
	h := newHarness(t, 4)
	var mu sync.Mutex
	var polled []int
	e := New(Concurrent, h.pool, func(_ *prof.ThreadClock, in *cri.Instance, ev transport.CQE) {
		mu.Lock()
		polled = append(polled, in.Index())
		mu.Unlock()
	}, nil)
	var ts cri.ThreadState
	h.pool.ForThread(&ts) // dedicated = 0, empty
	h.inject(2, 0)        // completion waits on instance 2
	n := e.Progress(&ts)
	if n != 1 {
		t.Fatalf("Progress = %d, want 1 from sweep", n)
	}
	if len(polled) != 1 || polled[0] != 2 {
		t.Fatalf("polled = %v, want [2] (orphaned instance progressed)", polled)
	}
}

func TestConcurrentProgressNoDedicatedStillSweeps(t *testing.T) {
	// A thread that never acquired a dedicated instance (e.g. pure
	// progress helper) must still drive the pool.
	h := newHarness(t, 2)
	count := 0
	e := New(Concurrent, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) { count++ }, nil)
	h.inject(1, 0)
	var ts cri.ThreadState // unassigned
	if n := e.Progress(&ts); n != 1 || count != 1 {
		t.Fatalf("Progress = %d (dispatched %d), want 1", n, count)
	}
}

func TestConcurrentProgressSkipsLockedInstance(t *testing.T) {
	h := newHarness(t, 2)
	s := spc.NewSet()
	e := New(Concurrent, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) {}, s)
	h.inject(0, 0)
	h.pool.Get(0).Lock() // another thread "is progressing" instance 0
	defer h.pool.Get(0).Unlock()
	var ts cri.ThreadState
	h.pool.ForThread(&ts) // dedicated = 0 (locked)
	if n := e.Progress(&ts); n != 0 {
		t.Fatalf("Progress = %d, want 0 (instance locked elsewhere)", n)
	}
	if s.Get(spc.ProgressTryLockFail) < 2 { // dedicated try + sweep try
		t.Fatalf("progress_trylock_fail = %d, want >= 2", s.Get(spc.ProgressTryLockFail))
	}
}

func TestDrainEmptiesEverything(t *testing.T) {
	h := newHarness(t, 3)
	total := 0
	e := New(Concurrent, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) { total++ }, nil)
	for i := 0; i < 3; i++ {
		for s := 0; s < 10; s++ {
			h.inject(i, uint32(s))
		}
	}
	if n := e.Drain(); n != 30 || total != 30 {
		t.Fatalf("Drain = %d (dispatched %d), want 30", n, total)
	}
	if n := e.Drain(); n != 0 {
		t.Fatalf("second Drain = %d, want 0", n)
	}
}

func TestProgressCallsCounted(t *testing.T) {
	h := newHarness(t, 1)
	s := spc.NewSet()
	e := New(Serial, h.pool, func(*prof.ThreadClock, *cri.Instance, transport.CQE) {}, s)
	var ts cri.ThreadState
	for i := 0; i < 5; i++ {
		e.Progress(&ts)
	}
	if got := s.Get(spc.ProgressCalls); got != 5 {
		t.Fatalf("progress_calls = %d, want 5", got)
	}
}

// TestConcurrentProgressParallelStress drives many goroutines through the
// concurrent engine under race detection; each event must be dispatched
// exactly once.
func TestConcurrentProgressParallelStress(t *testing.T) {
	const (
		instances = 4
		events    = 400
		threads   = 4
	)
	h := newHarness(t, instances)
	var mu sync.Mutex
	seen := make(map[uint32]int)
	e := New(Concurrent, h.pool, func(_ *prof.ThreadClock, in *cri.Instance, ev transport.CQE) {
		if ev.Kind != transport.CQERecv {
			return
		}
		mu.Lock()
		seen[ev.Packet.Envelope().Seq]++
		mu.Unlock()
	}, nil)

	for i := 0; i < events; i++ {
		h.inject(i%instances, uint32(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ts cri.ThreadState
			h.pool.ForThread(&ts)
			for {
				mu.Lock()
				done := len(seen) == events
				mu.Unlock()
				if done {
					return
				}
				e.Progress(&ts)
			}
		}()
	}
	wg.Wait()
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("event %d dispatched %d times", seq, n)
		}
	}
}
