package progress

import "sync"

// trylockMutex is a thin wrapper documenting that the serial progress
// engine's global lock is only ever acquired with TryLock semantics —
// losing threads return rather than block, matching opal_progress.
type trylockMutex struct {
	mu sync.Mutex
}

func (t *trylockMutex) TryLock() bool { return t.mu.TryLock() }
func (t *trylockMutex) Unlock()       { t.mu.Unlock() }
