package ringbuf

import "sync"

// MPSC is a bounded multi-producer/single-consumer FIFO. Any number of
// goroutines may Push concurrently; one goroutine at a time may Pop (the
// fabric guarantees this by polling a receive queue only under its owning
// context's protection).
//
// The implementation is a mutex-guarded ring. The fabric's contention story
// is carried by the locks the paper describes (endpoint, instance, progress,
// matching); the wire queue itself only needs to be correct and cheap.
type MPSC[T any] struct {
	mu   sync.Mutex
	buf  []T
	mask uint64
	head uint64
	tail uint64
}

// NewMPSC returns an MPSC ring with capacity rounded up to the next power
// of two (minimum 2).
func NewMPSC[T any](capacity int) *MPSC[T] {
	n := ceilPow2(capacity)
	return &MPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (q *MPSC[T]) Cap() int { return len(q.buf) }

// Len returns the current element count.
func (q *MPSC[T]) Len() int {
	q.mu.Lock()
	n := int(q.tail - q.head)
	q.mu.Unlock()
	return n
}

// Push appends v and reports whether there was room.
func (q *MPSC[T]) Push(v T) bool {
	q.mu.Lock()
	if q.tail-q.head >= uint64(len(q.buf)) {
		q.mu.Unlock()
		return false
	}
	q.buf[q.tail&q.mask] = v
	q.tail++
	q.mu.Unlock()
	return true
}

// Pop removes and returns the oldest element, reporting whether one existed.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	q.mu.Lock()
	if q.head == q.tail {
		q.mu.Unlock()
		return zero, false
	}
	v := q.buf[q.head&q.mask]
	q.buf[q.head&q.mask] = zero
	q.head++
	q.mu.Unlock()
	return v, true
}

// PopBatch pops up to len(dst) elements into dst and returns the count.
// Draining in batches amortizes lock traffic on the hot poll path.
func (q *MPSC[T]) PopBatch(dst []T) int {
	var zero T
	q.mu.Lock()
	n := int(q.tail - q.head)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = q.buf[q.head&q.mask]
		q.buf[q.head&q.mask] = zero
		q.head++
	}
	q.mu.Unlock()
	return n
}
