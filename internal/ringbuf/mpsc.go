package ringbuf

import "sync/atomic"

// mpscSlot is one ring cell: the element plus its sequence stamp. The stamp
// is the slot's seqlock-style state word (see MPSC below); it is the only
// field accessed atomically — the element itself is ordered by the stamp's
// release/acquire pair.
type mpscSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPSC is a bounded lock-free multi-producer/single-consumer FIFO. Any
// number of goroutines may Push concurrently; one goroutine at a time may
// Pop or PopBatch (the fabric guarantees this by polling a receive queue
// only under its owning context's protection).
//
// The design is the classic bounded ring with per-slot sequence stamps
// (Vyukov): producers claim a slot by CASing the shared tail, then publish
// the element by storing the slot's stamp; the consumer observes the stamp
// to know the element is fully written. At rest, slot i of lap L carries
// stamp i + L*cap; a producer that claimed position pos bumps it to pos+1
// ("written"), and the consumer, after reading, restores it to pos+cap
// ("free for the next lap"). The stamp therefore encodes both the slot's
// state and which lap it belongs to, which is what makes wraparound safe:
// a slow producer from lap L can never mistake a lap-L+1 slot for its own,
// because the stamp comparison is done on the full 64-bit position, not
// the masked index.
//
// Memory ordering: the producer's val write happens before its seq.Store
// (release); the consumer's seq.Load (acquire) happens before its val read.
// Go's sync/atomic gives sequentially consistent semantics, so the pair is
// a sound publication edge and the structure is race-detector clean.
//
// Len is intentionally approximate — see its doc comment.
type MPSC[T any] struct {
	slots []mpscSlot[T]
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // next position to pop (consumer-owned, atomic for Len)
	_    cacheLinePad
	tail atomic.Uint64 // next position to claim (shared among producers)
	_    cacheLinePad
}

// NewMPSC returns an MPSC ring with capacity rounded up to the next power
// of two (minimum 2).
func NewMPSC[T any](capacity int) *MPSC[T] {
	n := ceilPow2(capacity)
	q := &MPSC[T]{slots: make([]mpscSlot[T], n), mask: uint64(n - 1)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the ring capacity.
func (q *MPSC[T]) Cap() int { return len(q.slots) }

// Len returns an instantaneous estimate of the element count. It is stale
// the moment it returns: concurrent producers may have claimed slots they
// have not yet published, and the consumer may be mid-pop. Callers must
// treat it as a monitoring signal (queue-depth snapshots, watchdog samples),
// never as a synchronization predicate — use Pop's return value to learn
// emptiness. The estimate is clamped to [0, Cap] so transient cursor skew
// can not produce a negative or over-capacity depth.
func (q *MPSC[T]) Len() int {
	n := int64(q.tail.Load() - q.head.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(len(q.slots)) {
		n = int64(len(q.slots))
	}
	return int(n)
}

// Push appends v and reports whether there was room. Safe for any number of
// concurrent producers. A false return means the ring was full at the
// attempt (or a consumer was mid-pop on the boundary slot, which resolves
// by the time the caller retries).
func (q *MPSC[T]) Push(v T) bool {
	pos := q.tail.Load()
	for {
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			// Slot is free for this lap; claim it by advancing tail.
			if q.tail.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1) // publish: val happens-before this store
				return true
			}
			pos = q.tail.Load() // lost the race; reload and retry
		case diff < 0:
			// Slot still holds the previous lap's element: full.
			return false
		default:
			// Another producer claimed pos already; chase the tail.
			pos = q.tail.Load()
		}
	}
}

// Pop removes and returns the oldest element, reporting whether one
// existed. Single consumer only.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	pos := q.head.Load()
	slot := &q.slots[pos&q.mask]
	if int64(slot.seq.Load())-int64(pos+1) < 0 {
		return zero, false // not yet published: empty
	}
	v := slot.val
	slot.val = zero // release reference for GC
	slot.seq.Store(pos + uint64(len(q.slots)))
	q.head.Store(pos + 1)
	return v, true
}

// PopBatch pops up to len(dst) elements into dst and returns the count.
// Draining in batches amortizes cursor traffic on the hot poll path.
// Single consumer only.
func (q *MPSC[T]) PopBatch(dst []T) int {
	var zero T
	pos := q.head.Load()
	n := 0
	for n < len(dst) {
		slot := &q.slots[pos&q.mask]
		if int64(slot.seq.Load())-int64(pos+1) < 0 {
			break // next element not yet published
		}
		dst[n] = slot.val
		slot.val = zero
		slot.seq.Store(pos + uint64(len(q.slots)))
		pos++
		n++
	}
	if n > 0 {
		q.head.Store(pos)
	}
	return n
}
