package ringbuf

import (
	"runtime"
	"sync"
	"testing"
)

func TestMPSCBasicFIFO(t *testing.T) {
	q := NewMPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed on non-full ring", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on empty ring")
	}
}

// TestMPSCWraparound runs many laps over a tiny ring so every slot's
// sequence stamp cycles repeatedly; FIFO order must hold across laps.
func TestMPSCWraparound(t *testing.T) {
	q := NewMPSC[int](2)
	next := 0
	for lap := 0; lap < 10000; lap++ {
		if !q.Push(2*lap) || !q.Push(2*lap+1) {
			t.Fatalf("lap %d: push failed on empty ring", lap)
		}
		for i := 0; i < 2; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("lap %d: Pop = (%d, %v), want (%d, true)", lap, v, ok, next)
			}
			next++
		}
	}
}

func TestMPSCFullBoundaryRecovers(t *testing.T) {
	q := NewMPSC[int](2)
	q.Push(1)
	q.Push(2)
	if q.Push(3) {
		t.Fatal("Push on full ring succeeded")
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = (%d, %v)", v, ok)
	}
	if !q.Push(3) {
		t.Fatal("Push failed after Pop freed a slot")
	}
}

func TestMPSCPopBatchPartial(t *testing.T) {
	q := NewMPSC[int](8)
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	dst := make([]int, 4)
	if n := q.PopBatch(dst); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	if n := q.PopBatch(dst); n != 2 || dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("second PopBatch = %d (%v)", n, dst[:2])
	}
	if n := q.PopBatch(dst); n != 0 {
		t.Fatalf("PopBatch on empty ring = %d", n)
	}
}

func TestMPSCLenClamped(t *testing.T) {
	q := NewMPSC[int](4)
	if q.Len() != 0 {
		t.Fatalf("empty Len = %d", q.Len())
	}
	q.Push(1)
	q.Push(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

// TestMPSCConcurrentStress is the -race stress case from ISSUE 7: many
// producers push tagged values through a small ring while one consumer
// drains with a mix of Pop and PopBatch. Asserts conservation (every value
// pushed arrives exactly once) and per-producer FIFO (a producer's values
// arrive in its push order), the two properties the Vyukov stamps must
// preserve across wraparound under contention.
func TestMPSCConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(prev)
	}

	const (
		producers = 8
		perProd   = 20000
		capacity  = 64 // small on purpose: force many laps and full cycles
	)
	q := NewMPSC[uint64](capacity)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProd; i++ {
				v := id<<32 | i
				for !q.Push(v) {
					runtime.Gosched() // full: consumer will drain
				}
			}
		}(uint64(p))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		nextPerProd := [producers]uint64{}
		got := 0
		batch := make([]uint64, 16)
		for got < producers*perProd {
			var vals []uint64
			if got%3 == 0 {
				if v, ok := q.Pop(); ok {
					vals = append(vals, v)
				}
			} else {
				n := q.PopBatch(batch)
				vals = batch[:n]
			}
			if len(vals) == 0 {
				runtime.Gosched()
				continue
			}
			for _, v := range vals {
				id, seq := v>>32, v&0xffffffff
				if id >= producers {
					t.Errorf("corrupt value %#x", v)
					return
				}
				if seq != nextPerProd[id] {
					t.Errorf("producer %d: got seq %d, want %d (FIFO violated)", id, seq, nextPerProd[id])
					return
				}
				nextPerProd[id]++
				got++
			}
		}
	}()

	wg.Wait()
	<-done
	if q.Len() != 0 {
		t.Fatalf("ring not empty after drain: Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("ring not empty after drain")
	}
}
