// Package ringbuf provides the bounded queues used by the simulated
// network fabric: a lock-free single-producer/single-consumer ring and a
// multi-producer/single-consumer ring. Both are fixed capacity; the fabric
// uses them as NIC injection queues and receive queues, where bounded
// capacity models finite hardware queue depth.
package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// cacheLinePad separates hot atomics to avoid false sharing between the
// producer and consumer cursors.
type cacheLinePad struct{ _ [64]byte }

// SPSC is a bounded lock-free single-producer/single-consumer FIFO.
// Exactly one goroutine may call Push and exactly one may call Pop at any
// given time (they may be different goroutines, and may change over time as
// long as the handoff is externally synchronized).
//
// The zero value is not usable; create one with NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next slot to pop (consumer-owned)
	_    cacheLinePad
	tail atomic.Uint64 // next slot to push (producer-owned)
	_    cacheLinePad
}

// NewSPSC returns an SPSC ring with capacity rounded up to the next power
// of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := ceilPow2(capacity)
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns a point-in-time element count. It is exact only when no
// concurrent pushes or pops are in flight.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Push appends v and reports whether there was room.
func (q *SPSC[T]) Push(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() >= uint64(len(q.buf)) {
		return false // full
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Pop removes and returns the oldest element, reporting whether one existed.
func (q *SPSC[T]) Pop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false // empty
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // release reference for GC
	q.head.Store(head + 1)
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *SPSC[T]) Peek() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false
	}
	return q.buf[head&q.mask], true
}

func ceilPow2(n int) int {
	if n < 2 {
		n = 2
	}
	p := 1
	for p < n {
		p <<= 1
		if p <= 0 {
			panic(fmt.Sprintf("ringbuf: capacity %d too large", n))
		}
	}
	return p
}
