package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCEmpty(t *testing.T) {
	q := NewSPSC[int](8)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty ring reported success")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty ring reported success")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestSPSCPushPop(t *testing.T) {
	q := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed with room available", i)
		}
	}
	if q.Push(99) {
		t.Fatal("Push succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on drained ring")
	}
}

func TestSPSCPeek(t *testing.T) {
	q := NewSPSC[string](4)
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = (%q, %v), want (a, true)", v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed an element: Len = %d", q.Len())
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128}, {128, 128},
	}
	for _, c := range cases {
		if got := NewSPSC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](4)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(round*3 + i)
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("round %d: Pop = (%d, %v), want (%d, true)", round, v, ok, next)
			}
			next++
		}
	}
}

// TestSPSCConcurrentFIFO drives one producer and one consumer goroutine and
// verifies every element arrives exactly once, in order.
func TestSPSCConcurrentFIFO(t *testing.T) {
	const n = 20000
	q := NewSPSC[int](64)
	done := make(chan error, 1)
	go func() {
		next := 0
		for next < n {
			if v, ok := q.Pop(); ok {
				if v != next {
					done <- errOutOfOrder(v, next)
					return
				}
				next++
			} else {
				runtime.Gosched() // single-core hosts: let the producer run
			}
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.Push(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type errOrder struct{ got, want int }

func errOutOfOrder(got, want int) error { return errOrder{got, want} }
func (e errOrder) Error() string        { return "out of order pop" }

// TestSPSCQuickFIFO is a property test: any sequence of pushes interleaved
// with pops preserves FIFO order and conserves elements.
func TestSPSCQuickFIFO(t *testing.T) {
	prop := func(ops []uint8) bool {
		q := NewSPSC[int](16)
		var pushed, popped int
		for _, op := range ops {
			if op%2 == 0 {
				if q.Push(pushed) {
					pushed++
				}
			} else {
				if v, ok := q.Pop(); ok {
					if v != popped {
						return false
					}
					popped++
				}
			}
		}
		// Drain remainder; all outstanding elements must appear in order.
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if v != popped {
				return false
			}
			popped++
		}
		return popped == pushed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSCBasic(t *testing.T) {
	q := NewMPSC[int](4)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty MPSC succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if q.Push(4) {
		t.Fatal("Push succeeded on full MPSC")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

func TestMPSCPopBatch(t *testing.T) {
	q := NewMPSC[int](16)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	dst := make([]int, 4)
	if n := q.PopBatch(dst); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	if n := q.PopBatch(make([]int, 16)); n != 6 {
		t.Fatalf("second PopBatch = %d, want 6", n)
	}
	if n := q.PopBatch(dst); n != 0 {
		t.Fatalf("PopBatch on empty = %d, want 0", n)
	}
}

// TestMPSCConcurrentProducers verifies element conservation and per-producer
// FIFO order under many concurrent producers.
func TestMPSCConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	q := NewMPSC[[2]int](256)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; {
				if q.Push([2]int{p, i}) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(p)
	}
	doneProducing := make(chan struct{})
	go func() { wg.Wait(); close(doneProducing) }()

	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	total := 0
	for total < producers*perProd {
		v, ok := q.Pop()
		if !ok {
			select {
			case <-doneProducing:
				if q.Len() == 0 && total < producers*perProd {
					// One more sweep to pick up late pushes.
					if v2, ok2 := q.Pop(); ok2 {
						v, ok = v2, true
					}
				}
			default:
			}
			if !ok {
				runtime.Gosched()
				continue
			}
		}
		p, i := v[0], v[1]
		if i != last[p]+1 {
			t.Fatalf("producer %d: got %d after %d (per-producer FIFO violated)", p, i, last[p])
		}
		last[p] = i
		total++
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	q := NewSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkMPSCPushPop(b *testing.B) {
	q := NewMPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
