// Package rma implements one-sided communication (MPI-3 RMA): windows,
// put/get/accumulate, and passive-target synchronization (lock/unlock,
// flush). As Section II-D explains, the one-sided path has no matching
// stage, so its multithreaded scalability is limited only by initiator-side
// resource contention — exactly what Figures 6 and 7 measure by sweeping
// the instance count and assignment strategy.
package rma

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/trace"
	"repro/internal/transport"
)

// ErrNoEpoch is returned by one-sided operations issued outside a
// passive-target access epoch (no Lock/LockAll held for the target).
var ErrNoEpoch = errors.New("rma: operation outside a lock epoch")

// ErrNotOneSided is returned by New when the world's transport backend does
// not advertise one-sided (RMA) support in its capability flags.
var ErrNotOneSided = errors.New("rma: transport backend lacks one-sided support")

// Win is one process's handle on a window — a registered memory region on
// every member of the creating communicator.
type Win struct {
	comm  *core.Comm
	local []byte
	// regions[commRank] is the target's registered region.
	regions []transport.MemRegion
	// pending[commRank] counts outstanding one-sided ops to that target.
	pending []atomic.Int64
	// locked[commRank] is nonzero while an access epoch (passive lock,
	// PSCW start, or fence) is open to that target.
	locked []atomic.Int32

	// Active-target epoch state (single-threaded by MPI semantics — the
	// funneling constraint the paper highlights).
	fenceOpen bool
	exposure  []int // ranks posted to (exposure epoch)
	access    []int // ranks started to (access epoch)
}

// opToken completes one outstanding one-sided operation when its CQE is
// extracted by the progress engine.
type opToken struct {
	win    *Win
	target int
}

// Complete implements core.Completer.
func (t *opToken) Complete(transport.CQE) {
	t.win.pending[t.target].Add(-1)
}

// New collectively creates a window over the communicator whose per-member
// handles are comms (as returned by World.NewComm). sizes[r] is member r's
// exposed buffer size in bytes. Returns one Win per member.
func New(comms []*core.Comm, sizes []int) ([]*Win, error) {
	if len(comms) == 0 {
		return nil, errors.New("rma: no communicator handles")
	}
	if len(sizes) != len(comms) {
		return nil, fmt.Errorf("rma: %d sizes for %d members", len(sizes), len(comms))
	}
	if caps := comms[0].Proc().TransportCaps(); !caps.OneSided {
		return nil, fmt.Errorf("%w (transport %q)", ErrNotOneSided, caps.Name)
	}
	n := len(comms)
	wins := make([]*Win, n)
	regions := make([]transport.MemRegion, n)
	for r, c := range comms {
		if c.Rank() != r {
			return nil, fmt.Errorf("rma: comms[%d] has rank %d; pass handles in rank order", r, c.Rank())
		}
		local := make([]byte, sizes[r])
		regions[r] = c.Proc().RegisterMemory(local)
		wins[r] = &Win{
			comm:    c,
			local:   local,
			pending: make([]atomic.Int64, n),
			locked:  make([]atomic.Int32, n),
		}
	}
	for _, w := range wins {
		w.regions = regions
	}
	return wins, nil
}

// Allocate creates a window with the same size on every member
// (MPI_Win_allocate with identical sizes).
func Allocate(comms []*core.Comm, size int) ([]*Win, error) {
	sizes := make([]int, len(comms))
	for i := range sizes {
		sizes[i] = size
	}
	return New(comms, sizes)
}

// Local returns the caller's exposed window memory. Reading it while remote
// puts are in flight is an application-level race, as in MPI.
func (w *Win) Local() []byte { return w.local }

// Comm returns the communicator the window was created over.
func (w *Win) Comm() *core.Comm { return w.comm }

// Size returns the window size of member rank.
func (w *Win) Size(rank int) int { return w.regions[rank].Size() }

// Free deregisters the caller's region. Call after all members quiesce.
func (w *Win) Free() {
	me := w.comm.Rank()
	w.comm.Proc().DeregisterMemory(w.regions[me])
}

func (w *Win) checkTarget(target int) error {
	if target < 0 || target >= len(w.regions) {
		return fmt.Errorf("rma: target %d outside window group of %d", target, len(w.regions))
	}
	return nil
}

// Lock opens a passive-target access epoch on target (MPI_Win_lock with
// MPI_LOCK_SHARED semantics — concurrent epochs from multiple origins are
// allowed, as the RMA-MT workload requires).
func (w *Win) Lock(target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	w.locked[target].Add(1)
	return nil
}

// Unlock closes the epoch on target, first completing all outstanding
// operations to it (MPI_Win_unlock implies a flush).
func (w *Win) Unlock(th *core.Thread, target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	if w.locked[target].Load() <= 0 {
		return fmt.Errorf("rma: Unlock(%d) without Lock", target)
	}
	if err := w.Flush(th, target); err != nil {
		return err
	}
	w.locked[target].Add(-1)
	return nil
}

// LockAll opens an epoch on every target (MPI_Win_lock_all).
func (w *Win) LockAll() {
	for i := range w.locked {
		w.locked[i].Add(1)
	}
}

// UnlockAll flushes and closes every epoch (MPI_Win_unlock_all).
func (w *Win) UnlockAll(th *core.Thread) error {
	if err := w.FlushAll(th); err != nil {
		return err
	}
	for i := range w.locked {
		if w.locked[i].Add(-1) < 0 {
			return fmt.Errorf("rma: UnlockAll without LockAll (target %d)", i)
		}
	}
	return nil
}

func (w *Win) inEpoch(target int) error {
	if w.locked[target].Load() <= 0 {
		return ErrNoEpoch
	}
	return nil
}

// issue runs one one-sided operation through the thread's instance under
// the instance lock — the contention point the figures sweep. It returns
// the index of the instance that carried the operation so callers can
// attribute counters and trace events to it.
func (w *Win) issue(th *core.Thread, target int, f func(ctx transport.Context, r transport.MemRegion, tok *opToken) error) (int, error) {
	if err := w.checkTarget(target); err != nil {
		return -1, err
	}
	if err := w.inEpoch(target); err != nil {
		return -1, fmt.Errorf("%w (target %d)", err, target)
	}
	p := w.comm.Proc()
	tok := &opToken{win: w, target: target}
	clk := th.State().Clock()
	clk.Begin(prof.PhaseSend)
	inst, release := p.Pool().AcquireSend(th.State())
	clk.Begin(prof.PhaseWire)
	err := f(inst.Context(), w.regions[target], tok)
	clk.End()
	release()
	clk.End()
	if err == nil {
		w.pending[target].Add(1)
	}
	return inst.Index(), err
}

// Put writes src into target's window at offset (MPI_Put). Completion is
// local-only; use Flush to guarantee remote completion.
func (w *Win) Put(th *core.Thread, target, offset int, src []byte) error {
	cri, err := w.issue(th, target, func(ctx transport.Context, r transport.MemRegion, tok *opToken) error {
		return ctx.Put(r, offset, src, tok)
	})
	if err == nil {
		w.comm.SPCs().Inc(spc.PutsIssued)
		w.comm.Proc().Tracer().EmitCRI(trace.KindPutIssue, cri, int32(target), int32(len(src)))
	}
	return err
}

// Get reads len(dst) bytes from target's window at offset (MPI_Get).
// dst is valid only after a Flush.
func (w *Win) Get(th *core.Thread, target, offset int, dst []byte) error {
	_, err := w.issue(th, target, func(ctx transport.Context, r transport.MemRegion, tok *opToken) error {
		return ctx.Get(r, offset, dst, tok)
	})
	if err == nil {
		w.comm.SPCs().Inc(spc.GetsIssued)
	}
	return err
}

// Accumulate applies op element-wise over int64 lanes at offset in target's
// window (MPI_Accumulate), atomically with respect to other accumulates.
func (w *Win) Accumulate(th *core.Thread, target, offset int, operand []int64, op transport.AccumulateOp) error {
	_, err := w.issue(th, target, func(ctx transport.Context, r transport.MemRegion, tok *opToken) error {
		return ctx.Accumulate(r, offset, operand, op, tok)
	})
	if err == nil {
		w.comm.SPCs().Inc(spc.AccumulatesIssued)
	}
	return err
}

// Flush blocks until every outstanding operation this process issued to
// target has completed (MPI_Win_flush). Any thread's flush drives the
// progress engine, reaping completions for all threads.
func (w *Win) Flush(th *core.Thread, target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	w.comm.SPCs().Inc(spc.FlushCalls)
	for w.pending[target].Load() > 0 {
		if th.Progress() == 0 {
			yield()
		}
	}
	w.comm.Proc().Tracer().Emit(trace.KindFlush, int32(target), 0)
	return nil
}

// FlushAll completes outstanding operations to every target
// (MPI_Win_flush_all).
func (w *Win) FlushAll(th *core.Thread) error {
	w.comm.SPCs().Inc(spc.FlushCalls)
	for {
		outstanding := false
		for i := range w.pending {
			if w.pending[i].Load() > 0 {
				outstanding = true
				break
			}
		}
		if !outstanding {
			return nil
		}
		if th.Progress() == 0 {
			yield()
		}
	}
}

// Pending returns the number of outstanding operations to target
// (diagnostic).
func (w *Win) Pending(target int) int64 { return w.pending[target].Load() }
