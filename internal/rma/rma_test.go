package rma

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

func newWinPair(t *testing.T, opts core.Options, size int) (*core.World, []*Win) {
	t.Helper()
	w, err := core.NewWorld(hw.Fast(), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	comms, err := w.NewComm([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wins, err := Allocate(comms, size)
	if err != nil {
		t.Fatal(err)
	}
	return w, wins
}

func TestPutFlushVisibility(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 64)
	th := w.Proc(0).NewThread()
	if err := wins[0].Lock(1); err != nil {
		t.Fatal(err)
	}
	if err := wins[0].Put(th, 1, 8, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := wins[0].Flush(th, 1); err != nil {
		t.Fatal(err)
	}
	if got := string(wins[1].Local()[8:13]); got != "hello" {
		t.Fatalf("target window = %q", got)
	}
	if wins[0].Pending(1) != 0 {
		t.Fatalf("pending after flush = %d", wins[0].Pending(1))
	}
	if err := wins[0].Unlock(th, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGetReadsRemote(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 32)
	copy(wins[1].Local()[4:], "data")
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	dst := make([]byte, 4)
	if err := wins[0].Get(th, 1, 4, dst); err != nil {
		t.Fatal(err)
	}
	if err := wins[0].Flush(th, 1); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "data" {
		t.Fatalf("Get = %q", dst)
	}
	if err := wins[0].UnlockAll(th); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateSum(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	for i := 0; i < 5; i++ {
		if err := wins[0].Accumulate(th, 1, 0, []int64{3}, transport.AccSum); err != nil {
			t.Fatal(err)
		}
	}
	if err := wins[0].UnlockAll(th); err != nil {
		t.Fatal(err)
	}
	var got int64
	for i := 7; i >= 0; i-- {
		got = got<<8 | int64(wins[1].Local()[i])
	}
	if got != 15 {
		t.Fatalf("accumulated = %d, want 15", got)
	}
}

func TestEpochEnforcement(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	if err := wins[0].Put(th, 1, 0, []byte("x")); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("Put outside epoch: err = %v, want ErrNoEpoch", err)
	}
	if err := wins[0].Unlock(th, 1); err == nil {
		t.Fatal("Unlock without Lock succeeded")
	}
	if err := wins[0].Lock(1); err != nil {
		t.Fatal(err)
	}
	if err := wins[0].Put(th, 1, 0, []byte("x")); err != nil {
		t.Fatalf("Put inside epoch failed: %v", err)
	}
	if err := wins[0].Unlock(th, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTargetValidation(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	if err := wins[0].Put(th, 7, 0, nil); err == nil {
		t.Fatal("Put to target 7 in group of 2 succeeded")
	}
	if err := wins[0].Lock(-1); err == nil {
		t.Fatal("Lock(-1) succeeded")
	}
	if err := wins[0].Flush(th, 9); err == nil {
		t.Fatal("Flush(9) succeeded")
	}
}

func TestOutOfBoundsPutFails(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 8)
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	err := wins[0].Put(th, 1, 4, []byte("too long for 8"))
	if err == nil {
		t.Fatal("out-of-bounds Put succeeded")
	}
	if wins[0].Pending(1) != 0 {
		t.Fatal("failed Put left a pending count")
	}
}

func TestNewValidation(t *testing.T) {
	w, err := core.NewWorld(hw.Fast(), 2, core.Stock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms, _ := w.NewComm([]int{0, 1})
	if _, err := New(nil, nil); err == nil {
		t.Fatal("New with no comms succeeded")
	}
	if _, err := New(comms, []int{8}); err == nil {
		t.Fatal("New with mismatched sizes succeeded")
	}
	if _, err := New([]*core.Comm{comms[1], comms[0]}, []int{8, 8}); err == nil {
		t.Fatal("New with out-of-order handles succeeded")
	}
}

func TestDifferentWindowSizes(t *testing.T) {
	w, err := core.NewWorld(hw.Fast(), 3, core.Stock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms, _ := w.NewComm([]int{0, 1, 2})
	wins, err := New(comms, []int{0, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if wins[0].Size(0) != 0 || wins[0].Size(1) != 100 || wins[0].Size(2) != 50 {
		t.Fatal("per-member sizes wrong")
	}
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	if err := wins[0].Put(th, 1, 90, bytes.Repeat([]byte{1}, 10)); err != nil {
		t.Fatal(err)
	}
	if err := wins[0].Put(th, 2, 45, bytes.Repeat([]byte{1}, 10)); err == nil {
		t.Fatal("Put past target 2's 50-byte window succeeded")
	}
	if err := wins[0].UnlockAll(th); err != nil {
		t.Fatal(err)
	}
}

func TestSPCCounters(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 64)
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	_ = wins[0].Put(th, 1, 0, []byte("a"))
	_ = wins[0].Get(th, 1, 0, make([]byte, 1))
	_ = wins[0].Accumulate(th, 1, 8, []int64{1}, transport.AccSum)
	_ = wins[0].UnlockAll(th)
	s := w.Proc(0).SPCSnapshot()
	if s.Get(spc.PutsIssued) != 1 || s.Get(spc.GetsIssued) != 1 || s.Get(spc.AccumulatesIssued) != 1 {
		t.Fatalf("counters: puts=%d gets=%d accs=%d", s.Get(spc.PutsIssued), s.Get(spc.GetsIssued), s.Get(spc.AccumulatesIssued))
	}
	if s.Get(spc.FlushCalls) == 0 {
		t.Fatal("flush_calls not counted")
	}
}

// TestMultithreadedPutFlush is the RMA-MT pattern: N threads, each putting
// into a disjoint slice of the target window, then flushing. Run under all
// instance configurations.
func TestMultithreadedPutFlush(t *testing.T) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"single", core.Stock()},
		{"rr", core.CRIsConcurrent(4, cri.RoundRobin)},
		{"dedicated", core.CRIsConcurrent(4, cri.Dedicated)},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			const (
				threads = 4
				chunk   = 32
				rounds  = 50
			)
			w, wins := newWinPair(t, cfg.opts, threads*chunk)
			wins[0].LockAll()
			var wg sync.WaitGroup
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := w.Proc(0).NewThread()
					src := bytes.Repeat([]byte{byte(g + 1)}, chunk)
					for r := 0; r < rounds; r++ {
						if err := wins[0].Put(th, 1, g*chunk, src); err != nil {
							t.Error(err)
							return
						}
						if err := wins[0].Flush(th, 1); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g := 0; g < threads; g++ {
				for i := 0; i < chunk; i++ {
					if wins[1].Local()[g*chunk+i] != byte(g+1) {
						t.Fatalf("thread %d byte %d = %d", g, i, wins[1].Local()[g*chunk+i])
					}
				}
			}
		})
	}
}

// TestConcurrentAccumulateAtomicity: concurrent accumulates from many
// threads across procs must sum exactly.
func TestConcurrentAccumulateAtomicity(t *testing.T) {
	w, wins := newWinPair(t, core.CRIsConcurrent(4, cri.Dedicated), 8)
	const (
		threads = 4
		adds    = 200
	)
	wins[0].LockAll()
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < adds; i++ {
				if err := wins[0].Accumulate(th, 1, 0, []int64{1}, transport.AccSum); err != nil {
					t.Error(err)
					return
				}
			}
			if err := wins[0].Flush(th, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var got int64
	for i := 7; i >= 0; i-- {
		got = got<<8 | int64(wins[1].Local()[i])
	}
	if got != threads*adds {
		t.Fatalf("sum = %d, want %d", got, threads*adds)
	}
}

func TestFreeDeregisters(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	wins[1].Free()
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	// The region object still exists in wins[0].regions (stale handle), so
	// Put succeeds at the backend level; what must be gone is the device
	// registry entry.
	_ = th
	if _, ok := w.Proc(1).Region(1); ok {
		// region ids start at 1 on each device
		t.Fatal("region still registered after Free")
	}
}
