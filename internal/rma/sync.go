package rma

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// Active-target synchronization (Section II-D): fence and
// post-start-complete-wait. The paper notes active target "is not well
// suited for multi-threaded applications as all synchronization needs to be
// funneled through a single thread" — these implementations exist so that
// claim can be exercised and measured (see the ablation benchmarks).

// control-message kinds on the window's communicator.
const (
	ctlPost     int32 = 1 // target -> origin: exposure epoch open
	ctlComplete int32 = 2 // origin -> target: access epoch finished
)

// Fence completes all outstanding one-sided operations and synchronizes
// every member (MPI_Win_fence). The first fence opens an access epoch to
// every target; subsequent fences separate epochs. Must be called by all
// members, by a single thread per process — the funneling constraint.
func (w *Win) Fence(th *core.Thread) error {
	if err := w.FlushAll(th); err != nil {
		return err
	}
	if err := w.comm.Barrier(th); err != nil {
		return err
	}
	if !w.fenceOpen {
		w.fenceOpen = true
		for i := range w.locked {
			w.locked[i].Add(1)
		}
	}
	return nil
}

// Post opens an exposure epoch for the given origin ranks (MPI_Win_post):
// each listed origin's Start unblocks once the post message arrives.
func (w *Win) Post(th *core.Thread, origins []int) error {
	if w.exposure != nil {
		return errors.New("rma: Post while an exposure epoch is open")
	}
	for _, o := range origins {
		if err := w.checkTarget(o); err != nil {
			return err
		}
		if err := w.comm.CtlSend(th, o, ctlPost, nil); err != nil {
			return err
		}
	}
	w.exposure = append([]int(nil), origins...)
	return nil
}

// Start opens an access epoch to the given target ranks (MPI_Win_start),
// blocking until every target has posted.
func (w *Win) Start(th *core.Thread, targets []int) error {
	if w.access != nil {
		return errors.New("rma: Start while an access epoch is open")
	}
	for _, tr := range targets {
		if err := w.checkTarget(tr); err != nil {
			return err
		}
		if _, err := w.comm.CtlRecv(th, tr, ctlPost, nil); err != nil {
			return err
		}
		w.locked[tr].Add(1)
	}
	w.access = append([]int(nil), targets...)
	return nil
}

// Complete closes the access epoch (MPI_Win_complete): all operations to
// the started targets finish locally and each target is notified.
func (w *Win) Complete(th *core.Thread) error {
	if w.access == nil {
		return errors.New("rma: Complete without Start")
	}
	for _, tr := range w.access {
		if err := w.Flush(th, tr); err != nil {
			return err
		}
		w.locked[tr].Add(-1)
		if err := w.comm.CtlSend(th, tr, ctlComplete, nil); err != nil {
			return err
		}
	}
	w.access = nil
	return nil
}

// WaitEpoch closes the exposure epoch (MPI_Win_wait): blocks until every
// posted origin has called Complete.
func (w *Win) WaitEpoch(th *core.Thread) error {
	if w.exposure == nil {
		return errors.New("rma: Wait without Post")
	}
	for _, o := range w.exposure {
		if _, err := w.comm.CtlRecv(th, o, ctlComplete, nil); err != nil {
			return err
		}
	}
	w.exposure = nil
	return nil
}

// FetchAndOp atomically applies op to the int64 at offset in target's
// window, returning the previous value after the operation completes
// remotely (MPI_Fetch_and_op; completes before returning, like a
// flush-bounded operation).
func (w *Win) FetchAndOp(th *core.Thread, target, offset int, operand int64, op transport.AccumulateOp) (int64, error) {
	var result int64
	_, err := w.issue(th, target, func(ctx transport.Context, r transport.MemRegion, tok *opToken) error {
		return ctx.FetchAndOp(r, offset, operand, op, &result, tok)
	})
	if err != nil {
		return 0, err
	}
	if err := w.Flush(th, target); err != nil {
		return 0, err
	}
	return result, nil
}

// CompareAndSwap atomically swaps the int64 at offset in target's window if
// it equals compare, returning the previous value (MPI_Compare_and_swap).
func (w *Win) CompareAndSwap(th *core.Thread, target, offset int, compare, swap int64) (int64, error) {
	var result int64
	_, err := w.issue(th, target, func(ctx transport.Context, r transport.MemRegion, tok *opToken) error {
		return ctx.CompareAndSwap(r, offset, compare, swap, &result, tok)
	})
	if err != nil {
		return 0, err
	}
	if err := w.Flush(th, target); err != nil {
		return 0, err
	}
	return result, nil
}

// String describes the window.
func (w *Win) String() string {
	return fmt.Sprintf("win(comm=%d rank=%d size=%d)", w.comm.ID(), w.comm.Rank(), len(w.local))
}
