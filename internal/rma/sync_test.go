package rma

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cri"
	"repro/internal/transport"
)

func TestFenceEpochAllowsPuts(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 32)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			th := w.Proc(r).NewThread()
			win := wins[r]
			if err := win.Fence(th); err != nil {
				t.Error(err)
				return
			}
			// Each rank puts its rank+1 into the peer's first byte.
			if err := win.Put(th, 1-r, r, []byte{byte(r + 1)}); err != nil {
				t.Error(err)
				return
			}
			if err := win.Fence(th); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if wins[0].Local()[1] != 2 || wins[1].Local()[0] != 1 {
		t.Fatalf("fence-epoch puts missing: %v %v", wins[0].Local()[:2], wins[1].Local()[:2])
	}
}

func TestPutWithoutFenceStillFails(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	if err := wins[0].Put(th, 1, 0, []byte{1}); err == nil {
		t.Fatal("Put succeeded with no epoch of any kind")
	}
}

func TestPSCW(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	done := make(chan error, 2)
	// Rank 1 is the target: exposes to origin 0.
	go func() {
		th := w.Proc(1).NewThread()
		if err := wins[1].Post(th, []int{0}); err != nil {
			done <- err
			return
		}
		done <- wins[1].WaitEpoch(th)
	}()
	// Rank 0 is the origin.
	go func() {
		th := w.Proc(0).NewThread()
		if err := wins[0].Start(th, []int{1}); err != nil {
			done <- err
			return
		}
		if err := wins[0].Put(th, 1, 4, []byte("pscw")); err != nil {
			done <- err
			return
		}
		done <- wins[0].Complete(th)
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := string(wins[1].Local()[4:8]); got != "pscw" {
		t.Fatalf("target window = %q", got)
	}
}

func TestPSCWStateMachine(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	if err := wins[0].Complete(th); err == nil {
		t.Fatal("Complete without Start succeeded")
	}
	if err := wins[0].WaitEpoch(th); err == nil {
		t.Fatal("Wait without Post succeeded")
	}
	if err := wins[0].Post(th, []int{9}); err == nil {
		t.Fatal("Post to invalid rank succeeded")
	}
	_ = w
}

func TestFetchAndOp(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	old, err := wins[0].FetchAndOp(th, 1, 0, 5, transport.AccSum)
	if err != nil {
		t.Fatal(err)
	}
	if old != 0 {
		t.Fatalf("first fetch returned %d, want 0", old)
	}
	old, err = wins[0].FetchAndOp(th, 1, 0, 3, transport.AccSum)
	if err != nil {
		t.Fatal(err)
	}
	if old != 5 {
		t.Fatalf("second fetch returned %d, want 5", old)
	}
	if err := wins[0].UnlockAll(th); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndSwap(t *testing.T) {
	w, wins := newWinPair(t, core.Stock(), 16)
	th := w.Proc(0).NewThread()
	wins[0].LockAll()
	defer func() { _ = wins[0].UnlockAll(th) }()
	if old, err := wins[0].CompareAndSwap(th, 1, 8, 0, 77); err != nil || old != 0 {
		t.Fatalf("CAS(0->77) = %d, %v", old, err)
	}
	if old, err := wins[0].CompareAndSwap(th, 1, 8, 0, 99); err != nil || old != 77 {
		t.Fatalf("failed CAS returned %d, %v (want 77)", old, err)
	}
	// Value must still be 77 (second CAS must not apply).
	if old, _ := wins[0].FetchAndOp(th, 1, 8, 0, transport.AccSum); old != 77 {
		t.Fatalf("value after failed CAS = %d, want 77", old)
	}
}

// TestFetchAndOpMutualExclusion implements the classic MCS-style ticket
// lock over FetchAndOp: concurrent threads each take unique tickets.
func TestFetchAndOpMutualExclusion(t *testing.T) {
	w, wins := newWinPair(t, core.CRIsConcurrent(4, cri.Dedicated), 16)
	const (
		threads = 4
		takes   = 50
	)
	wins[0].LockAll()
	seen := make(chan int64, threads*takes)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := w.Proc(0).NewThread()
			for i := 0; i < takes; i++ {
				ticket, err := wins[0].FetchAndOp(th, 1, 0, 1, transport.AccSum)
				if err != nil {
					t.Error(err)
					return
				}
				seen <- ticket
			}
		}()
	}
	wg.Wait()
	close(seen)
	unique := map[int64]bool{}
	for v := range seen {
		if unique[v] {
			t.Fatalf("ticket %d issued twice", v)
		}
		unique[v] = true
	}
	if len(unique) != threads*takes {
		t.Fatalf("issued %d unique tickets, want %d", len(unique), threads*takes)
	}
}
