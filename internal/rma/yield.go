package rma

import "runtime"

// yield relinquishes the core inside flush wait loops; single-core hosts
// depend on it so the progress-producing goroutines can run.
func yield() { runtime.Gosched() }
