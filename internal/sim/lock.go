package sim

import "time"

// Lock is a virtual-time mutex with *unfair* queueing and a contention
// penalty that models cache-line bouncing: every contended handoff costs
// extra virtual time, growing with the number of spinning waiters, and the
// released lock is handed to a deterministically pseudo-random waiter
// rather than the oldest one — real futex-based mutexes barge, and that
// barging is precisely what lets concurrently sending threads overtake one
// another between sequence assignment and injection (the paper's
// out-of-sequence storm). It is the simulation analog of the pthread
// mutexes protecting endpoints, instances, the serial progress engine, and
// matching queues.
type Lock struct {
	env     *Env
	name    string
	held    bool
	holder  *Proc
	waiters []*Proc

	// Penalty is the base cost of one contended acquisition (a cache-line
	// transfer between cores). Zero disables the model.
	Penalty time.Duration
	// PenaltyCap bounds the waiter-count multiplier (default 4).
	PenaltyCap int
	// SleepThreshold is the waiter count at which contenders stop spinning
	// and park (pthread adaptive mutex behavior); handoffs then pay
	// SleepPenalty (a futex wake + context switch) instead of the spin
	// penalty. Defaults: threshold 4, penalty 0 (disabled).
	SleepThreshold int
	// SleepPenalty is the cost of waking a parked waiter.
	SleepPenalty time.Duration

	// Fair forces FIFO handoff (for tests that need strict ordering).
	Fair bool

	// rng drives the deterministic unfair-handoff choice.
	rng uint64

	// stats
	acquisitions int64
	contended    int64
	waitTimeNs   int64
}

// NewLock creates a lock with the given contention penalty.
func NewLock(env *Env, name string, penalty time.Duration) *Lock {
	return &Lock{env: env, name: name, Penalty: penalty, PenaltyCap: 4, SleepThreshold: 4, rng: 0x9E3779B97F4A7C15}
}

// Acquisitions returns the total number of successful acquisitions.
func (l *Lock) Acquisitions() int64 { return l.acquisitions }

// Contended returns how many acquisitions had to wait.
func (l *Lock) Contended() int64 { return l.contended }

// WaitTime returns the cumulative virtual time processes spent waiting.
func (l *Lock) WaitTime() time.Duration { return time.Duration(l.waitTimeNs) }

func (l *Lock) penalty() int64 {
	n := len(l.waiters)
	if l.SleepPenalty > 0 && l.SleepThreshold > 0 && n >= l.SleepThreshold {
		// Convoy regime: the next holder was parked; hand-off pays a
		// futex wake and context switch.
		return int64(l.SleepPenalty)
	}
	if l.Penalty == 0 {
		return 0
	}
	cap := l.PenaltyCap
	if cap <= 0 {
		cap = 4
	}
	if n > cap {
		n = cap
	}
	return int64(l.Penalty) * int64(1+n)
}

// Acquire blocks (in virtual time) until the lock is held by p.
// Returns the virtual time spent waiting.
func (l *Lock) Acquire(p *Proc) time.Duration {
	p.Yield()
	if !l.held {
		l.held = true
		l.holder = p
		l.acquisitions++
		return 0
	}
	l.contended++
	t0 := p.now
	l.waiters = append(l.waiters, p)
	p.block()
	// Rescheduled by Release with clock advanced past the handoff.
	waited := p.now - t0
	l.waitTimeNs += waited
	return time.Duration(waited)
}

// TryAcquire attempts the lock without blocking (the paper's try-lock
// semantics, Section III-C).
func (l *Lock) TryAcquire(p *Proc) bool {
	p.Yield()
	if l.held {
		return false
	}
	l.held = true
	l.holder = p
	l.acquisitions++
	return true
}

// Release frees the lock at p's current clock and hands it to the oldest
// waiter, charging the contention penalty.
func (l *Lock) Release(p *Proc) {
	if !l.held || l.holder != p {
		panic("sim: Release of lock " + l.name + " not held by " + p.name)
	}
	p.Yield()
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = nil
		return
	}
	idx := 0
	if !l.Fair && len(l.waiters) > 1 {
		l.rng = l.rng*6364136223846793005 + 1442695040888963407
		idx = int((l.rng >> 33) % uint64(len(l.waiters)))
	}
	w := l.waiters[idx]
	l.waiters = append(l.waiters[:idx], l.waiters[idx+1:]...)
	l.holder = w
	l.acquisitions++
	at := p.now + l.penalty()
	if w.now > at {
		at = w.now
	}
	l.env.unblock(w, at)
}

// Wire is a shared serialization resource in virtual time — the NIC link.
// Each reservation claims an exclusive slot on a monotone cursor; the
// reserving process's clock jumps to its slot start. It is the virtual-time
// twin of fabric's rateLimiter and produces the hard aggregate caps drawn
// as "theoretical peak" lines in Figures 6 and 7.
type Wire struct {
	cursor    int64
	perByteNs float64
	perMsgNs  float64
}

// NewWire builds a wire from a link rate in Gbps and a per-message
// injection cap in msg/s; zero disables a dimension.
func NewWire(linkGbps, maxMsgRate float64) *Wire {
	w := &Wire{}
	if linkGbps > 0 {
		w.perByteNs = 8 / linkGbps
	}
	if maxMsgRate > 0 {
		w.perMsgNs = 1e9 / maxMsgRate
	}
	return w
}

// Reserve claims wire time for one message of the given size, advancing p
// to its slot start.
func (w *Wire) Reserve(p *Proc, wireBytes int) {
	if w == nil || (w.perByteNs == 0 && w.perMsgNs == 0) {
		return
	}
	p.Yield()
	cost := int64(w.perMsgNs + w.perByteNs*float64(wireBytes))
	if cost <= 0 {
		return
	}
	start := w.cursor
	if p.now > start {
		start = p.now
	}
	w.cursor = start + cost
	p.now = start
}

// Meter adapts a Proc to the match.Meter interface: modeled costs advance
// the simulated thread's clock.
type Meter struct{ P *Proc }

// Charge implements match.Meter.
func (m Meter) Charge(d time.Duration) { m.P.Advance(d) }
