package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickMutualExclusion: for any random schedule of processes with
// random work and lock hold times, critical sections never overlap in
// virtual time and the makespan is at least the serial sum of hold times.
func TestQuickMutualExclusion(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		l := NewLock(env, "l", time.Duration(rng.Intn(200))*time.Nanosecond)
		nProcs := 2 + rng.Intn(6)
		type span struct{ start, end int64 }
		var spans []span
		totalHold := int64(0)
		for i := 0; i < nProcs; i++ {
			iters := 1 + rng.Intn(5)
			pre := time.Duration(rng.Intn(500)) * time.Nanosecond
			hold := time.Duration(1+rng.Intn(400)) * time.Nanosecond
			totalHold += int64(hold) * int64(iters)
			env.Go("p", int64(rng.Intn(1000)), func(p *Proc) {
				for k := 0; k < iters; k++ {
					p.Advance(pre)
					l.Acquire(p)
					s := p.Now()
					p.Advance(hold)
					spans = append(spans, span{s, p.Now()})
					l.Release(p)
				}
			})
		}
		makespan := env.Run()
		if int64(makespan) < totalHold {
			return false // critical sections must serialize
		}
		// No two spans overlap (spans recorded in executive order; check
		// all pairs — counts are tiny).
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMakespanIsMaxClock: makespan always equals the maximum final
// clock over all processes, for any mix of Advance/Yield operations.
func TestQuickMakespanIsMaxClock(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		n := 1 + rng.Intn(6)
		finals := make([]int64, n)
		for i := 0; i < n; i++ {
			i := i
			steps := rng.Intn(8)
			advances := make([]time.Duration, steps)
			for s := range advances {
				advances[s] = time.Duration(rng.Intn(2000)) * time.Nanosecond
			}
			start := int64(rng.Intn(500))
			env.Go("p", start, func(p *Proc) {
				for _, d := range advances {
					p.Advance(d)
					p.Yield()
				}
				finals[i] = p.Now()
			})
		}
		makespan := int64(env.Run())
		max := int64(0)
		for _, f := range finals {
			if f > max {
				max = f
			}
		}
		return makespan == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWireConservation: total reserved wire time is exactly the sum of
// per-message costs, regardless of the schedule.
func TestQuickWireConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		w := NewWire(8, 0) // 1 ns per byte
		n := 1 + rng.Intn(5)
		var totalBytes int64
		for i := 0; i < n; i++ {
			msgs := rng.Intn(10)
			size := 1 + rng.Intn(100)
			totalBytes += int64(msgs) * int64(size)
			env.Go("s", 0, func(p *Proc) {
				for k := 0; k < msgs; k++ {
					w.Reserve(p, size)
				}
			})
		}
		env.Run()
		return w.cursor == totalBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFairLockIsFIFO: with Fair set, handoff strictly follows arrival order
// for any arrival times.
func TestFairLockIsFIFO(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		l := NewLock(env, "l", 0)
		l.Fair = true
		var order []int64
		// A long-holding first process queues everyone else.
		env.Go("holder", 0, func(p *Proc) {
			l.Acquire(p)
			p.Advance(10 * time.Microsecond)
			l.Release(p)
		})
		n := 2 + rng.Intn(5)
		starts := make([]int64, n)
		for i := range starts {
			starts[i] = int64(100 + rng.Intn(5000))
		}
		for _, s := range starts {
			s := s
			env.Go("w", s, func(p *Proc) {
				l.Acquire(p)
				order = append(order, s)
				l.Release(p)
			})
		}
		env.Run()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
