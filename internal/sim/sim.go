// Package sim is a deterministic discrete-event simulation (DES) executive
// with virtual time. Simulated threads are goroutines that the executive
// resumes one at a time, always the one with the smallest virtual clock, so
// every interaction with shared state happens in global virtual-time order
// and runs are exactly reproducible — independent of host core count.
//
// The paper's figures are regenerated on this engine (see internal/simnet):
// the reproduction host has one physical core, so wall-clock measurement
// cannot exhibit multithreaded scaling; virtual time can, and the lock
// queueing + contention model below supplies the physics.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Proc is one simulated thread of execution.
type Proc struct {
	env  *Env
	name string
	id   int
	now  int64 // virtual time, ns

	resume chan struct{}
	done   bool
	// blocked marks a proc parked on a lock/condition; it is not in the
	// event heap and will be rescheduled by whoever unblocks it.
	blocked bool
}

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the process's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.now }

// Advance adds d of busy work to the process's clock. Purely local: the
// effect on shared state is ordered at the next shared operation.
func (p *Proc) Advance(d time.Duration) {
	if d > 0 {
		p.now += int64(d)
	}
}

// Yield re-enters the executive at the current clock, allowing any process
// with an earlier clock to run first. Every shared-state touch point in
// simulated code must Yield first (the lock and queue types here do so
// internally).
func (p *Proc) Yield() {
	p.env.schedule(p, p.now)
	p.park()
}

// park hands control to the executive and waits to be resumed.
func (p *Proc) park() {
	p.env.yieldCh <- p
	<-p.resume
}

// block parks without self-scheduling; some other process must call
// env.unblock(p, atTime).
func (p *Proc) block() {
	p.blocked = true
	p.park()
}

// event is one heap entry.
type event struct {
	at  int64
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Env is the simulation environment. Create with NewEnv, spawn processes
// with Go, then Run. Not safe for use from multiple host goroutines except
// through the executive's own handoff protocol.
type Env struct {
	heap    eventHeap
	seq     uint64
	yieldCh chan *Proc
	procs   []*Proc
	nextID  int
	maxNow  int64
	running bool
}

// NewEnv creates an empty simulation.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan *Proc)}
}

// Go spawns a simulated process starting at virtual time start (use 0, or a
// parent's Now() when spawning mid-run).
func (e *Env) Go(name string, start int64, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, id: e.nextID, now: start, resume: make(chan struct{})}
	e.nextID++
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.yieldCh <- p
	}()
	e.schedule(p, start)
	return p
}

func (e *Env) schedule(p *Proc, at int64) {
	if at < p.now {
		at = p.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, p: p})
}

// unblock reschedules a parked process at time at (>= its clock).
func (e *Env) unblock(p *Proc, at int64) {
	if !p.blocked {
		panic("sim: unblock of a non-blocked proc " + p.name)
	}
	p.blocked = false
	if at > p.now {
		p.now = at
	}
	e.schedule(p, p.now)
}

// Run executes the simulation until every process finishes, returning the
// final virtual time (the makespan). It panics on deadlock — all remaining
// processes blocked with an empty event heap.
func (e *Env) Run() time.Duration {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		if e.heap.Len() == 0 {
			for _, p := range e.procs {
				if !p.done {
					panic(fmt.Sprintf("sim: deadlock — process %q blocked with no runnable events", p.name))
				}
			}
			return time.Duration(e.maxNow)
		}
		ev := heap.Pop(&e.heap).(event)
		p := ev.p
		if p.done {
			continue
		}
		if ev.at > p.now {
			p.now = ev.at
		}
		p.resume <- struct{}{}
		q := <-e.yieldCh
		if q.now > e.maxNow {
			e.maxNow = q.now
		}
	}
}

// Now returns the latest virtual time observed by the executive.
func (e *Env) Now() int64 { return e.maxNow }
