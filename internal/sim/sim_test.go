package sim

import (
	"testing"
	"time"
)

func TestSingleProcessAdvance(t *testing.T) {
	env := NewEnv()
	env.Go("a", 0, func(p *Proc) {
		p.Advance(100 * time.Nanosecond)
		p.Advance(50 * time.Nanosecond)
	})
	if got := env.Run(); got != 150*time.Nanosecond {
		t.Fatalf("makespan = %v, want 150ns", got)
	}
}

func TestProcessesRunInTimeOrder(t *testing.T) {
	env := NewEnv()
	var order []string
	// b starts earlier in virtual time despite being spawned second.
	env.Go("a", 100, func(p *Proc) {
		p.Yield()
		order = append(order, "a")
	})
	env.Go("b", 0, func(p *Proc) {
		p.Yield()
		order = append(order, "b")
	})
	env.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			env.Go(name, 0, func(p *Proc) {
				p.Yield()
				order = append(order, name)
			})
		}
		env.Run()
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged: %v vs %v", i, first, again)
			}
		}
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	env := NewEnv()
	env.Go("short", 0, func(p *Proc) { p.Advance(10 * time.Nanosecond) })
	env.Go("long", 0, func(p *Proc) { p.Advance(10 * time.Microsecond) })
	if got := env.Run(); got != 10*time.Microsecond {
		t.Fatalf("makespan = %v", got)
	}
}

func TestLockMutualExclusionSerializesVirtualTime(t *testing.T) {
	// N processes each hold the lock for 100ns: the makespan must be at
	// least N*100ns because critical sections cannot overlap.
	env := NewEnv()
	l := NewLock(env, "l", 0)
	const n = 10
	for i := 0; i < n; i++ {
		env.Go("p", 0, func(p *Proc) {
			l.Acquire(p)
			p.Advance(100 * time.Nanosecond)
			l.Release(p)
		})
	}
	got := env.Run()
	if got < n*100*time.Nanosecond {
		t.Fatalf("makespan %v < %v: critical sections overlapped", got, n*100*time.Nanosecond)
	}
	if l.Acquisitions() != n {
		t.Fatalf("acquisitions = %d, want %d", l.Acquisitions(), n)
	}
	if l.Contended() != n-1 {
		t.Fatalf("contended = %d, want %d", l.Contended(), n-1)
	}
}

func TestLockPenaltyGrowsMakespan(t *testing.T) {
	run := func(penalty time.Duration) time.Duration {
		env := NewEnv()
		l := NewLock(env, "l", penalty)
		for i := 0; i < 8; i++ {
			env.Go("p", 0, func(p *Proc) {
				for k := 0; k < 10; k++ {
					l.Acquire(p)
					p.Advance(100 * time.Nanosecond)
					l.Release(p)
				}
			})
		}
		return env.Run()
	}
	free := run(0)
	contended := run(50 * time.Nanosecond)
	if contended <= free {
		t.Fatalf("penalty did not grow makespan: %v vs %v", contended, free)
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	l := NewLock(env, "l", 0)
	var firstGot, secondGot bool
	env.Go("holder", 0, func(p *Proc) {
		firstGot = l.TryAcquire(p)
		p.Advance(time.Microsecond)
		l.Release(p)
	})
	env.Go("prober", 100, func(p *Proc) {
		// At t=100ns the holder (acquired at 0, releasing at 1000ns) still
		// holds the lock.
		secondGot = l.TryAcquire(p)
	})
	env.Run()
	if !firstGot {
		t.Fatal("first TryAcquire failed on free lock")
	}
	if secondGot {
		t.Fatal("TryAcquire succeeded while lock held in virtual time")
	}
}

func TestLockFIFOHandoff(t *testing.T) {
	env := NewEnv()
	l := NewLock(env, "l", 0)
	l.Fair = true
	var order []int64
	env.Go("holder", 0, func(p *Proc) {
		l.Acquire(p)
		p.Advance(time.Microsecond)
		l.Release(p)
	})
	for i := 0; i < 3; i++ {
		start := int64(100 * (i + 1)) // arrival order 100, 200, 300
		env.Go("w", start, func(p *Proc) {
			l.Acquire(p)
			order = append(order, start)
			p.Advance(10 * time.Nanosecond)
			l.Release(p)
		})
	}
	env.Run()
	if len(order) != 3 || order[0] != 100 || order[1] != 200 || order[2] != 300 {
		t.Fatalf("handoff order = %v, want FIFO by arrival", order)
	}
}

func TestLockWaitTimeAccounting(t *testing.T) {
	env := NewEnv()
	l := NewLock(env, "l", 0)
	env.Go("holder", 0, func(p *Proc) {
		l.Acquire(p)
		p.Advance(time.Microsecond)
		l.Release(p)
	})
	var waited time.Duration
	env.Go("waiter", 0, func(p *Proc) {
		waited = l.Acquire(p)
		l.Release(p)
	})
	env.Run()
	if waited < 900*time.Nanosecond {
		t.Fatalf("waiter waited %v, want ~1us", waited)
	}
	if l.WaitTime() != waited {
		t.Fatalf("lock WaitTime %v != returned %v", l.WaitTime(), waited)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	env := NewEnv()
	l := NewLock(env, "l", 0)
	env.Go("a", 0, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Release without Acquire did not panic")
			}
		}()
		l.Release(p)
	})
	env.Run()
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	l := NewLock(env, "l", 0)
	env.Go("holder", 0, func(p *Proc) {
		l.Acquire(p) // never released
		// Waits forever on a second lock acquisition.
		l.Acquire(p)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked simulation did not panic")
		}
	}()
	env.Run()
}

func TestWireSerializesAggregateRate(t *testing.T) {
	// 10 processes, 100 messages each, on a 1e9 msg/s wire (1ns per msg):
	// makespan must be >= 1000ns no matter the parallelism.
	env := NewEnv()
	w := NewWire(0, 1e9)
	for i := 0; i < 10; i++ {
		env.Go("s", 0, func(p *Proc) {
			for k := 0; k < 100; k++ {
				w.Reserve(p, 0)
			}
		})
	}
	got := env.Run()
	if got < 999*time.Nanosecond {
		t.Fatalf("makespan = %v, want >= ~1000ns (wire cap)", got)
	}
}

func TestWireBandwidthDimension(t *testing.T) {
	env := NewEnv()
	w := NewWire(8, 0) // 1 byte per ns
	env.Go("s", 0, func(p *Proc) {
		w.Reserve(p, 1000)
		w.Reserve(p, 1000) // second slot starts at cursor 1000
		if p.Now() != 1000 {
			t.Errorf("second reservation started at %d, want 1000", p.Now())
		}
	})
	env.Run()
}

func TestNilWireIsNoop(t *testing.T) {
	env := NewEnv()
	var w *Wire
	env.Go("s", 0, func(p *Proc) { w.Reserve(p, 100) })
	if env.Run() != 0 {
		t.Fatal("nil wire advanced time")
	}
}

func TestSpawnMidRun(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Go("parent", 0, func(p *Proc) {
		p.Advance(time.Microsecond)
		env.Go("child", p.Now(), func(c *Proc) {
			if c.Now() < p.Now() {
				t.Error("child started before parent's clock")
			}
			childRan = true
		})
		p.Yield()
	})
	env.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestMeterAdvancesClock(t *testing.T) {
	env := NewEnv()
	env.Go("m", 0, func(p *Proc) {
		Meter{P: p}.Charge(42 * time.Nanosecond)
	})
	if got := env.Run(); got != 42*time.Nanosecond {
		t.Fatalf("makespan = %v", got)
	}
}

// TestParallelSpeedupEmerges is the sanity check that virtual time models
// parallelism on a single-core host: N independent workers doing 1ms of
// work each finish in 1ms total, not N ms.
func TestParallelSpeedupEmerges(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 16; i++ {
		env.Go("w", 0, func(p *Proc) {
			for k := 0; k < 100; k++ {
				p.Advance(10 * time.Microsecond)
				p.Yield()
			}
		})
	}
	got := env.Run()
	if got != time.Millisecond {
		t.Fatalf("16 independent 1ms workers: makespan = %v, want exactly 1ms", got)
	}
}

// BenchmarkExecutiveHandoff measures the DES engine's per-event cost — the
// constant that sizes how large a virtual experiment is practical.
func BenchmarkExecutiveHandoff(b *testing.B) {
	env := NewEnv()
	env.Go("p", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ResetTimer()
	env.Run()
}
