package simnet_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/simnet"
)

// Virtual multirate runs complete in hundreds of microseconds to tens of
// milliseconds, so the cluster sampler and the detector windows are scaled
// down with them: 100µs sampling, 1ms stall window. Multirate is
// asymmetric by design — receivers carry deep transient unexpected queues
// that senders never do — but the divergence rule's drain-stagnation gate
// (DivergeAfter, defaulting to StallAfter) keeps that benign depth quiet:
// only a receiver that stops receiving can diverge.
var testDetCfg = cluster.DetectorConfig{
	StallAfter: time.Millisecond,
}

// healthyRun is a 2-rank virtual run long enough (~13ms virtual) to still
// be moving while a composed stalled run's receiver is frozen.
func healthyRun(rankBase int) simnet.Result {
	return simnet.RunMultirate(simnet.Config{
		Machine:         hw.AlembertHaswell(),
		Pairs:           2,
		Window:          128,
		Iters:           64,
		NumInstances:    2,
		ClusterInterval: 100 * time.Microsecond,
		RankBase:        rankBase,
	})
}

// stalledRun is a short 2-rank virtual run whose pair-0 receiver freezes
// after its second posted window, receives outstanding, for 20ms virtual.
func stalledRun(rankBase int) simnet.Result {
	return simnet.RunMultirate(simnet.Config{
		Machine:         hw.AlembertHaswell(),
		Pairs:           2,
		Window:          32,
		Iters:           4,
		NumInstances:    2,
		ClusterInterval: 100 * time.Microsecond,
		RankBase:        rankBase,
		StallRecv:       20 * time.Millisecond,
		StallAfterIter:  1,
	})
}

// TestClusterSeriesStallVerdict is the deterministic twin of the live
// -stall smoke: a healthy virtual pair set (ranks 0,1) composed with a
// stalled one (ranks 2,3; the receiver — rank 3 — freezes with posted
// receives) must produce an imbalance verdict naming rank 3 and nobody
// else.
func TestClusterSeriesStallVerdict(t *testing.T) {
	healthy := healthyRun(0)
	stalled := stalledRun(2)
	series := append(append([]flight.RankSeries{}, healthy.Series...), stalled.Series...)
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 ranks", len(series))
	}
	for i, rs := range series {
		if rs.Rank != i {
			t.Fatalf("series[%d].Rank = %d (RankBase mis-wired)", i, rs.Rank)
		}
		if len(rs.Samples) == 0 {
			t.Fatalf("rank %d collected no samples", rs.Rank)
		}
	}

	verdicts := cluster.DetectSeries(testDetCfg, series)
	if len(verdicts) == 0 {
		t.Fatal("stalled virtual cluster produced no verdicts")
	}
	sawStraggler := false
	for _, v := range verdicts {
		if v.Rank != 3 {
			t.Fatalf("verdict named rank %d, want only the stalled receiver (3): %+v", v.Rank, v)
		}
		if v.Reason == "rank-straggler" {
			sawStraggler = true
		}
	}
	if !sawStraggler {
		t.Fatalf("no rank-straggler verdict: %+v", verdicts)
	}
}

// TestClusterSeriesHealthyClean: with no injected fault the composed
// 4-rank series must run verdict-free under the same scaled detector —
// the precondition for the tcp smoke's clean-run assertion.
func TestClusterSeriesHealthyClean(t *testing.T) {
	a := healthyRun(0)
	b := healthyRun(2)
	series := append(append([]flight.RankSeries{}, a.Series...), b.Series...)
	if vs := cluster.DetectSeries(testDetCfg, series); len(vs) != 0 {
		t.Fatalf("healthy virtual cluster produced verdicts: %+v", vs)
	}
	// The production-default configuration stays clean on it too.
	if vs := cluster.DetectSeries(cluster.DetectorConfig{}, series); len(vs) != 0 {
		t.Fatalf("healthy cluster dirty under default config: %+v", vs)
	}
}

// TestClusterSeriesDeterministic: identical configurations must yield
// byte-identical series and verdicts across runs.
func TestClusterSeriesDeterministic(t *testing.T) {
	r1 := stalledRun(2)
	r2 := stalledRun(2)
	if !reflect.DeepEqual(r1.Series, r2.Series) {
		t.Fatal("cluster series differ across identical runs")
	}
	v1 := cluster.DetectSeries(testDetCfg, r1.Series)
	v2 := cluster.DetectSeries(testDetCfg, r2.Series)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("verdicts differ across identical runs:\n%+v\n%+v", v1, v2)
	}
}

// TestClusterSamplingOffChangesNothing: the same configuration with and
// without sampling must produce identical results otherwise — the
// BENCH-reproducibility guarantee.
func TestClusterSamplingOffChangesNothing(t *testing.T) {
	cfg := simnet.Config{
		Machine: hw.AlembertHaswell(), Pairs: 2, Window: 32, Iters: 4, NumInstances: 2,
	}
	base := simnet.RunMultirate(cfg)
	cfg.ClusterInterval = time.Millisecond
	sampled := simnet.RunMultirate(cfg)
	if len(sampled.Series) == 0 {
		t.Fatal("sampling on but no series")
	}
	if base.Messages != sampled.Messages || base.SPCs != sampled.SPCs {
		t.Fatalf("sampling perturbed the run: %+v vs %+v", base.SPCs, sampled.SPCs)
	}
	if base.Series != nil {
		t.Fatal("sampling off but series present")
	}
}
