package simnet

import (
	"testing"

	"repro/internal/spc"
)

func faultCfg(pairs int) Config {
	cfg := baseCfg(pairs)
	cfg.FaultDrop = 0.05
	cfg.FaultDup = 0.05
	cfg.FaultDelay = 0.05
	cfg.FaultSeed = 9
	return cfg
}

func TestMultirateWithFaultsCompletes(t *testing.T) {
	cfg := faultCfg(4)
	res := RunMultirate(cfg)
	want := int64(4 * 64 * 4)
	if res.Messages != want {
		t.Fatalf("Messages = %d, want %d (every message must complete despite faults)", res.Messages, want)
	}
	if got := res.SPCs.Get(spc.FaultPacketsDropped); got == 0 {
		t.Error("no drops injected at FaultDrop=0.05")
	}
	if got := res.SPCs.Get(spc.FaultPacketsDuplicated); got == 0 {
		t.Error("no duplications injected at FaultDup=0.05")
	}
	if got := res.SPCs.Get(spc.FaultPacketsDelayed); got == 0 {
		t.Error("no delays injected at FaultDelay=0.05")
	}
	if got := res.SPCs.Get(spc.Retransmits); got == 0 {
		t.Error("drops occurred but no retransmissions were modeled")
	}
	// Duplicate deliveries must be absorbed by matching-layer dedup.
	if got := res.SPCs.Get(spc.DuplicateSequences); got == 0 {
		t.Error("duplicated packets were not discarded by sequence dedup")
	}
}

func TestMultirateWithFaultsDeterministic(t *testing.T) {
	cfg := faultCfg(4)
	a, b := RunMultirate(cfg), RunMultirate(cfg)
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic faulty makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.SPCs.Get(spc.FaultPacketsDropped) != b.SPCs.Get(spc.FaultPacketsDropped) {
		t.Fatal("nondeterministic drop count for identical seeds")
	}
	c := cfg
	c.FaultSeed = 10
	if d := RunMultirate(c); d.SPCs.Get(spc.FaultPacketsDropped) == a.SPCs.Get(spc.FaultPacketsDropped) &&
		d.Makespan == a.Makespan {
		t.Fatal("different fault seed reproduced the identical run")
	}
}

func TestMultirateFaultsCostTime(t *testing.T) {
	clean := baseCfg(4)
	faulty := faultCfg(4)
	rc, rf := RunMultirate(clean), RunMultirate(faulty)
	if rf.Makespan <= rc.Makespan {
		t.Fatalf("faulty wire makespan %v not above clean %v (retransmit RTOs cost virtual time)",
			rf.Makespan, rc.Makespan)
	}
}
