package simnet

import (
	"sort"
	"time"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/sim"
	"repro/internal/spc"
)

// DefaultSimWatchdogInterval is the virtual-time sampling period of the
// simulated stall watchdog when Config.WatchdogInterval is unset. Virtual
// sampling is free, so the model samples far more often than the real
// watchdog's 100ms would.
const DefaultSimWatchdogInterval = time.Millisecond

// enableFlight stamps the proc's world rank and, when the configuration
// asks for it, attaches a flight recorder whose clock is the virtual time
// of whichever simulated thread is currently charging — the same
// clock-holder pattern threadMeter uses for match-engine cost, so the
// engine's hook events land on the virtual timeline. Thread-mode only;
// process mode shares SPC sets across procs and is not mirrored.
func (p *simProc) enableFlight(rank int) {
	p.frank = rank
	if p.cfg.FlightCapacity <= 0 {
		return
	}
	p.flight = flight.NewRecorder(p.cfg.FlightCapacity)
	p.flight.SetClock(func() int64 {
		if p.flightSP != nil {
			return p.flightSP.Now()
		}
		return 0
	})
}

// flightRecord returns the proc's merged flight record (empty when the
// recorder is off).
func (p *simProc) flightRecord() flight.RankRecord {
	return p.flight.RankRecord(p.frank)
}

// queueSnapshot captures the proc's runtime introspection state at virtual
// time now. The DES runs simulated threads one at a time, so the engines
// can be read directly.
func (p *simProc) queueSnapshot(now int64) flight.QueueSnapshot {
	qs := flight.QueueSnapshot{Rank: p.frank, CapturedNs: now}
	ids := make([]uint32, 0, len(p.comms))
	for id := range p.comms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := p.comms[id]
		qs.Comms = append(qs.Comms, flight.CommQueues{
			Comm:        id,
			Posted:      c.engine.PostedLen(),
			Unexpected:  c.engine.UnexpectedLen(),
			OOSBuffered: c.engine.OOSBuffered(),
		})
	}
	for i, in := range p.instances {
		qs.CRIs = append(qs.CRIs, flight.CRILevel{
			Index: i, Pending: in.queued() > 0, Queued: in.queued(),
		})
	}
	return qs
}

// watchdogSample condenses the proc's state into one detector observation
// at virtual time now.
func (p *simProc) watchdogSample(now int64) flight.Sample {
	snap := p.spcs.Snapshot()
	s := flight.Sample{
		NowNs:         now,
		CountersValid: true,
		Sent:          uint64(snap[spc.MessagesSent]),
		Received:      uint64(snap[spc.MessagesReceived]),
		Retransmits:   uint64(snap[spc.Retransmits]),
	}
	s.Comms = p.queueSnapshot(now).Comms
	if stages, e2e, ok := p.lat.StageP99s(); ok {
		s.LatencyValid = true
		s.E2EP99Ns = e2e
		s.StageP99 = stages
	}
	return s
}

// latencyDump returns the proc's critical-path attribution dump (empty when
// attribution is off), with the exemplars' surrounding flight events when
// the flight recorder is also on.
func (p *simProc) latencyDump() latency.RankDump {
	return p.lat.Dump(p.frank, p.flightRecord())
}

// spawnWatchdog starts the virtual-time stall watchdog for p: a simulated
// thread that wakes every WatchdogInterval, feeds a sample through the
// same flight.Detector the real watchdog uses, and appends any verdict's
// dump to sink. It exits once every workload thread has finished, so it
// never extends a healthy run's makespan by more than one interval. The
// DES serializes simulated threads, making the dump sequence fully
// deterministic — the acceptance property the watchdog tests assert.
func (p *simProc) spawnWatchdog(env *sim.Env, name string, sink *[]flight.Dump) {
	if p.cfg.Watchdog == nil {
		return
	}
	interval := p.cfg.WatchdogInterval
	if interval <= 0 {
		interval = DefaultSimWatchdogInterval
	}
	det := flight.NewDetector(*p.cfg.Watchdog)
	env.Go(name, 0, func(sp *sim.Proc) {
		for p.finished < p.nWork {
			sp.Advance(interval)
			sp.Yield()
			if p.finished >= p.nWork {
				return
			}
			if v, ok := det.Observe(p.watchdogSample(sp.Now())); ok {
				*sink = append(*sink, flight.Dump{
					Rank:    p.frank,
					Verdict: v,
					Queues:  p.queueSnapshot(sp.Now()),
					Record:  p.flightRecord(),
				})
			}
		}
	})
}

// spawnClusterSampler starts the virtual-time cluster sampling thread for
// p: a simulated thread that wakes every ClusterInterval and appends the
// proc's watchdog-style observation to series — the per-rank feed the
// cluster imbalance detector's simnet twin (cluster.DetectSeries) replays.
// Sampling charges no virtual time; after the last workload thread
// finishes, one final drained sample is appended so a finished rank's
// carried-forward state never reads as outstanding work. The DES
// serializes simulated threads, so the series is byte-deterministic.
func (p *simProc) spawnClusterSampler(env *sim.Env, name string, series *flight.RankSeries) {
	if p.cfg.ClusterInterval <= 0 {
		return
	}
	interval := p.cfg.ClusterInterval
	series.Rank = p.frank
	env.Go(name, 0, func(sp *sim.Proc) {
		for {
			sp.Advance(interval)
			sp.Yield()
			series.Samples = append(series.Samples, p.watchdogSample(sp.Now()))
			if p.finished >= p.nWork {
				return
			}
		}
	})
}

// stallFor parks the thread in virtual time without posting receives or
// driving progress — the injected fault the watchdog acceptance tests
// detect (Config.StallRecv / StallAfterIter).
func (t *simThread) stallFor(sp *sim.Proc, d time.Duration) {
	sp.Advance(d)
	sp.Yield()
}
