package simnet_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/latency"
	"repro/internal/simnet"
)

// latBase is a small 2-rank virtual run with attribution on.
func latBase() simnet.Config {
	return simnet.Config{
		Machine:      hw.AlembertHaswell(),
		Pairs:        2,
		Window:       32,
		Iters:        8,
		NumInstances: 2,
		Latency:      true,
	}
}

// stageP99 pulls a named stage's p99 out of a rank dump (0 when absent).
func stageP99(d latency.RankDump, stage string) int64 {
	for _, s := range d.Stages {
		if s.Stage == stage {
			return s.P99Ns
		}
	}
	return 0
}

// TestLatencyDumpsPopulated: an attribution-enabled run yields dumps for
// both ranks; the sender's dump carries the sender-local stages, the
// receiver's the receive-path stages plus end-to-end, and every exemplar's
// stage breakdown is consistent with its end-to-end latency.
func TestLatencyDumpsPopulated(t *testing.T) {
	res := simnet.RunMultirate(latBase())
	if len(res.Latency) != 2 {
		t.Fatalf("Latency dumps = %d, want 2", len(res.Latency))
	}
	sender, receiver := res.Latency[0], res.Latency[1]
	if sender.Rank != 0 || receiver.Rank != 1 {
		t.Fatalf("dump ranks = %d,%d, want 0,1", sender.Rank, receiver.Rank)
	}
	for _, want := range []string{"cri_acquire", "wire_write"} {
		found := false
		for _, s := range sender.Stages {
			if s.Stage == want && s.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("sender dump missing populated stage %q: %+v", want, sender.Stages)
		}
	}
	wantRecv := map[string]bool{"e2e": false, "transit": false, "deliver_wait": false}
	var matched int64
	for _, s := range receiver.Stages {
		if _, ok := wantRecv[s.Stage]; ok && s.Count > 0 {
			wantRecv[s.Stage] = true
		}
		if s.Stage == "match_posted" || s.Stage == "match_unexpected" {
			matched += s.Count
		}
	}
	for name, ok := range wantRecv {
		if !ok {
			t.Fatalf("receiver dump missing populated stage %q: %+v", name, receiver.Stages)
		}
	}
	total := int64(2 * 32 * 8)
	if matched != total {
		t.Fatalf("match stages count %d messages, want %d", matched, total)
	}
	if len(receiver.Exemplars) == 0 {
		t.Fatal("receiver dump has no tail exemplars")
	}
	for _, ex := range receiver.Exemplars {
		if ex.TraceID == 0 || ex.E2ENs <= 0 {
			t.Fatalf("malformed exemplar: %+v", ex)
		}
		var sum int64
		for _, sv := range ex.Stages {
			if sv.Ns > 0 {
				sum += sv.Ns
			}
		}
		if sum > ex.E2ENs {
			t.Fatalf("exemplar stages sum %dns > e2e %dns: %+v", sum, ex.E2ENs, ex)
		}
	}
}

// guiltyStage runs a baseline and a stalled variant of cfg and returns the
// receive-path stage whose p99 shifted the most, plus that shift and the
// end-to-end shift.
func guiltyStage(cfg simnet.Config, stall time.Duration) (string, int64, int64, map[string]int64) {
	base := simnet.RunMultirate(cfg)
	cfg.StallRecv = stall
	cfg.StallAfterIter = 1
	stalled := simnet.RunMultirate(cfg)
	br, sr := base.Latency[1], stalled.Latency[1]
	shifts := map[string]int64{}
	for _, name := range []string{"transit", "deliver_wait", "match_posted", "match_unexpected", "complete", "e2e"} {
		shifts[name] = stageP99(sr, name) - stageP99(br, name)
	}
	guilty, best := "", int64(0)
	for name, d := range shifts {
		if name == "e2e" {
			continue
		}
		if d > best {
			guilty, best = name, d
		}
	}
	return guilty, best, shifts["e2e"], shifts
}

// TestLatencyAttributesQuiescentReceiverToDeliverWait is the issue's
// acceptance test: a known injected delay must surface in the correct stage
// by name, not just as "the tail moved". With a single pair, the stalled
// receiver thread is the only one draining the receive queue, so arrivals
// pile up undelivered and the stall lands in deliver_wait.
func TestLatencyAttributesQuiescentReceiverToDeliverWait(t *testing.T) {
	const stall = 5 * time.Millisecond
	cfg := latBase()
	cfg.Pairs = 1
	guilty, best, e2e, shifts := guiltyStage(cfg, stall)
	if guilty != "deliver_wait" {
		t.Fatalf("p99 shift attributed to %q, want deliver_wait (shifts: %+v)", guilty, shifts)
	}
	if best < int64(stall)/2 {
		t.Fatalf("deliver_wait p99 shift %dns does not reflect the %v stall", best, stall)
	}
	if e2e < int64(stall)/2 {
		t.Fatalf("e2e p99 shift %dns does not reflect the %v stall", e2e, stall)
	}
}

// TestLatencyAttributesSlowPosterToUnexpectedQueue: the same stall with a
// second pair present tells a different — and correct — story. Pair 1's
// receiver thread keeps draining the shared receive queue, so pair 0's
// arrivals are delivered promptly but sit in the unexpected queue until the
// stalled thread wakes and posts its next window. The waterfall
// distinguishes "nobody draining" from "receiver not posting".
func TestLatencyAttributesSlowPosterToUnexpectedQueue(t *testing.T) {
	const stall = 5 * time.Millisecond
	guilty, best, e2e, shifts := guiltyStage(latBase(), stall)
	if guilty != "match_unexpected" {
		t.Fatalf("p99 shift attributed to %q, want match_unexpected (shifts: %+v)", guilty, shifts)
	}
	if best < int64(stall)/2 {
		t.Fatalf("match_unexpected p99 shift %dns does not reflect the %v stall", best, stall)
	}
	if e2e < int64(stall)/2 {
		t.Fatalf("e2e p99 shift %dns does not reflect the %v stall", e2e, stall)
	}
}

// TestLatencyOffChangesNothing: the same configuration with and without
// attribution must produce an identical result otherwise — the
// BENCH-byte-identity guarantee. Attribution only ever reads the virtual
// clock, so rate, makespan, counters, and breakdowns cannot move.
func TestLatencyOffChangesNothing(t *testing.T) {
	cfg := latBase()
	on := simnet.RunMultirate(cfg)
	cfg.Latency = false
	off := simnet.RunMultirate(cfg)
	if on.Makespan != off.Makespan || on.Rate != off.Rate || on.Messages != off.Messages {
		t.Fatalf("attribution changed the run: on=(%v %f) off=(%v %f)",
			on.Makespan, on.Rate, off.Makespan, off.Rate)
	}
	if !reflect.DeepEqual(on.SPCs, off.SPCs) {
		t.Fatal("attribution changed the counters")
	}
	if !reflect.DeepEqual(on.Breakdown, off.Breakdown) {
		t.Fatal("attribution changed the phase breakdown")
	}
	if off.Latency != nil {
		t.Fatal("latency dumps present with attribution off")
	}
}

// TestLatencyDumpsByteReproducible: identical configurations must yield
// byte-identical exemplar dumps — every field derives from the
// deterministic schedule, including the reservoir's tie-breaks.
func TestLatencyDumpsByteReproducible(t *testing.T) {
	cfg := latBase()
	cfg.FlightCapacity = 64 // exemplars carry surrounding flight events too
	r1 := simnet.RunMultirate(cfg)
	r2 := simnet.RunMultirate(cfg)
	var b1, b2 bytes.Buffer
	if err := latency.WriteDumps(&b1, r1.Latency); err != nil {
		t.Fatal(err)
	}
	if err := latency.WriteDumps(&b2, r2.Latency); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("latency dumps differ across identical runs")
	}
	if len(r1.Latency[1].Exemplars) == 0 {
		t.Fatal("no exemplars to compare")
	}
}

// TestLatencySampleFeedsDetectorFields: with both attribution and cluster
// sampling on, the virtual observation series carries the per-stage p99
// vector the tail-skew detector consumes.
func TestLatencySampleFeedsDetectorFields(t *testing.T) {
	cfg := latBase()
	cfg.ClusterInterval = 100 * time.Microsecond
	res := simnet.RunMultirate(cfg)
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	last := res.Series[1].Samples[len(res.Series[1].Samples)-1]
	if !last.LatencyValid || last.E2EP99Ns <= 0 || len(last.StageP99) == 0 {
		t.Fatalf("final receiver sample lacks latency fields: %+v", last)
	}
}

// latClusterRun is a 2-rank virtual run with both attribution and cluster
// sampling on, composable by RankBase.
func latClusterRun(rankBase int, stall time.Duration) simnet.Result {
	// Virtual sampling is free, so the interval is tight enough that the
	// post-stall drain — where the piled-up tail becomes visible in the
	// cumulative histograms — spans the detector's streak window.
	cfg := simnet.Config{
		Machine:         hw.AlembertHaswell(),
		Pairs:           2,
		Window:          32,
		Iters:           8,
		NumInstances:    2,
		ClusterInterval: 20 * time.Microsecond,
		RankBase:        rankBase,
		Latency:         true,
	}
	if stall > 0 {
		cfg.StallRecv = stall
		cfg.StallAfterIter = 1
	}
	return simnet.RunMultirate(cfg)
}

// TestClusterSeriesLatencyTailSkewVerdict is the deterministic twin of the
// live tail-skew detection: two healthy virtual pair sets composed with a
// stalled one give three latency-reporting receivers (ranks 1, 3, 5); the
// stalled receiver's tail must draw a latency-tail-skew verdict naming it
// and no other rank, with the dominant stage named in the detail.
func TestClusterSeriesLatencyTailSkewVerdict(t *testing.T) {
	a := latClusterRun(0, 0)
	b := latClusterRun(2, 0)
	c := latClusterRun(4, 20*time.Millisecond)
	series := append(append(append([]flight.RankSeries{}, a.Series...), b.Series...), c.Series...)
	verdicts := cluster.DetectSeries(cluster.DetectorConfig{StallAfter: time.Millisecond}, series)
	sawTail := false
	for _, v := range verdicts {
		if v.Reason != "latency-tail-skew" {
			continue
		}
		if v.Rank != 5 {
			t.Fatalf("tail-skew named rank %d, want the stalled receiver (5): %+v", v.Rank, v)
		}
		if !strings.Contains(v.Detail, "dominant stage") {
			t.Fatalf("tail-skew detail lacks the dominant stage: %q", v.Detail)
		}
		sawTail = true
	}
	if !sawTail {
		t.Fatalf("no latency-tail-skew verdict from the stalled composition: %+v", verdicts)
	}

	// A healthy composition must stay tail-clean under the default config.
	healthy := append(append([]flight.RankSeries{}, a.Series...), b.Series...)
	for _, v := range cluster.DetectSeries(cluster.DetectorConfig{}, healthy) {
		if v.Reason == "latency-tail-skew" {
			t.Fatalf("healthy composition drew a tail-skew verdict: %+v", v)
		}
	}
}
