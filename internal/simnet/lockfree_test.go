package simnet

import (
	"testing"

	"repro/internal/cri"
	"repro/internal/progress"
	"repro/internal/spc"
)

// lockFreeCfg is the sim mirror of the lock-free hot-path design: sharded
// matching, free-list instance acquisition, lock-free completion rings,
// concurrent progress.
func lockFreeCfg(pairs int) Config {
	cfg := baseCfg(pairs)
	cfg.NumInstances = pairs
	cfg.Assignment = cri.FreeList
	cfg.Progress = progress.Concurrent
	cfg.MatchShards = 32
	cfg.LockFreeCQ = true
	return cfg
}

func TestLockFreeCompletesAndCounts(t *testing.T) {
	cfg := lockFreeCfg(4)
	res := RunMultirate(cfg)
	want := int64(4 * 64 * 4)
	if res.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Messages, want)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != want {
		t.Fatalf("messages_received = %d, want %d", got, want)
	}
	if got := res.SPCs.Get(spc.FreeListAcquires); got == 0 {
		t.Fatal("free-list assignment never recorded an acquisition")
	}
}

func TestLockFreeDeterministic(t *testing.T) {
	cfg := lockFreeCfg(8)
	a, b := RunMultirate(cfg), RunMultirate(cfg)
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.SPCs.Get(spc.OutOfSequence) != b.SPCs.Get(spc.OutOfSequence) {
		t.Fatal("nondeterministic OOS count")
	}
	if a.SPCs.Get(spc.FreeListAcquires) != b.SPCs.Get(spc.FreeListAcquires) {
		t.Fatal("nondeterministic free-list accounting")
	}
}

// TestLockFreeBeatsLockedAtScale: at the paper's 20-pair operating point,
// with every pair on ONE shared communicator, the lock-free hot paths must
// crush the equivalent locked design — single-lock matching serializes all
// 20 pairs, while sharded matching + lock-free rings let them proceed. It
// must also land within striking distance of the comm-per-pair CRIs*
// configuration, which is the whole point: concurrent matching without
// restructuring the application.
func TestLockFreeBeatsLockedAtScale(t *testing.T) {
	locked := baseCfg(20)
	locked.Window = 128
	locked.NumInstances = 20
	locked.Assignment = cri.Dedicated
	locked.Progress = progress.Concurrent

	free := lockFreeCfg(20)
	free.Window = 128

	commPerPair := baseCfg(20)
	commPerPair.Window = 128
	commPerPair.NumInstances = 20
	commPerPair.Assignment = cri.Dedicated
	commPerPair.Progress = progress.Concurrent
	commPerPair.CommPerPair = true

	rl, rf, rc := RunMultirate(locked), RunMultirate(free), RunMultirate(commPerPair)
	if rf.Rate < 4*rl.Rate {
		t.Fatalf("lock-free single-comm design did not crush the locked one: %.0f msg/s vs locked %.0f msg/s", rf.Rate, rl.Rate)
	}
	if rf.Rate < 0.9*rc.Rate {
		t.Fatalf("lock-free single-comm design (%.0f msg/s) fell below 90%% of comm-per-pair CRIs* (%.0f msg/s)", rf.Rate, rc.Rate)
	}
}
